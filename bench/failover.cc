// Fleet failover: machine kill/reboot under the balancer's active health
// checks, measured as the paper's availability story — how much goodput the
// fleet keeps while a backend is dead, and how fast the balancer notices
// (time-to-ejection) and heals (time-to-readmission).
//
// Lane 1 (armed): one balancer fronting 2 Cheetah servers for 4 open-loop
// client machines, health checks armed. A machine schedule kills one backend
// mid-sweep and reboots it later, several cycles, alternating victims. The
// balancer ejects the victim after `fall` missed probes, evicts its pinned
// flows (they reroute to the survivor), and readmits it after `rise`
// post-reboot successes. Gates: worst-cycle goodput during the outage window
// stays >= min_outage_goodput_frac of steady state, post-readmission goodput
// recovers to >= min_recovered_goodput_frac, and p99 time-to-ejection /
// time-to-readmission stay under their ceilings.
//
// Lane 2 (blackhole): same fleet, health checks DISABLED, one kill and no
// reboot. Pinned flows keep routing to the dead backend and new pins
// round-robin onto it blindly; goodput collapses and stays down. The gate is
// inverted: post-kill goodput must stay <= max_blackhole_goodput_frac of
// steady state — if it doesn't, the bench is no longer demonstrating the
// hazard the health checks exist to fix.
//
// Everything on stdout is simulated-metric only and bit-identical for any
// --threads value (the cluster determinism contract); JSON goes to
// BENCH_failover.json (--out), and --check FILE gates against the committed
// baseline (bench/failover_baseline.json in CI).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/http.h"
#include "bench/common.h"
#include "cluster/topology.h"
#include "sim/engine.h"
#include "sim/fault.h"

namespace {

using namespace exo;

constexpr uint32_t kMhz = 200;
constexpr sim::Cycles kCyclesPerMs = static_cast<sim::Cycles>(kMhz) * 1000;

constexpr uint32_t kServers = 2;
constexpr uint32_t kClients = 4;
// Small pools rotate fast: a slot sees a new arrival every pool * interval =
// 4 ms, so a dead connection's request timeout arms (and its reconnect
// happens) promptly after a kill instead of idling for a whole rotation.
constexpr size_t kPoolPerClient = 8;
constexpr size_t kMaxPipeline = 4;
constexpr double kOfferedPerSec = 8'000;          // well under one server's capacity
constexpr sim::Cycles kRequestTimeout = 5 * kCyclesPerMs;
constexpr sim::Cycles kReconnectBase = kCyclesPerMs / 4;  // 0.25 ms, doubling
constexpr sim::Cycles kReconnectCap = 4 * kCyclesPerMs;

// Kill/reboot cadence: victim alternates, dead for 50 ms out of each 100 ms
// cycle. Measurement starts after a 100 ms warmup.
constexpr sim::Cycles kWarmup = 100 * kCyclesPerMs;
constexpr sim::Cycles kCyclePeriod = 100 * kCyclesPerMs;
constexpr sim::Cycles kOutage = 50 * kCyclesPerMs;
constexpr int kCycles = 4;
// The outage window closes this long after the reboot: wide enough to contain
// the readmission (rise * interval + slack), so "outage goodput" covers the
// full dead-to-readmitted span.
constexpr sim::Cycles kReadmitMargin = 6 * kCyclesPerMs;

struct Fleet {
  std::unique_ptr<cluster::Topology> topo;
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  std::vector<std::unique_ptr<apps::HttpServer>> servers;
  std::vector<std::unique_ptr<apps::HttpServer>> graveyard;  // zombies: killed
  std::vector<std::unique_ptr<apps::OpenLoopHttpClient>> clients;

  uint64_t TotalCompleted() const {
    uint64_t total = 0;
    for (const auto& c : clients) {
      total += c->completed();
    }
    return total;
  }
};

void BuildServer(Fleet& f, uint32_t k) {
  cluster::Topology& topo = *f.topo;
  apps::HttpServerOptions opts;
  opts.persistent = true;
  auto server = std::make_unique<apps::HttpServer>(
      &topo.engine_of(topo.server_id(k)), &f.cost, apps::ServerStyle::kCheetah,
      /*ip=*/cluster::Topology::kVip, opts);
  server->AddDocument("d0", std::vector<uint8_t>(512, 7));
  EXO_CHECK_EQ(server->Listen(80), Status::kOk);
  for (uint32_t j = 0; j < kClients; ++j) {
    server->AttachNic(&topo.server(k).nic(0), topo.client_ip(j));
  }
  f.servers[k] = std::move(server);
}

Fleet BuildFleet(bool health_checks, bool client_retry, uint32_t threads,
                 const std::vector<sim::MachineEvent>& schedule,
                 sim::Cycles horizon) {
  Fleet f;
  cluster::TopologyConfig tc;
  tc.servers = kServers;
  tc.clients = kClients;
  tc.front_end_lb = true;
  tc.machines_per_shard = 1;
  tc.threads = threads;
  tc.machine.mem_frames = 256;
  tc.machine.disks.clear();
  tc.health.interval_us = 1'000;
  tc.health.timeout_us = 400;
  tc.health.fall = 3;
  tc.health.rise = 2;
  f.topo = std::make_unique<cluster::Topology>(tc);
  cluster::Topology& topo = *f.topo;

  f.servers.resize(kServers);
  for (uint32_t k = 0; k < kServers; ++k) {
    BuildServer(f, k);
  }
  // Kill: the victim's HTTP stack dies with the machine (no FINs, no RSTs —
  // its zombie object just stops; stale timers no-op). Reboot: a fresh server
  // process comes up on the same hardware and re-registers its routes.
  topo.SetMachineLifecycleHooks(
      [&f, &topo](uint32_t id) {
        for (uint32_t k = 0; k < kServers; ++k) {
          if (id == topo.server_id(k) && f.servers[k] != nullptr) {
            f.servers[k]->Shutdown();
            f.graveyard.push_back(std::move(f.servers[k]));
          }
        }
      },
      [&f, &topo](uint32_t id) {
        for (uint32_t k = 0; k < kServers; ++k) {
          if (id == topo.server_id(k)) {
            BuildServer(f, k);
          }
        }
      });

  const double per_client = kOfferedPerSec / kClients;
  const sim::Cycles interval = static_cast<sim::Cycles>(
      static_cast<double>(kMhz) * 1'000'000.0 / per_client);
  for (uint32_t j = 0; j < kClients; ++j) {
    auto client = std::make_unique<apps::OpenLoopHttpClient>(
        &topo.engine_of(topo.client_id(j)), &f.cost, &topo.client(j).nic(0),
        topo.client_ip(j), cluster::Topology::kVip, "d0", interval);
    client->EnablePersistent(kPoolPerClient, kMaxPipeline);
    if (client_retry) {
      client->set_request_timeout(kRequestTimeout);
      client->set_reconnect_backoff(kReconnectBase, kReconnectCap,
                                    cluster::DeriveSeed(tc.seed, 77'000 + j));
    }
    f.clients.push_back(std::move(client));
  }

  if (health_checks) {
    topo.ArmHealthChecks(horizon);
  }
  topo.ApplyMachineSchedule(schedule);
  for (auto& c : f.clients) {
    c->Start(horizon);
  }
  return f;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p / 100.0 * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

struct ArmedResult {
  double steady_rps = 0;
  double worst_outage_frac = 0;
  double worst_recovered_frac = 0;
  double tte_p99_ms = 0;  // time-to-ejection
  double ttr_p99_ms = 0;  // time-to-readmission
  uint64_t ejected = 0;
  uint64_t readmitted = 0;
  uint64_t pins_evicted = 0;
  uint64_t reroutes = 0;
};

ArmedResult RunArmed(uint32_t threads) {
  std::vector<sim::MachineEvent> schedule;
  std::vector<uint32_t> victims;
  for (int i = 0; i < kCycles; ++i) {
    const uint32_t victim = 1 + (static_cast<uint32_t>(i) % kServers);  // server_id
    const sim::Cycles kill = kWarmup + static_cast<sim::Cycles>(i) * kCyclePeriod;
    schedule.push_back({kill, 'k', victim});
    schedule.push_back({kill + kOutage, 'b', victim});
    victims.push_back(victim);
  }
  const sim::Cycles horizon =
      kWarmup + static_cast<sim::Cycles>(kCycles) * kCyclePeriod;
  Fleet f = BuildFleet(/*health_checks=*/true, /*client_retry=*/true, threads,
                       schedule, horizon);
  cluster::Topology& topo = *f.topo;

  ArmedResult r;
  // Steady state: the warmup tail, before the first kill.
  const sim::Cycles steady_start = kWarmup / 2;
  topo.RunUntil(steady_start);
  const uint64_t at_steady_start = f.TotalCompleted();
  topo.RunUntil(kWarmup);
  const uint64_t at_first_kill = f.TotalCompleted();
  r.steady_rps = static_cast<double>(at_first_kill - at_steady_start) /
                 (static_cast<double>(kWarmup - steady_start) /
                  (static_cast<double>(kMhz) * 1e6));

  r.worst_outage_frac = 1e9;
  r.worst_recovered_frac = 1e9;
  std::vector<double> tte_ms, ttr_ms;
  std::printf("%-6s %-7s %-12s %-12s %-9s %-9s\n", "cycle", "victim", "outage rps",
              "recover rps", "tte ms", "ttr ms");
  for (int i = 0; i < kCycles; ++i) {
    const sim::Cycles kill = kWarmup + static_cast<sim::Cycles>(i) * kCyclePeriod;
    const sim::Cycles reboot = kill + kOutage;
    const sim::Cycles outage_end = reboot + kReadmitMargin;
    const sim::Cycles cycle_end = kill + kCyclePeriod;
    const uint32_t backend = victims[static_cast<size_t>(i)] - 1;  // server index

    const uint64_t at_kill = f.TotalCompleted();
    topo.RunUntil(outage_end);
    const uint64_t at_outage_end = f.TotalCompleted();
    topo.RunUntil(cycle_end);
    const uint64_t at_cycle_end = f.TotalCompleted();

    const double outage_rps = static_cast<double>(at_outage_end - at_kill) /
                              (static_cast<double>(outage_end - kill) /
                               (static_cast<double>(kMhz) * 1e6));
    const double recover_rps = static_cast<double>(at_cycle_end - at_outage_end) /
                               (static_cast<double>(cycle_end - outage_end) /
                                (static_cast<double>(kMhz) * 1e6));
    const sim::Cycles eject_at = topo.backend_last_eject(backend);
    const sim::Cycles readmit_at = topo.backend_last_readmit(backend);
    EXO_CHECK(eject_at >= kill);
    EXO_CHECK(readmit_at >= reboot);
    const double tte = static_cast<double>(eject_at - kill) /
                       static_cast<double>(kCyclesPerMs);
    const double ttr = static_cast<double>(readmit_at - reboot) /
                       static_cast<double>(kCyclesPerMs);
    tte_ms.push_back(tte);
    ttr_ms.push_back(ttr);
    r.worst_outage_frac = std::min(r.worst_outage_frac, outage_rps / r.steady_rps);
    r.worst_recovered_frac =
        std::min(r.worst_recovered_frac, recover_rps / r.steady_rps);
    std::printf("%-6d m%-6u %-12.0f %-12.0f %-9.2f %-9.2f\n", i,
                victims[static_cast<size_t>(i)], outage_rps, recover_rps, tte, ttr);
  }
  r.tte_p99_ms = Percentile(tte_ms, 99);
  r.ttr_p99_ms = Percentile(ttr_ms, 99);
  r.ejected = topo.lb_ejected();
  r.readmitted = topo.lb_readmitted();
  r.pins_evicted = topo.lb_pins_evicted();
  r.reroutes = topo.lb_failover_reroutes();
  return r;
}

struct BlackholeResult {
  double steady_rps = 0;
  double blackhole_frac = 0;  // post-kill goodput / steady, never recovers
};

BlackholeResult RunBlackhole(uint32_t threads) {
  // Health checks off, one kill, no reboot, and no client-side retry: the
  // flows pinned to the dead backend stay pinned (nothing evicts them) and
  // route into the void forever — the stale-pin hazard the health checks and
  // eviction exist to fix. Roughly half the fleet's goodput vanishes.
  std::vector<sim::MachineEvent> schedule = {{kWarmup, 'k', 1}};
  const sim::Cycles horizon = kWarmup + 2 * kCyclePeriod;
  Fleet f = BuildFleet(/*health_checks=*/false, /*client_retry=*/false, threads,
                       schedule, horizon);
  cluster::Topology& topo = *f.topo;

  BlackholeResult r;
  const sim::Cycles steady_start = kWarmup / 2;
  topo.RunUntil(steady_start);
  const uint64_t at_steady_start = f.TotalCompleted();
  topo.RunUntil(kWarmup);
  const uint64_t at_kill = f.TotalCompleted();
  r.steady_rps = static_cast<double>(at_kill - at_steady_start) /
                 (static_cast<double>(kWarmup - steady_start) /
                  (static_cast<double>(kMhz) * 1e6));
  // Skip the first 10 ms of the outage (in-flight drain), then measure the
  // settled blackhole rate.
  topo.RunUntil(kWarmup + 10 * kCyclesPerMs);
  const uint64_t at_settle = f.TotalCompleted();
  topo.RunUntil(horizon);
  const uint64_t at_end = f.TotalCompleted();
  const double rate = static_cast<double>(at_end - at_settle) /
                      (static_cast<double>(horizon - kWarmup - 10 * kCyclesPerMs) /
                       (static_cast<double>(kMhz) * 1e6));
  r.blackhole_frac = rate / r.steady_rps;
  return r;
}

// Pulls `"key": <number>` out of a flat JSON file without a JSON dependency.
bool JsonNumber(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) {
    return false;
  }
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_failover.json";
  std::string check_path;
  uint32_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<uint32_t>(std::atoi(argv[++i]));
    }
  }

  bench::PrintHeader("fleet failover: kill/reboot under balancer health checks");
  std::printf("fleet: 1 balancer, %u Cheetah servers, %u clients, %.0f req/s offered\n",
              kServers, kClients, kOfferedPerSec);
  std::printf("schedule: %d cycles, victim dead %llu ms of every %llu ms\n\n", kCycles,
              static_cast<unsigned long long>(kOutage / kCyclesPerMs),
              static_cast<unsigned long long>(kCyclePeriod / kCyclesPerMs));

  std::printf("lane 1: health checks armed (1 ms probes, fall 3, rise 2)\n");
  const ArmedResult armed = RunArmed(threads);
  std::printf("\nsteady %.0f req/s; worst outage %.2f of steady, worst recovery %.2f; "
              "tte p99 %.2f ms, ttr p99 %.2f ms\n",
              armed.steady_rps, armed.worst_outage_frac, armed.worst_recovered_frac,
              armed.tte_p99_ms, armed.ttr_p99_ms);
  std::printf("balancer: %llu ejections, %llu readmissions, %llu pins evicted, "
              "%llu flows rerouted\n",
              static_cast<unsigned long long>(armed.ejected),
              static_cast<unsigned long long>(armed.readmitted),
              static_cast<unsigned long long>(armed.pins_evicted),
              static_cast<unsigned long long>(armed.reroutes));

  std::printf("\nlane 2: health checks disabled, one kill, no reboot\n");
  const BlackholeResult bh = RunBlackhole(threads);
  std::printf("steady %.0f req/s; settled post-kill goodput %.2f of steady "
              "(pinned flows blackhole)\n",
              bh.steady_rps, bh.blackhole_frac);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"failover\",\n");
  std::fprintf(f, "  \"threads\": %u,\n", threads);
  std::fprintf(f, "  \"steady_rps\": %.1f,\n", armed.steady_rps);
  std::fprintf(f, "  \"worst_outage_goodput_frac\": %.3f,\n", armed.worst_outage_frac);
  std::fprintf(f, "  \"worst_recovered_goodput_frac\": %.3f,\n",
               armed.worst_recovered_frac);
  std::fprintf(f, "  \"time_to_ejection_p99_ms\": %.2f,\n", armed.tte_p99_ms);
  std::fprintf(f, "  \"time_to_readmission_p99_ms\": %.2f,\n", armed.ttr_p99_ms);
  std::fprintf(f, "  \"ejections\": %llu,\n",
               static_cast<unsigned long long>(armed.ejected));
  std::fprintf(f, "  \"readmissions\": %llu,\n",
               static_cast<unsigned long long>(armed.readmitted));
  std::fprintf(f, "  \"pins_evicted\": %llu,\n",
               static_cast<unsigned long long>(armed.pins_evicted));
  std::fprintf(f, "  \"failover_reroutes\": %llu,\n",
               static_cast<unsigned long long>(armed.reroutes));
  std::fprintf(f, "  \"blackhole_goodput_frac\": %.3f\n", bh.blackhole_frac);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  if (!check_path.empty()) {
    FILE* b = std::fopen(check_path.c_str(), "r");
    if (b == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", check_path.c_str());
      return 1;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), b)) > 0) {
      text.append(buf, n);
    }
    std::fclose(b);
    double min_steady = 0, min_outage = 0, min_recovered = 0;
    double max_tte = 0, max_ttr = 0, max_blackhole = 0;
    if (!JsonNumber(text, "min_steady_rps", &min_steady) ||
        !JsonNumber(text, "min_outage_goodput_frac", &min_outage) ||
        !JsonNumber(text, "min_recovered_goodput_frac", &min_recovered) ||
        !JsonNumber(text, "max_time_to_ejection_ms", &max_tte) ||
        !JsonNumber(text, "max_time_to_readmission_ms", &max_ttr) ||
        !JsonNumber(text, "max_blackhole_goodput_frac", &max_blackhole)) {
      std::fprintf(stderr, "baseline %s missing required keys\n", check_path.c_str());
      return 1;
    }
    bool ok = true;
    if (armed.steady_rps < min_steady) {
      std::fprintf(stderr, "FAIL: steady goodput %.0f below floor %.0f\n",
                   armed.steady_rps, min_steady);
      ok = false;
    }
    if (armed.worst_outage_frac < min_outage) {
      std::fprintf(stderr, "FAIL: outage goodput frac %.2f below floor %.2f\n",
                   armed.worst_outage_frac, min_outage);
      ok = false;
    }
    if (armed.worst_recovered_frac < min_recovered) {
      std::fprintf(stderr, "FAIL: recovered goodput frac %.2f below floor %.2f\n",
                   armed.worst_recovered_frac, min_recovered);
      ok = false;
    }
    if (armed.tte_p99_ms > max_tte) {
      std::fprintf(stderr, "FAIL: time-to-ejection p99 %.2f ms above ceiling %.2f\n",
                   armed.tte_p99_ms, max_tte);
      ok = false;
    }
    if (armed.ttr_p99_ms > max_ttr) {
      std::fprintf(stderr, "FAIL: time-to-readmission p99 %.2f ms above ceiling %.2f\n",
                   armed.ttr_p99_ms, max_ttr);
      ok = false;
    }
    if (bh.blackhole_frac > max_blackhole) {
      std::fprintf(stderr,
                   "FAIL: blackhole lane kept %.2f of steady goodput (ceiling %.2f) — "
                   "the unhealthy lane no longer demonstrates the hazard\n",
                   bh.blackhole_frac, max_blackhole);
      ok = false;
    }
    if (!ok) {
      return 1;
    }
    std::fprintf(stderr,
                 "baseline check passed (steady %.0f >= %.0f, outage %.2f >= %.2f, "
                 "recovered %.2f >= %.2f, tte %.2f <= %.2f ms, ttr %.2f <= %.2f ms, "
                 "blackhole %.2f <= %.2f)\n",
                 armed.steady_rps, min_steady, armed.worst_outage_frac, min_outage,
                 armed.worst_recovered_frac, min_recovered, armed.tte_p99_ms, max_tte,
                 armed.ttr_p99_ms, max_ttr, bh.blackhole_frac, max_blackhole);
  }
  return 0;
}
