// Figure 3: HTTP document throughput as a function of document size, for five
// servers: NCSA/BSD, Harvest/BSD, Socket/BSD, Socket/Xok, Cheetah. Three 100-Mbit/s
// links with one closed-loop client machine each (client CPU is free; the server is
// the system under test, as in the paper).
//
// Paper: Cheetah reaches ~8000 req/s for small documents — 4x Socket/Xok and 8x the
// best OpenBSD configuration; at 100 KB Cheetah is wire-limited at 29.3 MB/s with
// >30% CPU idle while Socket/BSD saturates its CPU at 16.5 MB/s.
#include "apps/http.h"
#include "bench/common.h"

namespace {

using namespace exo;

struct HttpResult {
  double req_per_s = 0;
  double mb_per_s = 0;
  double cpu_idle = 0;
};

HttpResult RunServer(apps::ServerStyle style, size_t doc_bytes,
                     trace::Tracer* tracer = nullptr) {
  sim::Engine engine;
  sim::CostModel cost = sim::CostModel::PentiumPro200();

  // Server machine: three NICs, one per client link (Sec. 7.3's testbed).
  constexpr int kLinks = 3;
  apps::HttpServer server(&engine, &cost, style, /*ip=*/100);
  if (tracer != nullptr) {
    engine.set_tracer(tracer, tracer->NewTrack("engine"));
    server.SetTracer(tracer);
  }

  std::vector<std::unique_ptr<hw::Nic>> nics;
  std::vector<std::unique_ptr<hw::Link>> links;
  std::vector<std::unique_ptr<apps::HttpClient>> clients;
  std::vector<std::unique_ptr<hw::Nic>> server_nics;

  std::vector<uint8_t> doc(doc_bytes);
  for (size_t i = 0; i < doc.size(); ++i) {
    doc[i] = static_cast<uint8_t>(i * 31);
  }
  server.AddDocument("doc", doc);
  EXO_CHECK_EQ(server.Listen(80), Status::kOk);

  for (int i = 0; i < kLinks; ++i) {
    auto snic = std::make_unique<hw::Nic>(static_cast<uint32_t>(i));
    auto cnic = std::make_unique<hw::Nic>(static_cast<uint32_t>(100 + i));
    auto link = std::make_unique<hw::Link>(&engine, 100.0, 40.0, 200);
    link->Connect(snic.get(), cnic.get());
    net::IpAddr client_ip = static_cast<net::IpAddr>(i + 1);
    server.AttachNic(snic.get(), client_ip);
    clients.push_back(std::make_unique<apps::HttpClient>(
        &engine, &cost, cnic.get(), client_ip, 100, "doc", /*concurrency=*/6));
    if (tracer != nullptr) {
      link->AttachTracer(tracer, "link" + std::to_string(i));
      clients.back()->SetTracer(tracer, "client" + std::to_string(i));
    }
    server_nics.push_back(std::move(snic));
    nics.push_back(std::move(cnic));
    links.push_back(std::move(link));
  }

  // Run for 0.5 simulated seconds of load.
  const sim::Cycles duration = 100'000'000;  // 0.5 s at 200 MHz
  for (auto& c : clients) {
    c->Start(duration);
  }
  engine.RunUntil(duration);
  double secs = bench::Secs(engine.now());

  uint64_t completed = 0;
  uint64_t bytes = 0;
  for (auto& c : clients) {
    completed += c->completed();
    bytes += c->bytes_received();
  }
  HttpResult r;
  r.req_per_s = static_cast<double>(completed) / secs;
  r.mb_per_s = static_cast<double>(bytes) / secs / 1e6;
  r.cpu_idle = 1.0 - server.cpu().Utilization(0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exo;
  // --trace=PATH captures the Socket/Xok 10-KByte run: the one cell that
  // exercises all of sched, syscall, fs, app, and net span categories.
  const bench::TraceOptions trace_opts = bench::ParseTraceArgs(argc, argv);
  trace::Tracer tracer;
  if (trace_opts.on()) {
    tracer.Enable(trace_opts.mask);
  }

  bench::PrintHeader("Figure 3: HTTP throughput vs document size (requests/second)");

  const size_t sizes[] = {0, 100, 1024, 10 * 1024, 100 * 1024};
  const char* size_names[] = {"0 Byte", "100 Byte", "1 KByte", "10 KByte", "100 KByte"};
  const apps::ServerStyle styles[] = {
      apps::ServerStyle::kNcsaBsd, apps::ServerStyle::kHarvestBsd,
      apps::ServerStyle::kSocketBsd, apps::ServerStyle::kSocketXok,
      apps::ServerStyle::kCheetah};

  std::printf("%-10s", "size");
  for (auto s : styles) {
    std::printf(" %12s", apps::ServerStyleName(s));
  }
  std::printf("\n");

  double cheetah_100k_mbs = 0;
  double socketbsd_100k_mbs = 0;
  double cheetah_100k_idle = 0;
  for (size_t i = 0; i < 5; ++i) {
    std::printf("%-10s", size_names[i]);
    for (auto s : styles) {
      const bool traced = trace_opts.on() && s == apps::ServerStyle::kSocketXok &&
                          sizes[i] == 10 * 1024;
      HttpResult r = RunServer(s, sizes[i], traced ? &tracer : nullptr);
      std::printf(" %12.0f", r.req_per_s);
      if (sizes[i] == 100 * 1024) {
        if (s == apps::ServerStyle::kCheetah) {
          cheetah_100k_mbs = r.mb_per_s;
          cheetah_100k_idle = r.cpu_idle;
        }
        if (s == apps::ServerStyle::kSocketBsd) {
          socketbsd_100k_mbs = r.mb_per_s;
        }
      }
    }
    std::printf("\n");
  }
  std::printf("\n100-KByte documents: Cheetah %.1f MB/s (CPU idle %.0f%%), Socket/BSD %.1f MB/s\n",
              cheetah_100k_mbs, cheetah_100k_idle * 100.0, socketbsd_100k_mbs);
  std::printf("paper: Cheetah 29.3 MB/s with >30%% idle; Socket/BSD 16.5 MB/s at 100%% CPU;\n");
  std::printf("       small documents: Cheetah ~8x best BSD server, ~4x Socket/Xok\n");
  bench::WriteTraceFile(tracer, trace_opts);
  return 0;
}
