// Shared bench harness pieces: machine construction, the Table 1 workload driver,
// and table printing. Every bench binary regenerates one paper table/figure.
#ifndef EXO_BENCH_COMMON_H_
#define EXO_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apps/unix_apps.h"
#include "apps/workload.h"
#include "exos/system.h"
#include "trace/trace.h"

namespace exo::bench {

// ---- --trace support, shared by the figure benches ----
//
// `--trace=PATH` writes a Chrome/Perfetto trace_event JSON (or a compact text
// dump when PATH ends in ".txt") of one traced run. `--trace-categories=LIST`
// narrows the category mask ("disk,net,fault"; default all). The simulated run
// is bit-identical with tracing on or off; trace status goes to stderr so
// stdout stays diffable.
struct TraceOptions {
  std::string path;  // empty: tracing off
  uint32_t mask = trace::kAllCategories;

  bool on() const { return !path.empty(); }
};

inline TraceOptions ParseTraceArgs(int argc, char** argv) {
  TraceOptions t;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--trace=", 0) == 0) {
      t.path = a.substr(8);
    } else if (a.rfind("--trace-categories=", 0) == 0) {
      if (!trace::ParseCategoryMask(a.substr(19), &t.mask)) {
        std::fprintf(stderr, "unknown category in %s\n", a.c_str());
        std::exit(2);
      }
    }
  }
  return t;
}

inline void WriteTraceFile(const trace::Tracer& tracer, const TraceOptions& opts,
                           uint32_t cpu_mhz = 200) {
  if (!opts.on()) {
    return;
  }
  const bool text =
      opts.path.size() >= 4 && opts.path.compare(opts.path.size() - 4, 4, ".txt") == 0;
  const std::string out =
      text ? trace::TextDump(tracer, cpu_mhz) : trace::PerfettoJson(tracer, cpu_mhz);
  FILE* f = std::fopen(opts.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s\n", opts.path.c_str());
    std::exit(2);
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "trace: wrote %zu bytes (%llu records, %llu dropped) to %s\n",
               out.size(), static_cast<unsigned long long>(tracer.emitted()),
               static_cast<unsigned long long>(tracer.dropped()), opts.path.c_str());
  const std::string hist = trace::HistogramSummary(tracer);
  if (!hist.empty()) {
    std::fprintf(stderr, "%s", hist.c_str());
  }
}

// Prints every nonzero fault/integrity counter (fault.*, disk.corrupted,
// disk.repaired, scrub.*) one per line. A healthy unarmed run prints nothing,
// so the figure stdout stays byte-identical unless faults actually fired.
inline void PrintFaultCounters(sim::Counters& counters) {
  for (const char* prefix : {"fault.", "disk.corrupted", "disk.repaired", "scrub."}) {
    for (const auto& [name, value] : counters.Snapshot(prefix)) {
      if (value != 0) {
        std::printf("%s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
      }
    }
  }
}

inline hw::MachineConfig PaperMachine(uint32_t disk_mb = 256) {
  hw::MachineConfig cfg;
  cfg.mem_frames = 16384;  // 64 MB
  cfg.disks = {hw::DiskGeometry{.num_blocks = disk_mb * 256}};
  return cfg;
}

inline double Secs(sim::Cycles c) { return static_cast<double>(c) / 200e6; }

struct StepResult {
  std::string name;
  double seconds = 0;
};

struct WorkloadResult {
  std::vector<StepResult> steps;
  double total = 0;
  uint64_t syscalls = 0;
};

// The Table 1 / Figure 2 workload: install the lcc distribution. Eleven steps, each
// run as a separate program through fork/exec, exactly as a shell would run them.
inline WorkloadResult RunIoWorkload(os::Flavor flavor, os::SystemOptions opts = {},
                                    uint64_t seed = 42,
                                    const TraceOptions* trace_opts = nullptr) {
  sim::Engine engine;
  hw::Machine machine(&engine, PaperMachine());
  if (trace_opts != nullptr && trace_opts->on()) {
    machine.tracer().Enable(trace_opts->mask);  // before Boot: env tracks register
  }
  os::System sys(&machine, flavor, opts);
  EXO_CHECK_EQ(sys.Boot(), Status::kOk);

  WorkloadResult result;
  sys.SpawnInit("sh", [&](os::UnixEnv& env) {
    // Stage the distribution archive (not timed): build the tree once, archive and
    // compress it, then delete the staging copy.
    auto tree = apps::LccTree(seed);
    EXO_CHECK_EQ(apps::WriteTree(env, tree, "/stage"), Status::kOk);
    EXO_CHECK_EQ(apps::PaxWrite(env, "/stage", "/lcc.pax"), Status::kOk);
    EXO_CHECK_EQ(apps::Gzip(env, "/lcc.pax", "/lcc.pax.gz"),
                 Status::kOk);
    EXO_CHECK_EQ(apps::RmTree(env, "/stage"), Status::kOk);
    EXO_CHECK_EQ(env.Unlink("/lcc.pax"), Status::kOk);
    EXO_CHECK_EQ(env.Sync(), Status::kOk);

    auto step = [&](const std::string& name, const std::string& program,
                    std::function<void(os::UnixEnv&)> body) {
      sim::Cycles t0 = env.Now();
      auto pid = env.Spawn(program, std::move(body));
      EXO_CHECK(pid.ok());
      EXO_CHECK(env.Wait(*pid).ok());
      result.steps.push_back({name, Secs(env.Now() - t0)});
    };

    step("cp (small)", "cp", [](os::UnixEnv& e) {
      EXO_CHECK_EQ(apps::Cp(e, "/lcc.pax.gz", "/lcc2.pax.gz"), Status::kOk);
    });
    step("gunzip", "gunzip", [](os::UnixEnv& e) {
      EXO_CHECK_EQ(apps::Gunzip(e, "/lcc2.pax.gz", "/lcc.pax"), Status::kOk);
    });
    step("cp (large)", "cp", [](os::UnixEnv& e) {
      EXO_CHECK_EQ(apps::Cp(e, "/lcc.pax", "/lcc-copy.pax"), Status::kOk);
    });
    step("pax -r", "pax", [](os::UnixEnv& e) {
      EXO_CHECK_EQ(apps::PaxRead(e, "/lcc.pax", "/lcc"), Status::kOk);
    });
    step("cp -r", "cp", [](os::UnixEnv& e) {
      EXO_CHECK_EQ(apps::CpR(e, "/lcc", "/lcc-copy"), Status::kOk);
    });
    step("diff", "diff", [](os::UnixEnv& e) {
      auto d = apps::DiffTree(e, "/lcc", "/lcc-copy");
      EXO_CHECK(d.ok());
      EXO_CHECK_EQ(*d, 0);
    });
    step("gcc", "gcc", [](os::UnixEnv& e) {
      EXO_CHECK_EQ(apps::GccBuild(e, "/lcc"), Status::kOk);
    });
    step("rm (.o)", "rm", [](os::UnixEnv& e) {
      EXO_CHECK_EQ(apps::RmByExt(e, "/lcc", ".o"), Status::kOk);
    });
    step("pax -w", "pax", [](os::UnixEnv& e) {
      EXO_CHECK_EQ(apps::PaxWrite(e, "/lcc", "/lcc-new.pax"), Status::kOk);
    });
    step("gzip", "gzip", [](os::UnixEnv& e) {
      EXO_CHECK_EQ(apps::Gzip(e, "/lcc-new.pax", "/lcc-new.pax.gz"), Status::kOk);
    });
    step("rm -r", "rm", [](os::UnixEnv& e) {
      EXO_CHECK_EQ(apps::RmTree(e, "/lcc"), Status::kOk);
    });
  });
  sys.Run();
  for (const auto& s : result.steps) {
    result.total += s.seconds;
  }
  result.syscalls = sys.syscall_count();
  PrintFaultCounters(machine.counters());
  if (trace_opts != nullptr) {
    WriteTraceFile(machine.tracer(), *trace_opts);
  }
  return result;
}

inline void PrintHeader(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

}  // namespace exo::bench

#endif  // EXO_BENCH_COMMON_H_
