// Shared driver for the global-performance experiments (Sec. 8, Figures 4 and 5):
// run a randomized job mix with a fixed concurrency cap and report total throughput
// plus per-job min/max latency. The pseudo-random schedules are seeded identically
// across compared systems, as in the paper.
#ifndef EXO_BENCH_GLOBAL_COMMON_H_
#define EXO_BENCH_GLOBAL_COMMON_H_

#include <algorithm>

#include "bench/common.h"
#include "sim/rng.h"

namespace exo::bench {

struct GlobalJob {
  std::string program;  // /bin name (drives fork/exec cost)
  std::function<void(os::UnixEnv&, int job_index)> body;
  std::function<void(os::UnixEnv&, int job_index)> setup;  // pre-created, untimed
};

struct GlobalResult {
  double total = 0;  // end-to-end seconds (throughput)
  double max_latency = 0;
  double min_latency = 0;
};

inline GlobalResult RunGlobal(os::Flavor flavor, const std::vector<GlobalJob>& pool,
                              int total_jobs, int max_concurrent, uint64_t seed,
                              const TraceOptions* trace_opts = nullptr) {
  sim::Engine engine;
  hw::Machine machine(&engine, PaperMachine(512));
  if (trace_opts != nullptr && trace_opts->on()) {
    machine.tracer().Enable(trace_opts->mask);
  }
  os::System sys(&machine, flavor);
  EXO_CHECK_EQ(sys.Boot(), Status::kOk);

  GlobalResult result;
  sys.SpawnInit("sh", [&](os::UnixEnv& env) {
    // Identical pseudo-random schedules across systems (same seed, Sec. 8).
    sim::Rng rng(seed);
    std::vector<int> schedule;
    for (int i = 0; i < total_jobs; ++i) {
      schedule.push_back(static_cast<int>(rng.Below(pool.size())));
    }
    // Pre-create each job instance's private directory and inputs (untimed).
    for (int i = 0; i < total_jobs; ++i) {
      EXO_CHECK_EQ(env.Mkdir("/job" + std::to_string(i)), Status::kOk);
      if (pool[static_cast<size_t>(schedule[i])].setup) {
        pool[static_cast<size_t>(schedule[i])].setup(env, i);
      }
    }
    EXO_CHECK_EQ(env.Sync(), Status::kOk);

    sim::Cycles t0 = env.Now();
    int launched = 0;
    int running = 0;
    while (launched < total_jobs || running > 0) {
      while (launched < total_jobs && running < max_concurrent) {
        const GlobalJob& job = pool[static_cast<size_t>(schedule[launched])];
        int idx = launched;
        auto pid = env.Spawn(job.program, [&job, idx](os::UnixEnv& child) {
          job.body(child, idx);
        });
        EXO_CHECK(pid.ok());
        ++launched;
        ++running;
      }
      EXO_CHECK(env.WaitAny().ok());
      --running;
    }
    result.total = Secs(env.Now() - t0);
  });
  sys.Run();

  result.min_latency = 1e18;
  for (const auto& rec : sys.proc_records()) {
    if (rec.program == "sh") {
      continue;  // the driver itself
    }
    double lat = Secs(rec.exited_at - rec.spawned_at);
    result.max_latency = std::max(result.max_latency, lat);
    result.min_latency = std::min(result.min_latency, lat);
  }
  if (trace_opts != nullptr) {
    WriteTraceFile(machine.tracer(), *trace_opts);
  }
  return result;
}

// --trace=PATH captures the highest-concurrency Xok/ExOS run.
inline void PrintGlobalTable(const char* title, const std::vector<GlobalJob>& pool,
                             uint64_t seed, const TraceOptions& trace_opts = {}) {
  PrintHeader(title);
  std::printf("%-8s %28s %28s\n", "", "Xok/ExOS", "FreeBSD");
  std::printf("%-8s %9s %9s %8s %9s %9s %8s\n", "jobs/conc", "total", "max", "min",
              "total", "max", "min");
  const int configs[][2] = {{7, 1}, {14, 2}, {21, 3}, {28, 4}, {35, 5}};
  for (auto [jobs, conc] : configs) {
    const bool traced = trace_opts.on() && jobs == 35;
    GlobalResult xok = RunGlobal(os::Flavor::kXokExos, pool, jobs, conc, seed,
                                 traced ? &trace_opts : nullptr);
    GlobalResult bsd = RunGlobal(os::Flavor::kFreeBsd, pool, jobs, conc, seed);
    std::printf("%4d/%-4d %8.2fs %8.2fs %7.2fs %8.2fs %8.2fs %7.2fs\n", jobs, conc,
                xok.total, xok.max_latency, xok.min_latency, bsd.total, bsd.max_latency,
                bsd.min_latency);
  }
}

// Pool helpers: inputs shared read-only live under /shared; per-job outputs go to
// the job's private directory.
inline void MakeSharedInputs(os::UnixEnv& env, bool big_diff_files) {
  if (env.Stat("/shared").ok()) {
    return;
  }
  EXO_CHECK_EQ(env.Mkdir("/shared"), Status::kOk);
  // A small source tree for pax/cp/gcc jobs.
  apps::TreeSpec tree;
  tree.dirs = {"t"};
  for (int i = 0; i < 10; ++i) {
    tree.files.push_back({"t/s" + std::to_string(i) + ".c",
                          static_cast<uint32_t>(15'000 + i * 2'000),
                          static_cast<uint64_t>(i + 7)});
  }
  EXO_CHECK_EQ(apps::WriteTree(env, tree, "/shared"), Status::kOk);
  EXO_CHECK_EQ(apps::PaxWrite(env, "/shared/t", "/shared/t.pax"), Status::kOk);
  // A large text file for grep/wc.
  apps::FileSpec big{.path = "big", .size = 2'000'000, .seed = 99};
  auto content = apps::FileContent(big);
  auto fd = env.Open("/shared/big.txt", true);
  EXO_CHECK(fd.ok());
  EXO_CHECK(env.Write(*fd, content).ok());
  env.Close(*fd);
  if (big_diff_files) {
    apps::FileSpec five{.path = "five", .size = 5'000'000, .seed = 123};
    auto c5 = apps::FileContent(five);
    for (const char* name : {"/shared/five.a", "/shared/five.b"}) {
      auto f5 = env.Open(name, true);
      EXO_CHECK(f5.ok());
      EXO_CHECK(env.Write(*f5, c5).ok());
      env.Close(*f5);
    }
  }
}

}  // namespace exo::bench

#endif  // EXO_BENCH_GLOBAL_COMMON_H_
