// Table 2: pipe latency under three protection regimes (times in microseconds).
// Paper: 1-byte 13 / 30 / 34 us, 8-KByte 150 / 148 / 160 us for
// shared-memory ExOS / protected ExOS (software regions + wakeup predicate per
// read) / OpenBSD.
#include "bench/common.h"

namespace {

using namespace exo;

// One-way latency via an N-round ping-pong between two processes over two pipes.
double PipeLatencyUs(os::Flavor flavor, bool protected_pipes, size_t msg_bytes) {
  sim::Engine engine;
  hw::Machine machine(&engine, bench::PaperMachine(64));
  os::SystemOptions opts;
  opts.protected_pipes = protected_pipes;
  opts.protected_shared_state = false;  // isolate the pipe mechanism itself
  os::System sys(&machine, flavor, opts);
  EXO_CHECK_EQ(sys.Boot(), Status::kOk);

  const int kRounds = 200;
  double us = 0;
  sys.SpawnInit("sh", [&](os::UnixEnv& env) {
    auto ab = env.Pipe();
    auto ba = env.Pipe();
    EXO_CHECK(ab.ok() && ba.ok());
    auto child = env.Fork([ab = *ab, ba = *ba, msg_bytes](os::UnixEnv& c) {
      std::vector<uint8_t> buf(msg_bytes);
      for (int i = 0; i < kRounds; ++i) {
        size_t got = 0;
        while (got < msg_bytes) {
          auto n = c.Read(ab.first, std::span<uint8_t>(buf).subspan(got));
          EXO_CHECK(n.ok());
          got += *n;
        }
        EXO_CHECK(c.Write(ba.second, buf).ok());
      }
    });
    EXO_CHECK(child.ok());

    std::vector<uint8_t> buf(msg_bytes, 0x5a);
    // Warm up one round, then measure.
    EXO_CHECK(env.Write(ab->second, buf).ok());
    size_t got = 0;
    while (got < msg_bytes) {
      auto n = env.Read(ba->first, std::span<uint8_t>(buf).subspan(got));
      EXO_CHECK(n.ok());
      got += *n;
    }
    sim::Cycles t0 = env.Now();
    for (int i = 1; i < kRounds; ++i) {
      EXO_CHECK(env.Write(ab->second, buf).ok());
      got = 0;
      while (got < msg_bytes) {
        auto n = env.Read(ba->first, std::span<uint8_t>(buf).subspan(got));
        EXO_CHECK(n.ok());
        got += *n;
      }
    }
    // One round = two one-way transfers.
    us = static_cast<double>(env.Now() - t0) / 200.0 / (kRounds - 1) / 2.0;
    EXO_CHECK(env.Wait(*child).ok());
  });
  sys.Run();
  return us;
}

}  // namespace

int main() {
  using namespace exo;
  bench::PrintHeader("Table 2: pipe latency (one-way, microseconds)");
  std::printf("%-16s %14s %12s %10s\n", "benchmark", "Shared memory", "Protection",
              "OpenBSD");
  double s1 = PipeLatencyUs(os::Flavor::kXokExos, false, 1);
  double p1 = PipeLatencyUs(os::Flavor::kXokExos, true, 1);
  double b1 = PipeLatencyUs(os::Flavor::kOpenBsd, false, 1);
  std::printf("%-16s %13.1f %12.1f %10.1f\n", "Latency 1-byte", s1, p1, b1);
  double s8 = PipeLatencyUs(os::Flavor::kXokExos, false, 8192);
  double p8 = PipeLatencyUs(os::Flavor::kXokExos, true, 8192);
  double b8 = PipeLatencyUs(os::Flavor::kOpenBsd, false, 8192);
  std::printf("%-16s %13.1f %12.1f %10.1f\n", "Latency 8-KByte", s8, p8, b8);
  std::printf("\npaper:           1-byte: 13 / 30 / 34      8-KByte: 150 / 148 / 160\n");
  return 0;
}
