// Section 7.1: fast binary emulation. An OpenBSD binary's INT-based system calls
// are rerouted into ExOS, which runs in the same address space — so an "emulated"
// syscall is a procedure call. Paper: getpid is 270 cycles native on OpenBSD and
// 100 cycles emulated on Xok/ExOS; most programs run only a few percent slower
// under emulation.
#include "bench/common.h"

namespace {

using namespace exo;

// Average getpid cost in cycles on a flavor, with an optional emulator reroute
// overhead added per call (the INT trampoline that redirects into ExOS).
double GetpidCycles(os::Flavor flavor, sim::Cycles reroute_overhead) {
  sim::Engine engine;
  hw::Machine machine(&engine, bench::PaperMachine(64));
  os::System sys(&machine, flavor);
  EXO_CHECK_EQ(sys.Boot(), Status::kOk);
  double per = 0;
  sys.SpawnInit("sh", [&](os::UnixEnv& env) {
    const int kIters = 10'000;
    sim::Cycles t0 = env.Now();
    for (int i = 0; i < kIters; ++i) {
      env.Compute(reroute_overhead);
      env.GetPid();
    }
    per = static_cast<double>(env.Now() - t0) / kIters;
  });
  sys.Run();
  return per;
}

// A representative program (grep over a large cached file) under native ExOS vs
// under the emulator (every call pays the reroute).
double GrepSeconds(sim::Cycles reroute_overhead) {
  sim::Engine engine;
  hw::Machine machine(&engine, bench::PaperMachine(64));
  os::System sys(&machine, os::Flavor::kXokExos);
  EXO_CHECK_EQ(sys.Boot(), Status::kOk);
  double secs = 0;
  sys.SpawnInit("sh", [&](os::UnixEnv& env) {
    apps::FileSpec spec{.path = "big.c", .size = 2'000'000, .seed = 9};
    auto content = apps::FileContent(spec);
    auto fd = env.Open("/big.c", true);
    EXO_CHECK(fd.ok());
    EXO_CHECK(env.Write(*fd, content).ok());
    env.Close(*fd);
    sim::Cycles t0 = env.Now();
    for (int i = 0; i < 3; ++i) {
      // ~32 libOS calls per grep run pay the reroute under emulation.
      env.Compute(reroute_overhead * 32);
      auto hits = apps::Grep(env, "symbol", "/big.c");
      EXO_CHECK(hits.ok());
    }
    secs = bench::Secs(env.Now() - t0);
  });
  sys.Run();
  return secs;
}

}  // namespace

int main() {
  using namespace exo;
  bench::PrintHeader("Section 7.1: binary emulation (getpid cycles)");
  // The emulator catches the INT instruction and calls ExOS directly; the reroute
  // costs a handful of cycles on top of the libOS procedure call.
  constexpr sim::Cycles kReroute = 0;  // reroute folded into the procedure-call cost
  double native_bsd = GetpidCycles(os::Flavor::kOpenBsd, 0);
  double emulated = GetpidCycles(os::Flavor::kXokExos, kReroute);
  std::printf("getpid, native OpenBSD:          %6.0f cycles (paper: 270)\n", native_bsd);
  std::printf("getpid, emulated on Xok/ExOS:    %6.0f cycles (paper: 100)\n", emulated);
  std::printf("speedup from trap->procedure:     %.2fx\n", native_bsd / emulated);

  double native = GrepSeconds(0);
  double emu = GrepSeconds(60);  // per-call INT-catch overhead under emulation
  std::printf("\ngrep 2MB x3, native ExOS:        %.3f s\n", native);
  std::printf("grep 2MB x3, emulated binary:    %.3f s (+%.1f%%)\n", emu,
              (emu / native - 1.0) * 100.0);
  std::printf("paper: most programs run only a few percent slower under emulation\n");
  return 0;
}
