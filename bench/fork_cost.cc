// Section 6.2 (text): fork costs. ExOS fork takes ~6 ms because Xok environments
// cannot share page tables (the libOS rebuilds the child's address space through
// batched system calls); OpenBSD forks in under a millisecond.
#include "bench/common.h"

namespace {

using namespace exo;

double ForkMs(os::Flavor flavor, const std::string& program) {
  sim::Engine engine;
  hw::Machine machine(&engine, bench::PaperMachine(64));
  os::System sys(&machine, flavor);
  EXO_CHECK_EQ(sys.Boot(), Status::kOk);
  double ms = 0;
  sys.SpawnInit(program, [&](os::UnixEnv& env) {
    const int kIters = 20;
    sim::Cycles total = 0;
    for (int i = 0; i < kIters; ++i) {
      sim::Cycles t0 = env.Now();
      auto pid = env.Fork([](os::UnixEnv&) {});
      total += env.Now() - t0;
      EXO_CHECK(pid.ok());
      EXO_CHECK(env.Wait(*pid).ok());
    }
    ms = static_cast<double>(total) / kIters / 200'000.0;
  });
  sys.Run();
  return ms;
}

}  // namespace

int main() {
  using namespace exo;
  bench::PrintHeader("Section 6.2: fork cost (milliseconds, fork of a gcc-sized process)");
  double exos = ForkMs(os::Flavor::kXokExos, "gcc");
  double obsd = ForkMs(os::Flavor::kOpenBsd, "gcc");
  std::printf("Xok/ExOS fork:  %6.2f ms   (paper: ~6 ms)\n", exos);
  std::printf("OpenBSD fork:   %6.2f ms   (paper: <1 ms)\n", obsd);
  std::printf("\nsmaller processes fork proportionally faster:\n");
  std::printf("Xok/ExOS fork of wc-sized process: %5.2f ms\n",
              ForkMs(os::Flavor::kXokExos, "wc"));
  std::printf("OpenBSD  fork of wc-sized process: %5.2f ms\n",
              ForkMs(os::Flavor::kOpenBsd, "wc"));
  return 0;
}
