// Noisy-neighbor isolation: per-tenant goodput and tail latency with stride
// scheduling + pressure revocation on, vs the paper-faithful round-robin.
//
// Method. One XokKernel hosts two tenants: three latency-sensitive "victim"
// envs (open-loop request every 0.5 ms: CPU burn + region write + NIC
// transmit) and one "flooder" tenant of eight workers draining a seeded
// multi-resource op script (CPU burn, frame hoarding, NIC spray, disk DMA)
// and then spinning CPU-bound to the deadline. The victim tenant holds 1200
// tickets, the flooder 96, and the pressure monitor revokes frames from
// whoever is most over its proportional share. The same scenario runs twice —
// stride scheduling on, then the round-robin compatibility mode — and the
// table reports each tenant's goodput, p50/p99, and CPU share. CPU shares
// come from the per-tenant trace tracks: every env's `run` spans are summed
// from the trace ring, the same attribution a Perfetto view of the run shows.
//
// Stdout is the human-readable table (deterministic, golden-diffable). A JSON
// dump goes to BENCH_noisy_neighbor.json (--out FILE overrides). With
// `--check bench/noisy_neighbor_baseline.json` the binary exits nonzero
// unless, under stride, victim goodput and p99 hold their committed bounds
// while round-robin still demonstrates the starvation this PR exists to fix.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <string>
#include <vector>

#include "bench/common.h"
#include "hw/machine.h"
#include "hw/nic.h"
#include "sim/check.h"
#include "sim/engine.h"
#include "sim/fuzz.h"
#include "trace/trace.h"
#include "xok/capability.h"
#include "xok/kernel.h"

namespace {

using namespace exo;

constexpr uint32_t kMhz = 200;
constexpr sim::Cycles kQuantum = 50'000;  // 0.25 ms
constexpr uint64_t kEpochs = 8;
constexpr sim::Cycles kEpoch = 500'000;
constexpr int kVictims = 3;
constexpr int kFloodWorkers = 8;
constexpr uint32_t kVictimTickets = 400;  // tenant total 1200
constexpr uint32_t kFloodTickets = 12;    // tenant total 96
constexpr sim::Cycles kVictimInterval = 100'000;
constexpr sim::Cycles kVictimService = 20'000;
constexpr sim::Cycles kLatencySlo = 400'000;  // 2 ms: the goodput cutoff
constexpr uint32_t kNoDma = UINT32_MAX;

struct TenantStats {
  double goodput_frac = 0;  // victim requests answered within the SLO
  double p50_ms = 0;
  double p99_ms = 0;
  double victim_cpu_frac = 0;  // run-span cycles on victim tracks / total
  double flood_cpu_frac = 0;
  uint64_t pressure_revokes = 0;
  uint64_t completed = 0;
};

// One full scenario run. The flood script is regenerated from the same seed
// each lane, so stride and round-robin face an identical offered load.
TenantStats RunLane(bool stride) {
  sim::Engine engine;
  hw::MachineConfig mc;
  mc.mem_frames = 256;
  mc.cost.quantum = kQuantum;
  hw::Machine machine(&engine, mc);
  machine.tracer().Enable(trace::Bit(trace::Category::kSched));
  hw::Nic peer(99);
  hw::Link link(&engine, 100.0, 10.0, kMhz);
  link.Connect(&peer, &machine.nic(0));
  xok::XokKernel kernel(&machine);
  if (!stride) {
    kernel.SetStrideScheduling(false);
  }
  xok::MemoryPressurePolicy pp;
  pp.low_frames = 64;
  pp.high_frames = 96;
  pp.grace = 6 * kQuantum;
  pp.min_interval = 2 * kQuantum;
  kernel.SetMemoryPressurePolicy(pp);

  const sim::Cycles deadline = kEpochs * kEpoch;

  struct FloodOp {
    char kind;
    uint32_t arg;
  };
  std::vector<FloodOp> ops;
  {
    sim::Fuzzer fz(1);
    for (size_t i = 0; i < 24 * kEpochs; ++i) {
      const uint32_t k = fz.Pick(100);
      if (k < 30) {
        ops.push_back({'c', 5'000 + fz.Pick(20'000)});
      } else if (k < 60) {
        ops.push_back({'f', 4 + fz.Pick(12)});
      } else if (k < 72) {
        ops.push_back({'r', 1 + fz.Pick(6)});
      } else if (k < 88) {
        ops.push_back({'n', 1 + fz.Pick(4)});
      } else {
        ops.push_back({'d', fz.Pick(64)});
      }
    }
  }

  std::vector<std::vector<sim::Cycles>> lat(kVictims);
  std::vector<std::vector<hw::FrameId>> held(kFloodWorkers);
  std::vector<hw::FrameId> dma(kFloodWorkers, kNoDma);
  size_t next_op = 0;
  uint64_t disk_done = 0;
  std::vector<uint32_t> victim_tracks, flood_tracks;

  const uint64_t reqs = deadline / kVictimInterval;  // per victim
  for (int i = 0; i < kVictims; ++i) {
    xok::EnvId id = kernel.CreateEnv(
        xok::kInvalidEnv, {xok::Capability::Root()}, [&kernel, &lat, i, reqs] {
          auto rgn = kernel.SysRegionCreate(4096, {xok::kCapUsers, 7}, 0);
          EXO_CHECK(rgn.ok());
          uint8_t buf[64] = {0x42};
          for (uint64_t k = 0; k < reqs; ++k) {
            const sim::Cycles arrival =
                k * kVictimInterval + static_cast<sim::Cycles>(i) * 33'333;
            if (kernel.Now() < arrival) {
              xok::WakeupPredicate p;
              p.deadline = arrival;
              p.host_cost = 40;
              p.host = [&kernel, arrival] { return kernel.Now() >= arrival; };
              kernel.SysSleep(std::move(p));
            }
            kernel.ChargeCpu(kVictimService);
            (void)kernel.SysRegionWrite(*rgn, static_cast<uint32_t>((k * 64) % 4000),
                                        std::span<const uint8_t>(buf, 64), 0);
            (void)kernel.SysNicTransmit(0, hw::Packet{std::vector<uint8_t>(256, 0x55)});
            lat[i].push_back(kernel.Now() - arrival);
          }
        });
    xok::ResourceQuota q;
    q.cpu_tickets = kVictimTickets;
    EXO_CHECK_EQ(kernel.SysSetQuota(id, q, xok::kCredAny), Status::kOk);
    victim_tracks.push_back(kernel.env(id).trace_track);
  }

  for (int w = 0; w < kFloodWorkers; ++w) {
    const xok::CapName guard{xok::kCapUsers, static_cast<uint16_t>(50 + w)};
    xok::EnvId id = kernel.CreateEnv(
        xok::kInvalidEnv, {xok::Capability{guard, /*write=*/true}},
        [&kernel, &machine, &ops, &held, &dma, &next_op, &disk_done, w, guard,
         deadline] {
          auto f = kernel.SysFrameAlloc(0, guard);
          if (f.ok()) {
            dma[w] = *f;
          }
          while (next_op < ops.size() && kernel.Now() < deadline) {
            const FloodOp op = ops[next_op++];
            switch (op.kind) {
              case 'c':
                kernel.ChargeCpu(op.arg);
                break;
              case 'f':
                for (uint32_t i = 0; i < op.arg; ++i) {
                  auto h = kernel.SysFrameAlloc(0, guard);
                  if (!h.ok()) {
                    break;
                  }
                  held[w].push_back(*h);
                }
                break;
              case 'r':
                for (uint32_t i = 0; i < op.arg && !held[w].empty(); ++i) {
                  (void)kernel.SysFrameFree(held[w].back(), 0);
                  held[w].pop_back();
                }
                break;
              case 'n':
                for (uint32_t i = 0; i < op.arg; ++i) {
                  (void)kernel.SysNicTransmit(
                      0, hw::Packet{std::vector<uint8_t>(1200, 0xee)});
                }
                break;
              default:  // 'd'
                if (dma[w] != kNoDma) {
                  machine.disk().Submit({.write = true,
                                         .start = op.arg % 64,
                                         .nblocks = 1,
                                         .frames = {dma[w]},
                                         .done = [&disk_done](Status) { ++disk_done; }});
                }
                break;
            }
          }
          while (kernel.Now() < deadline) {
            kernel.ChargeCpu(kQuantum);
          }
          while (!held[w].empty()) {
            (void)kernel.SysFrameFree(held[w].back(), 0);
            held[w].pop_back();
          }
          if (dma[w] != kNoDma) {
            (void)kernel.SysFrameFree(dma[w], 0);
            dma[w] = kNoDma;
          }
        });
    xok::ResourceQuota q;
    q.cpu_tickets = kFloodTickets;
    EXO_CHECK_EQ(kernel.SysSetQuota(id, q, xok::kCredAny), Status::kOk);
    flood_tracks.push_back(kernel.env(id).trace_track);
    kernel.env(id).on_revoke = [&kernel, &held, id, w](const xok::RevocationRequest& req) {
      while (kernel.env(id).usage.frames > req.allowed && !held[w].empty()) {
        if (kernel.SysFrameFree(held[w].back(), 0) != Status::kOk) {
          break;
        }
        held[w].pop_back();
      }
    };
  }

  kernel.Run();
  engine.RunUntilIdle();

  TenantStats s;
  s.pressure_revokes = machine.counters().Get("xok.pressure_revokes");

  std::vector<sim::Cycles> all;
  for (int i = 0; i < kVictims; ++i) {
    all.insert(all.end(), lat[i].begin(), lat[i].end());
  }
  s.completed = all.size();
  EXO_CHECK_EQ(all.size(), reqs * kVictims);  // no request may be lost outright
  std::sort(all.begin(), all.end());
  uint64_t good = 0;
  for (sim::Cycles l : all) {
    good += l <= kLatencySlo ? 1 : 0;
  }
  s.goodput_frac = static_cast<double>(good) / static_cast<double>(all.size());
  const double cycles_per_ms = static_cast<double>(kMhz) * 1000.0;
  s.p50_ms = static_cast<double>(all[all.size() / 2]) / cycles_per_ms;
  s.p99_ms = static_cast<double>(all[(all.size() * 99 + 99) / 100 - 1]) / cycles_per_ms;

  // Per-tenant CPU attribution from the trace: sum each track's `run` spans.
  std::vector<sim::Cycles> track_cpu(machine.tracer().track_names().size(), 0);
  std::vector<sim::Cycles> open(track_cpu.size(), 0);
  for (const trace::Record& rec : machine.tracer().Records()) {
    if (rec.category != trace::Category::kSched ||
        std::strcmp(rec.name, "run") != 0 || rec.track >= track_cpu.size()) {
      continue;
    }
    if (rec.kind == trace::Kind::kBegin) {
      open[rec.track] = rec.time;
    } else if (rec.kind == trace::Kind::kEnd) {
      track_cpu[rec.track] += rec.time - open[rec.track];
    }
  }
  EXO_CHECK_EQ(machine.tracer().dropped(), 0u);  // ring must cover the whole run
  sim::Cycles victim_cpu = 0, flood_cpu = 0;
  for (uint32_t t : victim_tracks) {
    victim_cpu += track_cpu[t];
  }
  for (uint32_t t : flood_tracks) {
    flood_cpu += track_cpu[t];
  }
  s.victim_cpu_frac = static_cast<double>(victim_cpu) / static_cast<double>(deadline);
  s.flood_cpu_frac = static_cast<double>(flood_cpu) / static_cast<double>(deadline);
  return s;
}

// Pulls `"key": <number>` out of a flat JSON file without a JSON dependency.
bool JsonNumber(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) {
    return false;
  }
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_noisy_neighbor.json";
  std::string check_path;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check_path = argv[i + 1];
    }
  }

  bench::PrintHeader("noisy neighbor: per-tenant goodput/latency, stride vs round-robin");
  std::printf("victims %d x %u tickets, flooder %d x %u tickets, %llu epochs of %.1f ms\n\n",
              kVictims, kVictimTickets, kFloodWorkers, kFloodTickets,
              static_cast<unsigned long long>(kEpochs),
              static_cast<double>(kEpoch) / (kMhz * 1000.0));

  const TenantStats st = RunLane(/*stride=*/true);
  const TenantStats rr = RunLane(/*stride=*/false);

  std::printf("%-12s %-9s %-8s %-8s %-11s %-10s %-8s\n", "scheduler", "goodput",
              "p50ms", "p99ms", "victim-cpu", "flood-cpu", "revokes");
  auto row = [](const char* name, const TenantStats& s) {
    std::printf("%-12s %-9.3f %-8.2f %-8.2f %-11.2f %-10.2f %-8llu\n", name,
                s.goodput_frac, s.p50_ms, s.p99_ms, s.victim_cpu_frac, s.flood_cpu_frac,
                static_cast<unsigned long long>(s.pressure_revokes));
  };
  row("stride", st);
  row("round-robin", rr);
  std::printf("\nvictim p99: %.2f ms under stride vs %.2f ms under round-robin (%.0fx)\n",
              st.p99_ms, rr.p99_ms, rr.p99_ms / st.p99_ms);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"noisy_neighbor\",\n");
  std::fprintf(f,
               "  \"stride\": {\"goodput_frac\": %.4f, \"p50_ms\": %.3f, \"p99_ms\": "
               "%.3f, \"victim_cpu_frac\": %.3f, \"flood_cpu_frac\": %.3f, "
               "\"pressure_revokes\": %llu},\n",
               st.goodput_frac, st.p50_ms, st.p99_ms, st.victim_cpu_frac,
               st.flood_cpu_frac, static_cast<unsigned long long>(st.pressure_revokes));
  std::fprintf(f,
               "  \"round_robin\": {\"goodput_frac\": %.4f, \"p50_ms\": %.3f, "
               "\"p99_ms\": %.3f, \"victim_cpu_frac\": %.3f, \"flood_cpu_frac\": %.3f, "
               "\"pressure_revokes\": %llu}\n",
               rr.goodput_frac, rr.p50_ms, rr.p99_ms, rr.victim_cpu_frac,
               rr.flood_cpu_frac, static_cast<unsigned long long>(rr.pressure_revokes));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  if (!check_path.empty()) {
    FILE* b = std::fopen(check_path.c_str(), "r");
    if (b == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", check_path.c_str());
      return 1;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), b)) > 0) {
      text.append(buf, n);
    }
    std::fclose(b);
    double min_goodput = 0, max_p99 = 0, min_rr_p99 = 0;
    if (!JsonNumber(text, "min_stride_goodput_frac", &min_goodput) ||
        !JsonNumber(text, "max_stride_p99_ms", &max_p99) ||
        !JsonNumber(text, "min_round_robin_p99_ms", &min_rr_p99)) {
      std::fprintf(stderr, "baseline %s missing required keys\n", check_path.c_str());
      return 1;
    }
    if (st.goodput_frac < min_goodput) {
      std::fprintf(stderr, "FAIL: stride goodput %.3f below baseline floor %.3f\n",
                   st.goodput_frac, min_goodput);
      return 1;
    }
    if (st.p99_ms > max_p99) {
      std::fprintf(stderr, "FAIL: stride victim p99 %.2f ms above baseline cap %.2f ms\n",
                   st.p99_ms, max_p99);
      return 1;
    }
    if (rr.p99_ms < min_rr_p99) {
      std::fprintf(stderr,
                   "FAIL: round-robin victim p99 %.2f ms below %.2f ms: the control "
                   "lane stopped demonstrating the starvation stride exists to fix\n",
                   rr.p99_ms, min_rr_p99);
      return 1;
    }
    std::fprintf(stderr, "baseline check passed (%.3f >= %.3f, %.2f <= %.2f, %.2f >= %.2f)\n",
                 st.goodput_frac, min_goodput, st.p99_ms, max_p99, rr.p99_ms, min_rr_p99);
  }
  return 0;
}
