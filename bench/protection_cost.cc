// Section 6.3: the cost of protection. Runs the Figure 2 workload on Xok/ExOS with
// full protection (XN + 3 syscalls before shared-state writes) and without, and
// reports total time and syscall counts (paper: 41.1 s / ~300k syscalls vs 39.7 s /
// ~81k syscalls).
#include "bench/common.h"

int main() {
  using namespace exo;
  using namespace exo::bench;

  PrintHeader("Section 6.3: the cost of protection (Xok/ExOS)");

  os::SystemOptions prot;
  prot.protected_shared_state = true;
  prot.disable_xn = false;
  WorkloadResult with = RunIoWorkload(os::Flavor::kXokExos, prot);

  os::SystemOptions none;
  none.protected_shared_state = false;
  none.disable_xn = true;
  WorkloadResult without = RunIoWorkload(os::Flavor::kXokExos, none);

  std::printf("%-34s %10s %12s\n", "configuration", "total", "syscalls");
  std::printf("%-34s %9.2fs %12llu\n", "XN + shared-state protection", with.total,
              static_cast<unsigned long long>(with.syscalls));
  std::printf("%-34s %9.2fs %12llu\n", "no XN, no protection syscalls", without.total,
              static_cast<unsigned long long>(without.syscalls));
  std::printf("\npaper: 41.1 s / ~300,000 syscalls  vs  39.7 s / ~81,000 syscalls\n");
  std::printf("(real workloads are dominated by costs other than system call overhead)\n");
  return 0;
}
