// Overload sweep: offered load vs goodput and tail latency, with and without
// admission control — the graceful-degradation curve ROBUSTNESS.md and
// docs/OVERLOAD.md discuss.
//
// Method. A closed-loop warm-up run saturates the server to measure peak
// capacity (a closed loop self-throttles, so it finds the service rate without
// collapsing). Then an *open-loop* client — arrivals on a fixed schedule that
// does not slow down when the server does — offers multiples of that capacity,
// once with the overload policy off and once with it on. Clients abandon
// requests after 500 ms (an impatient human or upstream timeout): past
// saturation an unprotected server queues every arrival, delay crosses the
// abandonment threshold, and it ends up serving responses nobody is waiting
// for — goodput collapses toward zero while the machine runs flat out. With
// shedding, the server answers excess arrivals with a cheap early 503 and
// keeps its queue short, so accepted requests still finish in time (SEDA's
// argument; Welsh & Culler, "Adaptive Overload Control for Busy Internet
// Servers", USITS 2003).
//
// Stdout is the human-readable table (deterministic, golden-diffable). A JSON
// dump goes to BENCH_overload.json (--out FILE overrides). With
// `--check bench/overload_baseline.json` the binary exits nonzero unless the
// with-shedding goodput at 2x capacity stays above the committed floor and the
// unprotected server demonstrably collapses — the CI acceptance gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/http.h"
#include "bench/common.h"
#include "hw/nic.h"
#include "sim/engine.h"

namespace {

using namespace exo;

constexpr uint32_t kMhz = 200;
constexpr sim::Cycles kCyclesPerSec = static_cast<sim::Cycles>(kMhz) * 1'000'000;
constexpr sim::Cycles kClientTimeout = 100'000'000;  // 500 ms: abandonment point
constexpr size_t kDocBytes = 4096;

net::ServerOverloadPolicy SheddingPolicy() {
  net::ServerOverloadPolicy p;
  p.enabled = true;
  p.listen_backlog = 64;
  // NCSA's fork-bound service time is ~1.5 ms, so the high watermark admits a
  // queue of ~3 requests and hysteresis re-admits once it drains under one.
  p.high_watermark_us = 5'000;
  p.low_watermark_us = 1'000;
  p.request_deadline_us = 100'000;
  return p;
}

struct RunResult {
  double goodput = 0;   // completed requests / simulated second
  double shed = 0;      // 503s / second
  double failed = 0;    // timed-out or reset requests / second
  double p50_ms = 0;    // latency of completed requests
  double p99_ms = 0;
};

struct Harness {
  sim::Engine engine;
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  apps::HttpServer server;
  hw::Nic server_nic{0};
  hw::Nic client_nic{1};
  hw::Link link;

  // Server choice and wire speed both matter for what the sweep demonstrates.
  // NCSA's fork-per-request service (~300k cycles) dwarfs the ~27k cycles of
  // per-connection TCP work an early 503 cannot avoid (handshake, request rx,
  // teardown), so shedding genuinely recovers capacity; on a thin-stack server
  // the unsavable share approaches half and no admission policy can hold the
  // goodput plateau. A gigabit link keeps the wire out of the way: the
  // bottleneck is the server CPU, the resource the watermarks actually guard
  // (on a 100-Mbit wire a 4-KByte doc saturates the link first, and no amount
  // of CPU shedding can protect a saturated wire).
  explicit Harness(bool shedding)
      : server(&engine, &cost, apps::ServerStyle::kNcsaBsd, /*ip=*/100),
        link(&engine, 1000.0, 40.0, kMhz) {
    server.AddDocument("doc", std::vector<uint8_t>(kDocBytes, 0x42));
    if (shedding) {
      server.SetOverloadPolicy(SheddingPolicy());
    }
    link.Connect(&server_nic, &client_nic);
    server.AttachNic(&server_nic, /*peer_ip=*/1);
    server.Listen(80);
  }
};

// Peak capacity in requests/s: a saturating closed loop against the
// *unprotected* configuration. A closed loop self-throttles, so it finds the
// service rate without collapse — and with the policy off every completion is
// a genuine 200, not a fast 503 the watermark would produce at concurrency 16.
double MeasureCapacity(double sim_seconds) {
  Harness h(/*shedding=*/false);
  apps::HttpClient closed(&h.engine, &h.cost, &h.client_nic, /*ip=*/1, 100, "doc",
                          /*concurrency=*/16);
  const sim::Cycles deadline = static_cast<sim::Cycles>(sim_seconds * kCyclesPerSec);
  closed.Start(deadline);
  h.engine.RunUntilIdle();
  return static_cast<double>(closed.completed()) / sim_seconds;
}

RunResult RunOffered(double offered_per_sec, double sim_seconds, bool shedding) {
  Harness h(shedding);
  const sim::Cycles interval =
      static_cast<sim::Cycles>(static_cast<double>(kCyclesPerSec) / offered_per_sec);
  apps::OpenLoopHttpClient open(&h.engine, &h.cost, &h.client_nic, /*ip=*/1, 100,
                                "doc", interval);
  open.set_request_timeout(kClientTimeout);
  const sim::Cycles deadline = static_cast<sim::Cycles>(sim_seconds * kCyclesPerSec);
  open.Start(deadline);
  h.engine.RunUntilIdle();

  RunResult r;
  r.goodput = static_cast<double>(open.completed()) / sim_seconds;
  r.shed = static_cast<double>(open.rejected()) / sim_seconds;
  r.failed = static_cast<double>(open.failed()) / sim_seconds;
  const double cycles_per_ms = static_cast<double>(kMhz) * 1000.0;
  r.p50_ms = static_cast<double>(open.latency().Percentile(50)) / cycles_per_ms;
  r.p99_ms = static_cast<double>(open.latency().Percentile(99)) / cycles_per_ms;
  return r;
}

// Pulls `"key": <number>` out of a flat JSON file without a JSON dependency.
bool JsonNumber(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) {
    return false;
  }
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_overload.json";
  std::string check_path;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check_path = argv[i + 1];
    }
  }

  bench::PrintHeader("overload sweep: offered load vs goodput, shedding off/on");

  const double sim_seconds = 4.0;
  const double capacity = MeasureCapacity(2.0);
  std::printf("peak capacity (closed-loop, %zu-byte doc): %.0f req/s\n\n", kDocBytes,
              capacity);
  std::printf("%-8s %-9s | %-31s | %-31s\n", "", "", "shedding off", "shedding on");
  std::printf("%-8s %-9s | %-9s %-6s %-7s %-7s | %-9s %-6s %-7s %-7s\n", "load",
              "offered", "goodput", "fail/s", "p50ms", "p99ms", "goodput", "shed/s",
              "p50ms", "p99ms");

  const double multiples[] = {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0};
  std::vector<double> mult_v;
  std::vector<RunResult> off_v, on_v;
  for (double m : multiples) {
    const double offered = m * capacity;
    const RunResult off = RunOffered(offered, sim_seconds, /*shedding=*/false);
    const RunResult on = RunOffered(offered, sim_seconds, /*shedding=*/true);
    std::printf("%-8.2f %-9.0f | %-9.0f %-6.0f %-7.1f %-7.1f | %-9.0f %-6.0f %-7.1f %-7.1f\n",
                m, offered, off.goodput, off.failed, off.p50_ms, off.p99_ms,
                on.goodput, on.shed, on.p50_ms, on.p99_ms);
    mult_v.push_back(m);
    off_v.push_back(off);
    on_v.push_back(on);
  }

  // Acceptance quantities: goodput at 2x offered load as a fraction of peak.
  double frac_on_2x = 0;
  double frac_off_2x = 0;
  for (size_t i = 0; i < mult_v.size(); ++i) {
    if (mult_v[i] == 2.0) {
      frac_on_2x = on_v[i].goodput / capacity;
      frac_off_2x = off_v[i].goodput / capacity;
    }
  }
  std::printf("\ngoodput at 2.0x capacity: %.0f%% of peak with shedding, %.0f%% without\n",
              frac_on_2x * 100, frac_off_2x * 100);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"overload_sweep\",\n");
  std::fprintf(f, "  \"capacity_req_per_s\": %.1f,\n", capacity);
  std::fprintf(f, "  \"goodput_frac_at_2x_with_shedding\": %.4f,\n", frac_on_2x);
  std::fprintf(f, "  \"goodput_frac_at_2x_without_shedding\": %.4f,\n", frac_off_2x);
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < mult_v.size(); ++i) {
    const RunResult& off = off_v[i];
    const RunResult& on = on_v[i];
    std::fprintf(f,
                 "    {\"multiple\": %.2f, \"offered\": %.1f, "
                 "\"off\": {\"goodput\": %.1f, \"failed\": %.1f, \"p50_ms\": %.2f, "
                 "\"p99_ms\": %.2f}, "
                 "\"on\": {\"goodput\": %.1f, \"shed\": %.1f, \"p50_ms\": %.2f, "
                 "\"p99_ms\": %.2f}}%s\n",
                 mult_v[i], mult_v[i] * capacity, off.goodput, off.failed, off.p50_ms,
                 off.p99_ms, on.goodput, on.shed, on.p50_ms, on.p99_ms,
                 i + 1 < mult_v.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  if (!check_path.empty()) {
    FILE* b = std::fopen(check_path.c_str(), "r");
    if (b == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", check_path.c_str());
      return 1;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), b)) > 0) {
      text.append(buf, n);
    }
    std::fclose(b);
    double min_on = 0;
    double max_off = 0;
    if (!JsonNumber(text, "min_goodput_frac_at_2x_with_shedding", &min_on) ||
        !JsonNumber(text, "max_goodput_frac_at_2x_without_shedding", &max_off)) {
      std::fprintf(stderr, "baseline %s missing required keys\n", check_path.c_str());
      return 1;
    }
    if (frac_on_2x < min_on) {
      std::fprintf(stderr,
                   "FAIL: goodput at 2x with shedding %.2f below baseline floor %.2f\n",
                   frac_on_2x, min_on);
      return 1;
    }
    if (frac_off_2x > max_off) {
      std::fprintf(stderr,
                   "FAIL: unprotected server no longer collapses (%.2f > %.2f): "
                   "the without-shedding lane stopped demonstrating the failure mode\n",
                   frac_off_2x, max_off);
      return 1;
    }
    std::fprintf(stderr, "baseline check passed (%.2f >= %.2f, %.2f <= %.2f)\n",
                 frac_on_2x, min_on, frac_off_2x, max_off);
  }
  return 0;
}
