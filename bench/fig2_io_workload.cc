// Figure 2 / Table 1: the I/O-intensive lcc-install workload across all four OS
// configurations. Prints per-application runtimes (seconds) like the figure's bars,
// plus totals (paper: Xok/ExOS 41 s, OpenBSD/C-FFS 51 s, OpenBSD/FreeBSD ~60 s).
//
// --trace=PATH captures the Xok/ExOS run (the other flavors run untraced).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace exo;
  using namespace exo::bench;

  const TraceOptions trace_opts = ParseTraceArgs(argc, argv);

  const os::Flavor flavors[] = {os::Flavor::kXokExos, os::Flavor::kOpenBsdCffs,
                                os::Flavor::kOpenBsd, os::Flavor::kFreeBsd};

  PrintHeader("Figure 2: unmodified UNIX applications, lcc install workload");
  std::vector<WorkloadResult> results;
  for (os::Flavor f : flavors) {
    const bool traced = trace_opts.on() && f == os::Flavor::kXokExos;
    results.push_back(RunIoWorkload(f, {}, 42, traced ? &trace_opts : nullptr));
  }

  std::printf("%-12s", "step");
  for (os::Flavor f : flavors) {
    std::printf("  %14s", os::FlavorName(f));
  }
  std::printf("\n");
  for (size_t i = 0; i < results[0].steps.size(); ++i) {
    std::printf("%-12s", results[0].steps[i].name.c_str());
    for (const auto& r : results) {
      std::printf("  %13.2fs", r.steps[i].seconds);
    }
    std::printf("\n");
  }
  std::printf("%-12s", "TOTAL");
  for (const auto& r : results) {
    std::printf("  %13.2fs", r.total);
  }
  std::printf("\n\npaper totals: Xok/ExOS 41 s | OpenBSD/C-FFS 51 s | OpenBSD ~60 s | FreeBSD ~60 s\n");
  return 0;
}
