// Section 6.1 (text): the Modified Andrew Benchmark. Five phases — make
// directories, copy files, stat the tree, read every file, compile — each phase run
// as spawned processes, making the benchmark fork-heavy (the reason Xok/ExOS does
// not win it outright: ExOS fork is expensive, Sec. 6.2).
// Paper: Xok/ExOS 11.5 s, OpenBSD/C-FFS 12.5 s, OpenBSD 14.2 s, FreeBSD 11.5 s.
#include "bench/common.h"

namespace {

using namespace exo;

double RunMab(os::Flavor flavor) {
  sim::Engine engine;
  hw::Machine machine(&engine, bench::PaperMachine());
  os::System sys(&machine, flavor);
  EXO_CHECK_EQ(sys.Boot(), Status::kOk);

  double total = 0;
  sys.SpawnInit("sh", [&](os::UnixEnv& env) {
    // Source payload for the copy/compile phases (untimed staging).
    apps::TreeSpec tree;
    tree.dirs = {"src"};
    for (int i = 0; i < 25; ++i) {
      tree.files.push_back({"src/m" + std::to_string(i) + ".c",
                            static_cast<uint32_t>(6'000 + i * 900),
                            static_cast<uint64_t>(i + 31)});
    }
    EXO_CHECK_EQ(apps::WriteTree(env, tree, "/mab-src"), Status::kOk);
    EXO_CHECK_EQ(env.Sync(), Status::kOk);

    sim::Cycles t0 = env.Now();

    // Phase 1: mkdir (one process per 10 directories — fork-heavy).
    for (int batch = 0; batch < 5; ++batch) {
      auto pid = env.Spawn("sh", [batch](os::UnixEnv& e) {
        for (int i = 0; i < 10; ++i) {
          EXO_CHECK_EQ(e.Mkdir("/mab-d" + std::to_string(batch * 10 + i)), Status::kOk);
        }
      });
      EXO_CHECK(env.Wait(*pid).ok());
    }
    // Phase 2: copy the tree.
    {
      auto pid = env.Spawn("cp", [](os::UnixEnv& e) {
        EXO_CHECK_EQ(apps::CpR(e, "/mab-src", "/mab-work"), Status::kOk);
      });
      EXO_CHECK(env.Wait(*pid).ok());
    }
    // Phase 3: stat everything (ls -lR).
    {
      auto pid = env.Spawn("sh", [](os::UnixEnv& e) {
        auto entries = e.ReadDir("/mab-work/src");
        EXO_CHECK(entries.ok());
        for (const auto& de : *entries) {
          EXO_CHECK(e.Stat("/mab-work/src/" + de.name).ok());
        }
      });
      EXO_CHECK(env.Wait(*pid).ok());
    }
    // Phase 4: read every file (grep through the tree), one process per 5 files.
    {
      auto entries = env.ReadDir("/mab-work/src");
      EXO_CHECK(entries.ok());
      for (size_t i = 0; i < entries->size(); i += 5) {
        auto pid = env.Spawn("grep", [i, &entries](os::UnixEnv& e) {
          for (size_t j = i; j < std::min(i + 5, entries->size()); ++j) {
            EXO_CHECK(apps::Grep(e, "return", "/mab-work/src/" + (*entries)[j].name).ok());
          }
        });
        EXO_CHECK(env.Wait(*pid).ok());
      }
    }
    // Phase 5: compile.
    {
      auto pid = env.Spawn("gcc", [](os::UnixEnv& e) {
        EXO_CHECK_EQ(apps::GccBuild(e, "/mab-work/src"), Status::kOk);
      });
      EXO_CHECK(env.Wait(*pid).ok());
    }
    total = bench::Secs(env.Now() - t0);
  });
  sys.Run();
  return total;
}

}  // namespace

int main() {
  using namespace exo;
  bench::PrintHeader("Section 6.1: Modified Andrew Benchmark (seconds)");
  const os::Flavor flavors[] = {os::Flavor::kXokExos, os::Flavor::kOpenBsdCffs,
                                os::Flavor::kOpenBsd, os::Flavor::kFreeBsd};
  const double paper[] = {11.5, 12.5, 14.2, 11.5};
  for (size_t i = 0; i < 4; ++i) {
    std::printf("%-16s %7.2fs   (paper: %.1f s)\n", os::FlavorName(flavors[i]),
                RunMab(flavors[i]), paper[i]);
  }
  std::printf("\nMAB stresses fork, which is expensive on ExOS, so its C-FFS advantage\n");
  std::printf("is less pronounced than on the I/O workload (Sec. 6.1)\n");
  return 0;
}
