// Fleet-scale HTTP: the demux flow cache under big filter tables, and Cheetah
// with persistent pipelined connections, the shared document store, the
// response cache, and gather transmit — against the historical
// connection-per-request server.
//
// Part 1 (kernel): N installed packet filters, all checking the destination
// port in the first 16 bytes. A packet for the *last* filter forces the linear
// walk to evaluate every program; the hashed flow cache replaces the walk with
// one probe after the first packet of the flow. Rows sweep N; the ablation
// gate is the simulated cycles-per-packet ratio at the largest table (wall
// clock is reported on stderr — informative, but CI machines are noisy).
//
// Part 2 (server): four client machines, one link each, offering an open-loop
// Zipf document mix at a ladder of arrival rates that crosses the server's
// capacity. The fleet lane runs Cheetah with HttpServerOptions fully armed and
// clients pipelining over ~10k pooled keep-alive connections; the legacy lane
// is the same Cheetah server in its historical close-per-request mode. Stdout
// is deterministic (sim metrics only). A JSON dump goes to
// BENCH_fleet_http.json (--out overrides); with `--check FILE` the binary
// exits nonzero unless the floors in the committed baseline hold — the CI
// acceptance gate.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/http.h"
#include "bench/common.h"
#include "cluster/topology.h"
#include "hw/nic.h"
#include "sim/engine.h"
#include "sim/rng.h"
#include "udf/assembler.h"
#include "xok/capability.h"
#include "xok/kernel.h"

namespace {

using namespace exo;

constexpr uint32_t kMhz = 200;
constexpr sim::Cycles kCyclesPerSec = static_cast<sim::Cycles>(kMhz) * 1'000'000;

// ---- Part 1: demux ablation ----

struct DemuxResult {
  size_t filters = 0;
  double walk_cycles_per_pkt = 0;   // SetDemuxCache(false): linear program walk
  double cache_cycles_per_pkt = 0;  // cache on: one probe per packet after warmup
  double speedup = 0;
  double walk_wall_ns = 0;  // stderr only: not deterministic
  double cache_wall_ns = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

// Runs one configuration: installs `n_filters` port filters (target last, so
// the walk is worst-case), then times `packets` deliveries to the target flow.
// Returns {simulated cycles, wall ns} per packet.
void RunDemuxConfig(size_t n_filters, size_t packets, bool cache_on,
                    double* cycles_per_pkt, double* wall_ns_per_pkt, uint64_t* hits,
                    uint64_t* misses) {
  sim::Engine engine;
  hw::Machine machine(&engine, hw::MachineConfig{.mem_frames = 256});
  xok::XokKernel kernel(&machine);
  kernel.SetDemuxCache(cache_on);

  hw::Nic peer(99);
  hw::Link link(&engine, 1000.0, 1.0, kMhz);
  link.Connect(&peer, &machine.nic(0));

  // 16-byte frame whose destination port (offset 11, 2 bytes LE) is 80.
  std::vector<uint8_t> frame(16, 0);
  frame[11] = 80;

  constexpr size_t kBatch = 64;  // the filter ring capacity: no drops
  double cycles = 0;
  double wall_ns = 0;
  kernel.CreateEnv(xok::kInvalidEnv, {xok::Capability::Root()}, [&] {
    xok::FilterId target = 0;
    for (size_t i = 0; i < n_filters; ++i) {
      const unsigned port = i + 1 < n_filters ? 20000 + static_cast<unsigned>(i) : 80;
      auto prog = udf::Assemble("ld2 r1, r0, 11, meta\nldi r2, " + std::to_string(port) +
                                "\nceq r3, r1, r2\nret r3\n");
      EXO_CHECK(prog.ok);
      auto fid = kernel.SysFilterInstall(prog.program, 0);
      EXO_CHECK(fid.ok());
      target = *fid;
    }
    uint64_t consumed = 0;
    auto pump = [&](size_t count) {
      for (size_t off = 0; off < count; off += kBatch) {
        const size_t n = std::min(kBatch, count - off);
        for (size_t i = 0; i < n; ++i) {
          peer.Transmit({.bytes = frame});
        }
        const uint64_t want = consumed + n;
        xok::WakeupPredicate p;
        p.host = [&kernel, target, want] {
          return kernel.Filter(target)->delivered >= want;
        };
        kernel.SysSleep(std::move(p));
        for (size_t i = 0; i < n; ++i) {
          EXO_CHECK(kernel.SysRingConsume(target, 0).ok());
        }
        consumed = want;
      }
    };
    pump(kBatch);  // warmup: populates the flow cache (or proves the walk cold)
    const sim::Cycles c0 = engine.now();
    const auto t0 = std::chrono::steady_clock::now();
    pump(packets);
    const auto t1 = std::chrono::steady_clock::now();
    cycles = static_cast<double>(engine.now() - c0) / static_cast<double>(packets);
    wall_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
              static_cast<double>(packets);
  });
  kernel.Run();
  *cycles_per_pkt = cycles;
  *wall_ns_per_pkt = wall_ns;
  *hits = machine.counters().Get("xok.demux_hits");
  *misses = machine.counters().Get("xok.demux_misses");
}

DemuxResult RunDemuxRow(size_t n_filters, size_t packets) {
  DemuxResult r;
  r.filters = n_filters;
  uint64_t h = 0;
  uint64_t m = 0;
  RunDemuxConfig(n_filters, packets, /*cache_on=*/false, &r.walk_cycles_per_pkt,
                 &r.walk_wall_ns, &h, &m);
  RunDemuxConfig(n_filters, packets, /*cache_on=*/true, &r.cache_cycles_per_pkt,
                 &r.cache_wall_ns, &r.hits, &r.misses);
  r.speedup = r.walk_cycles_per_pkt / r.cache_cycles_per_pkt;
  return r;
}

// ---- Part 2: fleet HTTP sweep ----

constexpr int kClients = 4;
constexpr size_t kPoolPerClient = 2'600;  // 4 x 2600 = 10,400 concurrent conns
constexpr size_t kMaxPipeline = 8;
constexpr size_t kNumDocs = 64;
constexpr sim::Cycles kClientTimeout = 100'000'000;  // 500 ms abandonment
constexpr double kSimSeconds = 0.5;

net::ServerOverloadPolicy FleetPolicy(bool persistent) {
  net::ServerOverloadPolicy p;
  p.enabled = true;
  p.listen_backlog = 512;
  p.high_watermark_us = 2'000;
  p.low_watermark_us = 500;
  // The per-request abort deadline suits close-per-request serving; on a
  // pipelined connection one abort kills every in-flight request on it and
  // forces a reconnect storm. The persistent lane relies on watermark
  // shedding plus the client-side abandonment timeout instead.
  p.request_deadline_us = persistent ? 0 : 100'000;
  return p;
}

// Zipf(1.1) over document ranks; rank 0 is both the most popular and the
// smallest, as on real sites (popular pages are small, archives are big).
struct ZipfPicker {
  std::vector<double> cdf;
  sim::Rng rng{12345};

  explicit ZipfPicker(size_t n) {
    double total = 0;
    cdf.resize(n);
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
      cdf[i] = total;
    }
    for (double& c : cdf) {
      c /= total;
    }
  }

  size_t Pick() {
    const double u = rng.NextDouble();
    size_t lo = 0;
    size_t hi = cdf.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

size_t DocBytes(size_t rank) { return 200 + rank * 64; }

struct FleetRunResult {
  double goodput = 0;  // completed / s
  double shed = 0;
  double failed = 0;
  double conns_per_s = 0;  // handshakes / s: what persistence amortizes away
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  size_t peak_conns = 0;  // server-side concurrent connection high-water
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t gather_sends = 0;
};

// Collects the per-run metrics shared by both wiring modes.
FleetRunResult CollectFleetResult(
    std::vector<std::unique_ptr<apps::OpenLoopHttpClient>>& clients,
    apps::HttpServer& server) {
  FleetRunResult r;
  trace::LatencyHistogram merged;
  uint64_t completed = 0, rejected = 0, failed = 0, conns = 0;
  for (auto& c : clients) {
    completed += c->completed();
    rejected += c->rejected();
    failed += c->failed();
    conns += c->conns_opened();
    merged.Merge(c->latency());
  }
  r.goodput = static_cast<double>(completed) / kSimSeconds;
  r.shed = static_cast<double>(rejected) / kSimSeconds;
  r.failed = static_cast<double>(failed) / kSimSeconds;
  r.conns_per_s = static_cast<double>(conns) / kSimSeconds;
  const double cycles_per_ms = static_cast<double>(kMhz) * 1000.0;
  r.p50_ms = static_cast<double>(merged.Percentile(50)) / cycles_per_ms;
  r.p99_ms = static_cast<double>(merged.Percentile(99)) / cycles_per_ms;
  r.p999_ms = static_cast<double>(merged.Percentile(99.9)) / cycles_per_ms;
  r.peak_conns = server.stack().peak_conn_count();
  r.cache_hits = server.cache_hits();
  r.cache_misses = server.cache_misses();
  r.cache_evictions = server.cache_evictions();
  r.gather_sends = server.gather_sends();
  return r;
}

// Cluster mode (the default): the server is one machine, every open-loop
// client generator runs on its own dedicated client machine with its own event
// queue; the wires between them are the conservative-horizon fabric. Output is
// bit-identical for any `threads`.
FleetRunResult RunFleetCluster(double offered_per_sec, bool armed,
                               uint32_t threads) {
  cluster::TopologyConfig tc;
  tc.servers = 1;
  tc.clients = kClients;
  tc.front_end_lb = false;  // per-client wires, as on the historical testbed
  tc.threads = threads;
  tc.client_mbit_per_s = 1000.0;
  tc.client_latency_us = 40.0;
  tc.machine.mem_frames = 256;
  tc.machine.disks.clear();
  cluster::Topology topo(tc);
  sim::CostModel cost = sim::CostModel::PentiumPro200();

  net::DocumentStore store(&cost);
  apps::HttpServerOptions opts;
  if (armed) {
    opts.persistent = true;
    opts.documents = &store;
    opts.response_cache_entries = 32;
    opts.gather_tx = true;
  }
  sim::Engine& server_engine = topo.engine_of(topo.server_id(0));
  apps::HttpServer server(&server_engine, &cost, apps::ServerStyle::kCheetah,
                          /*ip=*/cluster::Topology::kVip, opts);
  server.SetOverloadPolicy(FleetPolicy(armed));
  for (size_t i = 0; i < kNumDocs; ++i) {
    server.AddDocument("d" + std::to_string(i),
                       std::vector<uint8_t>(DocBytes(i), static_cast<uint8_t>(i)));
  }
  EXO_CHECK_EQ(server.Listen(80), Status::kOk);

  std::vector<std::unique_ptr<apps::OpenLoopHttpClient>> clients;
  std::vector<std::unique_ptr<ZipfPicker>> pickers;
  const double per_client = offered_per_sec / kClients;
  const sim::Cycles interval =
      static_cast<sim::Cycles>(static_cast<double>(kCyclesPerSec) / per_client);
  for (int i = 0; i < kClients; ++i) {
    const uint32_t j = static_cast<uint32_t>(i);
    const net::IpAddr client_ip = topo.client_ip(j);
    server.AttachNic(&topo.server(0).nic(topo.server_nic_for_client(j)), client_ip);
    auto client = std::make_unique<apps::OpenLoopHttpClient>(
        &topo.engine_of(topo.client_id(j)), &cost, &topo.client(j).nic(0),
        client_ip, cluster::Topology::kVip, "d0", interval);
    client->set_request_timeout(kClientTimeout);
    auto picker = std::make_unique<ZipfPicker>(kNumDocs);
    client->set_doc_picker(
        [p = picker.get()] { return "d" + std::to_string(p->Pick()); });
    if (armed) {
      client->EnablePersistent(kPoolPerClient, kMaxPipeline);
    }
    pickers.push_back(std::move(picker));
    clients.push_back(std::move(client));
  }

  const sim::Cycles deadline = static_cast<sim::Cycles>(kSimSeconds * kCyclesPerSec);
  for (auto& c : clients) {
    c->Start(deadline);
  }
  topo.Run();
  return CollectFleetResult(clients, server);
}

// Legacy single-machine mode (--single-engine): everything shares one engine,
// byte-identical to the historical bench.
FleetRunResult RunFleet(double offered_per_sec, bool armed) {
  sim::Engine engine;
  sim::CostModel cost = sim::CostModel::PentiumPro200();

  net::DocumentStore store(&cost);  // setup-time writes: no CPU to charge
  apps::HttpServerOptions opts;
  if (armed) {
    opts.persistent = true;
    opts.documents = &store;
    opts.response_cache_entries = 32;  // < kNumDocs: evictions are exercised
    opts.gather_tx = true;
  }
  apps::HttpServer server(&engine, &cost, apps::ServerStyle::kCheetah, /*ip=*/100,
                          opts);
  server.SetOverloadPolicy(FleetPolicy(armed));
  for (size_t i = 0; i < kNumDocs; ++i) {
    server.AddDocument("d" + std::to_string(i),
                       std::vector<uint8_t>(DocBytes(i), static_cast<uint8_t>(i)));
  }
  EXO_CHECK_EQ(server.Listen(80), Status::kOk);

  std::vector<std::unique_ptr<hw::Nic>> server_nics, client_nics;
  std::vector<std::unique_ptr<hw::Link>> links;
  std::vector<std::unique_ptr<apps::OpenLoopHttpClient>> clients;
  std::vector<std::unique_ptr<ZipfPicker>> pickers;

  const double per_client = offered_per_sec / kClients;
  const sim::Cycles interval =
      static_cast<sim::Cycles>(static_cast<double>(kCyclesPerSec) / per_client);
  for (int i = 0; i < kClients; ++i) {
    auto snic = std::make_unique<hw::Nic>(static_cast<uint32_t>(i));
    auto cnic = std::make_unique<hw::Nic>(static_cast<uint32_t>(100 + i));
    auto link = std::make_unique<hw::Link>(&engine, 1000.0, 40.0, kMhz);
    link->Connect(snic.get(), cnic.get());
    const net::IpAddr client_ip = static_cast<net::IpAddr>(i + 1);
    server.AttachNic(snic.get(), client_ip);
    auto client = std::make_unique<apps::OpenLoopHttpClient>(
        &engine, &cost, cnic.get(), client_ip, 100, "d0", interval);
    client->set_request_timeout(kClientTimeout);
    auto picker = std::make_unique<ZipfPicker>(kNumDocs);
    client->set_doc_picker(
        [p = picker.get()] { return "d" + std::to_string(p->Pick()); });
    if (armed) {
      client->EnablePersistent(kPoolPerClient, kMaxPipeline);
    }
    pickers.push_back(std::move(picker));
    clients.push_back(std::move(client));
    server_nics.push_back(std::move(snic));
    client_nics.push_back(std::move(cnic));
    links.push_back(std::move(link));
  }

  const sim::Cycles deadline = static_cast<sim::Cycles>(kSimSeconds * kCyclesPerSec);
  for (auto& c : clients) {
    c->Start(deadline);
  }
  engine.RunUntilIdle();
  return CollectFleetResult(clients, server);
}

// Pulls `"key": <number>` out of a flat JSON file without a JSON dependency.
bool JsonNumber(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) {
    return false;
  }
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fleet_http.json";
  std::string check_path;
  bool single_engine = false;
  uint32_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--single-engine") == 0) {
      single_engine = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<uint32_t>(std::atoi(argv[++i]));
    }
  }

  bench::PrintHeader("fleet HTTP: hashed demux + persistent pipelined Cheetah");

  // ---- Part 1: demux flow cache vs linear walk ----
  std::printf("\ndemux: cycles/packet, linear filter walk vs hashed flow cache\n");
  std::printf("%-9s %-11s %-11s %-8s %-7s %-7s\n", "filters", "walk cy/pkt",
              "cache cy/pkt", "speedup", "hits", "misses");
  const size_t tables[] = {64, 256, 1024, 2048};
  std::vector<DemuxResult> demux;
  for (size_t n : tables) {
    DemuxResult r = RunDemuxRow(n, /*packets=*/1024);
    std::printf("%-9zu %-11.0f %-11.0f %-8.1f %-7llu %-7llu\n", r.filters,
                r.walk_cycles_per_pkt, r.cache_cycles_per_pkt, r.speedup,
                static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.misses));
    std::fprintf(stderr, "demux %zu filters: wall %.0f ns/pkt walk, %.0f ns/pkt cached\n",
                 r.filters, r.walk_wall_ns, r.cache_wall_ns);
    demux.push_back(r);
  }
  const DemuxResult& big = demux.back();

  // ---- Part 2: open-loop sweep, legacy vs fleet-armed Cheetah ----
  std::printf("\nhttp: %d clients, Zipf(1.1) over %zu docs, %.1fs simulated\n", kClients,
              kNumDocs, kSimSeconds);
  if (single_engine) {
    std::printf("mode: single-engine (all machines share one event queue)\n");
  } else {
    std::printf("mode: cluster (1 server + %d client machines; deterministic "
                "for any thread count)\n",
                kClients);
  }
  std::printf("fleet lane: persistent+pipelined (%d x %zu conns), doc store, "
              "response cache, gather tx\n",
              kClients, kPoolPerClient);
  std::printf("%-9s | %-31s | %-61s\n", "", "legacy (conn per request)",
              "fleet (persistent + cache + gather)");
  std::printf("%-9s | %-9s %-9s %-10s | %-9s %-7s %-7s %-9s %-7s %-7s %-8s\n",
              "offered", "goodput", "conns/s", "p99ms", "goodput", "shed/s", "fail/s",
              "conns/s", "p99ms", "p999ms", "peak");

  const double rates[] = {5'000, 10'000, 20'000, 40'000};
  std::vector<FleetRunResult> legacy_v, fleet_v;
  size_t peak_conns = 0;
  for (double rate : rates) {
    const FleetRunResult legacy = single_engine
                                      ? RunFleet(rate, /*armed=*/false)
                                      : RunFleetCluster(rate, /*armed=*/false, threads);
    const FleetRunResult fleet = single_engine
                                     ? RunFleet(rate, /*armed=*/true)
                                     : RunFleetCluster(rate, /*armed=*/true, threads);
    std::printf(
        "%-9.0f | %-9.0f %-9.0f %-10.1f | %-9.0f %-7.0f %-7.0f %-9.0f %-7.1f %-7.1f "
        "%-8zu\n",
        rate, legacy.goodput, legacy.conns_per_s, legacy.p99_ms, fleet.goodput,
        fleet.shed, fleet.failed, fleet.conns_per_s, fleet.p99_ms, fleet.p999_ms,
        fleet.peak_conns);
    peak_conns = std::max(peak_conns, fleet.peak_conns);
    legacy_v.push_back(legacy);
    fleet_v.push_back(fleet);
  }
  // Gate row: the highest rate the fleet lane fully sustains — where the two
  // lanes diverge hardest. The final row is deliberately past both lanes'
  // capacity and demonstrates graceful shedding, not goodput.
  constexpr size_t kGateIdx = 2;
  const FleetRunResult& fleet_gate = fleet_v[kGateIdx];
  const FleetRunResult& legacy_gate = legacy_v[kGateIdx];
  const double gate_ratio =
      legacy_gate.goodput > 0 ? fleet_gate.goodput / legacy_gate.goodput : 0;

  std::printf("\nat %.0f req/s offered: fleet goodput %.0f/s vs legacy %.0f/s "
              "(%.1fx), peak %zu concurrent conns\n",
              rates[kGateIdx], fleet_gate.goodput, legacy_gate.goodput, gate_ratio,
              peak_conns);
  std::printf("response cache at gate rate: %llu hits, %llu misses, %llu evictions; "
              "%llu gather sends\n",
              static_cast<unsigned long long>(fleet_gate.cache_hits),
              static_cast<unsigned long long>(fleet_gate.cache_misses),
              static_cast<unsigned long long>(fleet_gate.cache_evictions),
              static_cast<unsigned long long>(fleet_gate.gather_sends));

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fleet_http\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", single_engine ? "single_engine" : "cluster");
  std::fprintf(f, "  \"threads\": %u,\n", threads);
  std::fprintf(f, "  \"demux_speedup_at_%zu_filters\": %.2f,\n", big.filters,
               big.speedup);
  std::fprintf(f, "  \"peak_concurrent_conns\": %zu,\n", peak_conns);
  std::fprintf(f, "  \"gate_rate\": %.0f,\n", rates[kGateIdx]);
  std::fprintf(f, "  \"fleet_goodput_at_gate_rate\": %.1f,\n", fleet_gate.goodput);
  std::fprintf(f, "  \"fleet_vs_legacy_goodput_ratio_at_gate_rate\": %.3f,\n",
               gate_ratio);
  std::fprintf(f, "  \"demux\": [\n");
  for (size_t i = 0; i < demux.size(); ++i) {
    const DemuxResult& r = demux[i];
    std::fprintf(f,
                 "    {\"filters\": %zu, \"walk_cycles_per_pkt\": %.1f, "
                 "\"cache_cycles_per_pkt\": %.1f, \"speedup\": %.2f}%s\n",
                 r.filters, r.walk_cycles_per_pkt, r.cache_cycles_per_pkt, r.speedup,
                 i + 1 < demux.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"http\": [\n");
  for (size_t i = 0; i < fleet_v.size(); ++i) {
    const FleetRunResult& lg = legacy_v[i];
    const FleetRunResult& fl = fleet_v[i];
    std::fprintf(
        f,
        "    {\"offered\": %.0f, "
        "\"legacy\": {\"goodput\": %.1f, \"conns_per_s\": %.1f, \"p50_ms\": %.2f, "
        "\"p99_ms\": %.2f, \"p999_ms\": %.2f}, "
        "\"fleet\": {\"goodput\": %.1f, \"conns_per_s\": %.1f, \"p50_ms\": %.2f, "
        "\"p99_ms\": %.2f, \"p999_ms\": %.2f, \"peak_conns\": %zu, "
        "\"cache_hits\": %llu, \"gather_sends\": %llu}}%s\n",
        rates[i], lg.goodput, lg.conns_per_s, lg.p50_ms, lg.p99_ms, lg.p999_ms,
        fl.goodput, fl.conns_per_s, fl.p50_ms, fl.p99_ms, fl.p999_ms, fl.peak_conns,
        static_cast<unsigned long long>(fl.cache_hits),
        static_cast<unsigned long long>(fl.gather_sends),
        i + 1 < fleet_v.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  if (!check_path.empty()) {
    FILE* b = std::fopen(check_path.c_str(), "r");
    if (b == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", check_path.c_str());
      return 1;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), b)) > 0) {
      text.append(buf, n);
    }
    std::fclose(b);
    double min_speedup = 0, min_peak = 0, min_goodput = 0, min_ratio = 0;
    if (!JsonNumber(text, "min_demux_speedup", &min_speedup) ||
        !JsonNumber(text, "min_peak_concurrent_conns", &min_peak) ||
        !JsonNumber(text, "min_fleet_goodput_at_gate_rate", &min_goodput) ||
        !JsonNumber(text, "min_fleet_vs_legacy_goodput_ratio", &min_ratio)) {
      std::fprintf(stderr, "baseline %s missing required keys\n", check_path.c_str());
      return 1;
    }
    bool ok = true;
    if (big.speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: demux speedup %.1f below floor %.1f\n", big.speedup,
                   min_speedup);
      ok = false;
    }
    if (static_cast<double>(peak_conns) < min_peak) {
      std::fprintf(stderr, "FAIL: peak concurrent conns %zu below floor %.0f\n",
                   peak_conns, min_peak);
      ok = false;
    }
    if (fleet_gate.goodput < min_goodput) {
      std::fprintf(stderr, "FAIL: fleet goodput %.0f/s below floor %.0f/s\n",
                   fleet_gate.goodput, min_goodput);
      ok = false;
    }
    if (gate_ratio < min_ratio) {
      std::fprintf(stderr, "FAIL: fleet/legacy goodput ratio %.2f below floor %.2f\n",
                   gate_ratio, min_ratio);
      ok = false;
    }
    if (!ok) {
      return 1;
    }
    std::fprintf(stderr,
                 "baseline check passed (speedup %.1f >= %.1f, peak %zu >= %.0f, "
                 "goodput %.0f >= %.0f, ratio %.2f >= %.2f)\n",
                 big.speedup, min_speedup, peak_conns, min_peak, fleet_gate.goodput,
                 min_goodput, gate_ratio, min_ratio);
  }
  return 0;
}
