// Section 7.2: XCP, the zero-touch file copier, vs cp on the same Xok/ExOS system.
// Paper: XCP is a factor of three faster than cp, whether the files are in core
// (XCP never touches the data) or on disk (XCP issues large sorted schedules).
#include "apps/xcp.h"
#include "bench/common.h"

namespace {

using namespace exo;

struct CopyTimes {
  double cp = 0;
  double xcp = 0;
};

CopyTimes Run(bool cold_cache, const bench::TraceOptions* trace_opts = nullptr) {
  sim::Engine engine;
  hw::Machine machine(&engine, bench::PaperMachine());
  if (trace_opts != nullptr && trace_opts->on()) {
    machine.tracer().Enable(trace_opts->mask);
  }
  os::System sys(&machine, os::Flavor::kXokExos);
  EXO_CHECK_EQ(sys.Boot(), Status::kOk);

  CopyTimes times;
  sys.SpawnInit("sh", [&](os::UnixEnv& env) {
    // 24 files of 160 KB = ~3.8 MB.
    std::vector<std::string> srcs;
    EXO_CHECK_EQ(env.Mkdir("/src"), Status::kOk);
    for (int i = 0; i < 24; ++i) {
      apps::FileSpec spec{.path = "f", .size = 160'000,
                          .seed = static_cast<uint64_t>(i + 1)};
      auto content = apps::FileContent(spec);
      std::string p = "/src/f" + std::to_string(i);
      auto fd = env.Open(p, true);
      EXO_CHECK(fd.ok());
      EXO_CHECK(env.Write(*fd, content).ok());
      env.Close(*fd);
      srcs.push_back(p);
    }
    EXO_CHECK_EQ(env.Sync(), Status::kOk);

    auto drop_cache = [&] {
      if (!cold_cache) {
        return;
      }
      // Recycle every clean buffer: the next reads must hit the disk.
      while (sys.xn()->RecycleOldest().ok()) {
      }
    };

    drop_cache();
    sim::Cycles t0 = env.Now();
    EXO_CHECK_EQ(env.Mkdir("/cp-out"), Status::kOk);
    for (const auto& s : srcs) {
      EXO_CHECK_EQ(apps::Cp(env, s, "/cp-out/" + s.substr(5)), Status::kOk);
    }
    times.cp = bench::Secs(env.Now() - t0);
    EXO_CHECK_EQ(env.Sync(), Status::kOk);

    drop_cache();
    t0 = env.Now();
    auto st = apps::Xcp(sys, env, srcs, "/xcp-out");
    EXO_CHECK(st.ok());
    times.xcp = bench::Secs(env.Now() - t0);
    EXO_CHECK_EQ(env.Sync(), Status::kOk);
  });
  sys.Run();
  if (trace_opts != nullptr) {
    bench::WriteTraceFile(machine.tracer(), *trace_opts);
  }
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exo;
  // --trace=PATH captures the cold-cache run (the disk-bound schedules).
  const bench::TraceOptions trace_opts = bench::ParseTraceArgs(argc, argv);
  bench::PrintHeader("Section 7.2: XCP vs cp on Xok/ExOS (3.8 MB across 24 files)");
  CopyTimes warm = Run(/*cold_cache=*/false);
  CopyTimes cold = Run(/*cold_cache=*/true, trace_opts.on() ? &trace_opts : nullptr);
  std::printf("%-22s %10s %10s %9s\n", "case", "cp", "xcp", "speedup");
  std::printf("%-22s %9.3fs %9.3fs %8.1fx\n", "in core (cached)", warm.cp, warm.xcp,
              warm.cp / warm.xcp);
  std::printf("%-22s %9.3fs %9.3fs %8.1fx\n", "on disk (cold cache)", cold.cp, cold.xcp,
              cold.cp / cold.xcp);
  std::printf("\npaper: XCP is a factor of three faster than cp in both cases\n");
  return 0;
}
