// Ablation: wakeup predicates vs polling (Sec. 5.1). A process waiting for a disk
// block can either sleep on a downloaded predicate (evaluated by the kernel when it
// is about to be scheduled) or busy-poll with yield system calls. This bench
// measures wasted CPU and wakeup latency for both, plus the cost of gratuitous
// predicate installation (Table 2's "something unnecessary even with mutual
// distrust").
#include "bench/common.h"
#include "udf/assembler.h"

namespace {

using namespace exo;

struct WaitResult {
  double wake_latency_us = 0;   // condition-true to running
  uint64_t waiter_syscalls = 0;
};

WaitResult Run(bool use_predicate) {
  sim::Engine engine;
  hw::Machine machine(&engine, bench::PaperMachine(64));
  xok::XokKernel kernel(&machine);

  auto window = std::make_shared<std::vector<uint8_t>>(8, 0);
  sim::Cycles condition_set_at = 0;
  sim::Cycles woke_at = 0;

  kernel.CreateEnv(xok::kInvalidEnv, {xok::Capability::Root()}, [&] {
    if (use_predicate) {
      auto prog = udf::Assemble("ldi r1, 0\nld4 r2, r1, 0, meta\nret r2\n");
      EXO_CHECK(prog.ok);
      xok::WakeupPredicate p;
      p.program = prog.program;
      p.live_window = window.get();
      kernel.SysSleep(std::move(p));
    } else {
      // Busy polling: yield-loop until the flag flips.
      while ((*window)[0] == 0) {
        kernel.SysYield();
      }
    }
    woke_at = engine.now();
  });
  kernel.CreateEnv(xok::kInvalidEnv, {xok::Capability::Root()}, [&] {
    kernel.ChargeCpu(10'000'000);  // 50 ms of foreground work
    (*window)[0] = 1;
    condition_set_at = engine.now();
    kernel.ChargeCpu(2'000'000);  // keep running a little: does the waiter preempt?
  });
  uint64_t syscalls0 = machine.counters().Get("xok.syscalls");
  kernel.Run();

  WaitResult r;
  r.wake_latency_us = static_cast<double>(woke_at - condition_set_at) / 200.0;
  r.waiter_syscalls = machine.counters().Get("xok.syscalls") - syscalls0;
  return r;
}

}  // namespace

int main() {
  using namespace exo;
  bench::PrintHeader("Ablation: wakeup predicates vs yield-polling (50 ms wait)");
  WaitResult pred = Run(true);
  WaitResult poll = Run(false);
  std::printf("%-20s %16s %16s\n", "mechanism", "wake latency", "syscalls burned");
  std::printf("%-20s %13.1f us %16llu\n", "wakeup predicate", pred.wake_latency_us,
              static_cast<unsigned long long>(pred.waiter_syscalls));
  std::printf("%-20s %13.1f us %16llu\n", "yield polling", poll.wake_latency_us,
              static_cast<unsigned long long>(poll.waiter_syscalls));
  std::printf("\npredicates burn no CPU while waiting; the kernel evaluates ~%u cycles of\n",
              60u);
  std::printf("downloaded code per scheduling decision instead (Sec. 5.1)\n");
  return 0;
}
