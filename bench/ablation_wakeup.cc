// Ablation: wakeup predicates vs polling (Sec. 5.1). A process waiting for a disk
// block can either sleep on a downloaded predicate (evaluated by the kernel when it
// is about to be scheduled) or busy-poll with yield system calls. This bench
// measures wasted CPU and wakeup latency for both, plus the effect of declaring
// the predicate's watched windows: the scheduler then evaluates the predicate only
// after a write to a watched kernel object instead of on every scheduling
// decision (xok.predicate_evals vs xok.predicate_skips).
#include "bench/common.h"
#include "udf/assembler.h"

namespace {

using namespace exo;

struct WaitResult {
  double wake_latency_us = 0;   // condition-true to running
  uint64_t waiter_syscalls = 0;
  uint64_t predicate_evals = 0;
  uint64_t predicate_skips = 0;
};

enum class Mechanism { kPredicate, kWatchedPredicate, kPolling };

WaitResult Run(Mechanism mech) {
  sim::Engine engine;
  hw::Machine machine(&engine, bench::PaperMachine(64));
  xok::XokKernel kernel(&machine);

  // The flag lives in a kernel region so the watched variant's producer write is
  // visible to the scheduler; the unwatched variants read the same region through
  // a live window, and the polling variant reads it through SysRegionRead.
  auto rid_r = kernel.SysRegionCreate(8, {}, 0);
  EXO_CHECK(rid_r.ok());
  const xok::RegionId rid = *rid_r;

  sim::Cycles condition_set_at = 0;
  sim::Cycles woke_at = 0;

  kernel.CreateEnv(xok::kInvalidEnv, {xok::Capability::Root()}, [&] {
    if (mech != Mechanism::kPolling) {
      auto prog = udf::Assemble("ldi r1, 0\nld4 r2, r1, 0, meta\nret r2\n");
      EXO_CHECK(prog.ok);
      xok::WakeupPredicate p;
      p.program = prog.program;
      p.live_window = kernel.RegionBytes(rid);
      if (mech == Mechanism::kWatchedPredicate) {
        p.watches.push_back(xok::WatchSpec{xok::WatchKind::kRegion, rid});
      }
      kernel.SysSleep(std::move(p));
    } else {
      // Busy polling: yield-loop until the flag flips.
      uint8_t flag = 0;
      do {
        kernel.SysYield();
        EXO_CHECK_EQ(kernel.SysRegionRead(rid, 0, std::span<uint8_t>(&flag, 1), 0),
                     Status::kOk);
      } while (flag == 0);
    }
    woke_at = engine.now();
  });
  kernel.CreateEnv(xok::kInvalidEnv, {xok::Capability::Root()}, [&] {
    kernel.ChargeCpu(10'000'000);  // 50 ms of foreground work
    const uint8_t one = 1;
    EXO_CHECK_EQ(kernel.SysRegionWrite(rid, 0, std::span<const uint8_t>(&one, 1), 0),
                 Status::kOk);
    condition_set_at = engine.now();
    kernel.ChargeCpu(2'000'000);  // keep running a little: does the waiter preempt?
  });
  uint64_t syscalls0 = machine.counters().Get("xok.syscalls");
  uint64_t evals0 = machine.counters().Get("xok.predicate_evals");
  uint64_t skips0 = machine.counters().Get("xok.predicate_skips");
  kernel.Run();

  WaitResult r;
  r.wake_latency_us = static_cast<double>(woke_at - condition_set_at) / 200.0;
  r.waiter_syscalls = machine.counters().Get("xok.syscalls") - syscalls0;
  r.predicate_evals = machine.counters().Get("xok.predicate_evals") - evals0;
  r.predicate_skips = machine.counters().Get("xok.predicate_skips") - skips0;
  return r;
}

}  // namespace

int main() {
  using namespace exo;
  bench::PrintHeader("Ablation: wakeup predicates vs yield-polling (50 ms wait)");
  WaitResult pred = Run(Mechanism::kPredicate);
  WaitResult watched = Run(Mechanism::kWatchedPredicate);
  WaitResult poll = Run(Mechanism::kPolling);
  std::printf("%-20s %16s %16s %12s %12s\n", "mechanism", "wake latency", "syscalls burned",
              "pred evals", "pred skips");
  std::printf("%-20s %13.1f us %16llu %12llu %12llu\n", "wakeup predicate",
              pred.wake_latency_us, static_cast<unsigned long long>(pred.waiter_syscalls),
              static_cast<unsigned long long>(pred.predicate_evals),
              static_cast<unsigned long long>(pred.predicate_skips));
  std::printf("%-20s %13.1f us %16llu %12llu %12llu\n", "watched predicate",
              watched.wake_latency_us,
              static_cast<unsigned long long>(watched.waiter_syscalls),
              static_cast<unsigned long long>(watched.predicate_evals),
              static_cast<unsigned long long>(watched.predicate_skips));
  std::printf("%-20s %13.1f us %16llu %12llu %12llu\n", "yield polling",
              poll.wake_latency_us, static_cast<unsigned long long>(poll.waiter_syscalls),
              static_cast<unsigned long long>(poll.predicate_evals),
              static_cast<unsigned long long>(poll.predicate_skips));
  std::printf("\npredicates burn no CPU while waiting; the kernel evaluates ~%u cycles of\n",
              60u);
  std::printf("downloaded code per scheduling decision instead (Sec. 5.1).\n");
  std::printf("declared watches skip even that: of %llu blocked-env scheduling decisions,\n",
              static_cast<unsigned long long>(watched.predicate_evals +
                                              watched.predicate_skips));
  std::printf("only %llu ran the predicate; %llu were skipped as clean.\n",
              static_cast<unsigned long long>(watched.predicate_evals),
              static_cast<unsigned long long>(watched.predicate_skips));
  if (watched.predicate_evals + watched.predicate_skips <= watched.predicate_evals ||
      watched.predicate_skips == 0) {
    std::printf("ERROR: watch indexing skipped nothing\n");
    return 1;
  }
  return 0;
}
