// Ablation: what do UDFs and XN's guarded operations cost? (google-benchmark)
//
// DESIGN.md calls out the template/UDF design as XN's central trade-off (Sec. 4.2
// rejected per-block capabilities and declarative templates). This bench measures:
//   - host-side interpreter throughput of the C-FFS directory owns-udf,
//   - simulated-cycle cost of guarded Alloc/Modify vs the trusted kernel backend,
//   - wakeup-predicate evaluation cost.
#include <benchmark/benchmark.h>

#include "fs/cffs.h"
#include "fs/kernel_backend.h"
#include "fs/xn_backend.h"
#include "hw/machine.h"
#include "udf/assembler.h"
#include "udf/vm.h"
#include "xn/xn.h"

namespace {

using namespace exo;

// Host throughput of the UDF interpreter on a realistic program: a directory-block
// scan (the hot owns-udf in C-FFS).
void BM_UdfInterpreterDirScan(benchmark::State& state) {
  auto prog = udf::Assemble(R"(
      ldi r1, 0
      ldi r2, 32
    slot:
      ld1 r3, r1, 0, meta
      bz r3, next
      ld4 r9, r1, 12, meta
      ldi r10, 8
      cle r11, r9, r10
      mul r12, r9, r11
      ldi r13, 1
      sub r13, r13, r11
      mul r13, r10, r13
      add r12, r12, r13
      addi r13, r1, 80
      ldi r14, 1
    dloop:
      bz r12, next
      ld4 r15, r13, 0, meta
      emit r15, r14, r14
      addi r13, r13, 4
      addi r12, r12, -1
      jmp dloop
    next:
      addi r1, r1, 128
      addi r2, r2, -1
      bnz r2, slot
      ldi r1, 0
      ret r1
  )");
  EXO_CHECK(prog.ok);
  std::vector<uint8_t> block(4096, 0);
  for (int slot = 1; slot < 32; ++slot) {
    block[static_cast<size_t>(slot) * 128] = 1;      // kind = file
    block[static_cast<size_t>(slot) * 128 + 12] = 4;  // nblocks = 4
  }
  uint64_t insns = 0;
  for (auto _ : state) {
    udf::RunInput in;
    in.buffers[udf::kBufMeta] = block;
    auto out = udf::Run(prog.program, in);
    benchmark::DoNotOptimize(out.ret);
    insns += out.insns;
  }
  state.counters["udf_insns_per_run"] =
      static_cast<double>(insns) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_UdfInterpreterDirScan);

// Simulated cycles per guarded metadata allocation (XN running owns-udf twice +
// acl-uf) vs the trusted kernel backend (no verification) — the price of letting
// untrusted code define metadata formats.
void BM_GuardedAllocCycles(benchmark::State& state) {
  const bool guarded = state.range(0) == 1;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    hw::Machine machine(&engine, hw::MachineConfig{
                                     .mem_frames = 4096,
                                     .disks = {hw::DiskGeometry{.num_blocks = 8192}}});
    fs::Blocker blocker = [&engine](const std::function<bool()>& ready) {
      while (!ready()) {
        if (engine.HasPendingEvents()) {
          engine.RunNextEvent();
        } else {
          engine.Advance(20'000);
        }
      }
    };
    std::unique_ptr<xn::Xn> xn;
    std::unique_ptr<fs::FsBackend> backend;
    if (guarded) {
      xn = std::make_unique<xn::Xn>(&machine, &machine.disk());
      xn->Format();
      EXO_CHECK_EQ(xn->Attach(), Status::kOk);
      backend = std::make_unique<fs::XnBackend>(
          xn.get(), xn::Caps{xok::Capability::For({xok::kCapFs, 1})}, blocker, [&machine] {
            auto f = machine.mem().Alloc();
            return f.ok() ? *f : hw::kInvalidFrame;
          });
    } else {
      backend = std::make_unique<fs::KernelBackend>(&machine, &machine.disk(), blocker);
    }
    fs::Cffs cffs(backend.get(), fs::CffsOptions{.fsid = 1});
    EXO_CHECK_EQ(cffs.Mkfs(), Status::kOk);
    sim::Cycles t0 = engine.now();
    state.ResumeTiming();

    // 64 file creates + one-block writes: each is a guarded Alloc on a dir block.
    for (int i = 0; i < 64; ++i) {
      auto h = cffs.Create("/f" + std::to_string(i), 7, false);
      EXO_CHECK(h.ok());
      std::vector<uint8_t> data(512, 1);
      EXO_CHECK(cffs.Write(*h, 0, data, 7).ok());
    }
    state.PauseTiming();
    state.counters["sim_cycles_per_create"] =
        static_cast<double>(engine.now() - t0) / 64.0;
    state.ResumeTiming();
  }
}
BENCHMARK(BM_GuardedAllocCycles)->Arg(1)->ArgName("xn_guarded")->Arg(0);

// Wakeup-predicate evaluation: simulated cycles per kernel evaluation of the
// protected-pipe predicate vs a host lambda standing in for the same check.
void BM_WakeupPredicateEval(benchmark::State& state) {
  auto prog = udf::Assemble(R"(
      ldi r1, 0
      ld4 r2, r1, 0, meta
      ld1 r3, r1, 4, meta
      or r4, r2, r3
      ret r4
  )");
  EXO_CHECK(prog.ok);
  std::vector<uint8_t> window(8, 0);
  window[0] = 1;
  for (auto _ : state) {
    udf::RunInput in;
    in.buffers[udf::kBufMeta] = window;
    auto out = udf::Run(prog.program, in);
    benchmark::DoNotOptimize(out.ret);
  }
}
BENCHMARK(BM_WakeupPredicateEval);

}  // namespace

BENCHMARK_MAIN();
