// Simulator hot-path performance harness (wall-clock, not simulated time).
//
// Every other bench in this directory reports *simulated* seconds; this one reports
// how fast the simulator itself chews through its hot loops, so engine/scheduler/
// disk-queue optimizations (and regressions) are visible. Four synthetic workloads:
//
//   event_churn      raw sim::Engine schedule/cancel/fire churn shaped like the TCP
//                    timer pattern (arm, re-arm, cancel-after-fire)
//   predicate_storm  N blocked envs with downloaded wakeup predicates; a producer
//                    pokes one region at a time, so almost every predicate the
//                    scheduler could evaluate per decision is a waste
//   disk_deep_queue  thousands of queued requests exercising merge lookup and
//                    C-LOOK dispatch
//   global_fig4      a scaled-down Figure 4 job mix: the end-to-end sanity number
//                    (simulated seconds per wall second)
//
// Results go to BENCH_simperf.json (override with --out FILE). SIMPERF_SCALE=<f>
// scales workload sizes. See docs/PERFORMANCE.md for how to read the numbers.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include <thread>

#include "bench/global_common.h"
#include "cluster/topology.h"
#include "hw/disk.h"
#include "net/packet.h"
#include "sim/rng.h"
#include "udf/insn.h"
#include "xok/kernel.h"

namespace {

using namespace exo;

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WorkloadResult {
  std::string name;
  uint64_t ops = 0;        // workload-defined unit (events, wakeups, requests, ...)
  double wall_s = 0;
  double sim_s = 0;        // simulated seconds the workload advanced
  uint64_t predicate_evals = 0;
  uint64_t predicate_skips = 0;
};

// ---- Workload 1: event churn ----
//
// The TCP stack's timer pattern: every connection arms an RTO/ack timer, most are
// cancelled — often after an intervening event already fired them. The old engine
// kept every stale cancellation forever and scanned the list on each pop.
WorkloadResult EventChurn(uint64_t n) {
  sim::Engine eng;
  uint64_t fired = 0;
  std::deque<sim::Engine::EventId> armed;

  const double t0 = WallNow();
  for (uint64_t i = 0; i < n; ++i) {
    armed.push_back(eng.ScheduleAfter(20 + (i * 7) % 400, [&fired] { ++fired; }));
    if ((i & 7) < 6) {
      eng.RunNextEvent();
    }
    if (armed.size() >= 64) {
      // Cancel the oldest half: a mix of still-pending and long-fired ids.
      for (int k = 0; k < 32; ++k) {
        eng.Cancel(armed.front());
        armed.pop_front();
      }
    }
  }
  eng.RunUntilIdle();
  const double t1 = WallNow();

  WorkloadResult r;
  r.name = "event_churn";
  r.ops = n + n / 2;  // schedules + cancels
  r.wall_s = t1 - t0;
  r.sim_s = eng.now_seconds();
  return r;
}

// ---- Workload 1b: trace overhead ----
//
// The event_churn loop with a Tracer attached but *disabled*: every dispatch pays
// the instrumentation site's predicted branch and nothing else. Compare ops/s
// against event_churn — the two should be within noise of each other.
WorkloadResult TraceOverhead(uint64_t n) {
  sim::Engine eng;
  trace::Tracer tracer;  // attached, never enabled
  eng.set_tracer(&tracer, 0);
  uint64_t fired = 0;
  std::deque<sim::Engine::EventId> armed;

  const double t0 = WallNow();
  for (uint64_t i = 0; i < n; ++i) {
    armed.push_back(eng.ScheduleAfter(20 + (i * 7) % 400, [&fired] { ++fired; }));
    if ((i & 7) < 6) {
      eng.RunNextEvent();
    }
    if (armed.size() >= 64) {
      for (int k = 0; k < 32; ++k) {
        eng.Cancel(armed.front());
        armed.pop_front();
      }
    }
  }
  eng.RunUntilIdle();
  const double t1 = WallNow();
  EXO_CHECK_EQ(tracer.emitted(), 0u);  // disabled tracing stored nothing

  WorkloadResult r;
  r.name = "trace_overhead";
  r.ops = n + n / 2;
  r.wall_s = t1 - t0;
  r.sim_s = eng.now_seconds();
  return r;
}

// ---- Workload 2: predicate storm ----

// Wake when the 32-bit little-endian word at window[0] equals `round`.
udf::Program EqProgram(uint32_t round) {
  using udf::Insn;
  using udf::Op;
  udf::Program p;
  p.push_back(Insn{Op::kLdi, 1, 0, 0, 0});
  p.push_back(Insn{Op::kLd4, 2, 1, udf::kBufMeta, 0});
  p.push_back(Insn{Op::kLdi, 3, 0, 0, static_cast<int32_t>(round)});
  p.push_back(Insn{Op::kCeq, 4, 2, 3, 0});
  p.push_back(Insn{Op::kRet, 0, 4, 0, 0});
  return p;
}

WorkloadResult PredicateStorm(uint32_t n_envs, uint32_t rounds) {
  sim::Engine eng;
  hw::MachineConfig cfg;
  cfg.mem_frames = 256;
  cfg.disks.clear();
  hw::Machine machine(&eng, cfg);
  xok::XokKernel kernel(&machine);

  std::vector<xok::RegionId> rids(n_envs);
  for (uint32_t i = 0; i < n_envs; ++i) {
    auto rid = kernel.SysRegionCreate(8, {}, xok::kCredAny);
    EXO_CHECK(rid.ok());
    rids[i] = *rid;
  }

  const uint64_t evals0 = machine.counters().Get("xok.predicate_evals");
  const uint64_t skips0 = machine.counters().Get("xok.predicate_skips");

  for (uint32_t i = 0; i < n_envs; ++i) {
    kernel.CreateEnv(xok::kInvalidEnv, {xok::Capability::Root()}, [&kernel, &rids, i,
                                                                   rounds] {
      for (uint32_t r = 1; r <= rounds; ++r) {
        xok::WakeupPredicate p;
        p.program = EqProgram(r);
        p.live_window = kernel.RegionBytes(rids[i]);
#ifdef EXO_XOK_PREDICATE_WATCHES
        p.watches.push_back(xok::WatchSpec{xok::WatchKind::kRegion, rids[i]});
#endif
        kernel.SysSleep(std::move(p));
      }
    });
  }
  kernel.CreateEnv(xok::kInvalidEnv, {xok::Capability::Root()}, [&kernel, &rids,
                                                                 n_envs, rounds] {
    for (uint32_t r = 1; r <= rounds; ++r) {
      for (uint32_t i = 0; i < n_envs; ++i) {
        uint8_t buf[4];
        std::memcpy(buf, &r, 4);
        EXO_CHECK_EQ(kernel.SysRegionWrite(rids[i], 0, buf, 0), Status::kOk);
        kernel.SysYield();
      }
    }
  });

  const double t0 = WallNow();
  kernel.Run();
  const double t1 = WallNow();

  WorkloadResult r;
  r.name = "predicate_storm";
  r.ops = static_cast<uint64_t>(n_envs) * rounds;  // wakeups delivered
  r.wall_s = t1 - t0;
  r.sim_s = eng.now_seconds();
  r.predicate_evals = machine.counters().Get("xok.predicate_evals") - evals0;
  r.predicate_skips = machine.counters().Get("xok.predicate_skips") - skips0;
  return r;
}

// ---- Workload 3: deep disk queues ----
WorkloadResult DiskDeepQueue(uint32_t bursts, uint32_t burst_size) {
  sim::Engine eng;
  hw::PhysMem mem(8);
  hw::DiskGeometry geom;
  geom.num_blocks = 1u << 16;
  hw::Disk disk(&eng, &mem, geom, 200);
  auto frame = mem.Alloc();
  EXO_CHECK(frame.ok());

  sim::Rng rng(7);
  uint64_t completed = 0;
  uint64_t submitted = 0;

  const double t0 = WallNow();
  for (uint32_t b = 0; b < bursts; ++b) {
    for (uint32_t j = 0; j < burst_size; ++j) {
      const hw::BlockId start = static_cast<hw::BlockId>(rng.Below(geom.num_blocks - 4));
      const bool write = (j & 1) != 0;
      disk.Submit({.write = write,
                   .start = start,
                   .nblocks = 1,
                   .frames = {*frame},
                   .done = [&completed](Status) { ++completed; }});
      ++submitted;
      if (j % 5 == 0) {
        // A contiguous follow-on: exercises the merge lookup.
        disk.Submit({.write = write,
                     .start = start + 1,
                     .nblocks = 1,
                     .frames = {*frame},
                     .done = [&completed](Status) { ++completed; }});
        ++submitted;
      }
    }
    eng.RunUntilIdle();
  }
  const double t1 = WallNow();
  EXO_CHECK_EQ(completed, submitted);

  WorkloadResult r;
  r.name = "disk_deep_queue";
  r.ops = submitted;
  r.wall_s = t1 - t0;
  r.sim_s = eng.now_seconds();
  return r;
}

// ---- Workload 5: cluster_scale — the parallel conservative engine ----
//
// An 8-machine Topology (front-end balancer, 3 servers, 4 clients), one shard
// per machine. Clients run a closed loop of raw request frames through the
// balancer; each request triggers a PHOLD-style local event chain on its
// server (kChainEvents events, 50 cycles apart) before the reply goes back.
// The chains are the parallelizable CPU meat: at a 20 us rack lookahead every
// server shard advances ~a chain per window independently.
//
// The workload runs once at threads=1 and once at threads=N and EXO_CHECKs the
// merged per-machine counters are byte-identical — the determinism contract —
// then reports wall-clock speedup. ops counts server chain events (the
// dominant event population), so events_per_sec gates the serial lane exactly
// like the other workloads.

struct ClusterScaleRun {
  double wall_s = 0;
  double sim_s = 0;
  uint64_t ops = 0;
  uint64_t cross_messages = 0;
  uint64_t rounds = 0;
  std::string counters;  // merged dump: the equivalence witness
};

void ClusterChainStep(sim::Engine* eng, sim::Counters::Slot* work, uint32_t left,
                      hw::Nic* nic, hw::Packet reply) {
  ++*work;
  if (left == 0) {
    nic->Transmit(std::move(reply));
    return;
  }
  eng->ScheduleAfter(50, [eng, work, left, nic, reply = std::move(reply)]() mutable {
    ClusterChainStep(eng, work, left - 1, nic, std::move(reply));
  });
}

ClusterScaleRun RunClusterScaleOnce(uint32_t threads, uint32_t chain_events,
                                    sim::Cycles sim_cycles) {
  constexpr uint32_t kOutstanding = 32;  // closed-loop requests per client
  cluster::TopologyConfig tc;
  tc.servers = 3;
  tc.clients = 4;
  tc.front_end_lb = true;
  tc.threads = threads;
  tc.seed = 7;
  // Generous wire latencies widen the conservative window (the lookahead) so
  // each shard advances a meaty batch of chain events per round — the window
  // work must dwarf the barrier cost for parallelism to pay.
  tc.rack_latency_us = 100.0;
  tc.client_latency_us = 200.0;
  tc.lb_forward_cost = 100;
  tc.machine.mem_frames = 64;
  tc.machine.disks.clear();
  cluster::Topology topo(tc);

  for (uint32_t k = 0; k < tc.servers; ++k) {
    hw::Machine& srv = topo.server(k);
    sim::Engine* eng = &topo.engine_of(topo.server_id(k));
    auto* work = srv.counters().Handle("srv.chain_events");
    auto* rx = srv.counters().Handle("srv.rx");
    hw::Nic* nic = &srv.nic(0);
    nic->SetReceiveHandler([eng, work, rx, nic, chain_events](hw::Packet p) {
      ++*rx;
      // Echo becomes the reply once the chain drains: swap src/dst in place.
      for (int i = 0; i < 4; ++i) {
        std::swap(p.bytes[net::kOffSrcIp + i], p.bytes[net::kOffDstIp + i]);
      }
      std::swap(p.bytes[net::kOffSrcPort], p.bytes[net::kOffDstPort]);
      std::swap(p.bytes[net::kOffSrcPort + 1], p.bytes[net::kOffDstPort + 1]);
      ClusterChainStep(eng, work, chain_events, nic, std::move(p));
    });
  }
  for (uint32_t j = 0; j < tc.clients; ++j) {
    hw::Machine& cli = topo.client(j);
    auto* rx = cli.counters().Handle("cli.rx");
    hw::Nic* nic = &cli.nic(0);
    nic->SetReceiveHandler([rx, nic](hw::Packet p) {
      ++*rx;
      // Closed loop: the reply bounces straight back as the next request.
      for (int i = 0; i < 4; ++i) {
        std::swap(p.bytes[net::kOffSrcIp + i], p.bytes[net::kOffDstIp + i]);
      }
      std::swap(p.bytes[net::kOffSrcPort], p.bytes[net::kOffDstPort]);
      std::swap(p.bytes[net::kOffSrcPort + 1], p.bytes[net::kOffDstPort + 1]);
      nic->Transmit(std::move(p));
    });
    for (uint32_t o = 0; o < kOutstanding; ++o) {
      hw::Packet req;
      req.bytes.assign(64, 0);
      req.bytes[net::kOffProto] = net::kProtoUdp;
      const uint32_t src_ip = topo.client_ip(j);
      for (int i = 0; i < 4; ++i) {
        req.bytes[net::kOffSrcIp + i] = static_cast<uint8_t>(src_ip >> (8 * i));
        req.bytes[net::kOffDstIp + i] =
            static_cast<uint8_t>(cluster::Topology::kVip >> (8 * i));
      }
      const uint16_t port = static_cast<uint16_t>(3000 + j * 16 + o);
      req.bytes[net::kOffSrcPort] = static_cast<uint8_t>(port);
      req.bytes[net::kOffSrcPort + 1] = static_cast<uint8_t>(port >> 8);
      req.bytes[net::kOffDstPort] = 80;
      nic->Transmit(std::move(req));
    }
  }

  const double t0 = WallNow();
  topo.RunUntil(sim_cycles);
  const double t1 = WallNow();

  ClusterScaleRun r;
  r.wall_s = t1 - t0;
  r.sim_s = static_cast<double>(sim_cycles) / 200e6;
  for (uint32_t k = 0; k < tc.servers; ++k) {
    r.ops += topo.server(k).counters().Get("srv.chain_events");
  }
  r.cross_messages = topo.cluster().cross_messages();
  r.rounds = topo.cluster().rounds();
  r.counters = topo.MergedCountersDump();
  return r;
}

struct ClusterScaleResult {
  WorkloadResult serial;  // the threads=1 lane: gated like every workload
  double speedup = 0;     // t1 wall / tN wall
  uint32_t parallel_threads = 0;
  uint64_t cross_messages = 0;
  uint64_t rounds = 0;
  bool equivalent = false;  // byte-identical merged counters across lanes
};

ClusterScaleResult ClusterScale(double scale) {
  const auto chain = static_cast<uint32_t>(64 * scale);
  const sim::Cycles sim_cycles = 20'000'000;  // 100 ms simulated
  const uint32_t hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const uint32_t par = std::min(4u, hw_threads);

  ClusterScaleRun t1 = RunClusterScaleOnce(1, chain, sim_cycles);
  ClusterScaleRun tn = RunClusterScaleOnce(par, chain, sim_cycles);
  EXO_CHECK_EQ(t1.ops, tn.ops);
  EXO_CHECK(t1.counters == tn.counters);  // determinism contract, enforced

  ClusterScaleResult r;
  r.serial.name = "cluster_scale";
  r.serial.ops = t1.ops;
  r.serial.wall_s = t1.wall_s;
  r.serial.sim_s = t1.sim_s;
  r.speedup = tn.wall_s > 0 ? t1.wall_s / tn.wall_s : 0;
  r.parallel_threads = par;
  r.cross_messages = t1.cross_messages;
  r.rounds = t1.rounds;
  r.equivalent = t1.counters == tn.counters;
  return r;
}

// ---- Workload 4: scaled-down Figure 4 global load ----
WorkloadResult GlobalFig4(int jobs, int conc) {
  using namespace exo::bench;
  auto setup_shared = [](os::UnixEnv& env, int) { MakeSharedInputs(env, false); };
  std::vector<GlobalJob> pool = {
      {"grep",
       [](os::UnixEnv& e, int) {
         for (int r = 0; r < 3; ++r) {
           EXO_CHECK(apps::Grep(e, "symbol", "/shared/big.txt").ok());
         }
       },
       setup_shared},
      {"wc",
       [](os::UnixEnv& e, int) {
         for (int r = 0; r < 4; ++r) {
           EXO_CHECK(apps::Wc(e, "/shared/big.txt").ok());
         }
       },
       setup_shared},
      {"cksum",
       [](os::UnixEnv& e, int) { EXO_CHECK(apps::Cksum(e, "/shared/t", 20).ok()); },
       setup_shared},
      {"sor", [](os::UnixEnv& e, int) { EXO_CHECK(apps::Sor(e, 150, 30).ok()); }, {}},
  };

  const double t0 = WallNow();
  GlobalResult g = RunGlobal(os::Flavor::kXokExos, pool, jobs, conc, 11);
  const double t1 = WallNow();

  WorkloadResult r;
  r.name = "global_fig4";
  r.ops = static_cast<uint64_t>(jobs);
  r.wall_s = t1 - t0;
  r.sim_s = g.total;
  return r;
}

void PrintResult(const WorkloadResult& r) {
  std::printf("%-18s %12llu ops %9.3f s wall %12.0f ops/s %10.3f sim-s %8.2f sim-s/wall-s\n",
              r.name.c_str(), static_cast<unsigned long long>(r.ops), r.wall_s,
              static_cast<double>(r.ops) / r.wall_s, r.sim_s, r.sim_s / r.wall_s);
  if (r.predicate_evals + r.predicate_skips > 0) {
    std::printf("%-18s %12s evals=%llu skips=%llu\n", "", "",
                static_cast<unsigned long long>(r.predicate_evals),
                static_cast<unsigned long long>(r.predicate_skips));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_simperf.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") {
      out_path = argv[i + 1];
    }
  }
  double scale = 1.0;
  if (const char* s = std::getenv("SIMPERF_SCALE")) {
    scale = std::atof(s);
    if (scale <= 0) {
      scale = 1.0;
    }
  }

#ifdef EXO_XOK_PREDICATE_WATCHES
  const bool indexed = true;
#else
  const bool indexed = false;
#endif

  exo::bench::PrintHeader("simperf: simulator hot-path wall-clock throughput");
  std::printf("scale=%.2f indexed_predicates=%s\n\n", scale, indexed ? "yes" : "no");

  std::vector<WorkloadResult> results;
  results.push_back(EventChurn(static_cast<uint64_t>(150000 * scale)));
  PrintResult(results.back());
  results.push_back(TraceOverhead(static_cast<uint64_t>(150000 * scale)));
  PrintResult(results.back());
  results.push_back(PredicateStorm(static_cast<uint32_t>(1000 * scale), 10));
  PrintResult(results.back());
  results.push_back(DiskDeepQueue(8, static_cast<uint32_t>(3000 * scale)));
  PrintResult(results.back());
  results.push_back(GlobalFig4(std::max(4, static_cast<int>(16 * scale)), 4));
  PrintResult(results.back());
  const ClusterScaleResult cs = ClusterScale(scale);
  results.push_back(cs.serial);
  PrintResult(results.back());
  std::printf("%-18s %12s threads=%u speedup=%.2fx rounds=%llu cross_msgs=%llu "
              "equivalent=%s hw_threads=%u\n",
              "", "", cs.parallel_threads, cs.speedup,
              static_cast<unsigned long long>(cs.rounds),
              static_cast<unsigned long long>(cs.cross_messages),
              cs.equivalent ? "yes" : "NO", std::thread::hardware_concurrency());

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"simperf\",\n  \"scale\": %.3f,\n", scale);
  std::fprintf(f, "  \"indexed_predicates\": %s,\n", indexed ? "true" : "false");
  std::fprintf(f, "  \"hw_threads\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "  \"cluster\": {\"threads\": %u, \"speedup\": %.3f, "
               "\"equivalent\": %s, \"rounds\": %llu, \"cross_messages\": %llu},\n",
               cs.parallel_threads, cs.speedup, cs.equivalent ? "true" : "false",
               static_cast<unsigned long long>(cs.rounds),
               static_cast<unsigned long long>(cs.cross_messages));
  std::fprintf(f, "  \"workloads\": {\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    std::fprintf(f,
                 "    \"%s\": {\"ops\": %llu, \"wall_s\": %.6f, \"events_per_sec\": "
                 "%.1f, \"sim_s\": %.6f, \"sim_s_per_wall_s\": %.3f, "
                 "\"predicate_evals\": %llu, \"predicate_skips\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.ops), r.wall_s,
                 static_cast<double>(r.ops) / r.wall_s, r.sim_s, r.sim_s / r.wall_s,
                 static_cast<unsigned long long>(r.predicate_evals),
                 static_cast<unsigned long long>(r.predicate_skips),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
