// Figure 4: global performance with the first application pool — a mix of I/O- and
// CPU-intensive programs on which Xok/ExOS and FreeBSD run roughly equivalently in
// isolation (pax -w, grep, cksum, tsp, sor, wc, gcc, gzip, gunzip). number/number is
// total jobs / maximum concurrency. Paper: the exokernel achieves performance
// roughly comparable to FreeBSD despite being untuned for global performance.
#include "bench/global_common.h"

int main(int argc, char** argv) {
  using namespace exo;
  using namespace exo::bench;

  const TraceOptions trace_opts = ParseTraceArgs(argc, argv);
  auto setup_shared = [](os::UnixEnv& env, int) { MakeSharedInputs(env, false); };

  std::vector<GlobalJob> pool = {
      {"pax",
       [](os::UnixEnv& e, int i) {
         EXO_CHECK_EQ(apps::PaxWrite(e, "/shared/t", "/job" + std::to_string(i) + "/t.pax"),
                      Status::kOk);
       },
       setup_shared},
      {"grep",
       [](os::UnixEnv& e, int) {
         for (int r = 0; r < 6; ++r) {
           EXO_CHECK(apps::Grep(e, "symbol", "/shared/big.txt").ok());
         }
       },
       setup_shared},
      {"cksum",
       [](os::UnixEnv& e, int) { EXO_CHECK(apps::Cksum(e, "/shared/t", 40).ok()); },
       setup_shared},
      {"tsp", [](os::UnixEnv& e, int) { EXO_CHECK(apps::Tsp(e, 500, 30, 7).ok()); }, {}},
      {"sor", [](os::UnixEnv& e, int) { EXO_CHECK(apps::Sor(e, 300, 60).ok()); }, {}},
      {"wc",
       [](os::UnixEnv& e, int) {
         for (int r = 0; r < 8; ++r) {
           EXO_CHECK(apps::Wc(e, "/shared/big.txt").ok());
         }
       },
       setup_shared},
      {"gcc",
       [](os::UnixEnv& e, int i) {
         std::string dir = "/job" + std::to_string(i) + "/t";
         EXO_CHECK_EQ(apps::CpR(e, "/shared/t", dir), Status::kOk);
         EXO_CHECK_EQ(apps::GccBuild(e, dir), Status::kOk);
       },
       setup_shared},
      {"gzip",
       [](os::UnixEnv& e, int i) {
         EXO_CHECK_EQ(apps::Gzip(e, "/shared/big.txt",
                                 "/job" + std::to_string(i) + "/big.gz"),
                      Status::kOk);
       },
       setup_shared},
      {"gunzip",
       [](os::UnixEnv& e, int i) {
         std::string gz = "/job" + std::to_string(i) + "/in.gz";
         EXO_CHECK_EQ(apps::Gzip(e, "/shared/big.txt", gz), Status::kOk);
         EXO_CHECK_EQ(apps::Gunzip(e, gz, "/job" + std::to_string(i) + "/out.txt"),
                      Status::kOk);
       },
       setup_shared},
  };

  PrintGlobalTable("Figure 4: global performance, application pool 1 (seconds)", pool, 11,
                   trace_opts);
  std::printf("\npaper: Xok/ExOS achieves throughput and latency roughly comparable to\n");
  std::printf("FreeBSD across all concurrency levels, despite decentralized management\n");
  return 0;
}
