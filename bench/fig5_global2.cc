// Figure 5: global performance with the second application pool, where specialized
// applications (ones that benefit from C-FFS, emulated here by the pax -r / cp -r /
// diff jobs) compete with each other and with CPU-bound jobs. Paper: global
// performance does not degrade when some applications use resources aggressively —
// the relative advantage of Xok/ExOS grows with concurrency.
#include "bench/global_common.h"

int main(int argc, char** argv) {
  using namespace exo;
  using namespace exo::bench;

  const TraceOptions trace_opts = ParseTraceArgs(argc, argv);
  auto setup_shared = [](os::UnixEnv& env, int) { MakeSharedInputs(env, true); };

  std::vector<GlobalJob> pool = {
      {"tsp", [](os::UnixEnv& e, int) { EXO_CHECK(apps::Tsp(e, 500, 30, 7).ok()); }, {}},
      {"sor", [](os::UnixEnv& e, int) { EXO_CHECK(apps::Sor(e, 300, 60).ok()); }, {}},
      {"pax",  // unpack archive (from Sec. 6): many small file creates
       [](os::UnixEnv& e, int i) {
         EXO_CHECK_EQ(apps::PaxRead(e, "/shared/t.pax", "/job" + std::to_string(i) + "/u"),
                      Status::kOk);
       },
       setup_shared},
      {"cp",  // recursive copy (from Sec. 6)
       [](os::UnixEnv& e, int i) {
         EXO_CHECK_EQ(apps::CpR(e, "/shared/t", "/job" + std::to_string(i) + "/c"),
                      Status::kOk);
       },
       setup_shared},
      {"diff",  // compare two identical 5 MB files
       [](os::UnixEnv& e, int) {
         auto d = apps::DiffFile(e, "/shared/five.a", "/shared/five.b");
         EXO_CHECK(d.ok());
         EXO_CHECK_EQ(*d, 0);
       },
       setup_shared},
  };

  PrintGlobalTable("Figure 5: global performance, application pool 2 (seconds)", pool, 13,
                   trace_opts);
  std::printf("\npaper: global performance does not degrade with aggressive applications;\n");
  std::printf("the Xok/ExOS advantage grows with job concurrency\n");
  return 0;
}
