# Empty dependencies file for sec71_emulator.
# This may be replaced when dependencies are built.
