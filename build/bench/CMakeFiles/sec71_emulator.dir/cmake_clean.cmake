file(REMOVE_RECURSE
  "CMakeFiles/sec71_emulator.dir/sec71_emulator.cc.o"
  "CMakeFiles/sec71_emulator.dir/sec71_emulator.cc.o.d"
  "sec71_emulator"
  "sec71_emulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec71_emulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
