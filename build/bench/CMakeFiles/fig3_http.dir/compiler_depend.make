# Empty compiler generated dependencies file for fig3_http.
# This may be replaced when dependencies are built.
