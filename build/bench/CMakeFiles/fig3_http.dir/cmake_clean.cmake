file(REMOVE_RECURSE
  "CMakeFiles/fig3_http.dir/fig3_http.cc.o"
  "CMakeFiles/fig3_http.dir/fig3_http.cc.o.d"
  "fig3_http"
  "fig3_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
