# Empty dependencies file for ablation_udf.
# This may be replaced when dependencies are built.
