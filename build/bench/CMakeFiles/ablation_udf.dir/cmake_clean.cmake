file(REMOVE_RECURSE
  "CMakeFiles/ablation_udf.dir/ablation_udf.cc.o"
  "CMakeFiles/ablation_udf.dir/ablation_udf.cc.o.d"
  "ablation_udf"
  "ablation_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
