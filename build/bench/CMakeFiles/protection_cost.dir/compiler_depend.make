# Empty compiler generated dependencies file for protection_cost.
# This may be replaced when dependencies are built.
