# Empty dependencies file for protection_cost.
# This may be replaced when dependencies are built.
