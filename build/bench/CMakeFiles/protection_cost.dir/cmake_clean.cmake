file(REMOVE_RECURSE
  "CMakeFiles/protection_cost.dir/protection_cost.cc.o"
  "CMakeFiles/protection_cost.dir/protection_cost.cc.o.d"
  "protection_cost"
  "protection_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protection_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
