# Empty dependencies file for fig4_global1.
# This may be replaced when dependencies are built.
