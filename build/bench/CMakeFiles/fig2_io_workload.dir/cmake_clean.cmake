file(REMOVE_RECURSE
  "CMakeFiles/fig2_io_workload.dir/fig2_io_workload.cc.o"
  "CMakeFiles/fig2_io_workload.dir/fig2_io_workload.cc.o.d"
  "fig2_io_workload"
  "fig2_io_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_io_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
