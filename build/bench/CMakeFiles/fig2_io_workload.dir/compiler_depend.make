# Empty compiler generated dependencies file for fig2_io_workload.
# This may be replaced when dependencies are built.
