file(REMOVE_RECURSE
  "CMakeFiles/sec72_xcp.dir/sec72_xcp.cc.o"
  "CMakeFiles/sec72_xcp.dir/sec72_xcp.cc.o.d"
  "sec72_xcp"
  "sec72_xcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec72_xcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
