# Empty dependencies file for sec72_xcp.
# This may be replaced when dependencies are built.
