# Empty dependencies file for table2_pipes.
# This may be replaced when dependencies are built.
