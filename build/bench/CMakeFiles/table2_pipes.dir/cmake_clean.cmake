file(REMOVE_RECURSE
  "CMakeFiles/table2_pipes.dir/table2_pipes.cc.o"
  "CMakeFiles/table2_pipes.dir/table2_pipes.cc.o.d"
  "table2_pipes"
  "table2_pipes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pipes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
