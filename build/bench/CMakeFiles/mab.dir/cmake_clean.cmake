file(REMOVE_RECURSE
  "CMakeFiles/mab.dir/mab.cc.o"
  "CMakeFiles/mab.dir/mab.cc.o.d"
  "mab"
  "mab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
