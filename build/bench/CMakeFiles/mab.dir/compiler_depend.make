# Empty compiler generated dependencies file for mab.
# This may be replaced when dependencies are built.
