
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_global2.cc" "bench/CMakeFiles/fig5_global2.dir/fig5_global2.cc.o" "gcc" "bench/CMakeFiles/fig5_global2.dir/fig5_global2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/exo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/exos/CMakeFiles/exo_exos.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/exo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/exo_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/xn/CMakeFiles/exo_xn.dir/DependInfo.cmake"
  "/root/repo/build/src/xok/CMakeFiles/exo_xok.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/exo_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/exo_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/exo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
