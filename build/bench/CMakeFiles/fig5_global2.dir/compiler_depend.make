# Empty compiler generated dependencies file for fig5_global2.
# This may be replaced when dependencies are built.
