file(REMOVE_RECURSE
  "CMakeFiles/fig5_global2.dir/fig5_global2.cc.o"
  "CMakeFiles/fig5_global2.dir/fig5_global2.cc.o.d"
  "fig5_global2"
  "fig5_global2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_global2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
