file(REMOVE_RECURSE
  "CMakeFiles/fork_cost.dir/fork_cost.cc.o"
  "CMakeFiles/fork_cost.dir/fork_cost.cc.o.d"
  "fork_cost"
  "fork_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fork_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
