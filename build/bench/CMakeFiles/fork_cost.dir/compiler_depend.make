# Empty compiler generated dependencies file for fork_cost.
# This may be replaced when dependencies are built.
