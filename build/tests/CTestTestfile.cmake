# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/udf_test[1]_include.cmake")
include("/root/repo/build/tests/xok_test[1]_include.cmake")
include("/root/repo/build/tests/xn_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
