file(REMOVE_RECURSE
  "CMakeFiles/xn_test.dir/xn_test.cc.o"
  "CMakeFiles/xn_test.dir/xn_test.cc.o.d"
  "xn_test"
  "xn_test.pdb"
  "xn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
