# Empty compiler generated dependencies file for xn_test.
# This may be replaced when dependencies are built.
