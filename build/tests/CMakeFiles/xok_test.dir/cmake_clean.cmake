file(REMOVE_RECURSE
  "CMakeFiles/xok_test.dir/xok_test.cc.o"
  "CMakeFiles/xok_test.dir/xok_test.cc.o.d"
  "xok_test"
  "xok_test.pdb"
  "xok_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
