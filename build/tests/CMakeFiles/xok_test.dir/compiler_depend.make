# Empty compiler generated dependencies file for xok_test.
# This may be replaced when dependencies are built.
