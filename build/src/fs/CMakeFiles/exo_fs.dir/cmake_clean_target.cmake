file(REMOVE_RECURSE
  "libexo_fs.a"
)
