# Empty dependencies file for exo_fs.
# This may be replaced when dependencies are built.
