file(REMOVE_RECURSE
  "CMakeFiles/exo_fs.dir/cffs.cc.o"
  "CMakeFiles/exo_fs.dir/cffs.cc.o.d"
  "CMakeFiles/exo_fs.dir/ffs.cc.o"
  "CMakeFiles/exo_fs.dir/ffs.cc.o.d"
  "CMakeFiles/exo_fs.dir/kernel_backend.cc.o"
  "CMakeFiles/exo_fs.dir/kernel_backend.cc.o.d"
  "CMakeFiles/exo_fs.dir/xn_backend.cc.o"
  "CMakeFiles/exo_fs.dir/xn_backend.cc.o.d"
  "libexo_fs.a"
  "libexo_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
