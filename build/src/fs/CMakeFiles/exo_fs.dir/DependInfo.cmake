
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/cffs.cc" "src/fs/CMakeFiles/exo_fs.dir/cffs.cc.o" "gcc" "src/fs/CMakeFiles/exo_fs.dir/cffs.cc.o.d"
  "/root/repo/src/fs/ffs.cc" "src/fs/CMakeFiles/exo_fs.dir/ffs.cc.o" "gcc" "src/fs/CMakeFiles/exo_fs.dir/ffs.cc.o.d"
  "/root/repo/src/fs/kernel_backend.cc" "src/fs/CMakeFiles/exo_fs.dir/kernel_backend.cc.o" "gcc" "src/fs/CMakeFiles/exo_fs.dir/kernel_backend.cc.o.d"
  "/root/repo/src/fs/xn_backend.cc" "src/fs/CMakeFiles/exo_fs.dir/xn_backend.cc.o" "gcc" "src/fs/CMakeFiles/exo_fs.dir/xn_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/exo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/exo_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/exo_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/xn/CMakeFiles/exo_xn.dir/DependInfo.cmake"
  "/root/repo/build/src/xok/CMakeFiles/exo_xok.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
