
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udf/assembler.cc" "src/udf/CMakeFiles/exo_udf.dir/assembler.cc.o" "gcc" "src/udf/CMakeFiles/exo_udf.dir/assembler.cc.o.d"
  "/root/repo/src/udf/verifier.cc" "src/udf/CMakeFiles/exo_udf.dir/verifier.cc.o" "gcc" "src/udf/CMakeFiles/exo_udf.dir/verifier.cc.o.d"
  "/root/repo/src/udf/vm.cc" "src/udf/CMakeFiles/exo_udf.dir/vm.cc.o" "gcc" "src/udf/CMakeFiles/exo_udf.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/exo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
