# Empty dependencies file for exo_udf.
# This may be replaced when dependencies are built.
