file(REMOVE_RECURSE
  "libexo_udf.a"
)
