file(REMOVE_RECURSE
  "CMakeFiles/exo_udf.dir/assembler.cc.o"
  "CMakeFiles/exo_udf.dir/assembler.cc.o.d"
  "CMakeFiles/exo_udf.dir/verifier.cc.o"
  "CMakeFiles/exo_udf.dir/verifier.cc.o.d"
  "CMakeFiles/exo_udf.dir/vm.cc.o"
  "CMakeFiles/exo_udf.dir/vm.cc.o.d"
  "libexo_udf.a"
  "libexo_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
