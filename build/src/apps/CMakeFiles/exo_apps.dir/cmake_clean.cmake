file(REMOVE_RECURSE
  "CMakeFiles/exo_apps.dir/http.cc.o"
  "CMakeFiles/exo_apps.dir/http.cc.o.d"
  "CMakeFiles/exo_apps.dir/lz.cc.o"
  "CMakeFiles/exo_apps.dir/lz.cc.o.d"
  "CMakeFiles/exo_apps.dir/unix_apps.cc.o"
  "CMakeFiles/exo_apps.dir/unix_apps.cc.o.d"
  "CMakeFiles/exo_apps.dir/workload.cc.o"
  "CMakeFiles/exo_apps.dir/workload.cc.o.d"
  "CMakeFiles/exo_apps.dir/xcp.cc.o"
  "CMakeFiles/exo_apps.dir/xcp.cc.o.d"
  "libexo_apps.a"
  "libexo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
