file(REMOVE_RECURSE
  "CMakeFiles/exo_hw.dir/disk.cc.o"
  "CMakeFiles/exo_hw.dir/disk.cc.o.d"
  "CMakeFiles/exo_hw.dir/nic.cc.o"
  "CMakeFiles/exo_hw.dir/nic.cc.o.d"
  "libexo_hw.a"
  "libexo_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
