file(REMOVE_RECURSE
  "libexo_hw.a"
)
