# Empty compiler generated dependencies file for exo_hw.
# This may be replaced when dependencies are built.
