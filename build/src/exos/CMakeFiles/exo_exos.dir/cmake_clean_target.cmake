file(REMOVE_RECURSE
  "libexo_exos.a"
)
