file(REMOVE_RECURSE
  "CMakeFiles/exo_exos.dir/system.cc.o"
  "CMakeFiles/exo_exos.dir/system.cc.o.d"
  "libexo_exos.a"
  "libexo_exos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_exos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
