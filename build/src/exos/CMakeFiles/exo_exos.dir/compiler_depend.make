# Empty compiler generated dependencies file for exo_exos.
# This may be replaced when dependencies are built.
