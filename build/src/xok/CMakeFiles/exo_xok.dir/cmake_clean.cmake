file(REMOVE_RECURSE
  "CMakeFiles/exo_xok.dir/kernel.cc.o"
  "CMakeFiles/exo_xok.dir/kernel.cc.o.d"
  "libexo_xok.a"
  "libexo_xok.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_xok.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
