# Empty compiler generated dependencies file for exo_xok.
# This may be replaced when dependencies are built.
