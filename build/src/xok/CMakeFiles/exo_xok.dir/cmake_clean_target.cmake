file(REMOVE_RECURSE
  "libexo_xok.a"
)
