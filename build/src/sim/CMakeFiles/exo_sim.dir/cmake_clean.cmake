file(REMOVE_RECURSE
  "CMakeFiles/exo_sim.dir/engine.cc.o"
  "CMakeFiles/exo_sim.dir/engine.cc.o.d"
  "CMakeFiles/exo_sim.dir/fiber.cc.o"
  "CMakeFiles/exo_sim.dir/fiber.cc.o.d"
  "CMakeFiles/exo_sim.dir/status.cc.o"
  "CMakeFiles/exo_sim.dir/status.cc.o.d"
  "libexo_sim.a"
  "libexo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
