# Empty compiler generated dependencies file for exo_sim.
# This may be replaced when dependencies are built.
