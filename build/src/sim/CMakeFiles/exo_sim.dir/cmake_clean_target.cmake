file(REMOVE_RECURSE
  "libexo_sim.a"
)
