file(REMOVE_RECURSE
  "libexo_xn.a"
)
