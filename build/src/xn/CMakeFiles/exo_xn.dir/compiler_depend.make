# Empty compiler generated dependencies file for exo_xn.
# This may be replaced when dependencies are built.
