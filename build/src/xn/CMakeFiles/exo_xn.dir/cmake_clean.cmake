file(REMOVE_RECURSE
  "CMakeFiles/exo_xn.dir/types.cc.o"
  "CMakeFiles/exo_xn.dir/types.cc.o.d"
  "CMakeFiles/exo_xn.dir/xn.cc.o"
  "CMakeFiles/exo_xn.dir/xn.cc.o.d"
  "libexo_xn.a"
  "libexo_xn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_xn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
