# Empty compiler generated dependencies file for exo_net.
# This may be replaced when dependencies are built.
