file(REMOVE_RECURSE
  "CMakeFiles/exo_net.dir/packet.cc.o"
  "CMakeFiles/exo_net.dir/packet.cc.o.d"
  "CMakeFiles/exo_net.dir/tcp.cc.o"
  "CMakeFiles/exo_net.dir/tcp.cc.o.d"
  "libexo_net.a"
  "libexo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
