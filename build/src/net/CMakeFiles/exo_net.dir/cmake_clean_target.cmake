file(REMOVE_RECURSE
  "libexo_net.a"
)
