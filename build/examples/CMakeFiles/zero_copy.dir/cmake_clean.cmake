file(REMOVE_RECURSE
  "CMakeFiles/zero_copy.dir/zero_copy.cpp.o"
  "CMakeFiles/zero_copy.dir/zero_copy.cpp.o.d"
  "zero_copy"
  "zero_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
