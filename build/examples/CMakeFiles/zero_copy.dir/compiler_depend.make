# Empty compiler generated dependencies file for zero_copy.
# This may be replaced when dependencies are built.
