# Empty compiler generated dependencies file for custom_filesystem.
# This may be replaced when dependencies are built.
