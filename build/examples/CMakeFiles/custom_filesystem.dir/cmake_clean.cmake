file(REMOVE_RECURSE
  "CMakeFiles/custom_filesystem.dir/custom_filesystem.cpp.o"
  "CMakeFiles/custom_filesystem.dir/custom_filesystem.cpp.o.d"
  "custom_filesystem"
  "custom_filesystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_filesystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
