// Integration tests: booted systems (all four flavors), processes, pipes, and the
// real applications running end-to-end over the full stack.
#include <gtest/gtest.h>

#include <memory>

#include "apps/lz.h"
#include "apps/unix_apps.h"
#include "apps/workload.h"
#include "apps/xcp.h"
#include "exos/system.h"

namespace exo::os {
namespace {

hw::MachineConfig TestMachine() {
  hw::MachineConfig cfg;
  cfg.mem_frames = 8192;
  cfg.disks = {hw::DiskGeometry{.num_blocks = 16384}};  // 64 MB disk
  return cfg;
}

class OsFlavorTest : public ::testing::TestWithParam<Flavor> {
 protected:
  OsFlavorTest() : machine_(&engine_, TestMachine()) {}

  std::unique_ptr<System> BootSystem(SystemOptions opts = {}) {
    auto sys = std::make_unique<System>(&machine_, GetParam(), opts);
    EXO_CHECK_EQ(sys->Boot(), Status::kOk);
    return sys;
  }

  sim::Engine engine_;
  hw::Machine machine_;
};

TEST_P(OsFlavorTest, FileRoundTripThroughProcess) {
  auto sys = BootSystem();
  std::vector<uint8_t> got;
  sys->SpawnInit("sh", [&](UnixEnv& env) {
    std::vector<uint8_t> data(10000);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i * 7);
    }
    auto fd = env.Open("/data.bin", true);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(env.Write(*fd, data).ok());
    ASSERT_EQ(env.Close(*fd), Status::kOk);

    auto fd2 = env.Open("/data.bin", false);
    ASSERT_TRUE(fd2.ok());
    got.resize(data.size());
    auto n = env.Read(*fd2, got);
    ASSERT_TRUE(n.ok());
    got.resize(*n);
    EXPECT_EQ(got, data);
  });
  sys->Run();
  EXPECT_EQ(got.size(), 10000u);
}

TEST_P(OsFlavorTest, SpawnAndWaitChildren) {
  auto sys = BootSystem();
  std::vector<int> order;
  sys->SpawnInit("sh", [&](UnixEnv& env) {
    auto pid = env.Spawn("wc", [&](UnixEnv& child) {
      order.push_back(1);
      child.Compute(10'000);
    });
    ASSERT_TRUE(pid.ok());
    auto code = env.Wait(*pid);
    ASSERT_TRUE(code.ok());
    order.push_back(2);
  });
  sys->Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sys->proc_records().size(), 2u);
}

TEST_P(OsFlavorTest, PipePingPong) {
  auto sys = BootSystem();
  int rounds_done = 0;
  sys->SpawnInit("sh", [&](UnixEnv& env) {
    auto ab = env.Pipe();
    auto ba = env.Pipe();
    ASSERT_TRUE(ab.ok());
    ASSERT_TRUE(ba.ok());
    auto child = env.Spawn("wc", [&, ab = *ab, ba = *ba](UnixEnv& c) {
      std::vector<uint8_t> buf(1);
      for (int i = 0; i < 10; ++i) {
        auto n = c.Read(ab.first, buf);
        ASSERT_TRUE(n.ok());
        ASSERT_EQ(*n, 1u);
        buf[0] += 1;
        ASSERT_TRUE(c.Write(ba.second, buf).ok());
      }
    });
    ASSERT_TRUE(child.ok());
    std::vector<uint8_t> buf = {0};
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(env.Write(ab->second, buf).ok());
      auto n = env.Read(ba->first, buf);
      ASSERT_TRUE(n.ok());
      ++rounds_done;
    }
    EXPECT_EQ(buf[0], 10);
    EXPECT_TRUE(env.Wait(*child).ok());
  });
  sys->Run();
  EXPECT_EQ(rounds_done, 10);
}

TEST_P(OsFlavorTest, PipeEofAfterWriterCloses) {
  auto sys = BootSystem();
  uint32_t eof_read = 99;
  sys->SpawnInit("sh", [&](UnixEnv& env) {
    auto p = env.Pipe();
    ASSERT_TRUE(p.ok());
    std::vector<uint8_t> data = {1, 2, 3};
    ASSERT_TRUE(env.Write(p->second, data).ok());
    ASSERT_EQ(env.Close(p->second), Status::kOk);
    std::vector<uint8_t> buf(8);
    auto n = env.Read(p->first, buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 3u);
    auto n2 = env.Read(p->first, buf);
    ASSERT_TRUE(n2.ok());
    eof_read = *n2;
  });
  sys->Run();
  EXPECT_EQ(eof_read, 0u);
}

TEST_P(OsFlavorTest, GzipGunzipRoundTripOnRealFs) {
  auto sys = BootSystem();
  int diffs = -1;
  sys->SpawnInit("sh", [&](UnixEnv& env) {
    apps::FileSpec spec{.path = "x.c", .size = 60'000, .seed = 5};
    auto content = apps::FileContent(spec);
    auto fd = env.Open("/x.c", true);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(env.Write(*fd, content).ok());
    ASSERT_EQ(env.Close(*fd), Status::kOk);
    ASSERT_EQ(apps::Gzip(env, "/x.c", "/x.c.gz"), Status::kOk);
    // Real compression on C-like text should shrink meaningfully.
    auto st = env.Stat("/x.c.gz");
    ASSERT_TRUE(st.ok());
    EXPECT_LT(st->size * 2, content.size());
    ASSERT_EQ(apps::Gunzip(env, "/x.c.gz", "/x2.c"), Status::kOk);
    auto d = apps::DiffFile(env, "/x.c", "/x2.c");
    ASSERT_TRUE(d.ok());
    diffs = *d;
  });
  sys->Run();
  EXPECT_EQ(diffs, 0);
}

TEST_P(OsFlavorTest, PaxArchiveRoundTripsTree) {
  auto sys = BootSystem();
  int diffs = -1;
  sys->SpawnInit("sh", [&](UnixEnv& env) {
    apps::TreeSpec tree;
    tree.dirs = {"a", "a/b"};
    for (int i = 0; i < 6; ++i) {
      tree.files.push_back({"a/f" + std::to_string(i) + ".c",
                            static_cast<uint32_t>(3000 + i * 1700),
                            static_cast<uint64_t>(i + 1)});
      tree.files.push_back({"a/b/g" + std::to_string(i) + ".h",
                            static_cast<uint32_t>(900 + i * 211),
                            static_cast<uint64_t>(i + 100)});
    }
    ASSERT_EQ(apps::WriteTree(env, tree, "/t1"), Status::kOk);
    ASSERT_EQ(apps::PaxWrite(env, "/t1", "/t.pax"), Status::kOk);
    ASSERT_EQ(apps::PaxRead(env, "/t.pax", "/t2"), Status::kOk);
    auto d = apps::DiffTree(env, "/t1", "/t2");
    ASSERT_TRUE(d.ok());
    diffs = *d;
    // And rm -r works.
    ASSERT_EQ(apps::RmTree(env, "/t2"), Status::kOk);
    EXPECT_EQ(env.Stat("/t2").status(), Status::kNotFound);
  });
  sys->Run();
  EXPECT_EQ(diffs, 0);
}

TEST_P(OsFlavorTest, WcGrepCksum) {
  auto sys = BootSystem();
  sys->SpawnInit("sh", [&](UnixEnv& env) {
    std::string text = "alpha\nbeta symbol\ngamma symbol\n";
    auto fd = env.Open("/w.txt", true);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(env.Write(*fd, std::span<const uint8_t>(
                                    reinterpret_cast<const uint8_t*>(text.data()),
                                    text.size())).ok());
    env.Close(*fd);
    auto lines = apps::Wc(env, "/w.txt");
    ASSERT_TRUE(lines.ok());
    EXPECT_EQ(*lines, 3u);
    auto hits = apps::Grep(env, "symbol", "/w.txt");
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(*hits, 2u);
  });
  sys->Run();
}

INSTANTIATE_TEST_SUITE_P(Flavors, OsFlavorTest,
                         ::testing::Values(Flavor::kXokExos, Flavor::kOpenBsdCffs,
                                           Flavor::kOpenBsd, Flavor::kFreeBsd),
                         [](const ::testing::TestParamInfo<Flavor>& info) {
                           switch (info.param) {
                             case Flavor::kXokExos:
                               return "XokExos";
                             case Flavor::kOpenBsdCffs:
                               return "OpenBsdCffs";
                             case Flavor::kOpenBsd:
                               return "OpenBsd";
                             case Flavor::kFreeBsd:
                               return "FreeBsd";
                           }
                           return "unknown";
                         });

TEST(OsCostTest, GetPidMatchesPaperCalibration) {
  // Sec. 7.1: 270 cycles on OpenBSD, 100 as a procedure call into ExOS.
  auto measure = [](Flavor f) {
    sim::Engine engine;
    hw::Machine machine(&engine, TestMachine());
    System sys(&machine, f);
    EXO_CHECK_EQ(sys.Boot(), Status::kOk);
    sim::Cycles per_call = 0;
    sys.SpawnInit("sh", [&](UnixEnv& env) {
      sim::Cycles t0 = env.Now();
      for (int i = 0; i < 1000; ++i) {
        env.GetPid();
      }
      per_call = (env.Now() - t0) / 1000;
    });
    sys.Run();
    return per_call;
  };
  EXPECT_EQ(measure(Flavor::kXokExos), 100u);
  EXPECT_EQ(measure(Flavor::kOpenBsd), 270u);
}

TEST(OsCostTest, ExosForkSlowerThanBsdFork) {
  // Sec. 6.2: ExOS fork ~6 ms; OpenBSD < 1 ms.
  auto measure = [](Flavor f) {
    sim::Engine engine;
    hw::Machine machine(&engine, TestMachine());
    System sys(&machine, f);
    EXO_CHECK_EQ(sys.Boot(), Status::kOk);
    sim::Cycles total = 0;
    sys.SpawnInit("gcc", [&](UnixEnv& env) {
      sim::Cycles t0 = env.Now();
      auto pid = env.Fork([](UnixEnv&) {});
      total = env.Now() - t0;  // the fork path itself, before the child runs
      env.Wait(*pid);
    });
    sys.Run();
    return total;
  };
  sim::Cycles exos = measure(Flavor::kXokExos);
  sim::Cycles bsd = measure(Flavor::kOpenBsd);
  EXPECT_GT(exos, bsd * 2);  // ExOS fork is substantially more expensive
  EXPECT_GT(exos, 800'000u);  // ~>4 ms at 200 MHz for a large program
}

TEST(OsCostTest, ProtectionModeAddsSyscalls) {
  // Sec. 6.3: shared-state protection inserts syscalls before shared writes.
  auto syscalls = [](bool prot) {
    sim::Engine engine;
    hw::Machine machine(&engine, TestMachine());
    SystemOptions opts;
    opts.protected_shared_state = prot;
    System sys(&machine, Flavor::kXokExos, opts);
    EXO_CHECK_EQ(sys.Boot(), Status::kOk);
    sys.SpawnInit("sh", [&](UnixEnv& env) {
      auto fd = env.Open("/f", true);
      std::vector<uint8_t> chunk(4096, 1);
      for (int i = 0; i < 50; ++i) {
        env.Write(*fd, chunk);
      }
      env.Close(*fd);
    });
    sys.Run();
    return sys.syscall_count();
  };
  uint64_t with = syscalls(true);
  uint64_t without = syscalls(false);
  EXPECT_GT(with, without + 3 * 50);  // >=3 per fd-table write
}

TEST(ExosRevocationTest, LibOsShedsFramesOnKernelRequest) {
  // ExOS installs a default revocation handler on every process env (Sec. 3.4):
  // cached frames are a performance hint, so a kernel request is met by shedding
  // directly-held references synchronously in the upcall — never by abort.
  sim::Engine engine;
  hw::Machine machine(&engine, TestMachine());
  System sys(&machine, Flavor::kXokExos);
  ASSERT_EQ(sys.Boot(), Status::kOk);
  auto& kernel = sys.kernel();
  uint32_t usage_after = 999;
  bool done = false;
  xok::EnvId hog_env = xok::kInvalidEnv;
  sys.SpawnInit("hog", [&](UnixEnv&) {
    hog_env = kernel.current_id();
    for (uint16_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(kernel.SysFrameAlloc(0, xok::CapName{xok::kCapUsers, 7, i}).ok());
    }
    xok::WakeupPredicate p;
    p.host = [&] { return done; };
    kernel.SysSleep(std::move(p));
  });
  sys.SpawnInit("revoker", [&](UnixEnv&) {
    ASSERT_EQ(kernel.SysRevoke(hog_env, xok::RevokeResource::kFrames, 3, 1'000'000,
                               xok::kCredAny),
              Status::kOk);
    usage_after = kernel.env(hog_env).usage.frames;  // shed during the upcall
    done = true;
  });
  sys.Run();
  EXPECT_LE(usage_after, 3u);
  EXPECT_GE(machine.counters().Get("xok.revocations_complied"), 1u);
  EXPECT_EQ(machine.counters().Get("xok.env_aborts"), 0u);
  EXPECT_EQ(kernel.CheckInvariants(), "");
}

TEST(XcpTest, ZeroTouchCopyIsCorrectAndFaster) {
  sim::Engine engine;
  hw::Machine machine(&engine, TestMachine());
  System sys(&machine, Flavor::kXokExos);
  ASSERT_EQ(sys.Boot(), Status::kOk);

  std::vector<std::string> srcs;
  int diffs = -1;
  sim::Cycles cp_time = 0;
  sim::Cycles xcp_time = 0;
  sys.SpawnInit("sh", [&](UnixEnv& env) {
    ASSERT_EQ(env.Mkdir("/src"), Status::kOk);
    for (int i = 0; i < 8; ++i) {
      apps::FileSpec spec{.path = "f", .size = 40'000,
                          .seed = static_cast<uint64_t>(i + 1)};
      auto content = apps::FileContent(spec);
      std::string p = "/src/f" + std::to_string(i);
      auto fd = env.Open(p, true);
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(env.Write(*fd, content).ok());
      env.Close(*fd);
      srcs.push_back(p);
    }
    ASSERT_EQ(env.Sync(), Status::kOk);

    sim::Cycles t0 = env.Now();
    ASSERT_EQ(env.Mkdir("/cpd"), Status::kOk);
    for (const auto& s : srcs) {
      ASSERT_EQ(apps::Cp(env, s, "/cpd/" + s.substr(5)), Status::kOk);
    }
    cp_time = env.Now() - t0;

    t0 = env.Now();
    auto st = apps::Xcp(sys, env, srcs, "/xcpd");
    ASSERT_TRUE(st.ok()) << StatusName(st.status());
    EXPECT_EQ(st->blocks_copied, 8u * 10u);
    xcp_time = env.Now() - t0;

    auto d = apps::DiffTree(env, "/cpd", "/xcpd");
    ASSERT_TRUE(d.ok());
    diffs = *d;
  });
  sys.Run();
  EXPECT_EQ(diffs, 0);
  EXPECT_LT(xcp_time, cp_time);  // zero-touch beats read/write copy (in-core case)
}

// LZ codec properties on randomized inputs.
class LzProperty : public ::testing::TestWithParam<int> {};

TEST_P(LzProperty, RoundTripsArbitraryData) {
  sim::Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<uint8_t> data(rng.Below(100'000));
  // Mix compressible runs and random bytes.
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = (i / 64) % 3 == 0 ? static_cast<uint8_t>(rng.Next())
                                : static_cast<uint8_t>(i % 17);
  }
  auto packed = apps::LzCompress(data);
  bool ok = true;
  auto back = apps::LzDecompress(packed, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(back, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzProperty, ::testing::Range(1, 12));

TEST(LzTest, CompressesSourceText) {
  apps::FileSpec spec{.path = "a.c", .size = 100'000, .seed = 3};
  auto content = apps::FileContent(spec);
  auto packed = apps::LzCompress(content);
  EXPECT_LT(packed.size() * 2, content.size());  // at least 2:1 on C text
}

TEST(LzTest, RejectsCorruptStream) {
  std::vector<uint8_t> data(5000, 42);
  auto packed = apps::LzCompress(data);
  packed[10] ^= 0xff;
  bool ok = true;
  auto out = apps::LzDecompress(packed, &ok);
  // Either detected as malformed or (rarely) decodes to different bytes.
  EXPECT_TRUE(!ok || out != data);
}

}  // namespace
}  // namespace exo::os
