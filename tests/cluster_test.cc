// Cluster subsystem: conservative-horizon parallel engine, cross-shard links,
// topology wiring, and the determinism contract (same seed => bit-identical
// output at any thread count).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/topology.h"
#include "hw/machine.h"
#include "hw/nic.h"
#include "net/packet.h"
#include "sim/engine.h"

namespace exo {
namespace {

hw::Packet RoutableFrame(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                         uint16_t dst_port, size_t size = 64) {
  hw::Packet p;
  p.bytes.assign(size, 0);
  p.bytes[net::kOffProto] = net::kProtoUdp;
  for (int i = 0; i < 4; ++i) {
    p.bytes[net::kOffSrcIp + i] = static_cast<uint8_t>(src_ip >> (8 * i));
    p.bytes[net::kOffDstIp + i] = static_cast<uint8_t>(dst_ip >> (8 * i));
  }
  p.bytes[net::kOffSrcPort] = static_cast<uint8_t>(src_port);
  p.bytes[net::kOffSrcPort + 1] = static_cast<uint8_t>(src_port >> 8);
  p.bytes[net::kOffDstPort] = static_cast<uint8_t>(dst_port);
  p.bytes[net::kOffDstPort + 1] = static_cast<uint8_t>(dst_port >> 8);
  return p;
}

// A ping-pong across a cross-shard link must observe the exact timestamps the
// plain single-engine wire produces: the fabric changes who runs the events,
// never when they happen.
TEST(ClusterTest, CrossShardWireMatchesSingleEngineTimestamps) {
  constexpr int kRounds = 8;
  constexpr double kMbps = 100.0;
  constexpr double kLatencyUs = 50.0;

  // Reference: one engine, plain link.
  std::vector<sim::Cycles> want;
  {
    sim::Engine engine;
    hw::Nic a(0), b(1);
    hw::Link link(&engine, kMbps, kLatencyUs, 200);
    link.Connect(&a, &b);
    int hops = 0;
    b.SetReceiveHandler([&](hw::Packet p) {
      want.push_back(engine.now());
      if (++hops < kRounds) {
        b.Transmit(std::move(p));
      }
    });
    a.SetReceiveHandler([&](hw::Packet p) {
      want.push_back(engine.now());
      a.Transmit(std::move(p));
    });
    a.Transmit(hw::Packet{std::vector<uint8_t>(200, 1)});
    engine.RunUntilIdle();
  }
  // b records kRounds arrivals, a records the kRounds - 1 returns.
  ASSERT_EQ(want.size(), static_cast<size_t>(2 * kRounds - 1));

  std::vector<sim::Cycles> got;
  {
    cluster::Cluster cl;
    const uint32_t sa = cl.AddShard("a");
    const uint32_t sb = cl.AddShard("b");
    hw::Nic a(0), b(1);
    cl.Connect(sa, &a, sb, &b, kMbps, kLatencyUs, 200);
    int hops = 0;
    b.SetReceiveHandler([&](hw::Packet p) {
      got.push_back(cl.engine(sb).now());
      if (++hops < kRounds) {
        b.Transmit(std::move(p));
      }
    });
    a.SetReceiveHandler([&](hw::Packet p) {
      got.push_back(cl.engine(sa).now());
      a.Transmit(std::move(p));
    });
    a.Transmit(hw::Packet{std::vector<uint8_t>(200, 1)});
    cl.Run();
    EXPECT_GT(cl.rounds(), 0u);
    EXPECT_EQ(cl.cross_messages(), static_cast<uint64_t>(2 * kRounds - 1));
  }
  EXPECT_EQ(got, want);
}

// A zero-latency wire would give the conservative protocol no window at all;
// the fabric clamps it to one cycle of lookahead.
TEST(ClusterTest, ZeroLatencyCrossShardLinkClampsToOneCycle) {
  cluster::Cluster cl;
  const uint32_t sa = cl.AddShard("a");
  const uint32_t sb = cl.AddShard("b");
  hw::Nic a(0), b(1);
  cl.Connect(sa, &a, sb, &b, 1000.0, /*latency_us=*/0.0, 200);
  EXPECT_EQ(cl.lookahead(), 1u);

  int delivered = 0;
  b.SetReceiveHandler([&](hw::Packet) { ++delivered; });
  a.Transmit(hw::Packet{std::vector<uint8_t>(64, 0)});
  cl.Run();
  EXPECT_EQ(delivered, 1);
}

// Same-cycle arrivals from different source shards must insert in
// (src shard, send seq) order no matter which worker thread drained first.
TEST(ClusterTest, SameTimestampCrossShardArrivalsTieBreakBySourceShard) {
  for (uint32_t threads : {1u, 3u}) {
    cluster::Cluster cl(cluster::ClusterOptions{threads, 1});
    const uint32_t sa = cl.AddShard("a");
    const uint32_t sb = cl.AddShard("b");
    const uint32_t sd = cl.AddShard("dst");
    hw::Nic a(0), b(1), da(2), db(3);
    cl.Connect(sa, &a, sd, &da, 100.0, 25.0, 200);
    cl.Connect(sb, &b, sd, &db, 100.0, 25.0, 200);

    std::vector<uint8_t> order;
    auto record = [&order](hw::Packet p) { order.push_back(p.bytes[63]); };
    da.SetReceiveHandler(record);
    db.SetReceiveHandler(record);

    // Identical frames sent at local time 0 on identical wires: identical
    // arrival cycles. Transmit in *reverse* shard order to prove the sort, not
    // the call order, decides.
    hw::Packet from_b{std::vector<uint8_t>(64, 0)};
    from_b.bytes[63] = 2;
    b.Transmit(std::move(from_b));
    hw::Packet from_a{std::vector<uint8_t>(64, 0)};
    from_a.bytes[63] = 1;
    a.Transmit(std::move(from_a));
    cl.Run();

    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1) << "threads=" << threads;
    EXPECT_EQ(order[1], 2) << "threads=" << threads;
  }
}

TEST(ClusterTest, RunUntilAlignsEveryShardClock) {
  cluster::Cluster cl;
  const uint32_t sa = cl.AddShard("a");
  const uint32_t sb = cl.AddShard("b");
  const uint32_t sc = cl.AddShard("idle");
  hw::Nic a(0), b(1);
  cl.Connect(sa, &a, sb, &b, 1000.0, 10.0, 200);
  b.SetReceiveHandler([&](hw::Packet p) { b.Transmit(std::move(p)); });
  a.SetReceiveHandler([&](hw::Packet p) { a.Transmit(std::move(p)); });
  a.Transmit(hw::Packet{std::vector<uint8_t>(64, 0)});

  cl.RunUntil(50'000);
  EXPECT_EQ(cl.engine(sa).now(), 50'000u);
  EXPECT_EQ(cl.engine(sb).now(), 50'000u);
  EXPECT_EQ(cl.engine(sc).now(), 50'000u);

  // Resuming past the first deadline keeps the ping-pong alive.
  const uint64_t msgs = cl.cross_messages();
  cl.RunUntil(100'000);
  EXPECT_GT(cl.cross_messages(), msgs);
}

TEST(ClusterTest, SeedDerivationIsStableAndDisjoint) {
  EXPECT_EQ(cluster::DeriveSeed(1, 0), cluster::DeriveSeed(1, 0));
  EXPECT_NE(cluster::DeriveSeed(1, 0), cluster::DeriveSeed(1, 1));
  EXPECT_NE(cluster::DeriveSeed(1, 0), cluster::DeriveSeed(2, 0));
  cluster::Cluster cl(cluster::ClusterOptions{1, 42});
  EXPECT_EQ(cl.DeriveSeed(7), cluster::DeriveSeed(42, 7));
}

// Machines colocated on one shard keep plain links; only cross-shard wires
// contribute lookahead.
TEST(ClusterTest, SameShardConnectStaysPlainLink) {
  cluster::Cluster cl;
  const uint32_t s = cl.AddShard("s");
  hw::Nic a(0), b(1);
  hw::Link* link = cl.Connect(s, &a, s, &b, 1000.0, 0.0, 200);
  EXPECT_EQ(link->engine_for(&a), &cl.engine(s));
  EXPECT_EQ(cl.lookahead(), cluster::kNever);
  int delivered = 0;
  b.SetReceiveHandler([&](hw::Packet) { ++delivered; });
  a.Transmit(hw::Packet{std::vector<uint8_t>(64, 0)});
  cl.Run();
  EXPECT_EQ(delivered, 1);
}

// Satellite: machine-id prefixes. A cluster machine re-keys its counters and
// trace tracks in place; a standalone machine's names are untouched.
TEST(ClusterTest, ClusterIdentityPrefixesCountersAndTracks) {
  sim::Engine engine;
  hw::Machine m(&engine);
  EXPECT_EQ(m.cluster_id(), hw::Machine::kNoClusterId);
  auto* slot = m.counters().Handle("nic.dropped");
  m.counters().Add("nic.dropped", 3);

  m.SetClusterIdentity(7);
  EXPECT_EQ(m.cluster_id(), 7u);
  // Cached handles survive the re-key; reads through either path agree.
  *slot += 1;
  EXPECT_EQ(m.counters().Get("nic.dropped"), 4u);  // Get applies the prefix
  auto snap = m.counters().Snapshot();
  ASSERT_FALSE(snap.empty());
  for (const auto& [name, value] : snap) {
    EXPECT_EQ(name.rfind("m7.", 0), 0u) << name;
  }
  EXPECT_EQ(m.tracer().track_names()[0], "m7.main");
  const uint32_t t = m.tracer().NewTrack("disk9");
  EXPECT_EQ(m.tracer().track_names()[t], "m7.disk9");

  sim::Engine e2;
  hw::Machine standalone(&e2);
  standalone.counters().Add("nic.dropped");
  bool found_unprefixed = false;
  for (const auto& [name, value] : standalone.counters().Snapshot()) {
    EXPECT_NE(name.rfind("m", 0), 0u) << name;
    found_unprefixed |= name == "nic.dropped";
  }
  EXPECT_TRUE(found_unprefixed);
  EXPECT_EQ(standalone.tracer().track_names()[0], "main");
}

// ---- Topology ----

// Drives the balancer topology with raw routable frames: every client streams
// requests at the VIP, servers echo them back. Returns the merged
// counters+trace dump, which must be bit-identical across thread counts.
std::string RunBalancerWorkload(uint32_t threads, uint64_t* forwarded,
                                size_t* flows, uint64_t* echoed) {
  cluster::TopologyConfig tc;
  tc.servers = 2;
  tc.clients = 3;
  tc.front_end_lb = true;
  tc.threads = threads;
  tc.seed = 99;
  tc.machine.mem_frames = 64;
  tc.machine.disks.clear();
  cluster::Topology topo(tc);

  uint64_t echo_count = 0;
  for (uint32_t k = 0; k < tc.servers; ++k) {
    hw::Machine& srv = topo.server(k);
    srv.tracer().Enable();
    auto* rx = srv.counters().Handle("srv.rx");
    hw::Nic* nic = &srv.nic(0);
    nic->SetReceiveHandler([rx, nic, &echo_count](hw::Packet p) {
      ++*rx;
      ++echo_count;
      // Echo: swap src and dst ip/port so the balancer routes the reply home.
      for (int i = 0; i < 4; ++i) {
        std::swap(p.bytes[net::kOffSrcIp + i], p.bytes[net::kOffDstIp + i]);
      }
      std::swap(p.bytes[net::kOffSrcPort], p.bytes[net::kOffDstPort]);
      std::swap(p.bytes[net::kOffSrcPort + 1], p.bytes[net::kOffDstPort + 1]);
      nic->Transmit(std::move(p));
    });
  }
  for (uint32_t j = 0; j < tc.clients; ++j) {
    hw::Machine& cli = topo.client(j);
    cli.tracer().Enable();
    auto* rx = cli.counters().Handle("cli.rx");
    cli.nic(0).SetReceiveHandler([rx](hw::Packet) { ++*rx; });
    sim::Engine& eng = topo.engine_of(topo.client_id(j));
    for (int burst = 0; burst < 4; ++burst) {
      eng.ScheduleAt(1'000 + 7'000 * burst + 311 * j, [&topo, j] {
        topo.client(j).nic(0).Transmit(RoutableFrame(
            topo.client_ip(j), cluster::Topology::kVip, 2'000 + j, 80));
      });
    }
  }
  topo.balancer().tracer().Enable();
  topo.Run();

  *forwarded = topo.lb_forwarded();
  *flows = topo.lb_flows();
  *echoed = echo_count;
  return topo.MergedCountersDump() + topo.MergedTraceDump();
}

// The determinism contract, end to end: same seed, thread count 1 vs 3 vs 4,
// byte-identical merged counters and trace dumps.
TEST(ClusterTest, TopologyOutputBitIdenticalAcrossThreadCounts) {
  uint64_t fwd1 = 0, fwd3 = 0, fwd4 = 0, echo1 = 0, echo3 = 0, echo4 = 0;
  size_t flows1 = 0, flows3 = 0, flows4 = 0;
  const std::string dump1 = RunBalancerWorkload(1, &fwd1, &flows1, &echo1);
  const std::string dump3 = RunBalancerWorkload(3, &fwd3, &flows3, &echo3);
  const std::string dump4 = RunBalancerWorkload(4, &fwd4, &flows4, &echo4);

  EXPECT_EQ(echo1, 12u);  // 3 clients x 4 bursts, every frame reached a server
  EXPECT_EQ(fwd1, 24u);   // each echoed frame crossed the balancer twice
  EXPECT_EQ(flows1, 3u);  // one pinned flow per client
  EXPECT_EQ(fwd1, fwd3);
  EXPECT_EQ(fwd1, fwd4);
  EXPECT_EQ(flows1, flows3);
  EXPECT_EQ(flows1, flows4);
  EXPECT_EQ(echo1, echo3);
  EXPECT_EQ(echo1, echo4);
  EXPECT_EQ(dump1, dump3);
  EXPECT_EQ(dump1, dump4);
  // The dump is machine-prefixed and non-trivial.
  EXPECT_NE(dump1.find("m0.lb.forwarded 24"), std::string::npos);
  EXPECT_NE(dump1.find("m1.srv.rx"), std::string::npos);
}

// Flow pinning: each client's flow lands on one backend, round-robin by first
// sight; replies route back to the right client.
TEST(ClusterTest, BalancerPinsFlowsRoundRobin) {
  uint64_t fwd = 0, echoed = 0;
  size_t flows = 0;
  const std::string dump = RunBalancerWorkload(2, &fwd, &flows, &echoed);
  EXPECT_EQ(flows, 3u);
  // Clients fire in j order within each burst (311 * j stagger): backends get
  // flows 0,1,0 -> server m1 sees 2 flows x 4 frames, m2 sees 1 x 4.
  EXPECT_NE(dump.find("m1.srv.rx 8"), std::string::npos) << dump;
  EXPECT_NE(dump.find("m2.srv.rx 4"), std::string::npos) << dump;
  // Every client got all 4 echoes back.
  EXPECT_NE(dump.find("m3.cli.rx 4"), std::string::npos) << dump;
  EXPECT_NE(dump.find("m4.cli.rx 4"), std::string::npos) << dump;
  EXPECT_NE(dump.find("m5.cli.rx 4"), std::string::npos) << dump;
}

// Direct mode wires client j to server j % servers with no middle hop.
TEST(ClusterTest, DirectTopologyWiresClientsToServers) {
  cluster::TopologyConfig tc;
  tc.servers = 2;
  tc.clients = 4;
  tc.front_end_lb = false;
  tc.machine.mem_frames = 64;
  tc.machine.disks.clear();
  cluster::Topology topo(tc);

  ASSERT_EQ(topo.num_machines(), 6u);
  EXPECT_EQ(topo.server(0).num_nics(), 2u);  // clients 0 and 2
  EXPECT_EQ(topo.server(1).num_nics(), 2u);  // clients 1 and 3
  EXPECT_EQ(topo.server_for_client(3), 1u);
  EXPECT_EQ(topo.server_nic_for_client(3), 1u);

  int rx = 0;
  topo.server(1).nic(1).SetReceiveHandler([&](hw::Packet) { ++rx; });
  topo.client(3).nic(0).Transmit(RoutableFrame(topo.client_ip(3),
                                               cluster::Topology::kVip, 99, 80));
  topo.Run();
  EXPECT_EQ(rx, 1);
}

}  // namespace
}  // namespace exo
