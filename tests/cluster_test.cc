// Cluster subsystem: conservative-horizon parallel engine, cross-shard links,
// topology wiring, and the determinism contract (same seed => bit-identical
// output at any thread count).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/topology.h"
#include "hw/disk.h"
#include "hw/machine.h"
#include "hw/nic.h"
#include "net/packet.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "trace/trace.h"
#include "udf/assembler.h"
#include "xn/types.h"
#include "xn/xn.h"

namespace exo {
namespace {

hw::Packet RoutableFrame(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                         uint16_t dst_port, size_t size = 64) {
  hw::Packet p;
  p.bytes.assign(size, 0);
  p.bytes[net::kOffProto] = net::kProtoUdp;
  for (int i = 0; i < 4; ++i) {
    p.bytes[net::kOffSrcIp + i] = static_cast<uint8_t>(src_ip >> (8 * i));
    p.bytes[net::kOffDstIp + i] = static_cast<uint8_t>(dst_ip >> (8 * i));
  }
  p.bytes[net::kOffSrcPort] = static_cast<uint8_t>(src_port);
  p.bytes[net::kOffSrcPort + 1] = static_cast<uint8_t>(src_port >> 8);
  p.bytes[net::kOffDstPort] = static_cast<uint8_t>(dst_port);
  p.bytes[net::kOffDstPort + 1] = static_cast<uint8_t>(dst_port >> 8);
  return p;
}

// A minimal TCP frame as net::EncodeTcp lays one out: generic routing header,
// real source port at the TCP header base, flags byte at header offset 12.
hw::Packet TcpFrame(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                    uint8_t flags) {
  hw::Packet p = RoutableFrame(src_ip, dst_ip, src_port, 80,
                               net::kIpHeaderBytes + net::kTcpHeaderBytes);
  p.bytes[net::kOffProto] = net::kProtoTcp;
  p.bytes[net::kIpHeaderBytes] = static_cast<uint8_t>(src_port);
  p.bytes[net::kIpHeaderBytes + 1] = static_cast<uint8_t>(src_port >> 8);
  p.bytes[net::kIpHeaderBytes + 2] = 80;
  p.bytes[net::kIpHeaderBytes + 12] = flags;
  return p;
}

// A ping-pong across a cross-shard link must observe the exact timestamps the
// plain single-engine wire produces: the fabric changes who runs the events,
// never when they happen.
TEST(ClusterTest, CrossShardWireMatchesSingleEngineTimestamps) {
  constexpr int kRounds = 8;
  constexpr double kMbps = 100.0;
  constexpr double kLatencyUs = 50.0;

  // Reference: one engine, plain link.
  std::vector<sim::Cycles> want;
  {
    sim::Engine engine;
    hw::Nic a(0), b(1);
    hw::Link link(&engine, kMbps, kLatencyUs, 200);
    link.Connect(&a, &b);
    int hops = 0;
    b.SetReceiveHandler([&](hw::Packet p) {
      want.push_back(engine.now());
      if (++hops < kRounds) {
        b.Transmit(std::move(p));
      }
    });
    a.SetReceiveHandler([&](hw::Packet p) {
      want.push_back(engine.now());
      a.Transmit(std::move(p));
    });
    a.Transmit(hw::Packet{std::vector<uint8_t>(200, 1)});
    engine.RunUntilIdle();
  }
  // b records kRounds arrivals, a records the kRounds - 1 returns.
  ASSERT_EQ(want.size(), static_cast<size_t>(2 * kRounds - 1));

  std::vector<sim::Cycles> got;
  {
    cluster::Cluster cl;
    const uint32_t sa = cl.AddShard("a");
    const uint32_t sb = cl.AddShard("b");
    hw::Nic a(0), b(1);
    cl.Connect(sa, &a, sb, &b, kMbps, kLatencyUs, 200);
    int hops = 0;
    b.SetReceiveHandler([&](hw::Packet p) {
      got.push_back(cl.engine(sb).now());
      if (++hops < kRounds) {
        b.Transmit(std::move(p));
      }
    });
    a.SetReceiveHandler([&](hw::Packet p) {
      got.push_back(cl.engine(sa).now());
      a.Transmit(std::move(p));
    });
    a.Transmit(hw::Packet{std::vector<uint8_t>(200, 1)});
    cl.Run();
    EXPECT_GT(cl.rounds(), 0u);
    EXPECT_EQ(cl.cross_messages(), static_cast<uint64_t>(2 * kRounds - 1));
  }
  EXPECT_EQ(got, want);
}

// A zero-latency wire would give the conservative protocol no window at all;
// the fabric clamps it to one cycle of lookahead.
TEST(ClusterTest, ZeroLatencyCrossShardLinkClampsToOneCycle) {
  cluster::Cluster cl;
  const uint32_t sa = cl.AddShard("a");
  const uint32_t sb = cl.AddShard("b");
  hw::Nic a(0), b(1);
  cl.Connect(sa, &a, sb, &b, 1000.0, /*latency_us=*/0.0, 200);
  EXPECT_EQ(cl.lookahead(), 1u);

  int delivered = 0;
  b.SetReceiveHandler([&](hw::Packet) { ++delivered; });
  a.Transmit(hw::Packet{std::vector<uint8_t>(64, 0)});
  cl.Run();
  EXPECT_EQ(delivered, 1);
}

// Same-cycle arrivals from different source shards must insert in
// (src shard, send seq) order no matter which worker thread drained first.
TEST(ClusterTest, SameTimestampCrossShardArrivalsTieBreakBySourceShard) {
  for (uint32_t threads : {1u, 3u}) {
    cluster::Cluster cl(cluster::ClusterOptions{threads, 1});
    const uint32_t sa = cl.AddShard("a");
    const uint32_t sb = cl.AddShard("b");
    const uint32_t sd = cl.AddShard("dst");
    hw::Nic a(0), b(1), da(2), db(3);
    cl.Connect(sa, &a, sd, &da, 100.0, 25.0, 200);
    cl.Connect(sb, &b, sd, &db, 100.0, 25.0, 200);

    std::vector<uint8_t> order;
    auto record = [&order](hw::Packet p) { order.push_back(p.bytes[63]); };
    da.SetReceiveHandler(record);
    db.SetReceiveHandler(record);

    // Identical frames sent at local time 0 on identical wires: identical
    // arrival cycles. Transmit in *reverse* shard order to prove the sort, not
    // the call order, decides.
    hw::Packet from_b{std::vector<uint8_t>(64, 0)};
    from_b.bytes[63] = 2;
    b.Transmit(std::move(from_b));
    hw::Packet from_a{std::vector<uint8_t>(64, 0)};
    from_a.bytes[63] = 1;
    a.Transmit(std::move(from_a));
    cl.Run();

    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1) << "threads=" << threads;
    EXPECT_EQ(order[1], 2) << "threads=" << threads;
  }
}

TEST(ClusterTest, RunUntilAlignsEveryShardClock) {
  cluster::Cluster cl;
  const uint32_t sa = cl.AddShard("a");
  const uint32_t sb = cl.AddShard("b");
  const uint32_t sc = cl.AddShard("idle");
  hw::Nic a(0), b(1);
  cl.Connect(sa, &a, sb, &b, 1000.0, 10.0, 200);
  b.SetReceiveHandler([&](hw::Packet p) { b.Transmit(std::move(p)); });
  a.SetReceiveHandler([&](hw::Packet p) { a.Transmit(std::move(p)); });
  a.Transmit(hw::Packet{std::vector<uint8_t>(64, 0)});

  cl.RunUntil(50'000);
  EXPECT_EQ(cl.engine(sa).now(), 50'000u);
  EXPECT_EQ(cl.engine(sb).now(), 50'000u);
  EXPECT_EQ(cl.engine(sc).now(), 50'000u);

  // Resuming past the first deadline keeps the ping-pong alive.
  const uint64_t msgs = cl.cross_messages();
  cl.RunUntil(100'000);
  EXPECT_GT(cl.cross_messages(), msgs);
}

TEST(ClusterTest, SeedDerivationIsStableAndDisjoint) {
  EXPECT_EQ(cluster::DeriveSeed(1, 0), cluster::DeriveSeed(1, 0));
  EXPECT_NE(cluster::DeriveSeed(1, 0), cluster::DeriveSeed(1, 1));
  EXPECT_NE(cluster::DeriveSeed(1, 0), cluster::DeriveSeed(2, 0));
  cluster::Cluster cl(cluster::ClusterOptions{1, 42});
  EXPECT_EQ(cl.DeriveSeed(7), cluster::DeriveSeed(42, 7));
}

// Machines colocated on one shard keep plain links; only cross-shard wires
// contribute lookahead.
TEST(ClusterTest, SameShardConnectStaysPlainLink) {
  cluster::Cluster cl;
  const uint32_t s = cl.AddShard("s");
  hw::Nic a(0), b(1);
  hw::Link* link = cl.Connect(s, &a, s, &b, 1000.0, 0.0, 200);
  EXPECT_EQ(link->engine_for(&a), &cl.engine(s));
  EXPECT_EQ(cl.lookahead(), cluster::kNever);
  int delivered = 0;
  b.SetReceiveHandler([&](hw::Packet) { ++delivered; });
  a.Transmit(hw::Packet{std::vector<uint8_t>(64, 0)});
  cl.Run();
  EXPECT_EQ(delivered, 1);
}

// Satellite: machine-id prefixes. A cluster machine re-keys its counters and
// trace tracks in place; a standalone machine's names are untouched.
TEST(ClusterTest, ClusterIdentityPrefixesCountersAndTracks) {
  sim::Engine engine;
  hw::Machine m(&engine);
  EXPECT_EQ(m.cluster_id(), hw::Machine::kNoClusterId);
  auto* slot = m.counters().Handle("nic.dropped");
  m.counters().Add("nic.dropped", 3);

  m.SetClusterIdentity(7);
  EXPECT_EQ(m.cluster_id(), 7u);
  // Cached handles survive the re-key; reads through either path agree.
  *slot += 1;
  EXPECT_EQ(m.counters().Get("nic.dropped"), 4u);  // Get applies the prefix
  auto snap = m.counters().Snapshot();
  ASSERT_FALSE(snap.empty());
  for (const auto& [name, value] : snap) {
    EXPECT_EQ(name.rfind("m7.", 0), 0u) << name;
  }
  EXPECT_EQ(m.tracer().track_names()[0], "m7.main");
  const uint32_t t = m.tracer().NewTrack("disk9");
  EXPECT_EQ(m.tracer().track_names()[t], "m7.disk9");

  sim::Engine e2;
  hw::Machine standalone(&e2);
  standalone.counters().Add("nic.dropped");
  bool found_unprefixed = false;
  for (const auto& [name, value] : standalone.counters().Snapshot()) {
    EXPECT_NE(name.rfind("m", 0), 0u) << name;
    found_unprefixed |= name == "nic.dropped";
  }
  EXPECT_TRUE(found_unprefixed);
  EXPECT_EQ(standalone.tracer().track_names()[0], "main");
}

// ---- Topology ----

// Drives the balancer topology with raw routable frames: every client streams
// requests at the VIP, servers echo them back. Returns the merged
// counters+trace dump, which must be bit-identical across thread counts.
std::string RunBalancerWorkload(uint32_t threads, uint64_t* forwarded,
                                size_t* flows, uint64_t* echoed) {
  cluster::TopologyConfig tc;
  tc.servers = 2;
  tc.clients = 3;
  tc.front_end_lb = true;
  tc.threads = threads;
  tc.seed = 99;
  tc.machine.mem_frames = 64;
  tc.machine.disks.clear();
  cluster::Topology topo(tc);

  uint64_t echo_count = 0;
  for (uint32_t k = 0; k < tc.servers; ++k) {
    hw::Machine& srv = topo.server(k);
    srv.tracer().Enable();
    auto* rx = srv.counters().Handle("srv.rx");
    hw::Nic* nic = &srv.nic(0);
    nic->SetReceiveHandler([rx, nic, &echo_count](hw::Packet p) {
      ++*rx;
      ++echo_count;
      // Echo: swap src and dst ip/port so the balancer routes the reply home.
      for (int i = 0; i < 4; ++i) {
        std::swap(p.bytes[net::kOffSrcIp + i], p.bytes[net::kOffDstIp + i]);
      }
      std::swap(p.bytes[net::kOffSrcPort], p.bytes[net::kOffDstPort]);
      std::swap(p.bytes[net::kOffSrcPort + 1], p.bytes[net::kOffDstPort + 1]);
      nic->Transmit(std::move(p));
    });
  }
  for (uint32_t j = 0; j < tc.clients; ++j) {
    hw::Machine& cli = topo.client(j);
    cli.tracer().Enable();
    auto* rx = cli.counters().Handle("cli.rx");
    cli.nic(0).SetReceiveHandler([rx](hw::Packet) { ++*rx; });
    sim::Engine& eng = topo.engine_of(topo.client_id(j));
    for (int burst = 0; burst < 4; ++burst) {
      eng.ScheduleAt(1'000 + 7'000 * burst + 311 * j, [&topo, j] {
        topo.client(j).nic(0).Transmit(RoutableFrame(
            topo.client_ip(j), cluster::Topology::kVip, 2'000 + j, 80));
      });
    }
  }
  topo.balancer().tracer().Enable();
  topo.Run();

  *forwarded = topo.lb_forwarded();
  *flows = topo.lb_flows();
  *echoed = echo_count;
  return topo.MergedCountersDump() + topo.MergedTraceDump();
}

// The determinism contract, end to end: same seed, thread count 1 vs 3 vs 4,
// byte-identical merged counters and trace dumps.
TEST(ClusterTest, TopologyOutputBitIdenticalAcrossThreadCounts) {
  uint64_t fwd1 = 0, fwd3 = 0, fwd4 = 0, echo1 = 0, echo3 = 0, echo4 = 0;
  size_t flows1 = 0, flows3 = 0, flows4 = 0;
  const std::string dump1 = RunBalancerWorkload(1, &fwd1, &flows1, &echo1);
  const std::string dump3 = RunBalancerWorkload(3, &fwd3, &flows3, &echo3);
  const std::string dump4 = RunBalancerWorkload(4, &fwd4, &flows4, &echo4);

  EXPECT_EQ(echo1, 12u);  // 3 clients x 4 bursts, every frame reached a server
  EXPECT_EQ(fwd1, 24u);   // each echoed frame crossed the balancer twice
  EXPECT_EQ(flows1, 3u);  // one pinned flow per client
  EXPECT_EQ(fwd1, fwd3);
  EXPECT_EQ(fwd1, fwd4);
  EXPECT_EQ(flows1, flows3);
  EXPECT_EQ(flows1, flows4);
  EXPECT_EQ(echo1, echo3);
  EXPECT_EQ(echo1, echo4);
  EXPECT_EQ(dump1, dump3);
  EXPECT_EQ(dump1, dump4);
  // The dump is machine-prefixed and non-trivial.
  EXPECT_NE(dump1.find("m0.lb.forwarded 24"), std::string::npos);
  EXPECT_NE(dump1.find("m1.srv.rx"), std::string::npos);
}

// Flow pinning: each client's flow lands on one backend, round-robin by first
// sight; replies route back to the right client.
TEST(ClusterTest, BalancerPinsFlowsRoundRobin) {
  uint64_t fwd = 0, echoed = 0;
  size_t flows = 0;
  const std::string dump = RunBalancerWorkload(2, &fwd, &flows, &echoed);
  EXPECT_EQ(flows, 3u);
  // Clients fire in j order within each burst (311 * j stagger): backends get
  // flows 0,1,0 -> server m1 sees 2 flows x 4 frames, m2 sees 1 x 4.
  EXPECT_NE(dump.find("m1.srv.rx 8"), std::string::npos) << dump;
  EXPECT_NE(dump.find("m2.srv.rx 4"), std::string::npos) << dump;
  // Every client got all 4 echoes back.
  EXPECT_NE(dump.find("m3.cli.rx 4"), std::string::npos) << dump;
  EXPECT_NE(dump.find("m4.cli.rx 4"), std::string::npos) << dump;
  EXPECT_NE(dump.find("m5.cli.rx 4"), std::string::npos) << dump;
}

// Direct mode wires client j to server j % servers with no middle hop.
TEST(ClusterTest, DirectTopologyWiresClientsToServers) {
  cluster::TopologyConfig tc;
  tc.servers = 2;
  tc.clients = 4;
  tc.front_end_lb = false;
  tc.machine.mem_frames = 64;
  tc.machine.disks.clear();
  cluster::Topology topo(tc);

  ASSERT_EQ(topo.num_machines(), 6u);
  EXPECT_EQ(topo.server(0).num_nics(), 2u);  // clients 0 and 2
  EXPECT_EQ(topo.server(1).num_nics(), 2u);  // clients 1 and 3
  EXPECT_EQ(topo.server_for_client(3), 1u);
  EXPECT_EQ(topo.server_nic_for_client(3), 1u);

  int rx = 0;
  topo.server(1).nic(1).SetReceiveHandler([&](hw::Packet) { ++rx; });
  topo.client(3).nic(0).Transmit(RoutableFrame(topo.client_ip(3),
                                               cluster::Topology::kVip, 99, 80));
  topo.Run();
  EXPECT_EQ(rx, 1);
}

// ---- Cross-shard wire faults (satellite: ShardLink fault/trace parity) ----

// A scripted injector armed on one direction of a cross-shard link hits the
// exact frames it names — drop, corrupt, duplicate — with `wire`/`wire_dup`
// spans and `arrive` instants on the sender's tracer, while the reverse
// direction stays untouched.
TEST(ClusterTest, CrossShardLinkInjectsScriptedWireFaults) {
  cluster::Cluster cl;
  const uint32_t sa = cl.AddShard("a");
  const uint32_t sb = cl.AddShard("b");
  hw::Nic a(0), b(1);
  auto* link = static_cast<cluster::ShardLink*>(
      cl.Connect(sa, &a, sb, &b, 100.0, 25.0, 200));

  sim::FaultPlan plan;
  plan.wire_script = sim::ParseWireSchedule("d@1 c@2:3 u@3");
  ASSERT_EQ(plan.wire_script.size(), 3u);
  sim::FaultInjector faults(plan);
  trace::Tracer tracer;
  tracer.Enable();
  link->AttachTracerFor(&a, &tracer, "ab");
  link->SetFaultInjectorFor(&a, &faults);

  std::vector<uint8_t> markers;   // frame id (byte 63) per arrival at b
  std::vector<uint8_t> byte3s;    // the corruption target byte per arrival
  int a_rx = 0;
  b.SetReceiveHandler([&](hw::Packet p) {
    markers.push_back(p.bytes[63]);
    byte3s.push_back(p.bytes[3]);
    if (markers.size() == 4) {
      b.Transmit(hw::Packet{std::vector<uint8_t>(64, 9)});  // reverse direction
    }
  });
  a.SetReceiveHandler([&](hw::Packet) { ++a_rx; });
  for (uint8_t i = 1; i <= 4; ++i) {
    hw::Packet p{std::vector<uint8_t>(64, 0)};
    p.bytes[63] = i;
    a.Transmit(std::move(p));
  }
  cl.Run();

  // Frame 1 dropped; frame 2 corrupted at byte 3; frame 3 doubled; frame 4
  // clean. The duplicate trails its original by one serialization slot.
  ASSERT_EQ(markers, (std::vector<uint8_t>{2, 3, 3, 4}));
  EXPECT_EQ(byte3s, (std::vector<uint8_t>{0xff, 0, 0, 0}));
  EXPECT_EQ(a_rx, 1);
  EXPECT_EQ(faults.stats().frames_seen, 4u);  // reverse direction unarmed
  EXPECT_EQ(faults.stats().net_drops, 1u);
  EXPECT_EQ(faults.stats().net_corruptions, 1u);
  EXPECT_EQ(faults.stats().net_duplicates, 1u);
  // The executed schedule replays verbatim.
  EXPECT_EQ(sim::FormatWireSchedule(faults.wire_events()), "d@1 c@2:3 u@3");

  int wire_begins = 0, dup_begins = 0, arrives = 0;
  for (const trace::Record& r : tracer.Records()) {
    if (r.kind == trace::Kind::kBegin && std::strcmp(r.name, "wire") == 0) {
      ++wire_begins;
    } else if (r.kind == trace::Kind::kBegin &&
               std::strcmp(r.name, "wire_dup") == 0) {
      ++dup_begins;
    } else if (r.kind == trace::Kind::kInstant &&
               std::strcmp(r.name, "arrive") == 0) {
      ++arrives;
    }
  }
  EXPECT_EQ(wire_begins, 4);  // every frame serializes, even the dropped one
  EXPECT_EQ(dup_begins, 1);
  EXPECT_EQ(arrives, 3);      // the dropped frame never arrives
}

// ---- Balancer pin lifecycle (satellite: no stale pins) ----

// Client closes tear their pins down: RST immediately, FIN after a linger that
// lets the close handshake drain — and traffic on a reused source port inside
// the linger revives the pin instead of racing the eviction.
TEST(ClusterTest, BalancerEvictsPinsOnConnectionClose) {
  cluster::TopologyConfig tc;
  tc.servers = 2;
  tc.clients = 2;
  tc.front_end_lb = true;
  tc.seed = 7;
  tc.machine.mem_frames = 64;
  tc.machine.disks.clear();
  cluster::Topology topo(tc);

  auto send = [&](uint32_t j, sim::Cycles at, uint8_t flags) {
    topo.engine_of(topo.client_id(j)).ScheduleAt(at, [&topo, j, flags] {
      topo.client(j).nic(0).Transmit(
          TcpFrame(topo.client_ip(j), cluster::Topology::kVip, 7'777, flags));
    });
  };
  // Client 0: data, FIN, then a reused-port SYN inside the linger (revives the
  // pin), and finally an RST long after.
  send(0, 1'000, net::kFlagPsh);
  send(0, 50'000, net::kFlagFin);
  send(0, 80'000, net::kFlagSyn);
  send(0, 400'000, net::kFlagRst);
  // Client 1: data, then FIN — the linger eviction fires unopposed.
  send(1, 2'000, net::kFlagPsh);
  send(1, 60'000, net::kFlagFin);

  // Inside the linger window (500 us = 100k cycles at 200 MHz) both pins live.
  topo.RunUntil(120'000);
  EXPECT_EQ(topo.lb_flows(), 2u);
  EXPECT_EQ(topo.lb_pins_evicted(), 0u);

  // Past both linger deadlines: client 1's pin evicted, client 0's revived.
  topo.RunUntil(300'000);
  EXPECT_EQ(topo.lb_flows(), 1u);
  EXPECT_EQ(topo.lb_pins_evicted(), 1u);

  topo.Run();
  EXPECT_EQ(topo.lb_flows(), 0u);  // the RST tore the survivor down
  EXPECT_EQ(topo.lb_pins_evicted(), 2u);
  EXPECT_EQ(topo.lb_forwarded(), 6u);  // every frame still reached a backend
  EXPECT_EQ(topo.lb_failover_reroutes(), 0u);
}

// ---- Machine kill/reboot + health-check failover (tentpole) ----

// Kills one of two backends mid-workload with health checks armed, reboots it
// later, and requires the whole story — ejection, pin eviction, failover
// re-pinning, readmission — to be byte-identical at 1, 3, and 4 threads.
std::string RunFailoverWorkload(uint32_t threads, uint64_t* echoed) {
  cluster::TopologyConfig tc;
  tc.servers = 2;
  tc.clients = 3;
  tc.front_end_lb = true;
  tc.threads = threads;
  tc.seed = 99;
  tc.machine.mem_frames = 64;
  tc.machine.disks.clear();
  tc.health.enabled = true;
  tc.health.interval_us = 500.0;  // 100k cycles at 200 MHz
  tc.health.timeout_us = 200.0;
  tc.health.fall = 2;
  tc.health.rise = 2;
  cluster::Topology topo(tc);

  // One echo counter per server: each is touched only by its own shard thread.
  uint64_t echo_counts[2] = {0, 0};
  for (uint32_t k = 0; k < tc.servers; ++k) {
    hw::Machine& srv = topo.server(k);
    srv.tracer().Enable();
    auto* rx = srv.counters().Handle("srv.rx");
    hw::Nic* nic = &srv.nic(0);
    uint64_t* echoes = &echo_counts[k];
    nic->SetReceiveHandler([rx, nic, echoes](hw::Packet p) {
      ++*rx;
      ++*echoes;
      for (int i = 0; i < 4; ++i) {
        std::swap(p.bytes[net::kOffSrcIp + i], p.bytes[net::kOffDstIp + i]);
      }
      std::swap(p.bytes[net::kOffSrcPort], p.bytes[net::kOffDstPort]);
      std::swap(p.bytes[net::kOffSrcPort + 1], p.bytes[net::kOffDstPort + 1]);
      nic->Transmit(std::move(p));
    });
  }
  for (uint32_t j = 0; j < tc.clients; ++j) {
    hw::Machine& cli = topo.client(j);
    cli.tracer().Enable();
    auto* rx = cli.counters().Handle("cli.rx");
    cli.nic(0).SetReceiveHandler([rx](hw::Packet) { ++*rx; });
    sim::Engine& eng = topo.engine_of(topo.client_id(j));
    for (int burst = 0; burst < 16; ++burst) {
      eng.ScheduleAt(1'000 + 150'000 * burst + 311 * j, [&topo, j] {
        topo.client(j).nic(0).Transmit(RoutableFrame(
            topo.client_ip(j), cluster::Topology::kVip, 2'000 + j, 80));
      });
    }
  }
  topo.balancer().tracer().Enable();
  topo.ArmHealthChecks(2'500'000);

  // Server 0 is machine 1: killed a third of the way in, rebooted at 1.5M.
  std::string err;
  const auto schedule = sim::ParseMachineSchedule("k@600000:1 b@1500000:1", &err);
  EXO_CHECK(err.empty());
  topo.ApplyMachineSchedule(schedule);
  topo.Run();

  EXPECT_EQ(topo.lb_ejected(), 1u) << "threads=" << threads;
  EXPECT_EQ(topo.lb_readmitted(), 1u) << "threads=" << threads;
  // Clients 0 and 2 were pinned to the dead backend; their flows were cut
  // loose on ejection and re-pinned to the survivor.
  EXPECT_EQ(topo.lb_pins_evicted(), 2u) << "threads=" << threads;
  EXPECT_EQ(topo.lb_failover_reroutes(), 2u) << "threads=" << threads;
  EXPECT_FALSE(topo.backend_ejected(0));
  EXPECT_GT(topo.backend_last_eject(0), 600'000u);
  EXPECT_LT(topo.backend_last_eject(0), 1'500'000u);
  EXPECT_GT(topo.backend_last_readmit(0), 1'500'000u);

  *echoed = echo_counts[0] + echo_counts[1];
  return topo.MergedCountersDump() + topo.MergedTraceDump();
}

TEST(ClusterTest, FailoverWithKillAndRebootIsBitIdenticalAcrossThreads) {
  uint64_t echo1 = 0, echo3 = 0, echo4 = 0;
  const std::string dump1 = RunFailoverWorkload(1, &echo1);
  const std::string dump3 = RunFailoverWorkload(3, &echo3);
  const std::string dump4 = RunFailoverWorkload(4, &echo4);

  // Some frames blackholed between the kill and the ejection; everything after
  // the failover re-pin was served.
  EXPECT_GE(echo1, 40u);
  EXPECT_LE(echo1, 46u);
  EXPECT_EQ(echo1, echo3);
  EXPECT_EQ(echo1, echo4);
  EXPECT_EQ(dump1, dump3);
  EXPECT_EQ(dump1, dump4);
  // The machine faults and the failover counters are on the merged surface.
  EXPECT_NE(dump1.find("m1.fault.machine_kills 1"), std::string::npos);
  EXPECT_NE(dump1.find("m1.fault.machine_reboots 1"), std::string::npos);
  EXPECT_NE(dump1.find("m0.lb.ejected 1"), std::string::npos);
  EXPECT_NE(dump1.find("m0.lb.readmitted 1"), std::string::npos);
  EXPECT_NE(dump1.find("lb_eject"), std::string::npos);
  EXPECT_NE(dump1.find("lb_readmit"), std::string::npos);
  EXPECT_NE(dump1.find("machine_kill"), std::string::npos);
}

// ---- Reboot recovery fsck (satellite: integrity across kill/reboot) ----

// The miniature tnode format from xn_test: a u32 child count then u32 child
// pointers, typed by an owns-udf.
udf::Program DataTnodeOwns() {
  char src[512];
  std::snprintf(src, sizeof(src), R"(
      ldi r1, 0
      ld4 r2, r1, 0, meta
      ldi r3, 4
      ldi r4, 1
      ldi r5, %u
      bz r2, done
    loop:
      ld4 r6, r3, 0, meta
      emit r6, r4, r5
      addi r3, r3, 4
      addi r2, r2, -1
      bnz r2, loop
    done:
      ret r0
  )", xn::kDataTemplate);
  auto r = udf::Assemble(src);
  EXO_CHECK(r.ok);
  return r.program;
}

// A rebooted server machine re-runs the XN recovery fsck against the surviving
// disk image: a block silently rotted by a pre-kill disk fault schedule is
// quarantined (reads refuse it), while clean blocks serve their exact bytes.
TEST(ClusterTest, RebootedServerFsckQuarantinesPreKillDiskCorruption) {
  cluster::TopologyConfig tc;
  tc.servers = 1;
  tc.clients = 1;
  tc.front_end_lb = false;
  tc.machines_per_shard = 2;  // one shard: drive phases with RunUntilIdle
  tc.machine.mem_frames = 512;
  tc.machine.disks = {hw::DiskGeometry{.num_blocks = 2048}};
  cluster::Topology topo(tc);

  hw::Machine& srv = topo.server(0);
  sim::Engine& eng = topo.engine_of(topo.server_id(0));
  srv.disk().EnableIntegrity();

  auto xn = std::make_unique<xn::Xn>(&srv, &srv.disk());
  xn->Format();
  ASSERT_EQ(xn->Attach(), Status::kOk);
  xn::Template leaf;
  leaf.name = "tnode-leaf";
  leaf.is_metadata = true;
  leaf.owns_udf = DataTnodeOwns();
  auto size_uf = udf::Assemble("ldi r1, 4096\nret r1\n");
  ASSERT_TRUE(size_uf.ok);
  leaf.size_uf = size_uf.program;
  auto tmpl = xn->InstallTemplate(leaf);
  ASSERT_TRUE(tmpl.ok());

  const xn::Caps creds;  // empty acl-uf: no extra access control
  auto root_info = xn->RegisterRoot("fs", *tmpl, /*temporary=*/false);
  ASSERT_TRUE(root_info.ok());
  const hw::BlockId root = root_info->block;
  auto root_frame = srv.mem().Alloc();
  ASSERT_TRUE(root_frame.ok());
  Status loaded = Status::kNotFound;
  ASSERT_EQ(xn->LoadRoot("fs", *root_frame, creds, [&](Status s) { loaded = s; }),
            Status::kOk);
  eng.RunUntilIdle();
  ASSERT_EQ(loaded, Status::kOk);

  // Two data children under the root, distinct fills, flushed to the platter.
  std::vector<hw::BlockId> kids;
  {
    xn::ByteMod count;
    count.offset = 0;
    count.bytes = {2, 0, 0, 0};
    xn::Mods mods = {count};
    std::vector<udf::Extent> extents;
    hw::BlockId hint = xn->FirstDataBlock();
    for (uint32_t i = 0; i < 2; ++i) {
      auto blk = xn->FindFreeRun(hint, 1);
      ASSERT_TRUE(blk.ok());
      hint = *blk + 1;
      xn::ByteMod ptr;
      ptr.offset = 4 + i * 4;
      ptr.bytes = {static_cast<uint8_t>(*blk), static_cast<uint8_t>(*blk >> 8),
                   static_cast<uint8_t>(*blk >> 16), static_cast<uint8_t>(*blk >> 24)};
      mods.push_back(ptr);
      extents.push_back({*blk, 1, xn::kDataTemplate});
      kids.push_back(*blk);
    }
    ASSERT_EQ(xn->Alloc(root, mods, extents, creds), Status::kOk);
  }
  for (size_t i = 0; i < kids.size(); ++i) {
    auto f = srv.mem().Alloc();
    ASSERT_TRUE(f.ok());
    std::memset(srv.mem().Data(*f).data(), i == 0 ? 0x5a : 0x42, 4096);
    ASSERT_EQ(xn->InsertMapping(kids[i], root, *f, /*dirty=*/true, creds),
              Status::kOk);
  }
  Status flushed = Status::kNotFound;
  ASSERT_EQ(xn->Write(std::vector<hw::BlockId>{kids[0], kids[1], root},
                      [&](Status s) { flushed = s; }),
            Status::kOk);
  eng.RunUntilIdle();
  ASSERT_EQ(flushed, Status::kOk);

  // Pre-kill disk fault schedule: the next block read silently rots a media
  // byte of the block it touches. A raw controller read of kids[0] (below
  // XN's checking) plants the corruption without anything noticing.
  sim::FaultPlan dplan;
  dplan.disk_script = sim::ParseDiskSchedule("r@1:9");
  ASSERT_EQ(dplan.disk_script.size(), 1u);
  sim::FaultInjector disk_faults(dplan);
  srv.disk().SetFaultInjector(&disk_faults);
  auto scratch = srv.mem().Alloc();
  ASSERT_TRUE(scratch.ok());
  srv.disk().Submit(hw::DiskRequest{false, kids[0], 1, {*scratch}, nullptr});
  eng.RunUntilIdle();
  srv.disk().SetFaultInjector(nullptr);
  ASSERT_EQ(disk_faults.stats().disk_rot, 1u);
  ASSERT_EQ(srv.disk().CheckBlock(kids[0]), hw::BlockIntegrity::kBadChecksum);

  // Kill tears the software stack down with the hardware; reboot attaches a
  // fresh XN, whose recovery fsck must find the rot before trusting traversal,
  // then serves the clean sibling and refuses the quarantined block.
  std::unique_ptr<xn::Xn> reborn;
  Status reattach = Status::kNotFound;
  Status good_read = Status::kNotFound;
  Status bad_read = Status::kOk;
  hw::FrameId good_frame = hw::kInvalidFrame;
  topo.SetMachineLifecycleHooks(
      [&](uint32_t) { xn->Crash(); },
      [&](uint32_t) {
        reborn = std::make_unique<xn::Xn>(&srv, &srv.disk());
        reattach = reborn->Attach();
        if (reattach != Status::kOk) {
          return;
        }
        auto rf = srv.mem().Alloc();
        EXO_CHECK(rf.ok());
        EXO_CHECK_EQ(reborn->LoadRoot("fs", *rf, creds,
                                      [&](Status s) {
          if (s != Status::kOk) {
            return;
          }
          auto gf = srv.mem().Alloc();
          EXO_CHECK(gf.ok());
          good_frame = *gf;
          std::vector<hw::BlockId> want = {kids[1]};
          std::vector<hw::FrameId> frames = {good_frame};
          EXO_CHECK_EQ(reborn->ReadAndInsert(root, want, frames, creds,
                                             [&](Status rs) { good_read = rs; }),
                       Status::kOk);
          auto bf = srv.mem().Alloc();
          EXO_CHECK(bf.ok());
          std::vector<hw::BlockId> doomed = {kids[0]};
          std::vector<hw::FrameId> bframes = {*bf};
          bad_read = reborn->ReadAndInsert(root, doomed, bframes, creds,
                                           [](Status) {});
        }),
                     Status::kOk);
      });
  const sim::Cycles t_kill = eng.now() + 50'000;
  topo.ApplyMachineSchedule({{t_kill, 'k', topo.server_id(0)},
                             {t_kill + 100'000, 'b', topo.server_id(0)}});
  eng.RunUntilIdle();

  ASSERT_NE(reborn, nullptr);
  ASSERT_EQ(reattach, Status::kOk);
  EXPECT_TRUE(reborn->recovered_after_crash());
  EXPECT_TRUE(reborn->IsQuarantined(kids[0]));
  EXPECT_FALSE(reborn->IsQuarantined(kids[1]));
  EXPECT_EQ(bad_read, Status::kCorrupted);  // refused at submit: never served
  ASSERT_EQ(good_read, Status::kOk);
  auto bytes = srv.mem().Data(good_frame);
  for (size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_EQ(bytes[i], 0x42) << "byte " << i;
  }
  EXPECT_EQ(srv.counters().Get("fault.machine_kills"), 1u);
  EXPECT_EQ(srv.counters().Get("fault.machine_reboots"), 1u);
}

}  // namespace
}  // namespace exo
