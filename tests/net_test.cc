// Tests for the network stack: packet codecs, TCP handshake/data/close/retransmit,
// Cheetah's zero-copy + precomputed-checksum + ACK-piggybacking options, and UDP.
#include <gtest/gtest.h>

#include <memory>

#include "apps/http.h"
#include "net/packet.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "net/xio.h"
#include "sim/cpu_meter.h"
#include "sim/engine.h"

namespace exo::net {
namespace {

class NetTest : public ::testing::Test {
 protected:
  NetTest()
      : link_(&engine_, 100.0, 30.0, 200),
        nic_a_(0),
        nic_b_(1),
        cpu_a_(&engine_),
        cpu_b_(&engine_) {
    link_.Connect(&nic_a_, &nic_b_);
    cost_ = sim::CostModel::PentiumPro200();
  }

  std::unique_ptr<TcpStack> MakeStack(hw::Nic* nic, sim::CpuMeter* cpu, IpAddr ip,
                                      TcpProfile profile) {
    TcpStack::Hooks hooks;
    hooks.engine = &engine_;
    hooks.cost = &cost_;
    hooks.cpu = cpu;
    hooks.transmit = [this, nic](hw::Packet p, sim::Cycles when) {
      sim::Cycles at = std::max(when, engine_.now());
      engine_.ScheduleAt(at, [nic, p = std::move(p)]() mutable {
        if (drop_next_ > 0 && p.bytes.size() > kIpHeaderBytes + kTcpHeaderBytes) {
          --drop_next_;
          return;  // simulated loss of a data segment
        }
        nic->Transmit(std::move(p));
      });
    };
    auto stack = std::make_unique<TcpStack>(hooks, ip, profile);
    TcpStack* raw = stack.get();
    nic->SetReceiveHandler([raw](hw::Packet p) { raw->Input(p); });
    return stack;
  }

  void Run() { engine_.RunUntilIdle(); }

  sim::Engine engine_;
  hw::Link link_;
  hw::Nic nic_a_;
  hw::Nic nic_b_;
  sim::CpuMeter cpu_a_;
  sim::CpuMeter cpu_b_;
  sim::CostModel cost_;
  static int drop_next_;
};

int NetTest::drop_next_ = 0;

TEST(PacketTest, TcpCodecRoundTrips) {
  TcpSegment s;
  s.src_ip = 0x0a000001;
  s.dst_ip = 0x0a000002;
  s.src_port = 1234;
  s.dst_port = 80;
  s.seq = 777;
  s.ack = 888;
  s.flags = kFlagPsh | kFlagAck;
  s.window = 4096;
  s.payload = {1, 2, 3, 4, 5};
  s.checksum = Checksum(s.payload);
  auto p = EncodeTcp(s);
  auto d = DecodeTcp(p);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src_ip, s.src_ip);
  EXPECT_EQ(d->dst_port, s.dst_port);
  EXPECT_EQ(d->seq, s.seq);
  EXPECT_EQ(d->ack, s.ack);
  EXPECT_EQ(d->flags, s.flags);
  EXPECT_EQ(d->payload, s.payload);
  EXPECT_EQ(d->checksum, Checksum(d->payload));
}

TEST(PacketTest, UdpCodecRoundTrips) {
  UdpDatagram d;
  d.src_ip = 1;
  d.dst_ip = 2;
  d.src_port = 53;
  d.dst_port = 5353;
  d.payload = {9, 8, 7};
  auto p = EncodeUdp(d);
  auto back = DecodeUdp(p);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, d.payload);
  EXPECT_EQ(back->dst_port, d.dst_port);
}

TEST(PacketTest, DecodeRejectsWrongProtoAndShortFrames) {
  EXPECT_FALSE(DecodeTcp(hw::Packet{.bytes = {1, 2, 3}}).has_value());
  auto udp = EncodeUdp(UdpDatagram{});
  EXPECT_FALSE(DecodeTcp(udp).has_value());
}

TEST(PacketTest, ChecksumDetectsCorruption) {
  std::vector<uint8_t> data(1000, 7);
  uint32_t sum = Checksum(data);
  data[500] ^= 0xff;
  EXPECT_NE(Checksum(data), sum);
}

TEST_F(NetTest, HandshakeAndEcho) {
  auto server = MakeStack(&nic_b_, &cpu_b_, 2, XokSocketProfile());
  auto client = MakeStack(&nic_a_, nullptr, 1, ClientProfile());

  std::vector<uint8_t> server_got;
  std::vector<uint8_t> client_got;
  ASSERT_EQ(server->Listen(80, [&](TcpConn* c) {
    c->set_on_data([&](TcpConn* conn, std::span<const uint8_t> data) {
      server_got.assign(data.begin(), data.end());
      conn->Send(std::vector<uint8_t>{'p', 'o', 'n', 'g'});
    });
  }), Status::kOk);

  client->Connect(2, 80, [&](TcpConn* c) {
    c->set_on_data([&](TcpConn*, std::span<const uint8_t> data) {
      client_got.assign(data.begin(), data.end());
    });
    c->Send(std::vector<uint8_t>{'p', 'i', 'n', 'g'});
  });
  Run();
  EXPECT_EQ(server_got, (std::vector<uint8_t>{'p', 'i', 'n', 'g'}));
  EXPECT_EQ(client_got, (std::vector<uint8_t>{'p', 'o', 'n', 'g'}));
}

TEST_F(NetTest, LargeTransferSegmentsAndWindowing) {
  auto server = MakeStack(&nic_b_, &cpu_b_, 2, XokSocketProfile());
  auto client = MakeStack(&nic_a_, nullptr, 1, ClientProfile());

  std::vector<uint8_t> blob(300 * 1024);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<uint8_t>(i * 13);
  }
  std::vector<uint8_t> got;
  bool done = false;
  ASSERT_EQ(server->Listen(80, [&](TcpConn* c) {
    c->set_on_send_complete([&](TcpConn*) { done = true; });
    c->Send(blob);
  }), Status::kOk);
  client->Connect(2, 80, [&](TcpConn* c) {
    c->set_on_data([&](TcpConn*, std::span<const uint8_t> data) {
      got.insert(got.end(), data.begin(), data.end());
    });
  });
  Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(got, blob);
  EXPECT_GE(server->stats().segments_out, blob.size() / kMss);
  // Wire time floor: 300 KB at 100 Mbit/s is ~24.6 ms.
  EXPECT_GE(engine_.now(), cost_.FromMicros(24'000));
}

TEST_F(NetTest, RetransmitRecoversFromLoss) {
  auto server = MakeStack(&nic_b_, &cpu_b_, 2, XokSocketProfile());
  auto client = MakeStack(&nic_a_, nullptr, 1, ClientProfile());

  std::vector<uint8_t> got;
  ASSERT_EQ(server->Listen(80, [&](TcpConn* c) {
    c->set_on_data([&](TcpConn*, std::span<const uint8_t> d) {
      got.insert(got.end(), d.begin(), d.end());
    });
  }), Status::kOk);
  client->Connect(2, 80, [&](TcpConn* c) {
    drop_next_ = 1;  // the first data segment vanishes on the wire
    c->Send(std::vector<uint8_t>(100, 0x42));
  });
  Run();
  ASSERT_EQ(got.size(), 100u);
  EXPECT_EQ(got[0], 0x42);
  EXPECT_GE(client->stats().retransmits, 1u);
}

TEST_F(NetTest, ByteExactTransferUnderInjectedLossAndCorruption) {
  // 5% drop + 3% corruption + 2% duplication on the wire; the transfer must still
  // be byte-exact, with retransmission doing the recovery and the payload checksum
  // catching every corrupted segment.
  sim::FaultInjector faults({.seed = 20260807,
                             .net_drop_rate = 0.05,
                             .net_corrupt_rate = 0.03,
                             .net_duplicate_rate = 0.02,
                             .net_corrupt_min_offset = kIpHeaderBytes + kTcpHeaderBytes});
  link_.SetFaultInjector(&faults);

  auto server = MakeStack(&nic_b_, &cpu_b_, 2, XokSocketProfile());
  // The receiver must run a checksum-verifying profile (ClientProfile models a
  // cost-free load generator that skips rx verification and would accept damage).
  auto client = MakeStack(&nic_a_, &cpu_a_, 1, XokSocketProfile());

  std::vector<uint8_t> blob(150 * 1024);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<uint8_t>(i * 31 + (i >> 8));
  }
  std::vector<uint8_t> got;
  ASSERT_EQ(server->Listen(80, [&](TcpConn* c) { c->Send(blob); }), Status::kOk);
  client->Connect(2, 80, [&](TcpConn* c) {
    c->set_on_data([&](TcpConn*, std::span<const uint8_t> d) {
      got.insert(got.end(), d.begin(), d.end());
    });
  });
  Run();

  EXPECT_EQ(got.size(), blob.size());
  EXPECT_EQ(got, blob);
  EXPECT_GT(server->stats().retransmits, 0u);
  EXPECT_GT(faults.stats().net_drops, 0u);
  EXPECT_GT(faults.stats().net_corruptions, 0u);
  EXPECT_GT(client->stats().checksum_drops, 0u);
}

TEST_F(NetTest, ByteExactBothDirectionsUnderTenPercentLoss) {
  sim::FaultInjector faults({.seed = 5, .net_drop_rate = 0.10});
  link_.SetFaultInjector(&faults);

  auto server = MakeStack(&nic_b_, &cpu_b_, 2, XokSocketProfile());
  auto client = MakeStack(&nic_a_, nullptr, 1, ClientProfile());

  std::vector<uint8_t> up(40 * 1024);
  std::vector<uint8_t> down(40 * 1024);
  for (size_t i = 0; i < up.size(); ++i) {
    up[i] = static_cast<uint8_t>(i * 7);
    down[i] = static_cast<uint8_t>(i * 11 + 3);
  }
  std::vector<uint8_t> server_got;
  std::vector<uint8_t> client_got;
  ASSERT_EQ(server->Listen(80, [&](TcpConn* c) {
    c->set_on_data([&](TcpConn*, std::span<const uint8_t> d) {
      server_got.insert(server_got.end(), d.begin(), d.end());
    });
    c->Send(down);
  }), Status::kOk);
  client->Connect(2, 80, [&](TcpConn* c) {
    c->set_on_data([&](TcpConn*, std::span<const uint8_t> d) {
      client_got.insert(client_got.end(), d.begin(), d.end());
    });
    c->Send(up);
  });
  Run();

  EXPECT_EQ(server_got, up);
  EXPECT_EQ(client_got, down);
  EXPECT_GT(faults.stats().net_drops, 0u);
  EXPECT_GT(client->stats().retransmits + server->stats().retransmits, 0u);
}

TEST_F(NetTest, HandshakeSurvivesSynAndSynAckLoss) {
  // Drop the first two frames on the wire: the client's SYN, then the server's
  // SYN|ACK from the retried handshake. Both sides must retransmit their half.
  int frames_sent = 0;
  auto mk = [&](hw::Nic* nic, IpAddr ip, TcpProfile prof) {
    TcpStack::Hooks hooks;
    hooks.engine = &engine_;
    hooks.cost = &cost_;
    hooks.cpu = nullptr;
    hooks.transmit = [this, nic, &frames_sent](hw::Packet p, sim::Cycles when) {
      engine_.ScheduleAt(std::max(when, engine_.now()),
                         [this, nic, &frames_sent, p = std::move(p)]() mutable {
        if (++frames_sent <= 2) {
          return;  // SYN lost, then SYN|ACK lost
        }
        nic->Transmit(std::move(p));
      });
    };
    auto stack = std::make_unique<TcpStack>(hooks, ip, prof);
    TcpStack* raw = stack.get();
    nic->SetReceiveHandler([raw](hw::Packet p) { raw->Input(p); });
    return stack;
  };
  auto server = mk(&nic_b_, 2, XokSocketProfile());
  auto client = mk(&nic_a_, 1, ClientProfile());

  std::vector<uint8_t> got;
  ASSERT_EQ(server->Listen(80, [&](TcpConn* c) {
    c->set_on_data([&](TcpConn*, std::span<const uint8_t> d) {
      got.insert(got.end(), d.begin(), d.end());
    });
  }), Status::kOk);
  bool established = false;
  client->Connect(2, 80, [&](TcpConn* c) {
    established = true;
    c->Send(std::vector<uint8_t>(64, 0x5c));
  });
  Run();

  EXPECT_TRUE(established);
  ASSERT_EQ(got.size(), 64u);
  EXPECT_EQ(got[0], 0x5c);
  EXPECT_GE(client->stats().retransmits + server->stats().retransmits, 2u);
}

TEST_F(NetTest, CloseHandshakeReachesBothSides) {
  auto server = MakeStack(&nic_b_, &cpu_b_, 2, XokSocketProfile());
  auto client = MakeStack(&nic_a_, nullptr, 1, ClientProfile());
  bool server_closed = false;
  bool client_closed = false;
  ASSERT_EQ(server->Listen(80, [&](TcpConn* c) {
    c->set_on_close([&](TcpConn* conn) {
      server_closed = true;
      conn->Close();  // passive close
    });
  }), Status::kOk);
  client->Connect(2, 80, [&](TcpConn* c) {
    c->set_on_close([&](TcpConn*) { client_closed = true; });
    c->Send(std::vector<uint8_t>(10, 1));
    c->Close();
  });
  Run();
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client_closed);
}

TEST_F(NetTest, PiggybackedAcksReducePurePackets) {
  // Request/response workload: the piggyback profile should emit fewer pure ACKs.
  auto run = [&](TcpProfile profile) {
    sim::Engine engine;
    hw::Link link(&engine, 100.0, 30.0, 200);
    hw::Nic na(0);
    hw::Nic nb(1);
    link.Connect(&na, &nb);
    sim::CpuMeter cpu(&engine);
    sim::CostModel cost = sim::CostModel::PentiumPro200();

    auto mk = [&](hw::Nic* nic, sim::CpuMeter* meter, IpAddr ip, TcpProfile prof) {
      TcpStack::Hooks hooks;
      hooks.engine = &engine;
      hooks.cost = &cost;
      hooks.cpu = meter;
      hooks.transmit = [&engine, nic](hw::Packet p, sim::Cycles when) {
        engine.ScheduleAt(std::max(when, engine.now()),
                          [nic, p = std::move(p)]() mutable { nic->Transmit(std::move(p)); });
      };
      return std::make_unique<TcpStack>(hooks, ip, prof);
    };
    auto server = mk(&nb, &cpu, 2, profile);
    auto client = mk(&na, nullptr, 1, ClientProfile());
    nb.SetReceiveHandler([&](hw::Packet p) { server->Input(p); });
    na.SetReceiveHandler([&](hw::Packet p) { client->Input(p); });

    int responses = 0;
    EXPECT_EQ(server->Listen(80, [&](TcpConn* c) {
      c->set_on_data([&](TcpConn* conn, std::span<const uint8_t>) {
        conn->Send(std::vector<uint8_t>(200, 0));  // response piggybacks the ACK
      });
    }), Status::kOk);
    client->Connect(2, 80, [&](TcpConn* c) {
      c->set_on_data([&, n = 0](TcpConn* conn, std::span<const uint8_t>) mutable {
        ++responses;
        if (++n < 20) {
          conn->Send(std::vector<uint8_t>(100, 0));
        }
      });
      c->Send(std::vector<uint8_t>(100, 0));
    });
    engine.RunUntilIdle();
    EXPECT_EQ(responses, 20);
    return server->stats();
  };

  TcpStats merged = run(CheetahProfile());
  TcpStats plain = run(BsdSocketProfile());
  EXPECT_LT(merged.pure_acks_out, plain.pure_acks_out);
  EXPECT_GT(merged.piggybacked_acks, 10u);
}

TEST_F(NetTest, ZeroCopyProfileUsesLessCpu) {
  std::vector<uint8_t> blob(200 * 1024, 0x77);
  auto run = [&](TcpProfile profile, std::span<const uint32_t> sums) {
    sim::Engine engine;
    hw::Link link(&engine, 100.0, 30.0, 200);
    hw::Nic na(0);
    hw::Nic nb(1);
    link.Connect(&na, &nb);
    sim::CpuMeter cpu(&engine);
    sim::CostModel cost = sim::CostModel::PentiumPro200();
    auto mk = [&](hw::Nic* nic, sim::CpuMeter* meter, IpAddr ip, TcpProfile prof) {
      TcpStack::Hooks hooks;
      hooks.engine = &engine;
      hooks.cost = &cost;
      hooks.cpu = meter;
      hooks.transmit = [&engine, nic](hw::Packet p, sim::Cycles when) {
        engine.ScheduleAt(std::max(when, engine.now()),
                          [nic, p = std::move(p)]() mutable { nic->Transmit(std::move(p)); });
      };
      return std::make_unique<TcpStack>(hooks, ip, prof);
    };
    auto server = mk(&nb, &cpu, 2, profile);
    auto client = mk(&na, nullptr, 1, ClientProfile());
    nb.SetReceiveHandler([&](hw::Packet p) { server->Input(p); });
    na.SetReceiveHandler([&](hw::Packet p) { client->Input(p); });
    size_t received = 0;
    EXPECT_EQ(server->Listen(80, [&](TcpConn* c) { c->Send(blob, sums); }), Status::kOk);
    client->Connect(2, 80, [&](TcpConn* c) {
      c->set_on_data([&](TcpConn*, std::span<const uint8_t> d) { received += d.size(); });
    });
    engine.RunUntilIdle();
    EXPECT_EQ(received, blob.size());
    return cpu.total_busy();
  };

  // Precompute checksums as Cheetah stores them with the file.
  std::vector<uint32_t> sums;
  for (size_t off = 0; off < blob.size(); off += kMss) {
    sums.push_back(Checksum(std::span<const uint8_t>(blob).subspan(
        off, std::min<size_t>(kMss, blob.size() - off))));
  }
  sim::Cycles cheetah = run(CheetahProfile(), sums);
  sim::Cycles socket = run(XokSocketProfile(), {});
  sim::Cycles bsd = run(BsdSocketProfile(), {});
  EXPECT_LT(cheetah * 2, socket);  // no copy, no checksum
  EXPECT_LT(socket, bsd);          // fewer copies, cheaper crossings
}

TEST_F(NetTest, PcbReuseCountsAndCharges) {
  auto server = MakeStack(&nic_b_, &cpu_b_, 2, XokSocketProfile());
  auto client = MakeStack(&nic_a_, nullptr, 1, ClientProfile());
  int closed = 0;
  ASSERT_EQ(server->Listen(80, [&](TcpConn* c) {
    c->set_on_close([&, s = server.get()](TcpConn* conn) {
      conn->Close();
      ++closed;
    });
  }), Status::kOk);

  for (int i = 0; i < 5; ++i) {
    client->Connect(2, 80, [&](TcpConn* c) {
      c->Send(std::vector<uint8_t>(10, 1));
      c->Close();
    });
    Run();
    // Release server-side conns that reached Closed.
  }
  EXPECT_EQ(closed, 5);
}

TEST_F(NetTest, UdpRoundTrip) {
  UdpStack::Hooks hooks_a;
  hooks_a.engine = &engine_;
  hooks_a.cost = &cost_;
  hooks_a.transmit = [this](hw::Packet p, sim::Cycles when) {
    engine_.ScheduleAt(std::max(when, engine_.now()),
                       [this, p = std::move(p)]() mutable { nic_a_.Transmit(std::move(p)); });
  };
  UdpStack a(hooks_a, 1);
  UdpStack::Hooks hooks_b = hooks_a;
  hooks_b.cpu = &cpu_b_;
  hooks_b.transmit = [this](hw::Packet p, sim::Cycles when) {
    engine_.ScheduleAt(std::max(when, engine_.now()),
                       [this, p = std::move(p)]() mutable { nic_b_.Transmit(std::move(p)); });
  };
  UdpStack b(hooks_b, 2);
  nic_a_.SetReceiveHandler([&](hw::Packet p) { a.Input(p); });
  nic_b_.SetReceiveHandler([&](hw::Packet p) { b.Input(p); });

  std::vector<uint8_t> got;
  ASSERT_EQ(b.Bind(5000, [&](const UdpDatagram& d) {
    got = d.payload;
    b.SendTo(5000, d.src_ip, d.src_port, std::vector<uint8_t>{4, 5, 6});
  }), Status::kOk);
  std::vector<uint8_t> reply;
  ASSERT_EQ(a.Bind(6000, [&](const UdpDatagram& d) { reply = d.payload; }), Status::kOk);
  ASSERT_EQ(a.SendTo(6000, 2, 5000, std::vector<uint8_t>{1, 2, 3}), Status::kOk);
  Run();
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(reply, (std::vector<uint8_t>{4, 5, 6}));
}

TEST(ChecksumCacheTest, ComputesOnceThenHits) {
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  sim::Cycles charged = 0;
  ChecksumCache cache(&cost, [&](sim::Cycles c) { charged += c; });
  std::vector<uint8_t> data(10000, 3);
  const auto& s1 = cache.For(42, data);
  EXPECT_EQ(s1.size(), (data.size() + kMss - 1) / kMss);
  sim::Cycles after_first = charged;
  EXPECT_GT(after_first, 0u);
  const auto& s2 = cache.For(42, data);
  EXPECT_EQ(charged, after_first);  // no recharge
  EXPECT_EQ(&s1, &s2);
  EXPECT_EQ(cache.hits(), 1u);
  cache.Invalidate(42);
  cache.For(42, data);
  EXPECT_GT(charged, after_first);
}

// Transmit times for a connection whose every frame is black-holed: the initial
// SYN plus one retransmission per backoff step until max_retransmits aborts it.
std::vector<sim::Cycles> RetransmitSchedule(uint64_t jitter_seed,
                                            TcpStats* stats_out = nullptr) {
  sim::Engine engine;
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  std::vector<sim::Cycles> times;
  TcpStack::Hooks hooks;
  hooks.engine = &engine;
  hooks.cost = &cost;
  hooks.transmit = [&](hw::Packet, sim::Cycles when) { times.push_back(when); };
  TcpProfile p = ClientProfile();
  p.adaptive_rto = true;
  p.rto_jitter_seed = jitter_seed;
  p.max_retransmits = 6;
  TcpStack stack(hooks, /*ip=*/1, p);
  stack.Connect(2, 80, [](TcpConn*) {});
  engine.RunUntilIdle();
  if (stats_out != nullptr) {
    *stats_out = stack.stats();
  }
  return times;
}

TEST(PacketTest, ChecksumCombineMatchesConcatenationForEvenPrefix) {
  std::vector<uint8_t> header = {'H', 'T', 'T', 'P', '/', '1', '.', '1', ' ', '\n'};
  ASSERT_EQ(header.size() % 2, 0u);
  std::vector<uint8_t> body(3000);
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  std::vector<uint8_t> both = header;
  both.insert(both.end(), body.begin(), body.end());
  EXPECT_EQ(ChecksumCombine(Checksum(header), Checksum(body)), Checksum(both));
  // An odd-length prefix shifts the 16-bit word framing of everything after
  // it, so the identity does not hold — that is why prepared headers are
  // padded to even length before their checksum is stored.
  std::vector<uint8_t> odd = {1};
  std::vector<uint8_t> odd_both = odd;
  odd_both.insert(odd_both.end(), body.begin(), body.end());
  EXPECT_NE(ChecksumCombine(Checksum(odd), Checksum(body)), Checksum(odd_both));
}

TEST(DocumentStoreTest, ChecksumsAtWriteTimeAndGenerationOnMutation) {
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  sim::Cycles charged = 0;
  DocumentStore store(&cost, [&](sim::Cycles c) { charged += c; });

  const DocumentStore::Doc* d = store.Put("f", std::vector<uint8_t>(kMss + 100, 7));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->generation, 1u);
  EXPECT_GT(charged, 0u);  // checksum cost lands at write time, not serve time
  ASSERT_EQ(d->checksums.size(), 2u);
  std::span<const uint8_t> bytes = d->bytes;
  EXPECT_EQ(d->checksums[0], Checksum(bytes.subspan(0, kMss)));
  EXPECT_EQ(d->checksums[1], Checksum(bytes.subspan(kMss)));

  // Rewrite: same Doc slot, bumped generation, fresh checksums.
  const DocumentStore::Doc* d2 = store.Put("f", std::vector<uint8_t>(50, 9));
  EXPECT_EQ(d2, d);
  EXPECT_EQ(d2->generation, 2u);
  ASSERT_EQ(d2->checksums.size(), 1u);
  EXPECT_EQ(d2->checksums[0], Checksum(std::span<const uint8_t>(d2->bytes)));

  EXPECT_TRUE(store.Truncate("f", 20));
  EXPECT_EQ(d2->generation, 3u);
  EXPECT_EQ(store.Find("f")->bytes.size(), 20u);
  EXPECT_FALSE(store.Truncate("f", 100));      // would grow
  EXPECT_FALSE(store.Truncate("missing", 0));  // no such file
  EXPECT_EQ(d2->generation, 3u);
}

TEST(HttpResponseCacheTest, LruEvictsAndGenerationMismatchDropsEntry) {
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  DocumentStore store(&cost);
  const DocumentStore::Doc* da = store.Put("a", std::vector<uint8_t>(100, 1));
  const DocumentStore::Doc* db = store.Put("b", std::vector<uint8_t>(100, 2));

  HttpResponseCache cache(2);
  auto entry = [](const DocumentStore::Doc* d) {
    HttpResponseCache::Entry e;
    e.header = {'O', 'K'};
    e.header_checksum = Checksum(std::span<const uint8_t>(e.header));
    e.doc = d;
    e.doc_generation = d->generation;
    return e;
  };
  cache.Put("a", entry(da));
  cache.Put("b", entry(db));
  EXPECT_NE(cache.Get("a"), nullptr);  // "a" is now most recent
  cache.Put("c", entry(db));           // capacity 2: evicts "b", the LRU
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);

  // Rewriting the document invalidates the prepared response: the entry's
  // recorded generation no longer matches, so lookup misses and drops it.
  store.Put("a", std::vector<uint8_t>(200, 3));
  const uint64_t misses_before = cache.misses();
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.misses(), misses_before + 1);
  EXPECT_EQ(cache.size(), 1u);  // only "c" remains

  cache.Invalidate("c");
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TcpRtoTest, BackoffIsDeterministicUnderSeededJitterAndDoubles) {
  TcpStats stats;
  const std::vector<sim::Cycles> a = RetransmitSchedule(0xfeed, &stats);
  const std::vector<sim::Cycles> b = RetransmitSchedule(0xfeed);
  ASSERT_EQ(a.size(), 7u);  // initial SYN + max_retransmits retries
  EXPECT_EQ(a, b);          // same seed, same jittered schedule, cycle for cycle
  for (size_t i = 2; i < a.size(); ++i) {
    const sim::Cycles prev = a[i - 1] - a[i - 2];
    const sim::Cycles cur = a[i] - a[i - 1];
    // Each backoff step doubles the timer; jitter is bounded at rto/8, so even
    // worst-case draws leave every gap >= 1.7x its predecessor.
    EXPECT_GE(cur * 10, prev * 17) << "gap " << i << " did not back off";
  }
  EXPECT_EQ(stats.rto_aborts, 1u);
  EXPECT_EQ(stats.rsts_out, 0u);  // never-established conns abort without an RST
  const std::vector<sim::Cycles> c = RetransmitSchedule(0xbeef);
  EXPECT_NE(a, c);  // a different seed perturbs the schedule
}

TEST_F(NetTest, KarnRuleExcludesRetransmitsFromSrtt) {
  auto server = MakeStack(&nic_b_, &cpu_b_, 2, XokSocketProfile());
  auto client = MakeStack(&nic_a_, nullptr, 1, ClientProfile());
  ASSERT_EQ(server->Listen(80, [](TcpConn*) {}), Status::kOk);
  TcpConn* conn = nullptr;
  client->Connect(2, 80, [&](TcpConn* c) { conn = c; });
  Run();
  ASSERT_NE(conn, nullptr);

  conn->Send(std::vector<uint8_t>(100, 1));  // clean round trip: baseline SRTT
  Run();
  const sim::Cycles srtt_clean = conn->srtt();
  ASSERT_GT(srtt_clean, 0u);

  // Drop the next data segment. Its retransmission is ACKed a full RTO (tens of
  // milliseconds) after the original send; Karn's rule must keep that ambiguous
  // sample out of the estimator, or SRTT would jump by three orders of magnitude.
  drop_next_ = 1;
  conn->Send(std::vector<uint8_t>(100, 2));
  Run();
  drop_next_ = 0;
  EXPECT_GE(client->stats().retransmits, 1u);
  EXPECT_LT(conn->srtt(), srtt_clean * 2);
}

TEST_F(NetTest, RetryExhaustionAbortsWithRstAndReapsBothPcbs) {
  TcpProfile cp = ClientProfile();
  cp.max_retransmits = 3;
  auto server = MakeStack(&nic_b_, &cpu_b_, 2, XokSocketProfile());
  auto client = MakeStack(&nic_a_, nullptr, 1, cp);
  bool server_closed = false;
  ASSERT_EQ(server->Listen(80, [&](TcpConn* c) {
    c->set_on_close([&](TcpConn*) { server_closed = true; });
  }), Status::kOk);
  TcpConn* conn = nullptr;
  bool aborted = false;
  client->Connect(2, 80, [&](TcpConn* c) {
    conn = c;
    c->set_on_close([&](TcpConn* cc) { aborted = cc->aborted(); });
  });
  Run();
  ASSERT_NE(conn, nullptr);

  // Black-hole every data segment from here on: the sender retries
  // max_retransmits times, gives up, and aborts. The RST is header-only, so it
  // still crosses the wire and tears down the peer's PCB too.
  drop_next_ = 1000;
  conn->Send(std::vector<uint8_t>(200, 9));
  Run();
  drop_next_ = 0;
  EXPECT_TRUE(aborted);
  EXPECT_EQ(client->stats().rto_aborts, 1u);
  EXPECT_EQ(client->stats().rsts_out, 1u);
  EXPECT_EQ(server->stats().rsts_in, 1u);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(client->conn_count(), 0u);
  EXPECT_EQ(server->conn_count(), 0u);
}

TEST_F(NetTest, HalfOpenConnsFromLostFinalAcksAreReaped) {
  // Frame 3 on the wire is the client's final handshake ACK (1: SYN,
  // 2: SYN|ACK). Dropping it strands the server in kSynRcvd; frames 5/7/9 drop
  // whatever the client answers to each SYN|ACK retransmission, so the server
  // side can never complete. It must burn its retry budget, then reap the
  // half-open PCB instead of leaking it — the SYN-flood survival property.
  sim::FaultInjector faults({.seed = 1,
                             .wire_script = {{3, 'd', 0},
                                             {5, 'd', 0},
                                             {7, 'd', 0},
                                             {9, 'd', 0}}});
  link_.SetFaultInjector(&faults);
  TcpProfile sp = XokSocketProfile();
  sp.max_retransmits = 3;
  auto server = MakeStack(&nic_b_, &cpu_b_, 2, sp);
  auto client = MakeStack(&nic_a_, nullptr, 1, ClientProfile());
  ASSERT_EQ(server->Listen(80, [](TcpConn*) {}, /*backlog=*/4), Status::kOk);
  client->Connect(2, 80, [](TcpConn*) {});
  Run();
  link_.SetFaultInjector(nullptr);

  EXPECT_EQ(server->stats().half_open_reaped, 1u);
  EXPECT_EQ(server->stats().rto_aborts, 1u);
  EXPECT_EQ(server->half_open_count(80), 0u);
  EXPECT_EQ(server->conn_count(), 0u);
}

// End to end: a fully armed Cheetah server (persistent connections, shared
// document store, response cache, gather transmit) against a pipelining client
// whose stack *verifies checksums on receive* — so if the stapled
// header+body checksum of a gather segment were wrong, the segment would be
// dropped, the response would never complete, and completed < issued.
TEST_F(NetTest, PersistentPipelinedGatherServesChecksumVerifiedResponses) {
  DocumentStore store(&cost_);
  apps::HttpServerOptions opts;
  opts.persistent = true;
  opts.documents = &store;
  opts.response_cache_entries = 4;
  opts.gather_tx = true;
  apps::HttpServer server(&engine_, &cost_, apps::ServerStyle::kCheetah, /*ip=*/2,
                          opts);
  server.AddDocument("small", std::vector<uint8_t>(600, 0x5a));   // gathers: one MSS
  server.AddDocument("large", std::vector<uint8_t>(3000, 0xa5));  // two-send path
  ASSERT_EQ(server.Listen(80), Status::kOk);
  server.AttachNic(&nic_b_, /*peer_ip=*/1);

  apps::OpenLoopHttpClient client(&engine_, &cost_, &nic_a_, /*ip=*/1, 2, "small",
                                  /*interval_cycles=*/50'000, XokSocketProfile());
  client.EnablePersistent(/*pool_size=*/3, /*max_pipeline=*/8);
  int flip = 0;
  client.set_doc_picker([&flip] { return ++flip % 2 == 0 ? "large" : "small"; });
  client.Start(/*deadline=*/40 * 50'000);
  Run();

  EXPECT_EQ(client.issued(), 40u);
  EXPECT_EQ(client.completed(), 40u);
  EXPECT_EQ(client.failed(), 0u);
  EXPECT_EQ(client.rejected(), 0u);
  EXPECT_EQ(client.conns_opened(), 3u);  // the pool, reused across all requests
  EXPECT_GT(server.gather_sends(), 0u);
  EXPECT_GT(server.cache_hits(), 0u);
  // Bodies arrived complete and intact (ClassifyResponse checks length; the
  // verifying stack checks every segment's checksum, gathered or not).
  EXPECT_EQ(server.requests_served(), 40u);
  std::string bad = server.stack().CheckInvariants();
  EXPECT_TRUE(bad.empty()) << bad;
}

}  // namespace
}  // namespace exo::net
