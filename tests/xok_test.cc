// Tests for the Xok exokernel: capabilities, environments, scheduling, memory
// protection, software regions, IPC, wakeup predicates, and packet filters.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hw/machine.h"
#include "sim/engine.h"
#include "udf/assembler.h"
#include "xok/capability.h"
#include "xok/kernel.h"

namespace exo::xok {
namespace {

class XokTest : public ::testing::Test {
 protected:
  XokTest() : machine_(&engine_, hw::MachineConfig{.mem_frames = 256}), kernel_(&machine_) {}

  sim::Engine engine_;
  hw::Machine machine_;
  XokKernel kernel_;
};

TEST(CapabilityTest, RootDominatesEverything) {
  Capability root = Capability::Root();
  EXPECT_TRUE(Dominates(root, {1, 2, 3}, true));
  EXPECT_TRUE(Dominates(root, {}, true));
}

TEST(CapabilityTest, PrefixDominance) {
  Capability user = Capability::For({kCapUsers, 100});
  EXPECT_TRUE(Dominates(user, {kCapUsers, 100}, true));
  EXPECT_TRUE(Dominates(user, {kCapUsers, 100, 7}, true));
  EXPECT_FALSE(Dominates(user, {kCapUsers, 101}, true));
  EXPECT_FALSE(Dominates(user, {kCapUsers}, true));  // shorter guard: no dominance
}

TEST(CapabilityTest, ReadOnlyCannotWrite) {
  Capability ro = Capability::For({kCapUsers, 5}, /*w=*/false);
  EXPECT_TRUE(Dominates(ro, {kCapUsers, 5, 1}, false));
  EXPECT_FALSE(Dominates(ro, {kCapUsers, 5, 1}, true));
}

TEST_F(XokTest, EnvRunsToCompletion) {
  int ran = 0;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.ChargeCpu(1000);
    ++ran;
  });
  kernel_.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(kernel_.alive_count(), 0u);
  EXPECT_GE(engine_.now(), 1000u);
}

TEST_F(XokTest, SysExitSetsCode) {
  EnvId id = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()},
                               [&] { kernel_.SysExit(42); });
  kernel_.Run();
  EXPECT_EQ(kernel_.env(id).state, EnvState::kZombie);
  EXPECT_EQ(kernel_.env(id).exit_code, 42);
  EXPECT_EQ(kernel_.ReapEnv(id), Status::kOk);
  EXPECT_FALSE(kernel_.EnvExists(id));
}

TEST_F(XokTest, WaitReapsChild) {
  int child_code = -1;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EnvId child = kernel_.CreateEnv(kernel_.current_id(), {Capability::Root()}, [&] {
      kernel_.ChargeCpu(5000);
      kernel_.SysExit(7);
    });
    auto r = kernel_.SysWait(child);
    ASSERT_TRUE(r.ok());
    child_code = *r;
    EXPECT_FALSE(kernel_.EnvExists(child));
  });
  kernel_.Run();
  EXPECT_EQ(child_code, 7);
}

TEST_F(XokTest, WaitOnNonChildDenied) {
  EnvId other = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {});
  Status got = Status::kOk;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()},
                    [&] { got = kernel_.SysWait(other).status(); });
  kernel_.Run();
  EXPECT_EQ(got, Status::kPermissionDenied);
}

TEST_F(XokTest, RoundRobinInterleavesAtQuantum) {
  // Two CPU-bound envs; each records the order of its slices.
  std::vector<int> order;
  const sim::Cycles q = machine_.cost().quantum;
  for (int i = 0; i < 2; ++i) {
    kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&, i] {
      for (int s = 0; s < 3; ++s) {
        order.push_back(i);
        kernel_.ChargeCpu(q);  // exactly one slice of work
      }
    });
  }
  kernel_.Run();
  // Strict alternation: 0,1,0,1,0,1.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST_F(XokTest, CriticalSectionDefersSliceEnd) {
  std::vector<int> order;
  const sim::Cycles q = machine_.cost().quantum;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.EnterCritical();
    order.push_back(0);
    kernel_.ChargeCpu(3 * q);  // would normally be preempted twice
    order.push_back(0);
    kernel_.ExitCritical();
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    order.push_back(1);
    kernel_.ChargeCpu(q / 2);
  });
  kernel_.Run();
  // Env 0 runs its whole critical section before env 1 ever runs.
  EXPECT_EQ(order, (std::vector<int>{0, 0, 1}));
}

TEST_F(XokTest, DirectedYieldHandsOffSlice) {
  std::vector<int> order;
  EnvId a = kInvalidEnv;
  EnvId b = kInvalidEnv;
  a = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    order.push_back(0);
    kernel_.SysYield(b);  // hand the CPU to b specifically
    order.push_back(0);
  });
  // A decoy env between a and b in round-robin order.
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] { order.push_back(9); });
  b = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    order.push_back(1);
    kernel_.SysYield();
  });
  kernel_.Run();
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);  // b ran before the decoy despite queue order
}

TEST_F(XokTest, HostPredicateBlocksUntilTrue) {
  bool flag = false;
  std::vector<int> order;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    WakeupPredicate p;
    p.host = [&] { return flag; };
    kernel_.SysSleep(std::move(p));
    order.push_back(1);
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.ChargeCpu(10'000);
    order.push_back(0);
    flag = true;
  });
  kernel_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST_F(XokTest, UdfPredicateWatchesMemoryWindow) {
  // The predicate wakes the sleeper when the first word of a shared window becomes
  // nonzero — the real wakeup-predicate mechanism (Sec. 5.1).
  std::vector<uint8_t> window(8, 0);
  auto prog = udf::Assemble(R"(
    ldi r1, 0
    ld4 r2, r1, 0, meta
    ret r2
  )");
  ASSERT_TRUE(prog.ok);

  std::vector<int> order;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    WakeupPredicate p;
    p.program = prog.program;
    p.live_window = &window;
    kernel_.SysSleep(std::move(p));
    order.push_back(1);
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.ChargeCpu(50'000);
    order.push_back(0);
    window[0] = 1;
  });
  kernel_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST_F(XokTest, TimeBasedPredicateFiresOnIdleClock) {
  const sim::Cycles wake_at = 1'000'000;
  sim::Cycles woke = 0;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    WakeupPredicate p;
    p.host = [&] { return engine_.now() >= wake_at; };
    p.deadline = wake_at;
    kernel_.SysSleep(std::move(p));
    woke = engine_.now();
  });
  kernel_.Run();
  EXPECT_GE(woke, wake_at);
  EXPECT_LT(woke, wake_at + 100'000);  // deadline hint avoids gross overshoot
}

TEST_F(XokTest, FrameAllocationGuardsEnforced) {
  Status steal = Status::kOk;
  kernel_.CreateEnv(kInvalidEnv, {Capability::For({kCapUsers, 1})}, [&] {
    // Allocate a frame guarded by user 1's namespace.
    auto f = kernel_.SysFrameAlloc(0, {kCapUsers, 1, 99});
    ASSERT_TRUE(f.ok());
    // A second env owned by user 2 must not be able to free or map it.
    EnvId thief = kernel_.CreateEnv(kernel_.current_id(),
                                    {Capability::For({kCapUsers, 2})}, [&, f] {
      steal = kernel_.SysFrameFree(*f, 0);
    });
    EXPECT_TRUE(kernel_.SysWait(thief).ok());
    EXPECT_EQ(kernel_.SysFrameFree(*f, 0), Status::kOk);
  });
  kernel_.Run();
  EXPECT_EQ(steal, Status::kPermissionDenied);
}

TEST_F(XokTest, PageTableMappingAndAccess) {
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EnvId self = kernel_.current_id();
    auto f = kernel_.SysFrameAlloc(0, {});
    ASSERT_TRUE(f.ok());
    PtOp op;
    op.kind = PtOp::Kind::kInsert;
    op.vpage = 16;
    op.pte = {.frame = *f, .readable = true, .writable = true, .software_bits = 0};
    ASSERT_EQ(kernel_.SysPtUpdate(self, op, 0), Status::kOk);

    std::vector<uint8_t> data = {1, 2, 3, 4};
    ASSERT_EQ(kernel_.AccessUserMemory(self, 16 * 4096 + 100, data, /*write=*/true),
              Status::kOk);
    std::vector<uint8_t> back(4);
    ASSERT_EQ(kernel_.AccessUserMemory(self, 16 * 4096 + 100, back, /*write=*/false),
              Status::kOk);
    EXPECT_EQ(back, data);
  });
  kernel_.Run();
}

TEST_F(XokTest, ReadOnlyMappingFaultsOnWriteAndCowResolves) {
  int faults = 0;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EnvId self = kernel_.current_id();
    Env& e = kernel_.env(self);
    auto f = kernel_.SysFrameAlloc(0, {});
    ASSERT_TRUE(f.ok());
    std::memset(machine_.mem().Data(*f).data(), 0x77, hw::kPageSize);

    PtOp op;
    op.kind = PtOp::Kind::kInsert;
    op.vpage = 3;
    op.pte = {.frame = *f, .readable = true, .writable = false,
              .software_bits = kSwBitCow};
    ASSERT_EQ(kernel_.SysPtUpdate(self, op, 0), Status::kOk);

    // Install a libOS-style COW fault handler: copy to a fresh frame, remap writable.
    e.on_page_fault = [&, self](VPage vp, bool write) {
      if (!write) {
        return false;
      }
      const Pte* old = kernel_.env(self).pt.Lookup(vp);
      if (old == nullptr || (old->software_bits & kSwBitCow) == 0) {
        return false;
      }
      ++faults;
      auto nf = kernel_.SysFrameAlloc(0, {});
      if (!nf.ok()) {
        return false;
      }
      machine_.mem().CopyFrame(*nf, old->frame);
      machine_.Charge(machine_.cost().CopyCost(hw::kPageSize));
      PtOp fix;
      fix.kind = PtOp::Kind::kInsert;
      fix.vpage = vp;
      fix.pte = {.frame = *nf, .readable = true, .writable = true, .software_bits = 0};
      return kernel_.SysPtUpdate(self, fix, 0) == Status::kOk;
    };

    std::vector<uint8_t> data = {0xaa};
    ASSERT_EQ(kernel_.AccessUserMemory(self, 3 * 4096, data, /*write=*/true), Status::kOk);
    // Original frame is untouched; new mapping has the write.
    EXPECT_EQ(machine_.mem().Data(*f)[0], 0x77);
    std::vector<uint8_t> back(1);
    ASSERT_EQ(kernel_.AccessUserMemory(self, 3 * 4096, back, /*write=*/false), Status::kOk);
    EXPECT_EQ(back[0], 0xaa);
  });
  kernel_.Run();
  EXPECT_EQ(faults, 1);
}

TEST_F(XokTest, BatchedPtUpdatesCostLessThanSingles) {
  auto run = [&](bool batched) {
    sim::Engine engine;
    hw::Machine m(&engine, hw::MachineConfig{.mem_frames = 256});
    XokKernel k(&m);
    k.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
      EnvId self = k.current_id();
      std::vector<PtOp> ops;
      for (uint32_t i = 0; i < 64; ++i) {
        auto f = k.SysFrameAlloc(0, {});
        ASSERT_TRUE(f.ok());
        PtOp op;
        op.kind = PtOp::Kind::kInsert;
        op.vpage = i;
        op.pte = {.frame = *f, .readable = true, .writable = true, .software_bits = 0};
        ops.push_back(op);
      }
      sim::Cycles before = engine.now();
      if (batched) {
        ASSERT_EQ(k.SysPtBatch(self, ops, 0), Status::kOk);
      } else {
        for (const auto& op : ops) {
          ASSERT_EQ(k.SysPtUpdate(self, op, 0), Status::kOk);
        }
      }
      m.counters().Add(batched ? "t.batched" : "t.single", engine.now() - before);
    });
    k.Run();
    return m.counters().Get(batched ? "t.batched" : "t.single");
  };
  EXPECT_LT(run(true) * 2, run(false));
}

TEST_F(XokTest, SoftwareRegionProtectsSubPageState) {
  Status intruder = Status::kOk;
  kernel_.CreateEnv(kInvalidEnv, {Capability::For({kCapUsers, 1})}, [&] {
    auto rid = kernel_.SysRegionCreate(128, {kCapUsers, 1, 5}, 0);
    ASSERT_TRUE(rid.ok());
    std::vector<uint8_t> msg = {'h', 'i'};
    ASSERT_EQ(kernel_.SysRegionWrite(*rid, 10, msg, 0), Status::kOk);

    std::vector<uint8_t> out(2);
    ASSERT_EQ(kernel_.SysRegionRead(*rid, 10, out, 0), Status::kOk);
    EXPECT_EQ(out, msg);

    EnvId other = kernel_.CreateEnv(kernel_.current_id(),
                                    {Capability::For({kCapUsers, 2})}, [&, rid] {
      std::vector<uint8_t> evil = {0, 0};
      intruder = kernel_.SysRegionWrite(*rid, 10, evil, 0);
    });
    EXPECT_TRUE(kernel_.SysWait(other).ok());
    // Out-of-bounds write rejected too.
    EXPECT_EQ(kernel_.SysRegionWrite(*rid, 127, msg, 0), Status::kInvalidArgument);
  });
  kernel_.Run();
  EXPECT_EQ(intruder, Status::kPermissionDenied);
}

TEST_F(XokTest, IpcDeliversInOrder) {
  std::vector<uint64_t> got;
  EnvId receiver = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (int i = 0; i < 3;) {
      auto m = kernel_.SysIpcRecv();
      if (m.ok()) {
        got.push_back(m->words[0]);
        ++i;
      } else {
        kernel_.SysYield();
      }
    }
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (uint64_t i = 1; i <= 3; ++i) {
      IpcMessage m;
      m.words[0] = i * 10;
      EXPECT_EQ(kernel_.SysIpcSend(receiver, m, 0), Status::kOk);
    }
  });
  kernel_.Run();
  EXPECT_EQ(got, (std::vector<uint64_t>{10, 20, 30}));
}

TEST_F(XokTest, PacketFilterClaimsMatchingPackets) {
  // Filter: claim packets whose first byte equals 0x42.
  auto prog = udf::Assemble(R"(
    ldi r1, 0
    ld1 r2, r1, 0, meta
    ldi r3, 0x42
    ceq r4, r2, r3
    ret r4
  )");
  ASSERT_TRUE(prog.ok);

  // Wire a peer NIC into the machine's NIC 0.
  hw::Nic peer(99);
  hw::Link link(&engine_, 100.0, 10.0, 200);
  link.Connect(&peer, &machine_.nic(0));

  std::vector<uint8_t> first;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    auto fid = kernel_.SysFilterInstall(prog.program, 0);
    ASSERT_TRUE(fid.ok());
    peer.Transmit({.bytes = {0x41, 1}});  // not ours
    peer.Transmit({.bytes = {0x42, 2}});  // ours
    WakeupPredicate p;
    p.host = [&, fid] { return kernel_.Filter(*fid)->delivered > 0; };
    kernel_.SysSleep(std::move(p));
    auto pkt = kernel_.SysRingConsume(*fid, 0);
    ASSERT_TRUE(pkt.ok());
    first = pkt->bytes;
    EXPECT_EQ(kernel_.SysRingConsume(*fid, 0).status(), Status::kWouldBlock);
  });
  kernel_.Run();
  EXPECT_EQ(first, (std::vector<uint8_t>{0x42, 2}));
  EXPECT_EQ(machine_.counters().Get("xok.packets_unclaimed"), 1u);
}

TEST_F(XokTest, FilterInstallRejectsNondeterministicProgram) {
  auto prog = udf::Assemble("time r1\nret r1\n");
  ASSERT_TRUE(prog.ok);
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EXPECT_EQ(kernel_.SysFilterInstall(prog.program, 0).status(), Status::kVerifierReject);
  });
  kernel_.Run();
}

TEST_F(XokTest, SysNullCountsSyscalls) {
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] { kernel_.SysNull(3); });
  uint64_t before = machine_.counters().Get("xok.syscalls");  // env_alloc already counted
  kernel_.Run();
  EXPECT_EQ(machine_.counters().Get("xok.syscalls") - before, 3u);
}

TEST_F(XokTest, ExposedStructuresReadableWithoutSyscalls) {
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    uint64_t before = machine_.counters().Get("xok.syscalls");
    (void)kernel_.FreeFrameCount();
    (void)kernel_.Now();
    (void)kernel_.env(kernel_.current_id()).pt.entries();
    EXPECT_EQ(machine_.counters().Get("xok.syscalls"), before);
  });
  kernel_.Run();
}

TEST_F(XokTest, FramesSurviveEnvExitWhenShared) {
  hw::FrameId shared = hw::kInvalidFrame;
  EnvId child = kInvalidEnv;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    child = kernel_.CreateEnv(kernel_.current_id(), {Capability::Root()}, [&] {
      auto f = kernel_.SysFrameAlloc(0, {});
      ASSERT_TRUE(f.ok());
      shared = *f;
      machine_.mem().Data(shared)[0] = 0x99;
      // A second reference, as the buffer-cache registry would take.
      ASSERT_EQ(kernel_.SysFrameRef(shared, 0), Status::kOk);
    });
    EXPECT_TRUE(kernel_.SysWait(child).ok());
    // Child is gone but the frame (refcount 1 via the registry-style ref) survives.
    EXPECT_TRUE(machine_.mem().allocated(shared));
    EXPECT_EQ(machine_.mem().Data(shared)[0], 0x99);
  });
  kernel_.Run();
}

}  // namespace
}  // namespace exo::xok
