// Tests for the Xok exokernel: capabilities, environments, scheduling, memory
// protection, software regions, IPC, wakeup predicates, and packet filters.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hw/machine.h"
#include "sim/engine.h"
#include "udf/assembler.h"
#include "xok/capability.h"
#include "xok/kernel.h"

namespace exo::xok {
namespace {

class XokTest : public ::testing::Test {
 protected:
  XokTest() : machine_(&engine_, hw::MachineConfig{.mem_frames = 256}), kernel_(&machine_) {}

  sim::Engine engine_;
  hw::Machine machine_;
  XokKernel kernel_;
};

TEST(CapabilityTest, RootDominatesEverything) {
  Capability root = Capability::Root();
  EXPECT_TRUE(Dominates(root, {1, 2, 3}, true));
  EXPECT_TRUE(Dominates(root, {}, true));
}

TEST(CapabilityTest, PrefixDominance) {
  Capability user = Capability::For({kCapUsers, 100});
  EXPECT_TRUE(Dominates(user, {kCapUsers, 100}, true));
  EXPECT_TRUE(Dominates(user, {kCapUsers, 100, 7}, true));
  EXPECT_FALSE(Dominates(user, {kCapUsers, 101}, true));
  EXPECT_FALSE(Dominates(user, {kCapUsers}, true));  // shorter guard: no dominance
}

TEST(CapabilityTest, ReadOnlyCannotWrite) {
  Capability ro = Capability::For({kCapUsers, 5}, /*w=*/false);
  EXPECT_TRUE(Dominates(ro, {kCapUsers, 5, 1}, false));
  EXPECT_FALSE(Dominates(ro, {kCapUsers, 5, 1}, true));
}

TEST_F(XokTest, EnvRunsToCompletion) {
  int ran = 0;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.ChargeCpu(1000);
    ++ran;
  });
  kernel_.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(kernel_.alive_count(), 0u);
  EXPECT_GE(engine_.now(), 1000u);
}

TEST_F(XokTest, SysExitSetsCode) {
  EnvId id = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()},
                               [&] { kernel_.SysExit(42); });
  kernel_.Run();
  EXPECT_EQ(kernel_.env(id).state, EnvState::kZombie);
  EXPECT_EQ(kernel_.env(id).exit_code, 42);
  EXPECT_EQ(kernel_.ReapEnv(id), Status::kOk);
  EXPECT_FALSE(kernel_.EnvExists(id));
}

TEST_F(XokTest, WaitReapsChild) {
  int child_code = -1;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EnvId child = kernel_.CreateEnv(kernel_.current_id(), {Capability::Root()}, [&] {
      kernel_.ChargeCpu(5000);
      kernel_.SysExit(7);
    });
    auto r = kernel_.SysWait(child);
    ASSERT_TRUE(r.ok());
    child_code = *r;
    EXPECT_FALSE(kernel_.EnvExists(child));
  });
  kernel_.Run();
  EXPECT_EQ(child_code, 7);
}

TEST_F(XokTest, WaitOnNonChildDenied) {
  EnvId other = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {});
  Status got = Status::kOk;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()},
                    [&] { got = kernel_.SysWait(other).status(); });
  kernel_.Run();
  EXPECT_EQ(got, Status::kPermissionDenied);
}

TEST_F(XokTest, RoundRobinInterleavesAtQuantum) {
  // Two CPU-bound envs; each records the order of its slices.
  std::vector<int> order;
  const sim::Cycles q = machine_.cost().quantum;
  for (int i = 0; i < 2; ++i) {
    kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&, i] {
      for (int s = 0; s < 3; ++s) {
        order.push_back(i);
        kernel_.ChargeCpu(q);  // exactly one slice of work
      }
    });
  }
  kernel_.Run();
  // Strict alternation: 0,1,0,1,0,1.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST_F(XokTest, CriticalSectionDefersSliceEnd) {
  std::vector<int> order;
  const sim::Cycles q = machine_.cost().quantum;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.EnterCritical();
    order.push_back(0);
    kernel_.ChargeCpu(3 * q);  // would normally be preempted twice
    order.push_back(0);
    kernel_.ExitCritical();
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    order.push_back(1);
    kernel_.ChargeCpu(q / 2);
  });
  kernel_.Run();
  // Env 0 runs its whole critical section before env 1 ever runs.
  EXPECT_EQ(order, (std::vector<int>{0, 0, 1}));
}

TEST_F(XokTest, DirectedYieldHandsOffSlice) {
  std::vector<int> order;
  EnvId b = kInvalidEnv;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    order.push_back(0);
    kernel_.SysYield(b);  // hand the CPU to b specifically
    order.push_back(0);
  });
  // A decoy env between a and b in round-robin order.
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] { order.push_back(9); });
  b = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    order.push_back(1);
    kernel_.SysYield();
  });
  kernel_.Run();
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);  // b ran before the decoy despite queue order
}

TEST_F(XokTest, HostPredicateBlocksUntilTrue) {
  bool flag = false;
  std::vector<int> order;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    WakeupPredicate p;
    p.host = [&] { return flag; };
    kernel_.SysSleep(std::move(p));
    order.push_back(1);
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.ChargeCpu(10'000);
    order.push_back(0);
    flag = true;
  });
  kernel_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST_F(XokTest, UdfPredicateWatchesMemoryWindow) {
  // The predicate wakes the sleeper when the first word of a shared window becomes
  // nonzero — the real wakeup-predicate mechanism (Sec. 5.1).
  std::vector<uint8_t> window(8, 0);
  auto prog = udf::Assemble(R"(
    ldi r1, 0
    ld4 r2, r1, 0, meta
    ret r2
  )");
  ASSERT_TRUE(prog.ok);

  std::vector<int> order;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    WakeupPredicate p;
    p.program = prog.program;
    p.live_window = &window;
    kernel_.SysSleep(std::move(p));
    order.push_back(1);
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.ChargeCpu(50'000);
    order.push_back(0);
    window[0] = 1;
  });
  kernel_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST_F(XokTest, TimeBasedPredicateFiresOnIdleClock) {
  const sim::Cycles wake_at = 1'000'000;
  sim::Cycles woke = 0;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    WakeupPredicate p;
    p.host = [&] { return engine_.now() >= wake_at; };
    p.deadline = wake_at;
    kernel_.SysSleep(std::move(p));
    woke = engine_.now();
  });
  kernel_.Run();
  EXPECT_GE(woke, wake_at);
  EXPECT_LT(woke, wake_at + 100'000);  // deadline hint avoids gross overshoot
}

TEST_F(XokTest, WatchedPredicateSkipsEvalUntilRegionWrite) {
  // A predicate that declares its watched kernel objects is only re-evaluated
  // after a write to one of them; every other scheduling decision skips it.
  auto rid_r = kernel_.SysRegionCreate(8, {}, 0);
  ASSERT_TRUE(rid_r.ok());
  const RegionId rid = *rid_r;
  auto prog = udf::Assemble(R"(
    ldi r1, 0
    ld4 r2, r1, 0, meta
    ret r2
  )");
  ASSERT_TRUE(prog.ok);

  std::vector<int> order;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    WakeupPredicate p;
    p.program = prog.program;
    p.live_window = kernel_.RegionBytes(rid);
    p.watches.push_back(WatchSpec{WatchKind::kRegion, rid});
    kernel_.SysSleep(std::move(p));
    order.push_back(1);
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    // Each yield forces a scheduling decision; while the flag region is clean
    // every one after the first must skip the sleeper's predicate, not run it.
    for (int i = 0; i < 5; ++i) {
      kernel_.ChargeCpu(50'000);
      kernel_.SysYield();
    }
    order.push_back(0);
    const uint8_t one = 1;
    ASSERT_EQ(kernel_.SysRegionWrite(rid, 0, std::span<const uint8_t>(&one, 1), 0),
              Status::kOk);
  });
  uint64_t evals0 = machine_.counters().Get("xok.predicate_evals");
  uint64_t skips0 = machine_.counters().Get("xok.predicate_skips");
  kernel_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));  // write still wakes the sleeper
  uint64_t evals = machine_.counters().Get("xok.predicate_evals") - evals0;
  uint64_t skips = machine_.counters().Get("xok.predicate_skips") - skips0;
  EXPECT_GT(skips, 0u);
  // Dirty on block, dirty after the write: a handful of evals at most, and
  // strictly fewer than total blocked-env scheduling decisions.
  EXPECT_LT(evals, evals + skips);
  EXPECT_LE(evals, 3u);
}

TEST_F(XokTest, WatchedPredicateStillHonorsDeadline) {
  // Declared watches must not starve a predicate that also carries a deadline:
  // once now >= deadline the scheduler re-evaluates it even with no notify.
  auto rid_r = kernel_.SysRegionCreate(8, {}, 0);
  ASSERT_TRUE(rid_r.ok());
  const RegionId rid = *rid_r;

  const sim::Cycles wake_at = 500'000;
  sim::Cycles woke = 0;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    WakeupPredicate p;
    p.host = [&] { return engine_.now() >= wake_at; };
    p.deadline = wake_at;
    p.watches.push_back(WatchSpec{WatchKind::kRegion, rid});  // never written
    kernel_.SysSleep(std::move(p));
    woke = engine_.now();
  });
  kernel_.Run();
  EXPECT_GE(woke, wake_at);
  EXPECT_LT(woke, wake_at + 100'000);
}

TEST_F(XokTest, IpcWatchWakesReceiver) {
  // An IPC-watched predicate sleeps through unrelated work and wakes on the send.
  std::vector<int> order;
  EnvId receiver = kInvalidEnv;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    Env* self = kernel_.current();
    receiver = self->id;
    WakeupPredicate p;
    p.host = [self] { return !self->ipc_queue.empty(); };
    p.watches.push_back(WatchSpec{WatchKind::kIpc, receiver});
    kernel_.SysSleep(std::move(p));
    auto m = kernel_.SysIpcRecv();
    ASSERT_TRUE(m.ok());
    order.push_back(static_cast<int>(m->words[0]));
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.ChargeCpu(100'000);
    IpcMessage m;
    m.words[0] = 7;
    ASSERT_EQ(kernel_.SysIpcSend(receiver, m, 0), Status::kOk);
    kernel_.ChargeCpu(100'000);
  });
  kernel_.Run();
  EXPECT_EQ(order, (std::vector<int>{7}));
}

TEST_F(XokTest, FrameAllocationGuardsEnforced) {
  Status steal = Status::kOk;
  kernel_.CreateEnv(kInvalidEnv, {Capability::For({kCapUsers, 1})}, [&] {
    // Allocate a frame guarded by user 1's namespace.
    auto f = kernel_.SysFrameAlloc(0, {kCapUsers, 1, 99});
    ASSERT_TRUE(f.ok());
    // A second env owned by user 2 must not be able to free or map it.
    EnvId thief = kernel_.CreateEnv(kernel_.current_id(),
                                    {Capability::For({kCapUsers, 2})}, [&, f] {
      steal = kernel_.SysFrameFree(*f, 0);
    });
    EXPECT_TRUE(kernel_.SysWait(thief).ok());
    EXPECT_EQ(kernel_.SysFrameFree(*f, 0), Status::kOk);
  });
  kernel_.Run();
  EXPECT_EQ(steal, Status::kPermissionDenied);
}

TEST_F(XokTest, PageTableMappingAndAccess) {
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EnvId self = kernel_.current_id();
    auto f = kernel_.SysFrameAlloc(0, {});
    ASSERT_TRUE(f.ok());
    PtOp op;
    op.kind = PtOp::Kind::kInsert;
    op.vpage = 16;
    op.pte = {.frame = *f, .readable = true, .writable = true, .software_bits = 0};
    ASSERT_EQ(kernel_.SysPtUpdate(self, op, 0), Status::kOk);

    std::vector<uint8_t> data = {1, 2, 3, 4};
    ASSERT_EQ(kernel_.AccessUserMemory(self, 16 * 4096 + 100, data, /*write=*/true),
              Status::kOk);
    std::vector<uint8_t> back(4);
    ASSERT_EQ(kernel_.AccessUserMemory(self, 16 * 4096 + 100, back, /*write=*/false),
              Status::kOk);
    EXPECT_EQ(back, data);
  });
  kernel_.Run();
}

TEST_F(XokTest, ReadOnlyMappingFaultsOnWriteAndCowResolves) {
  int faults = 0;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EnvId self = kernel_.current_id();
    Env& e = kernel_.env(self);
    auto f = kernel_.SysFrameAlloc(0, {});
    ASSERT_TRUE(f.ok());
    std::memset(machine_.mem().Data(*f).data(), 0x77, hw::kPageSize);

    PtOp op;
    op.kind = PtOp::Kind::kInsert;
    op.vpage = 3;
    op.pte = {.frame = *f, .readable = true, .writable = false,
              .software_bits = kSwBitCow};
    ASSERT_EQ(kernel_.SysPtUpdate(self, op, 0), Status::kOk);

    // Install a libOS-style COW fault handler: copy to a fresh frame, remap writable.
    e.on_page_fault = [&, self](VPage vp, bool write) {
      if (!write) {
        return false;
      }
      const Pte* old = kernel_.env(self).pt.Lookup(vp);
      if (old == nullptr || (old->software_bits & kSwBitCow) == 0) {
        return false;
      }
      ++faults;
      auto nf = kernel_.SysFrameAlloc(0, {});
      if (!nf.ok()) {
        return false;
      }
      machine_.mem().CopyFrame(*nf, old->frame);
      machine_.Charge(machine_.cost().CopyCost(hw::kPageSize));
      PtOp fix;
      fix.kind = PtOp::Kind::kInsert;
      fix.vpage = vp;
      fix.pte = {.frame = *nf, .readable = true, .writable = true, .software_bits = 0};
      return kernel_.SysPtUpdate(self, fix, 0) == Status::kOk;
    };

    std::vector<uint8_t> data = {0xaa};
    ASSERT_EQ(kernel_.AccessUserMemory(self, 3 * 4096, data, /*write=*/true), Status::kOk);
    // Original frame is untouched; new mapping has the write.
    EXPECT_EQ(machine_.mem().Data(*f)[0], 0x77);
    std::vector<uint8_t> back(1);
    ASSERT_EQ(kernel_.AccessUserMemory(self, 3 * 4096, back, /*write=*/false), Status::kOk);
    EXPECT_EQ(back[0], 0xaa);
  });
  kernel_.Run();
  EXPECT_EQ(faults, 1);
}

TEST_F(XokTest, BatchedPtUpdatesCostLessThanSingles) {
  auto run = [&](bool batched) {
    sim::Engine engine;
    hw::Machine m(&engine, hw::MachineConfig{.mem_frames = 256});
    XokKernel k(&m);
    k.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
      EnvId self = k.current_id();
      std::vector<PtOp> ops;
      for (uint32_t i = 0; i < 64; ++i) {
        auto f = k.SysFrameAlloc(0, {});
        ASSERT_TRUE(f.ok());
        PtOp op;
        op.kind = PtOp::Kind::kInsert;
        op.vpage = i;
        op.pte = {.frame = *f, .readable = true, .writable = true, .software_bits = 0};
        ops.push_back(op);
      }
      sim::Cycles before = engine.now();
      if (batched) {
        ASSERT_EQ(k.SysPtBatch(self, ops, 0), Status::kOk);
      } else {
        for (const auto& op : ops) {
          ASSERT_EQ(k.SysPtUpdate(self, op, 0), Status::kOk);
        }
      }
      m.counters().Add(batched ? "t.batched" : "t.single", engine.now() - before);
    });
    k.Run();
    return m.counters().Get(batched ? "t.batched" : "t.single");
  };
  EXPECT_LT(run(true) * 2, run(false));
}

TEST_F(XokTest, SoftwareRegionProtectsSubPageState) {
  Status intruder = Status::kOk;
  kernel_.CreateEnv(kInvalidEnv, {Capability::For({kCapUsers, 1})}, [&] {
    auto rid = kernel_.SysRegionCreate(128, {kCapUsers, 1, 5}, 0);
    ASSERT_TRUE(rid.ok());
    std::vector<uint8_t> msg = {'h', 'i'};
    ASSERT_EQ(kernel_.SysRegionWrite(*rid, 10, msg, 0), Status::kOk);

    std::vector<uint8_t> out(2);
    ASSERT_EQ(kernel_.SysRegionRead(*rid, 10, out, 0), Status::kOk);
    EXPECT_EQ(out, msg);

    EnvId other = kernel_.CreateEnv(kernel_.current_id(),
                                    {Capability::For({kCapUsers, 2})}, [&, rid] {
      std::vector<uint8_t> evil = {0, 0};
      intruder = kernel_.SysRegionWrite(*rid, 10, evil, 0);
    });
    EXPECT_TRUE(kernel_.SysWait(other).ok());
    // Out-of-bounds write rejected too.
    EXPECT_EQ(kernel_.SysRegionWrite(*rid, 127, msg, 0), Status::kInvalidArgument);
  });
  kernel_.Run();
  EXPECT_EQ(intruder, Status::kPermissionDenied);
}

TEST_F(XokTest, IpcDeliversInOrder) {
  std::vector<uint64_t> got;
  EnvId receiver = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (int i = 0; i < 3;) {
      auto m = kernel_.SysIpcRecv();
      if (m.ok()) {
        got.push_back(m->words[0]);
        ++i;
      } else {
        kernel_.SysYield();
      }
    }
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (uint64_t i = 1; i <= 3; ++i) {
      IpcMessage m;
      m.words[0] = i * 10;
      EXPECT_EQ(kernel_.SysIpcSend(receiver, m, 0), Status::kOk);
    }
  });
  kernel_.Run();
  EXPECT_EQ(got, (std::vector<uint64_t>{10, 20, 30}));
}

TEST_F(XokTest, PacketFilterClaimsMatchingPackets) {
  // Filter: claim packets whose first byte equals 0x42.
  auto prog = udf::Assemble(R"(
    ldi r1, 0
    ld1 r2, r1, 0, meta
    ldi r3, 0x42
    ceq r4, r2, r3
    ret r4
  )");
  ASSERT_TRUE(prog.ok);

  // Wire a peer NIC into the machine's NIC 0.
  hw::Nic peer(99);
  hw::Link link(&engine_, 100.0, 10.0, 200);
  link.Connect(&peer, &machine_.nic(0));

  std::vector<uint8_t> first;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    auto fid = kernel_.SysFilterInstall(prog.program, 0);
    ASSERT_TRUE(fid.ok());
    peer.Transmit({.bytes = {0x41, 1}});  // not ours
    peer.Transmit({.bytes = {0x42, 2}});  // ours
    WakeupPredicate p;
    p.host = [&, fid] { return kernel_.Filter(*fid)->delivered > 0; };
    kernel_.SysSleep(std::move(p));
    auto pkt = kernel_.SysRingConsume(*fid, 0);
    ASSERT_TRUE(pkt.ok());
    first = pkt->bytes;
    EXPECT_EQ(kernel_.SysRingConsume(*fid, 0).status(), Status::kWouldBlock);
  });
  kernel_.Run();
  EXPECT_EQ(first, (std::vector<uint8_t>{0x42, 2}));
  EXPECT_EQ(machine_.counters().Get("xok.packets_unclaimed"), 1u);
}

// A filter that claims frames whose destination port (offset 11, 2 bytes)
// matches — loads only immovable offsets within the 16-byte flow key, so the
// demux flow cache may memoize its verdicts.
udf::AssembleResult CacheablePortFilter(unsigned port) {
  return udf::Assemble("ld2 r1, r0, 11, meta\nldi r2, " + std::to_string(port) +
                       "\nceq r3, r1, r2\nret r3\n");
}

std::vector<uint8_t> FrameForPort(unsigned port) {
  std::vector<uint8_t> frame(16, 0);
  frame[11] = static_cast<uint8_t>(port & 0xff);
  frame[12] = static_cast<uint8_t>(port >> 8);
  return frame;
}

TEST_F(XokTest, DemuxFlowCacheHitsAfterFirstPacket) {
  auto prog = CacheablePortFilter(80);
  ASSERT_TRUE(prog.ok);
  hw::Nic peer(99);
  hw::Link link(&engine_, 100.0, 10.0, 200);
  link.Connect(&peer, &machine_.nic(0));
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    auto fid = kernel_.SysFilterInstall(prog.program, 0);
    ASSERT_TRUE(fid.ok());
    peer.Transmit({.bytes = FrameForPort(80)});
    peer.Transmit({.bytes = FrameForPort(80)});
    WakeupPredicate p;
    p.host = [&, fid] { return kernel_.Filter(*fid)->delivered >= 2; };
    kernel_.SysSleep(std::move(p));
    EXPECT_TRUE(kernel_.SysRingConsume(*fid, 0).ok());
    EXPECT_TRUE(kernel_.SysRingConsume(*fid, 0).ok());
  });
  kernel_.Run();
  EXPECT_EQ(machine_.counters().Get("xok.demux_misses"), 1u);
  EXPECT_EQ(machine_.counters().Get("xok.demux_hits"), 1u);
  EXPECT_EQ(kernel_.flow_cache_size(), 1u);
}

TEST_F(XokTest, DemuxFlowCacheInvalidatedOnInstallAndRemove) {
  auto p80 = CacheablePortFilter(80);
  auto p81 = CacheablePortFilter(81);
  ASSERT_TRUE(p80.ok && p81.ok);
  hw::Nic peer(99);
  hw::Link link(&engine_, 100.0, 10.0, 200);
  link.Connect(&peer, &machine_.nic(0));
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    auto fid = kernel_.SysFilterInstall(p80.program, 0);
    ASSERT_TRUE(fid.ok());
    peer.Transmit({.bytes = FrameForPort(80)});
    WakeupPredicate p;
    p.host = [&, fid] { return kernel_.Filter(*fid)->delivered >= 1; };
    kernel_.SysSleep(std::move(p));
    EXPECT_EQ(kernel_.flow_cache_size(), 1u);
    // Any filter-set mutation drops every memoized verdict: a new filter could
    // legitimately claim a flow an old entry would have short-circuited past.
    auto fid2 = kernel_.SysFilterInstall(p81.program, 0);
    ASSERT_TRUE(fid2.ok());
    EXPECT_EQ(kernel_.flow_cache_size(), 0u);
    // Re-learn the flow, then remove the claiming filter: cache drops again.
    peer.Transmit({.bytes = FrameForPort(80)});
    WakeupPredicate p2;
    p2.host = [&, fid] { return kernel_.Filter(*fid)->delivered >= 2; };
    kernel_.SysSleep(std::move(p2));
    EXPECT_EQ(kernel_.flow_cache_size(), 1u);
    EXPECT_EQ(kernel_.SysFilterRemove(*fid, 0), Status::kOk);
    EXPECT_EQ(kernel_.flow_cache_size(), 0u);
  });
  kernel_.Run();
  EXPECT_EQ(kernel_.flow_cache_size(), 0u);
}

TEST_F(XokTest, DemuxFlowCacheInvalidatedOnEnvTeardown) {
  auto prog = CacheablePortFilter(80);
  ASSERT_TRUE(prog.ok);
  hw::Nic peer(99);
  hw::Link link(&engine_, 100.0, 10.0, 200);
  link.Connect(&peer, &machine_.nic(0));
  EnvId id = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    auto fid = kernel_.SysFilterInstall(prog.program, 0);
    ASSERT_TRUE(fid.ok());
    peer.Transmit({.bytes = FrameForPort(80)});
    WakeupPredicate p;
    p.host = [&, fid] { return kernel_.Filter(*fid)->delivered >= 1; };
    kernel_.SysSleep(std::move(p));
    EXPECT_EQ(kernel_.flow_cache_size(), 1u);
    // Env exits here; ReapEnv tears down its filters and must drop the cache.
  });
  kernel_.Run();
  EXPECT_EQ(kernel_.flow_cache_size(), 1u);  // zombie still owns its filter
  EXPECT_EQ(kernel_.ReapEnv(id), Status::kOk);
  EXPECT_EQ(kernel_.flow_cache_size(), 0u);
  EXPECT_TRUE(kernel_.CheckInvariants().empty()) << kernel_.CheckInvariants();
}

TEST_F(XokTest, DemuxNonCacheableProgramIsNeverMemoized) {
  // `len` consults frame length, which lives outside the 16-byte flow key —
  // two frames with identical prefixes could demux differently, so the kernel
  // must keep walking programs for this filter's flows.
  auto prog = udf::Assemble("len r1, meta\nldi r2, 16\nceq r3, r1, r2\nret r3\n");
  ASSERT_TRUE(prog.ok);
  hw::Nic peer(99);
  hw::Link link(&engine_, 100.0, 10.0, 200);
  link.Connect(&peer, &machine_.nic(0));
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    auto fid = kernel_.SysFilterInstall(prog.program, 0);
    ASSERT_TRUE(fid.ok());
    peer.Transmit({.bytes = FrameForPort(80)});
    peer.Transmit({.bytes = FrameForPort(80)});
    WakeupPredicate p;
    p.host = [&, fid] { return kernel_.Filter(*fid)->delivered >= 2; };
    kernel_.SysSleep(std::move(p));
  });
  kernel_.Run();
  EXPECT_EQ(kernel_.flow_cache_size(), 0u);
  EXPECT_EQ(machine_.counters().Get("xok.demux_hits"), 0u);
  EXPECT_EQ(machine_.counters().Get("xok.demux_misses"), 2u);
}

TEST_F(XokTest, DemuxNonCacheableEarlierFilterBlocksMemoization) {
  // Filter 1 (dispatched first) keys on frame length — outside the flow key —
  // and rejects; filter 2 is cacheable and claims. Memoizing flow->filter2
  // would be unsound: a longer frame with the same 16-byte prefix belongs to
  // filter 1, so the kernel must not cache past a non-cacheable program.
  auto len_prog = udf::Assemble("len r1, meta\nldi r2, 999\nceq r3, r1, r2\nret r3\n");
  auto port_prog = CacheablePortFilter(80);
  ASSERT_TRUE(len_prog.ok && port_prog.ok);
  hw::Nic peer(99);
  hw::Link link(&engine_, 100.0, 10.0, 200);
  link.Connect(&peer, &machine_.nic(0));
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    auto f1 = kernel_.SysFilterInstall(len_prog.program, 0);
    auto f2 = kernel_.SysFilterInstall(port_prog.program, 0);
    ASSERT_TRUE(f1.ok() && f2.ok());
    peer.Transmit({.bytes = FrameForPort(80)});
    peer.Transmit({.bytes = FrameForPort(80)});
    WakeupPredicate p;
    p.host = [&, f2] { return kernel_.Filter(*f2)->delivered >= 2; };
    kernel_.SysSleep(std::move(p));
  });
  kernel_.Run();
  EXPECT_EQ(kernel_.flow_cache_size(), 0u);
  EXPECT_EQ(machine_.counters().Get("xok.demux_hits"), 0u);
  EXPECT_EQ(machine_.counters().Get("xok.demux_misses"), 2u);
}

TEST_F(XokTest, DemuxCacheOffCountsNothingAndStillDelivers) {
  auto prog = CacheablePortFilter(80);
  ASSERT_TRUE(prog.ok);
  kernel_.SetDemuxCache(false);
  hw::Nic peer(99);
  hw::Link link(&engine_, 100.0, 10.0, 200);
  link.Connect(&peer, &machine_.nic(0));
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    auto fid = kernel_.SysFilterInstall(prog.program, 0);
    ASSERT_TRUE(fid.ok());
    peer.Transmit({.bytes = FrameForPort(80)});
    peer.Transmit({.bytes = FrameForPort(80)});
    WakeupPredicate p;
    p.host = [&, fid] { return kernel_.Filter(*fid)->delivered >= 2; };
    kernel_.SysSleep(std::move(p));
  });
  kernel_.Run();
  EXPECT_EQ(kernel_.flow_cache_size(), 0u);
  EXPECT_EQ(machine_.counters().Get("xok.demux_hits"), 0u);
  EXPECT_EQ(machine_.counters().Get("xok.demux_misses"), 0u);
}

TEST_F(XokTest, FilterInstallRejectsNondeterministicProgram) {
  auto prog = udf::Assemble("time r1\nret r1\n");
  ASSERT_TRUE(prog.ok);
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EXPECT_EQ(kernel_.SysFilterInstall(prog.program, 0).status(), Status::kVerifierReject);
  });
  kernel_.Run();
}

TEST_F(XokTest, SysNullCountsSyscalls) {
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] { kernel_.SysNull(3); });
  uint64_t before = machine_.counters().Get("xok.syscalls");  // env_alloc already counted
  kernel_.Run();
  EXPECT_EQ(machine_.counters().Get("xok.syscalls") - before, 3u);
}

TEST_F(XokTest, ExposedStructuresReadableWithoutSyscalls) {
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    uint64_t before = machine_.counters().Get("xok.syscalls");
    (void)kernel_.FreeFrameCount();
    (void)kernel_.Now();
    (void)kernel_.env(kernel_.current_id()).pt.entries();
    EXPECT_EQ(machine_.counters().Get("xok.syscalls"), before);
  });
  kernel_.Run();
}

TEST_F(XokTest, FramesSurviveEnvExitWhenShared) {
  hw::FrameId shared = hw::kInvalidFrame;
  EnvId child = kInvalidEnv;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    child = kernel_.CreateEnv(kernel_.current_id(), {Capability::Root()}, [&] {
      auto f = kernel_.SysFrameAlloc(0, {});
      ASSERT_TRUE(f.ok());
      shared = *f;
      machine_.mem().Data(shared)[0] = 0x99;
      // A second reference, as the buffer-cache registry would take.
      ASSERT_EQ(kernel_.SysFrameRef(shared, 0), Status::kOk);
    });
    EXPECT_TRUE(kernel_.SysWait(child).ok());
    // Child is gone but the frame (refcount 1 via the registry-style ref) survives.
    EXPECT_TRUE(machine_.mem().allocated(shared));
    EXPECT_EQ(machine_.mem().Data(shared)[0], 0x99);
  });
  kernel_.Run();
}

// ---- Quotas, revocation, and the abort protocol ----

TEST(CapabilityTest, EdgeCases) {
  // A zero-length capability name is a prefix of everything (root-like).
  Capability empty = Capability{CapName{}, true};
  EXPECT_TRUE(Dominates(empty, {}, true));
  EXPECT_TRUE(Dominates(empty, {1, 2, 3}, true));
  // A zero-length guard is reachable only through a zero-length capability name.
  Capability one = Capability::For({1});
  EXPECT_FALSE(Dominates(one, {}, true));
  // Self-dominance: a name dominates exactly itself.
  EXPECT_TRUE(Dominates(one, {1}, true));
  EXPECT_TRUE(Dominates(one, {1}, false));
  // Write-bit downgrade survives prefix extension: a read-only root-like
  // capability reads everything and writes nothing.
  Capability ro = Capability{CapName{}, /*write=*/false};
  EXPECT_TRUE(Dominates(ro, {5, 6}, false));
  EXPECT_FALSE(Dominates(ro, {5, 6}, true));
}

TEST_F(XokTest, QuotaCapsAllocationsAndLockedSelfRaiseDenied) {
  Status third = Status::kOk;
  Status raise = Status::kOk;
  bool refree_ok = false;
  EnvId id = kernel_.CreateEnv(kInvalidEnv, {Capability::For({kCapUsers, 1})}, [&] {
    auto a = kernel_.SysFrameAlloc(0, {kCapUsers, 1, 1});
    auto b = kernel_.SysFrameAlloc(0, {kCapUsers, 1, 2});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    third = kernel_.SysFrameAlloc(0, {kCapUsers, 1, 3}).status();
    ResourceQuota lift;  // default-unlimited
    raise = kernel_.SysSetQuota(kernel_.current_id(), lift, kCredAny);
    // Freeing restores headroom under the same quota.
    ASSERT_EQ(kernel_.SysFrameFree(*a, 0), Status::kOk);
    refree_ok = kernel_.SysFrameAlloc(0, {kCapUsers, 1, 4}).ok();
  });
  ResourceQuota q;
  q.frames = 2;
  q.locked = true;
  ASSERT_EQ(kernel_.SysSetQuota(id, q, kCredAny), Status::kOk);  // host: always allowed
  kernel_.Run();
  EXPECT_EQ(third, Status::kQuotaExceeded);
  EXPECT_EQ(raise, Status::kPermissionDenied);  // a limited env may not lift its own cap
  EXPECT_TRUE(refree_ok);
  EXPECT_EQ(kernel_.CheckInvariants(), "");
}

TEST_F(XokTest, IpcFloodBoundedByReceiverQuota) {
  int drained = 0;
  EnvId receiver = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    while (drained < 4) {
      if (kernel_.SysIpcRecv().ok()) {
        ++drained;
      } else {
        kernel_.SysYield();
      }
    }
  });
  ResourceQuota q;
  q.ipc_depth = 4;
  ASSERT_EQ(kernel_.SysSetQuota(receiver, q, kCredAny), Status::kOk);
  int accepted = 0;
  int rejected = 0;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (int i = 0; i < 10; ++i) {
      IpcMessage m;
      m.words[0] = static_cast<uint64_t>(i);
      Status s = kernel_.SysIpcSend(receiver, m, 0);
      if (s == Status::kOk) {
        ++accepted;
      } else {
        EXPECT_EQ(s, Status::kWouldBlock);  // bounded queue: flood hurts the sender
        ++rejected;
      }
    }
  });
  kernel_.Run();
  EXPECT_EQ(accepted + rejected, 10);
  EXPECT_GE(rejected, 2);  // receiver stops draining after 4: the tail must bounce
  EXPECT_EQ(machine_.counters().Get("xok.rejected"),
            static_cast<uint64_t>(rejected));
  EXPECT_EQ(drained, 4);
}

TEST_F(XokTest, RevocationUpcallShedsToAllowance) {
  bool done = false;
  uint32_t usage_after = 999;
  EnvId worker = kernel_.CreateEnv(
      kInvalidEnv, {Capability::For({kCapUsers, 3})}, [&] {
        for (uint16_t i = 0; i < 6; ++i) {
          ASSERT_TRUE(kernel_.SysFrameAlloc(0, {kCapUsers, 3, i}).ok());
        }
        WakeupPredicate p;
        p.host = [&] { return done; };
        kernel_.SysSleep(std::move(p));
      });
  // A cooperative libOS: the upcall sheds direct refs until within allowance.
  kernel_.env(worker).on_revoke = [this, worker](const RevocationRequest& req) {
    Env& self = kernel_.env(worker);
    while (self.usage.frames > req.allowed && !self.frame_refs.empty()) {
      if (kernel_.SysFrameFree(self.frame_refs.begin()->first, kCredAny) != Status::kOk) {
        break;
      }
    }
  };
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EXPECT_EQ(kernel_.SysRevoke(worker, RevokeResource::kFrames, 2, 1'000'000, 0),
              Status::kOk);
    usage_after = kernel_.env(worker).usage.frames;  // shed synchronously by the upcall
    EXPECT_FALSE(kernel_.env(worker).pending_revoke.has_value());
    done = true;
  });
  kernel_.Run();
  EXPECT_EQ(usage_after, 2u);
  EXPECT_EQ(machine_.counters().Get("xok.revocations_complied"), 1u);
  EXPECT_EQ(machine_.counters().Get("xok.env_aborts"), 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), "");
}

TEST_F(XokTest, IgnoredRevocationAbortsAndReclaimsEverything) {
  const uint32_t free_before = kernel_.FreeFrameCount();
  EnvId hog = kernel_.CreateEnv(kInvalidEnv, {Capability::For({kCapUsers, 4})}, [&] {
    for (int i = 0; i < 6; ++i) {
      // Empty guard: no credential here dominates it, so only abort can reclaim.
      ASSERT_TRUE(kernel_.SysFrameAlloc(0, {}).ok());
    }
    for (;;) {
      kernel_.ChargeCpu(5'000);  // ignores the request forever
    }
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EXPECT_EQ(kernel_.SysRevoke(hog, RevokeResource::kFrames, 1, 100'000, 0),
              Status::kOk);
  });
  kernel_.Run();  // must terminate: the kernel repossesses by aborting the hog
  ASSERT_TRUE(kernel_.EnvExists(hog));
  EXPECT_EQ(kernel_.env(hog).state, EnvState::kZombie);
  EXPECT_STREQ(kernel_.env(hog).abort_reason, "revocation deadline passed");
  EXPECT_EQ(machine_.counters().Get("xok.env_aborts"), 1u);
  EXPECT_EQ(kernel_.FreeFrameCount(), free_before);  // abort reclaimed all six frames
  EXPECT_EQ(kernel_.ReapEnv(hog), Status::kOk);
  EXPECT_EQ(kernel_.CheckInvariants(), "");
}

TEST_F(XokTest, OrphanedChildAutoReapedLeakFree) {
  const uint32_t free_before = kernel_.FreeFrameCount();
  EnvId child = kInvalidEnv;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    child = kernel_.CreateEnv(kernel_.current_id(), {Capability::Root()}, [&] {
      auto f = kernel_.SysFrameAlloc(0, {});
      ASSERT_TRUE(f.ok());
      kernel_.ChargeCpu(50'000);  // outlive the parent
      EXPECT_EQ(kernel_.SysFrameFree(*f, 0), Status::kOk);
    });
    // Parent exits immediately: the child becomes an orphan with no reaper.
  });
  kernel_.Run();
  EXPECT_FALSE(kernel_.EnvExists(child));  // auto-reaped; nobody needed to wait()
  EXPECT_GE(machine_.counters().Get("xok.orphans_reaped"), 1u);
  EXPECT_EQ(kernel_.FreeFrameCount(), free_before);
  EXPECT_EQ(kernel_.CheckInvariants(), "");
}

// ---- Syscall-surface hardening ----

TEST_F(XokTest, FreeingMappedOnlyFrameRefusedNotStolen) {
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EnvId self = kernel_.current_id();
    auto f = kernel_.SysFrameAlloc(0, {});
    ASSERT_TRUE(f.ok());
    PtOp op;
    op.kind = PtOp::Kind::kInsert;
    op.vpage = 5;
    op.pte = {.frame = *f, .readable = true, .writable = true, .software_bits = 0};
    ASSERT_EQ(kernel_.SysPtUpdate(self, op, 0), Status::kOk);
    ASSERT_EQ(kernel_.SysFrameFree(*f, 0), Status::kOk);  // drops the direct ref
    EXPECT_TRUE(machine_.mem().allocated(*f));             // the mapping still holds it
    // The only remaining reference belongs to the mapping; freeing again must
    // refuse rather than steal it out from under the page table (refcount
    // underflow found by the syscall fuzzer).
    EXPECT_EQ(kernel_.SysFrameFree(*f, 0), Status::kBusy);
    EXPECT_EQ(kernel_.CheckInvariants(), "");
    PtOp rm;
    rm.kind = PtOp::Kind::kRemove;
    rm.vpage = 5;
    ASSERT_EQ(kernel_.SysPtUpdate(self, rm, 0), Status::kOk);
    EXPECT_FALSE(machine_.mem().allocated(*f));  // unmapping released the last ref
    EXPECT_EQ(kernel_.SysFrameFree(*f, 0), Status::kNotFound);  // guard retired with it
  });
  kernel_.Run();
}

TEST_F(XokTest, RemappingSameFrameKeepsItAlive) {
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    EnvId self = kernel_.current_id();
    auto f = kernel_.SysFrameAlloc(0, {});
    ASSERT_TRUE(f.ok());
    PtOp op;
    op.kind = PtOp::Kind::kInsert;
    op.vpage = 7;
    op.pte = {.frame = *f, .readable = true, .writable = false, .software_bits = 0};
    ASSERT_EQ(kernel_.SysPtUpdate(self, op, 0), Status::kOk);
    // Flip protection by re-inserting the same frame at the same vpage: the swap
    // must take the new reference before dropping the old one.
    op.pte.writable = true;
    ASSERT_EQ(kernel_.SysPtUpdate(self, op, 0), Status::kOk);
    EXPECT_TRUE(machine_.mem().allocated(*f));
    EXPECT_EQ(kernel_.CheckInvariants(), "");
    ASSERT_EQ(kernel_.SysFrameFree(*f, 0), Status::kOk);  // direct ref
    EXPECT_TRUE(machine_.mem().allocated(*f));  // exactly one mapping ref remains
    PtOp rm;
    rm.kind = PtOp::Kind::kRemove;
    rm.vpage = 7;
    ASSERT_EQ(kernel_.SysPtUpdate(self, rm, 0), Status::kOk);
    EXPECT_FALSE(machine_.mem().allocated(*f));
  });
  kernel_.Run();
}

TEST_F(XokTest, MalformedArgumentsRejectedNotFatal) {
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    // Frame ids beyond physical memory.
    EXPECT_EQ(kernel_.SysFrameFree(1u << 30, kCredAny), Status::kInvalidArgument);
    EXPECT_EQ(kernel_.SysFrameRef(1u << 30, kCredAny), Status::kInvalidArgument);
    // Oversized guard names.
    EXPECT_EQ(kernel_.SysFrameAlloc(0, CapName(kMaxGuardName + 1, 1)).status(),
              Status::kInvalidArgument);
    // Nonexistent environments.
    ResourceQuota q;
    EXPECT_EQ(kernel_.SysSetQuota(777'777, q, kCredAny), Status::kNotFound);
    EXPECT_EQ(kernel_.SysRevoke(777'777, RevokeResource::kFrames, 0, 1'000, kCredAny),
              Status::kNotFound);
    EXPECT_EQ(kernel_.SysIpcSend(777'777, IpcMessage{}, kCredAny), Status::kNotFound);
    std::vector<uint8_t> buf(4);
    EXPECT_EQ(kernel_.AccessUserMemory(777'777, 0, buf, /*write=*/false),
              Status::kNotFound);
    // Oversized filter programs.
    EXPECT_EQ(kernel_.SysFilterInstall(udf::Program(kMaxFilterProgramInsns + 1,
                                                    udf::Insn{}),
                                       kCredAny)
                  .status(),
              Status::kInvalidArgument);
    // Oversized or misdirected NIC transmits never reach the DMA engine.
    EXPECT_EQ(kernel_.SysNicTransmit(
                  0, {.bytes = std::vector<uint8_t>(hw::kMaxFrameBytes + 1, 0xee)}),
              Status::kInvalidArgument);
    EXPECT_EQ(kernel_.SysNicTransmit(500, {.bytes = {1, 2, 3}}),
              Status::kInvalidArgument);
    EXPECT_EQ(kernel_.CheckInvariants(), "");
  });
  kernel_.Run();
}

TEST_F(XokTest, OutOfRangeCredIndexRejected) {
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    auto f = kernel_.SysFrameAlloc(0, {kCapUsers, 9});
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(kernel_.SysFrameFree(*f, 99), Status::kInvalidArgument);
    EXPECT_EQ(kernel_.SysFrameFree(*f, -7), Status::kInvalidArgument);
    EXPECT_EQ(kernel_.SysFrameFree(*f, kCredAny), Status::kOk);
  });
  kernel_.Run();
}

TEST_F(XokTest, UnverifiableSleepPredicateDegradesSafely) {
  auto bad = udf::Assemble("time r1\nret r1\n");  // nondeterministic: verifier rejects
  ASSERT_TRUE(bad.ok);
  bool woke = false;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    WakeupPredicate p;
    p.deadline = 1'000'000'000;  // never reached if the degrade works
    p.program = bad.program;
    kernel_.SysSleep(std::move(p));
    woke = true;
  });
  kernel_.Run();
  EXPECT_TRUE(woke);  // degraded to an immediately-runnable sleep, not evaluated
  EXPECT_LT(kernel_.Now(), 1'000'000'000u);
}

// ---- Misbehavior watchdogs ----

TEST_F(XokTest, CriticalSectionUnderflowAbortsOnlyTheOffender) {
  bool other_ran = false;
  EnvId bad = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.ExitCritical();  // never entered; previously crashed the host
    ADD_FAILURE() << "abort must not return";
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] { other_ran = true; });
  kernel_.Run();
  ASSERT_TRUE(kernel_.EnvExists(bad));
  EXPECT_EQ(kernel_.env(bad).state, EnvState::kZombie);
  EXPECT_STREQ(kernel_.env(bad).abort_reason, "critical-section underflow");
  EXPECT_TRUE(other_ran);
}

TEST_F(XokTest, RunawayCriticalSectionRepossessed) {
  const sim::Cycles q = machine_.cost().quantum;
  bool other_ran = false;
  EnvId hog = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    kernel_.EnterCritical();
    for (;;) {
      kernel_.ChargeCpu(q);  // defers every slice end, forever
    }
  });
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] { other_ran = true; });
  kernel_.Run();
  EXPECT_STREQ(kernel_.env(hog).abort_reason, "runaway critical section");
  EXPECT_TRUE(other_ran);  // the CPU came back
}

TEST_F(XokTest, CriticalDepthOverflowAborts) {
  EnvId bad = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (;;) {
      kernel_.EnterCritical();  // never exits: unbounded nesting
    }
  });
  kernel_.Run();
  EXPECT_STREQ(kernel_.env(bad).abort_reason, "critical-section depth overflow");
}

TEST_F(XokTest, DeadlockDiagnosedInsteadOfHanging) {
  kernel_.SetDeadlockBound(1'000'000);
  EnvId stuck = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    WakeupPredicate p;
    p.host = [] { return false; };  // can never become true
    kernel_.SysSleep(std::move(p));
  });
  kernel_.Run();  // must return with a diagnostic, not spin the host forever
  EXPECT_NE(kernel_.deadlock_report(), "");
  ASSERT_TRUE(kernel_.EnvExists(stuck));
  EXPECT_STREQ(kernel_.env(stuck).abort_reason,
               "deadlock: wakeup predicate can never become true");
  EXPECT_EQ(kernel_.CheckInvariants(), "");
}

// ---- Stride scheduling (proportional-share CPU isolation) ----

TEST_F(XokTest, StrideFairnessProportionalToTickets) {
  // Three CPU-bound envs with 3:2:1 tickets; each counts the quanta it
  // consumes until a common deadline. Stride guarantees the counts track the
  // ticket ratio to within one quantum over the run.
  const sim::Cycles q = machine_.cost().quantum;
  const sim::Cycles deadline = 60 * q;
  const uint32_t tickets[3] = {300, 200, 100};
  int counts[3] = {0, 0, 0};
  EnvId ids[3];
  for (int i = 0; i < 3; ++i) {
    ids[i] = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&, i] {
      while (kernel_.Now() < deadline) {
        ++counts[i];
        kernel_.ChargeCpu(q);
      }
    });
    ResourceQuota quota;
    quota.cpu_tickets = tickets[i];
    ASSERT_EQ(kernel_.SysSetQuota(ids[i], quota, kCredAny), Status::kOk);
  }
  kernel_.Run();
  const double total = counts[0] + counts[1] + counts[2];
  ASSERT_GT(total, 30);
  EXPECT_NEAR(counts[0], total * 3 / 6, 1.0) << counts[0] << ":" << counts[1] << ":" << counts[2];
  EXPECT_NEAR(counts[1], total * 2 / 6, 1.0) << counts[0] << ":" << counts[1] << ":" << counts[2];
  EXPECT_NEAR(counts[2], total * 1 / 6, 1.0) << counts[0] << ":" << counts[1] << ":" << counts[2];
  EXPECT_GT(machine_.counters().Get("sched.stride_picks"), 0u);
  EXPECT_EQ(kernel_.CheckInvariants(), "");
}

TEST_F(XokTest, StrideScheduleIsDeterministic) {
  // The same workload on two fresh machines produces the identical slice-by-
  // slice schedule: stride has no randomness, and ties break on a counter.
  auto run_once = [](std::vector<int>* order) {
    sim::Engine engine;
    hw::Machine machine(&engine, hw::MachineConfig{.mem_frames = 256});
    XokKernel kernel(&machine);
    const sim::Cycles q = machine.cost().quantum;
    const sim::Cycles deadline = 40 * q;
    const uint32_t tickets[3] = {500, 200, 100};
    for (int i = 0; i < 3; ++i) {
      EnvId id = kernel.CreateEnv(kInvalidEnv, {Capability::Root()}, [&kernel, order, i, q, deadline] {
        while (kernel.Now() < deadline) {
          order->push_back(i);
          kernel.ChargeCpu(q);
        }
      });
      ResourceQuota quota;
      quota.cpu_tickets = tickets[i];
      ASSERT_EQ(kernel.SysSetQuota(id, quota, kCredAny), Status::kOk);
    }
    kernel.Run();
  };
  std::vector<int> first, second;
  run_once(&first);
  run_once(&second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_F(XokTest, ZeroTicketEnvStillProgressesViaFloor) {
  // Tickets of zero mean best-effort, not starvation: the one-ticket floor
  // still schedules the env, just rarely.
  const sim::Cycles q = machine_.cost().quantum;
  const sim::Cycles deadline = 150 * q;
  int hog_count = 0, idle_count = 0;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    while (kernel_.Now() < deadline) {
      ++hog_count;
      kernel_.ChargeCpu(q);
    }
  });
  EnvId idle = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    while (kernel_.Now() < deadline) {
      ++idle_count;
      kernel_.ChargeCpu(q);
    }
  });
  ResourceQuota zero;
  zero.cpu_tickets = 0;
  ASSERT_EQ(kernel_.SysSetQuota(idle, zero, kCredAny), Status::kOk);
  kernel_.Run();
  EXPECT_GE(idle_count, 1);                // progress despite zero tickets
  EXPECT_GT(hog_count, idle_count * 20);   // but nowhere near a fair share
  EXPECT_EQ(kernel_.CheckInvariants(), "");
}

TEST_F(XokTest, SysSetQuotaAdjustsTicketsLive) {
  // A supervisor env re-weights a sibling mid-run; the new ratio applies from
  // the next deschedule without any scheduler reset.
  const sim::Cycles q = machine_.cost().quantum;
  const sim::Cycles deadline = 60 * q;
  int counts[2] = {0, 0};
  EnvId worker = kInvalidEnv;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (int i = 0; kernel_.Now() < deadline; ++i) {
      if (i == 5) {
        ResourceQuota boost;
        boost.cpu_tickets = 900;
        ASSERT_EQ(kernel_.SysSetQuota(worker, boost, 0), Status::kOk);
      }
      ++counts[0];
      kernel_.ChargeCpu(q);
    }
  });
  worker = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    while (kernel_.Now() < deadline) {
      ++counts[1];
      kernel_.ChargeCpu(q);
    }
  });
  kernel_.Run();
  // 9:1 tickets from slice ~10 onwards: the worker ends far ahead.
  EXPECT_GT(counts[1], counts[0] * 3) << counts[0] << " vs " << counts[1];
  EXPECT_EQ(kernel_.CheckInvariants(), "");
}

TEST_F(XokTest, RoundRobinSwitchIgnoresTickets) {
  // EXO_SCHED_STRIDE=0 recovers the legacy rotation: wildly uneven tickets
  // still alternate strictly, and no stride bookkeeping runs.
  ::setenv("EXO_SCHED_STRIDE", "0", 1);
  {
    sim::Engine engine;
    hw::Machine machine(&engine, hw::MachineConfig{.mem_frames = 256});
    XokKernel kernel(&machine);
    EXPECT_FALSE(kernel.stride_scheduling());
    const sim::Cycles q = machine.cost().quantum;
    std::vector<int> order;
    for (int i = 0; i < 2; ++i) {
      EnvId id = kernel.CreateEnv(kInvalidEnv, {Capability::Root()}, [&kernel, &order, i, q] {
        for (int s = 0; s < 3; ++s) {
          order.push_back(i);
          kernel.ChargeCpu(q);
        }
      });
      ResourceQuota quota;
      quota.cpu_tickets = i == 0 ? 10'000 : 1;
      EXPECT_EQ(kernel.SysSetQuota(id, quota, kCredAny), Status::kOk);
    }
    kernel.Run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
    EXPECT_EQ(machine.counters().Get("sched.stride_picks"), 0u);
    EXPECT_EQ(kernel.CheckInvariants(), "");
  }
  ::unsetenv("EXO_SCHED_STRIDE");
}

// ---- Pressure-driven revocation ----

TEST_F(XokTest, PressureRevokesOverShareTenantThatSheds) {
  // A frame hog pushes the free list below the low watermark; the monitor
  // picks the env most over its tickets-proportional share, asks it to shed,
  // and the hog's compliant handler frees frames until pressure clears.
  MemoryPressurePolicy policy;
  policy.low_frames = 120;
  policy.high_frames = 160;
  policy.grace = 10 * machine_.cost().quantum;  // roomy: we want the shed path
  kernel_.SetMemoryPressurePolicy(policy);
  const sim::Cycles q = machine_.cost().quantum;
  std::vector<hw::FrameId> held;
  uint32_t shed_allowed = UINT32_MAX;
  EnvId hog = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (int i = 0; i < 150; ++i) {  // 256-frame machine: free dips to ~106
      auto f = kernel_.SysFrameAlloc(0, CapName{kCapUsers, 1});
      ASSERT_TRUE(f.ok());
      held.push_back(*f);
    }
    for (int s = 0; s < 6; ++s) {
      kernel_.ChargeCpu(q);  // give the monitor host passes to act
    }
    for (hw::FrameId f : held) {
      EXPECT_EQ(kernel_.SysFrameFree(f, 0), Status::kOk);
    }
    held.clear();
  });
  kernel_.env(hog).on_revoke = [&](const RevocationRequest& req) {
    shed_allowed = req.allowed;
    EXPECT_TRUE(req.from_pressure);
    while (kernel_.env(hog).usage.frames > req.allowed && !held.empty()) {
      EXPECT_EQ(kernel_.SysFrameFree(held.back(), 0), Status::kOk);
      held.pop_back();
    }
  };
  int victim_slices = 0;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (int s = 0; s < 6; ++s) {
      ++victim_slices;
      kernel_.ChargeCpu(q);
    }
  });
  kernel_.Run();
  EXPECT_GE(machine_.counters().Get("xok.pressure_revokes"), 1u);
  EXPECT_EQ(machine_.counters().Get("xok.pressure_aborts"), 0u);
  EXPECT_EQ(machine_.counters().Get("xok.env_aborts"), 0u);
  // The request never asked the hog to go below its fair share (128 frames
  // split over two equal-ticket envs).
  EXPECT_GE(shed_allowed, 128u);
  EXPECT_LT(shed_allowed, 150u);
  EXPECT_EQ(victim_slices, 6);
  EXPECT_EQ(kernel_.CheckInvariants(), "");
}

TEST_F(XokTest, PressureEscalatesToAbortWhenIgnored) {
  // Same squeeze, but the hog has no revocation handler and keeps running:
  // past the grace deadline the kernel repossesses by abort, and the abort is
  // attributed to pressure in both the counter and the reason string.
  MemoryPressurePolicy policy;
  policy.low_frames = 120;
  policy.high_frames = 160;
  policy.grace = machine_.cost().quantum / 2;
  kernel_.SetMemoryPressurePolicy(policy);
  const sim::Cycles q = machine_.cost().quantum;
  EnvId hog = kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (int i = 0; i < 150; ++i) {
      auto f = kernel_.SysFrameAlloc(0, CapName{kCapUsers, 1});
      ASSERT_TRUE(f.ok());
    }
    for (;;) {
      kernel_.ChargeCpu(q);  // ignores the revocation forever
    }
  });
  bool victim_finished = false;
  kernel_.CreateEnv(kInvalidEnv, {Capability::Root()}, [&] {
    for (int s = 0; s < 8; ++s) {
      kernel_.ChargeCpu(q);
    }
    victim_finished = true;
  });
  kernel_.Run();
  EXPECT_GE(machine_.counters().Get("xok.pressure_revokes"), 1u);
  EXPECT_EQ(machine_.counters().Get("xok.pressure_aborts"), 1u);
  ASSERT_TRUE(kernel_.EnvExists(hog));
  EXPECT_STREQ(kernel_.env(hog).abort_reason, "revocation deadline passed (memory pressure)");
  EXPECT_TRUE(victim_finished);
  // The abort returned the hoard: the free list recovered past the high mark.
  EXPECT_GE(kernel_.FreeFrameCount(), policy.high_frames);
  EXPECT_EQ(kernel_.CheckInvariants(), "");
}

}  // namespace
}  // namespace exo::xok
