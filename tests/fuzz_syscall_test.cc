// Deterministic syscall fuzzer: several hostile environments issue randomized
// garbage and semi-valid system calls while XokKernel::CheckInvariants() audits
// every kernel data structure after every single call.
//
// The determinism contract mirrors docs/FAULTS.md: every argument derives from
// one sim::Fuzzer stream per env, so a whole hostile schedule is a pure
// function of (seed, num_envs, steps) and any failure replays byte-for-byte
// from the seed printed with it. Override with FUZZ_SEED=<n>; the CI sweep sets
// FUZZ_SEEDS=<lo>:<hi> and FUZZ_STEPS=<n> (see docs/ROBUSTNESS.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "sim/engine.h"
#include "sim/fuzz.h"
#include "udf/assembler.h"
#include "xok/kernel.h"

namespace exo::xok {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 0) : fallback;
}

struct FuzzOutcome {
  std::string log;        // concatenated per-env decision logs, env order
  std::string violation;  // first CheckInvariants() failure, annotated with env/step
  std::string final_check;
  uint64_t syscalls = 0;
  uint32_t free_before = 0;  // free frames before any env was created
  uint32_t free_after = 0;   // free frames after abort+reap of every env
  // Pressure-monitor decisions, cross-checked between same-seed replays: the
  // watermark monitor and the abort ladder must be as deterministic as the
  // syscall stream that triggered them.
  uint64_t pressure_revokes = 0;
  uint64_t pressure_aborts = 0;
};

// Per-env mutable state. Lives in the harness frame, NOT on fiber stacks:
// aborted fibers are destroyed without unwinding, so nothing heap-owning may
// live on their stacks across a suspension point.
struct EnvPools {
  std::vector<uint32_t> frames;
  std::vector<uint32_t> regions;
  std::vector<uint32_t> filters;
  uint32_t pinned = 0;  // frames under a guard nobody dominates: unfreeable until abort
};

CredIndex FuzzCred(sim::Fuzzer& fz) {
  if (fz.Percent(15)) {
    return static_cast<CredIndex>(fz.Chaos32());  // out-of-range / negative garbage
  }
  return static_cast<CredIndex>(fz.Pick(5)) - 1;  // kCredAny..3
}

// The modest, locked ceilings every fuzz env runs under. Ticket mutations
// reuse these limits so a successful SysSetQuota re-weights CPU without
// disarming the kQuotaExceeded paths.
ResourceQuota FuzzQuota() {
  ResourceQuota q;
  q.frames = 24;
  q.regions = 8;
  q.region_bytes = 1u << 16;
  q.filters = 4;
  q.ring_slots = 256;
  q.ipc_depth = 8;
  q.locked = true;
  return q;
}

// One randomized operation against the kernel, in env context. Only POD locals
// may be live when a call can suspend (yield / sleep / ChargeCpu).
void DoOneOp(XokKernel& kernel, sim::Fuzzer& fz, uint32_t self_index,
             std::vector<EnvPools>& pools, const std::vector<uint32_t>& env_ids,
             const udf::Program& good_prog, const udf::Program& bad_prog,
             const udf::Program& huge_prog) {
  EnvPools& mine = pools[self_index];
  const uint16_t me = static_cast<uint16_t>(self_index);
  const uint32_t op = fz.Pick(100);

  if (op < 16) {  // frame alloc: shared, private, unreachable, or oversized guard
    CapName guard;
    bool pin = false;
    switch (fz.Pick(4)) {
      case 0:
        guard = {kCapUsers, 7, me};
        break;
      case 1:
        guard = CapName{kCapUsers, static_cast<uint16_t>(100 + me), 3};
        break;
      case 2:
        // Nobody here dominates the empty guard: unfreeable until abort. Capped
        // at two so a shedding env can still satisfy most revocations.
        pin = mine.pinned < 2;
        guard = pin ? CapName{} : CapName{kCapUsers, 7, me};
        break;
      default:
        guard = CapName(kMaxGuardName + 1 + fz.Pick(8), me);  // must be rejected
        break;
    }
    auto f = kernel.SysFrameAlloc(FuzzCred(fz), guard);
    fz.Log("alloc " + std::string(StatusName(f.status())));
    if (f.ok()) {
      mine.frames.push_back(*f);
      if (pin) {
        ++mine.pinned;
      }
    }
  } else if (op < 26) {  // frame free: own, sibling's, or garbage id
    uint32_t frame = fz.Percent(30) ? fz.SemiValid(pools[fz.Pick(static_cast<uint32_t>(
                                          pools.size()))].frames)
                                    : fz.SemiValid(mine.frames);
    Status s = kernel.SysFrameFree(frame, FuzzCred(fz));
    fz.Log("free f" + std::to_string(frame) + " " + StatusName(s));
    if (s == Status::kOk) {
      std::erase(mine.frames, frame);  // may erase nothing (freed a sibling's)
      for (auto& p : pools) {
        std::erase(p.frames, frame);
      }
    }
  } else if (op < 31) {  // extra ref
    uint32_t frame = fz.SemiValid(mine.frames);
    Status s = kernel.SysFrameRef(frame, FuzzCred(fz));
    fz.Log("ref f" + std::to_string(frame) + " " + StatusName(s));
    if (s == Status::kOk) {
      mine.frames.push_back(frame);
    }
  } else if (op < 43) {  // page-table ops, garbage vpages/frames/targets
    PtOp pt;
    const uint32_t kind = fz.Pick(3);
    pt.kind = kind == 0 ? PtOp::Kind::kInsert
              : kind == 1 ? PtOp::Kind::kProtect
                          : PtOp::Kind::kRemove;
    pt.vpage = fz.Percent(20) ? fz.Chaos32() : fz.Pick(48);
    pt.pte.frame = fz.Percent(30) ? fz.SemiValid(pools[fz.Pick(static_cast<uint32_t>(
                                        pools.size()))].frames)
                                  : fz.SemiValid(mine.frames);
    pt.pte.readable = true;
    pt.pte.writable = fz.Percent(60);
    EnvId target = fz.Percent(15) ? fz.Chaos32() : env_ids[self_index];
    if (fz.Percent(10)) {
      target = env_ids[fz.Pick(static_cast<uint32_t>(env_ids.size()))];  // sibling: denied
    }
    Status s = kernel.SysPtUpdate(target, pt, FuzzCred(fz));
    fz.Log("pt k" + std::to_string(kind) + " vp" + std::to_string(pt.vpage) + " " +
           StatusName(s));
  } else if (op < 53) {  // software regions with chaos offsets
    switch (fz.Pick(4)) {
      case 0: {
        uint32_t size = fz.Percent(25) ? fz.Chaos32() : 1 + fz.Pick(4096);
        auto r = kernel.SysRegionCreate(size, {kCapUsers, 7, me}, FuzzCred(fz));
        fz.Log("rcreate " + std::string(StatusName(r.status())));
        if (r.ok()) {
          mine.regions.push_back(*r);
        }
        break;
      }
      case 1: {
        uint8_t buf[64];
        uint32_t off = fz.Percent(40) ? fz.Chaos32() : fz.Pick(4096);
        Status s = kernel.SysRegionWrite(fz.SemiValid(mine.regions), off,
                                         std::span<const uint8_t>(buf, 1 + fz.Pick(64)),
                                         FuzzCred(fz));
        fz.Log("rwrite " + std::string(StatusName(s)));
        break;
      }
      case 2: {
        uint8_t buf[64];
        uint32_t off = fz.Percent(40) ? fz.Chaos32() : fz.Pick(4096);
        Status s = kernel.SysRegionRead(fz.SemiValid(mine.regions), off,
                                        std::span<uint8_t>(buf, 1 + fz.Pick(64)),
                                        FuzzCred(fz));
        fz.Log("rread " + std::string(StatusName(s)));
        break;
      }
      default: {
        uint32_t rid = fz.SemiValid(mine.regions);
        Status s = kernel.SysRegionDestroy(rid, FuzzCred(fz));
        fz.Log("rdestroy " + std::string(StatusName(s)));
        if (s == Status::kOk) {
          std::erase(mine.regions, rid);
        }
        break;
      }
    }
  } else if (op < 61) {  // IPC send floods + non-blocking receive
    if (fz.Percent(60)) {
      IpcMessage m;
      m.words[0] = fz.Chaos64();
      EnvId to = fz.Percent(20) ? fz.Chaos32()
                                : env_ids[fz.Pick(static_cast<uint32_t>(env_ids.size()))];
      Status s = kernel.SysIpcSend(to, m, FuzzCred(fz));
      fz.Log("send " + std::string(StatusName(s)));
    } else {
      auto m = kernel.SysIpcRecv();
      fz.Log("recv " + std::string(StatusName(m.status())));
    }
  } else if (op < 69) {  // packet filters: valid, unverifiable, oversized
    switch (fz.Pick(3)) {
      case 0: {
        const udf::Program& prog =
            fz.Percent(50) ? good_prog : (fz.Percent(50) ? bad_prog : huge_prog);
        auto fid = kernel.SysFilterInstall(prog, FuzzCred(fz));
        fz.Log("finstall " + std::string(StatusName(fid.status())));
        if (fid.ok()) {
          mine.filters.push_back(*fid);
        }
        break;
      }
      case 1: {
        uint32_t fid = fz.SemiValid(mine.filters);
        Status s = kernel.SysFilterRemove(fid, FuzzCred(fz));
        fz.Log("fremove " + std::string(StatusName(s)));
        if (s == Status::kOk) {
          std::erase(mine.filters, fid);
        }
        break;
      }
      default: {
        auto p = kernel.SysRingConsume(fz.SemiValid(mine.filters), FuzzCred(fz));
        fz.Log("ring " + std::string(StatusName(p.status())));
        break;
      }
    }
  } else if (op < 74) {  // null syscalls + exposed reads
    kernel.SysNull(1 + static_cast<int>(fz.Pick(3)));
    fz.Log("null");
  } else if (op < 80) {  // yield, sometimes directed at garbage
    EnvId to = fz.Percent(30) ? fz.Chaos32() : kInvalidEnv;
    fz.Log("yield");
    kernel.SysYield(to);
  } else if (op < 85) {  // bounded sleep (deadline predicates keep the clock moving)
    sim::Cycles until = kernel.Now() + 1'000 + fz.Pick(50'000);
    fz.Log("sleep");
    WakeupPredicate p;
    p.deadline = until;
    p.host_cost = 40;
    p.host = [&kernel, until] { return kernel.Now() >= until; };
    if (fz.Percent(15)) {
      p.program = bad_prog;  // unverifiable: kernel must degrade it to a plain sleep
    }
    kernel.SysSleep(std::move(p));
  } else if (op < 89) {  // compute through quantum boundaries
    fz.Log("compute");
    kernel.ChargeCpu(500 + fz.Pick(30'000));
  } else if (op < 92) {  // balanced critical section spanning slices
    fz.Log("critical");
    kernel.EnterCritical();
    kernel.ChargeCpu(fz.Pick(8'000));
    kernel.ExitCritical();
  } else if (op < 95) {  // wait on a non-child (must never block or reap)
    EnvId child = fz.Percent(40) ? fz.Chaos32()
                                 : env_ids[fz.Pick(static_cast<uint32_t>(env_ids.size()))];
    auto r = kernel.SysWait(child);
    fz.Log("wait " + std::string(StatusName(r.status())));
  } else if (op < 97) {  // ticket mutation: limited envs are denied (locked);
    // env 0 holds the {kCapEnvs} supervisor capability and re-weights siblings
    // live, so the stride rescale runs mid-schedule at hostile ratios.
    ResourceQuota q = FuzzQuota();
    q.cpu_tickets = fz.Percent(10) ? 0 : 1 + fz.Pick(1u << (1 + fz.Pick(13)));
    EnvId target = fz.Percent(50) ? env_ids[self_index] : fz.SemiValid(env_ids);
    Status s = kernel.SysSetQuota(target, q, FuzzCred(fz));
    fz.Log("tickets " + std::to_string(q.cpu_tickets) + " " + StatusName(s));
  } else if (op < 99) {  // revocation: the upcall handler sheds down to `allowed`
    // Rarely, demand less than the env's pinned (unfreeable) holdings — an
    // unsatisfiable request that arms the abort protocol mid-fuzz.
    uint32_t allowed = fz.Percent(1) ? fz.Pick(2) : 2 + fz.Pick(16);
    EnvId target = fz.Percent(70) ? env_ids[self_index] : fz.SemiValid(env_ids);
    Status s = kernel.SysRevoke(target, RevokeResource::kFrames, allowed,
                                200'000 + fz.Pick(400'000), FuzzCred(fz));
    fz.Log("revoke " + std::string(StatusName(s)));
  } else {  // hostile NIC transmit: oversized frames must be rejected, not DMA'd
    uint32_t len = fz.Percent(50) ? 1515 + fz.Pick(4096) : fz.Pick(1515);
    Status s = kernel.SysNicTransmit(fz.Percent(70) ? 0 : fz.Chaos32(),
                                     hw::Packet{std::vector<uint8_t>(len, 0xee)});
    fz.Log("nictx " + std::to_string(len) + " " + StatusName(s));
  }
}

FuzzOutcome RunFuzz(uint64_t seed, uint32_t num_envs, uint32_t steps) {
  sim::Engine engine;
  hw::Machine machine(&engine, hw::MachineConfig{.mem_frames = 192});
  hw::Nic peer(99);
  hw::Link link(&engine, 100.0, 10.0, 200);
  link.Connect(&peer, &machine.nic(0));
  XokKernel kernel(&machine);
  kernel.SetDeadlockBound(500'000'000);  // fuzz sleeps are bounded; fail fast if stuck

  FuzzOutcome out;
  out.free_before = kernel.FreeFrameCount();

  std::vector<sim::Fuzzer> fuzzers;
  fuzzers.reserve(num_envs);
  for (uint32_t i = 0; i < num_envs; ++i) {
    fuzzers.emplace_back(seed * 0x9e3779b97f4a7c15ULL + i);
  }
  std::vector<EnvPools> pools(num_envs);
  std::vector<uint32_t> env_ids;

  const udf::Program good_prog = [] {
    auto a = udf::Assemble("ldi r1, 1\nret r1\n");
    EXO_CHECK(a.ok);
    return a.program;
  }();
  const udf::Program bad_prog = [] {
    auto a = udf::Assemble("time r1\nret r1\n");  // nondeterministic: verifier rejects
    EXO_CHECK(a.ok);
    return a.program;
  }();
  const udf::Program huge_prog(kMaxFilterProgramInsns + 1, udf::Insn{});

  for (uint32_t i = 0; i < num_envs; ++i) {
    std::vector<Capability> caps = {
        Capability::For({kCapUsers, 7}),  // shared: siblings may free/map each other's
        Capability::For({kCapUsers, static_cast<uint16_t>(100 + i)}),
    };
    if (i == 0) {
      // Tenant supervisor: dominates every env guard, so its SysSetQuota /
      // SysRevoke ops land instead of being credential-denied — the re-weight
      // and revocation ladders get fuzzed from env context, not just from the
      // pressure monitor.
      caps.push_back(Capability::For({kCapEnvs}));
    }
    EnvId id = kernel.CreateEnv(
        kInvalidEnv, caps,
        [&kernel, &fuzzers, &pools, &env_ids, &out, &good_prog, &bad_prog, &huge_prog, i,
         steps] {
          for (uint32_t step = 0; step < steps; ++step) {
            DoOneOp(kernel, fuzzers[i], i, pools, env_ids, good_prog, bad_prog, huge_prog);
            if (out.violation.empty()) {
              std::string v = kernel.CheckInvariants();
              if (!v.empty()) {
                out.violation =
                    "env " + std::to_string(i) + " step " + std::to_string(step) + ":\n" + v;
              }
            }
          }
        });
    env_ids.push_back(id);
  }

  // Fuzz envs behave like a real libOS under revocation: the upcall sheds
  // freeable frame refs, then page mappings, until within the allowance.
  // Frames pinned under guards nobody dominates stay — a request below the
  // pinned count is deliberately unsatisfiable and arms the abort protocol.
  for (EnvId id : env_ids) {
    kernel.env(id).on_revoke = [&kernel, id](const RevocationRequest& req) {
      if (req.resource != RevokeResource::kFrames) {
        return;
      }
      Env& self = kernel.env(id);
      std::vector<hw::FrameId> held;
      for (const auto& [f, n] : self.frame_refs) {
        held.push_back(f);
      }
      for (hw::FrameId f : held) {
        while (self.usage.frames > req.allowed && self.frame_refs.count(f) != 0) {
          if (kernel.SysFrameFree(f, kCredAny) != Status::kOk) {
            break;  // pinned: no credential of ours dominates its guard
          }
        }
      }
      std::vector<VPage> mapped;
      for (const auto& [vp, pte] : self.pt.entries()) {
        mapped.push_back(vp);
      }
      for (VPage vp : mapped) {
        if (self.usage.frames <= req.allowed) {
          break;
        }
        PtOp op;
        op.kind = PtOp::Kind::kRemove;
        op.vpage = vp;
        (void)kernel.SysPtUpdate(id, op, kCredAny);
      }
    };
  }

  // Modest quotas so kQuotaExceeded paths run; locked so the envs cannot lift them.
  for (EnvId id : env_ids) {
    EXO_CHECK_EQ(kernel.SysSetQuota(id, FuzzQuota(), kCredAny), Status::kOk);
  }

  // Arm the pressure monitor with watermarks the fuzz workload actually
  // crosses (six envs each entitled to 24 of 192 frames), so pressure
  // revocations — and, when shedding cannot reach the allowance past pinned
  // frames, pressure aborts — fire mid-fuzz against the mutated ticket mix.
  MemoryPressurePolicy pp;
  pp.low_frames = 110;
  pp.high_frames = 130;
  pp.grace = 100'000;
  pp.min_interval = 150'000;
  kernel.SetMemoryPressurePolicy(pp);

  kernel.Run();

  // Host cleanup: forcibly reclaim whatever each (now zombie or aborted) env
  // still holds, then reap. Leak-freedom means the free list returns exactly to
  // its pre-spawn size.
  for (EnvId id : env_ids) {
    kernel.AbortEnv(id, "fuzz cleanup");
    (void)kernel.ReapEnv(id);
  }
  out.free_after = kernel.FreeFrameCount();
  out.final_check = kernel.CheckInvariants();
  out.syscalls = machine.counters().Get("xok.syscalls");
  out.pressure_revokes = machine.counters().Get("xok.pressure_revokes");
  out.pressure_aborts = machine.counters().Get("xok.pressure_aborts");
  for (auto& fz : fuzzers) {
    out.log += fz.log();
  }
  return out;
}

TEST(FuzzSyscall, TenThousandHostileSyscallsHoldInvariants) {
  const uint64_t seed = EnvOr("FUZZ_SEED", 0xEC0C0DEULL);
  const uint32_t steps = static_cast<uint32_t>(EnvOr("FUZZ_STEPS", 2800));
  std::fprintf(stderr, "fuzz: seed=0x%llx envs=6 steps=%u (override with FUZZ_SEED=...)\n",
               static_cast<unsigned long long>(seed), steps);
  FuzzOutcome out = RunFuzz(seed, /*num_envs=*/6, steps);
  // At the default budget this demands >=10k syscalls; reduced FUZZ_STEPS runs
  // (the sanitizer CI job) scale the floor down with the budget.
  const uint64_t floor = std::min<uint64_t>(10'000, steps * 6ull * 3 / 5);
  EXPECT_GE(out.syscalls, floor) << "hostile workload too small to be meaningful";
  EXPECT_EQ(out.violation, "") << "seed 0x" << std::hex << seed << " broke an invariant";
  EXPECT_EQ(out.final_check, "");
  EXPECT_EQ(out.free_after, out.free_before)
      << "frames leaked across abort+reap (seed 0x" << std::hex << seed << ")";
  std::fprintf(stderr,
               "fuzz: %llu syscalls, log bytes=%zu, pressure revokes=%llu aborts=%llu, "
               "invariants clean\n",
               static_cast<unsigned long long>(out.syscalls), out.log.size(),
               static_cast<unsigned long long>(out.pressure_revokes),
               static_cast<unsigned long long>(out.pressure_aborts));
}

TEST(FuzzSyscall, SameSeedReplaysByteForByte) {
  FuzzOutcome a = RunFuzz(424242, 4, 400);
  FuzzOutcome b = RunFuzz(424242, 4, 400);
  ASSERT_FALSE(a.log.empty());
  EXPECT_EQ(a.log, b.log);  // the docs/FAULTS.md contract: equal logs <=> same schedule
  EXPECT_EQ(a.syscalls, b.syscalls);
  EXPECT_EQ(a.free_after, b.free_after);
  EXPECT_EQ(a.pressure_revokes, b.pressure_revokes);
  EXPECT_EQ(a.pressure_aborts, b.pressure_aborts);
}

TEST(FuzzSyscall, DifferentSeedsDiverge) {
  FuzzOutcome a = RunFuzz(1, 4, 300);
  FuzzOutcome b = RunFuzz(2, 4, 300);
  EXPECT_NE(a.log, b.log);
}

// The CI fuzz-sweep: a fixed block of seeds, every one checked to completion.
TEST(FuzzSyscall, SeedBlockSweep) {
  uint64_t lo = 1;
  uint64_t hi = 3;
  if (const char* block = std::getenv("FUZZ_SEEDS")) {
    char* colon = nullptr;
    lo = std::strtoull(block, &colon, 0);
    hi = (colon != nullptr && *colon == ':') ? std::strtoull(colon + 1, nullptr, 0) : lo;
  }
  const uint32_t steps = static_cast<uint32_t>(EnvOr("FUZZ_STEPS", 500));
  for (uint64_t seed = lo; seed <= hi; ++seed) {
    FuzzOutcome out = RunFuzz(seed, 4, steps);
    EXPECT_EQ(out.violation, "") << "seed " << seed;
    EXPECT_EQ(out.final_check, "") << "seed " << seed;
    EXPECT_EQ(out.free_after, out.free_before) << "seed " << seed;
  }
}

}  // namespace
}  // namespace exo::xok
