// Unit tests for the hardware substrate: physical memory, disk model, NIC/link model.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "hw/disk.h"
#include "hw/machine.h"
#include "hw/nic.h"
#include "hw/phys_mem.h"

namespace exo::hw {
namespace {

TEST(PhysMemTest, AllocatesDistinctFrames) {
  PhysMem mem(8);
  auto a = mem.Alloc();
  auto b = mem.Alloc();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(mem.free_frames(), 6u);
}

TEST(PhysMemTest, ExhaustionReturnsOutOfResources) {
  PhysMem mem(2);
  EXPECT_TRUE(mem.Alloc().ok());
  EXPECT_TRUE(mem.Alloc().ok());
  EXPECT_EQ(mem.Alloc().status(), Status::kOutOfResources);
}

TEST(PhysMemTest, RefcountKeepsFrameAlive) {
  PhysMem mem(4);
  FrameId f = *mem.Alloc();
  mem.Ref(f);
  mem.Unref(f);
  EXPECT_TRUE(mem.allocated(f));
  mem.Unref(f);
  EXPECT_FALSE(mem.allocated(f));
  EXPECT_EQ(mem.free_frames(), 4u);
}

TEST(PhysMemTest, DataPersistsAndCopies) {
  PhysMem mem(4);
  FrameId a = *mem.Alloc();
  FrameId b = *mem.Alloc();
  std::memset(mem.Data(a).data(), 0xab, kPageSize);
  mem.CopyFrame(b, a);
  EXPECT_EQ(mem.Data(b)[0], 0xab);
  EXPECT_EQ(mem.Data(b)[kPageSize - 1], 0xab);
  mem.ZeroFrame(b);
  EXPECT_EQ(mem.Data(b)[0], 0);
}

class DiskTest : public ::testing::Test {
 protected:
  DiskTest() : mem_(64), disk_(&engine_, &mem_, DiskGeometry{}, 200) {}

  sim::Engine engine_;
  PhysMem mem_;
  Disk disk_;
};

TEST_F(DiskTest, WriteThenReadRoundTrips) {
  FrameId src = *mem_.Alloc();
  FrameId dst = *mem_.Alloc();
  std::memset(mem_.Data(src).data(), 0x5a, kPageSize);

  bool wrote = false;
  disk_.Submit({.write = true, .start = 100, .nblocks = 1, .frames = {src},
                .done = [&](Status s) { wrote = s == Status::kOk; }});
  engine_.RunUntilIdle();
  ASSERT_TRUE(wrote);

  bool read = false;
  disk_.Submit({.write = false, .start = 100, .nblocks = 1, .frames = {dst},
                .done = [&](Status s) { read = s == Status::kOk; }});
  engine_.RunUntilIdle();
  ASSERT_TRUE(read);
  EXPECT_EQ(mem_.Data(dst)[123], 0x5a);
}

TEST_F(DiskTest, SequentialIsFasterThanScattered) {
  // Charge time for 64 sequential blocks vs 64 blocks scattered across the disk.
  auto run = [&](bool sequential) {
    sim::Engine engine;
    PhysMem mem(64);
    Disk disk(&engine, &mem, DiskGeometry{}, 200);
    FrameId f = *mem.Alloc();
    int done = 0;
    for (uint32_t i = 0; i < 64; ++i) {
      BlockId b = sequential ? 1000 + i : (i * 251) % disk.geometry().num_blocks;
      disk.Submit({.write = false, .start = b, .nblocks = 1, .frames = {f},
                   .done = [&](Status) { ++done; }});
    }
    engine.RunUntilIdle();
    EXPECT_EQ(done, 64);
    return engine.now();
  };
  EXPECT_LT(run(true) * 4, run(false));
}

TEST_F(DiskTest, ContiguousRequestsMerge) {
  FrameId f1 = *mem_.Alloc();
  FrameId f2 = *mem_.Alloc();
  int completions = 0;
  disk_.Submit({.write = true, .start = 10, .nblocks = 1, .frames = {f1},
                .done = [&](Status) { ++completions; }});
  // Queue a second contiguous write while the first may still be pending.
  disk_.Submit({.write = true, .start = 500, .nblocks = 1, .frames = {f2},
                .done = [&](Status) { ++completions; }});
  disk_.Submit({.write = true, .start = 501, .nblocks = 1, .frames = {f1},
                .done = [&](Status) { ++completions; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(completions, 3);
  EXPECT_GE(disk_.stats().merged_requests, 1u);
}

TEST_F(DiskTest, MultiBlockTransfer) {
  std::vector<FrameId> frames;
  for (int i = 0; i < 4; ++i) {
    FrameId f = *mem_.Alloc();
    std::memset(mem_.Data(f).data(), 0x10 + i, kPageSize);
    frames.push_back(f);
  }
  disk_.Submit({.write = true, .start = 20, .nblocks = 4, .frames = frames, .done = {}});
  engine_.RunUntilIdle();
  EXPECT_EQ(disk_.RawBlock(20)[0], 0x10);
  EXPECT_EQ(disk_.RawBlock(23)[0], 0x13);
  EXPECT_EQ(disk_.stats().blocks_written, 4u);
}

TEST_F(DiskTest, StatsCountSeeks) {
  FrameId f = *mem_.Alloc();
  disk_.Submit({.write = false, .start = 0, .nblocks = 1, .frames = {f}, .done = {}});
  engine_.RunUntilIdle();
  disk_.Submit({.write = false, .start = 15000, .nblocks = 1, .frames = {f}, .done = {}});
  engine_.RunUntilIdle();
  EXPECT_GE(disk_.stats().seeks, 1u);
  EXPECT_EQ(disk_.stats().requests, 2u);
}

TEST(NicTest, PacketDeliveredWithWireDelay) {
  sim::Engine engine;
  Nic a(0);
  Nic b(1);
  Link link(&engine, 100.0, 50.0, 200);  // 100 Mbit/s, 50 us latency
  link.Connect(&a, &b);

  std::vector<uint8_t> got;
  b.SetReceiveHandler([&](Packet p) { got = std::move(p.bytes); });

  a.Transmit({.bytes = {1, 2, 3, 4}});
  EXPECT_TRUE(got.empty());  // not delivered synchronously
  engine.RunUntilIdle();
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3, 4}));
  // 64B min frame + 24B overhead at 100 Mbit/s = 7.04 us + 50 us latency.
  EXPECT_NEAR(static_cast<double>(engine.now()) / 200.0, 57.0, 1.0);
}

TEST(NicTest, LinkSerializesBackToBackFrames) {
  sim::Engine engine;
  Nic a(0);
  Nic b(1);
  Link link(&engine, 100.0, 0.0, 200);
  link.Connect(&a, &b);

  int received = 0;
  b.SetReceiveHandler([&](Packet) { ++received; });
  for (int i = 0; i < 10; ++i) {
    a.Transmit({.bytes = std::vector<uint8_t>(1000, 0)});
  }
  engine.RunUntilIdle();
  EXPECT_EQ(received, 10);
  // 10 frames of (1000+24)B at 100 Mbit/s: 10 * 81.92 us serialized end to end.
  EXPECT_NEAR(static_cast<double>(engine.now()) / 200.0, 819.2, 1.0);
}

TEST(NicTest, FullDuplexDirectionsIndependent) {
  sim::Engine engine;
  Nic a(0);
  Nic b(1);
  Link link(&engine, 100.0, 0.0, 200);
  link.Connect(&a, &b);
  sim::Cycles a_arrival = 0;
  sim::Cycles b_arrival = 0;
  a.SetReceiveHandler([&](Packet) { a_arrival = engine.now(); });
  b.SetReceiveHandler([&](Packet) { b_arrival = engine.now(); });
  a.Transmit({.bytes = std::vector<uint8_t>(1400, 0)});
  b.Transmit({.bytes = std::vector<uint8_t>(1400, 0)});
  engine.RunUntilIdle();
  EXPECT_EQ(a_arrival, b_arrival);  // no shared-medium contention on full duplex
}

TEST(NicTest, NoHandlerCountsDrop) {
  sim::Engine engine;
  Nic a(0);
  Nic b(1);
  Link link(&engine, 100.0, 0.0, 200);
  link.Connect(&a, &b);
  a.Transmit({.bytes = {9}});
  engine.RunUntilIdle();
  EXPECT_EQ(b.stats().dropped, 1u);
}

TEST(MachineTest, ChargeAdvancesSharedClock) {
  sim::Engine engine;
  Machine m(&engine, MachineConfig{.mem_frames = 32});
  m.Charge(1000);
  EXPECT_EQ(engine.now(), 1000u);
}

TEST(MachineTest, ConfigShapesHardware) {
  sim::Engine engine;
  MachineConfig cfg;
  cfg.mem_frames = 100;
  cfg.disks = {DiskGeometry{}, DiskGeometry{}};
  cfg.num_nics = 3;
  Machine m(&engine, cfg);
  EXPECT_EQ(m.mem().num_frames(), 100u);
  EXPECT_EQ(m.num_disks(), 2u);
  EXPECT_EQ(m.num_nics(), 3u);
}

}  // namespace
}  // namespace exo::hw
