// Unit tests for the hardware substrate: physical memory, disk model, NIC/link model.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "hw/disk.h"
#include "hw/machine.h"
#include "hw/nic.h"
#include "hw/phys_mem.h"

namespace exo::hw {
namespace {

TEST(PhysMemTest, AllocatesDistinctFrames) {
  PhysMem mem(8);
  auto a = mem.Alloc();
  auto b = mem.Alloc();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(mem.free_frames(), 6u);
}

TEST(PhysMemTest, ExhaustionReturnsOutOfResources) {
  PhysMem mem(2);
  EXPECT_TRUE(mem.Alloc().ok());
  EXPECT_TRUE(mem.Alloc().ok());
  EXPECT_EQ(mem.Alloc().status(), Status::kOutOfResources);
}

TEST(PhysMemTest, RefcountKeepsFrameAlive) {
  PhysMem mem(4);
  FrameId f = *mem.Alloc();
  mem.Ref(f);
  mem.Unref(f);
  EXPECT_TRUE(mem.allocated(f));
  mem.Unref(f);
  EXPECT_FALSE(mem.allocated(f));
  EXPECT_EQ(mem.free_frames(), 4u);
}

TEST(PhysMemTest, DataPersistsAndCopies) {
  PhysMem mem(4);
  FrameId a = *mem.Alloc();
  FrameId b = *mem.Alloc();
  std::memset(mem.Data(a).data(), 0xab, kPageSize);
  mem.CopyFrame(b, a);
  EXPECT_EQ(mem.Data(b)[0], 0xab);
  EXPECT_EQ(mem.Data(b)[kPageSize - 1], 0xab);
  mem.ZeroFrame(b);
  EXPECT_EQ(mem.Data(b)[0], 0);
}

class DiskTest : public ::testing::Test {
 protected:
  DiskTest() : mem_(64), disk_(&engine_, &mem_, DiskGeometry{}, 200) {}

  sim::Engine engine_;
  PhysMem mem_;
  Disk disk_;
};

TEST_F(DiskTest, WriteThenReadRoundTrips) {
  FrameId src = *mem_.Alloc();
  FrameId dst = *mem_.Alloc();
  std::memset(mem_.Data(src).data(), 0x5a, kPageSize);

  bool wrote = false;
  disk_.Submit({.write = true, .start = 100, .nblocks = 1, .frames = {src},
                .done = [&](Status s) { wrote = s == Status::kOk; }});
  engine_.RunUntilIdle();
  ASSERT_TRUE(wrote);

  bool read = false;
  disk_.Submit({.write = false, .start = 100, .nblocks = 1, .frames = {dst},
                .done = [&](Status s) { read = s == Status::kOk; }});
  engine_.RunUntilIdle();
  ASSERT_TRUE(read);
  EXPECT_EQ(mem_.Data(dst)[123], 0x5a);
}

TEST_F(DiskTest, SequentialIsFasterThanScattered) {
  // Charge time for 64 sequential blocks vs 64 blocks scattered across the disk.
  auto run = [&](bool sequential) {
    sim::Engine engine;
    PhysMem mem(64);
    Disk disk(&engine, &mem, DiskGeometry{}, 200);
    FrameId f = *mem.Alloc();
    int done = 0;
    for (uint32_t i = 0; i < 64; ++i) {
      BlockId b = sequential ? 1000 + i : (i * 251) % disk.geometry().num_blocks;
      disk.Submit({.write = false, .start = b, .nblocks = 1, .frames = {f},
                   .done = [&](Status) { ++done; }});
    }
    engine.RunUntilIdle();
    EXPECT_EQ(done, 64);
    return engine.now();
  };
  EXPECT_LT(run(true) * 4, run(false));
}

TEST_F(DiskTest, ContiguousRequestsMerge) {
  FrameId f1 = *mem_.Alloc();
  FrameId f2 = *mem_.Alloc();
  int completions = 0;
  disk_.Submit({.write = true, .start = 10, .nblocks = 1, .frames = {f1},
                .done = [&](Status) { ++completions; }});
  // Queue a second contiguous write while the first may still be pending.
  disk_.Submit({.write = true, .start = 500, .nblocks = 1, .frames = {f2},
                .done = [&](Status) { ++completions; }});
  disk_.Submit({.write = true, .start = 501, .nblocks = 1, .frames = {f1},
                .done = [&](Status) { ++completions; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(completions, 3);
  EXPECT_GE(disk_.stats().merged_requests, 1u);
}

TEST_F(DiskTest, ScatterGatherFramesLandOnTheRightBlocks) {
  // One request, discontiguous frame list: block i DMAs from frames[i], and a
  // kInvalidFrame hole skips the transfer for that block only.
  std::vector<FrameId> frames;
  for (int i = 0; i < 3; ++i) {
    FrameId f = *mem_.Alloc();
    std::memset(mem_.Data(f).data(), 0x40 + i, kPageSize);
    frames.push_back(f);
  }
  // Reverse the frame order and punch a hole in the middle.
  std::vector<FrameId> gather = {frames[2], kInvalidFrame, frames[0]};
  disk_.Submit({.write = true, .start = 30, .nblocks = 3, .frames = gather, .done = {}});
  engine_.RunUntilIdle();
  EXPECT_EQ(disk_.RawBlock(30)[0], 0x42);
  EXPECT_EQ(disk_.RawBlock(31)[0], 0x00);  // hole: block untouched
  EXPECT_EQ(disk_.RawBlock(32)[0], 0x40);
}

TEST_F(DiskTest, MergePrefersEarliestQueuedCandidate) {
  // Two queued writes end at the same block (overlapping tails); a contiguous
  // follow-on must merge into the earliest-submitted one, matching the old
  // FIFO-scan semantics. Observable through completion grouping: the merged
  // pair completes atomically at one time.
  FrameId f = *mem_.Alloc();
  sim::Cycles done_at[4] = {0, 0, 0, 0};
  auto mark = [&](int i) { return [&done_at, &e = engine_, i](Status) { done_at[i] = e.now(); }; };
  // Occupy the disk so the rest queue up.
  disk_.Submit({.write = true, .start = 0, .nblocks = 1, .frames = {f}, .done = mark(0)});
  // A and B both end at block 101; A is queued first.
  disk_.Submit({.write = true, .start = 100, .nblocks = 1, .frames = {f}, .done = mark(1)});
  disk_.Submit({.write = true, .start = 99, .nblocks = 2, .frames = {f, f}, .done = mark(2)});
  // C starts where both end: must merge into A (earliest queued).
  disk_.Submit({.write = true, .start = 101, .nblocks = 1, .frames = {f}, .done = mark(3)});
  engine_.RunUntilIdle();
  EXPECT_GE(disk_.stats().merged_requests, 1u);
  EXPECT_EQ(done_at[1], done_at[3]);  // C rode along with A
  EXPECT_NE(done_at[2], done_at[3]);  // and not with B
}

TEST_F(DiskTest, DispatchFollowsCLookOrder) {
  // Queued requests dispatch in ascending-start order from the head position,
  // wrapping once past the end (C-LOOK), regardless of submission order.
  FrameId f = *mem_.Alloc();
  std::vector<BlockId> completion_order;
  auto mark = [&](BlockId b) { return [&completion_order, b](Status) { completion_order.push_back(b); }; };
  disk_.Submit({.write = false, .start = 500, .nblocks = 1, .frames = {f}, .done = mark(500)});
  // Queued while the disk is busy, in deliberately shuffled order.
  for (BlockId b : {900u, 100u, 700u, 300u}) {
    disk_.Submit({.write = false, .start = b, .nblocks = 1, .frames = {f}, .done = mark(b)});
  }
  engine_.RunUntilIdle();
  // After 500 the head sits on cylinder 1 (blocks 256..511), so the ascending
  // sweep picks 300, 700, 900; 100 is behind the head and waits for the wrap.
  EXPECT_EQ(completion_order, (std::vector<BlockId>{500, 300, 700, 900, 100}));
}

TEST_F(DiskTest, MultiBlockTransfer) {
  std::vector<FrameId> frames;
  for (int i = 0; i < 4; ++i) {
    FrameId f = *mem_.Alloc();
    std::memset(mem_.Data(f).data(), 0x10 + i, kPageSize);
    frames.push_back(f);
  }
  disk_.Submit({.write = true, .start = 20, .nblocks = 4, .frames = frames, .done = {}});
  engine_.RunUntilIdle();
  EXPECT_EQ(disk_.RawBlock(20)[0], 0x10);
  EXPECT_EQ(disk_.RawBlock(23)[0], 0x13);
  EXPECT_EQ(disk_.stats().blocks_written, 4u);
}

TEST_F(DiskTest, StatsCountSeeks) {
  FrameId f = *mem_.Alloc();
  disk_.Submit({.write = false, .start = 0, .nblocks = 1, .frames = {f}, .done = {}});
  engine_.RunUntilIdle();
  disk_.Submit({.write = false, .start = 15000, .nblocks = 1, .frames = {f}, .done = {}});
  engine_.RunUntilIdle();
  EXPECT_GE(disk_.stats().seeks, 1u);
  EXPECT_EQ(disk_.stats().requests, 2u);
}

TEST_F(DiskTest, OutOfRangeSubmitCompletesWithInvalidArgument) {
  FrameId f = *mem_.Alloc();
  Status got = Status::kOk;
  // One block past the end of the disk.
  disk_.Submit({.write = false,
                .start = disk_.geometry().num_blocks,
                .nblocks = 1,
                .frames = {f},
                .done = [&](Status s) { got = s; }});
  EXPECT_EQ(got, Status::kOk);  // completion is asynchronous
  engine_.RunUntilIdle();
  EXPECT_EQ(got, Status::kInvalidArgument);

  // A run that starts in range but extends past the end, a zero-length request, and
  // a frame-count mismatch are all rejected the same way.
  got = Status::kOk;
  disk_.Submit({.write = true,
                .start = disk_.geometry().num_blocks - 1,
                .nblocks = 2,
                .frames = {f, f},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(got, Status::kInvalidArgument);

  got = Status::kOk;
  disk_.Submit({.write = true, .start = 5, .nblocks = 0, .frames = {},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(got, Status::kInvalidArgument);

  got = Status::kOk;
  disk_.Submit({.write = true, .start = 5, .nblocks = 2, .frames = {f},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(got, Status::kInvalidArgument);

  EXPECT_EQ(disk_.stats().rejected_requests, 4u);
  EXPECT_EQ(disk_.stats().requests, 0u);  // none reached the media
}

TEST_F(DiskTest, InjectedErrorSurfacesAndRetrySucceeds) {
  sim::FaultInjector faults({.seed = 7, .disk_error_rate = 1.0});
  disk_.SetFaultInjector(&faults);
  FrameId f = *mem_.Alloc();
  std::memset(mem_.Data(f).data(), 0x77, kPageSize);

  Status got = Status::kOk;
  disk_.Submit({.write = true, .start = 40, .nblocks = 1, .frames = {f},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(got, Status::kIoError);
  EXPECT_EQ(disk_.stats().io_errors, 1u);
  EXPECT_NE(disk_.RawBlock(40)[0], 0x77);  // the media was never touched

  // Disarm (a 0-rate plan would redraw forever at rate 1.0) and retry.
  disk_.SetFaultInjector(nullptr);
  disk_.Submit({.write = true, .start = 40, .nblocks = 1, .frames = {f},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(got, Status::kOk);
  EXPECT_EQ(disk_.RawBlock(40)[0], 0x77);
}

TEST_F(DiskTest, PowerCutTearsMultiBlockWrite) {
  // Cut power after the 6th durable block write: a 4-block request completes, then
  // a second 4-block request is torn after its 2nd block.
  sim::FaultInjector faults({.seed = 1, .power_cut_after_blocks = 6});
  disk_.SetFaultInjector(&faults);

  std::vector<FrameId> frames;
  for (int i = 0; i < 4; ++i) {
    FrameId f = *mem_.Alloc();
    std::memset(mem_.Data(f).data(), 0xa0 + i, kPageSize);
    frames.push_back(f);
  }
  int completions = 0;
  disk_.Submit({.write = true, .start = 100, .nblocks = 4, .frames = frames,
                .done = [&](Status) { ++completions; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(completions, 1);

  disk_.Submit({.write = true, .start = 200, .nblocks = 4, .frames = frames,
                .done = [&](Status) { ++completions; }});
  engine_.RunUntilIdle();

  // The torn request never completed; power is off; exactly 2 of its blocks landed.
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(disk_.powered_off());
  EXPECT_EQ(disk_.stats().blocks_written, 6u);
  EXPECT_EQ(disk_.stats().torn_blocks, 2u);
  EXPECT_EQ(disk_.RawBlock(200)[0], 0xa0);
  EXPECT_EQ(disk_.RawBlock(201)[0], 0xa1);
  EXPECT_EQ(disk_.RawBlock(202)[0], 0x00);  // never written
  EXPECT_EQ(disk_.RawBlock(203)[0], 0x00);

  // While dead, submissions vanish without completions.
  disk_.Submit({.write = true, .start = 300, .nblocks = 1, .frames = {frames[0]},
                .done = [&](Status) { ++completions; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(completions, 1);

  // After restore the store contents survive and the disk works again.
  disk_.PowerRestore();
  disk_.SetFaultInjector(nullptr);
  EXPECT_EQ(disk_.RawBlock(201)[0], 0xa1);
  bool ok = false;
  disk_.Submit({.write = false, .start = 201, .nblocks = 1, .frames = {frames[0]},
                .done = [&](Status s) { ok = s == Status::kOk; }});
  engine_.RunUntilIdle();
  EXPECT_TRUE(ok);
}

// ---- Integrity sidecar and silent media faults ----

TEST(Crc32Test, StableAndSensitive) {
  std::vector<uint8_t> bytes(4096, 0x5a);
  const uint32_t a = Crc32(bytes);
  EXPECT_EQ(Crc32(bytes), a);  // deterministic
  bytes[100] ^= 0x01;
  EXPECT_NE(Crc32(bytes), a);  // one-bit sensitivity
  EXPECT_NE(Crc32({}), a);
}

TEST_F(DiskTest, IntegrityTagCatchesScribbleAndRestampClears) {
  FrameId f = *mem_.Alloc();
  std::memset(mem_.Data(f).data(), 0x33, kPageSize);
  disk_.Submit({.write = true, .start = 40, .nblocks = 1, .frames = {f}, .done = {}});
  engine_.RunUntilIdle();

  disk_.EnableIntegrity();  // stamps the current media as the trusted baseline
  EXPECT_TRUE(disk_.integrity_enabled());
  EXPECT_EQ(disk_.CheckBlock(40), BlockIntegrity::kOk);

  // Out-of-band scribble (modeling corruption): the tag disagrees.
  disk_.RawBlock(40)[17] ^= 0xff;
  EXPECT_EQ(disk_.CheckBlock(40), BlockIntegrity::kBadChecksum);

  // A kernel-internal RawBlock writer re-stamps; a DMA write stamps implicitly.
  disk_.Restamp(40);
  EXPECT_EQ(disk_.CheckBlock(40), BlockIntegrity::kOk);
  disk_.RawBlock(41)[0] = 1;
  EXPECT_EQ(disk_.CheckBlock(41), BlockIntegrity::kBadChecksum);
  disk_.Submit({.write = true, .start = 41, .nblocks = 1, .frames = {f}, .done = {}});
  engine_.RunUntilIdle();
  EXPECT_EQ(disk_.CheckBlock(41), BlockIntegrity::kOk);
}

TEST_F(DiskTest, ScriptedLostWriteAcksButNeverLands) {
  disk_.EnableIntegrity();
  sim::FaultPlan plan;
  plan.disk_script = {{1, 'w', 0}};
  sim::FaultInjector faults(plan);
  disk_.SetFaultInjector(&faults);

  FrameId f = *mem_.Alloc();
  std::memset(mem_.Data(f).data(), 0x5a, kPageSize);
  Status got = Status::kIoError;
  disk_.Submit({.write = true, .start = 50, .nblocks = 1, .frames = {f},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();

  EXPECT_EQ(got, Status::kOk);            // the ack is the lie
  EXPECT_EQ(disk_.RawBlock(50)[0], 0x00); // the media never changed
  EXPECT_EQ(disk_.stats().lost_blocks, 1u);
  EXPECT_EQ(disk_.stats().blocks_written, 0u);  // not a durable write
  EXPECT_EQ(faults.stats().disk_lost_writes, 1u);
  // The residual window, stated precisely: old content + old tag is
  // self-consistent, so the block-local check CANNOT catch a lost overwrite.
  EXPECT_EQ(disk_.CheckBlock(50), BlockIntegrity::kOk);
  disk_.SetFaultInjector(nullptr);
}

TEST_F(DiskTest, ScriptedMisdirectLandsAtVictimWithWrongIntendedTag) {
  disk_.EnableIntegrity();
  sim::FaultPlan plan;
  plan.disk_script = {{1, 'm', 777}};
  sim::FaultInjector faults(plan);
  disk_.SetFaultInjector(&faults);
  sim::Counters counters;
  disk_.AttachCounters(&counters);  // also wires fault.* through the injector

  FrameId f = *mem_.Alloc();
  std::memset(mem_.Data(f).data(), 0x5a, kPageSize);
  disk_.Submit({.write = true, .start = 60, .nblocks = 1, .frames = {f}, .done = {}});
  engine_.RunUntilIdle();

  EXPECT_EQ(disk_.RawBlock(60)[0], 0x00);   // intended block kept its old bytes
  EXPECT_EQ(disk_.RawBlock(777)[0], 0x5a);  // the victim was overwritten
  EXPECT_EQ(disk_.CheckBlock(60), BlockIntegrity::kOk);  // stale-but-consistent
  // The victim's tag says "these bytes were meant for LBA 60": detectable.
  EXPECT_EQ(disk_.CheckBlock(777), BlockIntegrity::kMisdirected);
  EXPECT_EQ(disk_.stats().misdirected_blocks, 1u);
  EXPECT_EQ(counters.Get("fault.disk_misdirects"), 1u);
  disk_.SetFaultInjector(nullptr);
}

TEST_F(DiskTest, ScriptedRotFlipsMediaPersistently) {
  FrameId f = *mem_.Alloc();
  std::memset(mem_.Data(f).data(), 0x11, kPageSize);
  disk_.Submit({.write = true, .start = 70, .nblocks = 1, .frames = {f}, .done = {}});
  engine_.RunUntilIdle();
  disk_.EnableIntegrity();

  sim::FaultPlan plan;
  plan.disk_script = {{1, 'r', 9}};
  sim::FaultInjector faults(plan);
  disk_.SetFaultInjector(&faults);

  FrameId dst = *mem_.Alloc();
  Status got = Status::kIoError;
  disk_.Submit({.write = false, .start = 70, .nblocks = 1, .frames = {dst},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();

  EXPECT_EQ(got, Status::kOk);  // rot reads "succeed" — that is what makes it silent
  EXPECT_EQ(mem_.Data(dst)[9], 0x11 ^ 0x20);  // the flip reached the caller
  EXPECT_EQ(disk_.RawBlock(70)[9], 0x11 ^ 0x20);  // and it is persistent media damage
  EXPECT_EQ(disk_.CheckBlock(70), BlockIntegrity::kBadChecksum);  // but the tag knows
  EXPECT_EQ(disk_.stats().rotted_blocks, 1u);

  // Later reads (no more scripted events) serve the rotted bytes verbatim.
  disk_.SetFaultInjector(nullptr);
  disk_.Submit({.write = false, .start = 70, .nblocks = 1, .frames = {dst},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(got, Status::kOk);
  EXPECT_EQ(mem_.Data(dst)[9], 0x11 ^ 0x20);
}

TEST_F(DiskTest, LatentSectorPersistsAcrossPowerCycleAndDetachUntilRewritten) {
  disk_.EnableIntegrity();
  sim::FaultPlan plan;
  plan.disk_script = {{1, 'l', 0}};
  sim::FaultInjector faults(plan);
  disk_.SetFaultInjector(&faults);

  FrameId f = *mem_.Alloc();
  Status got = Status::kOk;
  disk_.Submit({.write = false, .start = 80, .nblocks = 1, .frames = {f},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(got, Status::kIoError);
  EXPECT_EQ(disk_.stats().latent_errors, 1u);
  EXPECT_EQ(disk_.CheckBlock(80), BlockIntegrity::kUnreadable);

  // The bad sector is media state: it survives a power cycle AND injector
  // detach — it belongs to the platter, not to the injector's bookkeeping.
  disk_.PowerCut();
  disk_.PowerRestore();
  disk_.SetFaultInjector(nullptr);
  disk_.Submit({.write = false, .start = 80, .nblocks = 1, .frames = {f},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(got, Status::kIoError);
  EXPECT_EQ(disk_.stats().latent_errors, 2u);

  // Rewriting the sector remaps it: reads work again.
  std::memset(mem_.Data(f).data(), 0x22, kPageSize);
  disk_.Submit({.write = true, .start = 80, .nblocks = 1, .frames = {f}, .done = {}});
  engine_.RunUntilIdle();
  EXPECT_EQ(disk_.CheckBlock(80), BlockIntegrity::kOk);
  disk_.Submit({.write = false, .start = 80, .nblocks = 1, .frames = {f},
                .done = [&](Status s) { got = s; }});
  engine_.RunUntilIdle();
  EXPECT_EQ(got, Status::kOk);
  EXPECT_EQ(mem_.Data(f)[0], 0x22);
}

TEST_F(DiskTest, RateModeMediaFaultScheduleIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    sim::Engine engine;
    PhysMem mem(64);
    Disk disk(&engine, &mem, DiskGeometry{}, 200);
    disk.EnableIntegrity();
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.disk_lost_rate = 0.2;
    plan.disk_misdirect_rate = 0.1;
    plan.disk_rot_rate = 0.2;
    plan.disk_latent_rate = 0.1;
    sim::FaultInjector faults(plan);
    disk.SetFaultInjector(&faults);
    FrameId f = *mem.Alloc();
    for (uint32_t i = 0; i < 32; ++i) {
      disk.Submit({.write = true, .start = 100 + i, .nblocks = 1, .frames = {f},
                   .done = {}});
      engine.RunUntilIdle();
      disk.Submit({.write = false, .start = 100 + i, .nblocks = 1, .frames = {f},
                   .done = [](Status) {}});
      engine.RunUntilIdle();
    }
    disk.SetFaultInjector(nullptr);
    return faults.log();
  };
  auto a = run(11);
  auto b = run(11);
  auto c = run(12);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(NicTest, PacketDeliveredWithWireDelay) {
  sim::Engine engine;
  Nic a(0);
  Nic b(1);
  Link link(&engine, 100.0, 50.0, 200);  // 100 Mbit/s, 50 us latency
  link.Connect(&a, &b);

  std::vector<uint8_t> got;
  b.SetReceiveHandler([&](Packet p) { got = std::move(p.bytes); });

  a.Transmit({.bytes = {1, 2, 3, 4}});
  EXPECT_TRUE(got.empty());  // not delivered synchronously
  engine.RunUntilIdle();
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3, 4}));
  // 64B min frame + 24B overhead at 100 Mbit/s = 7.04 us + 50 us latency.
  EXPECT_NEAR(static_cast<double>(engine.now()) / 200.0, 57.0, 1.0);
}

TEST(NicTest, LinkSerializesBackToBackFrames) {
  sim::Engine engine;
  Nic a(0);
  Nic b(1);
  Link link(&engine, 100.0, 0.0, 200);
  link.Connect(&a, &b);

  int received = 0;
  b.SetReceiveHandler([&](Packet) { ++received; });
  for (int i = 0; i < 10; ++i) {
    a.Transmit({.bytes = std::vector<uint8_t>(1000, 0)});
  }
  engine.RunUntilIdle();
  EXPECT_EQ(received, 10);
  // 10 frames of (1000+24)B at 100 Mbit/s: 10 * 81.92 us serialized end to end.
  EXPECT_NEAR(static_cast<double>(engine.now()) / 200.0, 819.2, 1.0);
}

TEST(NicTest, FullDuplexDirectionsIndependent) {
  sim::Engine engine;
  Nic a(0);
  Nic b(1);
  Link link(&engine, 100.0, 0.0, 200);
  link.Connect(&a, &b);
  sim::Cycles a_arrival = 0;
  sim::Cycles b_arrival = 0;
  a.SetReceiveHandler([&](Packet) { a_arrival = engine.now(); });
  b.SetReceiveHandler([&](Packet) { b_arrival = engine.now(); });
  a.Transmit({.bytes = std::vector<uint8_t>(1400, 0)});
  b.Transmit({.bytes = std::vector<uint8_t>(1400, 0)});
  engine.RunUntilIdle();
  EXPECT_EQ(a_arrival, b_arrival);  // no shared-medium contention on full duplex
}

TEST(NicTest, NoHandlerCountsDrop) {
  sim::Engine engine;
  Nic a(0);
  Nic b(1);
  Link link(&engine, 100.0, 0.0, 200);
  link.Connect(&a, &b);
  a.Transmit({.bytes = {9}});
  engine.RunUntilIdle();
  EXPECT_EQ(b.stats().dropped, 1u);
}

TEST(NicTest, LinkFaultsDropCorruptAndDuplicate) {
  auto run = [](uint64_t seed) {
    sim::Engine engine;
    Nic a(0);
    Nic b(1);
    Link link(&engine, 100.0, 0.0, 200);
    link.Connect(&a, &b);
    sim::FaultInjector faults({.seed = seed,
                               .net_drop_rate = 0.2,
                               .net_corrupt_rate = 0.2,
                               .net_duplicate_rate = 0.2,
                               .net_corrupt_min_offset = 8});
    link.SetFaultInjector(&faults);

    uint64_t received = 0;
    uint64_t corrupted = 0;
    b.SetReceiveHandler([&](Packet p) {
      ++received;
      for (uint8_t byte : p.bytes) {
        if (byte != 0x42) {
          ++corrupted;
          break;
        }
      }
    });
    for (int i = 0; i < 200; ++i) {
      a.Transmit({.bytes = std::vector<uint8_t>(100, 0x42)});
    }
    engine.RunUntilIdle();
    const auto& st = faults.stats();
    EXPECT_EQ(st.frames_seen, 200u);
    EXPECT_GT(st.net_drops, 0u);
    EXPECT_GT(st.net_corruptions, 0u);
    EXPECT_GT(st.net_duplicates, 0u);
    EXPECT_EQ(received, 200u - st.net_drops + st.net_duplicates);
    EXPECT_EQ(corrupted, st.net_corruptions);
    return faults.log();
  };
  // Same seed => byte-for-byte the same fault schedule; different seed => not.
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(NicTest, CorruptionSparesBytesBelowMinOffset) {
  sim::Engine engine;
  Nic a(0);
  Nic b(1);
  Link link(&engine, 100.0, 0.0, 200);
  link.Connect(&a, &b);
  sim::FaultInjector faults({.seed = 3, .net_corrupt_rate = 1.0,
                             .net_corrupt_min_offset = 32});
  link.SetFaultInjector(&faults);

  uint64_t delivered = 0;
  b.SetReceiveHandler([&](Packet p) {
    ++delivered;
    for (size_t i = 0; i < 32; ++i) {
      EXPECT_EQ(p.bytes[i], 0x11) << "header byte " << i << " corrupted";
    }
  });
  for (int i = 0; i < 50; ++i) {
    a.Transmit({.bytes = std::vector<uint8_t>(200, 0x11)});
  }
  // Frames shorter than the protected prefix are dropped rather than corrupted.
  a.Transmit({.bytes = std::vector<uint8_t>(16, 0x11)});
  engine.RunUntilIdle();
  EXPECT_EQ(delivered, 50u);
  EXPECT_EQ(faults.stats().net_corruptions, 50u);
  EXPECT_EQ(faults.stats().net_drops, 1u);
}

// A downed NIC is silent hardware: transmits refuse, arrivals vanish, the DMA
// rings are cleared; bringing it back up restores normal service.
TEST(NicTest, DownNicRefusesTransmitAndDropsArrivals) {
  sim::Engine engine;
  Nic a(0);
  Nic b(1);
  Link link(&engine, 100.0, 0.0, 200);
  link.Connect(&a, &b);
  int received = 0;
  b.SetReceiveHandler([&](Packet) { ++received; });

  b.SetUp(false);
  EXPECT_FALSE(b.up());
  a.Transmit({.bytes = std::vector<uint8_t>(64, 1)});
  engine.RunUntilIdle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(b.stats().dropped, 1u);
  EXPECT_FALSE(b.Transmit({.bytes = std::vector<uint8_t>(64, 2)}));
  EXPECT_EQ(b.stats().tx_rejected, 1u);

  b.SetUp(true);
  a.Transmit({.bytes = std::vector<uint8_t>(64, 3)});
  engine.RunUntilIdle();
  EXPECT_EQ(received, 1);
}

// The firmware probe responder echoes kProbeProto frames (addresses swapped)
// without involving the rx handler; a downed NIC stays silent.
TEST(NicTest, ProbeResponderEchoesBelowTheStack) {
  sim::Engine engine;
  Nic prober(0);
  Nic target(1);
  Link link(&engine, 100.0, 10.0, 200);
  link.Connect(&prober, &target);
  target.EnableProbeResponder();
  int handler_saw = 0;
  target.SetReceiveHandler([&](Packet) { ++handler_saw; });
  std::vector<uint8_t> reply;
  prober.SetReceiveHandler([&](Packet p) { reply = std::move(p.bytes); });

  Packet probe;
  probe.bytes.assign(kProbeFrameBytes, 0);
  probe.bytes[0] = kProbeProto;
  probe.bytes[1] = 7;   // prober address
  probe.bytes[5] = 42;  // target address
  probe.bytes[9] = 0xab;  // seq
  prober.Transmit(std::move(probe));
  engine.RunUntilIdle();

  ASSERT_EQ(reply.size(), static_cast<size_t>(kProbeFrameBytes));
  EXPECT_EQ(handler_saw, 0);  // firmware answered; the stack never saw it
  EXPECT_EQ(reply[0], kProbeProto);
  EXPECT_EQ(reply[1], 42);  // addresses swapped
  EXPECT_EQ(reply[5], 7);
  EXPECT_EQ(reply[9], 0xab);  // seq untouched

  // Dead hardware is silent: no echo while the NIC is down.
  reply.clear();
  target.SetUp(false);
  Packet probe2;
  probe2.bytes.assign(kProbeFrameBytes, 0);
  probe2.bytes[0] = kProbeProto;
  prober.Transmit(std::move(probe2));
  engine.RunUntilIdle();
  EXPECT_TRUE(reply.empty());
}

// Kill/reboot lifecycle: kill downs every NIC and power-cuts every disk, then
// runs the kill listeners; reboot restores power and runs the reboot
// listeners. Both are idempotent so ddmin-orphaned reboots replay cleanly.
TEST(MachineTest, KillAndRebootLifecycle) {
  sim::Engine engine;
  MachineConfig mc;
  mc.mem_frames = 64;
  Machine m(&engine, mc);
  std::vector<std::string> log;
  m.AddKillListener([&] { log.push_back("kill"); });
  m.AddRebootListener([&] { log.push_back("reboot"); });

  EXPECT_TRUE(m.alive());
  m.Reboot();  // reboot while alive: no-op
  EXPECT_TRUE(log.empty());

  m.Kill();
  EXPECT_FALSE(m.alive());
  EXPECT_FALSE(m.nic(0).up());
  EXPECT_TRUE(m.disk(0).powered_off());
  m.Kill();  // idempotent: listeners fire once
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "kill");

  m.Reboot();
  EXPECT_TRUE(m.alive());
  EXPECT_TRUE(m.nic(0).up());
  EXPECT_FALSE(m.disk(0).powered_off());
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1], "reboot");
}

TEST(MachineTest, ChargeAdvancesSharedClock) {
  sim::Engine engine;
  Machine m(&engine, MachineConfig{.mem_frames = 32});
  m.Charge(1000);
  EXPECT_EQ(engine.now(), 1000u);
}

TEST(MachineTest, ConfigShapesHardware) {
  sim::Engine engine;
  MachineConfig cfg;
  cfg.mem_frames = 100;
  cfg.disks = {DiskGeometry{}, DiskGeometry{}};
  cfg.num_nics = 3;
  Machine m(&engine, cfg);
  EXPECT_EQ(m.mem().num_frames(), 100u);
  EXPECT_EQ(m.num_disks(), 2u);
  EXPECT_EQ(m.num_nics(), 3u);
}

}  // namespace
}  // namespace exo::hw
