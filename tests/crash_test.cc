// Crash-consistency harness (Sec. 4.4): XN claims on-disk metadata is recoverable
// after a crash at ANY instant, without synchronous metadata writes. This test makes
// that claim checkable: run a C-FFS workload once fault-free to count its K durable
// block writes, then for every k in [1, K] replay it with power cut after the k-th
// write, recover, and assert the invariants:
//
//   - no acknowledged-durable data is lost: every file present at the last
//     successful Sync() reads back intact (an in-place overwrite torn mid-sync may
//     leave old-or-new content at block granularity — never anything else);
//   - the rebuilt free map is consistent with reachability: filling every free
//     block with new data never corrupts a durable file (a reachable block marked
//     free would be reallocated and scribbled);
//   - no reachable block is tainted, and the whole tree walks and reads cleanly —
//     free blocks are pre-filled with garbage after Format, so recovery reaching a
//     never-written block would surface as unparseable metadata or garbage reads.
//
// Fault schedules are seed-deterministic: the same FaultPlan seed yields the same
// injector log byte-for-byte, so any failing k reproduces exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fs/cffs.h"
#include "fs/xn_backend.h"
#include "hw/machine.h"
#include "sim/fault.h"
#include "sim/shrink.h"
#include "sim/sweep.h"
#include "xn/xn.h"

namespace exo::fs {
namespace {

// Thrown by the blocker when the simulated power cut freezes the disk: the workload
// is abandoned mid-operation, exactly as a real crash abandons a syscall.
struct PowerLoss {};

// What the application may rely on after a crash. `files` maps path -> contents as
// of the last acknowledged Sync(); `gone` lists paths whose unlink was acknowledged.
struct DurableState {
  std::map<std::string, std::vector<uint8_t>> files;
  std::vector<std::string> gone;
};

std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return v;
}

// One self-contained machine + XN + C-FFS stack whose media survives Recover().
class Rig {
 public:
  Rig()
      : machine_(&engine_, hw::MachineConfig{
                               .mem_frames = 4096,
                               .disks = {hw::DiskGeometry{.num_blocks = 2048}}}) {
    xn_ = std::make_unique<xn::Xn>(&machine_, &machine_.disk());
    xn_->Format();
    EXO_CHECK_EQ(xn_->Attach(), Status::kOk);
  }

  // Fills every free data block with deterministic garbage so a recovery traversal
  // that reaches a never-written block cannot silently read zeros.
  void ScribbleFreeBlocks() {
    for (hw::BlockId b = xn_->FirstDataBlock(); b < xn_->NumBlocks(); ++b) {
      if (xn_->IsAllocated(b)) {
        continue;
      }
      auto img = machine_.disk().RawBlock(b);
      for (size_t i = 0; i < img.size(); ++i) {
        img[i] = static_cast<uint8_t>(b * 37 + i * 11 + 0x5a);
      }
    }
  }

  // Arms the per-block integrity sidecar, stamping the current media (including
  // the free-block scribble) as the trusted baseline — what mkfs-time enablement
  // sees on a real install.
  void ArmIntegrity() { machine_.disk().EnableIntegrity(); }

  void MakeFs() {
    backend_ = MakeBackend();
    fs_ = std::make_unique<Cffs>(backend_.get(), CffsOptions{.fsid = 1});
    EXO_CHECK_EQ(fs_->Mkfs(), Status::kOk);
    // Mkfs leaves the root dirty; sync it so the empty file system is the durable
    // baseline (as a real mkfs tool does before exiting).
    EXO_CHECK_EQ(fs_->Sync(), Status::kOk);
  }

  // Simulated reboot: abandon volatile state, restore power, re-attach (running
  // XN's recovery GC), and remount. Returns "" or a description of what failed.
  // `keep_injector` leaves the fault injector armed across the reboot, so
  // scripted read faults (latent sectors, rot) keep firing against recovery and
  // post-recovery reads — media faults do not reboot away.
  std::string Recover(bool keep_injector = false) {
    engine_.RunUntilIdle();  // drain stale events (power-cut-epoch guarded)
    xn_->Crash();
    machine_.disk().PowerRestore();
    if (!keep_injector) {
      machine_.disk().SetFaultInjector(nullptr);
    }
    fs_.reset();
    backend_.reset();
    xn_.reset();
    xn_ = std::make_unique<xn::Xn>(&machine_, &machine_.disk());
    if (Status s = xn_->Attach(); s != Status::kOk) {
      return std::string("recovery: Attach: ") + StatusName(s);
    }
    if (!xn_->recovered_after_crash()) {
      return "recovery: free-map rebuild did not run";
    }
    backend_ = MakeBackend();
    fs_ = std::make_unique<Cffs>(backend_.get(), CffsOptions{.fsid = 1});
    if (Status s = fs_->Mount(); s != Status::kOk) {
      return std::string("recovery: Mount failed: ") + StatusName(s);
    }
    return "";
  }

  sim::Engine& engine() { return engine_; }
  hw::Disk& disk() { return machine_.disk(); }
  xn::Xn* xn() { return xn_.get(); }
  XnBackend* backend() { return backend_.get(); }
  Cffs* fs() { return fs_.get(); }

 private:
  // The blocker drains every pending event before conceding power loss: completion
  // callbacks scheduled pre-cut may reference stack frames that the PowerLoss
  // unwind is about to destroy, so they must fire (or be epoch-cancelled) first.
  Blocker MakeBlocker() {
    return [this](const std::function<bool()>& ready) {
      int spins = 0;
      while (!ready()) {
        if (engine_.HasPendingEvents()) {
          engine_.RunNextEvent();
        } else if (machine_.disk().powered_off()) {
          throw PowerLoss{};
        } else {
          engine_.Advance(20'000);
        }
        EXO_CHECK_LT(++spins, 1'000'000);
      }
    };
  }

  std::unique_ptr<XnBackend> MakeBackend() {
    return std::make_unique<XnBackend>(
        xn_.get(), xn::Caps{xok::Capability::For({xok::kCapFs, 1})}, MakeBlocker(),
        [this] {
          auto f = machine_.mem().Alloc();
          return f.ok() ? *f : hw::kInvalidFrame;
        });
  }

  sim::Engine engine_;
  hw::Machine machine_;
  std::unique_ptr<xn::Xn> xn_;
  std::unique_ptr<XnBackend> backend_;
  std::unique_ptr<Cffs> fs_;
};

// The scripted workload: new files, nested directories, a multi-block in-place
// overwrite, an unlink, and reallocation into freed space — each phase ending in a
// Sync that, once acknowledged, promotes the running state into *acked. *pending
// always tracks the latest issued (possibly unacknowledged) state. Throws PowerLoss
// from inside the blocker when the cut hits. Returns "" or an error description.
std::string RunWorkload(Cffs* fs, DurableState* acked, DurableState* pending,
                        int sync_attempts = 1,
                        std::vector<DurableState>* history = nullptr) {
  if (history != nullptr) {
    history->push_back(DurableState{});  // the empty post-mkfs baseline
  }
  auto write_file = [&](const std::string& path, uint64_t off,
                        const std::vector<uint8_t>& data) -> std::string {
    auto h = fs->Lookup(path);
    if (!h.ok()) {
      h = fs->Create(path, 7, false);
      if (!h.ok()) {
        return path + ": create: " + StatusName(h.status());
      }
    }
    auto n = fs->Write(*h, off, data, 7);
    if (!n.ok() || *n != data.size()) {
      return path + ": write: " + StatusName(n.status());
    }
    auto& v = pending->files[path];
    if (v.size() < off + data.size()) {
      v.resize(off + data.size(), 0);
    }
    std::copy(data.begin(), data.end(), v.begin() + off);
    return "";
  };
  auto mkdir = [&](const std::string& path) -> std::string {
    auto h = fs->Create(path, 7, true);
    return h.ok() ? "" : path + ": mkdir: " + StatusName(h.status());
  };
  auto unlink = [&](const std::string& path) -> std::string {
    if (Status s = fs->Unlink(path, 7); s != Status::kOk) {
      return path + ": unlink: " + StatusName(s);
    }
    pending->files.erase(path);
    pending->gone.push_back(path);
    return "";
  };
  auto sync = [&]() -> std::string {
    Status s = Status::kIoError;
    for (int i = 0; i < sync_attempts; ++i) {
      s = fs->Sync();
      if (s == Status::kOk) {
        break;
      }
    }
    if (s != Status::kOk) {
      return std::string("sync: ") + StatusName(s);
    }
    *acked = *pending;
    if (history != nullptr) {
      history->push_back(*acked);  // one durable generation per acknowledged sync
    }
    return "";
  };

  std::string e;
  // Phase 1: a directory and a small file.
  if (!(e = mkdir("/docs")).empty()) return e;
  if (!(e = write_file("/docs/a", 0, Pattern(6000, 1))).empty()) return e;
  if (!(e = sync()).empty()) return e;
  // Phase 2: a multi-block file and a nested directory.
  if (!(e = write_file("/docs/b", 0, Pattern(3 * 4096 + 500, 2))).empty()) return e;
  if (!(e = mkdir("/docs/sub")).empty()) return e;
  if (!(e = write_file("/docs/sub/c", 0, Pattern(3000, 3))).empty()) return e;
  if (!(e = sync()).empty()) return e;
  // Phase 3: same-size in-place overwrite of already-durable data (the torn case:
  // after a cut mid-sync each block holds old or new content, nothing else).
  if (!(e = write_file("/docs/a", 0, Pattern(6000, 4))).empty()) return e;
  if (!(e = sync()).empty()) return e;
  // Phase 4: acknowledged unlink.
  if (!(e = unlink("/docs/b")).empty()) return e;
  if (!(e = sync()).empty()) return e;
  // Phase 5: new file, reallocating into the freed space.
  if (!(e = write_file("/docs/d", 0, Pattern(2 * 4096, 6))).empty()) return e;
  if (!(e = sync()).empty()) return e;
  return "";
}

// Reads every file under `dir` in full. Garbage-reachable metadata (wild sizes,
// pointers into scribbled blocks) surfaces here as a failed stat/read.
std::string WalkTree(Cffs* fs, const std::string& dir) {
  auto list = fs->ReadDir(dir);
  if (!list.ok()) {
    return dir + ": readdir: " + StatusName(list.status());
  }
  for (const auto& de : *list) {
    std::string path = dir == "/" ? "/" + de.name : dir + "/" + de.name;
    if (de.is_dir) {
      if (auto e = WalkTree(fs, path); !e.empty()) {
        return e;
      }
    } else {
      auto h = fs->Lookup(path);
      if (!h.ok()) {
        return path + ": listed but unlookupable: " + StatusName(h.status());
      }
      auto st = fs->Stat(*h);
      if (!st.ok()) {
        return path + ": stat: " + StatusName(st.status());
      }
      std::vector<uint8_t> buf(st->size);
      auto n = fs->Read(*h, 0, buf);
      if (!n.ok() || *n != buf.size()) {
        return path + ": read: " + StatusName(n.status());
      }
    }
  }
  return "";
}

// Post-recovery invariant checks against the last acknowledged durable state.
std::string Verify(Rig& rig, const DurableState& acked, const DurableState& pending) {
  Cffs* fs = rig.fs();
  std::set<std::string> maybe_gone(pending.gone.begin(), pending.gone.end());

  // A durable file must read back block-for-block as its acknowledged image, except
  // where an unacknowledged in-place overwrite was mid-flight: those blocks may
  // hold the new image instead (old-or-new, never a mix within a block).
  auto check_file = [&](const std::string& path,
                        const std::vector<uint8_t>& want) -> std::string {
    auto it = pending.files.find(path);
    const std::vector<uint8_t>& newer = it != pending.files.end() ? it->second : want;
    auto h = fs->Lookup(path);
    if (!h.ok()) {
      return path + ": durable file lost (" + StatusName(h.status()) + ")";
    }
    auto st = fs->Stat(*h);
    if (!st.ok()) {
      return path + ": stat failed";
    }
    if (st->size != want.size() && st->size != newer.size()) {
      return path + ": size " + std::to_string(st->size);
    }
    std::vector<uint8_t> got(st->size);
    auto n = fs->Read(*h, 0, got);
    if (!n.ok() || *n != got.size()) {
      return path + ": read failed";
    }
    for (size_t i = 0; i < got.size(); i += hw::kBlockSize) {
      size_t end = std::min(got.size(), i + static_cast<size_t>(hw::kBlockSize));
      auto eq = [&](const std::vector<uint8_t>& ref) {
        return end <= ref.size() &&
               std::equal(got.begin() + i, got.begin() + end, ref.begin() + i);
      };
      if (!eq(want) && !eq(newer)) {
        return path + ": torn beyond old-or-new at offset " + std::to_string(i);
      }
    }
    auto blocks = fs->FileBlocks(*h);
    if (!blocks.ok()) {
      return path + ": FileBlocks failed";
    }
    for (hw::BlockId b : *blocks) {
      if (!rig.xn()->IsAllocated(b)) {
        return path + ": reachable block " + std::to_string(b) + " marked free";
      }
      if (rig.xn()->IsTaintedBlock(b)) {
        return path + ": reachable block " + std::to_string(b) + " tainted";
      }
    }
    return "";
  };

  for (const auto& [path, data] : acked.files) {
    if (maybe_gone.count(path)) {
      // Unlink issued but not acknowledged: the file is either fully intact or
      // fully gone, never half-present.
      auto h = fs->Lookup(path);
      if (h.ok()) {
        if (auto e = check_file(path, data); !e.empty()) {
          return e;
        }
      } else if (h.status() != Status::kNotFound) {
        return path + ": odd lookup status " + StatusName(h.status());
      }
      continue;
    }
    if (auto e = check_file(path, data); !e.empty()) {
      return e;
    }
  }
  for (const auto& path : acked.gone) {
    if (fs->Lookup(path).status() != Status::kNotFound) {
      return path + ": acknowledged unlink resurrected";
    }
  }
  if (auto e = WalkTree(fs, "/"); !e.empty()) {
    return e;
  }

  // Free map vs. reachability: claim (nearly) every free block for a new file. If
  // recovery left any reachable block marked free, the fill overwrites it and the
  // re-verification below catches the corruption.
  auto hfill = fs->Create("/fill", 7, false);
  if (!hfill.ok()) {
    return std::string("/fill: create: ") + StatusName(hfill.status());
  }
  std::vector<uint8_t> chunk(8 * hw::kBlockSize);
  uint64_t off = 0;
  for (int iter = 0; rig.backend()->FreeBlockCount() > 128 && iter < 4096; ++iter) {
    for (size_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = static_cast<uint8_t>(off + i * 13 + 7);
    }
    auto n = fs->Write(*hfill, off, chunk, 7);
    if (!n.ok()) {
      break;  // disk full — expected termination
    }
    off += *n;
    if (*n < chunk.size()) {
      break;
    }
  }
  if (off == 0) {
    return "/fill: wrote nothing";
  }
  if (Status s = fs->Sync(); s != Status::kOk) {
    return std::string("/fill: sync: ") + StatusName(s);
  }
  for (const auto& [path, data] : acked.files) {
    if (maybe_gone.count(path)) {
      continue;
    }
    if (auto e = check_file(path, data); !e.empty()) {
      return "after fill: " + e;
    }
  }
  return "";
}

// One sweep trial: replay the workload with power cut after the k-th durable block
// write, recover, verify. Returns "" on success.
std::string Trial(uint64_t k) {
  sim::FaultPlan plan;
  plan.seed = 1;
  plan.power_cut_after_blocks = k;
  sim::FaultInjector faults(plan);

  Rig rig;
  rig.ScribbleFreeBlocks();
  rig.MakeFs();
  rig.disk().SetFaultInjector(&faults);  // armed only for the workload replay

  DurableState acked;
  DurableState pending;
  bool cut = false;
  std::string err;
  try {
    err = RunWorkload(rig.fs(), &acked, &pending);
  } catch (const PowerLoss&) {
    cut = true;
  }
  if (!err.empty()) {
    return "workload: " + err;
  }
  if (!cut || faults.stats().power_cuts != 1) {
    return "power cut never fired";
  }
  if (auto e = rig.Recover(); !e.empty()) {
    return e;
  }
  return Verify(rig, acked, pending);
}

TEST(CrashSweep, EveryCutPointRecoversConsistently) {
  // Fault-free run: establish K, the number of durable block writes the workload
  // performs after mkfs, and sanity-check the workload itself.
  uint64_t num_writes = 0;
  {
    Rig rig;
    rig.ScribbleFreeBlocks();
    rig.MakeFs();
    const uint64_t before = rig.disk().stats().blocks_written;
    DurableState acked;
    DurableState pending;
    ASSERT_EQ(RunWorkload(rig.fs(), &acked, &pending), "");
    num_writes = rig.disk().stats().blocks_written - before;
    EXPECT_EQ(acked.files.size(), 3u);  // a, sub/c, d — b was unlinked
    EXPECT_EQ(acked.gone.size(), 1u);
  }
  ASSERT_GT(num_writes, 10u);

  auto outcome = sim::SweepCutPoints(num_writes, Trial);
  EXPECT_EQ(outcome.trials, num_writes);
  EXPECT_TRUE(outcome.ok()) << outcome.Summary();
}

// The reproducibility contract: the same seed and workload yield the same injector
// schedule byte-for-byte; a different seed yields a different one. (The workload
// here runs under transient disk errors, exercising backend retry paths end to end.)
TEST(CrashSweep, SameSeedYieldsIdenticalFaultSchedule) {
  auto run = [](uint64_t seed) {
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.disk_error_rate = 0.1;
    sim::FaultInjector faults(plan);
    Rig rig;
    rig.MakeFs();
    rig.disk().SetFaultInjector(&faults);
    DurableState acked;
    DurableState pending;
    // Syncs may fail wholesale when the batch write draws an error: retry, as a
    // sync daemon would.
    EXPECT_EQ(RunWorkload(rig.fs(), &acked, &pending, /*sync_attempts=*/20), "");
    rig.disk().SetFaultInjector(nullptr);
    return faults.log();
  };
  auto a = run(77);
  auto b = run(77);
  auto c = run(78);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// ---- Crash × corruption matrix ----
//
// Each trial runs the workload under a power cut combined with a media-fault
// schedule (scripted or rate-drawn), with the integrity sidecar armed, reboots
// with the injector still attached (media faults do not reboot away), and then
// demands one of exactly two outcomes per datum:
//
//   - correct:  the bytes read back match SOME acknowledged durable generation
//     of the file — or, under lost/misdirected writes only, bytes that are
//     *tag-consistent*: a lost write rolls the block back to whatever
//     legitimately lived there before (an older generation, or the
//     never-written baseline), and block-local tags cannot distinguish that
//     from a write that never happened. That is the residual window
//     parent-checksum schemes (ZFS) close and per-block schemes document
//     (see docs/ROBUSTNESS.md);
//   - reported: the operation fails with kCorrupted (checksum or misdirect
//     caught, block quarantined) or kIoError (latent sector) — loud failure.
//
// Never acceptable: kOk with tag-inconsistent bytes, or (absent lossy writes)
// kOk with bytes matching no acknowledged generation. That would be silent
// corruption served as truth — the thing the tags exist to make impossible.

struct TrialOutcome {
  bool detected = false;                 // a fault was caught and reported
  std::string err;                       // non-empty: an invariant was violated
  std::vector<sim::DiskEvent> executed;  // the media schedule actually run
  std::vector<std::string> log;          // injector log, for replay comparison
};

// Verifies the recovered tree against the full durable-generation history.
// `lossy_writes` is true when the schedule could lose or misdirect writes:
// only then is tag-consistent rollback content acceptable.
std::string MatrixVerify(Rig& rig, const std::vector<DurableState>& history,
                         const DurableState& pending, bool lossy_writes,
                         bool* detected) {
  Cffs* fs = rig.fs();
  const DurableState& acked = history.back();
  std::set<std::string> maybe_gone(pending.gone.begin(), pending.gone.end());

  for (const auto& [path, want] : acked.files) {
    (void)want;
    auto h = fs->Lookup(path);
    if (!h.ok()) {
      if (h.status() == Status::kCorrupted || h.status() == Status::kIoError) {
        *detected = true;  // reported, not silent
        continue;
      }
      if (h.status() == Status::kNotFound) {
        if (maybe_gone.count(path) != 0) {
          continue;  // unlink was in flight: fully gone is legal
        }
        // A lost metadata write can erase the file's creation entirely — legal
        // only if some durable generation predates the file.
        bool ever_absent = false;
        for (const auto& gen : history) {
          if (gen.files.find(path) == gen.files.end()) {
            ever_absent = true;
            break;
          }
        }
        if (ever_absent) {
          continue;
        }
      }
      return path + ": lookup: " + StatusName(h.status());
    }
    auto st = fs->Stat(*h);
    if (!st.ok()) {
      if (st.status() == Status::kCorrupted || st.status() == Status::kIoError) {
        *detected = true;
        continue;
      }
      return path + ": stat: " + StatusName(st.status());
    }
    auto size_matches = [&](const DurableState& gen) {
      auto it = gen.files.find(path);
      return it != gen.files.end() && it->second.size() == st->size;
    };
    bool size_ok = size_matches(pending);
    for (auto it = history.begin(); !size_ok && it != history.end(); ++it) {
      size_ok = size_matches(*it);
    }
    if (!size_ok) {
      return path + ": size " + std::to_string(st->size) +
             " matches no durable generation";
    }
    std::vector<uint8_t> got(st->size);
    auto n = fs->Read(*h, 0, got);
    if (!n.ok() || *n != got.size()) {
      if (n.status() == Status::kCorrupted || n.status() == Status::kIoError) {
        *detected = true;
        continue;
      }
      return path + ": read: " + StatusName(n.status());
    }
    auto blocks = fs->FileBlocks(*h);
    for (size_t i = 0; i < got.size(); i += hw::kBlockSize) {
      size_t end = std::min(got.size(), i + static_cast<size_t>(hw::kBlockSize));
      auto block_matches = [&](const DurableState& gen) {
        auto it = gen.files.find(path);
        if (it == gen.files.end()) {
          return false;
        }
        const auto& ref = it->second;
        return end <= ref.size() &&
               std::equal(got.begin() + i, got.begin() + end, ref.begin() + i);
      };
      bool ok = block_matches(pending);
      for (auto it = history.begin(); !ok && it != history.end(); ++it) {
        ok = block_matches(*it);
      }
      if (!ok && lossy_writes && blocks.ok() && i / hw::kBlockSize < blocks->size()) {
        // Lost/misdirect-source window: the block rolled back to bytes that
        // legitimately lived there before the lost write. Such bytes pass the
        // block self-check; what must NEVER be served as kOk is
        // tag-inconsistent content.
        ok = rig.disk().CheckBlock((*blocks)[i / hw::kBlockSize]) ==
             hw::BlockIntegrity::kOk;
      }
      if (!ok) {
        return path + ": offset " + std::to_string(i) +
               ": bytes match no acknowledged generation (silent corruption)";
      }
    }
  }
  // The whole tree must walk cleanly or fail loudly.
  if (auto e = WalkTree(fs, "/"); !e.empty()) {
    if (e.find("CORRUPTED") != std::string::npos ||
        e.find("IO_ERROR") != std::string::npos) {
      *detected = true;
    } else {
      return e;
    }
  }
  return "";
}

// One matrix trial. `detach_before_verify` unarms the injector after recovery,
// bounding rate-mode schedules to the workload+recovery window (used by the
// shrink test so the recorded schedule stays small).
TrialOutcome MediaTrial(const sim::FaultPlan& plan, bool detach_before_verify) {
  TrialOutcome out;
  sim::FaultInjector faults(plan);
  Rig rig;
  rig.ScribbleFreeBlocks();
  rig.ArmIntegrity();
  rig.MakeFs();
  rig.disk().SetFaultInjector(&faults);

  DurableState acked;
  DurableState pending;
  std::vector<DurableState> history;
  bool cut = false;
  std::string werr;
  try {
    werr = RunWorkload(rig.fs(), &acked, &pending, 1, &history);
  } catch (const PowerLoss&) {
    cut = true;
  }
  if (!werr.empty()) {
    // A fault surfacing as a failed operation mid-workload is a *reported*
    // failure (e.g. a latent sector under a metadata read): acceptable, and
    // the crash still happens — at the moment the workload gave up.
    out.detected = true;
  }
  if (!cut) {
    rig.disk().PowerCut();  // fewer durable writes than the cut point: cut now
  }
  auto finish = [&]() {
    rig.disk().SetFaultInjector(nullptr);
    out.executed = faults.disk_events();
    out.log = faults.log();
  };
  if (auto e = rig.Recover(/*keep_injector=*/true); !e.empty()) {
    // Recovery refusing to come up because it *detected* corruption is the
    // contract working; anything else is a genuine failure.
    if (e.find("CORRUPTED") != std::string::npos ||
        e.find("IO_ERROR") != std::string::npos) {
      out.detected = true;
    } else {
      out.err = e;
    }
    finish();
    return out;
  }
  if (detach_before_verify) {
    rig.disk().SetFaultInjector(nullptr);
  }
  bool lossy = plan.disk_lost_rate > 0 || plan.disk_misdirect_rate > 0;
  for (const auto& e : plan.disk_script) {
    lossy = lossy || e.kind == 'w' || e.kind == 'm';
  }
  bool detected = false;
  try {
    out.err = MatrixVerify(rig, history, pending, lossy, &detected);
  } catch (const PowerLoss&) {
    out.err = "power cut re-fired during verification";
  }
  if (rig.xn()->stats().corrupt_detections > 0) {
    detected = true;  // something was quarantined (recovery fsck or a read)
  }
  out.detected = out.detected || detected;
  finish();
  return out;
}

TEST(CrashCorruptionMatrix, RecoversOrReportsNeverLies) {
  // Fault-free run: establish the durable-write count so cut points land inside
  // the workload even when lost writes shrink the durable tally.
  uint64_t num_writes = 0;
  {
    Rig rig;
    rig.ScribbleFreeBlocks();
    rig.MakeFs();
    const uint64_t before = rig.disk().stats().blocks_written;
    DurableState acked;
    DurableState pending;
    ASSERT_EQ(RunWorkload(rig.fs(), &acked, &pending), "");
    num_writes = rig.disk().stats().blocks_written - before;
  }
  ASSERT_GT(num_writes, 12u);
  const uint64_t kMax = num_writes - 6;
  const uint64_t cuts[] = {1, kMax / 4, kMax / 2, 3 * kMax / 4, kMax};
  const char* schedules[] = {
      "",                       // control: power cut only
      "w@2",                    // early lost write (metadata-heavy region)
      "w@12",                   // later lost write
      "m@6:200",                // misdirected write clobbering block 200
      "r@3:100",                // bit rot on the 3rd block read (post-recovery)
      "l@4",                    // latent sector on the 4th block read
      "w@5 m@9:40 r@2:9 l@7",   // compound schedule
  };
  for (uint64_t k : cuts) {
    for (const char* sched : schedules) {
      sim::FaultPlan plan;
      plan.seed = 1;
      plan.power_cut_after_blocks = k;
      std::string perr;
      plan.disk_script = sim::ParseDiskSchedule(sched, &perr);
      ASSERT_TRUE(std::string(sched).empty() || !plan.disk_script.empty()) << perr;
      TrialOutcome out = MediaTrial(plan, /*detach_before_verify=*/false);
      EXPECT_EQ(out.err, "") << "cut=" << k << " schedule=\"" << sched << "\"";
    }
  }
}

// The debugging contract for media faults, end to end: a rate-drawn schedule
// that provokes a detection is recorded, ddmin-minimized as a scripted
// DiskEvent sequence, round-tripped through the one-line codec, and replayed
// byte-for-byte — the printed DISK-REPRO line alone reproduces the failure.
TEST(CrashCorruptionMatrix, FailingScheduleShrinksToReplayableRepro) {
  sim::FaultPlan base;
  base.power_cut_after_blocks = 25;
  base.disk_misdirect_rate = 0.08;
  base.disk_lost_rate = 0.05;
  base.disk_rot_rate = 0.05;

  std::vector<sim::DiskEvent> recorded;
  uint64_t seed = 0;
  for (uint64_t s = 1; s <= 40 && recorded.empty(); ++s) {
    sim::FaultPlan plan = base;
    plan.seed = s;
    TrialOutcome out = MediaTrial(plan, /*detach_before_verify=*/true);
    ASSERT_EQ(out.err, "") << "seed " << s;
    if (out.detected && !out.executed.empty()) {
      recorded = out.executed;
      seed = s;
    }
  }
  ASSERT_FALSE(recorded.empty()) << "no seed in 1..40 provoked a detection";

  // The predicate replays a *scripted* candidate — no RNG — and asks whether
  // corruption is still detected. Scripted mode makes every probe exact.
  auto still_fails = [&](const std::vector<sim::DiskEvent>& subset) {
    sim::FaultPlan plan = base;  // same cut point; rates ignored once scripted
    plan.disk_script = subset;
    TrialOutcome out = MediaTrial(plan, /*detach_before_verify=*/true);
    return out.err.empty() && out.detected;
  };
  ASSERT_TRUE(still_fails(recorded)) << "recorded schedule does not replay";

  sim::BasicShrinker<sim::DiskEvent> shrinker(still_fails);
  auto minimal = shrinker.Minimize(recorded);
  ASSERT_FALSE(minimal.empty());
  EXPECT_LE(minimal.size(), 10u);

  // Round-trip through the codec, then replay twice: identical injector logs,
  // and the executed schedule is exactly the script (1-minimality means every
  // surviving event fires).
  const std::string line = sim::FormatDiskSchedule(minimal);
  std::string perr;
  EXPECT_EQ(sim::ParseDiskSchedule(line, &perr), minimal) << perr;
  sim::FaultPlan replay = base;
  replay.disk_script = minimal;
  TrialOutcome a = MediaTrial(replay, /*detach_before_verify=*/true);
  TrialOutcome b = MediaTrial(replay, /*detach_before_verify=*/true);
  EXPECT_TRUE(a.detected);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.executed, minimal);
  std::printf("DISK-REPRO seed=%llu cut=%llu schedule=\"%s\" (%zu events, %llu probes)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(base.power_cut_after_blocks),
              line.c_str(), minimal.size(),
              static_cast<unsigned long long>(shrinker.probes()));
}

}  // namespace
}  // namespace exo::fs
