// Tests for XN: templates, the buffer-cache registry, the UDF-verified alloc/dealloc
// protocol, ordered writes (taint tracking, will-free), and crash-recovery GC.
//
// The tests define a miniature libFS metadata format, "tnode": a block holding a u32
// child count at offset 0 followed by u32 child block pointers at offset 4. One
// template types children as raw data; a second types them as tnodes (for trees).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "hw/machine.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "udf/assembler.h"
#include "xn/registry.h"
#include "xn/types.h"
#include "xn/xn.h"

namespace exo::xn {
namespace {

using hw::BlockId;
using hw::FrameId;

udf::Program TnodeOwns(uint32_t child_type) {
  char src[512];
  std::snprintf(src, sizeof(src), R"(
      ldi r1, 0
      ld4 r2, r1, 0, meta     ; count
      ldi r3, 4               ; pointer offset
      ldi r4, 1               ; extent length
      ldi r5, %u              ; child template type
      bz r2, done
    loop:
      ld4 r6, r3, 0, meta
      emit r6, r4, r5
      addi r3, r3, 4
      addi r2, r2, -1
      bnz r2, loop
    done:
      ret r0
  )", child_type);
  auto r = udf::Assemble(src);
  EXO_CHECK(r.ok);
  return r.program;
}

// Approves callers whose first credential is writable and rooted at name part 7.
udf::Program RequireCap7Acl() {
  auto r = udf::Assemble(R"(
      ldi r1, 0
      ld2 r2, r1, 0, cred     ; cap count
      bz r2, deny
      ldi r3, 2
      ld1 r4, r3, 0, cred     ; write flag of cap 0
      ld2 r5, r3, 3, cred     ; first name part of cap 0
      ldi r6, 7
      ceq r7, r5, r6
      and r8, r7, r4
      ret r8
    deny:
      ldi r0, 0
      ret r0
  )");
  EXO_CHECK(r.ok);
  return r.program;
}

udf::Program SizeUf() {
  auto r = udf::Assemble("ldi r1, 4096\nret r1\n");
  EXO_CHECK(r.ok);
  return r.program;
}

Mods SetCount(uint32_t count) {
  ByteMod m;
  m.offset = 0;
  m.bytes = {static_cast<uint8_t>(count), static_cast<uint8_t>(count >> 8),
             static_cast<uint8_t>(count >> 16), static_cast<uint8_t>(count >> 24)};
  return {m};
}

ByteMod SetPtr(uint32_t index, BlockId b) {
  ByteMod m;
  m.offset = 4 + index * 4;
  m.bytes = {static_cast<uint8_t>(b), static_cast<uint8_t>(b >> 8),
             static_cast<uint8_t>(b >> 16), static_cast<uint8_t>(b >> 24)};
  return m;
}

class XnTest : public ::testing::Test {
 protected:
  XnTest()
      : machine_(&engine_, hw::MachineConfig{.mem_frames = 512,
                                             .disks = {hw::DiskGeometry{.num_blocks = 2048}}}),
        xn_(&machine_, &machine_.disk()) {
    xn_.Format();
    EXPECT_EQ(xn_.Attach(), Status::kOk);

    Template leaf;  // tnode whose children are raw data blocks
    leaf.name = "tnode-leaf";
    leaf.is_metadata = true;
    leaf.owns_udf = TnodeOwns(kDataTemplate);
    leaf.acl_uf = RequireCap7Acl();
    leaf.size_uf = SizeUf();
    auto lt = xn_.InstallTemplate(leaf);
    EXPECT_TRUE(lt.ok());
    leaf_tmpl_ = *lt;

    Template inner;  // tnode whose children are leaf tnodes
    inner.name = "tnode-inner";
    inner.is_metadata = true;
    inner.owns_udf = TnodeOwns(leaf_tmpl_);
    inner.acl_uf = RequireCap7Acl();
    inner.size_uf = SizeUf();
    auto it = xn_.InstallTemplate(inner);
    EXPECT_TRUE(it.ok());
    inner_tmpl_ = *it;

    good_creds_ = {xok::Capability::For({7, 1})};
    bad_creds_ = {xok::Capability::For({8, 1})};
  }

  FrameId NewFrame() {
    auto f = machine_.mem().Alloc();
    EXO_CHECK(f.ok());
    return *f;
  }

  // Creates a root, loads it, and returns its block.
  BlockId MakeRoot(const std::string& name, TemplateId tmpl, bool temporary = false) {
    auto r = xn_.RegisterRoot(name, tmpl, temporary);
    EXO_CHECK(r.ok());
    Status s = Status::kNotFound;
    EXO_CHECK_EQ(xn_.LoadRoot(name, NewFrame(), good_creds_, [&](Status st) { s = st; }),
                 Status::kOk);
    engine_.RunUntilIdle();
    EXO_CHECK_EQ(s, Status::kOk);
    return r->block;
  }

  // Allocates `n` data children under `meta` (a leaf tnode with `existing` children).
  std::vector<BlockId> AllocChildren(BlockId meta, uint32_t existing, uint32_t n,
                                     TemplateId type = kDataTemplate) {
    std::vector<BlockId> out;
    Mods mods = SetCount(existing + n);
    std::vector<udf::Extent> extents;
    BlockId hint = xn_.FirstDataBlock();
    for (uint32_t i = 0; i < n; ++i) {
      auto b = xn_.FindFreeRun(hint, 1);
      EXO_CHECK(b.ok());
      hint = *b + 1;
      mods.push_back(SetPtr(existing + i, *b));
      extents.push_back({*b, 1, type});
      out.push_back(*b);
    }
    EXO_CHECK_EQ(xn_.Alloc(meta, mods, extents, good_creds_), Status::kOk);
    return out;
  }

  Status FlushAll(std::vector<BlockId> blocks) {
    Status s = Status::kNotFound;
    Status submit = xn_.Write(blocks, [&](Status st) { s = st; });
    if (submit != Status::kOk) {
      return submit;
    }
    engine_.RunUntilIdle();
    return s;
  }

  sim::Engine engine_;
  hw::Machine machine_;
  Xn xn_;
  TemplateId leaf_tmpl_ = kInvalidTemplate;
  TemplateId inner_tmpl_ = kInvalidTemplate;
  Caps good_creds_;
  Caps bad_creds_;
};

TEST_F(XnTest, TemplatesPersistAcrossAttach) {
  xn_.Detach();
  Xn other(&machine_, &machine_.disk());
  EXPECT_EQ(other.Attach(), Status::kOk);
  EXPECT_FALSE(other.recovered_after_crash());
  auto t = other.LookupTemplate("tnode-leaf");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, leaf_tmpl_);
  const Template* tp = other.FindTemplate(*t);
  ASSERT_NE(tp, nullptr);
  EXPECT_TRUE(tp->is_metadata);
  EXPECT_EQ(tp->owns_udf.size(), TnodeOwns(kDataTemplate).size());
}

TEST_F(XnTest, TemplatesAreImmutableOnceInstalled) {
  Template again;
  again.name = "tnode-leaf";
  again.is_metadata = true;
  again.owns_udf = TnodeOwns(kDataTemplate);
  EXPECT_EQ(xn_.InstallTemplate(again).status(), Status::kAlreadyExists);
}

TEST_F(XnTest, NondeterministicOwnsUdfRejected) {
  auto bad = udf::Assemble("time r1\nemit r1, r1, r1\nret r0\n");
  ASSERT_TRUE(bad.ok);
  Template t;
  t.name = "evil";
  t.is_metadata = true;
  t.owns_udf = bad.program;
  EXPECT_EQ(xn_.InstallTemplate(t).status(), Status::kVerifierReject);
  // acl-uf, by contrast, may read the clock.
  Template ok;
  ok.name = "timed-acl";
  ok.is_metadata = true;
  ok.owns_udf = TnodeOwns(kDataTemplate);
  ok.acl_uf = bad.program;
  EXPECT_TRUE(xn_.InstallTemplate(ok).ok());
}

TEST_F(XnTest, RootRegistrationAllocatesAndPersists) {
  auto r = xn_.RegisterRoot("myfs", leaf_tmpl_, /*temporary=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(xn_.IsAllocated(r->block));
  EXPECT_EQ(xn_.RegisterRoot("myfs", leaf_tmpl_, false).status(), Status::kAlreadyExists);

  auto tmp = xn_.RegisterRoot("scratch", leaf_tmpl_, /*temporary=*/true);
  ASSERT_TRUE(tmp.ok());

  xn_.Detach();
  Xn other(&machine_, &machine_.disk());
  EXPECT_EQ(other.Attach(), Status::kOk);
  EXPECT_TRUE(other.LookupRoot("myfs").ok());
  // Temporary file systems do not survive (Sec. 4.3.2).
  EXPECT_EQ(other.LookupRoot("scratch").status(), Status::kNotFound);
}

TEST_F(XnTest, AllocatesExactlyClaimedBlocks) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  uint32_t free_before = xn_.FreeBlockCount();
  auto kids = AllocChildren(root, 0, 3);
  EXPECT_EQ(xn_.FreeBlockCount(), free_before - 3);
  for (BlockId b : kids) {
    EXPECT_TRUE(xn_.IsAllocated(b));
  }
  // The registry entry for the root is now dirty with count=3.
  auto bytes = xn_.ReadCached(root, good_creds_);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ((*bytes)[0], 3);
}

TEST_F(XnTest, AllocRejectsDeltaMismatch) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto b1 = xn_.FindFreeRun(xn_.FirstDataBlock(), 1);
  auto b2 = xn_.FindFreeRun(*b1 + 1, 1);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  // Claim we are allocating b2 but actually write a pointer to b1.
  Mods mods = SetCount(1);
  mods.push_back(SetPtr(0, *b1));
  std::vector<udf::Extent> claim = {{*b2, 1, kDataTemplate}};
  EXPECT_EQ(xn_.Alloc(root, mods, claim, good_creds_), Status::kBadMetadata);
  // Nothing was mutated by the failed attempt.
  EXPECT_FALSE(xn_.IsAllocated(*b1));
  EXPECT_FALSE(xn_.IsAllocated(*b2));
  auto bytes = xn_.ReadCached(root, good_creds_);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ((*bytes)[0], 0);
}

TEST_F(XnTest, AllocRejectsAlreadyAllocatedBlock) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 1);
  // A second tree trying to claim the same block is refused by the free-map check.
  BlockId root2 = MakeRoot("fs2", leaf_tmpl_);
  Mods mods = SetCount(1);
  mods.push_back(SetPtr(0, kids[0]));
  std::vector<udf::Extent> claim = {{kids[0], 1, kDataTemplate}};
  EXPECT_EQ(xn_.Alloc(root2, mods, claim, good_creds_), Status::kOutOfResources);
}

TEST_F(XnTest, AclUfDeniesWrongCredentials) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto b = xn_.FindFreeRun(xn_.FirstDataBlock(), 1);
  Mods mods = SetCount(1);
  mods.push_back(SetPtr(0, *b));
  std::vector<udf::Extent> claim = {{*b, 1, kDataTemplate}};
  EXPECT_EQ(xn_.Alloc(root, mods, claim, bad_creds_), Status::kPermissionDenied);
  EXPECT_EQ(xn_.Alloc(root, mods, claim, good_creds_), Status::kOk);
}

TEST_F(XnTest, ModifyMustPreserveOwnership) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  AllocChildren(root, 0, 1);
  // Rewriting unused tail bytes is fine.
  ByteMod scribble;
  scribble.offset = 2000;
  scribble.bytes = {1, 2, 3};
  EXPECT_EQ(xn_.Modify(root, {scribble}, good_creds_), Status::kOk);
  // Bumping the count (which would claim another pointer) is not a Modify.
  EXPECT_EQ(xn_.Modify(root, SetCount(2), good_creds_), Status::kBadMetadata);
}

TEST_F(XnTest, WriteRefusedWhileChildUninitialized) {
  BlockId root = MakeRoot("fs", inner_tmpl_);
  auto kids = AllocChildren(root, 0, 1, leaf_tmpl_);  // metadata child: uninitialized

  EXPECT_EQ(FlushAll({root}), Status::kTainted);

  // Give the child a mapping and initialize it, then flush child before parent.
  EXPECT_EQ(xn_.InsertMapping(kids[0], root, NewFrame(), /*dirty=*/true, good_creds_),
            Status::kOk);
  std::memset(machine_.mem().Data(xn_.registry().Lookup(kids[0])->frame).data(), 0, 4096);
  EXPECT_EQ(FlushAll({kids[0]}), Status::kOk);
  EXPECT_EQ(FlushAll({root}), Status::kOk);
  EXPECT_GE(xn_.stats().taint_rejections, 1u);
}

TEST_F(XnTest, TemporaryTreeSkipsOrderingRules) {
  BlockId root = MakeRoot("tmpfs", inner_tmpl_, /*temporary=*/true);
  AllocChildren(root, 0, 1, leaf_tmpl_);
  // Parent write with an uninitialized child is fine on a temporary file system.
  EXPECT_EQ(FlushAll({root}), Status::kOk);
}

TEST_F(XnTest, DataRoundTripsThroughDisk) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 2);

  // Write data into the children via direct installs.
  for (size_t i = 0; i < kids.size(); ++i) {
    FrameId f = NewFrame();
    std::memset(machine_.mem().Data(f).data(), 0x30 + static_cast<int>(i), 4096);
    ASSERT_EQ(xn_.InsertMapping(kids[i], root, f, /*dirty=*/true, good_creds_), Status::kOk);
  }
  ASSERT_EQ(FlushAll({kids[0], kids[1]}), Status::kOk);
  ASSERT_EQ(FlushAll({root}), Status::kOk);

  // Drop the cached children and read them back through the parent.
  ASSERT_EQ(xn_.RemoveMapping(kids[0]), Status::kOk);
  ASSERT_EQ(xn_.RemoveMapping(kids[1]), Status::kOk);
  std::vector<FrameId> frames = {NewFrame(), NewFrame()};
  Status done = Status::kNotFound;
  ASSERT_EQ(xn_.ReadAndInsert(root, kids, frames, good_creds_,
                              [&](Status s) { done = s; }),
            Status::kOk);
  engine_.RunUntilIdle();
  ASSERT_EQ(done, Status::kOk);
  EXPECT_EQ(machine_.mem().Data(frames[0])[10], 0x30);
  EXPECT_EQ(machine_.mem().Data(frames[1])[10], 0x31);
}

TEST_F(XnTest, ContiguousFlushGathersIntoFewRequests) {
  // A flush of N contiguous dirty blocks must reach the disk as a scatter-gather
  // run, not N single-block submissions: at most two requests (the head block
  // dispatches immediately off an idle disk; the rest ride as one gathered tail).
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 8);
  for (size_t i = 1; i < kids.size(); ++i) {
    ASSERT_EQ(kids[i], kids[i - 1] + 1);  // fresh format: allocation is contiguous
  }
  for (size_t i = 0; i < kids.size(); ++i) {
    FrameId f = NewFrame();
    std::memset(machine_.mem().Data(f).data(), 0x60 + static_cast<int>(i), 4096);
    ASSERT_EQ(xn_.InsertMapping(kids[i], root, f, /*dirty=*/true, good_creds_), Status::kOk);
  }
  const uint64_t requests0 = machine_.disk().stats().requests;
  ASSERT_EQ(FlushAll(kids), Status::kOk);
  EXPECT_LE(machine_.disk().stats().requests - requests0, 2u);
  for (size_t i = 0; i < kids.size(); ++i) {
    EXPECT_EQ(machine_.disk().RawBlock(kids[i])[5], 0x60 + static_cast<int>(i));
  }
}

TEST_F(XnTest, ReadAndInsertDeniedForForeignBlocks) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  AllocChildren(root, 0, 1);
  BlockId root2 = MakeRoot("fs2", leaf_tmpl_);
  auto kids2 = AllocChildren(root2, 0, 1);

  std::vector<FrameId> frames = {NewFrame()};
  // root does not own root2's child.
  EXPECT_EQ(xn_.ReadAndInsert(root, kids2, frames, good_creds_, {}),
            Status::kPermissionDenied);
  // And good blocks with bad credentials fail the acl-uf.
  auto kids = AllocChildren(root, 1, 1);
  EXPECT_EQ(xn_.ReadAndInsert(root, kids, frames, bad_creds_, {}),
            Status::kPermissionDenied);
}

TEST_F(XnTest, InsertMappingRequiresWriteAccess) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 1);
  EXPECT_EQ(xn_.InsertMapping(kids[0], root, NewFrame(), true, bad_creds_),
            Status::kPermissionDenied);
}

TEST_F(XnTest, DeallocDefersReuseUntilParentWritten) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 1);
  ASSERT_EQ(FlushAll({root}), Status::kOk);  // pointer to kid now on disk

  // Dealloc: remove pointer, count back to 0.
  Mods mods = SetCount(0);
  std::vector<udf::Extent> extents = {{kids[0], 1, kDataTemplate}};
  ASSERT_EQ(xn_.Dealloc(root, mods, extents, good_creds_), Status::kOk);

  // The block must NOT be reusable yet: its pointer is still on disk (rule 1).
  EXPECT_TRUE(xn_.IsAllocated(kids[0]));
  EXPECT_GE(xn_.stats().will_free_deferrals, 1u);

  // After the parent's new image (without the pointer) reaches disk, it frees.
  ASSERT_EQ(FlushAll({root}), Status::kOk);
  EXPECT_FALSE(xn_.IsAllocated(kids[0]));
}

TEST_F(XnTest, DeallocOfNeverWrittenPointerFreesImmediately) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 1);  // parent never flushed
  Mods mods = SetCount(0);
  std::vector<udf::Extent> extents = {{kids[0], 1, kDataTemplate}};
  ASSERT_EQ(xn_.Dealloc(root, mods, extents, good_creds_), Status::kOk);
  EXPECT_FALSE(xn_.IsAllocated(kids[0]));
}

TEST_F(XnTest, LockedEntriesCannotBeWritten) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  AllocChildren(root, 0, 1);
  ASSERT_EQ(xn_.Lock(root, /*owner=*/5), Status::kOk);
  EXPECT_EQ(xn_.Lock(root, /*owner=*/6), Status::kBusy);
  EXPECT_EQ(xn_.Write(std::vector<BlockId>{root}, {}), Status::kBusy);
  EXPECT_EQ(xn_.Unlock(root, 6), Status::kPermissionDenied);
  ASSERT_EQ(xn_.Unlock(root, 5), Status::kOk);
  EXPECT_EQ(FlushAll({root}), Status::kOk);
}

TEST_F(XnTest, RawReadThenBindToParent) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 1);
  FrameId f = NewFrame();
  std::memset(machine_.mem().Data(f).data(), 0x5c, 4096);
  ASSERT_EQ(xn_.InsertMapping(kids[0], root, f, true, good_creds_), Status::kOk);
  ASSERT_EQ(FlushAll({kids[0]}), Status::kOk);
  ASSERT_EQ(FlushAll({root}), Status::kOk);
  ASSERT_EQ(xn_.RemoveMapping(kids[0]), Status::kOk);

  // Speculatively read the block before naming its parent.
  Status s = Status::kNotFound;
  ASSERT_EQ(xn_.RawRead(kids[0], NewFrame(), [&](Status st) { s = st; }), Status::kOk);
  engine_.RunUntilIdle();
  ASSERT_EQ(s, Status::kOk);
  EXPECT_EQ(xn_.registry().Lookup(kids[0])->tmpl, kInvalidTemplate);

  ASSERT_EQ(xn_.BindToParent(root, kids[0], good_creds_), Status::kOk);
  EXPECT_EQ(xn_.registry().Lookup(kids[0])->tmpl, kDataTemplate);
}

TEST_F(XnTest, RecycleOldestReturnsLruCleanBuffer) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 3);
  for (BlockId b : kids) {
    ASSERT_EQ(xn_.InsertMapping(b, root, NewFrame(), true, good_creds_), Status::kOk);
  }
  ASSERT_EQ(FlushAll({kids[0], kids[1], kids[2]}), Status::kOk);
  ASSERT_EQ(FlushAll({root}), Status::kOk);
  // kids[0] has the oldest stamp among clean entries... but root was installed first.
  // Pin the root so the recycler must pick the oldest child.
  ASSERT_EQ(xn_.Pin(root), Status::kOk);
  auto f = xn_.RecycleOldest();
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(xn_.registry().Lookup(kids[0]), nullptr);
}

TEST_F(XnTest, CrashRecoveryRebuildsFreeMap) {
  BlockId root = MakeRoot("fs", inner_tmpl_);
  auto leaves = AllocChildren(root, 0, 2, leaf_tmpl_);
  // Initialize both leaves; give leaf 0 one data child.
  for (BlockId l : leaves) {
    FrameId f = NewFrame();
    std::memset(machine_.mem().Data(f).data(), 0, 4096);
    ASSERT_EQ(xn_.InsertMapping(l, root, f, true, good_creds_), Status::kOk);
  }
  auto data = AllocChildren(leaves[0], 0, 1);
  FrameId df = NewFrame();
  std::memset(machine_.mem().Data(df).data(), 0xd7, 4096);
  ASSERT_EQ(xn_.InsertMapping(data[0], leaves[0], df, true, good_creds_), Status::kOk);

  // Flush bottom-up so everything is on disk.
  ASSERT_EQ(FlushAll({data[0]}), Status::kOk);
  ASSERT_EQ(FlushAll({leaves[0], leaves[1]}), Status::kOk);
  ASSERT_EQ(FlushAll({root}), Status::kOk);

  // Allocate one more data block but crash before ANY of it reaches disk.
  auto lost = AllocChildren(leaves[1], 0, 1);
  EXPECT_TRUE(xn_.IsAllocated(lost[0]));

  xn_.Crash();
  Xn reborn(&machine_, &machine_.disk());
  ASSERT_EQ(reborn.Attach(), Status::kOk);
  EXPECT_TRUE(reborn.recovered_after_crash());

  // Reachable blocks stay allocated; the lost allocation was garbage-collected.
  EXPECT_TRUE(reborn.IsAllocated(root));
  EXPECT_TRUE(reborn.IsAllocated(leaves[0]));
  EXPECT_TRUE(reborn.IsAllocated(leaves[1]));
  EXPECT_TRUE(reborn.IsAllocated(data[0]));
  EXPECT_FALSE(reborn.IsAllocated(lost[0]));
  // And the data content survived.
  EXPECT_EQ(machine_.disk().RawBlock(data[0])[100], 0xd7);
}

// Crash with metadata that is dirty in core but unflushed, plus a dealloc still on
// the will-free list. The recovered free map must equal what an independent
// traversal of the raw on-disk images computes — not what the pre-crash volatile
// state believed.
TEST_F(XnTest, CrashWithDirtyMetadataMatchesScratchTraversal) {
  BlockId root = MakeRoot("fs", inner_tmpl_);
  auto leaves = AllocChildren(root, 0, 2, leaf_tmpl_);
  for (BlockId l : leaves) {
    FrameId f = NewFrame();
    std::memset(machine_.mem().Data(f).data(), 0, 4096);
    ASSERT_EQ(xn_.InsertMapping(l, root, f, true, good_creds_), Status::kOk);
  }
  auto data = AllocChildren(leaves[0], 0, 2);
  for (BlockId d : data) {
    FrameId f = NewFrame();
    std::memset(machine_.mem().Data(f).data(), 0xab, 4096);
    ASSERT_EQ(xn_.InsertMapping(d, leaves[0], f, true, good_creds_), Status::kOk);
  }
  ASSERT_EQ(FlushAll({data[0], data[1]}), Status::kOk);
  ASSERT_EQ(FlushAll({leaves[0], leaves[1]}), Status::kOk);
  ASSERT_EQ(FlushAll({root}), Status::kOk);

  // Dirty-but-unflushed growth: three data blocks under leaves[1] whose pointers
  // exist only in the in-core copy of the leaf.
  auto lost = AllocChildren(leaves[1], 0, 3);
  for (BlockId b : lost) {
    EXPECT_TRUE(xn_.IsAllocated(b));
  }
  // Dealloc data[1] but never flush leaves[0]: its on-disk pointer survives, so the
  // block sits on the will-free list when the crash hits. Recovery must resurrect it
  // (the on-disk tree still reaches it).
  Mods drop = SetCount(1);
  std::vector<udf::Extent> freed = {{data[1], 1, kDataTemplate}};
  ASSERT_EQ(xn_.Dealloc(leaves[0], drop, freed, good_creds_), Status::kOk);
  EXPECT_TRUE(xn_.IsAllocated(data[1]));  // deferred: pointer still on disk

  xn_.Crash();
  Xn reborn(&machine_, &machine_.disk());
  ASSERT_EQ(reborn.Attach(), Status::kOk);
  EXPECT_TRUE(reborn.recovered_after_crash());

  // Independent reachability pass over the raw disk: parse the tnode format by hand
  // starting from the persistent root, never consulting XN's free map.
  auto u32_at = [&](BlockId b, size_t off) {
    auto img = machine_.disk().RawBlock(b);
    return static_cast<uint32_t>(img[off]) | static_cast<uint32_t>(img[off + 1]) << 8 |
           static_cast<uint32_t>(img[off + 2]) << 16 |
           static_cast<uint32_t>(img[off + 3]) << 24;
  };
  std::set<BlockId> reachable;
  auto ri = reborn.LookupRoot("fs");
  ASSERT_TRUE(ri.ok());
  reachable.insert(ri->block);
  uint32_t nleaves = u32_at(ri->block, 0);
  for (uint32_t i = 0; i < nleaves; ++i) {
    BlockId leaf = u32_at(ri->block, 4 + i * 4);
    reachable.insert(leaf);
    uint32_t ndata = u32_at(leaf, 0);
    for (uint32_t j = 0; j < ndata; ++j) {
      reachable.insert(u32_at(leaf, 4 + j * 4));
    }
  }

  // The rebuilt free map must agree block-for-block with the scratch traversal
  // across the whole data region.
  for (BlockId b = reborn.FirstDataBlock(); b < reborn.NumBlocks(); ++b) {
    EXPECT_EQ(reborn.IsAllocated(b), reachable.count(b) != 0) << "block " << b;
  }
  // Spot checks: the unflushed allocations were collected, the deferred dealloc was
  // resurrected because its parent's on-disk image still points at it.
  for (BlockId b : lost) {
    EXPECT_FALSE(reborn.IsAllocated(b));
  }
  EXPECT_TRUE(reborn.IsAllocated(data[1]));
}

// ---- End-to-end integrity: scrub, read-repair, quarantine, recovery fsck ----
//
// Arming the integrity sidecar mid-session stamps the current media as the
// trusted baseline; every DMA write after that re-stamps. These tests corrupt
// the media directly through RawBlock (never Restamp) to model silent faults.

TEST_F(XnTest, ScrubRepairsRotFromCleanResidentCopy) {
  machine_.disk().EnableIntegrity();
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 2);
  for (size_t i = 0; i < kids.size(); ++i) {
    FrameId f = NewFrame();
    std::memset(machine_.mem().Data(f).data(), 0x41 + static_cast<int>(i), 4096);
    ASSERT_EQ(xn_.InsertMapping(kids[i], root, f, /*dirty=*/true, good_creds_), Status::kOk);
  }
  ASSERT_EQ(FlushAll({kids[0], kids[1]}), Status::kOk);
  ASSERT_EQ(FlushAll({root}), Status::kOk);

  // Rot kids[0] on the platter; its clean resident cache copy stays authoritative.
  machine_.disk().RawBlock(kids[0])[7] ^= 0x40;
  ASSERT_EQ(machine_.disk().CheckBlock(kids[0]), hw::BlockIntegrity::kBadChecksum);

  EXPECT_GT(xn_.ScrubStep(xn_.NumBlocks()), 0u);
  EXPECT_EQ(xn_.stats().repairs, 1u);
  EXPECT_FALSE(xn_.IsQuarantined(kids[0]));
  EXPECT_EQ(machine_.disk().CheckBlock(kids[0]), hw::BlockIntegrity::kOk);
  EXPECT_EQ(machine_.disk().RawBlock(kids[0])[7], 0x41);
  EXPECT_GE(machine_.counters().Get("scrub.blocks_scanned"), 3u);
  EXPECT_EQ(machine_.counters().Get("scrub.repaired"), 1u);
  EXPECT_EQ(machine_.counters().Get("disk.repaired"), 1u);

  // Same fault again, this time found by the scheduled idle scrubber.
  machine_.disk().RawBlock(kids[1])[9] ^= 0x01;
  xn_.StartScrubber(/*interval=*/1000, /*budget=*/xn_.NumBlocks(), /*steps=*/4);
  engine_.RunUntilIdle();
  EXPECT_EQ(xn_.stats().repairs, 2u);
  EXPECT_EQ(machine_.disk().CheckBlock(kids[1]), hw::BlockIntegrity::kOk);
  EXPECT_EQ(machine_.disk().RawBlock(kids[1])[9], 0x42);
}

TEST_F(XnTest, ScrubQuarantinesWithoutCleanCopyUntilRewritten) {
  machine_.disk().EnableIntegrity();
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 1);
  FrameId f = NewFrame();
  std::memset(machine_.mem().Data(f).data(), 0x77, 4096);
  ASSERT_EQ(xn_.InsertMapping(kids[0], root, f, /*dirty=*/true, good_creds_), Status::kOk);
  ASSERT_EQ(FlushAll({kids[0]}), Status::kOk);
  ASSERT_EQ(FlushAll({root}), Status::kOk);
  ASSERT_EQ(xn_.RemoveMapping(kids[0]), Status::kOk);  // no trustworthy copy remains

  machine_.disk().RawBlock(kids[0])[100] ^= 0xff;
  (void)xn_.ScrubStep(xn_.NumBlocks());
  EXPECT_TRUE(xn_.IsQuarantined(kids[0]));
  EXPECT_EQ(machine_.counters().Get("scrub.quarantined"), 1u);
  EXPECT_EQ(xn_.TryRepair(kids[0]), Status::kCorrupted);

  // The read path refuses known-bad media at submit: repair or rewrite first.
  std::vector<FrameId> rframes = {NewFrame()};
  EXPECT_EQ(xn_.ReadAndInsert(root, kids, rframes, good_creds_, {}), Status::kCorrupted);
  EXPECT_GE(xn_.stats().corrupt_detections, 1u);

  // An acked rewrite of fresh content lifts the quarantine.
  if (xn_.registry().Lookup(kids[0]) != nullptr) {
    ASSERT_EQ(xn_.RemoveMapping(kids[0]), Status::kOk);
  }
  FrameId nf = NewFrame();
  std::memset(machine_.mem().Data(nf).data(), 0x78, 4096);
  ASSERT_EQ(xn_.InsertMapping(kids[0], root, nf, /*dirty=*/true, good_creds_), Status::kOk);
  ASSERT_EQ(FlushAll({kids[0]}), Status::kOk);
  EXPECT_FALSE(xn_.IsQuarantined(kids[0]));
  EXPECT_EQ(machine_.disk().CheckBlock(kids[0]), hw::BlockIntegrity::kOk);
}

TEST_F(XnTest, LostWriteCaughtOnReReadByExpectedCrc) {
  machine_.disk().EnableIntegrity();
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 1);
  FrameId f = NewFrame();
  std::memset(machine_.mem().Data(f).data(), 0x11, 4096);
  ASSERT_EQ(xn_.InsertMapping(kids[0], root, f, /*dirty=*/true, good_creds_), Status::kOk);
  ASSERT_EQ(FlushAll({kids[0]}), Status::kOk);
  ASSERT_EQ(FlushAll({root}), Status::kOk);
  ASSERT_EQ(xn_.RemoveMapping(kids[0]), Status::kOk);

  // Rewrite the block, but the media silently drops the first write after the
  // injector arms: the ack (and expected_crc_) say 0x22, the platter says 0x11
  // under a perfectly self-consistent stale tag.
  sim::FaultPlan plan;
  plan.disk_script = sim::ParseDiskSchedule("w@1");
  sim::FaultInjector faults(plan);
  machine_.disk().SetFaultInjector(&faults);
  FrameId nf = NewFrame();
  std::memset(machine_.mem().Data(nf).data(), 0x22, 4096);
  ASSERT_EQ(xn_.InsertMapping(kids[0], root, nf, /*dirty=*/true, good_creds_), Status::kOk);
  ASSERT_EQ(FlushAll({kids[0]}), Status::kOk);  // acked kOk, never landed
  machine_.disk().SetFaultInjector(nullptr);
  ASSERT_EQ(faults.stats().disk_lost_writes, 1u);
  ASSERT_EQ(machine_.disk().RawBlock(kids[0])[5], 0x11);
  ASSERT_EQ(machine_.disk().CheckBlock(kids[0]), hw::BlockIntegrity::kOk);  // the residual window

  // The tag alone cannot see it; the in-session expected-CRC cross-check can.
  ASSERT_EQ(xn_.RemoveMapping(kids[0]), Status::kOk);
  Status read = Status::kOk;
  std::vector<FrameId> rframes = {NewFrame()};
  ASSERT_EQ(xn_.ReadAndInsert(root, kids, rframes, good_creds_,
                              [&](Status s) { read = s; }),
            Status::kOk);
  engine_.RunUntilIdle();
  EXPECT_EQ(read, Status::kCorrupted);
  EXPECT_TRUE(xn_.IsQuarantined(kids[0]));
  EXPECT_GE(xn_.stats().corrupt_detections, 1u);
}

TEST_F(XnTest, RecoveryFsckQuarantinesCorruptMetadataAndCollectsItsSubtree) {
  machine_.disk().EnableIntegrity();
  BlockId root = MakeRoot("fs", inner_tmpl_);
  auto leaves = AllocChildren(root, 0, 2, leaf_tmpl_);
  for (BlockId l : leaves) {
    FrameId f = NewFrame();
    std::memset(machine_.mem().Data(f).data(), 0, 4096);
    ASSERT_EQ(xn_.InsertMapping(l, root, f, true, good_creds_), Status::kOk);
  }
  auto d0 = AllocChildren(leaves[0], 0, 1);
  auto d1 = AllocChildren(leaves[1], 0, 1);
  for (BlockId d : {d0[0], d1[0]}) {
    FrameId f = NewFrame();
    std::memset(machine_.mem().Data(f).data(), 0xe1, 4096);
    ASSERT_EQ(xn_.InsertMapping(d, d == d0[0] ? leaves[0] : leaves[1], f, true, good_creds_),
              Status::kOk);
  }
  ASSERT_EQ(FlushAll({d0[0], d1[0]}), Status::kOk);
  ASSERT_EQ(FlushAll({leaves[0], leaves[1]}), Status::kOk);
  ASSERT_EQ(FlushAll({root}), Status::kOk);

  xn_.Crash();
  // Rot leaves[1] while the machine is down: its child pointers are now garbage.
  machine_.disk().RawBlock(leaves[1])[2] ^= 0x04;

  Xn reborn(&machine_, &machine_.disk());
  const uint64_t fsck_before = machine_.counters().Get("xn.integrity_blocks_scanned");
  ASSERT_EQ(reborn.Attach(), Status::kOk);
  EXPECT_TRUE(reborn.recovered_after_crash());
  // The pre-traversal fsck covered the whole disk and flagged the rotted block.
  EXPECT_GE(machine_.counters().Get("xn.integrity_blocks_scanned") - fsck_before,
            static_cast<uint64_t>(reborn.NumBlocks()));
  EXPECT_TRUE(reborn.IsQuarantined(leaves[1]));

  // The quarantined block stays allocated (its parent references it) but was
  // never parsed: its subtree is collected, the clean sibling's is intact.
  EXPECT_TRUE(reborn.IsAllocated(root));
  EXPECT_TRUE(reborn.IsAllocated(leaves[0]));
  EXPECT_TRUE(reborn.IsAllocated(leaves[1]));
  EXPECT_TRUE(reborn.IsAllocated(d0[0]));
  EXPECT_FALSE(reborn.IsAllocated(d1[0]));
}

TEST_F(XnTest, CleanDetachSkipsRecovery) {
  BlockId root = MakeRoot("fs", leaf_tmpl_);
  auto kids = AllocChildren(root, 0, 1);
  ASSERT_EQ(FlushAll({root}), Status::kOk);
  xn_.Detach();

  Xn other(&machine_, &machine_.disk());
  ASSERT_EQ(other.Attach(), Status::kOk);
  EXPECT_FALSE(other.recovered_after_crash());
  EXPECT_TRUE(other.IsAllocated(kids[0]));  // free map loaded, not rebuilt
}

TEST_F(XnTest, FreeMapExposedWithoutSyscalls) {
  uint64_t before = machine_.counters().Get("xok.syscalls");
  (void)xn_.FreeBlockCount();
  (void)xn_.IsAllocated(100);
  (void)xn_.FindFreeRun(xn_.FirstDataBlock(), 4);
  EXPECT_EQ(machine_.counters().Get("xok.syscalls"), before);
}

TEST_F(XnTest, FindFreeRunHonorsHintForPlacement) {
  auto near = xn_.FindFreeRun(xn_.FirstDataBlock() + 100, 4);
  ASSERT_TRUE(near.ok());
  EXPECT_GE(*near, xn_.FirstDataBlock() + 100);
  auto wrap = xn_.FindFreeRun(xn_.NumBlocks() - 1, 8);  // must wrap to find 8
  ASSERT_TRUE(wrap.ok());
  EXPECT_LT(*wrap, xn_.NumBlocks() - 1);
}

// Property sweep: allocate-and-free of N blocks always restores the free count.
class AllocFreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocFreeProperty, FreeCountRestored) {
  sim::Engine engine;
  hw::Machine machine(&engine,
                      hw::MachineConfig{.mem_frames = 512,
                                        .disks = {hw::DiskGeometry{.num_blocks = 2048}}});
  Xn xn(&machine, &machine.disk());
  xn.Format();
  ASSERT_EQ(xn.Attach(), Status::kOk);
  Template leaf;
  leaf.name = "t";
  leaf.is_metadata = true;
  leaf.owns_udf = TnodeOwns(kDataTemplate);
  ASSERT_TRUE(xn.InstallTemplate(leaf).ok());
  auto root = xn.RegisterRoot("fs", 1, false);
  ASSERT_TRUE(root.ok());
  auto f = machine.mem().Alloc();
  Status ls = Status::kNotFound;
  ASSERT_EQ(xn.LoadRoot("fs", *f, {}, [&](Status s) { ls = s; }), Status::kOk);
  engine.RunUntilIdle();
  ASSERT_EQ(ls, Status::kOk);

  const uint32_t n = static_cast<uint32_t>(GetParam());
  const uint32_t before = xn.FreeBlockCount();

  Mods mods = SetCount(n);
  std::vector<udf::Extent> extents;
  BlockId hint = xn.FirstDataBlock();
  for (uint32_t i = 0; i < n; ++i) {
    auto b = xn.FindFreeRun(hint, 1);
    ASSERT_TRUE(b.ok());
    hint = *b + 1;
    mods.push_back(SetPtr(i, *b));
    extents.push_back({*b, 1, kDataTemplate});
  }
  ASSERT_EQ(xn.Alloc(root->block, mods, extents, {}), Status::kOk);
  EXPECT_EQ(xn.FreeBlockCount(), before - n);

  ASSERT_EQ(xn.Dealloc(root->block, SetCount(0), extents, {}), Status::kOk);
  EXPECT_EQ(xn.FreeBlockCount(), before);  // never flushed: immediate reuse
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllocFreeProperty, ::testing::Values(1, 2, 7, 64, 500));

}  // namespace
}  // namespace exo::xn
