// Unit tests for the simulation core: event engine, fibers, RNG, counters, cost model.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/cost_model.h"
#include "sim/counters.h"
#include "sim/engine.h"
#include "sim/fiber.h"
#include "sim/rng.h"
#include "sim/status.h"

namespace exo::sim {
namespace {

TEST(EngineTest, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_FALSE(e.HasPendingEvents());
}

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(30, [&] { order.push_back(3); });
  e.ScheduleAt(10, [&] { order.push_back(1); });
  e.ScheduleAt(20, [&] { order.push_back(2); });
  e.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(EngineTest, TiesBreakInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(5, [&] { order.push_back(1); });
  e.ScheduleAt(5, [&] { order.push_back(2); });
  e.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EngineTest, AdvanceFiresDueEvents) {
  Engine e;
  bool fired = false;
  e.ScheduleAt(100, [&] { fired = true; });
  e.Advance(50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), 50u);
  e.Advance(50);
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.now(), 100u);
}

TEST(EngineTest, AdvancePastEventStillEndsAtTarget) {
  Engine e;
  Cycles when_fired = 0;
  e.ScheduleAt(10, [&] { when_fired = e.now(); });
  e.Advance(100);
  EXPECT_EQ(when_fired, 10u);
  EXPECT_EQ(e.now(), 100u);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  auto id = e.ScheduleAt(10, [&] { fired = true; });
  e.Cancel(id);
  e.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, EventsCanScheduleEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      e.ScheduleAfter(10, chain);
    }
  };
  e.ScheduleAfter(10, chain);
  e.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 50u);
}

TEST(EngineTest, NextEventTimeSkipsCancelled) {
  Engine e;
  auto id = e.ScheduleAt(5, [] {});
  e.ScheduleAt(9, [] {});
  e.Cancel(id);
  EXPECT_EQ(e.NextEventTime(), 9u);
}

TEST(EngineTest, SameTimestampOrderSurvivesInterleavedCancels) {
  Engine e;
  std::vector<int> order;
  std::vector<Engine::EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(e.ScheduleAt(5, [&order, i] { order.push_back(i); }));
  }
  e.Cancel(ids[1]);
  e.Cancel(ids[4]);
  e.Cancel(ids[7]);
  // Late arrivals at the same timestamp still fire after the survivors.
  e.ScheduleAt(5, [&order] { order.push_back(8); });
  e.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5, 6, 8}));
}

TEST(EngineTest, CancelAfterFireIsNoOp) {
  Engine e;
  auto id = e.ScheduleAt(10, [] {});
  e.RunUntilIdle();
  e.Cancel(id);  // must not disturb anything, including a reuse of the same slot
  bool fired = false;
  auto id2 = e.ScheduleAt(20, [&] { fired = true; });
  e.Cancel(id);  // stale id again, now that the slot is re-armed for id2
  e.RunUntilIdle();
  EXPECT_TRUE(fired);
  EXPECT_NE(id, id2);
}

TEST(EngineTest, RunUntilLandsExactlyOnTargetWithNoEvents) {
  Engine e;
  e.RunUntil(1234);
  EXPECT_EQ(e.now(), 1234u);
  EXPECT_FALSE(e.HasPendingEvents());
  // And with an event strictly before the target: clock still ends at t.
  Cycles fired_at = 0;
  e.ScheduleAt(2000, [&] { fired_at = e.now(); });
  e.RunUntil(3000);
  EXPECT_EQ(fired_at, 2000u);
  EXPECT_EQ(e.now(), 3000u);
}

TEST(EngineTest, EventIdsAreNeverZero) {
  // Callers (TCP timers) use 0 as the "no event armed" sentinel.
  Engine e;
  for (int i = 0; i < 100; ++i) {
    auto id = e.ScheduleAfter(1, [] {});
    EXPECT_NE(id, 0u);
    e.RunUntilIdle();
  }
}

TEST(EngineTest, AcceptsMoveOnlyCallables) {
  Engine e;
  auto big = std::make_unique<int>(41);
  int got = 0;
  e.ScheduleAt(1, [p = std::move(big), &got] { got = *p + 1; });
  e.RunUntilIdle();
  EXPECT_EQ(got, 42);
}

TEST(EngineTest, SlotsAreRecycledAcrossChurn) {
  Engine e;
  for (int round = 0; round < 10'000; ++round) {
    e.ScheduleAfter(1, [] {});
    e.ScheduleAfter(2, [] {});
    e.RunUntilIdle();
  }
  // The slab never grows past the peak concurrency (2), not the total churn.
  EXPECT_LE(e.event_slot_count(), 2u);
}

// Regression: ids of already-fired events used to accumulate forever in a
// cancelled-id vector that every pop scanned linearly, so a long-running sim
// leaked memory and went quadratic. Cancelling 1M fired ids must be O(1) each
// and leave no residue (with the old representation this test would not finish).
TEST(EngineTest, CancellingAMillionFiredIdsStaysBounded) {
  Engine e;
  std::vector<Engine::EventId> fired;
  fired.reserve(1'000'000);
  for (int i = 0; i < 1'000'000; ++i) {
    fired.push_back(e.ScheduleAfter(1, [] {}));
    e.RunUntilIdle();
  }
  for (auto id : fired) {
    e.Cancel(id);
  }
  EXPECT_LE(e.event_slot_count(), 1u);   // one slot, reused a million times
  EXPECT_EQ(e.queued_entry_count(), 0u);  // stale cancels queue no corpses
  bool sentinel = false;
  e.ScheduleAfter(1, [&] { sentinel = true; });
  e.RunUntilIdle();
  EXPECT_TRUE(sentinel);
}

TEST(FiberTest, RunsBodyToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.done());
  f.Resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(x, 42);
}

TEST(FiberTest, SuspendAndResumeRoundTrips) {
  std::vector<int> order;
  Fiber f([&] {
    order.push_back(1);
    Fiber::Suspend();
    order.push_back(3);
    Fiber::Suspend();
    order.push_back(5);
  });
  f.Resume();
  order.push_back(2);
  f.Resume();
  order.push_back(4);
  f.Resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FiberTest, CurrentTracksRunningFiber) {
  EXPECT_EQ(Fiber::Current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::Current(); });
  f.Resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::Current(), nullptr);
}

TEST(FiberTest, ManyFibersInterleave) {
  std::vector<int> order;
  std::vector<std::unique_ptr<Fiber>> fibers;
  for (int i = 0; i < 4; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&order, i] {
      order.push_back(i);
      Fiber::Suspend();
      order.push_back(i + 10);
    }));
  }
  for (auto& f : fibers) {
    f->Resume();
  }
  for (auto& f : fibers) {
    f->Resume();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13}));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng r(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = r.Range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(CountersTest, HandleIsStableAndShared) {
  Counters c;
  auto* h1 = c.Handle("syscalls");
  auto* h2 = c.Handle("syscalls");
  EXPECT_EQ(h1, h2);
  *h1 += 5;
  EXPECT_EQ(c.Get("syscalls"), 5u);
}

TEST(CountersTest, ResetZeroesAll) {
  Counters c;
  c.Add("a", 3);
  c.Add("b", 4);
  c.Reset();
  EXPECT_EQ(c.Get("a"), 0u);
  EXPECT_EQ(c.Get("b"), 0u);
}

TEST(CostModelTest, MicrosecondRoundTrip) {
  CostModel m = CostModel::PentiumPro200();
  EXPECT_EQ(m.FromMicros(1.0), 200u);
  EXPECT_DOUBLE_EQ(m.ToMicros(200), 1.0);
  EXPECT_DOUBLE_EQ(m.ToSeconds(200'000'000), 1.0);
}

TEST(CostModelTest, GetpidCalibration) {
  // Sec. 7.1: getpid is 270 cycles on OpenBSD, 100 as a rerouted procedure call.
  CostModel m = CostModel::PentiumPro200();
  EXPECT_EQ(m.trap_round_trip + m.unix_syscall_dispatch + m.getpid_body, 270u);
  EXPECT_EQ(m.libos_procedure_call + m.getpid_body, 100u);
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_EQ(ok.status(), Status::kOk);

  Result<int> err(Status::kNotFound);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status(), Status::kNotFound);
}

TEST(StatusTest, NamesAreDistinct) {
  EXPECT_STREQ(StatusName(Status::kOk), "OK");
  EXPECT_STREQ(StatusName(Status::kTainted), "TAINTED");
  EXPECT_STRNE(StatusName(Status::kBusy), StatusName(Status::kWouldBlock));
}

}  // namespace
}  // namespace exo::sim
