// Unit tests for the simulation core: event engine, fibers, RNG, counters, cost
// model, and the fault-schedule codec/injector surface.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/counters.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/fiber.h"
#include "sim/rng.h"
#include "sim/status.h"
#include "trace/trace.h"

namespace exo::sim {
namespace {

TEST(EngineTest, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_FALSE(e.HasPendingEvents());
}

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(30, [&] { order.push_back(3); });
  e.ScheduleAt(10, [&] { order.push_back(1); });
  e.ScheduleAt(20, [&] { order.push_back(2); });
  e.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(EngineTest, TiesBreakInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(5, [&] { order.push_back(1); });
  e.ScheduleAt(5, [&] { order.push_back(2); });
  e.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EngineTest, AdvanceFiresDueEvents) {
  Engine e;
  bool fired = false;
  e.ScheduleAt(100, [&] { fired = true; });
  e.Advance(50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), 50u);
  e.Advance(50);
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.now(), 100u);
}

TEST(EngineTest, AdvancePastEventStillEndsAtTarget) {
  Engine e;
  Cycles when_fired = 0;
  e.ScheduleAt(10, [&] { when_fired = e.now(); });
  e.Advance(100);
  EXPECT_EQ(when_fired, 10u);
  EXPECT_EQ(e.now(), 100u);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  auto id = e.ScheduleAt(10, [&] { fired = true; });
  e.Cancel(id);
  e.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, EventsCanScheduleEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      e.ScheduleAfter(10, chain);
    }
  };
  e.ScheduleAfter(10, chain);
  e.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 50u);
}

TEST(EngineTest, NextEventTimeSkipsCancelled) {
  Engine e;
  auto id = e.ScheduleAt(5, [] {});
  e.ScheduleAt(9, [] {});
  e.Cancel(id);
  EXPECT_EQ(e.NextEventTime(), 9u);
}

TEST(EngineTest, SameTimestampOrderSurvivesInterleavedCancels) {
  Engine e;
  std::vector<int> order;
  std::vector<Engine::EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(e.ScheduleAt(5, [&order, i] { order.push_back(i); }));
  }
  e.Cancel(ids[1]);
  e.Cancel(ids[4]);
  e.Cancel(ids[7]);
  // Late arrivals at the same timestamp still fire after the survivors.
  e.ScheduleAt(5, [&order] { order.push_back(8); });
  e.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5, 6, 8}));
}

TEST(EngineTest, CancelAfterFireIsNoOp) {
  Engine e;
  auto id = e.ScheduleAt(10, [] {});
  e.RunUntilIdle();
  e.Cancel(id);  // must not disturb anything, including a reuse of the same slot
  bool fired = false;
  auto id2 = e.ScheduleAt(20, [&] { fired = true; });
  e.Cancel(id);  // stale id again, now that the slot is re-armed for id2
  e.RunUntilIdle();
  EXPECT_TRUE(fired);
  EXPECT_NE(id, id2);
}

TEST(EngineTest, RunUntilLandsExactlyOnTargetWithNoEvents) {
  Engine e;
  e.RunUntil(1234);
  EXPECT_EQ(e.now(), 1234u);
  EXPECT_FALSE(e.HasPendingEvents());
  // And with an event strictly before the target: clock still ends at t.
  Cycles fired_at = 0;
  e.ScheduleAt(2000, [&] { fired_at = e.now(); });
  e.RunUntil(3000);
  EXPECT_EQ(fired_at, 2000u);
  EXPECT_EQ(e.now(), 3000u);
}

TEST(EngineTest, EventIdsAreNeverZero) {
  // Callers (TCP timers) use 0 as the "no event armed" sentinel.
  Engine e;
  for (int i = 0; i < 100; ++i) {
    auto id = e.ScheduleAfter(1, [] {});
    EXPECT_NE(id, 0u);
    e.RunUntilIdle();
  }
}

TEST(EngineTest, AcceptsMoveOnlyCallables) {
  Engine e;
  auto big = std::make_unique<int>(41);
  int got = 0;
  e.ScheduleAt(1, [p = std::move(big), &got] { got = *p + 1; });
  e.RunUntilIdle();
  EXPECT_EQ(got, 42);
}

TEST(EngineTest, SlotsAreRecycledAcrossChurn) {
  Engine e;
  for (int round = 0; round < 10'000; ++round) {
    e.ScheduleAfter(1, [] {});
    e.ScheduleAfter(2, [] {});
    e.RunUntilIdle();
  }
  // The slab never grows past the peak concurrency (2), not the total churn.
  EXPECT_LE(e.event_slot_count(), 2u);
}

// Regression: ids of already-fired events used to accumulate forever in a
// cancelled-id vector that every pop scanned linearly, so a long-running sim
// leaked memory and went quadratic. Cancelling 1M fired ids must be O(1) each
// and leave no residue (with the old representation this test would not finish).
TEST(EngineTest, CancellingAMillionFiredIdsStaysBounded) {
  Engine e;
  std::vector<Engine::EventId> fired;
  fired.reserve(1'000'000);
  for (int i = 0; i < 1'000'000; ++i) {
    fired.push_back(e.ScheduleAfter(1, [] {}));
    e.RunUntilIdle();
  }
  for (auto id : fired) {
    e.Cancel(id);
  }
  EXPECT_LE(e.event_slot_count(), 1u);   // one slot, reused a million times
  EXPECT_EQ(e.queued_entry_count(), 0u);  // stale cancels queue no corpses
  bool sentinel = false;
  e.ScheduleAfter(1, [&] { sentinel = true; });
  e.RunUntilIdle();
  EXPECT_TRUE(sentinel);
}

TEST(FiberTest, RunsBodyToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.done());
  f.Resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(x, 42);
}

TEST(FiberTest, SuspendAndResumeRoundTrips) {
  std::vector<int> order;
  Fiber f([&] {
    order.push_back(1);
    Fiber::Suspend();
    order.push_back(3);
    Fiber::Suspend();
    order.push_back(5);
  });
  f.Resume();
  order.push_back(2);
  f.Resume();
  order.push_back(4);
  f.Resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FiberTest, CurrentTracksRunningFiber) {
  EXPECT_EQ(Fiber::Current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::Current(); });
  f.Resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::Current(), nullptr);
}

TEST(FiberTest, ManyFibersInterleave) {
  std::vector<int> order;
  std::vector<std::unique_ptr<Fiber>> fibers;
  for (int i = 0; i < 4; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&order, i] {
      order.push_back(i);
      Fiber::Suspend();
      order.push_back(i + 10);
    }));
  }
  for (auto& f : fibers) {
    f->Resume();
  }
  for (auto& f : fibers) {
    f->Resume();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13}));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng r(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = r.Range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(CountersTest, HandleIsStableAndShared) {
  Counters c;
  auto* h1 = c.Handle("syscalls");
  auto* h2 = c.Handle("syscalls");
  EXPECT_EQ(h1, h2);
  *h1 += 5;
  EXPECT_EQ(c.Get("syscalls"), 5u);
}

TEST(CountersTest, ResetZeroesAll) {
  Counters c;
  c.Add("a", 3);
  c.Add("b", 4);
  c.Reset();
  EXPECT_EQ(c.Get("a"), 0u);
  EXPECT_EQ(c.Get("b"), 0u);
}

TEST(CostModelTest, MicrosecondRoundTrip) {
  CostModel m = CostModel::PentiumPro200();
  EXPECT_EQ(m.FromMicros(1.0), 200u);
  EXPECT_DOUBLE_EQ(m.ToMicros(200), 1.0);
  EXPECT_DOUBLE_EQ(m.ToSeconds(200'000'000), 1.0);
}

TEST(CostModelTest, GetpidCalibration) {
  // Sec. 7.1: getpid is 270 cycles on OpenBSD, 100 as a rerouted procedure call.
  CostModel m = CostModel::PentiumPro200();
  EXPECT_EQ(m.trap_round_trip + m.unix_syscall_dispatch + m.getpid_body, 270u);
  EXPECT_EQ(m.libos_procedure_call + m.getpid_body, 100u);
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_EQ(ok.status(), Status::kOk);

  Result<int> err(Status::kNotFound);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status(), Status::kNotFound);
}

TEST(StatusTest, NamesAreDistinct) {
  EXPECT_STREQ(StatusName(Status::kOk), "OK");
  EXPECT_STREQ(StatusName(Status::kTainted), "TAINTED");
  EXPECT_STRNE(StatusName(Status::kBusy), StatusName(Status::kWouldBlock));
}

// ---- Fault-schedule codec hardening ----
//
// The parsers are the trust boundary for replayed reproducers (CI artifacts,
// bug reports, hand-edited seed lines): any malformed token must yield an
// empty schedule plus a diagnostic — never a silent best-effort misparse that
// would replay the WRONG schedule and "not reproduce".

TEST(FaultCodecTest, MalformedInputsRejectLoudly) {
  const char* bad_wire[] = {
      "x@1",           // unknown kind
      "w@1",           // disk kind in the wire grammar
      "d@0",           // indices are 1-based
      "d@",            // missing index
      "@3",            // missing kind
      "d3",            // missing '@'
      "c@5",           // 'c' requires :arg
      "d@3:1",         // 'd' forbids :arg
      "c@5:",          // empty arg
      "c@5:9x",        // trailing garbage in arg
      "d@18446744073709551616",  // 2^64: overflow
      "d@3 d@3",       // duplicate consultation index
      "d@3 c@3:7",     // duplicate index across kinds of the same stream
      "d@1 oops",      // valid token then garbage
  };
  for (const char* text : bad_wire) {
    std::string err;
    EXPECT_TRUE(ParseWireSchedule(text, &err).empty()) << text;
    EXPECT_NE(err.find("token"), std::string::npos) << text << " -> " << err;
  }

  const char* bad_disk[] = {
      "d@1",      // wire kind in the disk grammar
      "w@0",      // zero index
      "m@4",      // 'm' requires :arg (the victim LBA)
      "r@4",      // 'r' requires :arg (the byte offset)
      "w@2:7",    // 'w' forbids :arg
      "l@2:7",    // 'l' forbids :arg
      "w@3 m@3:9",  // duplicate within the write stream
      "l@2 r@2:1",  // duplicate within the read stream
  };
  for (const char* text : bad_disk) {
    std::string err;
    EXPECT_TRUE(ParseDiskSchedule(text, &err).empty()) << text;
    EXPECT_NE(err.find("token"), std::string::npos) << text << " -> " << err;
  }

  // The combined grammar accepts both alphabets but keeps per-stream
  // duplicate rejection: w@3/l@3 are different streams, w@3/m@3 are not.
  std::string err;
  EXPECT_EQ(ParseFaultSchedule("d@3 w@3 l@3", &err).size(), 3u) << err;
  EXPECT_TRUE(ParseFaultSchedule("w@3 m@3:5", &err).empty());
  EXPECT_NE(err.find("token"), std::string::npos);

  // Whitespace-only input is a valid empty schedule, not an error: the
  // diagnostic out-param is cleared, not populated.
  err = "sentinel";
  EXPECT_TRUE(ParseWireSchedule("   ", &err).empty());
  EXPECT_EQ(err, "");
}

// Fuzz the round-trip: any valid schedule survives Format -> Parse unchanged.
// Indices are strictly increasing per stream (that is what real recordings
// look like and what the duplicate check demands).
TEST(FaultCodecTest, FuzzedSchedulesRoundTrip) {
  Rng rng(20260809);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<FaultEvent> events;
    uint64_t wire_idx = 0;
    uint64_t write_idx = 0;
    uint64_t read_idx = 0;
    const uint32_t n = rng.Below(12);
    for (uint32_t i = 0; i < n; ++i) {
      static constexpr char kKinds[] = {'d', 'c', 'u', 'w', 'm', 'l', 'r'};
      const char kind = kKinds[rng.Below(7)];
      uint64_t* stream = IsWireFaultKind(kind) ? &wire_idx
                         : (kind == 'w' || kind == 'm') ? &write_idx
                                                        : &read_idx;
      *stream += 1 + rng.Below(1000);
      const bool has_arg = kind == 'c' || kind == 'm' || kind == 'r';
      events.push_back(FaultEvent{kind, *stream, has_arg ? rng.Below(1 << 20) : 0});
    }
    const std::string line = FormatFaultSchedule(events);
    std::string err;
    const auto parsed = ParseFaultSchedule(line, &err);
    ASSERT_TRUE(parsed == events) << "iter " << iter << ": \"" << line << "\" -> " << err;

    // The split-by-layer views round-trip through their own codecs too.
    std::vector<WireEvent> wire;
    std::vector<DiskEvent> disk;
    SplitFaultSchedule(events, &wire, &disk);
    EXPECT_TRUE(ParseWireSchedule(FormatWireSchedule(wire), &err) == wire);
    EXPECT_TRUE(ParseDiskSchedule(FormatDiskSchedule(disk), &err) == disk);
  }
}

// Machine kill/reboot schedule grammar: k@<cycle>:<machine> / b@<cycle>:<machine>,
// keyed by absolute time rather than consultation index.
TEST(FaultCodecTest, MachineScheduleRoundTripAndDuplicateRules) {
  std::string err;
  const auto sched = ParseMachineSchedule("k@1000:2 b@6000:2 k@6000:3", &err);
  ASSERT_EQ(sched.size(), 3u) << err;
  EXPECT_EQ(sched[0].kind, 'k');
  EXPECT_EQ(sched[0].time, 1000u);
  EXPECT_EQ(sched[0].machine, 2u);
  EXPECT_EQ(sched[2].kind, 'k');
  EXPECT_EQ(sched[2].machine, 3u);
  EXPECT_TRUE(ParseMachineSchedule(FormatMachineSchedule(sched), &err) == sched);

  // Same machine, same cycle: ambiguous order, rejected. Different machines
  // may share a cycle (the arg disambiguates the shared stream).
  EXPECT_TRUE(ParseMachineSchedule("k@5:1 b@5:1", &err).empty());
  EXPECT_NE(err.find("token"), std::string::npos);
  EXPECT_EQ(ParseMachineSchedule("k@5:1 k@5:2", &err).size(), 2u) << err;
  // The :machine arg is mandatory for both kinds.
  EXPECT_TRUE(ParseMachineSchedule("k@5", &err).empty());
  EXPECT_TRUE(ParseMachineSchedule("b@5", &err).empty());

  // The combined grammar accepts machine kinds; the 3-way split routes them
  // to the machine vector and the legacy 2-way split ignores them.
  const auto combined = ParseFaultSchedule("d@1 w@3 k@100:0 b@200:0", &err);
  ASSERT_EQ(combined.size(), 4u) << err;
  std::vector<WireEvent> wire;
  std::vector<DiskEvent> disk;
  std::vector<MachineEvent> machines;
  SplitFaultSchedule(combined, &wire, &disk, &machines);
  EXPECT_EQ(wire.size(), 1u);
  EXPECT_EQ(disk.size(), 1u);
  ASSERT_EQ(machines.size(), 2u);
  EXPECT_EQ(machines[0].kind, 'k');
  EXPECT_EQ(machines[1].time, 200u);
  wire.clear();
  disk.clear();
  SplitFaultSchedule(combined, &wire, &disk);
  EXPECT_EQ(wire.size(), 1u);
  EXPECT_EQ(disk.size(), 1u);
}

// RecordMachine lands machine faults on the same stats/counter/replay surface
// as every other injected fault.
TEST(FaultInjectorTest, RecordMachineCountsAndReplays) {
  FaultPlan plan;
  FaultInjector faults(plan);
  Counters counters;
  faults.AttachCounters(&counters);
  faults.RecordMachine(MachineEvent{1000, 'k', 2});
  faults.RecordMachine(MachineEvent{2000, 'b', 2});
  EXPECT_EQ(faults.stats().machine_kills, 1u);
  EXPECT_EQ(faults.stats().machine_reboots, 1u);
  EXPECT_EQ(counters.Get("fault.machine_kills"), 1u);
  EXPECT_EQ(counters.Get("fault.machine_reboots"), 1u);
  ASSERT_EQ(faults.machine_events().size(), 2u);
  EXPECT_EQ(FormatMachineSchedule(faults.machine_events()), "k@1000:2 b@2000:2");
  ASSERT_EQ(faults.log().size(), 2u);
}

// ---- Injector attachment and cut-point bookkeeping ----

// First tracer attachment wins (a Disk and a Link sharing one injector both
// try); nullptr detaches and a new tracer can then take over.
TEST(FaultInjectorTest, AttachTracerFirstWinsAndReattaches) {
  FaultPlan plan;
  FaultInjector faults(plan);
  Engine engine;
  trace::Tracer t1;
  trace::Tracer t2;

  faults.AttachTracer(&t1, &engine);
  faults.AttachTracer(&t2, &engine);  // second attach: ignored
  EXPECT_EQ(faults.tracer(), &t1);

  faults.AttachTracer(nullptr, nullptr);  // detach
  EXPECT_EQ(faults.tracer(), nullptr);

  faults.AttachTracer(&t2, &engine);  // re-attach after detach
  EXPECT_EQ(faults.tracer(), &t2);
}

// Counters follow the same contract, and injected faults land in fault.*.
TEST(FaultInjectorTest, AttachCountersFirstWinsAndCounts) {
  FaultPlan plan;
  plan.wire_script = {{1, 'd', 0}};
  plan.disk_script = {{1, 'w', 0}, {1, 'l', 0}};
  FaultInjector faults(plan);
  Counters c1;
  Counters c2;
  faults.AttachCounters(&c1);
  faults.AttachCounters(&c2);  // ignored: first attachment wins

  EXPECT_EQ(faults.NextWireFate(100), FaultInjector::WireFate::kDrop);
  EXPECT_EQ(faults.NextWriteFate(7, 64), FaultInjector::WriteFate::kLost);
  EXPECT_EQ(faults.NextReadFate(7, 4096), FaultInjector::ReadFate::kLatent);

  EXPECT_EQ(c1.Get("fault.net_drops"), 1u);
  EXPECT_EQ(c1.Get("fault.disk_lost_writes"), 1u);
  EXPECT_EQ(c1.Get("fault.disk_latent"), 1u);
  EXPECT_EQ(c2.Get("fault.net_drops"), 0u);

  faults.AttachCounters(nullptr);  // detach: later faults count nowhere
  faults.AttachCounters(&c2);      // and a fresh surface can take over
}

// The cut-point predicate flips exactly at the k-th durable block write: the
// k-th OnBlockWritten returns true (power is lost after it) and pending goes
// false from that instant on.
TEST(FaultInjectorTest, PowerCutFiresAtExactlyKthWrite) {
  FaultPlan plan;
  plan.power_cut_after_blocks = 3;
  FaultInjector faults(plan);

  EXPECT_TRUE(faults.power_cut_pending());
  EXPECT_FALSE(faults.OnBlockWritten(10));  // write 1
  EXPECT_TRUE(faults.power_cut_pending());
  EXPECT_FALSE(faults.OnBlockWritten(11));  // write 2
  EXPECT_TRUE(faults.power_cut_pending());
  EXPECT_TRUE(faults.OnBlockWritten(12));   // write 3: the cut
  EXPECT_FALSE(faults.power_cut_pending());
  EXPECT_FALSE(faults.OnBlockWritten(13));  // never re-fires
  EXPECT_EQ(faults.stats().power_cuts, 1u);

  // k = 0 disables the mechanism entirely.
  FaultInjector off(FaultPlan{});
  EXPECT_FALSE(off.power_cut_pending());
  EXPECT_FALSE(off.OnBlockWritten(1));
}

}  // namespace
}  // namespace exo::sim
