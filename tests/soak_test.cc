// Chaos soak: long multi-tenant HTTP workloads under randomized wire-fault
// schedules, with invariants checked every epoch and failing schedules
// delta-minimized (sim::Shrinker) to a replayable reproducer.
//
// Knobs (CI and local triage):
//   SOAK_SEEDS=<lo>:<hi>   seed block for the randomized sweep (default 1:3)
//   SOAK_EPOCHS=<n>        epochs per seed (default 5; one epoch = 10 ms sim)
//
// On an invariant violation the test prints one line —
//   SOAK-REPRO seed=<seed> schedule="d@12 c@31:58 ..."
// — whose schedule replays byte-for-byte through FaultPlan::wire_script
// (docs/OVERLOAD.md walks through replaying one).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apps/http.h"
#include "hw/machine.h"
#include "hw/nic.h"
#include "net/packet.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/shrink.h"

namespace exo {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 0) : fallback;
}

constexpr sim::Cycles kEpoch = 2'000'000;  // 10 ms at 200 MHz

struct SoakResult {
  std::string failure;                  // first violated invariant ("" = clean)
  std::vector<sim::WireEvent> events;   // executed wire faults, replayable
  std::vector<std::string> fault_log;   // injector log, for byte-exactness checks
  uint64_t closed_completed = 0;
  uint64_t open_completed = 0;
  uint64_t open_rejected = 0;
  uint64_t open_failed = 0;
  sim::Cycles end_time = 0;
};

// Two tenants against one Cheetah server with the full robustness policy on:
// an open-loop client (checksum-verifying profile, so corrupted responses are
// detected and recovered) and a closed-loop client. One FaultInjector spans
// both links, so a schedule is a single consultation-ordered stream.
SoakResult RunSoak(const sim::FaultPlan& plan, uint64_t epochs) {
  sim::Engine engine;
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  sim::FaultInjector faults(plan);

  apps::HttpServer server(&engine, &cost, apps::ServerStyle::kCheetah, /*ip=*/100);
  std::vector<uint8_t> doc(4096);
  for (size_t i = 0; i < doc.size(); ++i) {
    doc[i] = static_cast<uint8_t>(i * 31);
  }
  server.AddDocument("doc", doc);
  net::ServerOverloadPolicy policy;
  policy.enabled = true;
  policy.listen_backlog = 16;
  policy.high_watermark_us = 2'000;
  policy.low_watermark_us = 500;
  policy.request_deadline_us = 100'000;  // 100 ms: generous, but bounded
  server.SetOverloadPolicy(policy);

  hw::Nic snic0(0), cnic0(100), snic1(1), cnic1(101);
  hw::Link link0(&engine, 100.0, 40.0, 200);
  hw::Link link1(&engine, 100.0, 40.0, 200);
  link0.Connect(&snic0, &cnic0);
  link1.Connect(&snic1, &cnic1);
  link0.SetFaultInjector(&faults);
  link1.SetFaultInjector(&faults);
  server.AttachNic(&snic0, /*peer_ip=*/1);
  server.AttachNic(&snic1, /*peer_ip=*/2);
  EXPECT_EQ(server.Listen(80), Status::kOk);

  // Tenant 1: open-loop at ~2000 req/s, rx-verifying stack.
  apps::OpenLoopHttpClient open_client(&engine, &cost, &cnic0, /*ip=*/1, 100, "doc",
                                       /*interval_cycles=*/100'000,
                                       net::XokSocketProfile());
  // Tenant 2: closed-loop, 4 concurrent fetchers.
  apps::HttpClient closed_client(&engine, &cost, &cnic1, /*ip=*/2, 100, "doc",
                                 /*concurrency=*/4);
  // Client-side request deadlines: without them a lost server-abort RST leaves
  // a client parked in kEstablished forever (no timer armed), which the drain
  // leak check would — correctly — flag.
  open_client.set_request_timeout(40'000'000);    // 200 ms
  closed_client.set_request_timeout(40'000'000);

  const sim::Cycles deadline = static_cast<sim::Cycles>(epochs) * kEpoch;
  open_client.Start(deadline);
  closed_client.Start(deadline);

  SoakResult r;
  auto fail = [&](const std::string& what, uint64_t epoch) {
    if (r.failure.empty()) {
      r.failure = what + " (epoch " + std::to_string(epoch) + ")";
    }
  };

  uint64_t last_progress = 0;
  for (uint64_t e = 1; e <= epochs && r.failure.empty(); ++e) {
    engine.RunUntil(static_cast<sim::Cycles>(e) * kEpoch);
    // Stack invariants: monotonic ACKs, sequenced retransmission queues, timers
    // consistent with state, half-open accounting honest and within backlog.
    for (net::TcpStack* check :
         {&server.stack(), &open_client.stack(), &closed_client.stack()}) {
      std::string bad = check->CheckInvariants();
      if (!bad.empty()) {
        fail(bad, e);
      }
    }
    // Liveness: the system must keep resolving requests every epoch — under
    // faults a deadlock or livelock would freeze this sum while arrivals
    // continue (even a shed request counts; silence does not).
    const uint64_t progress = closed_client.completed() + open_client.completed() +
                              open_client.rejected() + server.requests_rejected();
    if (progress <= last_progress) {
      fail("no request resolved over an epoch (deadlock/livelock)", e);
    }
    last_progress = progress;
  }

  // Drain: stop offering load, let every timer resolve (RTO aborts bound
  // retries, reapers bound half-open and half-closed states), then the world
  // must be empty — anything left is a leak.
  if (r.failure.empty()) {
    engine.RunUntilIdle();
    if (server.stack().conn_count() != 0) {
      fail("server leaked connections after drain", epochs);
    }
    if (open_client.stack().conn_count() != 0 ||
        closed_client.stack().conn_count() != 0) {
      fail("client leaked connections after drain: [open] " +
               open_client.stack().DebugConnStates() + " [closed] " +
               closed_client.stack().DebugConnStates(),
           epochs);
    }
    if (server.stack().half_open_count(80) != 0) {
      fail("half-open count nonzero after drain", epochs);
    }
    // Frame conservation: every frame a NIC transmitted is delivered, dropped
    // by an injected wire fault, or dropped at a full rx ring; a duplicate adds
    // one extra delivery.
    const uint64_t tx = snic0.stats().tx_packets + snic1.stats().tx_packets +
                        cnic0.stats().tx_packets + cnic1.stats().tx_packets;
    const uint64_t rx = snic0.stats().rx_packets + snic1.stats().rx_packets +
                        cnic0.stats().rx_packets + cnic1.stats().rx_packets;
    const uint64_t overflows =
        snic0.stats().rx_overflows + snic1.stats().rx_overflows +
        cnic0.stats().rx_overflows + cnic1.stats().rx_overflows;
    if (tx + faults.stats().net_duplicates !=
        rx + overflows + faults.stats().net_drops) {
      fail("frames leaked on the wire (tx != rx + drops)", epochs);
    }
  }

  r.events = faults.wire_events();
  r.fault_log = faults.log();
  r.closed_completed = closed_client.completed();
  r.open_completed = open_client.completed();
  r.open_rejected = open_client.rejected();
  r.open_failed = open_client.failed();
  r.end_time = engine.now();
  return r;
}

// Re-runs the identical workload under an explicit schedule (no RNG on the
// wire) — the replay/shrink harness for a failure found by the rate-mode sweep.
SoakResult ReplaySoak(const std::vector<sim::WireEvent>& schedule, uint64_t epochs) {
  sim::FaultPlan plan;
  plan.net_corrupt_min_offset = net::kIpHeaderBytes + net::kTcpHeaderBytes;
  plan.wire_script = schedule;
  return RunSoak(plan, epochs);
}

// The CI soak sweep: randomized schedules, every epoch checked. A failure
// here is a real bug; the printed SOAK-REPRO line is its minimized, replayable
// form (docs/OVERLOAD.md describes the triage workflow).
TEST(Soak, MultiTenantRandomFaultSweep) {
  uint64_t lo = 1;
  uint64_t hi = 3;
  if (const char* block = std::getenv("SOAK_SEEDS")) {
    char* colon = nullptr;
    lo = std::strtoull(block, &colon, 0);
    hi = (colon != nullptr && *colon == ':') ? std::strtoull(colon + 1, nullptr, 0)
                                             : lo;
  }
  const uint64_t epochs = EnvOr("SOAK_EPOCHS", 5);

  for (uint64_t seed = lo; seed <= hi; ++seed) {
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.net_drop_rate = 0.02;
    plan.net_corrupt_rate = 0.01;
    plan.net_duplicate_rate = 0.01;
    plan.net_corrupt_min_offset = net::kIpHeaderBytes + net::kTcpHeaderBytes;

    SoakResult r = RunSoak(plan, epochs);
    if (!r.failure.empty()) {
      // Minimize before reporting: the reproducer is the deliverable.
      const std::string failure = r.failure;
      sim::Shrinker shrinker([&](const std::vector<sim::WireEvent>& candidate) {
        return ReplaySoak(candidate, epochs).failure == failure;
      });
      std::vector<sim::WireEvent> minimal = r.events;
      if (ReplaySoak(minimal, epochs).failure == failure) {
        minimal = shrinker.Minimize(minimal);
      }
      std::printf("SOAK-REPRO seed=%llu schedule=\"%s\"\n",
                  static_cast<unsigned long long>(seed),
                  sim::FormatWireSchedule(minimal).c_str());
      ADD_FAILURE() << "seed " << seed << ": " << failure
                    << "\nminimized schedule (" << minimal.size()
                    << " events): " << sim::FormatWireSchedule(minimal);
      continue;
    }
    // The sweep must actually exercise the machinery, not idle through it.
    EXPECT_GT(r.closed_completed + r.open_completed, 100u) << "seed " << seed;
    EXPECT_GT(r.events.size(), 10u) << "seed " << seed;
  }
}

// A recorded rate-mode schedule, replayed through wire_script, must re-execute
// the identical faults against the identical frames: same event stream, same
// outcome counters, same final clock — byte-for-byte determinism across modes.
TEST(Soak, RecordedScheduleReplaysByteExact) {
  sim::FaultPlan plan;
  plan.seed = 99;
  plan.net_drop_rate = 0.02;
  plan.net_corrupt_rate = 0.01;
  plan.net_duplicate_rate = 0.01;
  plan.net_corrupt_min_offset = net::kIpHeaderBytes + net::kTcpHeaderBytes;

  SoakResult original = RunSoak(plan, 3);
  ASSERT_EQ(original.failure, "");
  ASSERT_GT(original.events.size(), 5u);

  SoakResult replay1 = ReplaySoak(original.events, 3);
  SoakResult replay2 = ReplaySoak(original.events, 3);

  // Scripted mode re-executes the recorded schedule exactly...
  EXPECT_TRUE(replay1.events == original.events);
  EXPECT_EQ(replay1.failure, "");
  // ...the simulation lands in the identical final state...
  EXPECT_EQ(replay1.closed_completed, original.closed_completed);
  EXPECT_EQ(replay1.open_completed, original.open_completed);
  EXPECT_EQ(replay1.open_rejected, original.open_rejected);
  EXPECT_EQ(replay1.open_failed, original.open_failed);
  EXPECT_EQ(replay1.end_time, original.end_time);
  // ...and replay itself is bit-stable run to run.
  EXPECT_EQ(replay1.fault_log, replay2.fault_log);
  EXPECT_TRUE(replay1.events == replay2.events);
  EXPECT_EQ(replay1.end_time, replay2.end_time);
}

// The schedule codec round-trips the printed seed line.
TEST(Soak, WireScheduleCodecRoundTrips) {
  std::vector<sim::WireEvent> events = {
      {3, 'd', 0}, {15, 'c', 58}, {20, 'u', 0}, {901, 'd', 0}};
  const std::string text = sim::FormatWireSchedule(events);
  EXPECT_EQ(text, "d@3 c@15:58 u@20 d@901");
  EXPECT_TRUE(sim::ParseWireSchedule(text) == events);
  EXPECT_TRUE(sim::ParseWireSchedule("").empty());
}

// ---- Shrinker acceptance: a soak-style failure minimizes to a <=10-event
// reproducer that replays byte-for-byte from its printed seed line. ----

// A deliberately fragile scenario: one client with max_retransmits=3 fetching
// one 2000-byte document. Failure predicate: the fetch never completes. The
// cheapest way to kill it is to drop the SYN and all three retries — frames
// 1..4, since nothing else crosses the wire until the handshake succeeds.
// When `recorded` is non-null the executed wire schedule is copied out.
bool FragileFetchFails(const sim::FaultPlan& plan,
                       std::vector<sim::WireEvent>* recorded = nullptr) {
  sim::Engine engine;
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  sim::FaultInjector faults(plan);

  hw::Nic snic(0), cnic(1);
  hw::Link link(&engine, 100.0, 40.0, 200);
  link.Connect(&snic, &cnic);
  link.SetFaultInjector(&faults);

  net::TcpProfile server_prof = net::XokSocketProfile();
  net::TcpProfile client_prof = net::ClientProfile();
  server_prof.max_retransmits = 3;
  client_prof.max_retransmits = 3;

  auto mk = [&](hw::Nic* nic, net::IpAddr ip, const net::TcpProfile& prof) {
    net::TcpStack::Hooks hooks;
    hooks.engine = &engine;
    hooks.cost = &cost;
    hooks.cpu = nullptr;
    hooks.transmit = [&engine, nic](hw::Packet p, sim::Cycles when) {
      engine.ScheduleAt(std::max(when, engine.now()),
                        [nic, p = std::move(p)]() mutable { nic->Transmit(std::move(p)); });
    };
    auto stack = std::make_unique<net::TcpStack>(hooks, ip, prof);
    net::TcpStack* raw = stack.get();
    nic->SetReceiveHandler([raw](hw::Packet p) { raw->Input(p); });
    return stack;
  };
  auto server = mk(&snic, 2, server_prof);
  auto client = mk(&cnic, 1, client_prof);

  size_t got = 0;
  EXPECT_EQ(server->Listen(80,
                           [](net::TcpConn* c) {
                             c->set_on_data(
                                 [](net::TcpConn* conn, std::span<const uint8_t>) {
                                   conn->Send(std::vector<uint8_t>(2000, 0x5a));
                                 });
                           }),
            Status::kOk);
  client->Connect(2, 80, [&](net::TcpConn* c) {
    c->set_on_data([&](net::TcpConn*, std::span<const uint8_t> d) { got += d.size(); });
    c->Send(std::vector<uint8_t>(64, 0x42));
  });
  engine.RunUntilIdle();
  if (recorded != nullptr) {
    *recorded = faults.wire_events();
  }
  return got < 2000;  // the fetch never completed: the failure being shrunk
}

// End-to-end: find a genuinely failing random schedule, record it, ddmin it,
// and prove the printed seed line replays the failure byte-for-byte.
TEST(Soak, ShrinkerMinimizesFailureToReplayableSeedLine) {
  uint64_t failing_seed = 0;
  std::vector<sim::WireEvent> recorded;
  for (uint64_t seed = 1; seed <= 50 && failing_seed == 0; ++seed) {
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.net_drop_rate = 0.30;
    if (FragileFetchFails(plan, &recorded)) {
      failing_seed = seed;
    }
  }
  ASSERT_NE(failing_seed, 0u) << "no failing seed in 1..50 at 30% drop";
  ASSERT_FALSE(recorded.empty());

  // Predicate: does a scripted candidate still reproduce the failure?
  auto still_fails = [](const std::vector<sim::WireEvent>& candidate) {
    sim::FaultPlan plan;
    plan.wire_script = candidate;
    return FragileFetchFails(plan);
  };
  ASSERT_TRUE(still_fails(recorded)) << "recorded schedule must replay the failure";

  sim::Shrinker shrinker(still_fails);
  const std::vector<sim::WireEvent> minimal = shrinker.Minimize(recorded);

  // The acceptance bar: a small (<=10 events) reproducer...
  EXPECT_LE(minimal.size(), 10u);
  ASSERT_TRUE(still_fails(minimal));
  // ...that is 1-minimal: removing any single event loses the failure.
  for (size_t i = 0; i < minimal.size(); ++i) {
    std::vector<sim::WireEvent> weaker = minimal;
    weaker.erase(weaker.begin() + static_cast<long>(i));
    EXPECT_FALSE(still_fails(weaker)) << "not 1-minimal at event " << i;
  }

  // The printed seed line replays byte-for-byte: format, parse, run twice,
  // identical executed schedule both times.
  const std::string line = sim::FormatWireSchedule(minimal);
  std::printf("SOAK-REPRO seed=%llu schedule=\"%s\"\n",
              static_cast<unsigned long long>(failing_seed), line.c_str());
  std::vector<sim::WireEvent> parsed = sim::ParseWireSchedule(line);
  ASSERT_TRUE(parsed == minimal);
  std::vector<sim::WireEvent> executed1, executed2;
  sim::FaultPlan replay;
  replay.wire_script = parsed;
  EXPECT_TRUE(FragileFetchFails(replay, &executed1));
  EXPECT_TRUE(FragileFetchFails(replay, &executed2));
  EXPECT_TRUE(executed1 == executed2);
}

// Deterministic shape check: a planted schedule — the four drops that kill the
// handshake plus noise events on frames that never occur once the connection
// aborts — must minimize to exactly the four necessary drops.
TEST(Soak, ShrinkerPrunesPlantedScheduleToNecessaryDrops) {
  std::vector<sim::WireEvent> planted = {
      {1, 'd', 0}, {2, 'd', 0}, {3, 'd', 0}, {4, 'd', 0},
      {6, 'd', 0}, {9, 'c', 40}, {11, 'u', 0}, {100, 'd', 0}};
  auto still_fails = [](const std::vector<sim::WireEvent>& candidate) {
    sim::FaultPlan plan;
    plan.wire_script = candidate;
    return FragileFetchFails(plan);
  };
  ASSERT_TRUE(still_fails(planted));

  sim::Shrinker shrinker(still_fails);
  const std::vector<sim::WireEvent> minimal = shrinker.Minimize(planted);
  ASSERT_EQ(minimal.size(), 4u);
  for (size_t i = 0; i < minimal.size(); ++i) {
    EXPECT_EQ(minimal[i].kind, 'd');
    EXPECT_EQ(minimal[i].frame_index, i + 1);
  }
  EXPECT_GT(shrinker.probes(), 0u);
}

// ---- Combined wire + disk schedules: one stream, one ddmin, one repro line ----

// The combined codec covers both layers (kind letters are disjoint) and splits
// back into the per-layer scripts losslessly.
TEST(Soak, CombinedScheduleCodecRoundTrips) {
  std::vector<sim::FaultEvent> events = {{'d', 3, 0},   {'w', 1, 0},  {'c', 15, 58},
                                         {'r', 7, 128}, {'m', 5, 917}, {'l', 2, 0},
                                         {'u', 20, 0}};
  const std::string text = sim::FormatFaultSchedule(events);
  EXPECT_EQ(text, "d@3 w@1 c@15:58 r@7:128 m@5:917 l@2 u@20");
  EXPECT_TRUE(sim::ParseFaultSchedule(text) == events);
  EXPECT_TRUE(sim::ParseFaultSchedule("").empty());

  std::vector<sim::WireEvent> wire;
  std::vector<sim::DiskEvent> disk;
  sim::SplitFaultSchedule(events, &wire, &disk);
  ASSERT_EQ(wire.size(), 3u);
  ASSERT_EQ(disk.size(), 4u);
  EXPECT_EQ(sim::FormatWireSchedule(wire), "d@3 c@15:58 u@20");
  EXPECT_EQ(sim::FormatDiskSchedule(disk), "w@1 r@7:128 m@5:917 l@2");
}

// Disk leg of a combined failure: DMA-write one block, read it back. A lost
// (or misdirected-away) first write leaves the stale bytes — that mismatch, or
// a loudly failed I/O, is the failure being shrunk.
bool FragileWriteFails(const sim::FaultPlan& plan) {
  sim::Engine engine;
  hw::Machine machine(&engine,
                      hw::MachineConfig{.mem_frames = 16,
                                        .disks = {hw::DiskGeometry{.num_blocks = 64}}});
  sim::FaultInjector faults(plan);
  machine.disk().SetFaultInjector(&faults);
  auto f = machine.mem().Alloc();
  EXPECT_TRUE(f.ok());
  auto buf = machine.mem().Data(*f);
  std::fill(buf.begin(), buf.end(), uint8_t{0xab});
  bool wrote = false;
  bool read = false;
  machine.disk().Submit({.write = true,
                         .start = 5,
                         .nblocks = 1,
                         .frames = {*f},
                         .done = [&](Status s) { wrote = s == Status::kOk; }});
  engine.RunUntilIdle();
  std::fill(buf.begin(), buf.end(), uint8_t{0});
  machine.disk().Submit({.write = false,
                         .start = 5,
                         .nblocks = 1,
                         .frames = {*f},
                         .done = [&](Status s) { read = s == Status::kOk; }});
  engine.RunUntilIdle();
  machine.disk().SetFaultInjector(nullptr);
  if (!wrote || !read) {
    return true;  // the I/O failed loudly
  }
  return !std::all_of(buf.begin(), buf.end(), [](uint8_t b) { return b == 0xab; });
}

// A failure that needs BOTH layers reproduces through one ddmin pass over the
// merged stream: the four handshake-killing drops and the one lost write
// survive; noise on both layers (events whose consultation index is never
// reached, plus redundant wire faults) is pruned. The printed line is a single
// combined SOAK-REPRO reproducer.
TEST(Soak, CombinedWireDiskScheduleMinimizesToOneReproLine) {
  std::vector<sim::FaultEvent> planted = {
      {'d', 1, 0}, {'w', 1, 0}, {'d', 2, 0}, {'m', 9, 3},  // write 9 never happens
      {'d', 3, 0}, {'l', 7, 0},                            // read 7 never happens
      {'d', 4, 0}, {'d', 6, 0}, {'c', 9, 40}, {'u', 11, 0}};
  auto still_fails = [](const std::vector<sim::FaultEvent>& candidate) {
    std::vector<sim::WireEvent> wire;
    std::vector<sim::DiskEvent> disk;
    sim::SplitFaultSchedule(candidate, &wire, &disk);
    sim::FaultPlan wire_plan;
    wire_plan.wire_script = wire;
    sim::FaultPlan disk_plan;
    disk_plan.disk_script = disk;
    return FragileFetchFails(wire_plan) && FragileWriteFails(disk_plan);
  };
  ASSERT_TRUE(still_fails(planted));

  sim::BasicShrinker<sim::FaultEvent> shrinker(still_fails);
  const std::vector<sim::FaultEvent> minimal = shrinker.Minimize(planted);
  const std::string line = sim::FormatFaultSchedule(minimal);
  ASSERT_EQ(minimal.size(), 5u) << line;
  EXPECT_EQ(line, "d@1 w@1 d@2 d@3 d@4");
  EXPECT_TRUE(sim::ParseFaultSchedule(line) == minimal);
  EXPECT_TRUE(still_fails(minimal));
  EXPECT_GT(shrinker.probes(), 0u);
  std::printf("SOAK-REPRO schedule=\"%s\"\n", line.c_str());
}

}  // namespace
}  // namespace exo
