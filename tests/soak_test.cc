// Chaos soak: long multi-tenant HTTP workloads under randomized wire-fault
// schedules, with invariants checked every epoch and failing schedules
// delta-minimized (sim::Shrinker) to a replayable reproducer.
//
// Knobs (CI and local triage):
//   SOAK_SEEDS=<lo>:<hi>   seed block for the randomized sweep (default 1:3)
//   SOAK_EPOCHS=<n>        epochs per seed (default 5; one epoch = 10 ms sim)
//   FLEET_SEEDS=<lo>:<hi>  seed block for the fleet kill/reboot sweep (default 1:3)
//
// On an invariant violation the test prints one line —
//   SOAK-REPRO seed=<seed> schedule="d@12 c@31:58 ..."
// — whose schedule replays byte-for-byte through FaultPlan::wire_script
// (docs/OVERLOAD.md walks through replaying one).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apps/http.h"
#include "cluster/topology.h"
#include "hw/machine.h"
#include "hw/nic.h"
#include "net/packet.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/fuzz.h"
#include "sim/shrink.h"
#include "trace/trace.h"
#include "xok/capability.h"
#include "xok/kernel.h"

namespace exo {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 0) : fallback;
}

constexpr sim::Cycles kEpoch = 2'000'000;  // 10 ms at 200 MHz

struct SoakResult {
  std::string failure;                  // first violated invariant ("" = clean)
  std::vector<sim::WireEvent> events;   // executed wire faults, replayable
  std::vector<std::string> fault_log;   // injector log, for byte-exactness checks
  uint64_t closed_completed = 0;
  uint64_t open_completed = 0;
  uint64_t open_rejected = 0;
  uint64_t open_failed = 0;
  uint64_t pers_completed = 0;
  uint64_t pers_failed = 0;
  uint64_t pers_conns_opened = 0;
  sim::Cycles end_time = 0;
};

// Three tenants against one armed Cheetah server (persistent + document store
// + response cache + gather transmit) with the full robustness policy on: an
// open-loop HTTP/1.0 client (checksum-verifying profile, so corrupted
// responses are detected and recovered), a closed-loop client, and a
// persistent HTTP/1.1 client pipelining over a keep-alive pool — so wire
// faults land on long-lived pipelined connections, not just per-request ones.
// One FaultInjector spans all links, so a schedule is a single
// consultation-ordered stream.
SoakResult RunSoak(const sim::FaultPlan& plan, uint64_t epochs) {
  sim::Engine engine;
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  sim::FaultInjector faults(plan);

  net::DocumentStore store(&cost);  // setup-time writes: no CPU to charge
  apps::HttpServerOptions options;
  options.persistent = true;
  options.documents = &store;
  options.response_cache_entries = 8;
  options.gather_tx = true;
  apps::HttpServer server(&engine, &cost, apps::ServerStyle::kCheetah, /*ip=*/100,
                          options);
  std::vector<uint8_t> doc(4096);
  for (size_t i = 0; i < doc.size(); ++i) {
    doc[i] = static_cast<uint8_t>(i * 31);
  }
  server.AddDocument("doc", doc);
  net::ServerOverloadPolicy policy;
  policy.enabled = true;
  policy.listen_backlog = 16;
  policy.high_watermark_us = 2'000;
  policy.low_watermark_us = 500;
  policy.request_deadline_us = 100'000;  // 100 ms: generous, but bounded
  server.SetOverloadPolicy(policy);

  hw::Nic snic0(0), cnic0(100), snic1(1), cnic1(101), snic2(2), cnic2(102);
  hw::Link link0(&engine, 100.0, 40.0, 200);
  hw::Link link1(&engine, 100.0, 40.0, 200);
  hw::Link link2(&engine, 100.0, 40.0, 200);
  link0.Connect(&snic0, &cnic0);
  link1.Connect(&snic1, &cnic1);
  link2.Connect(&snic2, &cnic2);
  link0.SetFaultInjector(&faults);
  link1.SetFaultInjector(&faults);
  link2.SetFaultInjector(&faults);
  server.AttachNic(&snic0, /*peer_ip=*/1);
  server.AttachNic(&snic1, /*peer_ip=*/2);
  server.AttachNic(&snic2, /*peer_ip=*/3);
  EXPECT_EQ(server.Listen(80), Status::kOk);

  // Tenant 1: open-loop at ~2000 req/s, rx-verifying stack.
  apps::OpenLoopHttpClient open_client(&engine, &cost, &cnic0, /*ip=*/1, 100, "doc",
                                       /*interval_cycles=*/100'000,
                                       net::XokSocketProfile());
  // Tenant 2: closed-loop, 4 concurrent fetchers.
  apps::HttpClient closed_client(&engine, &cost, &cnic1, /*ip=*/2, 100, "doc",
                                 /*concurrency=*/4);
  // Tenant 3: open-loop at ~2000 req/s over a persistent keep-alive pool,
  // pipelining HTTP/1.1 requests — faults hit mid-pipeline, and recovery is
  // the on_close fail-outstanding-and-reconnect path, not a fresh handshake.
  apps::OpenLoopHttpClient pers_client(&engine, &cost, &cnic2, /*ip=*/3, 100, "doc",
                                       /*interval_cycles=*/100'000,
                                       net::XokSocketProfile());
  pers_client.EnablePersistent(/*pool_size=*/4, /*max_pipeline=*/8);
  // Client-side request deadlines: without them a lost server-abort RST leaves
  // a client parked in kEstablished forever (no timer armed), which the drain
  // leak check would — correctly — flag.
  open_client.set_request_timeout(40'000'000);    // 200 ms
  closed_client.set_request_timeout(40'000'000);
  pers_client.set_request_timeout(40'000'000);

  const sim::Cycles deadline = static_cast<sim::Cycles>(epochs) * kEpoch;
  open_client.Start(deadline);
  closed_client.Start(deadline);
  pers_client.Start(deadline);

  SoakResult r;
  auto fail = [&](const std::string& what, uint64_t epoch) {
    if (r.failure.empty()) {
      r.failure = what + " (epoch " + std::to_string(epoch) + ")";
    }
  };

  uint64_t last_progress = 0;
  for (uint64_t e = 1; e <= epochs && r.failure.empty(); ++e) {
    engine.RunUntil(static_cast<sim::Cycles>(e) * kEpoch);
    // Stack invariants: monotonic ACKs, sequenced retransmission queues, timers
    // consistent with state, half-open accounting honest and within backlog.
    for (net::TcpStack* check : {&server.stack(), &open_client.stack(),
                                 &closed_client.stack(), &pers_client.stack()}) {
      std::string bad = check->CheckInvariants();
      if (!bad.empty()) {
        fail(bad, e);
      }
    }
    // Liveness: the system must keep resolving requests every epoch — under
    // faults a deadlock or livelock would freeze this sum while arrivals
    // continue (even a shed request counts; silence does not).
    const uint64_t progress = closed_client.completed() + open_client.completed() +
                              open_client.rejected() + pers_client.completed() +
                              pers_client.rejected() + server.requests_rejected();
    if (progress <= last_progress) {
      fail("no request resolved over an epoch (deadlock/livelock)", e);
    }
    last_progress = progress;
  }

  // Drain: stop offering load, let every timer resolve (RTO aborts bound
  // retries, reapers bound half-open and half-closed states), then the world
  // must be empty — anything left is a leak.
  if (r.failure.empty()) {
    // The keep-alive pool holds its connections open by design; close them so
    // the leak check below means "nothing unaccounted", not "pool exists".
    pers_client.ClosePool();
    engine.RunUntilIdle();
    if (server.stack().conn_count() != 0) {
      fail("server leaked connections after drain", epochs);
    }
    if (open_client.stack().conn_count() != 0 ||
        closed_client.stack().conn_count() != 0 ||
        pers_client.stack().conn_count() != 0) {
      fail("client leaked connections after drain: [open] " +
               open_client.stack().DebugConnStates() + " [closed] " +
               closed_client.stack().DebugConnStates() + " [persistent] " +
               pers_client.stack().DebugConnStates(),
           epochs);
    }
    if (server.stack().half_open_count(80) != 0) {
      fail("half-open count nonzero after drain", epochs);
    }
    // Frame conservation: every frame a NIC transmitted is delivered, dropped
    // by an injected wire fault, or dropped at a full rx ring; a duplicate adds
    // one extra delivery.
    const uint64_t tx = snic0.stats().tx_packets + snic1.stats().tx_packets +
                        snic2.stats().tx_packets + cnic0.stats().tx_packets +
                        cnic1.stats().tx_packets + cnic2.stats().tx_packets;
    const uint64_t rx = snic0.stats().rx_packets + snic1.stats().rx_packets +
                        snic2.stats().rx_packets + cnic0.stats().rx_packets +
                        cnic1.stats().rx_packets + cnic2.stats().rx_packets;
    const uint64_t overflows =
        snic0.stats().rx_overflows + snic1.stats().rx_overflows +
        snic2.stats().rx_overflows + cnic0.stats().rx_overflows +
        cnic1.stats().rx_overflows + cnic2.stats().rx_overflows;
    if (tx + faults.stats().net_duplicates !=
        rx + overflows + faults.stats().net_drops) {
      fail("frames leaked on the wire (tx != rx + drops)", epochs);
    }
  }

  r.events = faults.wire_events();
  r.fault_log = faults.log();
  r.closed_completed = closed_client.completed();
  r.open_completed = open_client.completed();
  r.open_rejected = open_client.rejected();
  r.open_failed = open_client.failed();
  r.pers_completed = pers_client.completed();
  r.pers_failed = pers_client.failed();
  r.pers_conns_opened = pers_client.conns_opened();
  r.end_time = engine.now();
  return r;
}

// Re-runs the identical workload under an explicit schedule (no RNG on the
// wire) — the replay/shrink harness for a failure found by the rate-mode sweep.
SoakResult ReplaySoak(const std::vector<sim::WireEvent>& schedule, uint64_t epochs) {
  sim::FaultPlan plan;
  plan.net_corrupt_min_offset = net::kIpHeaderBytes + net::kTcpHeaderBytes;
  plan.wire_script = schedule;
  return RunSoak(plan, epochs);
}

// The CI soak sweep: randomized schedules, every epoch checked. A failure
// here is a real bug; the printed SOAK-REPRO line is its minimized, replayable
// form (docs/OVERLOAD.md describes the triage workflow).
TEST(Soak, MultiTenantRandomFaultSweep) {
  uint64_t lo = 1;
  uint64_t hi = 3;
  if (const char* block = std::getenv("SOAK_SEEDS")) {
    char* colon = nullptr;
    lo = std::strtoull(block, &colon, 0);
    hi = (colon != nullptr && *colon == ':') ? std::strtoull(colon + 1, nullptr, 0)
                                             : lo;
  }
  const uint64_t epochs = EnvOr("SOAK_EPOCHS", 5);

  for (uint64_t seed = lo; seed <= hi; ++seed) {
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.net_drop_rate = 0.02;
    plan.net_corrupt_rate = 0.01;
    plan.net_duplicate_rate = 0.01;
    plan.net_corrupt_min_offset = net::kIpHeaderBytes + net::kTcpHeaderBytes;

    SoakResult r = RunSoak(plan, epochs);
    if (!r.failure.empty()) {
      // Minimize before reporting: the reproducer is the deliverable.
      const std::string failure = r.failure;
      sim::Shrinker shrinker([&](const std::vector<sim::WireEvent>& candidate) {
        return ReplaySoak(candidate, epochs).failure == failure;
      });
      std::vector<sim::WireEvent> minimal = r.events;
      if (ReplaySoak(minimal, epochs).failure == failure) {
        minimal = shrinker.Minimize(minimal);
      }
      std::printf("SOAK-REPRO seed=%llu schedule=\"%s\"\n",
                  static_cast<unsigned long long>(seed),
                  sim::FormatWireSchedule(minimal).c_str());
      ADD_FAILURE() << "seed " << seed << ": " << failure
                    << "\nminimized schedule (" << minimal.size()
                    << " events): " << sim::FormatWireSchedule(minimal);
      continue;
    }
    // The sweep must actually exercise the machinery, not idle through it.
    EXPECT_GT(r.closed_completed + r.open_completed, 100u) << "seed " << seed;
    EXPECT_GT(r.pers_completed, 50u) << "seed " << seed;
    EXPECT_GT(r.events.size(), 10u) << "seed " << seed;
  }
}

// A recorded rate-mode schedule, replayed through wire_script, must re-execute
// the identical faults against the identical frames: same event stream, same
// outcome counters, same final clock — byte-for-byte determinism across modes.
TEST(Soak, RecordedScheduleReplaysByteExact) {
  sim::FaultPlan plan;
  plan.seed = 99;
  plan.net_drop_rate = 0.02;
  plan.net_corrupt_rate = 0.01;
  plan.net_duplicate_rate = 0.01;
  plan.net_corrupt_min_offset = net::kIpHeaderBytes + net::kTcpHeaderBytes;

  SoakResult original = RunSoak(plan, 3);
  ASSERT_EQ(original.failure, "");
  ASSERT_GT(original.events.size(), 5u);

  SoakResult replay1 = ReplaySoak(original.events, 3);
  SoakResult replay2 = ReplaySoak(original.events, 3);

  // Scripted mode re-executes the recorded schedule exactly...
  EXPECT_TRUE(replay1.events == original.events);
  EXPECT_EQ(replay1.failure, "");
  // ...the simulation lands in the identical final state...
  EXPECT_EQ(replay1.closed_completed, original.closed_completed);
  EXPECT_EQ(replay1.open_completed, original.open_completed);
  EXPECT_EQ(replay1.open_rejected, original.open_rejected);
  EXPECT_EQ(replay1.open_failed, original.open_failed);
  EXPECT_EQ(replay1.pers_completed, original.pers_completed);
  EXPECT_EQ(replay1.pers_failed, original.pers_failed);
  EXPECT_EQ(replay1.pers_conns_opened, original.pers_conns_opened);
  EXPECT_EQ(replay1.end_time, original.end_time);
  // ...and replay itself is bit-stable run to run.
  EXPECT_EQ(replay1.fault_log, replay2.fault_log);
  EXPECT_TRUE(replay1.events == replay2.events);
  EXPECT_EQ(replay1.end_time, replay2.end_time);
}

// The schedule codec round-trips the printed seed line.
TEST(Soak, WireScheduleCodecRoundTrips) {
  std::vector<sim::WireEvent> events = {
      {3, 'd', 0}, {15, 'c', 58}, {20, 'u', 0}, {901, 'd', 0}};
  const std::string text = sim::FormatWireSchedule(events);
  EXPECT_EQ(text, "d@3 c@15:58 u@20 d@901");
  EXPECT_TRUE(sim::ParseWireSchedule(text) == events);
  EXPECT_TRUE(sim::ParseWireSchedule("").empty());
}

// ---- Shrinker acceptance: a soak-style failure minimizes to a <=10-event
// reproducer that replays byte-for-byte from its printed seed line. ----

// A deliberately fragile scenario: one client with max_retransmits=3 fetching
// one 2000-byte document. Failure predicate: the fetch never completes. The
// cheapest way to kill it is to drop the SYN and all three retries — frames
// 1..4, since nothing else crosses the wire until the handshake succeeds.
// When `recorded` is non-null the executed wire schedule is copied out.
bool FragileFetchFails(const sim::FaultPlan& plan,
                       std::vector<sim::WireEvent>* recorded = nullptr) {
  sim::Engine engine;
  sim::CostModel cost = sim::CostModel::PentiumPro200();
  sim::FaultInjector faults(plan);

  hw::Nic snic(0), cnic(1);
  hw::Link link(&engine, 100.0, 40.0, 200);
  link.Connect(&snic, &cnic);
  link.SetFaultInjector(&faults);

  net::TcpProfile server_prof = net::XokSocketProfile();
  net::TcpProfile client_prof = net::ClientProfile();
  server_prof.max_retransmits = 3;
  client_prof.max_retransmits = 3;

  auto mk = [&](hw::Nic* nic, net::IpAddr ip, const net::TcpProfile& prof) {
    net::TcpStack::Hooks hooks;
    hooks.engine = &engine;
    hooks.cost = &cost;
    hooks.cpu = nullptr;
    hooks.transmit = [&engine, nic](hw::Packet p, sim::Cycles when) {
      engine.ScheduleAt(std::max(when, engine.now()),
                        [nic, p = std::move(p)]() mutable { nic->Transmit(std::move(p)); });
    };
    auto stack = std::make_unique<net::TcpStack>(hooks, ip, prof);
    net::TcpStack* raw = stack.get();
    nic->SetReceiveHandler([raw](hw::Packet p) { raw->Input(p); });
    return stack;
  };
  auto server = mk(&snic, 2, server_prof);
  auto client = mk(&cnic, 1, client_prof);

  size_t got = 0;
  EXPECT_EQ(server->Listen(80,
                           [](net::TcpConn* c) {
                             c->set_on_data(
                                 [](net::TcpConn* conn, std::span<const uint8_t>) {
                                   conn->Send(std::vector<uint8_t>(2000, 0x5a));
                                 });
                           }),
            Status::kOk);
  client->Connect(2, 80, [&](net::TcpConn* c) {
    c->set_on_data([&](net::TcpConn*, std::span<const uint8_t> d) { got += d.size(); });
    c->Send(std::vector<uint8_t>(64, 0x42));
  });
  engine.RunUntilIdle();
  if (recorded != nullptr) {
    *recorded = faults.wire_events();
  }
  return got < 2000;  // the fetch never completed: the failure being shrunk
}

// End-to-end: find a genuinely failing random schedule, record it, ddmin it,
// and prove the printed seed line replays the failure byte-for-byte.
TEST(Soak, ShrinkerMinimizesFailureToReplayableSeedLine) {
  uint64_t failing_seed = 0;
  std::vector<sim::WireEvent> recorded;
  for (uint64_t seed = 1; seed <= 50 && failing_seed == 0; ++seed) {
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.net_drop_rate = 0.30;
    if (FragileFetchFails(plan, &recorded)) {
      failing_seed = seed;
    }
  }
  ASSERT_NE(failing_seed, 0u) << "no failing seed in 1..50 at 30% drop";
  ASSERT_FALSE(recorded.empty());

  // Predicate: does a scripted candidate still reproduce the failure?
  auto still_fails = [](const std::vector<sim::WireEvent>& candidate) {
    sim::FaultPlan plan;
    plan.wire_script = candidate;
    return FragileFetchFails(plan);
  };
  ASSERT_TRUE(still_fails(recorded)) << "recorded schedule must replay the failure";

  sim::Shrinker shrinker(still_fails);
  const std::vector<sim::WireEvent> minimal = shrinker.Minimize(recorded);

  // The acceptance bar: a small (<=10 events) reproducer...
  EXPECT_LE(minimal.size(), 10u);
  ASSERT_TRUE(still_fails(minimal));
  // ...that is 1-minimal: removing any single event loses the failure.
  for (size_t i = 0; i < minimal.size(); ++i) {
    std::vector<sim::WireEvent> weaker = minimal;
    weaker.erase(weaker.begin() + static_cast<long>(i));
    EXPECT_FALSE(still_fails(weaker)) << "not 1-minimal at event " << i;
  }

  // The printed seed line replays byte-for-byte: format, parse, run twice,
  // identical executed schedule both times.
  const std::string line = sim::FormatWireSchedule(minimal);
  std::printf("SOAK-REPRO seed=%llu schedule=\"%s\"\n",
              static_cast<unsigned long long>(failing_seed), line.c_str());
  std::vector<sim::WireEvent> parsed = sim::ParseWireSchedule(line);
  ASSERT_TRUE(parsed == minimal);
  std::vector<sim::WireEvent> executed1, executed2;
  sim::FaultPlan replay;
  replay.wire_script = parsed;
  EXPECT_TRUE(FragileFetchFails(replay, &executed1));
  EXPECT_TRUE(FragileFetchFails(replay, &executed2));
  EXPECT_TRUE(executed1 == executed2);
}

// Deterministic shape check: a planted schedule — the four drops that kill the
// handshake plus noise events on frames that never occur once the connection
// aborts — must minimize to exactly the four necessary drops.
TEST(Soak, ShrinkerPrunesPlantedScheduleToNecessaryDrops) {
  std::vector<sim::WireEvent> planted = {
      {1, 'd', 0}, {2, 'd', 0}, {3, 'd', 0}, {4, 'd', 0},
      {6, 'd', 0}, {9, 'c', 40}, {11, 'u', 0}, {100, 'd', 0}};
  auto still_fails = [](const std::vector<sim::WireEvent>& candidate) {
    sim::FaultPlan plan;
    plan.wire_script = candidate;
    return FragileFetchFails(plan);
  };
  ASSERT_TRUE(still_fails(planted));

  sim::Shrinker shrinker(still_fails);
  const std::vector<sim::WireEvent> minimal = shrinker.Minimize(planted);
  ASSERT_EQ(minimal.size(), 4u);
  for (size_t i = 0; i < minimal.size(); ++i) {
    EXPECT_EQ(minimal[i].kind, 'd');
    EXPECT_EQ(minimal[i].frame_index, i + 1);
  }
  EXPECT_GT(shrinker.probes(), 0u);
}

// ---- Combined wire + disk schedules: one stream, one ddmin, one repro line ----

// The combined codec covers both layers (kind letters are disjoint) and splits
// back into the per-layer scripts losslessly.
TEST(Soak, CombinedScheduleCodecRoundTrips) {
  std::vector<sim::FaultEvent> events = {{'d', 3, 0},   {'w', 1, 0},  {'c', 15, 58},
                                         {'r', 7, 128}, {'m', 5, 917}, {'l', 2, 0},
                                         {'u', 20, 0}};
  const std::string text = sim::FormatFaultSchedule(events);
  EXPECT_EQ(text, "d@3 w@1 c@15:58 r@7:128 m@5:917 l@2 u@20");
  EXPECT_TRUE(sim::ParseFaultSchedule(text) == events);
  EXPECT_TRUE(sim::ParseFaultSchedule("").empty());

  std::vector<sim::WireEvent> wire;
  std::vector<sim::DiskEvent> disk;
  sim::SplitFaultSchedule(events, &wire, &disk);
  ASSERT_EQ(wire.size(), 3u);
  ASSERT_EQ(disk.size(), 4u);
  EXPECT_EQ(sim::FormatWireSchedule(wire), "d@3 c@15:58 u@20");
  EXPECT_EQ(sim::FormatDiskSchedule(disk), "w@1 r@7:128 m@5:917 l@2");
}

// Disk leg of a combined failure: DMA-write one block, read it back. A lost
// (or misdirected-away) first write leaves the stale bytes — that mismatch, or
// a loudly failed I/O, is the failure being shrunk.
bool FragileWriteFails(const sim::FaultPlan& plan) {
  sim::Engine engine;
  hw::Machine machine(&engine,
                      hw::MachineConfig{.mem_frames = 16,
                                        .disks = {hw::DiskGeometry{.num_blocks = 64}}});
  sim::FaultInjector faults(plan);
  machine.disk().SetFaultInjector(&faults);
  auto f = machine.mem().Alloc();
  EXPECT_TRUE(f.ok());
  auto buf = machine.mem().Data(*f);
  std::fill(buf.begin(), buf.end(), uint8_t{0xab});
  bool wrote = false;
  bool read = false;
  machine.disk().Submit({.write = true,
                         .start = 5,
                         .nblocks = 1,
                         .frames = {*f},
                         .done = [&](Status s) { wrote = s == Status::kOk; }});
  engine.RunUntilIdle();
  std::fill(buf.begin(), buf.end(), uint8_t{0});
  machine.disk().Submit({.write = false,
                         .start = 5,
                         .nblocks = 1,
                         .frames = {*f},
                         .done = [&](Status s) { read = s == Status::kOk; }});
  engine.RunUntilIdle();
  machine.disk().SetFaultInjector(nullptr);
  if (!wrote || !read) {
    return true;  // the I/O failed loudly
  }
  return !std::all_of(buf.begin(), buf.end(), [](uint8_t b) { return b == 0xab; });
}

// A failure that needs BOTH layers reproduces through one ddmin pass over the
// merged stream: the four handshake-killing drops and the one lost write
// survive; noise on both layers (events whose consultation index is never
// reached, plus redundant wire faults) is pruned. The printed line is a single
// combined SOAK-REPRO reproducer.
TEST(Soak, CombinedWireDiskScheduleMinimizesToOneReproLine) {
  std::vector<sim::FaultEvent> planted = {
      {'d', 1, 0}, {'w', 1, 0}, {'d', 2, 0}, {'m', 9, 3},  // write 9 never happens
      {'d', 3, 0}, {'l', 7, 0},                            // read 7 never happens
      {'d', 4, 0}, {'d', 6, 0}, {'c', 9, 40}, {'u', 11, 0}};
  auto still_fails = [](const std::vector<sim::FaultEvent>& candidate) {
    std::vector<sim::WireEvent> wire;
    std::vector<sim::DiskEvent> disk;
    sim::SplitFaultSchedule(candidate, &wire, &disk);
    sim::FaultPlan wire_plan;
    wire_plan.wire_script = wire;
    sim::FaultPlan disk_plan;
    disk_plan.disk_script = disk;
    return FragileFetchFails(wire_plan) && FragileWriteFails(disk_plan);
  };
  ASSERT_TRUE(still_fails(planted));

  sim::BasicShrinker<sim::FaultEvent> shrinker(still_fails);
  const std::vector<sim::FaultEvent> minimal = shrinker.Minimize(planted);
  const std::string line = sim::FormatFaultSchedule(minimal);
  ASSERT_EQ(minimal.size(), 5u) << line;
  EXPECT_EQ(line, "d@1 w@1 d@2 d@3 d@4");
  EXPECT_TRUE(sim::ParseFaultSchedule(line) == minimal);
  EXPECT_TRUE(still_fails(minimal));
  EXPECT_GT(shrinker.probes(), 0u);
  std::printf("SOAK-REPRO schedule=\"%s\"\n", line.c_str());
}

// ---- Noisy-neighbor isolation: stride scheduling + pressure revocation ----
//
// One flooder tenant (kFloodWorkers envs draining a shared, seed-derived
// multi-resource op script) runs against kVictims latency-sensitive tenants on
// one XokKernel. Victims do open-loop HTTP-shaped request loops (cpu burn +
// region write + NIC transmit, one request per kVictimInterval); the flooder
// burns CPU, hoards frames, sprays the NIC, and spams disk DMA. Per-epoch
// victim SLOs (p99 latency, goodput) are checked after the run; a violation is
// delta-minimized over the flood script to a replayable SOAK-REPRO line.
//
// Knobs: NOISY_SEEDS=<lo>:<hi> (default 1:3), NOISY_EPOCHS=<n> (default 8).

// One flooder operation. Letter codec, ddmin-able like wire/disk schedules:
//   c@N cpu burn of N cycles    f@N alloc N frames     r@N release N frames
//   n@N transmit N frames       d@B DMA-write disk block B
struct FloodOp {
  char kind = 'c';
  uint32_t arg = 0;
  bool operator==(const FloodOp&) const = default;
};

std::string FormatFloodSchedule(const std::vector<FloodOp>& ops) {
  std::string out;
  for (const FloodOp& op : ops) {
    if (!out.empty()) {
      out += ' ';
    }
    out += op.kind;
    out += '@';
    out += std::to_string(op.arg);
  }
  return out;
}

std::vector<FloodOp> ParseFloodSchedule(const std::string& text) {
  std::vector<FloodOp> ops;
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == ' ') {
      ++i;
      continue;
    }
    FloodOp op;
    op.kind = text[i++];
    if (i < text.size() && text[i] == '@') {
      ++i;
      op.arg = static_cast<uint32_t>(std::strtoul(text.c_str() + i, nullptr, 10));
      while (i < text.size() && text[i] != ' ') {
        ++i;
      }
    }
    ops.push_back(op);
  }
  return ops;
}

constexpr sim::Cycles kNoisyQuantum = 50'000;     // 0.25 ms at 200 MHz
constexpr sim::Cycles kNoisyEpoch = 500'000;      // 2.5 ms = 5 quanta
constexpr int kVictims = 3;
constexpr int kFloodWorkers = 8;
// Victim tickets are deliberately high relative to demand (each victim uses
// ~21% CPU): a small victim stride keeps pass accrual during backlog
// catch-up below the virtual-clock rate, so victims retain their banked
// credit — and with it the right to preempt — even while draining a burst.
constexpr uint32_t kVictimTickets = 400;  // tenant total 1200
constexpr uint32_t kFloodTickets = 12;    // tenant total 96: ~7% of CPU
constexpr sim::Cycles kVictimInterval = 100'000;  // 2000 req/s per victim
constexpr sim::Cycles kVictimService = 20'000;    // ~21% CPU demand per victim
// SLOs asserted per epoch. Under round-robin the flooder holds 8 of 11 slices
// and victim latency blows through these by an order of magnitude.
constexpr sim::Cycles kLatencySlo = 400'000;  // p99 bound: 2 ms
constexpr double kGoodputSlo = 0.9;           // fraction of requests within SLO
constexpr uint32_t kNoDma = UINT32_MAX;

struct NoisyConfig {
  uint64_t seed = 1;
  uint64_t epochs = 8;
  bool stride = true;    // false: round-robin control run
  bool hostile = false;  // flooder hoards upfront and ignores revocation
  bool trace = false;    // record a full trace for determinism comparison
  const std::vector<FloodOp>* replay = nullptr;  // ddmin probes
};

struct NoisyResult {
  std::string failure;       // first violated SLO/invariant ("" = clean)
  std::vector<FloodOp> ops;  // the flood script (generated or replayed)
  size_t ops_executed = 0;
  std::vector<sim::Cycles> epoch_p99;
  std::vector<double> epoch_goodput;
  uint64_t victim_completed = 0;
  uint64_t flood_slices = 0;
  uint64_t victim_slices = 0;
  uint64_t pressure_revokes = 0;
  uint64_t pressure_aborts = 0;
  uint64_t env_aborts = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::string trace_dump;
  sim::Cycles end_time = 0;
};

NoisyResult RunNoisy(const NoisyConfig& cfg) {
  sim::Engine engine;
  hw::MachineConfig mc;
  mc.mem_frames = 256;
  mc.cost.quantum = kNoisyQuantum;
  hw::Machine machine(&engine, mc);
  if (cfg.trace) {
    machine.tracer().Enable();
  }
  hw::Nic peer(99);
  hw::Link link(&engine, 100.0, 10.0, 200);
  link.Connect(&peer, &machine.nic(0));
  xok::XokKernel kernel(&machine);
  if (!cfg.stride) {
    kernel.SetStrideScheduling(false);
  }
  xok::MemoryPressurePolicy pp;
  pp.low_frames = 64;
  pp.high_frames = 96;
  pp.grace = cfg.hostile ? kNoisyQuantum / 2 : 6 * kNoisyQuantum;
  pp.min_interval = 2 * kNoisyQuantum;
  kernel.SetMemoryPressurePolicy(pp);

  const sim::Cycles deadline = cfg.epochs * kNoisyEpoch;
  NoisyResult r;
  if (cfg.replay != nullptr) {
    r.ops = *cfg.replay;
  } else {
    sim::Fuzzer fz(cfg.seed);
    for (size_t i = 0; i < 24 * cfg.epochs; ++i) {
      FloodOp op;
      const uint32_t k = fz.Pick(100);
      if (k < 30) {
        op.kind = 'c';
        op.arg = 5'000 + fz.Pick(20'000);
      } else if (k < 60) {
        op.kind = 'f';
        op.arg = 4 + fz.Pick(12);
      } else if (k < 72) {
        op.kind = 'r';
        op.arg = 1 + fz.Pick(6);
      } else if (k < 88) {
        op.kind = 'n';
        op.arg = 1 + fz.Pick(4);
      } else {
        op.kind = 'd';
        op.arg = fz.Pick(64);
      }
      r.ops.push_back(op);
    }
  }

  // All heap-owning state lives in this frame, never on fiber stacks: hostile
  // workers are aborted without unwinding (same rule as the syscall fuzzer).
  struct Sample {
    sim::Cycles arrival;
    sim::Cycles latency;
  };
  std::vector<std::vector<Sample>> lat(kVictims);
  std::vector<std::vector<hw::FrameId>> held(kFloodWorkers);
  std::vector<hw::FrameId> dma(kFloodWorkers, kNoDma);
  std::vector<uint64_t> slices(kVictims + kFloodWorkers, 0);
  size_t next_op = 0;
  uint64_t disk_done = 0;
  std::vector<xok::EnvId> envs;

  const uint64_t reqs = deadline / kVictimInterval;  // per victim
  for (int i = 0; i < kVictims; ++i) {
    xok::EnvId id = kernel.CreateEnv(
        xok::kInvalidEnv, {xok::Capability::Root()}, [&kernel, &lat, i, reqs] {
          auto rgn = kernel.SysRegionCreate(4096, {xok::kCapUsers, 7}, 0);
          ASSERT_TRUE(rgn.ok());
          uint8_t buf[64] = {0x42};
          for (uint64_t k = 0; k < reqs; ++k) {
            const sim::Cycles arrival =
                k * kVictimInterval + static_cast<sim::Cycles>(i) * 33'333;
            if (kernel.Now() < arrival) {
              xok::WakeupPredicate p;
              p.deadline = arrival;
              p.host_cost = 40;
              p.host = [&kernel, arrival] { return kernel.Now() >= arrival; };
              kernel.SysSleep(std::move(p));
            }
            kernel.ChargeCpu(kVictimService);
            (void)kernel.SysRegionWrite(*rgn, static_cast<uint32_t>((k * 64) % 4000),
                                        std::span<const uint8_t>(buf, 64), 0);
            (void)kernel.SysNicTransmit(0, hw::Packet{std::vector<uint8_t>(256, 0x55)});
            lat[i].push_back({arrival, kernel.Now() - arrival});
          }
        });
    envs.push_back(id);
    xok::ResourceQuota q;
    q.cpu_tickets = kVictimTickets;
    EXPECT_EQ(kernel.SysSetQuota(id, q, xok::kCredAny), Status::kOk);
    kernel.env(id).on_slice_begin = [&slices, i] { ++slices[i]; };
  }

  for (int w = 0; w < kFloodWorkers; ++w) {
    const xok::CapName guard{xok::kCapUsers, static_cast<uint16_t>(50 + w)};
    xok::EnvId id = kernel.CreateEnv(
        xok::kInvalidEnv, {xok::Capability{guard, /*write=*/true}},
        [&kernel, &machine, &held, &dma, &next_op, &disk_done, &r, w, guard, deadline,
         hostile = cfg.hostile] {
          auto f = kernel.SysFrameAlloc(0, guard);
          if (f.ok()) {
            dma[w] = *f;
          }
          if (hostile) {
            for (int i = 0; i < 28; ++i) {
              auto h = kernel.SysFrameAlloc(0, guard);
              if (h.ok()) {
                held[w].push_back(*h);
              }
            }
          }
          while (next_op < r.ops.size() && kernel.Now() < deadline) {
            const FloodOp op = r.ops[next_op++];
            ++r.ops_executed;
            switch (op.kind) {
              case 'c':
                kernel.ChargeCpu(op.arg);
                break;
              case 'f':
                for (uint32_t i = 0; i < op.arg; ++i) {
                  auto h = kernel.SysFrameAlloc(0, guard);
                  if (!h.ok()) {
                    break;
                  }
                  held[w].push_back(*h);
                }
                break;
              case 'r':
                for (uint32_t i = 0; i < op.arg && !held[w].empty(); ++i) {
                  (void)kernel.SysFrameFree(held[w].back(), 0);
                  held[w].pop_back();
                }
                break;
              case 'n':
                for (uint32_t i = 0; i < op.arg; ++i) {
                  (void)kernel.SysNicTransmit(
                      0, hw::Packet{std::vector<uint8_t>(1200, 0xee)});
                }
                break;
              default:  // 'd'
                if (dma[w] != kNoDma) {
                  machine.disk().Submit({.write = true,
                                         .start = op.arg % 64,
                                         .nblocks = 1,
                                         .frames = {dma[w]},
                                         .done = [&disk_done](Status) { ++disk_done; }});
                }
                break;
            }
          }
          while (kernel.Now() < deadline) {
            kernel.ChargeCpu(kNoisyQuantum);
          }
          // Voluntary-exit cleanup (aborted hostile workers never get here).
          while (!held[w].empty()) {
            (void)kernel.SysFrameFree(held[w].back(), 0);
            held[w].pop_back();
          }
          if (dma[w] != kNoDma) {
            (void)kernel.SysFrameFree(dma[w], 0);
            dma[w] = kNoDma;
          }
        });
    envs.push_back(id);
    xok::ResourceQuota q;
    q.cpu_tickets = kFloodTickets;
    EXPECT_EQ(kernel.SysSetQuota(id, q, xok::kCredAny), Status::kOk);
    kernel.env(id).on_slice_begin = [&slices, w] { ++slices[kVictims + w]; };
    if (!cfg.hostile) {
      // A well-behaved tenant: the revocation upcall sheds hoarded frames
      // down to the allowance.
      kernel.env(id).on_revoke = [&kernel, &held, id, w](const xok::RevocationRequest& req) {
        while (kernel.env(id).usage.frames > req.allowed && !held[w].empty()) {
          if (kernel.SysFrameFree(held[w].back(), 0) != Status::kOk) {
            break;
          }
          held[w].pop_back();
        }
      };
    }
  }

  kernel.Run();
  engine.RunUntilIdle();  // drain in-flight flooder disk DMA

  r.end_time = engine.now();
  r.victim_completed = lat[0].size() + lat[1].size() + lat[2].size();
  for (int i = 0; i < kVictims; ++i) {
    r.victim_slices += slices[i];
  }
  for (int w = 0; w < kFloodWorkers; ++w) {
    r.flood_slices += slices[kVictims + w];
  }
  r.pressure_revokes = machine.counters().Get("xok.pressure_revokes");
  r.pressure_aborts = machine.counters().Get("xok.pressure_aborts");
  r.env_aborts = machine.counters().Get("xok.env_aborts");
  r.counters = machine.counters().Snapshot();
  if (cfg.trace) {
    r.trace_dump = trace::TextDump(machine.tracer());
  }

  auto fail = [&](const std::string& what, uint64_t epoch) {
    if (r.failure.empty()) {
      r.failure = what + " (epoch " + std::to_string(epoch) + ")";
    }
  };
  for (uint64_t e = 0; e < cfg.epochs; ++e) {
    std::vector<sim::Cycles> l;
    uint64_t good = 0;
    for (int i = 0; i < kVictims; ++i) {
      for (const Sample& s : lat[i]) {
        if (s.arrival / kNoisyEpoch == e) {
          l.push_back(s.latency);
          if (s.latency <= kLatencySlo) {
            ++good;
          }
        }
      }
    }
    if (l.empty()) {
      fail("no victim request arrived", e);
      continue;
    }
    std::sort(l.begin(), l.end());
    const sim::Cycles p99 = l[(l.size() * 99 + 99) / 100 - 1];
    r.epoch_p99.push_back(p99);
    r.epoch_goodput.push_back(static_cast<double>(good) / static_cast<double>(l.size()));
    if (p99 > kLatencySlo) {
      fail("victim p99 " + std::to_string(p99) + " cycles above SLO " +
               std::to_string(kLatencySlo),
           e);
    }
    if (r.epoch_goodput.back() < kGoodputSlo) {
      fail("victim goodput " + std::to_string(r.epoch_goodput.back()) + " below SLO", e);
    }
  }
  if (r.victim_completed != reqs * kVictims) {
    fail("victim requests lost: " + std::to_string(r.victim_completed) + " of " +
             std::to_string(reqs * kVictims),
         cfg.epochs);
  }
  if (!kernel.deadlock_report().empty()) {
    fail("scheduler declared deadlock", cfg.epochs);
  }
  if (!cfg.hostile && (r.pressure_aborts != 0 || r.env_aborts != 0)) {
    fail("compliant tenant aborted", cfg.epochs);
  }
  if (cfg.stride) {
    // The cap that matters: even as the work-conserving scheduler hands the
    // flooder every idle cycle, it cannot crowd out victim slices (round-robin
    // would give the 8-env flooder 8/11 = 73% of all slices).
    const uint64_t total = r.victim_slices + r.flood_slices;
    if (total > 0 && r.flood_slices * 2 > total) {
      fail("flooder above ticket-share cap: " + std::to_string(r.flood_slices) + "/" +
               std::to_string(total) + " slices",
           cfg.epochs);
    }
  }
  const std::string inv = kernel.CheckInvariants();
  if (!inv.empty()) {
    fail("invariants: " + inv, cfg.epochs);
  }

  // Host cleanup mirrors the fuzzer: forcibly reclaim and reap every env.
  for (xok::EnvId id : envs) {
    kernel.AbortEnv(id, "soak cleanup");
    (void)kernel.ReapEnv(id);
  }
  return r;
}

// The CI noisy-neighbor sweep: randomized flood schedules under stride
// scheduling; victim SLOs must hold for every epoch of every seed. A failure
// is minimized over the flood script and printed as a replayable SOAK-REPRO
// line (replay by passing the parsed script through NoisyConfig::replay).
TEST(NoisySoak, VictimSlosHoldUnderFloodSweep) {
  uint64_t lo = 1;
  uint64_t hi = 3;
  if (const char* block = std::getenv("NOISY_SEEDS")) {
    char* colon = nullptr;
    lo = std::strtoull(block, &colon, 0);
    hi = (colon != nullptr && *colon == ':') ? std::strtoull(colon + 1, nullptr, 0)
                                             : lo;
  }
  const uint64_t epochs = EnvOr("NOISY_EPOCHS", 8);

  uint64_t total_revokes = 0;
  for (uint64_t seed = lo; seed <= hi; ++seed) {
    NoisyConfig cfg;
    cfg.seed = seed;
    cfg.epochs = epochs;
    NoisyResult r = RunNoisy(cfg);
    total_revokes += r.pressure_revokes;
    if (!r.failure.empty()) {
      const std::string failure = r.failure;
      auto still_fails = [&](const std::vector<FloodOp>& candidate) {
        NoisyConfig probe = cfg;
        probe.replay = &candidate;
        return RunNoisy(probe).failure == failure;
      };
      std::vector<FloodOp> minimal = r.ops;
      if (still_fails(minimal)) {
        sim::BasicShrinker<FloodOp> shrinker(still_fails);
        minimal = shrinker.Minimize(minimal);
      }
      std::printf("SOAK-REPRO seed=%llu flood=\"%s\"\n",
                  static_cast<unsigned long long>(seed),
                  FormatFloodSchedule(minimal).c_str());
      ADD_FAILURE() << "seed " << seed << ": " << failure << "\nminimized flood ("
                    << minimal.size() << " ops): " << FormatFloodSchedule(minimal);
      continue;
    }
    // The sweep must exercise the machinery, not idle through it.
    EXPECT_GT(r.victim_completed, epochs * 10) << "seed " << seed;
    EXPECT_GT(r.ops_executed, r.ops.size() / 2) << "seed " << seed;
    EXPECT_GT(r.flood_slices, 0u) << "seed " << seed;
  }
  // Across the sweep the flooder's hoard must have tripped the watermark
  // monitor at least once — otherwise the pressure path went untested.
  EXPECT_GE(total_revokes, 1u);
}

// Round-robin control: the identical workload without stride scheduling lets
// the 8-env flooder take ~73% of slices and the victims blow their SLOs —
// the isolation is the scheduler's doing, not an artifact of light load.
TEST(NoisySoak, RoundRobinControlStarvesVictims) {
  NoisyConfig cfg;
  cfg.seed = 1;
  cfg.epochs = 6;
  NoisyResult stride = RunNoisy(cfg);
  cfg.stride = false;
  NoisyResult rr = RunNoisy(cfg);
  EXPECT_EQ(stride.failure, "");
  EXPECT_NE(rr.failure, "");
  ASSERT_FALSE(stride.epoch_p99.empty());
  ASSERT_FALSE(rr.epoch_p99.empty());
  const sim::Cycles stride_worst =
      *std::max_element(stride.epoch_p99.begin(), stride.epoch_p99.end());
  const sim::Cycles rr_worst = *std::max_element(rr.epoch_p99.begin(), rr.epoch_p99.end());
  EXPECT_GT(rr_worst, stride_worst * 4) << "rr p99 " << rr_worst << " vs stride "
                                        << stride_worst;
}

// Hostile flooder: hoards past the pressure watermark with no revocation
// handler. The kernel's escalation ladder (revoke -> deadline -> abort) kills
// flooder workers, never victims, and the victims' SLOs hold throughout.
TEST(NoisySoak, HostileFlooderAbortedByPressureNotVictims) {
  NoisyConfig cfg;
  cfg.seed = 5;
  cfg.epochs = 8;
  cfg.hostile = true;
  NoisyResult r = RunNoisy(cfg);
  EXPECT_EQ(r.failure, "");
  EXPECT_GE(r.pressure_revokes, 1u);
  EXPECT_GE(r.pressure_aborts, 1u);
  // Every abort came from the pressure ladder and hit a flooder worker; all
  // victim requests still completed.
  EXPECT_EQ(r.env_aborts, r.pressure_aborts);
  EXPECT_EQ(r.victim_completed, cfg.epochs * (kNoisyEpoch / kVictimInterval) * kVictims);
}

// Same seed, same everything: counters, per-epoch percentiles, the final
// clock, and the full trace dump are bit-identical across runs.
TEST(NoisySoak, SameSeedRunsBitIdentical) {
  NoisyConfig cfg;
  cfg.seed = 7;
  cfg.epochs = 4;
  cfg.trace = true;
  NoisyResult a = RunNoisy(cfg);
  NoisyResult b = RunNoisy(cfg);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.epoch_p99, b.epoch_p99);
  EXPECT_EQ(a.victim_completed, b.victim_completed);
  EXPECT_TRUE(a.counters == b.counters);
  ASSERT_FALSE(a.trace_dump.empty());
  EXPECT_EQ(a.trace_dump, b.trace_dump);
}

// The flood-schedule codec round-trips the printed SOAK-REPRO line.
TEST(NoisySoak, FloodScheduleCodecRoundTrips) {
  std::vector<FloodOp> ops = {{'c', 20000}, {'f', 8}, {'n', 2}, {'d', 63}, {'r', 1}};
  const std::string text = FormatFloodSchedule(ops);
  EXPECT_EQ(text, "c@20000 f@8 n@2 d@63 r@1");
  EXPECT_TRUE(ParseFloodSchedule(text) == ops);
  EXPECT_TRUE(ParseFloodSchedule("").empty());
}

// ---------------------------------------------------------------------------
// Fleet soak: whole-machine kill/reboot chaos over a balanced cluster.
//
// A health-checked front-end balancer fronts two echo backends; machines die
// and reboot on a scripted sim::MachineEvent schedule. The invariants are the
// fleet-level ones from docs/CLUSTER.md: the merged counter+trace dump is a
// pure function of (config, schedule) at ANY thread count, the balancer never
// readmits more backends than it ejected, and traffic keeps flowing whenever
// at least one backend is alive. A violating schedule is ddmin-minimized
// (sim::BasicShrinker<sim::MachineEvent>) and printed as one replayable line:
//   FLEET-REPRO seed=<seed> schedule="k@350000:1 b@900000:1 ..."
// which feeds straight back through sim::ParseMachineSchedule +
// cluster::Topology::ApplyMachineSchedule.

constexpr uint32_t kFleetServers = 2;
constexpr uint32_t kFleetClients = 2;
constexpr sim::Cycles kFleetHorizon = 2'400'000;  // 12 ms at 200 MHz

struct FleetResult {
  std::string failure;  // first violated fleet invariant ("" = clean)
  std::string dump;     // merged counters + merged trace, the determinism unit
  uint64_t echoed = 0;
  uint64_t no_route = 0;
  uint64_t ejected = 0;
  uint64_t readmitted = 0;
};

// A routable client->VIP UDP frame, as cluster::Topology's balancer keys it.
hw::Packet FleetFrame(uint32_t src_ip, uint16_t src_port) {
  hw::Packet p;
  p.bytes.assign(64, 0);
  p.bytes[net::kOffProto] = net::kProtoUdp;
  for (int i = 0; i < 4; ++i) {
    p.bytes[net::kOffSrcIp + i] = static_cast<uint8_t>(src_ip >> (8 * i));
    p.bytes[net::kOffDstIp + i] =
        static_cast<uint8_t>(cluster::Topology::kVip >> (8 * i));
  }
  p.bytes[net::kOffSrcPort] = static_cast<uint8_t>(src_port);
  p.bytes[net::kOffSrcPort + 1] = static_cast<uint8_t>(src_port >> 8);
  p.bytes[net::kOffDstPort] = 80;
  return p;
}

FleetResult RunFleet(const std::vector<sim::MachineEvent>& schedule,
                     uint32_t threads) {
  cluster::TopologyConfig tc;
  tc.servers = kFleetServers;
  tc.clients = kFleetClients;
  tc.front_end_lb = true;
  tc.threads = threads;
  tc.seed = 11;
  tc.machine.mem_frames = 64;
  tc.machine.disks.clear();
  tc.health.enabled = true;
  tc.health.interval_us = 300.0;  // 60k cycles at 200 MHz
  tc.health.timeout_us = 100.0;
  tc.health.fall = 2;
  tc.health.rise = 2;
  cluster::Topology topo(tc);

  // One echo counter per server: each is touched only by its own shard thread.
  uint64_t echo_counts[kFleetServers] = {};
  for (uint32_t k = 0; k < tc.servers; ++k) {
    hw::Machine& srv = topo.server(k);
    srv.tracer().Enable();
    auto* rx = srv.counters().Handle("srv.rx");
    hw::Nic* nic = &srv.nic(0);
    uint64_t* echoes = &echo_counts[k];
    nic->SetReceiveHandler([rx, nic, echoes](hw::Packet p) {
      ++*rx;
      ++*echoes;
      for (int i = 0; i < 4; ++i) {
        std::swap(p.bytes[net::kOffSrcIp + i], p.bytes[net::kOffDstIp + i]);
      }
      std::swap(p.bytes[net::kOffSrcPort], p.bytes[net::kOffDstPort]);
      std::swap(p.bytes[net::kOffSrcPort + 1], p.bytes[net::kOffDstPort + 1]);
      nic->Transmit(std::move(p));
    });
  }
  for (uint32_t j = 0; j < tc.clients; ++j) {
    hw::Machine& cli = topo.client(j);
    cli.tracer().Enable();
    auto* rx = cli.counters().Handle("cli.rx");
    cli.nic(0).SetReceiveHandler([rx](hw::Packet) { ++*rx; });
    sim::Engine& eng = topo.engine_of(topo.client_id(j));
    for (int burst = 0; burst < 18; ++burst) {
      eng.ScheduleAt(1'000 + 120'000 * burst + 271 * j, [&topo, j] {
        topo.client(j).nic(0).Transmit(
            FleetFrame(topo.client_ip(j), static_cast<uint16_t>(2'000 + j)));
      });
    }
  }
  topo.balancer().tracer().Enable();
  topo.ArmHealthChecks(kFleetHorizon);
  topo.ApplyMachineSchedule(schedule);
  topo.Run();

  FleetResult r;
  r.echoed = 0;
  for (uint32_t k = 0; k < tc.servers; ++k) {
    r.echoed += echo_counts[k];
  }
  r.no_route = topo.lb_no_route();
  r.ejected = topo.lb_ejected();
  r.readmitted = topo.lb_readmitted();
  r.dump = topo.MergedCountersDump() + topo.MergedTraceDump();
  if (r.readmitted > r.ejected) {
    r.failure = "balancer readmitted more backends than it ejected";
  } else if (r.echoed == 0) {
    r.failure = "fleet made no progress (no request ever echoed)";
  }
  return r;
}

// A random but fully seed-determined kill/reboot schedule: 2..4 kill+reboot
// pairs over the non-balancer machines (servers m1..m2, clients m3..m4), each
// reboot 60k..660k cycles after its kill. Same-machine same-cycle collisions
// are nudged forward so the formatted line always re-parses.
std::vector<sim::MachineEvent> RandomFleetSchedule(uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<sim::MachineEvent> sched;
  auto push_unique = [&sched](uint64_t t, char kind, uint64_t machine) {
    for (size_t i = 0; i < sched.size(); ++i) {
      if (sched[i].machine == machine && sched[i].time == t) {
        ++t;
        i = static_cast<size_t>(-1);  // rescan with the nudged time
      }
    }
    sched.push_back({t, kind, machine});
  };
  const uint32_t pairs = 2 + static_cast<uint32_t>(rng.Below(3));
  for (uint32_t i = 0; i < pairs; ++i) {
    const uint64_t machine = 1 + rng.Below(kFleetServers + kFleetClients);
    const uint64_t t_kill = 200'000 + rng.Below(1'400'000);
    const uint64_t t_boot = t_kill + 60'000 + rng.Below(600'000);
    push_unique(t_kill, 'k', machine);
    push_unique(t_boot, 'b', machine);
  }
  std::sort(sched.begin(), sched.end(),
            [](const sim::MachineEvent& a, const sim::MachineEvent& b) {
              return a.time != b.time     ? a.time < b.time
                     : a.machine != b.machine ? a.machine < b.machine
                                              : a.kind < b.kind;
            });
  return sched;
}

// The CI fleet sweep: randomized kill/reboot schedules; every seed must (a)
// satisfy the fleet invariants and (b) produce a byte-identical merged dump at
// 1 and 4 threads. A failure ddmins over the machine schedule and prints a
// FLEET-REPRO line.
TEST(FleetSoak, RandomKillRebootSchedulesHoldInvariantsAcrossThreads) {
  uint64_t lo = 1;
  uint64_t hi = 3;
  if (const char* block = std::getenv("FLEET_SEEDS")) {
    char* colon = nullptr;
    lo = std::strtoull(block, &colon, 0);
    hi = (colon != nullptr && *colon == ':') ? std::strtoull(colon + 1, nullptr, 0)
                                             : lo;
  }
  for (uint64_t seed = lo; seed <= hi; ++seed) {
    const std::vector<sim::MachineEvent> schedule = RandomFleetSchedule(seed);
    FleetResult one = RunFleet(schedule, 1);
    FleetResult four = RunFleet(schedule, 4);
    const bool bad = !one.failure.empty() || one.dump != four.dump;
    if (bad) {
      auto still_fails = [](const std::vector<sim::MachineEvent>& candidate) {
        FleetResult a = RunFleet(candidate, 1);
        FleetResult b = RunFleet(candidate, 4);
        return !a.failure.empty() || a.dump != b.dump;
      };
      sim::BasicShrinker<sim::MachineEvent> shrinker(still_fails);
      const std::vector<sim::MachineEvent> minimal = shrinker.Minimize(schedule);
      std::printf("FLEET-REPRO seed=%llu schedule=\"%s\"\n",
                  static_cast<unsigned long long>(seed),
                  sim::FormatMachineSchedule(minimal).c_str());
      ADD_FAILURE() << "seed " << seed << ": "
                    << (one.failure.empty() ? "thread-count dump divergence"
                                            : one.failure)
                    << "\nminimized schedule (" << minimal.size()
                    << " events): " << sim::FormatMachineSchedule(minimal);
      continue;
    }
    // The sweep must exercise the machinery, not idle through it.
    EXPECT_GT(one.echoed, 0u) << "seed " << seed;
    EXPECT_NE(one.dump.find("fault.machine_kills"), std::string::npos)
        << "seed " << seed;
    EXPECT_GE(one.ejected, one.readmitted) << "seed " << seed;
  }
}

// Planted violation: a noisy 8-event schedule whose kills of BOTH backends
// blackhole client traffic (lb.no_route fires — the recovery SLO a real fleet
// would page on). ddmin strips the client-machine noise and the too-late
// reboots down to the two backend kills, the FLEET-REPRO line round-trips
// through the codec, and the minimal schedule replays byte-for-byte at 1 and
// 4 threads.
TEST(FleetSoak, PlantedBlackholeShrinksToReplayableFleetRepro) {
  std::string err;
  const std::vector<sim::MachineEvent> planted = sim::ParseMachineSchedule(
      "k@350000:1 k@400000:2 k@500000:3 b@600000:3 k@700000:4 b@800000:4 "
      "b@1600000:1 b@1700000:2",
      &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(planted.size(), 8u);

  auto blackholes = [](const std::vector<sim::MachineEvent>& candidate) {
    return RunFleet(candidate, 1).no_route > 0;
  };
  ASSERT_TRUE(blackholes(planted));

  sim::BasicShrinker<sim::MachineEvent> shrinker(blackholes);
  std::vector<sim::MachineEvent> minimal = shrinker.Minimize(planted);
  EXPECT_LE(minimal.size(), 10u);
  ASSERT_EQ(minimal.size(), 2u);
  const std::string line = sim::FormatMachineSchedule(minimal);
  EXPECT_EQ(line, "k@350000:1 k@400000:2");
  // 1-minimal: drop either kill and the survivor absorbs the flows.
  for (size_t i = 0; i < minimal.size(); ++i) {
    std::vector<sim::MachineEvent> cand = minimal;
    cand.erase(cand.begin() + static_cast<long>(i));
    EXPECT_FALSE(blackholes(cand)) << "not 1-minimal at event " << i;
  }

  std::printf("FLEET-REPRO seed=planted schedule=\"%s\"\n", line.c_str());
  const std::vector<sim::MachineEvent> replay = sim::ParseMachineSchedule(line, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_TRUE(replay == minimal);
  FleetResult first = RunFleet(replay, 1);
  FleetResult again = RunFleet(replay, 1);
  FleetResult wide = RunFleet(replay, 4);
  EXPECT_GT(first.no_route, 0u);
  EXPECT_EQ(first.ejected, 2u);
  EXPECT_EQ(first.readmitted, 0u);
  EXPECT_EQ(first.dump, again.dump);
  EXPECT_EQ(first.dump, wide.dump);
}

}  // namespace
}  // namespace exo
