// Tests for exo::trace: the record ring, the latency histogram, the exporters,
// and the end-to-end determinism contract (two identical traced runs produce
// byte-identical dumps; an attached-but-disabled tracer stores nothing).
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "bench/common.h"
#include "sim/fault.h"

namespace exo {
namespace {

using trace::Category;
using trace::Kind;
using trace::LatencyHistogram;
using trace::Record;
using trace::Tracer;

// ---- Ring behavior ----

TEST(TraceRing, KeepsNewestAcrossWraparound) {
  Tracer t;
  t.Enable(trace::kAllCategories, /*capacity=*/8);
  for (uint64_t i = 0; i < 20; ++i) {
    t.Instant(Category::kSched, 0, "tick", /*now=*/i * 10, /*arg=*/i);
  }
  EXPECT_EQ(t.emitted(), 20u);
  EXPECT_EQ(t.dropped(), 12u);

  const std::vector<Record> recs = t.Records();
  ASSERT_EQ(recs.size(), 8u);
  // The survivors are exactly the newest 8, still in emission order.
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].seq, 12 + i);
    EXPECT_EQ(recs[i].arg, 12 + i);
    EXPECT_EQ(recs[i].time, (12 + i) * 10);
  }
}

TEST(TraceRing, ZeroCapacityStoresNothing) {
  Tracer t;
  t.Enable(trace::kAllCategories, /*capacity=*/0);
  t.Instant(Category::kSched, 0, "tick", 1);
  EXPECT_EQ(t.emitted(), 0u);
  EXPECT_TRUE(t.Records().empty());
}

TEST(TraceRing, CategoryMaskGates) {
  Tracer t;
  uint32_t mask = 0;
  ASSERT_TRUE(trace::ParseCategoryMask("disk,fault", &mask));
  t.Enable(mask);
  EXPECT_TRUE(t.enabled(Category::kDisk));
  EXPECT_TRUE(t.enabled(Category::kFault));
  EXPECT_FALSE(t.enabled(Category::kNet));
  EXPECT_FALSE(trace::ParseCategoryMask("disk,bogus", &mask));
  ASSERT_TRUE(trace::ParseCategoryMask("all", &mask));
  EXPECT_EQ(mask, trace::kAllCategories);
}

// ---- Histogram vs brute force ----

TEST(TraceHistogram, MatchesBruteForcePercentiles) {
  LatencyHistogram h;
  std::vector<uint64_t> values;
  uint64_t x = 88172645463325252ull;  // xorshift: deterministic spread over octaves
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const uint64_t v = x % (1ull << (i % 40));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());

  EXPECT_EQ(h.count(), values.size());
  EXPECT_EQ(h.min(), values.front());
  EXPECT_EQ(h.max(), values.back());

  for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(values.size()));
    if (static_cast<double>(rank) < p / 100.0 * static_cast<double>(values.size())) {
      ++rank;
    }
    rank = std::max<uint64_t>(1, std::min<uint64_t>(rank, values.size()));
    const uint64_t truth = values[rank - 1];
    const uint64_t got = h.Percentile(p);
    // Bucket width is at most 1/16 of the value; the estimate is the bucket's
    // upper bound, so it can only overshoot, and only by that width.
    EXPECT_GE(got, truth) << "p=" << p;
    EXPECT_LE(got, truth + truth / 16 + 1) << "p=" << p;
  }
}

TEST(TraceHistogram, SmallValuesExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 16; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(50), 7u);
  EXPECT_EQ(h.Percentile(100), 15u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
}

// ---- Perfetto JSON round-trip ----
//
// A minimal JSON parser: enough to fully parse the exporter's output and fail
// loudly on malformed syntax. Values become a tagged tree we can walk.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type = Type::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    EXPECT_EQ(pos_, s_.size()) << "trailing bytes after JSON document";
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() {
    SkipWs();
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at byte " << pos_;
    ++pos_;
  }
  JsonValue ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      default:
        return ParseNumber();
    }
  }
  JsonValue ParseObject() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = ParseString();
      Expect(':');
      v.obj[key.str] = ParseValue();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }
  JsonValue ParseArray() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }
  JsonValue ParseString() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    Expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        EXPECT_LT(pos_, s_.size());
        switch (s_[pos_]) {
          case 'u':
            pos_ += 4;  // the exporter only emits \u00xx for control bytes
            v.str.push_back('?');
            break;
          default:
            v.str.push_back(s_[pos_]);
        }
      } else {
        v.str.push_back(s_[pos_]);
      }
      ++pos_;
    }
    Expect('"');
    return v;
  }
  JsonValue ParseBool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else {
      EXPECT_EQ(s_.compare(pos_, 5, "false"), 0);
      pos_ += 5;
    }
    return v;
  }
  JsonValue ParseNumber() {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) || s_[end] == '-' ||
            s_[end] == '+' || s_[end] == '.' || s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    EXPECT_GT(end, pos_) << "not a number at byte " << pos_;
    v.num = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(TraceExport, PerfettoJsonRoundTripsAndNests) {
  Tracer t;
  t.Enable();
  const uint32_t ta = t.NewTrack("track.a");
  const uint32_t tb = t.NewTrack("track \"b\"\n");  // exercises string escaping

  t.Begin(Category::kDisk, ta, "outer", 100, 7);
  t.Begin(Category::kDisk, ta, "inner", 110);
  t.Instant(Category::kFault, tb, "blip", 115, 3);
  t.End(Category::kDisk, ta, "inner", 120);
  t.Counter(Category::kNet, tb, "queue", 125, 42);
  t.End(Category::kDisk, ta, "outer", 130, 7);
  t.Begin(Category::kXn, tb, "left-open", 140);  // exporter must close it
  t.End(Category::kXn, tb, "orphan", 90);        // exporter must drop it

  const std::string json = trace::PerfettoJson(t, 200);
  JsonParser parser(json);
  const JsonValue root = parser.Parse();
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  ASSERT_TRUE(root.obj.count("traceEvents"));
  const auto& events = root.obj.at("traceEvents").arr;

  // Per-tid span stacks must balance with matching names, and every event must
  // carry the required trace_event fields.
  std::map<double, std::vector<std::string>> stacks;
  size_t spans = 0;
  bool saw_escaped_thread_name = false;
  for (const JsonValue& e : events) {
    ASSERT_EQ(e.type, JsonValue::Type::kObject);
    ASSERT_TRUE(e.obj.count("ph"));
    ASSERT_TRUE(e.obj.count("pid"));
    ASSERT_TRUE(e.obj.count("tid"));
    ASSERT_TRUE(e.obj.count("name"));
    const std::string& ph = e.obj.at("ph").str;
    if (ph == "M") {
      if (e.obj.at("name").str == "thread_name" &&
          e.obj.at("args").obj.at("name").str.find('"') != std::string::npos) {
        saw_escaped_thread_name = true;
      }
      continue;
    }
    ASSERT_TRUE(e.obj.count("ts"));
    const double tid = e.obj.at("tid").num;
    if (ph == "B") {
      stacks[tid].push_back(e.obj.at("name").str);
      ++spans;
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty()) << "unbalanced E on tid " << tid;
      EXPECT_EQ(stacks[tid].back(), e.obj.at("name").str);
      stacks[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  EXPECT_EQ(spans, 3u);  // outer, inner, left-open; the orphan end was dropped
  EXPECT_TRUE(saw_escaped_thread_name);
}

TEST(TraceExport, WraparoundStaysBalanced) {
  Tracer t;
  t.Enable(trace::kAllCategories, /*capacity=*/16);
  // 100 spans; the ring holds only the last 16 records, so early Begins are
  // gone and some surviving Ends are orphans the exporter must drop.
  for (uint64_t i = 0; i < 100; ++i) {
    t.Begin(Category::kApp, 0, "span", i * 2);
    t.End(Category::kApp, 0, "span", i * 2 + 1);
  }
  const std::string json = trace::PerfettoJson(t, 200);
  JsonParser parser(json);
  const JsonValue root = parser.Parse();
  int depth = 0;
  for (const JsonValue& e : root.obj.at("traceEvents").arr) {
    const std::string& ph = e.obj.at("ph").str;
    if (ph == "B") {
      ++depth;
    } else if (ph == "E") {
      ASSERT_GT(depth, 0);
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
}

// ---- Fault instants ----

TEST(TraceFaults, InjectedFaultsBecomeInstants) {
  sim::Engine engine;
  Tracer t;
  t.Enable();
  sim::FaultPlan plan;
  plan.seed = 5;
  plan.net_drop_rate = 1.0;
  sim::FaultInjector faults(plan);
  faults.AttachTracer(&t, &engine);

  ASSERT_EQ(faults.NextWireFate(128), sim::FaultInjector::WireFate::kDrop);
  const std::vector<Record> recs = t.Records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].category, Category::kFault);
  EXPECT_STREQ(recs[0].name, "net_drop");
  EXPECT_EQ(recs[0].arg, 128u);
  // The instant landed on the injector's own "faults" track.
  EXPECT_EQ(t.track_names().at(recs[0].track), "faults");
}

// ---- End-to-end determinism ----

TEST(TraceDeterminism, IdenticalRunsProduceIdenticalDumps) {
  const std::string dir = ::testing::TempDir();
  bench::TraceOptions opts;
  std::string dumps[2];
  for (int i = 0; i < 2; ++i) {
    opts.path = dir + "/trace_det_" + std::to_string(i) + ".txt";
    bench::RunIoWorkload(os::Flavor::kXokExos, {}, 42, &opts);
    std::ifstream in(opts.path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    dumps[i] = ss.str();
    std::remove(opts.path.c_str());
  }
  EXPECT_GT(dumps[0].size(), 1000u);
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(TraceDeterminism, DisabledTracerStoresNothing) {
  sim::Engine engine;
  hw::Machine machine(&engine, bench::PaperMachine());
  os::System sys(&machine, os::Flavor::kXokExos);
  ASSERT_EQ(sys.Boot(), Status::kOk);
  sys.SpawnInit("sh", [](os::UnixEnv& env) {
    auto fd = env.Open("/f", true);
    ASSERT_TRUE(fd.ok());
    std::vector<uint8_t> buf(4096, 0xab);
    ASSERT_TRUE(env.Write(*fd, buf).ok());
    ASSERT_EQ(env.Close(*fd), Status::kOk);
    ASSERT_EQ(env.Sync(), Status::kOk);
  });
  sys.Run();
  EXPECT_FALSE(machine.tracer().active());
  EXPECT_EQ(machine.tracer().emitted(), 0u);
  EXPECT_EQ(machine.tracer().dropped(), 0u);
}

}  // namespace
}  // namespace exo
