// Tests for the UDF toolchain: assembler, static verifier, and interpreter.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "udf/assembler.h"
#include "udf/insn.h"
#include "udf/verifier.h"
#include "udf/vm.h"

namespace exo::udf {
namespace {

Program MustAssemble(std::string_view src) {
  auto r = Assemble(src);
  EXPECT_TRUE(r.ok) << r.error;
  return r.program;
}

RunOutput RunOn(const Program& p, std::vector<uint8_t> meta = {},
                std::vector<uint8_t> aux = {}, std::vector<uint8_t> cred = {}) {
  RunInput in;
  in.buffers[kBufMeta] = meta;
  in.buffers[kBufAux] = aux;
  in.buffers[kBufCred] = cred;
  return Run(p, in);
}

TEST(AssemblerTest, AssemblesArithmetic) {
  auto p = MustAssemble(R"(
    ldi r1, 6
    ldi r2, 7
    mul r3, r1, r2
    ret r3
  )");
  auto out = RunOn(p);
  ASSERT_TRUE(out.ok) << out.fault;
  EXPECT_EQ(out.ret, 42u);
}

TEST(AssemblerTest, LabelsAndBranches) {
  auto p = MustAssemble(R"(
      ldi r1, 0      ; sum
      ldi r2, 5      ; counter
    loop:
      add r1, r1, r2
      addi r2, r2, -1
      bnz r2, loop
      ret r1
  )");
  auto out = RunOn(p);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.ret, 15u);  // 5+4+3+2+1
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  auto p = MustAssemble("; nothing\n\n  ldi r0, 9 ; trailing\n  ret r0\n");
  EXPECT_EQ(RunOn(p).ret, 9u);
}

TEST(AssemblerTest, RejectsUnknownMnemonic) {
  auto r = Assemble("frobnicate r1, r2\nret r1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 1"), std::string::npos);
}

TEST(AssemblerTest, RejectsBadRegister) {
  EXPECT_FALSE(Assemble("ldi r16, 1\nret r0\n").ok);
  EXPECT_FALSE(Assemble("ldi rx, 1\nret r0\n").ok);
}

TEST(AssemblerTest, RejectsUndefinedLabel) {
  auto r = Assemble("jmp nowhere\nret r0\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("nowhere"), std::string::npos);
}

TEST(AssemblerTest, RejectsDuplicateLabel) {
  EXPECT_FALSE(Assemble("a:\na:\nret r0\n").ok);
}

TEST(AssemblerTest, NegativeAndHexImmediates) {
  auto p = MustAssemble("ldi r1, -1\nldi r2, 0x10\nadd r3, r1, r2\nret r3\n");
  EXPECT_EQ(RunOn(p).ret, 15u);
}

TEST(VmTest, LoadsLittleEndian) {
  auto p = MustAssemble(R"(
    ldi r1, 0
    ld4 r2, r1, 0, meta
    ret r2
  )");
  std::vector<uint8_t> meta = {0x78, 0x56, 0x34, 0x12};
  EXPECT_EQ(RunOn(p, meta).ret, 0x12345678u);
}

TEST(VmTest, LoadsFromAllThreeBuffers) {
  auto p = MustAssemble(R"(
    ldi r0, 0
    ld1 r1, r0, 0, meta
    ld1 r2, r0, 0, aux
    ld1 r3, r0, 0, cred
    add r4, r1, r2
    add r4, r4, r3
    ret r4
  )");
  EXPECT_EQ(RunOn(p, {1}, {2}, {3}).ret, 6u);
}

TEST(VmTest, LenReportsBufferSizes) {
  auto p = MustAssemble("len r1, meta\nlen r2, aux\nsub r3, r1, r2\nret r3\n");
  EXPECT_EQ(RunOn(p, std::vector<uint8_t>(10), std::vector<uint8_t>(4)).ret, 6u);
}

TEST(VmTest, OutOfBoundsLoadFaults) {
  auto p = MustAssemble("ldi r1, 100\nld8 r2, r1, 0, meta\nret r2\n");
  auto out = RunOn(p, std::vector<uint8_t>(8));
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.fault.find("out of bounds"), std::string::npos);
}

TEST(VmTest, StraddlingLoadFaults) {
  // Reading 8 bytes starting at offset 1 of an 8-byte buffer must fault.
  auto p = MustAssemble("ldi r1, 1\nld8 r2, r1, 0, meta\nret r2\n");
  EXPECT_FALSE(RunOn(p, std::vector<uint8_t>(8)).ok);
}

TEST(VmTest, OverflowingAddressFaults) {
  auto p = MustAssemble("ldi r1, -1\nld4 r2, r1, 0, meta\nret r2\n");
  EXPECT_FALSE(RunOn(p, std::vector<uint8_t>(16)).ok);
}

TEST(VmTest, DivisionByZeroFaults) {
  auto p = MustAssemble("ldi r1, 4\nldi r2, 0\ndivu r3, r1, r2\nret r3\n");
  auto out = RunOn(p);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.fault.find("division"), std::string::npos);
}

TEST(VmTest, FuelExhaustionFaults) {
  auto p = MustAssemble("spin: jmp spin\nret r0\n");
  RunInput in;
  in.fuel = 1000;
  auto out = exo::udf::Run(p, in);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.insns, 1000u);
  EXPECT_NE(out.fault.find("fuel"), std::string::npos);
}

TEST(VmTest, EmitCollectsExtents) {
  auto p = MustAssemble(R"(
    ldi r1, 100   ; start
    ldi r2, 4     ; count
    ldi r3, 7     ; type
    emit r1, r2, r3
    addi r1, r1, 10
    emit r1, r2, r3
    ret r0
  )");
  auto out = RunOn(p);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.emitted.size(), 2u);
  EXPECT_EQ(out.emitted[0], (Extent{100, 4, 7}));
  EXPECT_EQ(out.emitted[1], (Extent{110, 4, 7}));
}

TEST(VmTest, TimeWithoutSourceFaults) {
  auto p = MustAssemble("time r1\nret r1\n");
  EXPECT_FALSE(RunOn(p).ok);
}

TEST(VmTest, TimeReadsClock) {
  auto p = MustAssemble("time r1\nret r1\n");
  RunInput in;
  in.time = [] { return 12345u; };
  auto out = exo::udf::Run(p, in);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.ret, 12345u);
}

TEST(VmTest, InsnCountCharged) {
  auto p = MustAssemble("ldi r1, 1\nldi r2, 2\nadd r3, r1, r2\nret r3\n");
  EXPECT_EQ(RunOn(p).insns, 4u);
}

TEST(VerifierTest, AcceptsStraightLineDeterministic) {
  auto p = MustAssemble("ldi r1, 1\nret r1\n");
  EXPECT_TRUE(Verify(p, Policy::kDeterministic).ok);
  EXPECT_TRUE(Verify(p, Policy::kNoLoops).ok);
}

TEST(VerifierTest, RejectsTimeUnderDeterministic) {
  auto p = MustAssemble("time r1\nret r1\n");
  EXPECT_TRUE(Verify(p, Policy::kAny).ok);
  auto v = Verify(p, Policy::kDeterministic);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("nondeterministic"), std::string::npos);
}

TEST(VerifierTest, RejectsBackwardBranchUnderNoLoops) {
  auto p = MustAssemble("loop: addi r1, r1, 1\nbnz r1, loop\nret r1\n");
  EXPECT_TRUE(Verify(p, Policy::kDeterministic).ok);
  auto v = Verify(p, Policy::kNoLoops);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("backward"), std::string::npos);
}

TEST(VerifierTest, RejectsEmptyAndRetlessPrograms) {
  EXPECT_FALSE(Verify({}, Policy::kAny).ok);
  Program no_ret = {{Op::kLdi, 1, 0, 0, 5}};
  EXPECT_FALSE(Verify(no_ret, Policy::kAny).ok);
}

TEST(VerifierTest, RejectsOutOfBoundsBranch) {
  Program p = {{Op::kJmp, 0, 0, 0, 100}, {Op::kRet, 0, 0, 0, 0}};
  EXPECT_FALSE(Verify(p, Policy::kAny).ok);
  Program p2 = {{Op::kJmp, 0, 0, 0, -5}, {Op::kRet, 0, 0, 0, 0}};
  EXPECT_FALSE(Verify(p2, Policy::kAny).ok);
}

TEST(VerifierTest, RejectsBadRegisterAndBuffer) {
  Program bad_reg = {{Op::kMov, 20, 0, 0, 0}, {Op::kRet, 0, 0, 0, 0}};
  EXPECT_FALSE(Verify(bad_reg, Policy::kAny).ok);
  Program bad_buf = {{Op::kLd1, 1, 0, 9, 0}, {Op::kRet, 0, 0, 0, 0}};
  EXPECT_FALSE(Verify(bad_buf, Policy::kAny).ok);
}

TEST(VerifierTest, RejectsOverlongProgram) {
  Program p(kMaxProgramLength + 1, Insn{Op::kRet, 0, 0, 0, 0});
  EXPECT_FALSE(Verify(p, Policy::kAny).ok);
}

// Property: determinism. A program accepted under Policy::kDeterministic returns
// identical results across repeated runs and arbitrary clock behaviour.
class DeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismProperty, SameInputSameOutput) {
  // Generate a pseudo-random but structurally valid straight-line program seeded by
  // the parameter, run it twice, and compare everything observable.
  const int seed = GetParam();
  Program p;
  uint64_t s = static_cast<uint64_t>(seed) * 2654435761u + 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int i = 0; i < 30; ++i) {
    switch (next() % 5) {
      case 0:
        p.push_back({Op::kLdi, static_cast<uint8_t>(next() % 16), 0, 0,
                     static_cast<int32_t>(next() % 1000)});
        break;
      case 1:
        p.push_back({Op::kAdd, static_cast<uint8_t>(next() % 16),
                     static_cast<uint8_t>(next() % 16), static_cast<uint8_t>(next() % 16), 0});
        break;
      case 2:
        p.push_back({Op::kXor, static_cast<uint8_t>(next() % 16),
                     static_cast<uint8_t>(next() % 16), static_cast<uint8_t>(next() % 16), 0});
        break;
      case 3:
        p.push_back({Op::kLd1, static_cast<uint8_t>(next() % 16),
                     static_cast<uint8_t>(next() % 4), kBufMeta,
                     static_cast<int32_t>(next() % 8)});
        break;
      case 4:
        p.push_back({Op::kEmit, static_cast<uint8_t>(next() % 16),
                     static_cast<uint8_t>(next() % 16), static_cast<uint8_t>(next() % 16), 0});
        break;
    }
  }
  p.push_back({Op::kRet, 0, 1, 0, 0});
  ASSERT_TRUE(Verify(p, Policy::kDeterministic).ok);

  std::vector<uint8_t> meta(64);
  for (size_t i = 0; i < meta.size(); ++i) {
    meta[i] = static_cast<uint8_t>(next());
  }
  auto a = RunOn(p, meta);
  auto b = RunOn(p, meta);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.ret, b.ret);
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_EQ(a.insns, b.insns);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty, ::testing::Range(0, 25));

// Property: the verifier's no-loop policy really bounds execution by program length.
class NoLoopBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(NoLoopBoundProperty, ExecutionBoundedByLength) {
  const int seed = GetParam();
  uint64_t s = static_cast<uint64_t>(seed) + 99;
  auto next = [&s] {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  };
  Program p;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    if (next() % 3 == 0) {
      // Forward branch to a random later point.
      int32_t off = static_cast<int32_t>(next() % static_cast<uint64_t>(n - i));
      p.push_back({next() % 2 == 0 ? Op::kBz : Op::kBnz, 0,
                   static_cast<uint8_t>(next() % 16), 0, off});
    } else {
      p.push_back({Op::kAddi, static_cast<uint8_t>(next() % 16),
                   static_cast<uint8_t>(next() % 16), 0, 1});
    }
  }
  p.push_back({Op::kRet, 0, 0, 0, 0});
  ASSERT_TRUE(Verify(p, Policy::kNoLoops).ok);
  RunInput in;
  in.fuel = p.size() + 1;  // a loop would exhaust this
  auto out = exo::udf::Run(p, in);
  EXPECT_TRUE(out.ok) << out.fault;
  EXPECT_LE(out.insns, p.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoLoopBoundProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace exo::udf
