// Additional coverage: CpuMeter occupancy, kernel-backend cache eviction (the
// OpenBSD small-cache behaviour), disk scheduling properties, and FFS specifics.
#include <gtest/gtest.h>

#include "fs/ffs.h"
#include "fs/kernel_backend.h"
#include "hw/machine.h"
#include "sim/cpu_meter.h"

namespace exo {
namespace {

TEST(CpuMeterTest, SerializesWork) {
  sim::Engine e;
  sim::CpuMeter cpu(&e);
  EXPECT_EQ(cpu.Occupy(100), 100u);
  EXPECT_EQ(cpu.Occupy(50), 150u);  // queued behind the first
  e.Advance(1000);
  EXPECT_EQ(cpu.Occupy(10), 1010u);  // idle gap: starts at now
  EXPECT_EQ(cpu.total_busy(), 160u);
}

TEST(CpuMeterTest, UtilizationTracksBusyFraction) {
  sim::Engine e;
  sim::CpuMeter cpu(&e);
  cpu.Occupy(500);
  e.Advance(1000);
  EXPECT_NEAR(cpu.Utilization(0), 0.5, 0.01);
}

TEST(DiskTest, CLookServicesAscendingBeforeWrapping) {
  sim::Engine e;
  hw::PhysMem mem(16);
  hw::Disk disk(&e, &mem, hw::DiskGeometry{}, 200);
  hw::FrameId f = *mem.Alloc();
  std::vector<hw::BlockId> order;
  auto submit = [&](hw::BlockId b) {
    disk.Submit({.write = false, .start = b, .nblocks = 1, .frames = {f},
                 .done = [&order, b](Status) { order.push_back(b); }});
  };
  // Park the head mid-disk first.
  submit(8000);
  e.RunUntilIdle();
  order.clear();
  // Queue around the head: C-LOOK should sweep up, then wrap to the lowest.
  submit(9000);
  submit(2000);
  submit(12000);
  submit(500);
  e.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<hw::BlockId>{9000, 12000, 500, 2000}));
}

TEST(KernelBackendTest, SmallCacheEvictsLru) {
  sim::Engine engine;
  hw::Machine machine(&engine,
                      hw::MachineConfig{.mem_frames = 2048,
                                        .disks = {hw::DiskGeometry{.num_blocks = 4096}}});
  fs::Blocker blocker = [&engine](const std::function<bool()>& ready) {
    while (!ready()) {
      if (engine.HasPendingEvents()) {
        engine.RunNextEvent();
      } else {
        engine.Advance(20'000);
      }
    }
  };
  fs::KernelBackendOptions opts;
  opts.max_cache_blocks = 8;  // a tiny OpenBSD-style cache
  fs::KernelBackend kb(&machine, &machine.disk(), blocker, opts);

  // Touch 20 distinct blocks; the cache must stay bounded.
  for (hw::BlockId b = 100; b < 120; ++b) {
    ASSERT_TRUE(kb.GetBlock(b, 0).ok());
  }
  EXPECT_LE(kb.cached_blocks(), 8u);
  uint64_t misses_before = kb.cache_misses();
  // Re-reading an evicted block is a miss (and a disk read).
  ASSERT_TRUE(kb.GetBlock(100, 0).ok());
  EXPECT_GT(kb.cache_misses(), misses_before);
}

TEST(KernelBackendTest, DirtyEvictionWritesBack) {
  sim::Engine engine;
  hw::Machine machine(&engine,
                      hw::MachineConfig{.mem_frames = 2048,
                                        .disks = {hw::DiskGeometry{.num_blocks = 4096}}});
  fs::Blocker blocker = [&engine](const std::function<bool()>& ready) {
    while (!ready()) {
      if (engine.HasPendingEvents()) {
        engine.RunNextEvent();
      } else {
        engine.Advance(20'000);
      }
    }
  };
  fs::KernelBackendOptions opts;
  opts.max_cache_blocks = 4;
  fs::KernelBackend kb(&machine, &machine.disk(), blocker, opts);

  ASSERT_EQ(kb.InstallFresh(200, 0), Status::kOk);
  auto w = kb.GetDataWritable(200, 0);
  ASSERT_TRUE(w.ok());
  (*w)[0] = 0xcd;
  // Fill the cache to force eviction of block 200.
  for (hw::BlockId b = 300; b < 310; ++b) {
    ASSERT_TRUE(kb.GetBlock(b, 0).ok());
  }
  // Its content must have reached the platter.
  EXPECT_EQ(machine.disk().RawBlock(200)[0], 0xcd);
}

class FfsTest : public ::testing::Test {
 protected:
  FfsTest()
      : machine_(&engine_,
                 hw::MachineConfig{.mem_frames = 4096,
                                   .disks = {hw::DiskGeometry{.num_blocks = 8192}}}) {
    fs::Blocker blocker = [this](const std::function<bool()>& ready) {
      while (!ready()) {
        if (engine_.HasPendingEvents()) {
          engine_.RunNextEvent();
        } else {
          engine_.Advance(20'000);
        }
      }
    };
    backend_ = std::make_unique<fs::KernelBackend>(&machine_, &machine_.disk(), blocker);
    ffs_ = std::make_unique<fs::Ffs>(backend_.get(), fs::FfsOptions{});
    EXO_CHECK_EQ(ffs_->Mkfs(), Status::kOk);
  }

  sim::Engine engine_;
  hw::Machine machine_;
  std::unique_ptr<fs::KernelBackend> backend_;
  std::unique_ptr<fs::Ffs> ffs_;
};

TEST_F(FfsTest, SyncMetadataCostsDiskWrites) {
  uint64_t writes_before = machine_.disk().stats().blocks_written;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ffs_->Open("/f" + std::to_string(i), true, 7).ok());
  }
  // Classic FFS: every create synchronously writes inode + directory blocks.
  EXPECT_GE(machine_.disk().stats().blocks_written - writes_before, 10u);
}

TEST_F(FfsTest, CrossDirectoryRenameMovesEntries) {
  ASSERT_EQ(ffs_->Mkdir("/a", 7), Status::kOk);
  ASSERT_EQ(ffs_->Mkdir("/b", 7), Status::kOk);
  auto h = ffs_->Open("/a/x", true, 7);
  ASSERT_TRUE(h.ok());
  std::vector<uint8_t> data = {1, 2, 3};
  ASSERT_TRUE(ffs_->Write(*h, 0, data, 7).ok());
  ASSERT_EQ(ffs_->Rename("/a/x", "/b/y", 7), Status::kOk);
  EXPECT_FALSE(ffs_->StatPath("/a/x").ok());
  auto st = ffs_->StatPath("/b/y");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 3u);
}

TEST_F(FfsTest, InodeNumbersAreReusedAfterUnlink) {
  auto h1 = ffs_->Open("/one", true, 7);
  ASSERT_TRUE(h1.ok());
  ASSERT_EQ(ffs_->Unlink("/one", 7), Status::kOk);
  auto h2 = ffs_->Open("/two", true, 7);
  ASSERT_TRUE(h2.ok());
  // Free inode count is bounded: the freed slot is available again eventually.
  EXPECT_TRUE(ffs_->StatPath("/two").ok());
}

TEST_F(FfsTest, DataSeparatedFromInodeZone) {
  auto h = ffs_->Open("/big", true, 7);
  ASSERT_TRUE(h.ok());
  std::vector<uint8_t> data(5 * 4096, 0x42);
  ASSERT_TRUE(ffs_->Write(*h, 0, data, 7).ok());
  auto st = ffs_->StatHandle(*h);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nblocks, 5u);
  // FFS places data far from the inode zone (no co-location) — the mechanism
  // behind its long seeks on small-file workloads.
}

}  // namespace
}  // namespace exo
