// Tests for C-FFS over both protection regimes: the XN (libFS) backend with full
// UDF-verified metadata operations, and the kernel backend (the "C-FFS ported into
// the monolithic kernel" configuration). The same behaviour must hold on both.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>

#include "fs/cffs.h"
#include "fs/kernel_backend.h"
#include "fs/xn_backend.h"
#include "hw/machine.h"
#include "xn/xn.h"

namespace exo::fs {
namespace {

enum class Regime { kXn, kKernel };

class FsTest : public ::testing::TestWithParam<Regime> {
 protected:
  FsTest()
      : machine_(&engine_, hw::MachineConfig{
                               .mem_frames = 4096,
                               .disks = {hw::DiskGeometry{.num_blocks = 8192}}}) {
    Blocker blocker = [this](const std::function<bool()>& ready) {
      int spins = 0;
      while (!ready()) {
        if (engine_.HasPendingEvents()) {
          engine_.RunNextEvent();
        } else {
          engine_.Advance(20'000);
        }
        EXO_CHECK_LT(++spins, 1'000'000);
      }
    };
    if (GetParam() == Regime::kXn) {
      xn_ = std::make_unique<xn::Xn>(&machine_, &machine_.disk());
      xn_->Format();
      EXO_CHECK_EQ(xn_->Attach(), Status::kOk);
      backend_ = std::make_unique<XnBackend>(
          xn_.get(), xn::Caps{xok::Capability::For({xok::kCapFs, 1})}, blocker, [this] {
            auto f = machine_.mem().Alloc();
            return f.ok() ? *f : hw::kInvalidFrame;
          });
    } else {
      backend_ = std::make_unique<KernelBackend>(&machine_, &machine_.disk(), blocker);
    }
    fs_ = std::make_unique<Cffs>(backend_.get(), CffsOptions{.fsid = 1});
    EXO_CHECK_EQ(fs_->Mkfs(), Status::kOk);
  }

  std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 1) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 7);
    }
    return v;
  }

  void WriteFile(const std::string& path, std::span<const uint8_t> data, uint16_t uid = 7) {
    auto h = fs_->Create(path, uid, false);
    ASSERT_TRUE(h.ok()) << StatusName(h.status()) << " " << path;
    auto n = fs_->Write(*h, 0, data, uid);
    ASSERT_TRUE(n.ok()) << StatusName(n.status());
    ASSERT_EQ(*n, data.size());
  }

  std::vector<uint8_t> ReadFile(const std::string& path) {
    auto h = fs_->Lookup(path);
    EXO_CHECK(h.ok());
    auto st = fs_->Stat(*h);
    EXO_CHECK(st.ok());
    std::vector<uint8_t> out(st->size);
    auto n = fs_->Read(*h, 0, out);
    EXO_CHECK(n.ok());
    out.resize(*n);
    return out;
  }

  sim::Engine engine_;
  hw::Machine machine_;
  std::unique_ptr<xn::Xn> xn_;
  std::unique_ptr<FsBackend> backend_;
  std::unique_ptr<Cffs> fs_;
};

TEST_P(FsTest, SmallFileRoundTrip) {
  auto data = Pattern(100);
  WriteFile("/hello.txt", data);
  EXPECT_EQ(ReadFile("/hello.txt"), data);
}

TEST_P(FsTest, MultiBlockFileRoundTrip) {
  auto data = Pattern(3 * 4096 + 777);
  WriteFile("/big", data);
  EXPECT_EQ(ReadFile("/big"), data);
}

TEST_P(FsTest, IndirectFileRoundTrip) {
  // 50 blocks: 8 direct + 42 in the first indirect block.
  auto data = Pattern(50 * 4096, 9);
  WriteFile("/huge", data);
  auto got = ReadFile("/huge");
  ASSERT_EQ(got.size(), data.size());
  EXPECT_EQ(got, data);
  auto h = fs_->Lookup("/huge");
  auto st = fs_->Stat(*h);
  EXPECT_EQ(st->nblocks, 50u);
}

TEST_P(FsTest, OffsetReadsAndOverwrites) {
  auto data = Pattern(2 * 4096);
  WriteFile("/f", data);
  auto h = fs_->Lookup("/f");
  ASSERT_TRUE(h.ok());

  std::vector<uint8_t> mid(100);
  auto n = fs_->Read(*h, 4000, mid);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 100u);
  EXPECT_EQ(0, std::memcmp(mid.data(), data.data() + 4000, 100));

  // Overwrite across a block boundary.
  std::vector<uint8_t> patch(200, 0xee);
  ASSERT_TRUE(fs_->Write(*h, 4000, patch, 7).ok());
  std::vector<uint8_t> back(200);
  ASSERT_TRUE(fs_->Read(*h, 4000, back).ok());
  EXPECT_EQ(back, patch);
  // Size unchanged by an interior overwrite.
  EXPECT_EQ(fs_->Stat(*h)->size, data.size());
}

TEST_P(FsTest, AppendExtendsSize) {
  WriteFile("/log", Pattern(10));
  auto h = fs_->Lookup("/log");
  auto tail = Pattern(20, 5);
  ASSERT_TRUE(fs_->Write(*h, 10, tail, 7).ok());
  EXPECT_EQ(fs_->Stat(*h)->size, 30u);
  auto all = ReadFile("/log");
  EXPECT_EQ(std::vector<uint8_t>(all.begin() + 10, all.end()), tail);
}

TEST_P(FsTest, DirectoriesNestAndList) {
  ASSERT_TRUE(fs_->Create("/src", 7, true).ok());
  ASSERT_TRUE(fs_->Create("/src/lib", 7, true).ok());
  WriteFile("/src/main.c", Pattern(64));
  WriteFile("/src/lib/util.c", Pattern(64));

  auto root = fs_->ReadDir("/");
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(root->size(), 1u);
  EXPECT_EQ((*root)[0].name, "src");
  EXPECT_TRUE((*root)[0].is_dir);

  auto src = fs_->ReadDir("/src");
  ASSERT_TRUE(src.ok());
  std::set<std::string> names;
  for (const auto& de : *src) {
    names.insert(de.name);
  }
  EXPECT_EQ(names, (std::set<std::string>{"lib", "main.c"}));
}

TEST_P(FsTest, NameUniquenessEnforced) {
  WriteFile("/dup", Pattern(8));
  EXPECT_EQ(fs_->Create("/dup", 7, false).status(), Status::kAlreadyExists);
  EXPECT_EQ(fs_->Create("/dup", 7, true).status(), Status::kAlreadyExists);
}

TEST_P(FsTest, LookupErrors) {
  EXPECT_EQ(fs_->Lookup("/missing").status(), Status::kNotFound);
  EXPECT_EQ(fs_->Lookup("relative/path").status(), Status::kInvalidArgument);
  WriteFile("/file", Pattern(4));
  // A file used as a directory component fails.
  EXPECT_EQ(fs_->Create("/file/sub", 7, false).status(), Status::kNotFound);
}

TEST_P(FsTest, UnlinkFreesBlocks) {
  const uint32_t before = backend_->FreeBlockCount();
  WriteFile("/victim", Pattern(20 * 4096));
  EXPECT_LT(backend_->FreeBlockCount(), before);
  ASSERT_EQ(fs_->Unlink("/victim", 7), Status::kOk);
  ASSERT_EQ(fs_->Sync(), Status::kOk);  // releases will-free deferrals on XN
  EXPECT_EQ(backend_->FreeBlockCount(), before);
  EXPECT_EQ(fs_->Lookup("/victim").status(), Status::kNotFound);
}

TEST_P(FsTest, UnlinkDirectoryRequiresEmpty) {
  ASSERT_TRUE(fs_->Create("/d", 7, true).ok());
  WriteFile("/d/x", Pattern(4));
  EXPECT_EQ(fs_->Unlink("/d", 7), Status::kBusy);
  ASSERT_EQ(fs_->Unlink("/d/x", 7), Status::kOk);
  EXPECT_EQ(fs_->Unlink("/d", 7), Status::kOk);
  EXPECT_EQ(fs_->Lookup("/d").status(), Status::kNotFound);
}

TEST_P(FsTest, PermissionChecksInLibFs) {
  WriteFile("/mine", Pattern(8), /*uid=*/7);
  auto h = fs_->Lookup("/mine");
  std::vector<uint8_t> d = {1};
  EXPECT_EQ(fs_->Write(*h, 0, d, /*uid=*/9).status(), Status::kPermissionDenied);
  EXPECT_EQ(fs_->Unlink("/mine", 9), Status::kPermissionDenied);
  EXPECT_TRUE(fs_->Write(*h, 0, d, /*uid=*/0).ok());  // root
  EXPECT_EQ(fs_->Unlink("/mine", 0), Status::kOk);
}

TEST_P(FsTest, StatReportsFields) {
  WriteFile("/s", Pattern(5000), 42);
  auto st = fs_->StatPath("/s");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 5000u);
  EXPECT_FALSE(st->is_dir);
  EXPECT_EQ(st->uid, 42u);
  EXPECT_EQ(st->nblocks, 2u);
  auto root = fs_->StatPath("/");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->is_dir);
}

TEST_P(FsTest, DirectoryExtendsPast31Entries) {
  ASSERT_TRUE(fs_->Create("/many", 7, true).ok());
  for (int i = 0; i < 80; ++i) {
    WriteFile("/many/f" + std::to_string(i), Pattern(10, static_cast<uint8_t>(i)));
  }
  auto list = fs_->ReadDir("/many");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 80u);
  // All files still readable by name.
  EXPECT_EQ(ReadFile("/many/f42"), Pattern(10, 42));
  EXPECT_EQ(ReadFile("/many/f79"), Pattern(10, 79));
}

TEST_P(FsTest, RenameWithinDirectory) {
  WriteFile("/old", Pattern(33));
  ASSERT_EQ(fs_->Rename("/old", "/new", 7), Status::kOk);
  EXPECT_EQ(fs_->Lookup("/old").status(), Status::kNotFound);
  EXPECT_EQ(ReadFile("/new"), Pattern(33));
}

TEST_P(FsTest, FileBlocksAndCreateSized) {
  auto h = fs_->CreateSized("/pre", 7, 6 * 4096, hw::kInvalidBlock);
  ASSERT_TRUE(h.ok());
  auto blocks = fs_->FileBlocks(*h);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks->size(), 6u);
  EXPECT_EQ(fs_->Stat(*h)->size, 6u * 4096);
}

TEST_P(FsTest, CoLocationKeepsFileDataNearDirectory) {
  ASSERT_TRUE(fs_->Create("/proj", 7, true).ok());
  for (int i = 0; i < 10; ++i) {
    WriteFile("/proj/f" + std::to_string(i), Pattern(2 * 4096, static_cast<uint8_t>(i)));
  }
  auto dirh = fs_->Lookup("/proj");
  ASSERT_TRUE(dirh.ok());
  auto de = fs_->Stat(*dirh);
  ASSERT_TRUE(de.ok());
  // All file blocks land within a small window after the directory's block.
  for (int i = 0; i < 10; ++i) {
    auto fh = fs_->Lookup("/proj/f" + std::to_string(i));
    auto blocks = fs_->FileBlocks(*fh);
    ASSERT_TRUE(blocks.ok());
    for (hw::BlockId b : *blocks) {
      int64_t dist = static_cast<int64_t>(b) - static_cast<int64_t>(fh->dir_block);
      EXPECT_LT(std::abs(dist), 256) << "block far from directory";
    }
  }
}

TEST_P(FsTest, SyncMakesEverythingClean) {
  for (int i = 0; i < 5; ++i) {
    WriteFile("/s" + std::to_string(i), Pattern(4096 * 3, static_cast<uint8_t>(i)));
  }
  EXPECT_GT(fs_->dirty_count(), 0u);
  ASSERT_EQ(fs_->Sync(), Status::kOk);
  EXPECT_EQ(fs_->dirty_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Regimes, FsTest, ::testing::Values(Regime::kXn, Regime::kKernel),
                         [](const ::testing::TestParamInfo<Regime>& info) {
                           return info.param == Regime::kXn ? "XnLibFs" : "InKernel";
                         });

// XN-only integration: durability and crash recovery of a real C-FFS tree.
class CffsCrashTest : public ::testing::Test {
 protected:
  CffsCrashTest()
      : machine_(&engine_, hw::MachineConfig{
                               .mem_frames = 4096,
                               .disks = {hw::DiskGeometry{.num_blocks = 8192}}}) {}

  Blocker MakeBlocker() {
    return [this](const std::function<bool()>& ready) {
      int spins = 0;
      while (!ready()) {
        if (engine_.HasPendingEvents()) {
          engine_.RunNextEvent();
        } else {
          engine_.Advance(20'000);
        }
        EXO_CHECK_LT(++spins, 1'000'000);
      }
    };
  }

  std::unique_ptr<XnBackend> MakeBackend(xn::Xn* xn) {
    return std::make_unique<XnBackend>(
        xn, xn::Caps{xok::Capability::For({xok::kCapFs, 1})}, MakeBlocker(), [this] {
          auto f = machine_.mem().Alloc();
          return f.ok() ? *f : hw::kInvalidFrame;
        });
  }

  sim::Engine engine_;
  hw::Machine machine_;
};

TEST_F(CffsCrashTest, SyncedDataSurvivesCrash) {
  auto xn = std::make_unique<xn::Xn>(&machine_, &machine_.disk());
  xn->Format();
  ASSERT_EQ(xn->Attach(), Status::kOk);
  auto backend = MakeBackend(xn.get());
  Cffs fs(backend.get(), CffsOptions{.fsid = 1});
  ASSERT_EQ(fs.Mkfs(), Status::kOk);

  std::vector<uint8_t> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 3);
  }
  ASSERT_TRUE(fs.Create("/dir", 7, true).ok());
  auto h = fs.Create("/dir/file", 7, false);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs.Write(*h, 0, data, 7).ok());
  ASSERT_EQ(fs.Sync(), Status::kOk);

  // Write more but crash before syncing: the new file must be garbage-collected.
  auto h2 = fs.Create("/dir/lost", 7, false);
  ASSERT_TRUE(h2.ok());
  ASSERT_TRUE(fs.Write(*h2, 0, data, 7).ok());
  const uint32_t free_before_lost = 0;  // unused marker
  (void)free_before_lost;

  xn->Crash();
  auto xn2 = std::make_unique<xn::Xn>(&machine_, &machine_.disk());
  ASSERT_EQ(xn2->Attach(), Status::kOk);
  EXPECT_TRUE(xn2->recovered_after_crash());

  auto backend2 = MakeBackend(xn2.get());
  Cffs fs2(backend2.get(), CffsOptions{.fsid = 1});
  ASSERT_EQ(fs2.Mount(), Status::kOk);

  auto hh = fs2.Lookup("/dir/file");
  ASSERT_TRUE(hh.ok());
  std::vector<uint8_t> back(data.size());
  auto n = fs2.Read(*hh, 0, back);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(back, data);
}

TEST_F(CffsCrashTest, TwoLibFsesShareOneDisk) {
  // Two different file systems (different fsids and roots) multiplex one XN disk —
  // the core claim of Sec. 4. A third "foreign" FS cannot touch their blocks.
  auto xn = std::make_unique<xn::Xn>(&machine_, &machine_.disk());
  xn->Format();
  ASSERT_EQ(xn->Attach(), Status::kOk);

  auto b1 = MakeBackend(xn.get());
  Cffs fs1(b1.get(), CffsOptions{.fsid = 1, .root_name = "alpha"});
  ASSERT_EQ(fs1.Mkfs(), Status::kOk);

  auto b2 = std::make_unique<XnBackend>(
      xn.get(), xn::Caps{xok::Capability::For({xok::kCapFs, 2})}, MakeBlocker(), [this] {
        auto f = machine_.mem().Alloc();
        return f.ok() ? *f : hw::kInvalidFrame;
      });
  Cffs fs2(b2.get(), CffsOptions{.fsid = 2, .root_name = "beta"});
  ASSERT_EQ(fs2.Mkfs(), Status::kOk);

  std::vector<uint8_t> d1(5000, 0x11);
  std::vector<uint8_t> d2(5000, 0x22);
  auto h1 = fs1.Create("/a", 7, false);
  auto h2 = fs2.Create("/b", 7, false);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  ASSERT_TRUE(fs1.Write(*h1, 0, d1, 7).ok());
  ASSERT_TRUE(fs2.Write(*h2, 0, d2, 7).ok());
  ASSERT_EQ(fs1.Sync(), Status::kOk);
  ASSERT_EQ(fs2.Sync(), Status::kOk);

  // Disjoint blocks.
  auto blocks1 = fs1.FileBlocks(*h1);
  auto blocks2 = fs2.FileBlocks(*h2);
  ASSERT_TRUE(blocks1.ok());
  ASSERT_TRUE(blocks2.ok());
  for (hw::BlockId x : *blocks1) {
    for (hw::BlockId y : *blocks2) {
      EXPECT_NE(x, y);
    }
  }

  // A principal holding only fsid-2 credentials cannot modify fs1's metadata: the
  // acl-uf rejects it at the XN boundary, not in library code.
  xn::Mods evil = {{0, {9, 9, 9, 9}}};
  EXPECT_EQ(xn->Modify(fs1.root_block(), evil,
                       xn::Caps{xok::Capability::For({xok::kCapFs, 2})}),
            Status::kPermissionDenied);
}

}  // namespace
}  // namespace exo::fs
