// Zero-copy example: XCP, the "zero-touch" copier from Sec. 7.2, side by side with
// plain cp on a booted Xok/ExOS system.
//
//   $ ./examples/zero_copy
//
// XCP enumerates the source files' disk blocks through the exposed file-system
// layout, reads them with one big sorted schedule, and then writes the destination
// blocks FROM THE SAME CACHE FRAMES — the CPU never touches a byte of file data.
#include <cstdio>

#include "apps/unix_apps.h"
#include "apps/workload.h"
#include "apps/xcp.h"
#include "exos/system.h"

using namespace exo;

int main() {
  sim::Engine engine;
  hw::MachineConfig cfg;
  cfg.mem_frames = 16384;
  cfg.disks = {hw::DiskGeometry{.num_blocks = 256 * 256}};
  hw::Machine machine(&engine, cfg);
  os::System sys(&machine, os::Flavor::kXokExos);
  if (sys.Boot() != Status::kOk) {
    return 1;
  }

  sys.SpawnInit("sh", [&](os::UnixEnv& env) {
    std::vector<std::string> srcs;
    env.Mkdir("/photos");
    for (int i = 0; i < 12; ++i) {
      apps::FileSpec spec{.path = "p", .size = 250'000,
                          .seed = static_cast<uint64_t>(i + 1)};
      auto content = apps::FileContent(spec);
      std::string path = "/photos/img" + std::to_string(i);
      auto fd = env.Open(path, true);
      env.Write(*fd, content);
      env.Close(*fd);
      srcs.push_back(path);
    }
    env.Sync();
    std::printf("12 files, 3 MB total, synced to disk\n\n");

    sim::Cycles t0 = env.Now();
    env.Mkdir("/backup-cp");
    for (const auto& s : srcs) {
      apps::Cp(env, s, "/backup-cp/" + s.substr(8));
    }
    double cp_ms = static_cast<double>(env.Now() - t0) / 200'000.0;

    t0 = env.Now();
    auto stats = apps::Xcp(sys, env, srcs, "/backup-xcp");
    double xcp_ms = static_cast<double>(env.Now() - t0) / 200'000.0;

    auto d = apps::DiffTree(env, "/backup-cp", "/backup-xcp");
    std::printf("cp : %8.2f ms (reads + CPU copies + writes)\n", cp_ms);
    std::printf("xcp: %8.2f ms (%llu blocks bound frame-to-frame, %llu read requests)\n",
                xcp_ms, static_cast<unsigned long long>(stats->blocks_copied),
                static_cast<unsigned long long>(stats->read_requests));
    std::printf("speedup: %.1fx — and the copies are identical (diff: %d)\n",
                cp_ms / xcp_ms, *d);
  });
  sys.Run();
  return 0;
}
