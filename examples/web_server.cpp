// Web server example: run the Cheetah HTTP server against a plain socket server on
// the same simulated network and watch the optimizations pay off.
//
//   $ ./examples/web_server
//
// Demonstrates the XIO pieces from Sec. 7.3: zero-copy transmission from the file
// cache with precomputed checksums (the merged file-cache/retransmission pool) and
// knowledge-based ACK piggybacking.
#include <cstdio>

#include "apps/http.h"

using namespace exo;

namespace {

void RunOne(apps::ServerStyle style) {
  sim::Engine engine;
  sim::CostModel cost = sim::CostModel::PentiumPro200();

  apps::HttpServer server(&engine, &cost, style, /*ip=*/100);
  std::vector<uint8_t> page(8 * 1024);
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>("<html>"[i % 6]);
  }
  server.AddDocument("index.html", page);
  server.Listen(80);

  hw::Nic server_nic(0);
  hw::Nic client_nic(1);
  hw::Link link(&engine, 100.0, 40.0, 200);
  link.Connect(&server_nic, &client_nic);
  server.AttachNic(&server_nic, /*peer_ip=*/1);

  apps::HttpClient client(&engine, &cost, &client_nic, 1, 100, "index.html",
                          /*concurrency=*/4);
  const sim::Cycles duration = 40'000'000;  // 0.2 simulated seconds
  client.Start(duration);
  engine.RunUntil(duration);

  double secs = engine.now_seconds();
  std::printf("%-12s %7.0f req/s  %6.1f MB/s   CPU busy %4.0f%%   "
              "%llu segments out, %llu pure ACKs, %llu piggybacked\n",
              apps::ServerStyleName(style),
              static_cast<double>(client.completed()) / secs,
              static_cast<double>(client.bytes_received()) / secs / 1e6,
              server.cpu().Utilization(0) * 100.0,
              static_cast<unsigned long long>(server.stack().stats().segments_out),
              static_cast<unsigned long long>(server.stack().stats().pure_acks_out),
              static_cast<unsigned long long>(server.stack().stats().piggybacked_acks));
}

}  // namespace

int main() {
  std::printf("serving an 8-KB page over one 100-Mbit/s link for 0.2 s:\n\n");
  RunOne(apps::ServerStyle::kSocketBsd);
  RunOne(apps::ServerStyle::kSocketXok);
  RunOne(apps::ServerStyle::kCheetah);
  std::printf("\nCheetah never copies or checksums the page (it transmits from the file\n"
              "cache with stored checksums) and merges ACKs into responses.\n");
  return 0;
}
