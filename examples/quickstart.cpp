// Quickstart: boot a complete exokernel system (Xok + XN + C-FFS + ExOS), run a
// couple of processes, and watch the exposed kernel state.
//
//   $ ./examples/quickstart
//
// The simulated machine matches the paper's testbed: a 200-MHz Pentium Pro with
// 64 MB of RAM and a Quantum-Atlas-like SCSI disk. Everything below runs in
// simulated time; the printed timings are what the 1997 hardware would have done.
#include <cstdio>

#include "apps/unix_apps.h"
#include "exos/system.h"

using namespace exo;

int main() {
  // One simulated machine, one event engine.
  sim::Engine engine;
  hw::MachineConfig cfg;
  cfg.mem_frames = 16384;                                   // 64 MB
  cfg.disks = {hw::DiskGeometry{.num_blocks = 64 * 256}};   // 64 MB disk
  hw::Machine machine(&engine, cfg);

  // Boot the exokernel flavor: Xok + XN (UDF-verified storage) + ExOS + C-FFS.
  os::System sys(&machine, os::Flavor::kXokExos);
  if (sys.Boot() != Status::kOk) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }
  std::printf("booted %s: %u free disk blocks, %u free frames\n",
              os::FlavorName(sys.flavor()), sys.fs().backend().FreeBlockCount(),
              machine.mem().free_frames());

  // Run an init process that writes a file, spawns a child to read it back, and
  // talks to the child over a pipe.
  sys.SpawnInit("sh", [&](os::UnixEnv& env) {
    const char* text = "hello from the exokernel\n";
    auto fd = env.Open("/hello.txt", /*create=*/true);
    env.Write(*fd, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(text),
                                            strlen(text)));
    env.Close(*fd);

    auto pipe = env.Pipe();
    auto child = env.Spawn("wc", [&](os::UnixEnv& c) {
      auto lines = apps::Wc(c, "/hello.txt");
      std::printf("[child pid %d] /hello.txt has %llu line(s)\n", c.GetPid(),
                  static_cast<unsigned long long>(*lines));
      uint8_t byte = static_cast<uint8_t>(*lines);
      c.Write(pipe->second, std::span<const uint8_t>(&byte, 1));
    });
    uint8_t result = 0;
    env.Read(pipe->first, std::span<uint8_t>(&result, 1));
    env.Wait(*child);
    std::printf("[parent] child reported %u line(s) over the pipe\n", result);

    // Exposed kernel state costs nothing to read (the exokernel way).
    std::printf("[parent] %zu blocks in the buffer-cache registry, clock %.3f ms\n",
                sys.xn()->registry().size(),
                static_cast<double>(env.Now()) / 200'000.0);
  });
  sys.Run();

  std::printf("done at simulated t=%.3f ms; %llu system calls\n",
              engine.now_seconds() * 1e3,
              static_cast<unsigned long long>(sys.syscall_count()));
  return 0;
}
