// Custom file system example: define a brand-new on-disk format and let XN protect
// it — no kernel changes, no privilege (the paper's central claim, Sec. 4).
//
// The format, "loglist", is a persistent append-only list: one root metadata block
// holding a count and up to 1019 data-block pointers. Its owns-udf is ~10
// instructions of UDF assembly. XN verifies every allocation against it, shares the
// disk with a C-FFS instance, and garbage-collects it correctly after a crash.
#include <cstdio>
#include <cstring>

#include "fs/cffs.h"
#include "fs/xn_backend.h"
#include "hw/machine.h"
#include "udf/assembler.h"
#include "xn/xn.h"

using namespace exo;

int main() {
  sim::Engine engine;
  hw::MachineConfig cfg;
  cfg.mem_frames = 4096;
  cfg.disks = {hw::DiskGeometry{.num_blocks = 16384}};
  hw::Machine machine(&engine, cfg);

  xn::Xn xn(&machine, &machine.disk());
  xn.Format();
  EXO_CHECK(xn.Attach() == Status::kOk);

  auto pump = [&](const std::function<bool()>& ready) {
    while (!ready()) {
      if (engine.HasPendingEvents()) {
        engine.RunNextEvent();
      } else {
        engine.Advance(20'000);
      }
    }
  };

  // A C-FFS lives on the same disk — two radically different file systems
  // multiplexing one device at block granularity.
  fs::XnBackend cffs_backend(&xn, {xok::Capability::For({xok::kCapFs, 1})}, pump, [&] {
    auto f = machine.mem().Alloc();
    return f.ok() ? *f : hw::kInvalidFrame;
  });
  fs::Cffs cffs(&cffs_backend, fs::CffsOptions{.fsid = 1});
  cffs.Mkfs();
  auto h = cffs.Create("/neighbour.txt", 7, false);
  std::vector<uint8_t> note = {'h', 'i'};
  cffs.Write(*h, 0, note, 7);
  std::printf("C-FFS mounted and populated alongside us\n");

  // ---- Define the new format ----
  // owns-udf: count at offset 0; u32 pointers from offset 4; children are raw data.
  auto owns = udf::Assemble(R"(
      ldi r1, 0
      ld4 r2, r1, 0, meta
      ldi r3, 4
      ldi r4, 1
      ldi r5, 0
      bz r2, done
    loop:
      ld4 r6, r3, 0, meta
      emit r6, r4, r5
      addi r3, r3, 4
      addi r2, r2, -1
      bnz r2, loop
    done:
      ret r0
  )");
  xn::Template t;
  t.name = "loglist-root";
  t.is_metadata = true;
  t.owns_udf = owns.program;
  auto tmpl = xn.InstallTemplate(t);
  std::printf("installed template '%s' -> id %u (owns-udf verified deterministic)\n",
              t.name.c_str(), *tmpl);

  auto root = xn.RegisterRoot("loglist", *tmpl, /*temporary=*/false);
  std::printf("registered persistent root at block %u\n", root->block);

  auto frame = machine.mem().Alloc();
  Status loaded = Status::kWouldBlock;
  EXO_CHECK(xn.LoadRoot("loglist", *frame, {}, [&](Status s) { loaded = s; }) == Status::kOk);
  pump([&] { return loaded != Status::kWouldBlock; });

  // Append three entries: allocate a data block via a verified metadata update.
  xn::Caps creds = {xok::Capability::Root()};
  for (uint32_t i = 0; i < 3; ++i) {
    auto b = xn.FindFreeRun(xn.FirstDataBlock(), 1);
    xn::Mods mods;
    mods.push_back({0, {static_cast<uint8_t>(i + 1), 0, 0, 0}});            // count
    mods.push_back({4 + i * 4,
                    {static_cast<uint8_t>(*b), static_cast<uint8_t>(*b >> 8),
                     static_cast<uint8_t>(*b >> 16), static_cast<uint8_t>(*b >> 24)}});
    std::vector<udf::Extent> ext = {{*b, 1, xn::kDataTemplate}};
    Status s = xn.Alloc(root->block, mods, ext, creds);
    std::printf("append entry %u -> block %u: %s\n", i, *b, StatusName(s));

    // Put real bytes in it and flush, child before parent (XN enforces ordering).
    auto df = machine.mem().Alloc();
    std::snprintf(reinterpret_cast<char*>(machine.mem().Data(*df).data()), 64,
                  "log entry %u", i);
    EXO_CHECK(xn.InsertMapping(*b, root->block, *df, /*dirty=*/true, creds) == Status::kOk);
    bool done = false;
    EXO_CHECK(xn.Write(std::vector<hw::BlockId>{*b}, [&](Status) { done = true; }) ==
              Status::kOk);
    pump([&] { return done; });
  }
  bool root_done = false;
  EXO_CHECK(xn.Write(std::vector<hw::BlockId>{root->block}, [&](Status) {
              root_done = true;
            }) == Status::kOk);
  pump([&] { return root_done; });

  // A delta mismatch is caught: claim block X, point at block Y.
  auto bx = xn.FindFreeRun(xn.FirstDataBlock(), 1);
  auto by = xn.FindFreeRun(*bx + 1, 1);
  xn::Mods evil;
  evil.push_back({0, {4, 0, 0, 0}});
  evil.push_back({16, {static_cast<uint8_t>(*by), static_cast<uint8_t>(*by >> 8), 0, 0}});
  std::vector<udf::Extent> claim = {{*bx, 1, xn::kDataTemplate}};
  std::printf("lying allocation rejected: %s\n",
              StatusName(xn.Alloc(root->block, evil, claim, creds)));

  // Crash and recover: the reachability GC keeps exactly our blocks (and C-FFS's).
  xn.Crash();
  xn::Xn reborn(&machine, &machine.disk());
  EXO_CHECK(reborn.Attach() == Status::kOk);
  std::printf("after crash: recovered=%s, loglist root still registered=%s\n",
              reborn.recovered_after_crash() ? "yes" : "no",
              reborn.LookupRoot("loglist").ok() ? "yes" : "no");
  std::printf("data block content survives: \"%s\"\n",
              reinterpret_cast<const char*>(
                  machine.disk().RawBlock(xn.FirstDataBlock() + 0).data()));
  return 0;
}
