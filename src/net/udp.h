// Minimal user-level UDP library (Sec. 5.2.1 mentions ExOS's UDP/TCP network
// libraries built on Xok's timers, upcalls, and packet rings).
#ifndef EXO_NET_UDP_H_
#define EXO_NET_UDP_H_

#include <functional>
#include <map>

#include "net/packet.h"
#include "sim/cost_model.h"
#include "sim/cpu_meter.h"
#include "sim/engine.h"

namespace exo::net {

class UdpStack {
 public:
  struct Hooks {
    sim::Engine* engine = nullptr;
    const sim::CostModel* cost = nullptr;
    sim::CpuMeter* cpu = nullptr;  // nullptr => free CPU
    std::function<void(hw::Packet, sim::Cycles when)> transmit;
  };

  UdpStack(const Hooks& hooks, IpAddr ip) : hooks_(hooks), ip_(ip) {}

  Status Bind(Port port, std::function<void(const UdpDatagram&)> on_datagram) {
    if (handlers_.count(port) != 0) {
      return Status::kAlreadyExists;
    }
    handlers_[port] = std::move(on_datagram);
    return Status::kOk;
  }

  Status SendTo(Port src_port, IpAddr dst_ip, Port dst_port, std::span<const uint8_t> data) {
    if (data.size() > kMss) {
      return Status::kInvalidArgument;  // no fragmentation support
    }
    sim::Cycles cost = 250 + hooks_.cost->CopyCost(data.size());
    sim::Cycles when = hooks_.cpu != nullptr ? hooks_.cpu->Occupy(cost) : hooks_.engine->now();
    UdpDatagram d;
    d.src_ip = ip_;
    d.dst_ip = dst_ip;
    d.src_port = src_port;
    d.dst_port = dst_port;
    d.payload.assign(data.begin(), data.end());
    hooks_.transmit(EncodeUdp(d), when);
    ++tx_;
    return Status::kOk;
  }

  void Input(const hw::Packet& p) {
    auto d = DecodeUdp(p);
    if (!d.has_value()) {
      return;
    }
    auto it = handlers_.find(d->dst_port);
    if (it == handlers_.end()) {
      return;
    }
    sim::Cycles cost = 250 + hooks_.cost->CopyCost(d->payload.size());
    sim::Cycles when = hooks_.cpu != nullptr ? hooks_.cpu->Occupy(cost) : hooks_.engine->now();
    ++rx_;
    hooks_.engine->ScheduleAt(when, [cb = it->second, dg = std::move(*d)] { cb(dg); });
  }

  uint64_t tx_count() const { return tx_; }
  uint64_t rx_count() const { return rx_; }

 private:
  Hooks hooks_;
  IpAddr ip_;
  std::map<Port, std::function<void(const UdpDatagram&)>> handlers_;
  uint64_t tx_ = 0;
  uint64_t rx_ = 0;
};

}  // namespace exo::net

#endif  // EXO_NET_UDP_H_
