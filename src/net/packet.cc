#include "net/packet.h"

namespace exo::net {

namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}
uint16_t GetU16(std::span<const uint8_t> b, size_t off) {
  return static_cast<uint16_t>(b[off] | (b[off + 1] << 8));
}
uint32_t GetU32(std::span<const uint8_t> b, size_t off) {
  return static_cast<uint32_t>(b[off]) | (static_cast<uint32_t>(b[off + 1]) << 8) |
         (static_cast<uint32_t>(b[off + 2]) << 16) | (static_cast<uint32_t>(b[off + 3]) << 24);
}

}  // namespace

uint32_t Checksum(std::span<const uint8_t> data) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint16_t>(data[i] | (data[i + 1] << 8));
  }
  if (i < data.size()) {
    sum += data[i];
  }
  while (sum >> 32) {
    sum = (sum & 0xffffffff) + (sum >> 32);
  }
  return static_cast<uint32_t>(sum);
}

uint32_t ChecksumCombine(uint32_t even_prefix_sum, uint32_t suffix_sum) {
  uint64_t sum = static_cast<uint64_t>(even_prefix_sum) + suffix_sum;
  while (sum >> 32) {
    sum = (sum & 0xffffffff) + (sum >> 32);
  }
  return static_cast<uint32_t>(sum);
}

hw::Packet EncodeTcp(const TcpSegment& seg) { return EncodeTcp(seg, seg.payload); }

hw::Packet EncodeTcp(const TcpSegment& seg, std::span<const uint8_t> head,
                     std::span<const uint8_t> tail) {
  hw::Packet p = EncodeTcp(seg, head);
  p.bytes.insert(p.bytes.end(), tail.begin(), tail.end());
  return p;
}

hw::Packet EncodeTcp(const TcpSegment& seg, std::span<const uint8_t> payload) {
  hw::Packet p;
  p.bytes.reserve(kIpHeaderBytes + kTcpHeaderBytes + payload.size());
  p.bytes.push_back(kProtoTcp);
  PutU32(p.bytes, seg.src_ip);
  PutU32(p.bytes, seg.dst_ip);
  PutU16(p.bytes, 0);  // pad to kIpHeaderBytes
  p.bytes.push_back(0);
  PutU16(p.bytes, seg.src_port);
  PutU16(p.bytes, seg.dst_port);
  PutU32(p.bytes, seg.seq);
  PutU32(p.bytes, seg.ack);
  p.bytes.push_back(seg.flags);
  p.bytes.push_back(0);
  PutU16(p.bytes, seg.window);
  PutU32(p.bytes, seg.checksum);
  p.bytes.insert(p.bytes.end(), payload.begin(), payload.end());
  return p;
}

std::optional<TcpSegment> DecodeTcp(const hw::Packet& p) {
  if (p.bytes.size() < kIpHeaderBytes + kTcpHeaderBytes || p.bytes[0] != kProtoTcp) {
    return std::nullopt;
  }
  TcpSegment s;
  std::span<const uint8_t> b = p.bytes;
  s.src_ip = GetU32(b, 1);
  s.dst_ip = GetU32(b, 5);
  size_t t = kIpHeaderBytes;
  s.src_port = GetU16(b, t);
  s.dst_port = GetU16(b, t + 2);
  s.seq = GetU32(b, t + 4);
  s.ack = GetU32(b, t + 8);
  s.flags = b[t + 12];
  s.window = GetU16(b, t + 14);
  s.checksum = GetU32(b, t + 16);
  s.payload.assign(b.begin() + kIpHeaderBytes + kTcpHeaderBytes, b.end());
  return s;
}

hw::Packet EncodeUdp(const UdpDatagram& d) {
  hw::Packet p;
  p.bytes.reserve(kIpHeaderBytes + kUdpHeaderBytes + d.payload.size());
  p.bytes.push_back(kProtoUdp);
  PutU32(p.bytes, d.src_ip);
  PutU32(p.bytes, d.dst_ip);
  PutU16(p.bytes, 0);
  p.bytes.push_back(0);
  PutU16(p.bytes, d.src_port);
  PutU16(p.bytes, d.dst_port);
  PutU16(p.bytes, static_cast<uint16_t>(d.payload.size()));
  PutU16(p.bytes, 0);
  p.bytes.insert(p.bytes.end(), d.payload.begin(), d.payload.end());
  return p;
}

std::optional<UdpDatagram> DecodeUdp(const hw::Packet& p) {
  if (p.bytes.size() < kIpHeaderBytes + kUdpHeaderBytes || p.bytes[0] != kProtoUdp) {
    return std::nullopt;
  }
  UdpDatagram d;
  std::span<const uint8_t> b = p.bytes;
  d.src_ip = GetU32(b, 1);
  d.dst_ip = GetU32(b, 5);
  d.src_port = GetU16(b, kIpHeaderBytes);
  d.dst_port = GetU16(b, kIpHeaderBytes + 2);
  d.payload.assign(b.begin() + kIpHeaderBytes + kUdpHeaderBytes, b.end());
  return d;
}

}  // namespace exo::net
