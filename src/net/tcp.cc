#include "net/tcp.h"

#include <algorithm>
#include <cstdio>

#include "sim/check.h"

namespace exo::net {

namespace {
constexpr uint32_t kInitialSeq = 1000;
// Sequence-space compare: a >= b under 32-bit wraparound.
inline bool SeqGe(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) >= 0; }
}  // namespace

TcpStack::TcpStack(const Hooks& hooks, IpAddr ip, const TcpProfile& profile)
    : hooks_(hooks), ip_(ip), profile_(profile), jitter_rng_(profile.rto_jitter_seed) {
  EXO_CHECK(hooks_.engine != nullptr);
  EXO_CHECK(hooks_.cost != nullptr);
  EXO_CHECK(hooks_.transmit != nullptr);
}

TcpStack::~TcpStack() = default;

Status TcpStack::Listen(Port port, std::function<void(TcpConn*)> on_accept,
                        uint32_t backlog) {
  if (listeners_.count(port) != 0) {
    return Status::kAlreadyExists;
  }
  listeners_[port] = Listener{std::move(on_accept), backlog};
  return Status::kOk;
}

TcpConn* TcpStack::NewConn() {
  ++stats_.conns_opened;
  if (profile_.pcb_reuse && !pcb_pool_.empty()) {
    auto conn = std::move(pcb_pool_.back());
    pcb_pool_.pop_back();
    ++stats_.pcb_reused;
    Occupy(profile_.pcb_reuse_cost);
    *conn = TcpConn{};
    conn->stack_ = this;
    TcpConn* raw = conn.get();
    // Re-keyed by the caller.
    tmp_ = std::move(conn);
    return raw;
  }
  Occupy(profile_.pcb_alloc);
  auto conn = std::make_unique<TcpConn>();
  conn->stack_ = this;
  TcpConn* raw = conn.get();
  tmp_ = std::move(conn);
  return raw;
}

TcpConn* TcpStack::Connect(IpAddr dst_ip, Port dst_port,
                           std::function<void(TcpConn*)> on_established) {
  TcpConn* c = NewConn();
  c->peer_ip_ = dst_ip;
  c->peer_port_ = dst_port;
  // Ephemeral allocation must survive wraparound: at fleet scale (tens of
  // thousands of connections per stack) the 16-bit counter laps itself, and
  // handing out a port whose (ip, port, port) key is still live would replace
  // the existing PCB in the table. Probe past live keys; the no-collision path
  // hands out exactly the historical sequence.
  Port port = next_ephemeral_;
  for (uint32_t tries = 0; tries < 65536; ++tries) {
    if (conns_.count(Key(dst_ip, dst_port, port)) == 0) {
      break;
    }
    ++port;
  }
  next_ephemeral_ = static_cast<Port>(port + 1);
  c->local_port_ = port;
  c->state_ = TcpConn::State::kSynSent;
  c->snd_next_ = kInitialSeq;
  c->snd_una_ = kInitialSeq;
  c->on_established_ = std::move(on_established);
  conns_[Key(dst_ip, dst_port, c->local_port_)] = std::move(tmp_);
  peak_conns_ = std::max(peak_conns_, conns_.size());
  const sim::Cycles sent = Emit(c, kFlagSyn, c->snd_next_, {}, 0, false, false);
  TcpConn::PendingSegment syn;
  syn.syn = true;
  syn.seq = c->snd_next_;
  syn.sent_at = sent;
  c->unacked_.push_back(std::move(syn));
  c->snd_next_ += 1;
  ArmRto(c);
  return c;
}

sim::Cycles TcpStack::Emit(TcpConn* c, uint8_t flags, uint32_t seq,
                           std::span<const uint8_t> payload, uint32_t checksum,
                           bool charge_checksum, bool charge_copy,
                           std::span<const uint8_t> tail) {
  const size_t payload_size = payload.size() + tail.size();
  sim::Cycles cost = profile_.tx_fixed;
  if (payload_size != 0) {
    if (charge_copy) {
      cost += static_cast<sim::Cycles>(static_cast<double>(hooks_.cost->CopyCost(payload_size)) *
                                       profile_.tx_copies);
    }
    if (charge_checksum) {
      cost += hooks_.cost->ChecksumCost(payload_size);
    }
  }
  sim::Cycles when = Occupy(cost);

  TcpSegment seg;
  seg.src_ip = ip_;
  seg.dst_ip = c->peer_ip_;
  seg.src_port = c->local_port_;
  seg.dst_port = c->peer_port_;
  seg.seq = seq;
  seg.flags = flags;
  seg.window = 0xffff;
  seg.checksum = checksum;
  // The payload rides the span straight into the encoded frame below; copying it
  // into the segment first would double the per-byte work on the transmit path.
  if (c->state_ != TcpConn::State::kSynSent || (flags & kFlagAck) != 0) {
    seg.flags |= kFlagAck;
    seg.ack = c->rcv_next_;
  }
  if ((seg.flags & kFlagAck) != 0 && payload_size != 0 && c->ack_pending_) {
    c->ack_pending_ = false;
    if (c->ack_timer_ != 0) {
      hooks_.engine->Cancel(c->ack_timer_);
      c->ack_timer_ = 0;
    }
    ++stats_.piggybacked_acks;
  }

  ++stats_.segments_out;
  stats_.bytes_out += payload_size;
  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kNet)) {
    tracer_->Instant(trace::Category::kNet, trace_track_, "tcp.tx", when, payload_size);
  }
  hooks_.transmit(tail.empty() ? EncodeTcp(seg, payload) : EncodeTcp(seg, payload, tail), when);
  return when;
}

void TcpStack::SendPureAck(TcpConn* c) {
  c->ack_pending_ = false;
  if (c->ack_timer_ != 0) {
    hooks_.engine->Cancel(c->ack_timer_);
    c->ack_timer_ = 0;
  }
  ++stats_.pure_acks_out;
  Emit(c, kFlagAck, c->snd_next_, {}, 0, false, false);
}

void TcpStack::ScheduleDelayedAck(TcpConn* c) {
  if (!profile_.piggyback_ack) {
    SendPureAck(c);
    return;
  }
  // Knowledge-based packet merging: hold the ACK; the response will carry it.
  c->ack_pending_ = true;
  if (c->ack_timer_ != 0) {
    return;
  }
  ConnKey key = Key(c->peer_ip_, c->peer_port_, c->local_port_);
  c->ack_timer_ = hooks_.engine->ScheduleAfter(
      profile_.delayed_ack_timeout_us * hooks_.cost->cpu_mhz, [this, key] {
        auto it = conns_.find(key);
        if (it != conns_.end() && it->second->ack_pending_) {
          it->second->ack_timer_ = 0;
          SendPureAck(it->second.get());
        }
      });
}

void TcpStack::PumpSendQueue(TcpConn* c) {
  while (!c->send_queue_.empty()) {
    uint32_t in_flight = c->snd_next_ - c->snd_una_;
    const auto& head = c->send_queue_.front();
    if (in_flight + head.size() > profile_.window_bytes) {
      break;
    }
    TcpConn::PendingSegment seg = std::move(c->send_queue_.front());
    c->send_queue_.pop_front();
    seg.seq = c->snd_next_;
    if (seg.fin) {
      seg.sent_at = Emit(c, kFlagFin, seg.seq, {}, 0, false, false);
      c->snd_next_ += 1;
      c->fin_sent_ = true;
      c->state_ = c->state_ == TcpConn::State::kCloseWait ? TcpConn::State::kLastAck
                                                          : TcpConn::State::kFinWait;
      if (c->state_ == TcpConn::State::kFinWait) {
        ArmFinWaitReaper(c);
      }
    } else {
      const bool precomputed = seg.checksum != 0;
      // A gather segment (head+tail) always arrives with a combined precomputed
      // checksum; plain segments may need one computed here.
      seg.sent_at = Emit(c, kFlagPsh, seg.seq, seg.head(),
                         precomputed ? seg.checksum : Checksum(seg.head()),
                         /*charge_checksum=*/profile_.checksum_tx && !precomputed,
                         /*charge_copy=*/!profile_.zero_copy_tx, seg.tail());
      c->snd_next_ += static_cast<uint32_t>(seg.size());
    }
    c->unacked_.push_back(std::move(seg));
  }
  if (!c->unacked_.empty()) {
    ArmRto(c);
  }
}

void TcpConn::Send(std::span<const uint8_t> data, std::span<const uint32_t> checksums) {
  EXO_CHECK(stack_ != nullptr);
  size_t seg_index = 0;
  for (size_t off = 0; off < data.size(); off += kMss, ++seg_index) {
    size_t n = std::min<size_t>(kMss, data.size() - off);
    PendingSegment seg;
    if (stack_->profile_.zero_copy_tx) {
      // Merged file cache and retransmission pool: reference, don't copy.
      seg.stable = data.subspan(off, n);
    } else {
      seg.owned.assign(data.begin() + static_cast<long>(off),
                       data.begin() + static_cast<long>(off + n));
    }
    if (seg_index < checksums.size()) {
      seg.checksum = checksums[seg_index];
    }
    send_queue_.push_back(std::move(seg));
  }
  stack_->PumpSendQueue(this);
}

void TcpConn::SendGather(std::span<const uint8_t> header, std::span<const uint8_t> body,
                         uint32_t checksum) {
  EXO_CHECK(stack_ != nullptr);
  if (header.size() + body.size() > kMss || header.size() % 2 != 0) {
    // Too big for one segment (or the combined checksum would be misaligned):
    // degrade to the unbatched path.
    Send(header);
    Send(body);
    return;
  }
  PendingSegment seg;
  seg.owned.assign(header.begin(), header.end());
  if (stack_->profile_.zero_copy_tx) {
    seg.stable = body;  // file cache doubles as the retransmission pool
  } else {
    seg.owned.insert(seg.owned.end(), body.begin(), body.end());
  }
  seg.checksum = checksum;
  send_queue_.push_back(std::move(seg));
  stack_->PumpSendQueue(this);
}

void TcpConn::Close() {
  if (fin_queued_ || state_ == State::kClosed) {
    return;
  }
  fin_queued_ = true;
  PendingSegment fin;
  fin.fin = true;
  send_queue_.push_back(std::move(fin));
  stack_->PumpSendQueue(this);
}

sim::Cycles TcpStack::RtoCycles(TcpConn* c) {
  const sim::Cycles mhz = hooks_.cost->cpu_mhz;
  if (!profile_.adaptive_rto) {
    return profile_.rto_us * mhz;  // legacy fixed timer
  }
  // rto_us is the initial RTO; the estimator takes over at the first sample.
  sim::Cycles rto = c->rtt_valid_
                        ? c->srtt_ + std::max<sim::Cycles>(4 * c->rttvar_, mhz)
                        : profile_.rto_us * mhz;
  rto = std::clamp(rto, profile_.rto_min_us * mhz, profile_.rto_max_us * mhz);
  if (c->backoff_ > 0) {
    const sim::Cycles max_rto = profile_.rto_max_us * mhz;
    const uint32_t shift = std::min<uint32_t>(c->backoff_, 20);
    rto = rto > (max_rto >> shift) ? max_rto : (rto << shift);
    // Deterministic seeded jitter desynchronizes retry storms without breaking
    // replay: same seed, same schedule.
    rto += jitter_rng_.Below(rto / 8 + 1);
  }
  return rto;
}

void TcpStack::ArmRto(TcpConn* c) {
  if (c->rto_timer_ != 0) {
    return;
  }
  ConnKey key = Key(c->peer_ip_, c->peer_port_, c->local_port_);
  c->rto_timer_ = hooks_.engine->ScheduleAfter(RtoCycles(c), [this, key] {
    auto it = conns_.find(key);
    if (it != conns_.end()) {
      it->second->rto_timer_ = 0;
      OnRto(it->second.get());
    }
  });
}

void TcpStack::OnRto(TcpConn* c) {
  if (c->unacked_.empty()) {
    return;
  }
  if (profile_.max_retransmits != 0 && c->backoff_ >= profile_.max_retransmits) {
    // Retry budget exhausted: the peer is gone (or the path is dead). Abort
    // rather than retry forever — under sustained loss this is what turns an
    // unbounded PCB leak into bounded, observable failure.
    ++stats_.rto_aborts;
    if (c->state_ == TcpConn::State::kSynRcvd) {
      ++stats_.half_open_reaped;
    }
    AbortConn(c, /*send_rst=*/c->state_ != TcpConn::State::kSynSent, "tcp.rto_abort");
    return;
  }
  ++c->backoff_;
  ++stats_.retransmits;
  TcpConn::PendingSegment& seg = c->unacked_.front();
  seg.retransmitted = true;  // Karn: this segment can no longer yield an RTT sample
  sim::Cycles when = 0;
  if (seg.syn) {
    // Emit adds the ACK flag itself outside kSynSent, so this re-sends the client's
    // SYN or the server's SYN|ACK as appropriate.
    when = Emit(c, kFlagSyn, seg.seq, {}, 0, false, false);
  } else if (seg.fin) {
    when = Emit(c, kFlagFin, seg.seq, {}, 0, false, false);
  } else {
    // Retransmission reads the (still pinned) data; zero-copy pays no copy here
    // either — the file cache is the retransmission pool.
    const bool precomputed = seg.checksum != 0;
    when = Emit(c, kFlagPsh, seg.seq, seg.head(),
                precomputed ? seg.checksum : Checksum(seg.head()),
                profile_.checksum_tx && !precomputed, !profile_.zero_copy_tx, seg.tail());
  }
  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kNet)) {
    tracer_->Instant(trace::Category::kNet, trace_track_, "tcp.retx", when, seg.seq);
  }
  ArmRto(c);
}

void TcpStack::ArmFinWaitReaper(TcpConn* c) {
  if (profile_.fin_wait_timeout_us == 0 || c->reap_deadline_ != 0) {
    return;
  }
  AddReapDeadline(c, hooks_.engine->now() + profile_.fin_wait_timeout_us * hooks_.cost->cpu_mhz);
}

void TcpStack::ArmHalfOpenReaper(TcpConn* c) {
  if (profile_.half_open_timeout_us == 0 || c->reap_deadline_ != 0) {
    return;
  }
  AddReapDeadline(c, hooks_.engine->now() + profile_.half_open_timeout_us * hooks_.cost->cpu_mhz);
}

void TcpStack::AddReapDeadline(TcpConn* c, sim::Cycles deadline) {
  c->reap_deadline_ = deadline;
  reap_deadlines_.insert({deadline, Key(c->peer_ip_, c->peer_port_, c->local_port_)});
  ArmReapTimer();
}

void TcpStack::CancelReapDeadline(TcpConn* c) {
  if (c->reap_deadline_ == 0) {
    return;
  }
  reap_deadlines_.erase({c->reap_deadline_, Key(c->peer_ip_, c->peer_port_, c->local_port_)});
  c->reap_deadline_ = 0;
  // The timer is left armed; firing with nothing due is a cheap no-op re-arm.
}

void TcpStack::ArmReapTimer() {
  if (reap_deadlines_.empty()) {
    return;
  }
  const sim::Cycles earliest = reap_deadlines_.begin()->first;
  if (reap_timer_event_ != 0) {
    if (reap_timer_deadline_ <= earliest) {
      return;  // already watching something at least as early
    }
    hooks_.engine->Cancel(reap_timer_event_);
  }
  reap_timer_deadline_ = earliest;
  reap_timer_event_ = hooks_.engine->ScheduleAfter(earliest - hooks_.engine->now(),
                                                   [this] { OnReapTimer(); });
}

void TcpStack::OnReapTimer() {
  reap_timer_event_ = 0;
  reap_timer_deadline_ = 0;
  const sim::Cycles now = hooks_.engine->now();
  while (!reap_deadlines_.empty() && reap_deadlines_.begin()->first <= now) {
    const ConnKey key = reap_deadlines_.begin()->second;
    reap_deadlines_.erase(reap_deadlines_.begin());
    auto it = conns_.find(key);
    if (it == conns_.end()) {
      continue;
    }
    TcpConn* conn = it->second.get();
    conn->reap_deadline_ = 0;
    if (conn->state_ == TcpConn::State::kFinWait) {
      // We closed, the peer never did (died, or its FIN path is aborted):
      // reap the half-closed PCB instead of holding it forever.
      ++stats_.fin_wait_reaped;
      AbortConn(conn, /*send_rst=*/true, "tcp.finwait_reap");
    } else if (conn->state_ == TcpConn::State::kSynRcvd) {
      ++stats_.half_open_reaped;
      AbortConn(conn, /*send_rst=*/true, "tcp.halfopen_reap");
    }
  }
  ArmReapTimer();
}

void TcpStack::DropHalfOpen(TcpConn* c) {
  if (!c->half_open_counted_) {
    return;
  }
  c->half_open_counted_ = false;
  auto it = half_open_.find(c->local_port_);
  if (it != half_open_.end() && it->second > 0) {
    --it->second;
  }
}

void TcpStack::AbortConn(TcpConn* c, bool send_rst, const char* trace_name) {
  if (c->state_ == TcpConn::State::kClosed) {
    return;
  }
  DropHalfOpen(c);
  if (send_rst) {
    ++stats_.rsts_out;
    Emit(c, kFlagRst, c->snd_next_, {}, 0, false, false);
  }
  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kNet)) {
    tracer_->Instant(trace::Category::kNet, trace_track_, trace_name,
                     hooks_.engine->now(), c->snd_una_);
  }
  for (auto* timer : {&c->ack_timer_, &c->rto_timer_}) {
    if (*timer != 0) {
      hooks_.engine->Cancel(*timer);
      *timer = 0;
    }
  }
  CancelReapDeadline(c);
  c->unacked_.clear();
  c->send_queue_.clear();
  c->ack_pending_ = false;
  c->aborted_ = true;
  c->state_ = TcpConn::State::kClosed;
  DeliverClose(c);
  AutoRelease(c);
}

void TcpStack::Abort(TcpConn* conn) {
  AbortConn(conn, /*send_rst=*/true, "tcp.app_abort");
}

void TcpStack::Shutdown() {
  for (auto& [key, conn] : conns_) {
    TcpConn* c = conn.get();
    for (auto* timer : {&c->ack_timer_, &c->rto_timer_}) {
      if (*timer != 0) {
        hooks_.engine->Cancel(*timer);
        *timer = 0;
      }
    }
    c->reap_deadline_ = 0;
    c->unacked_.clear();
    c->send_queue_.clear();
    c->ack_pending_ = false;
    // Closed + delivered without running callbacks: nobody hears from a
    // machine that lost power.
    c->aborted_ = true;
    c->close_delivered_ = true;
    c->state_ = TcpConn::State::kClosed;
  }
  conns_.clear();
  pcb_pool_.clear();
  tmp_.reset();
  listeners_.clear();
  half_open_.clear();
  reap_deadlines_.clear();
  if (reap_timer_event_ != 0) {
    hooks_.engine->Cancel(reap_timer_event_);
    reap_timer_event_ = 0;
  }
  reap_timer_deadline_ = 0;
}

sim::Cycles TcpStack::Input(const hw::Packet& p) {
  auto seg = DecodeTcp(p);
  if (!seg.has_value()) {
    return hooks_.engine->now();
  }
  // Receive-path CPU: fixed per-segment cost + payload copy/verify, then process.
  sim::Cycles cost = profile_.rx_fixed;
  bool checksum_ok = true;
  if (!seg->payload.empty()) {
    cost += static_cast<sim::Cycles>(
        static_cast<double>(hooks_.cost->CopyCost(seg->payload.size())) * profile_.rx_copies);
    if (profile_.checksum_rx) {
      cost += hooks_.cost->ChecksumCost(seg->payload.size());
      checksum_ok = Checksum(seg->payload) == seg->checksum;
    }
  }
  sim::Cycles when = Occupy(cost);
  const bool tracing = tracer_ != nullptr && tracer_->enabled(trace::Category::kNet);
  if (tracing) {
    tracer_->Instant(trace::Category::kNet, trace_track_, "tcp.rx", when,
                     seg->payload.size());
  }
  if (!checksum_ok) {
    // Damaged in transit: discard after paying the verify cost; the sender's RTO
    // recovers. Indistinguishable from a drop, which is the point of the checksum.
    ++stats_.checksum_drops;
    if (tracing) {
      tracer_->Instant(trace::Category::kNet, trace_track_, "tcp.csum_drop", when, seg->seq);
    }
    return when;
  }
  hooks_.engine->ScheduleAt(when, [this, s = std::move(*seg)]() mutable {
    ProcessSegment(std::move(s));
  });
  return when;
}

void TcpStack::ProcessSegment(TcpSegment seg) {
  ++stats_.segments_in;
  stats_.bytes_in += seg.payload.size();

  ConnKey key = Key(seg.src_ip, seg.src_port, seg.dst_port);
  auto it = conns_.find(key);
  TcpConn* c = it != conns_.end() ? it->second.get() : nullptr;

  if (c == nullptr) {
    // New connection? Must be a SYN to a listener.
    auto lit = listeners_.find(seg.dst_port);
    if (lit == listeners_.end() || (seg.flags & kFlagSyn) == 0) {
      return;  // no RST machinery; silence is fine on a closed simulated network
    }
    if (lit->second.backlog != 0 &&
        half_open_count(seg.dst_port) >= lit->second.backlog) {
      // SYN-flood shedding: the backlog is full, so this SYN is dropped before a
      // PCB is allocated. A legitimate peer retries; a flood starves here.
      ++stats_.syns_shed;
      if (tracer_ != nullptr && tracer_->enabled(trace::Category::kNet)) {
        tracer_->Instant(trace::Category::kNet, trace_track_, "tcp.syn_shed",
                         hooks_.engine->now(), seg.dst_port);
      }
      return;
    }
    c = NewConn();
    c->peer_ip_ = seg.src_ip;
    c->peer_port_ = seg.src_port;
    c->local_port_ = seg.dst_port;
    c->state_ = TcpConn::State::kSynRcvd;
    c->half_open_counted_ = true;
    ++half_open_[seg.dst_port];
    c->rcv_next_ = seg.seq + 1;
    c->snd_next_ = kInitialSeq;
    c->snd_una_ = kInitialSeq;
    conns_[key] = std::move(tmp_);
    peak_conns_ = std::max(peak_conns_, conns_.size());
    ArmHalfOpenReaper(c);
    const sim::Cycles sent = Emit(c, kFlagSyn | kFlagAck, c->snd_next_, {}, 0, false, false);
    TcpConn::PendingSegment syn;
    syn.syn = true;
    syn.seq = c->snd_next_;
    syn.sent_at = sent;
    c->unacked_.push_back(std::move(syn));
    c->snd_next_ += 1;
    ArmRto(c);
    return;
  }

  // RST: the peer aborted. Tear down immediately — no reply, no retransmission.
  if ((seg.flags & kFlagRst) != 0) {
    ++stats_.rsts_in;
    AbortConn(c, /*send_rst=*/false, "tcp.rst_rx");
    return;
  }

  // Active open: SYN|ACK completes the client side of the handshake.
  if ((seg.flags & kFlagSyn) != 0 && c->state_ == TcpConn::State::kSynSent) {
    c->rcv_next_ = seg.seq + 1;
    c->snd_una_ = seg.ack;
    c->unacked_.clear();
    if (c->rto_timer_ != 0) {
      hooks_.engine->Cancel(c->rto_timer_);
      c->rto_timer_ = 0;
    }
    c->backoff_ = 0;
    c->state_ = TcpConn::State::kEstablished;
    SendPureAck(c);
    if (c->on_established_) {
      auto cb = std::move(c->on_established_);
      cb(c);
    }
    return;
  }

  // Duplicate SYN|ACK: our handshake-completing ACK was lost, so the peer is still
  // retransmitting. Re-ack so it can leave SynRcvd. (In kSynRcvd ourselves, our own
  // RTO re-sends the SYN|ACK; a duplicate SYN needs no reply.)
  if ((seg.flags & kFlagSyn) != 0) {
    if (c->state_ != TcpConn::State::kSynRcvd) {
      SendPureAck(c);
    }
    return;
  }

  // ACK processing.
  if ((seg.flags & kFlagAck) != 0) {
    if (c->state_ == TcpConn::State::kSynSent) {
      return;  // stray ACK before the SYN|ACK; ignore
    }
    bool progressed = false;
    while (!c->unacked_.empty()) {
      const auto& head = c->unacked_.front();
      uint32_t head_end =
          head.seq + ((head.fin || head.syn) ? 1 : static_cast<uint32_t>(head.size()));
      if (SeqGe(seg.ack, head_end)) {
        if (head.sent_at != 0 && !head.retransmitted) {
          const sim::Cycles sample = hooks_.engine->now() - head.sent_at;
          if (profile_.adaptive_rto) {
            UpdateRtt(c, sample);  // Karn's rule: retransmitted heads never sample
          }
          if (rtt_hist_ != nullptr && tracer_->enabled(trace::Category::kNet)) {
            rtt_hist_->Record(sample);
          }
        }
        c->snd_una_ = head_end;
        c->unacked_.pop_front();
        progressed = true;
      } else {
        break;
      }
    }
    if (progressed) {
      c->backoff_ = 0;  // forward progress resets the backoff ladder
    }
    // Restart the retransmission timer: always when nothing is outstanding; on
    // progress too under the adaptive timer, so the timeout measures silence
    // since the *latest* advance rather than since the oldest arm (the classic
    // premature-RTO-on-long-transfers bug the fixed timer hid by being huge).
    if (c->rto_timer_ != 0 &&
        (c->unacked_.empty() || (progressed && profile_.adaptive_rto))) {
      hooks_.engine->Cancel(c->rto_timer_);
      c->rto_timer_ = 0;
    }
    if (c->state_ == TcpConn::State::kSynRcvd) {
      c->state_ = TcpConn::State::kEstablished;
      DropHalfOpen(c);
      CancelReapDeadline(c);  // handshake done; the half-open deadline is moot
      auto lit = listeners_.find(c->local_port_);
      if (lit != listeners_.end()) {
        lit->second.on_accept(c);
      }
    }
    if (c->unacked_.empty() && c->send_queue_.empty() && !c->fin_queued_ &&
        c->on_send_complete_) {
      auto cb = c->on_send_complete_;
      cb(c);
    }
    if (c->state_ == TcpConn::State::kLastAck && c->fin_sent_ && c->unacked_.empty()) {
      c->state_ = TcpConn::State::kClosed;
      DeliverClose(c);
      AutoRelease(c);
      return;
    }
    PumpSendQueue(c);
  }

  // In-order data.
  if (!seg.payload.empty()) {
    if (seg.seq == c->rcv_next_) {
      c->rcv_next_ += static_cast<uint32_t>(seg.payload.size());
      ScheduleDelayedAck(c);
      if (c->on_data_) {
        c->on_data_(c, seg.payload);
      }
    } else {
      SendPureAck(c);  // duplicate ack triggers the peer's eventual retransmit
    }
  }

  if ((seg.flags & kFlagFin) != 0 && seg.seq == c->rcv_next_) {
    c->rcv_next_ += 1;
    SendPureAck(c);
    if (c->state_ == TcpConn::State::kEstablished) {
      c->state_ = TcpConn::State::kCloseWait;
      DeliverClose(c);
    } else if (c->state_ == TcpConn::State::kFinWait) {
      c->state_ = TcpConn::State::kClosed;
      DeliverClose(c);
      AutoRelease(c);
    }
  }
}

void TcpStack::UpdateRtt(TcpConn* c, sim::Cycles sample) {
  // Jacobson '88 (integer form): SRTT += (err)/8, RTTVAR += (|err| - RTTVAR)/4.
  if (!c->rtt_valid_) {
    c->rtt_valid_ = true;
    c->srtt_ = sample;
    c->rttvar_ = sample / 2;
    return;
  }
  const int64_t err = static_cast<int64_t>(sample) - static_cast<int64_t>(c->srtt_);
  const int64_t abs_err = err < 0 ? -err : err;
  c->rttvar_ = static_cast<sim::Cycles>(
      static_cast<int64_t>(c->rttvar_) + (abs_err - static_cast<int64_t>(c->rttvar_)) / 4);
  c->srtt_ = static_cast<sim::Cycles>(
      std::max<int64_t>(1, static_cast<int64_t>(c->srtt_) + err / 8));
}

std::string TcpStack::DebugConnStates() const {
  // conns_ is hashed; sort by key so leak-triage output is stable across runs.
  std::map<ConnKey, const TcpConn*> ordered;
  for (const auto& [key, up] : conns_) {
    ordered[key] = up.get();
  }
  std::string out;
  for (const auto& [key, cp] : ordered) {
    const TcpConn& c = *cp;
    char line[128];
    std::snprintf(line, sizeof(line), "%u:%u state=%d unacked=%zu queued=%zu\n",
                  c.peer_ip_, c.peer_port_, static_cast<int>(c.state_),
                  c.unacked_.size(), c.send_queue_.size());
    out += line;
  }
  return out;
}

std::string TcpStack::CheckInvariants() const {
  std::map<Port, uint32_t> half_open_actual;
  for (const auto& [key, up] : conns_) {
    const TcpConn& c = *up;
    const int32_t in_flight = static_cast<int32_t>(c.snd_next_ - c.snd_una_);
    if (in_flight < 0) {
      return "snd_una passed snd_next (cumulative ACK regressed)";
    }
    // SYN and FIN each occupy one sequence number beyond the data window.
    if (static_cast<uint32_t>(in_flight) > profile_.window_bytes + 2) {
      return "in-flight bytes exceed the send window";
    }
    uint32_t expect = c.snd_una_;
    for (const auto& seg : c.unacked_) {
      if (seg.seq != expect) {
        return "retransmission queue out of sequence";
      }
      expect += (seg.syn || seg.fin) ? 1 : static_cast<uint32_t>(seg.size());
    }
    if (expect != c.snd_next_ && c.send_queue_.empty()) {
      return "unacked queue does not account for all sent sequence space";
    }
    if (c.state_ == TcpConn::State::kClosed &&
        (c.rto_timer_ != 0 || c.ack_timer_ != 0 || c.reap_deadline_ != 0)) {
      return "timer armed on a closed connection";
    }
    if (c.reap_deadline_ != 0 &&
        reap_deadlines_.count({c.reap_deadline_, key}) == 0) {
      return "reap deadline not present in the deadline index";
    }
    if (!c.unacked_.empty() && c.rto_timer_ == 0 &&
        c.state_ != TcpConn::State::kClosed) {
      return "outstanding segments without a retransmission timer";
    }
    if (c.half_open_counted_) {
      if (c.state_ != TcpConn::State::kSynRcvd) {
        return "half-open accounting on a non-SynRcvd connection";
      }
      ++half_open_actual[c.local_port_];
    }
  }
  for (const auto& [port, count] : half_open_) {
    if (count != (half_open_actual.count(port) ? half_open_actual[port] : 0)) {
      return "half-open counter drifted from the connection table";
    }
    const auto lit = listeners_.find(port);
    if (lit != listeners_.end() && lit->second.backlog != 0 &&
        count > lit->second.backlog) {
      return "half-open population exceeds the listen backlog";
    }
  }
  // Every index entry must name a live connection carrying that exact deadline
  // (the per-conn check above covers the other direction); a stale entry would
  // reap the wrong PCB or spin the timer forever.
  for (const auto& [deadline, key] : reap_deadlines_) {
    auto cit = conns_.find(key);
    if (cit == conns_.end() || cit->second->reap_deadline_ != deadline) {
      return "reap deadline index entry names no matching connection";
    }
  }
  return "";
}

void TcpStack::DeliverClose(TcpConn* c) {
  if (c->on_close_ && !c->close_delivered_) {
    c->close_delivered_ = true;
    c->on_close_(c);
  }
}

void TcpStack::AutoRelease(TcpConn* c) {
  // Fully closed: return the PCB once the current processing step finishes.
  ConnKey key = Key(c->peer_ip_, c->peer_port_, c->local_port_);
  hooks_.engine->ScheduleAfter(0, [this, key] {
    auto it = conns_.find(key);
    if (it != conns_.end() && it->second->state_ == TcpConn::State::kClosed) {
      Release(it->second.get());
    }
  });
}

void TcpStack::Release(TcpConn* conn) {
  ConnKey key = Key(conn->peer_ip_, conn->peer_port_, conn->local_port_);
  auto it = conns_.find(key);
  if (it == conns_.end()) {
    return;
  }
  DropHalfOpen(conn);
  for (auto* timer : {&conn->ack_timer_, &conn->rto_timer_}) {
    if (*timer != 0) {
      hooks_.engine->Cancel(*timer);
      *timer = 0;
    }
  }
  CancelReapDeadline(conn);
  if (profile_.pcb_reuse) {
    pcb_pool_.push_back(std::move(it->second));
  }
  conns_.erase(it);
}

}  // namespace exo::net
