#include "net/tcp.h"

#include <algorithm>

#include "sim/check.h"

namespace exo::net {

namespace {
constexpr uint32_t kInitialSeq = 1000;
}  // namespace

TcpStack::TcpStack(const Hooks& hooks, IpAddr ip, const TcpProfile& profile)
    : hooks_(hooks), ip_(ip), profile_(profile) {
  EXO_CHECK(hooks_.engine != nullptr);
  EXO_CHECK(hooks_.cost != nullptr);
  EXO_CHECK(hooks_.transmit != nullptr);
}

TcpStack::~TcpStack() = default;

Status TcpStack::Listen(Port port, std::function<void(TcpConn*)> on_accept) {
  if (listeners_.count(port) != 0) {
    return Status::kAlreadyExists;
  }
  listeners_[port] = std::move(on_accept);
  return Status::kOk;
}

TcpConn* TcpStack::NewConn() {
  ++stats_.conns_opened;
  if (profile_.pcb_reuse && !pcb_pool_.empty()) {
    auto conn = std::move(pcb_pool_.back());
    pcb_pool_.pop_back();
    ++stats_.pcb_reused;
    Occupy(profile_.pcb_reuse_cost);
    *conn = TcpConn{};
    conn->stack_ = this;
    TcpConn* raw = conn.get();
    // Re-keyed by the caller.
    tmp_ = std::move(conn);
    return raw;
  }
  Occupy(profile_.pcb_alloc);
  auto conn = std::make_unique<TcpConn>();
  conn->stack_ = this;
  TcpConn* raw = conn.get();
  tmp_ = std::move(conn);
  return raw;
}

TcpConn* TcpStack::Connect(IpAddr dst_ip, Port dst_port,
                           std::function<void(TcpConn*)> on_established) {
  TcpConn* c = NewConn();
  c->peer_ip_ = dst_ip;
  c->peer_port_ = dst_port;
  c->local_port_ = next_ephemeral_++;
  c->state_ = TcpConn::State::kSynSent;
  c->snd_next_ = kInitialSeq;
  c->snd_una_ = kInitialSeq;
  c->on_established_ = std::move(on_established);
  conns_[Key(dst_ip, dst_port, c->local_port_)] = std::move(tmp_);
  const sim::Cycles sent = Emit(c, kFlagSyn, c->snd_next_, {}, 0, false, false);
  TcpConn::PendingSegment syn;
  syn.syn = true;
  syn.seq = c->snd_next_;
  syn.sent_at = sent;
  c->unacked_.push_back(std::move(syn));
  c->snd_next_ += 1;
  ArmRto(c);
  return c;
}

sim::Cycles TcpStack::Emit(TcpConn* c, uint8_t flags, uint32_t seq,
                           std::span<const uint8_t> payload, uint32_t checksum,
                           bool charge_checksum, bool charge_copy) {
  sim::Cycles cost = profile_.tx_fixed;
  if (!payload.empty()) {
    if (charge_copy) {
      cost += static_cast<sim::Cycles>(static_cast<double>(hooks_.cost->CopyCost(payload.size())) *
                                       profile_.tx_copies);
    }
    if (charge_checksum) {
      cost += hooks_.cost->ChecksumCost(payload.size());
    }
  }
  sim::Cycles when = Occupy(cost);

  TcpSegment seg;
  seg.src_ip = ip_;
  seg.dst_ip = c->peer_ip_;
  seg.src_port = c->local_port_;
  seg.dst_port = c->peer_port_;
  seg.seq = seq;
  seg.flags = flags;
  seg.window = 0xffff;
  seg.checksum = checksum;
  // The payload rides the span straight into the encoded frame below; copying it
  // into the segment first would double the per-byte work on the transmit path.
  if (c->state_ != TcpConn::State::kSynSent || (flags & kFlagAck) != 0) {
    seg.flags |= kFlagAck;
    seg.ack = c->rcv_next_;
  }
  if ((seg.flags & kFlagAck) != 0 && !payload.empty() && c->ack_pending_) {
    c->ack_pending_ = false;
    if (c->ack_timer_ != 0) {
      hooks_.engine->Cancel(c->ack_timer_);
      c->ack_timer_ = 0;
    }
    ++stats_.piggybacked_acks;
  }

  ++stats_.segments_out;
  stats_.bytes_out += payload.size();
  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kNet)) {
    tracer_->Instant(trace::Category::kNet, trace_track_, "tcp.tx", when, payload.size());
  }
  hooks_.transmit(EncodeTcp(seg, payload), when);
  return when;
}

void TcpStack::SendPureAck(TcpConn* c) {
  c->ack_pending_ = false;
  if (c->ack_timer_ != 0) {
    hooks_.engine->Cancel(c->ack_timer_);
    c->ack_timer_ = 0;
  }
  ++stats_.pure_acks_out;
  Emit(c, kFlagAck, c->snd_next_, {}, 0, false, false);
}

void TcpStack::ScheduleDelayedAck(TcpConn* c) {
  if (!profile_.piggyback_ack) {
    SendPureAck(c);
    return;
  }
  // Knowledge-based packet merging: hold the ACK; the response will carry it.
  c->ack_pending_ = true;
  if (c->ack_timer_ != 0) {
    return;
  }
  ConnKey key = Key(c->peer_ip_, c->peer_port_, c->local_port_);
  c->ack_timer_ = hooks_.engine->ScheduleAfter(
      profile_.delayed_ack_timeout_us * hooks_.cost->cpu_mhz, [this, key] {
        auto it = conns_.find(key);
        if (it != conns_.end() && it->second->ack_pending_) {
          it->second->ack_timer_ = 0;
          SendPureAck(it->second.get());
        }
      });
}

void TcpStack::PumpSendQueue(TcpConn* c) {
  while (!c->send_queue_.empty()) {
    uint32_t in_flight = c->snd_next_ - c->snd_una_;
    const auto& head = c->send_queue_.front();
    if (in_flight + head.bytes().size() > profile_.window_bytes) {
      break;
    }
    TcpConn::PendingSegment seg = std::move(c->send_queue_.front());
    c->send_queue_.pop_front();
    seg.seq = c->snd_next_;
    if (seg.fin) {
      seg.sent_at = Emit(c, kFlagFin, seg.seq, {}, 0, false, false);
      c->snd_next_ += 1;
      c->fin_sent_ = true;
      c->state_ = c->state_ == TcpConn::State::kCloseWait ? TcpConn::State::kLastAck
                                                          : TcpConn::State::kFinWait;
    } else {
      const bool precomputed = seg.checksum != 0;
      seg.sent_at = Emit(c, kFlagPsh, seg.seq, seg.bytes(),
                         precomputed ? seg.checksum : Checksum(seg.bytes()),
                         /*charge_checksum=*/profile_.checksum_tx && !precomputed,
                         /*charge_copy=*/!profile_.zero_copy_tx);
      c->snd_next_ += static_cast<uint32_t>(seg.bytes().size());
    }
    c->unacked_.push_back(std::move(seg));
  }
  if (!c->unacked_.empty()) {
    ArmRto(c);
  }
}

void TcpConn::Send(std::span<const uint8_t> data, std::span<const uint32_t> checksums) {
  EXO_CHECK(stack_ != nullptr);
  size_t seg_index = 0;
  for (size_t off = 0; off < data.size(); off += kMss, ++seg_index) {
    size_t n = std::min<size_t>(kMss, data.size() - off);
    PendingSegment seg;
    if (stack_->profile_.zero_copy_tx) {
      // Merged file cache and retransmission pool: reference, don't copy.
      seg.stable = data.subspan(off, n);
    } else {
      seg.owned.assign(data.begin() + static_cast<long>(off),
                       data.begin() + static_cast<long>(off + n));
    }
    if (seg_index < checksums.size()) {
      seg.checksum = checksums[seg_index];
    }
    send_queue_.push_back(std::move(seg));
  }
  stack_->PumpSendQueue(this);
}

void TcpConn::Close() {
  if (fin_queued_ || state_ == State::kClosed) {
    return;
  }
  fin_queued_ = true;
  PendingSegment fin;
  fin.fin = true;
  send_queue_.push_back(std::move(fin));
  stack_->PumpSendQueue(this);
}

void TcpStack::ArmRto(TcpConn* c) {
  if (c->rto_timer_ != 0) {
    return;
  }
  ConnKey key = Key(c->peer_ip_, c->peer_port_, c->local_port_);
  c->rto_timer_ = hooks_.engine->ScheduleAfter(
      profile_.rto_us * hooks_.cost->cpu_mhz, [this, key] {
        auto it = conns_.find(key);
        if (it != conns_.end()) {
          it->second->rto_timer_ = 0;
          OnRto(it->second.get());
        }
      });
}

void TcpStack::OnRto(TcpConn* c) {
  if (c->unacked_.empty()) {
    return;
  }
  ++stats_.retransmits;
  TcpConn::PendingSegment& seg = c->unacked_.front();
  seg.retransmitted = true;  // Karn: this segment can no longer yield an RTT sample
  sim::Cycles when = 0;
  if (seg.syn) {
    // Emit adds the ACK flag itself outside kSynSent, so this re-sends the client's
    // SYN or the server's SYN|ACK as appropriate.
    when = Emit(c, kFlagSyn, seg.seq, {}, 0, false, false);
  } else if (seg.fin) {
    when = Emit(c, kFlagFin, seg.seq, {}, 0, false, false);
  } else {
    // Retransmission reads the (still pinned) data; zero-copy pays no copy here
    // either — the file cache is the retransmission pool.
    const bool precomputed = seg.checksum != 0;
    when = Emit(c, kFlagPsh, seg.seq, seg.bytes(),
                precomputed ? seg.checksum : Checksum(seg.bytes()),
                profile_.checksum_tx && !precomputed, !profile_.zero_copy_tx);
  }
  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kNet)) {
    tracer_->Instant(trace::Category::kNet, trace_track_, "tcp.retx", when, seg.seq);
  }
  ArmRto(c);
}

void TcpStack::Input(const hw::Packet& p) {
  auto seg = DecodeTcp(p);
  if (!seg.has_value()) {
    return;
  }
  // Receive-path CPU: fixed per-segment cost + payload copy/verify, then process.
  sim::Cycles cost = profile_.rx_fixed;
  bool checksum_ok = true;
  if (!seg->payload.empty()) {
    cost += static_cast<sim::Cycles>(
        static_cast<double>(hooks_.cost->CopyCost(seg->payload.size())) * profile_.rx_copies);
    if (profile_.checksum_rx) {
      cost += hooks_.cost->ChecksumCost(seg->payload.size());
      checksum_ok = Checksum(seg->payload) == seg->checksum;
    }
  }
  sim::Cycles when = Occupy(cost);
  const bool tracing = tracer_ != nullptr && tracer_->enabled(trace::Category::kNet);
  if (tracing) {
    tracer_->Instant(trace::Category::kNet, trace_track_, "tcp.rx", when,
                     seg->payload.size());
  }
  if (!checksum_ok) {
    // Damaged in transit: discard after paying the verify cost; the sender's RTO
    // recovers. Indistinguishable from a drop, which is the point of the checksum.
    ++stats_.checksum_drops;
    if (tracing) {
      tracer_->Instant(trace::Category::kNet, trace_track_, "tcp.csum_drop", when, seg->seq);
    }
    return;
  }
  hooks_.engine->ScheduleAt(when, [this, s = std::move(*seg)]() mutable {
    ProcessSegment(std::move(s));
  });
}

void TcpStack::ProcessSegment(TcpSegment seg) {
  ++stats_.segments_in;
  stats_.bytes_in += seg.payload.size();

  ConnKey key = Key(seg.src_ip, seg.src_port, seg.dst_port);
  auto it = conns_.find(key);
  TcpConn* c = it != conns_.end() ? it->second.get() : nullptr;

  if (c == nullptr) {
    // New connection? Must be a SYN to a listener.
    auto lit = listeners_.find(seg.dst_port);
    if (lit == listeners_.end() || (seg.flags & kFlagSyn) == 0) {
      return;  // no RST machinery; silence is fine on a closed simulated network
    }
    c = NewConn();
    c->peer_ip_ = seg.src_ip;
    c->peer_port_ = seg.src_port;
    c->local_port_ = seg.dst_port;
    c->state_ = TcpConn::State::kSynRcvd;
    c->rcv_next_ = seg.seq + 1;
    c->snd_next_ = kInitialSeq;
    c->snd_una_ = kInitialSeq;
    conns_[key] = std::move(tmp_);
    const sim::Cycles sent = Emit(c, kFlagSyn | kFlagAck, c->snd_next_, {}, 0, false, false);
    TcpConn::PendingSegment syn;
    syn.syn = true;
    syn.seq = c->snd_next_;
    syn.sent_at = sent;
    c->unacked_.push_back(std::move(syn));
    c->snd_next_ += 1;
    ArmRto(c);
    return;
  }

  // Active open: SYN|ACK completes the client side of the handshake.
  if ((seg.flags & kFlagSyn) != 0 && c->state_ == TcpConn::State::kSynSent) {
    c->rcv_next_ = seg.seq + 1;
    c->snd_una_ = seg.ack;
    c->unacked_.clear();
    if (c->rto_timer_ != 0) {
      hooks_.engine->Cancel(c->rto_timer_);
      c->rto_timer_ = 0;
    }
    c->state_ = TcpConn::State::kEstablished;
    SendPureAck(c);
    if (c->on_established_) {
      auto cb = std::move(c->on_established_);
      cb(c);
    }
    return;
  }

  // Duplicate SYN|ACK: our handshake-completing ACK was lost, so the peer is still
  // retransmitting. Re-ack so it can leave SynRcvd. (In kSynRcvd ourselves, our own
  // RTO re-sends the SYN|ACK; a duplicate SYN needs no reply.)
  if ((seg.flags & kFlagSyn) != 0) {
    if (c->state_ != TcpConn::State::kSynRcvd) {
      SendPureAck(c);
    }
    return;
  }

  // ACK processing.
  if ((seg.flags & kFlagAck) != 0) {
    if (c->state_ == TcpConn::State::kSynSent) {
      return;  // stray ACK before the SYN|ACK; ignore
    }
    while (!c->unacked_.empty()) {
      const auto& head = c->unacked_.front();
      uint32_t head_end =
          head.seq +
          ((head.fin || head.syn) ? 1 : static_cast<uint32_t>(head.bytes().size()));
      if (static_cast<int32_t>(seg.ack - head_end) >= 0) {
        if (rtt_hist_ != nullptr && head.sent_at != 0 && !head.retransmitted &&
            tracer_->enabled(trace::Category::kNet)) {
          rtt_hist_->Record(hooks_.engine->now() - head.sent_at);
        }
        c->snd_una_ = head_end;
        c->unacked_.pop_front();
      } else {
        break;
      }
    }
    if (c->unacked_.empty() && c->rto_timer_ != 0) {
      hooks_.engine->Cancel(c->rto_timer_);
      c->rto_timer_ = 0;
    }
    if (c->state_ == TcpConn::State::kSynRcvd) {
      c->state_ = TcpConn::State::kEstablished;
      auto lit = listeners_.find(c->local_port_);
      if (lit != listeners_.end()) {
        lit->second(c);
      }
    }
    if (c->unacked_.empty() && c->send_queue_.empty() && !c->fin_queued_ &&
        c->on_send_complete_) {
      auto cb = c->on_send_complete_;
      cb(c);
    }
    if (c->state_ == TcpConn::State::kLastAck && c->fin_sent_ && c->unacked_.empty()) {
      c->state_ = TcpConn::State::kClosed;
      DeliverClose(c);
      AutoRelease(c);
      return;
    }
    PumpSendQueue(c);
  }

  // In-order data.
  if (!seg.payload.empty()) {
    if (seg.seq == c->rcv_next_) {
      c->rcv_next_ += static_cast<uint32_t>(seg.payload.size());
      ScheduleDelayedAck(c);
      if (c->on_data_) {
        c->on_data_(c, seg.payload);
      }
    } else {
      SendPureAck(c);  // duplicate ack triggers the peer's eventual retransmit
    }
  }

  if ((seg.flags & kFlagFin) != 0 && seg.seq == c->rcv_next_) {
    c->rcv_next_ += 1;
    SendPureAck(c);
    if (c->state_ == TcpConn::State::kEstablished) {
      c->state_ = TcpConn::State::kCloseWait;
      DeliverClose(c);
    } else if (c->state_ == TcpConn::State::kFinWait) {
      c->state_ = TcpConn::State::kClosed;
      DeliverClose(c);
      AutoRelease(c);
    }
  }
}

void TcpStack::DeliverClose(TcpConn* c) {
  if (c->on_close_ && !c->close_delivered_) {
    c->close_delivered_ = true;
    c->on_close_(c);
  }
}

void TcpStack::AutoRelease(TcpConn* c) {
  // Fully closed: return the PCB once the current processing step finishes.
  ConnKey key = Key(c->peer_ip_, c->peer_port_, c->local_port_);
  hooks_.engine->ScheduleAfter(0, [this, key] {
    auto it = conns_.find(key);
    if (it != conns_.end() && it->second->state_ == TcpConn::State::kClosed) {
      Release(it->second.get());
    }
  });
}

void TcpStack::Release(TcpConn* conn) {
  ConnKey key = Key(conn->peer_ip_, conn->peer_port_, conn->local_port_);
  auto it = conns_.find(key);
  if (it == conns_.end()) {
    return;
  }
  if (conn->ack_timer_ != 0) {
    hooks_.engine->Cancel(conn->ack_timer_);
  }
  if (conn->rto_timer_ != 0) {
    hooks_.engine->Cancel(conn->rto_timer_);
  }
  if (profile_.pcb_reuse) {
    pcb_pool_.push_back(std::move(it->second));
  }
  conns_.erase(it);
}

}  // namespace exo::net
