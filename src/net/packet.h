// Wire formats for the simulated network: a compact IP+TCP/UDP header pair.
//
// Links are point-to-point, so no Ethernet addressing is needed; frames carry an IP
// header directly. Checksums are real (computed over payload bytes), because the
// checksum cost is one of the things Cheetah's precomputed-checksum optimization
// removes (Sec. 7.3) — it has to exist to be removable.
#ifndef EXO_NET_PACKET_H_
#define EXO_NET_PACKET_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "hw/nic.h"

namespace exo::net {

using IpAddr = uint32_t;
using Port = uint16_t;

constexpr uint8_t kProtoTcp = 6;
constexpr uint8_t kProtoUdp = 17;

constexpr uint32_t kIpHeaderBytes = 12;
constexpr uint32_t kTcpHeaderBytes = 20;
constexpr uint32_t kUdpHeaderBytes = 8;
constexpr uint32_t kMss = hw::kMaxFrameBytes - kIpHeaderBytes - kTcpHeaderBytes;  // 1482

enum TcpFlags : uint8_t {
  kFlagSyn = 1,
  kFlagAck = 2,
  kFlagFin = 4,
  kFlagPsh = 8,
  kFlagRst = 16,
};

struct TcpSegment {
  IpAddr src_ip = 0;
  IpAddr dst_ip = 0;
  Port src_port = 0;
  Port dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint16_t window = 0;
  uint32_t checksum = 0;
  std::vector<uint8_t> payload;
};

struct UdpDatagram {
  IpAddr src_ip = 0;
  IpAddr dst_ip = 0;
  Port src_port = 0;
  Port dst_port = 0;
  std::vector<uint8_t> payload;
};

// Internet-style ones-complement-ish sum, folded to 32 bits. Cheap to compute in the
// host but *charged* per byte by the protocol code.
uint32_t Checksum(std::span<const uint8_t> data);
// Checksum of a concatenation from the parts' checksums: the word sum is
// additive as long as the first part has even length (its last 16-bit word is
// complete, so the second part's words stay aligned). This is what lets Cheetah
// staple a freshly rendered response header onto a body whose checksum was
// precomputed and stored with the file, without touching the body bytes.
uint32_t ChecksumCombine(uint32_t even_prefix_sum, uint32_t suffix_sum);

hw::Packet EncodeTcp(const TcpSegment& seg);
// Zero-copy variant for the transmit path: encodes seg's headers but takes the
// payload from `payload` (seg.payload is ignored), so callers holding the bytes
// in a send buffer skip the intermediate segment copy.
hw::Packet EncodeTcp(const TcpSegment& seg, std::span<const uint8_t> payload);
// Gather variant: the payload is head‖tail in one frame (Cheetah's batched
// header+body transmission — header from the response cache, body straight
// from the file cache).
hw::Packet EncodeTcp(const TcpSegment& seg, std::span<const uint8_t> head,
                     std::span<const uint8_t> tail);
std::optional<TcpSegment> DecodeTcp(const hw::Packet& p);
hw::Packet EncodeUdp(const UdpDatagram& d);
std::optional<UdpDatagram> DecodeUdp(const hw::Packet& p);

// Protocol byte at a fixed offset, so UDF packet filters can demultiplex:
//   offset 0: u8 proto; 1..4 src_ip; 5..8 dst_ip; then the transport header with
//   ports at offsets 9/11 (u16 LE).
constexpr uint32_t kOffProto = 0;
constexpr uint32_t kOffSrcIp = 1;
constexpr uint32_t kOffDstIp = 5;
constexpr uint32_t kOffSrcPort = 9;
constexpr uint32_t kOffDstPort = 11;

}  // namespace exo::net

#endif  // EXO_NET_PACKET_H_
