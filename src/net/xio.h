// XIO: the extensible I/O library for fast servers (Sec. 7.3).
//
// XIO exists so application writers can "exploit domain-specific knowledge" without
// tricking the OS. The pieces Cheetah uses:
//   - ChecksumCache: per-file precomputed TCP checksums, stored with the file and
//     computed once; transmission then never touches the data with the CPU.
//   - The merged file-cache/retransmission-pool convention: callers pass stable
//     cache spans to TcpConn::Send under a zero-copy profile.
//   - Ready-made TcpProfiles for each server configuration measured in Figure 3.
#ifndef EXO_NET_XIO_H_
#define EXO_NET_XIO_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <list>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/tcp.h"

namespace exo::net {

// Figure-3 profiles honor EXO_TCP_ADAPTIVE_RTO=0, which reverts every stack
// built from them to the fixed pre-adaptive retransmission timer. That is the
// knob that reproduces the pre-adaptive fig2–fig5 stdout bit-for-bit
// (docs/OVERLOAD.md); anything else (unset, "1", ...) leaves the default on.
inline bool AdaptiveRtoDefault() {
  static const bool on = [] {
    const char* v = std::getenv("EXO_TCP_ADAPTIVE_RTO");
    return v == nullptr || v[0] != '0';
  }();
  return on;
}

// Admission control and lifecycle limits for a serving stack. The shape is
// SEDA's: detect overload from queue depth (here, CPU backlog — the one queue
// every request crosses), shed early while rejection is still cheap, and bound
// every resource a hostile or unlucky client could otherwise pin forever.
// Default-constructed (enabled=false) the policy is inert and the server
// behaves exactly as before.
struct ServerOverloadPolicy {
  bool enabled = false;
  // Passed to TcpStack::Listen: SYNs beyond this many half-open connections per
  // port are dropped before a PCB is allocated. 0 = unbounded.
  uint32_t listen_backlog = 0;
  // Hysteresis watermarks on CPU backlog (busy_until - now), in microseconds.
  // Backlog >= high: start shedding (cheap 503s). Backlog <= low: stop.
  sim::Cycles high_watermark_us = 2'000;
  sim::Cycles low_watermark_us = 500;
  // An admitted request that has not fully acknowledged its response within
  // this budget is aborted (RST) and its resources reclaimed. 0 = no deadline.
  sim::Cycles request_deadline_us = 0;
};

// Computes and caches per-MSS-segment checksums for stable buffers keyed by an
// application-chosen id (Cheetah keys by file). The first request charges the
// checksum cost; later requests are free — the point of storing checksums with the
// file (Sec. 7.3, "Merged File Cache and Retransmission Pool").
class ChecksumCache {
 public:
  using ChargeFn = std::function<void(sim::Cycles)>;

  ChecksumCache(const sim::CostModel* cost, ChargeFn charge)
      : cost_(cost), charge_(std::move(charge)) {}

  const std::vector<uint32_t>& For(uint64_t key, std::span<const uint8_t> data) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    if (charge_) {
      charge_(cost_->ChecksumCost(data.size()));
    }
    std::vector<uint32_t> sums;
    for (size_t off = 0; off < data.size(); off += kMss) {
      size_t n = std::min<size_t>(kMss, data.size() - off);
      sums.push_back(Checksum(data.subspan(off, n)));
    }
    ++misses_;
    return cache_.emplace(key, std::move(sums)).first->second;
  }

  void Invalidate(uint64_t key) { cache_.erase(key); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  const sim::CostModel* cost_;
  ChargeFn charge_;
  std::map<uint64_t, std::vector<uint32_t>> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// The libFS-side document registry: file bytes plus their per-MSS checksums,
// computed once when the file is written and *stored with the file* — the full
// Cheetah discipline (Sec. 7.3), one step past ChecksumCache's lazy per-server
// memo. Every server instance sharing the store sees the same pinned bytes
// (they double as the zero-copy retransmission pool) and the same checksums.
// Mutations (Put over an existing name, Truncate) recompute the checksums and
// bump the generation so response caches can detect staleness; callers must
// quiesce in-flight zero-copy transmissions first, exactly as a real merged
// file-cache/retransmission-pool requires.
class DocumentStore {
 public:
  using ChargeFn = std::function<void(sim::Cycles)>;

  struct Doc {
    uint64_t id = 0;
    uint64_t generation = 1;
    std::vector<uint8_t> bytes;
    std::vector<uint32_t> checksums;  // one per MSS segment of `bytes`
  };

  DocumentStore(const sim::CostModel* cost, ChargeFn charge = {})
      : cost_(cost), charge_(std::move(charge)) {}

  // Writes (or rewrites) a document. The checksum cost is charged here, at
  // file-write time, never on the serving path.
  const Doc* Put(const std::string& name, std::vector<uint8_t> bytes) {
    Doc& d = docs_[name];
    if (d.id == 0) {
      d.id = next_id_++;
    } else {
      ++d.generation;  // rewrite: every cached reference to the old bytes is stale
    }
    d.bytes = std::move(bytes);
    Resum(d);
    return &d;
  }

  // Shrinks a document in place. Returns false if it does not exist or would
  // grow. The tail segment's checksum changes, so all checksums are recomputed.
  bool Truncate(const std::string& name, size_t new_size) {
    auto it = docs_.find(name);
    if (it == docs_.end() || new_size > it->second.bytes.size()) {
      return false;
    }
    Doc& d = it->second;
    ++d.generation;
    d.bytes.resize(new_size);
    Resum(d);
    return true;
  }

  const Doc* Find(const std::string& name) const {
    auto it = docs_.find(name);
    return it != docs_.end() ? &it->second : nullptr;
  }

  size_t size() const { return docs_.size(); }

 private:
  void Resum(Doc& d) {
    if (charge_) {
      charge_(cost_->ChecksumCost(d.bytes.size()));
    }
    d.checksums.clear();
    std::span<const uint8_t> data = d.bytes;
    for (size_t off = 0; off < data.size(); off += kMss) {
      size_t n = std::min<size_t>(kMss, data.size() - off);
      d.checksums.push_back(Checksum(data.subspan(off, n)));
    }
  }

  const sim::CostModel* cost_;
  ChargeFn charge_;
  std::map<std::string, Doc> docs_;
  uint64_t next_id_ = 1;
};

// An LRU cache of fully prepared responses shared across requests (and across
// server instances, if desired): the rendered, even-length-padded header, its
// checksum, and a pointer to the document whose body completes the response.
// Entries carry the document generation they were rendered against; a
// generation mismatch at lookup is treated as a miss and the entry dropped, so
// a Put/Truncate in the DocumentStore can never serve a stale header.
class HttpResponseCache {
 public:
  struct Entry {
    std::vector<uint8_t> header;  // padded to even length for ChecksumCombine
    uint32_t header_checksum = 0;
    const DocumentStore::Doc* doc = nullptr;
    uint64_t doc_generation = 0;
  };

  explicit HttpResponseCache(size_t capacity) : capacity_(capacity) {}

  const Entry* Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    const Entry& e = it->second->second;
    if (e.doc != nullptr && e.doc_generation != e.doc->generation) {
      // The document was rewritten since this response was rendered.
      lru_.erase(it->second);
      index_.erase(it);
      ++misses_;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front: most recent
    ++hits_;
    return &lru_.front().second;
  }

  const Entry* Put(const std::string& key, Entry e) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
    lru_.emplace_front(key, std::move(e));
    index_[key] = lru_.begin();
    while (capacity_ != 0 && lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
    return &lru_.front().second;
  }

  void Invalidate(const std::string& key) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
  }

  size_t size() const { return lru_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  std::list<std::pair<std::string, Entry>> lru_;
  std::unordered_map<std::string, std::list<std::pair<std::string, Entry>>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

// Cost/option profiles for the four server stacks in Figure 3.
//
// Fixed per-segment costs decompose as protocol work + kernel crossings + driver
// work; copy counts are the number of times the CPU moves the payload.
inline TcpProfile BsdSocketProfile() {
  TcpProfile p;
  p.adaptive_rto = AdaptiveRtoDefault();
  p.tx_fixed = 3200;  // syscall + socket layer + in-kernel TCP + mbufs + driver
  p.rx_fixed = 3200;
  p.tx_copies = 2.0;  // user->kernel, kernel->driver
  p.rx_copies = 2.0;
  p.checksum_tx = true;
  p.checksum_rx = true;
  p.piggyback_ack = false;
  p.zero_copy_tx = false;
  p.pcb_reuse = false;
  return p;
}

// ExOS sockets over XIO on Xok: user-level TCP, one copy each way (application
// buffer <-> pinned packet buffer), PCB reuse and simple packet merging already on
// (the "default socket implementation built on top of XIO", Sec. 7.3).
inline TcpProfile XokSocketProfile() {
  TcpProfile p;
  p.adaptive_rto = AdaptiveRtoDefault();
  p.tx_fixed = 1500;  // transmit syscall + user-level protocol work
  p.rx_fixed = 1200;  // packet-ring consume + user-level protocol work
  p.tx_copies = 1.0;
  p.rx_copies = 1.0;
  p.checksum_tx = true;
  p.checksum_rx = true;
  p.piggyback_ack = true;
  p.zero_copy_tx = false;
  p.pcb_reuse = true;
  return p;
}

// Cheetah: everything XokSocket does, plus transmission directly from the file
// cache with precomputed checksums — the CPU never touches response payloads.
inline TcpProfile CheetahProfile() {
  TcpProfile p = XokSocketProfile();
  p.tx_fixed = 700;
  p.zero_copy_tx = true;   // file cache doubles as the retransmission pool
  p.checksum_tx = false;   // precomputed, stored with the file
  return p;
}

// A load-generating client: cost-free CPU (the experiment isolates the server).
inline TcpProfile ClientProfile() {
  TcpProfile p;
  p.adaptive_rto = AdaptiveRtoDefault();
  p.tx_fixed = 0;
  p.rx_fixed = 0;
  p.tx_copies = 0;
  p.rx_copies = 0;
  p.checksum_tx = false;
  p.checksum_rx = false;
  p.pcb_reuse = true;
  return p;
}

}  // namespace exo::net

#endif  // EXO_NET_XIO_H_
