// A TCP implementation designed to run in any protection regime (Sec. 5.2.1, 7.3).
//
// The same engine serves four configurations, differing only in their cost profile
// and option flags:
//   - ExOS user-level sockets on Xok (per-segment syscall to transmit, one payload
//     copy, packet-ring receive),
//   - in-kernel BSD sockets (per-operation syscall + user/kernel copies),
//   - the XIO-based server path (PCB reuse, application-cached file pointers),
//   - Cheetah's extended path: transmit directly from the file cache with
//     precomputed checksums (merged file cache and retransmission pool — data is
//     never copied and never touched by the CPU), and knowledge-based packet
//     merging (delay the ACK on a request because the response will piggy-back it).
//
// Protocol scope: 3-way handshake, cumulative ACKs, fixed window, timeout
// retransmission (go-back-N), FIN teardown. Links neither lose nor reorder, so loss
// handling exists for correctness (ring overflow) rather than congestion control.
#ifndef EXO_NET_TCP_H_
#define EXO_NET_TCP_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "sim/cost_model.h"
#include "sim/status.h"
#include "sim/cpu_meter.h"
#include "sim/engine.h"
#include "trace/trace.h"

namespace exo::net {

// Per-configuration cost profile: what one segment costs on this stack.
struct TcpProfile {
  sim::Cycles tx_fixed = 300;   // per-segment send-path overhead (syscalls, driver)
  sim::Cycles rx_fixed = 300;   // per-segment receive-path overhead
  double tx_copies = 1.0;       // CPU copies of the payload on the send path
  double rx_copies = 1.0;       // CPU copies on the receive path
  bool checksum_tx = true;      // compute checksum on send (off when precomputed)
  bool checksum_rx = true;      // verify checksum on receive
  bool piggyback_ack = false;   // Cheetah: delay ACKs to merge them into responses
  bool zero_copy_tx = false;    // retransmit pool IS the file cache (no tx copy)
  bool pcb_reuse = false;       // recycle protocol control blocks
  sim::Cycles pcb_alloc = 700;  // fresh control-block setup
  sim::Cycles pcb_reuse_cost = 90;
  sim::Cycles delayed_ack_timeout_us = 2000;
  sim::Cycles rto_us = 50'000;
  uint32_t window_bytes = 48 * 1024;
};

struct TcpStats {
  uint64_t segments_out = 0;
  uint64_t segments_in = 0;
  uint64_t bytes_out = 0;
  uint64_t bytes_in = 0;
  uint64_t retransmits = 0;
  uint64_t checksum_drops = 0;  // received segments discarded for bad payload checksum
  uint64_t pure_acks_out = 0;
  uint64_t piggybacked_acks = 0;
  uint64_t conns_opened = 0;
  uint64_t pcb_reused = 0;
};

class TcpStack;

class TcpConn {
 public:
  enum class State : uint8_t {
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait,
    kCloseWait,
    kLastAck,
    kClosed,
  };

  // Queues payload; segments drain as window opens. With `precomputed_checksums`
  // (one per MSS segment) the stack skips checksum computation (Cheetah). With the
  // zero-copy profile the data must stay stable until acked (it lives in the file
  // cache, which doubles as the retransmission pool).
  void Send(std::span<const uint8_t> data,
            std::span<const uint32_t> precomputed_checksums = {});
  // Half-close after all queued data is acknowledged.
  void Close();

  void set_on_data(std::function<void(TcpConn*, std::span<const uint8_t>)> cb) {
    on_data_ = std::move(cb);
  }
  void set_on_close(std::function<void(TcpConn*)> cb) { on_close_ = std::move(cb); }
  void set_on_send_complete(std::function<void(TcpConn*)> cb) {
    on_send_complete_ = std::move(cb);
  }

  State state() const { return state_; }
  IpAddr peer_ip() const { return peer_ip_; }
  Port peer_port() const { return peer_port_; }
  uint64_t user_data = 0;  // application scratch (request state machines)

 private:
  friend class TcpStack;
  struct PendingSegment {
    std::vector<uint8_t> owned;          // copy (normal path)
    std::span<const uint8_t> stable;     // zero-copy path
    uint32_t checksum = 0;
    uint32_t seq = 0;
    bool fin = false;
    bool syn = false;  // handshake segments occupy sequence space and retransmit too
    sim::Cycles sent_at = 0;    // first transmission time (RTT sampling)
    bool retransmitted = false;  // Karn's rule: no RTT sample from retransmits
    std::span<const uint8_t> bytes() const {
      return owned.empty() ? stable : std::span<const uint8_t>(owned);
    }
  };

  TcpStack* stack_ = nullptr;
  IpAddr peer_ip_ = 0;
  Port peer_port_ = 0;
  Port local_port_ = 0;
  State state_ = State::kClosed;

  uint32_t snd_next_ = 0;  // next seq to assign
  uint32_t snd_una_ = 0;   // oldest unacked
  uint32_t rcv_next_ = 0;
  std::deque<PendingSegment> unacked_;   // sent, awaiting ack
  std::deque<PendingSegment> send_queue_;  // not yet sent (window closed)
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool close_delivered_ = false;
  bool ack_pending_ = false;
  sim::Engine::EventId ack_timer_ = 0;
  sim::Engine::EventId rto_timer_ = 0;

  std::function<void(TcpConn*, std::span<const uint8_t>)> on_data_;
  std::function<void(TcpConn*)> on_close_;
  std::function<void(TcpConn*)> on_send_complete_;
  std::function<void(TcpConn*)> on_established_;
};

class TcpStack {
 public:
  struct Hooks {
    sim::Engine* engine = nullptr;
    const sim::CostModel* cost = nullptr;
    sim::CpuMeter* cpu = nullptr;  // nullptr => infinitely fast (load generators)
    // Hands a frame to the NIC path at simulated time `when`.
    std::function<void(hw::Packet, sim::Cycles when)> transmit;
  };

  TcpStack(const Hooks& hooks, IpAddr ip, const TcpProfile& profile);
  ~TcpStack();

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  // Accept callback fires when a connection completes the handshake.
  Status Listen(Port port, std::function<void(TcpConn*)> on_accept);
  TcpConn* Connect(IpAddr dst_ip, Port dst_port,
                   std::function<void(TcpConn*)> on_established);

  // Feed a received frame (from the NIC receive handler or a packet ring drain).
  void Input(const hw::Packet& p);

  // Releases a fully closed connection (returns its PCB to the pool).
  void Release(TcpConn* conn);

  const TcpStats& stats() const { return stats_; }
  IpAddr ip() const { return ip_; }
  const TcpProfile& profile() const { return profile_; }

  // Attaches a tracer; segment tx/rx/retransmit land as `net` instants on
  // `track`, and acks of never-retransmitted data segments feed the
  // "tcp.rtt_cycles" histogram.
  void SetTracer(trace::Tracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
    rtt_hist_ = tracer != nullptr ? tracer->Histogram("tcp.rtt_cycles") : nullptr;
  }

 private:
  friend class TcpConn;
  using ConnKey = uint64_t;
  static ConnKey Key(IpAddr ip, Port remote, Port local) {
    return (static_cast<uint64_t>(ip) << 32) | (static_cast<uint64_t>(remote) << 16) | local;
  }

  sim::Cycles Occupy(sim::Cycles cost) {
    return hooks_.cpu != nullptr ? hooks_.cpu->Occupy(cost) : hooks_.engine->now();
  }

  TcpConn* NewConn();
  // Returns the simulated time the frame reaches the wire (CPU completion).
  sim::Cycles Emit(TcpConn* c, uint8_t flags, uint32_t seq, std::span<const uint8_t> payload,
                   uint32_t checksum, bool charge_checksum, bool charge_copy);
  void SendPureAck(TcpConn* c);
  void ScheduleDelayedAck(TcpConn* c);
  void PumpSendQueue(TcpConn* c);
  void ArmRto(TcpConn* c);
  void OnRto(TcpConn* c);
  void ProcessSegment(TcpSegment seg);
  void DeliverClose(TcpConn* c);
  void AutoRelease(TcpConn* c);

  Hooks hooks_;
  IpAddr ip_;
  TcpProfile profile_;
  std::map<Port, std::function<void(TcpConn*)>> listeners_;
  std::map<ConnKey, std::unique_ptr<TcpConn>> conns_;
  std::vector<std::unique_ptr<TcpConn>> pcb_pool_;
  std::unique_ptr<TcpConn> tmp_;  // freshly built PCB awaiting keying into conns_
  Port next_ephemeral_ = 20000;
  TcpStats stats_;
  trace::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
  trace::LatencyHistogram* rtt_hist_ = nullptr;
};

}  // namespace exo::net

#endif  // EXO_NET_TCP_H_
