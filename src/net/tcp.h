// A TCP implementation designed to run in any protection regime (Sec. 5.2.1, 7.3).
//
// The same engine serves four configurations, differing only in their cost profile
// and option flags:
//   - ExOS user-level sockets on Xok (per-segment syscall to transmit, one payload
//     copy, packet-ring receive),
//   - in-kernel BSD sockets (per-operation syscall + user/kernel copies),
//   - the XIO-based server path (PCB reuse, application-cached file pointers),
//   - Cheetah's extended path: transmit directly from the file cache with
//     precomputed checksums (merged file cache and retransmission pool — data is
//     never copied and never touched by the CPU), and knowledge-based packet
//     merging (delay the ACK on a request because the response will piggy-back it).
//
// Protocol scope: 3-way handshake, cumulative ACKs, fixed window, timeout
// retransmission (go-back-N), FIN teardown, RST aborts. Loss recovery is adaptive:
// RTT samples (Karn-filtered — retransmitted segments never contribute) feed a
// Jacobson SRTT/RTTVAR estimator, consecutive timeouts back off exponentially with
// deterministic seeded jitter, and a connection that exhausts its retransmission
// budget is aborted (RST) and reaped so sustained loss can never leak PCBs.
#ifndef EXO_NET_TCP_H_
#define EXO_NET_TCP_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/cost_model.h"
#include "sim/status.h"
#include "sim/cpu_meter.h"
#include "sim/engine.h"
#include "sim/rng.h"
#include "trace/trace.h"

namespace exo::net {

// Per-configuration cost profile: what one segment costs on this stack.
struct TcpProfile {
  sim::Cycles tx_fixed = 300;   // per-segment send-path overhead (syscalls, driver)
  sim::Cycles rx_fixed = 300;   // per-segment receive-path overhead
  double tx_copies = 1.0;       // CPU copies of the payload on the send path
  double rx_copies = 1.0;       // CPU copies on the receive path
  bool checksum_tx = true;      // compute checksum on send (off when precomputed)
  bool checksum_rx = true;      // verify checksum on receive
  bool piggyback_ack = false;   // Cheetah: delay ACKs to merge them into responses
  bool zero_copy_tx = false;    // retransmit pool IS the file cache (no tx copy)
  bool pcb_reuse = false;       // recycle protocol control blocks
  sim::Cycles pcb_alloc = 700;  // fresh control-block setup
  sim::Cycles pcb_reuse_cost = 90;
  sim::Cycles delayed_ack_timeout_us = 2000;

  // ---- Retransmission timer ----
  // `rto_us` is the *initial* retransmission timeout. With `adaptive_rto` (the
  // default) it is used only until the first RTT sample lands; from then on the
  // timer follows Jacobson's estimator, RTO = SRTT + max(4*RTTVAR, 1us), clamped
  // to [rto_min_us, rto_max_us]. Consecutive timeouts on the same connection
  // double the timer (exponential backoff, capped at rto_max_us) and add a
  // deterministic jitter in [0, RTO/8] drawn from a per-stack Rng seeded with
  // `rto_jitter_seed` — two runs with the same seed retransmit at identical
  // times. With `adaptive_rto = false` the timer is the fixed `rto_us` with no
  // estimator, no backoff, and no jitter draws: exactly the pre-adaptive
  // behavior, so historical goldens (fig3) reproduce bit-identically.
  sim::Cycles rto_us = 50'000;
  bool adaptive_rto = true;
  sim::Cycles rto_min_us = 5'000;
  sim::Cycles rto_max_us = 4'000'000;
  uint64_t rto_jitter_seed = 0x5eed;
  // Consecutive timeouts on one connection before it is aborted: an RST is
  // emitted (except from kSynSent, where the peer never spoke), the close
  // callback fires with aborted() set, and the PCB is reaped. 0 = retry forever
  // (the pre-abort behavior).
  uint32_t max_retransmits = 8;
  // A connection that sent its FIN (kFinWait) but whose peer goes silent is
  // force-closed after this long — the TIME_WAIT-style reaper that keeps
  // half-closed PCBs from leaking when the peer dies. 0 disables.
  sim::Cycles fin_wait_timeout_us = 1'000'000;
  // A kSynRcvd connection whose handshake never completes is aborted after this
  // long, independent of the retransmission budget (which can take seconds to
  // exhaust under backoff). 0 disables — the default, preserving the historical
  // RTO-only half-open reaping.
  sim::Cycles half_open_timeout_us = 0;

  uint32_t window_bytes = 48 * 1024;
};

struct TcpStats {
  uint64_t segments_out = 0;
  uint64_t segments_in = 0;
  uint64_t bytes_out = 0;
  uint64_t bytes_in = 0;
  uint64_t retransmits = 0;
  uint64_t checksum_drops = 0;  // received segments discarded for bad payload checksum
  uint64_t pure_acks_out = 0;
  uint64_t piggybacked_acks = 0;
  uint64_t conns_opened = 0;
  uint64_t pcb_reused = 0;
  // ---- Robustness ----
  uint64_t rto_aborts = 0;        // connections aborted after max_retransmits
  uint64_t rsts_out = 0;          // RST segments emitted (aborts)
  uint64_t rsts_in = 0;           // RST segments received (peer aborts)
  uint64_t syns_shed = 0;         // SYNs dropped by a full listen backlog
  uint64_t half_open_reaped = 0;  // kSynRcvd conns aborted (handshake never done)
  uint64_t fin_wait_reaped = 0;   // kFinWait conns force-closed (peer went silent)
};

class TcpStack;

class TcpConn {
 public:
  enum class State : uint8_t {
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait,
    kCloseWait,
    kLastAck,
    kClosed,
  };

  // Queues payload; segments drain as window opens. With `precomputed_checksums`
  // (one per MSS segment) the stack skips checksum computation (Cheetah). With the
  // zero-copy profile the data must stay stable until acked (it lives in the file
  // cache, which doubles as the retransmission pool).
  void Send(std::span<const uint8_t> data,
            std::span<const uint32_t> precomputed_checksums = {});
  // Batched header+body transmission in one segment (Cheetah's HTML-aware
  // gather): `header` is copied into the segment, `body` rides zero-copy from
  // the file cache, and `checksum` covers the concatenation (combine the
  // rendered header's sum with the file's stored body sum via ChecksumCombine —
  // valid because the header is padded to even length). Falls back to two plain
  // Sends when header+body exceed one MSS.
  void SendGather(std::span<const uint8_t> header, std::span<const uint8_t> body,
                  uint32_t checksum);
  // Half-close after all queued data is acknowledged.
  void Close();

  void set_on_data(std::function<void(TcpConn*, std::span<const uint8_t>)> cb) {
    on_data_ = std::move(cb);
  }
  void set_on_close(std::function<void(TcpConn*)> cb) { on_close_ = std::move(cb); }
  void set_on_send_complete(std::function<void(TcpConn*)> cb) {
    on_send_complete_ = std::move(cb);
  }

  State state() const { return state_; }
  IpAddr peer_ip() const { return peer_ip_; }
  Port peer_port() const { return peer_port_; }
  // True once the connection was torn down abnormally (retry exhaustion, an
  // incoming RST, a reap timeout, or an application Abort) rather than by the
  // FIN handshake. Valid inside and after the on_close callback.
  bool aborted() const { return aborted_; }
  // Timer introspection (tests, observability). srtt/rttvar are 0 until the
  // first un-retransmitted segment is acknowledged (Karn's rule).
  sim::Cycles srtt() const { return srtt_; }
  sim::Cycles rttvar() const { return rttvar_; }
  uint32_t rto_backoff() const { return backoff_; }
  uint64_t user_data = 0;  // application scratch (request state machines)

 private:
  friend class TcpStack;
  struct PendingSegment {
    // Payload = owned ‖ stable. Plain sends fill exactly one of the two; a
    // gather send owns the copied header in `owned` and references the
    // file-cache body through `stable`.
    std::vector<uint8_t> owned;          // copy (normal path / gather header)
    std::span<const uint8_t> stable;     // zero-copy path
    uint32_t checksum = 0;
    uint32_t seq = 0;
    bool fin = false;
    bool syn = false;  // handshake segments occupy sequence space and retransmit too
    sim::Cycles sent_at = 0;    // first transmission time (RTT sampling)
    bool retransmitted = false;  // Karn's rule: no RTT sample from retransmits
    size_t size() const { return owned.size() + stable.size(); }
    std::span<const uint8_t> head() const {
      return owned.empty() ? stable : std::span<const uint8_t>(owned);
    }
    std::span<const uint8_t> tail() const {
      return owned.empty() ? std::span<const uint8_t>() : stable;
    }
  };

  TcpStack* stack_ = nullptr;
  IpAddr peer_ip_ = 0;
  Port peer_port_ = 0;
  Port local_port_ = 0;
  State state_ = State::kClosed;

  uint32_t snd_next_ = 0;  // next seq to assign
  uint32_t snd_una_ = 0;   // oldest unacked
  uint32_t rcv_next_ = 0;
  std::deque<PendingSegment> unacked_;   // sent, awaiting ack
  std::deque<PendingSegment> send_queue_;  // not yet sent (window closed)
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool close_delivered_ = false;
  bool ack_pending_ = false;
  bool aborted_ = false;
  bool half_open_counted_ = false;  // contributes to the listener's backlog count
  sim::Cycles srtt_ = 0;
  sim::Cycles rttvar_ = 0;
  bool rtt_valid_ = false;
  uint32_t backoff_ = 0;  // consecutive timeouts since the last forward progress
  sim::Engine::EventId ack_timer_ = 0;
  sim::Engine::EventId rto_timer_ = 0;
  // Nonzero while this connection sits in the stack's reap-deadline index
  // (kFinWait silent-peer / kSynRcvd handshake timeout); the value is the
  // absolute deadline, which is also the entry's key in the index.
  sim::Cycles reap_deadline_ = 0;

  std::function<void(TcpConn*, std::span<const uint8_t>)> on_data_;
  std::function<void(TcpConn*)> on_close_;
  std::function<void(TcpConn*)> on_send_complete_;
  std::function<void(TcpConn*)> on_established_;
};

class TcpStack {
 public:
  struct Hooks {
    sim::Engine* engine = nullptr;
    const sim::CostModel* cost = nullptr;
    sim::CpuMeter* cpu = nullptr;  // nullptr => infinitely fast (load generators)
    // Hands a frame to the NIC path at simulated time `when`.
    std::function<void(hw::Packet, sim::Cycles when)> transmit;
  };

  TcpStack(const Hooks& hooks, IpAddr ip, const TcpProfile& profile);
  ~TcpStack();

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  // Accept callback fires when a connection completes the handshake. `backlog`
  // bounds the number of half-open (kSynRcvd) connections on this port: past it,
  // incoming SYNs are shed (dropped without allocating a PCB — the SYN-flood
  // defense; the peer's own retry/abort machinery handles the silence).
  // 0 = unbounded.
  Status Listen(Port port, std::function<void(TcpConn*)> on_accept,
                uint32_t backlog = 0);
  TcpConn* Connect(IpAddr dst_ip, Port dst_port,
                   std::function<void(TcpConn*)> on_established);

  // Feed a received frame (from the NIC receive handler or a packet ring drain).
  // Returns the simulated time the stack is done with the frame (receive-path CPU
  // completion) so callers managing bounded receive rings know when the slot frees.
  sim::Cycles Input(const hw::Packet& p);

  // Application-initiated abort: emits an RST, fires on_close with aborted() set,
  // and reaps the PCB (servers use this to shed connections that blew a deadline).
  void Abort(TcpConn* conn);

  // Releases a fully closed connection (returns its PCB to the pool).
  void Release(TcpConn* conn);

  // Machine-death teardown: every PCB, listener, and timer vanishes at once,
  // the way volatile memory does. No RSTs go out and no on_close callbacks
  // fire — the host is dead, not closing — so peers discover the loss only by
  // timeout, exactly as on real hardware. The stack object stays valid as an
  // empty zombie: engine events already scheduled against it (delayed acks,
  // RTOs, reap sweeps) look up their connection by key, find nothing, and
  // no-op. Used by the cluster machine-kill path; a reboot builds a fresh
  // stack rather than reviving this one.
  void Shutdown();

  const TcpStats& stats() const { return stats_; }
  IpAddr ip() const { return ip_; }
  const TcpProfile& profile() const { return profile_; }

  // ---- Introspection (soak invariants, tests) ----
  size_t conn_count() const { return conns_.size(); }
  size_t peak_conn_count() const { return peak_conns_; }  // high-water of conn_count
  size_t reap_index_size() const { return reap_deadlines_.size(); }
  uint32_t half_open_count(Port port) const {
    auto it = half_open_.find(port);
    return it == half_open_.end() ? 0 : it->second;
  }
  // Audits every connection: cumulative-ACK monotonicity (snd_una never passes
  // snd_next), in-flight data within the window, retransmission-queue seq
  // continuity, timers armed iff work is outstanding, and half-open accounting.
  // Returns "" when all invariants hold, else a description of the violation.
  std::string CheckInvariants() const;
  // One line per live connection ("peer:port state=N unacked=K queued=K"), for
  // leak triage in soak-test failure messages.
  std::string DebugConnStates() const;

  // Attaches a tracer; segment tx/rx/retransmit land as `net` instants on
  // `track`, and acks of never-retransmitted data segments feed the
  // "tcp.rtt_cycles" histogram.
  void SetTracer(trace::Tracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
    rtt_hist_ = tracer != nullptr ? tracer->Histogram("tcp.rtt_cycles") : nullptr;
  }

 private:
  friend class TcpConn;
  using ConnKey = uint64_t;
  static ConnKey Key(IpAddr ip, Port remote, Port local) {
    return (static_cast<uint64_t>(ip) << 32) | (static_cast<uint64_t>(remote) << 16) | local;
  }

  struct Listener {
    std::function<void(TcpConn*)> on_accept;
    uint32_t backlog = 0;  // max half-open connections; 0 = unbounded
  };

  sim::Cycles Occupy(sim::Cycles cost) {
    return hooks_.cpu != nullptr ? hooks_.cpu->Occupy(cost) : hooks_.engine->now();
  }

  TcpConn* NewConn();
  // Returns the simulated time the frame reaches the wire (CPU completion).
  // `tail` extends the payload within the same frame (gather transmission).
  sim::Cycles Emit(TcpConn* c, uint8_t flags, uint32_t seq, std::span<const uint8_t> payload,
                   uint32_t checksum, bool charge_checksum, bool charge_copy,
                   std::span<const uint8_t> tail = {});
  void SendPureAck(TcpConn* c);
  void ScheduleDelayedAck(TcpConn* c);
  void PumpSendQueue(TcpConn* c);
  // Current retransmission timeout for this connection, in cycles. Fixed rto_us
  // when adaptive_rto is off; otherwise Jacobson + clamp + backoff + jitter.
  sim::Cycles RtoCycles(TcpConn* c);
  void ArmRto(TcpConn* c);
  void OnRto(TcpConn* c);
  void ArmFinWaitReaper(TcpConn* c);
  void ArmHalfOpenReaper(TcpConn* c);
  // Deadline-ordered reap index (mirrors the kernel's revocation deadline set):
  // one engine timer armed for the earliest deadline replaces a timer per
  // connection — O(log n) arm/cancel and no timer storm at fleet scale.
  void AddReapDeadline(TcpConn* c, sim::Cycles deadline);
  void CancelReapDeadline(TcpConn* c);
  void ArmReapTimer();
  void OnReapTimer();
  // Abnormal teardown: cancel timers, optionally emit an RST, fire on_close with
  // aborted() set, release the PCB. `trace_name` labels the `net` trace instant.
  void AbortConn(TcpConn* c, bool send_rst, const char* trace_name);
  void DropHalfOpen(TcpConn* c);  // backlog bookkeeping for kSynRcvd conns
  void ProcessSegment(TcpSegment seg);
  void UpdateRtt(TcpConn* c, sim::Cycles sample);
  void DeliverClose(TcpConn* c);
  void AutoRelease(TcpConn* c);

  Hooks hooks_;
  IpAddr ip_;
  TcpProfile profile_;
  // Hashed demux tables: segment dispatch and listen-side SYN dispatch are one
  // hash probe each, independent of how many connections or listeners exist.
  std::unordered_map<Port, Listener> listeners_;
  std::unordered_map<Port, uint32_t> half_open_;  // per-listener kSynRcvd population
  std::unordered_map<ConnKey, std::unique_ptr<TcpConn>> conns_;
  std::vector<std::unique_ptr<TcpConn>> pcb_pool_;
  std::unique_ptr<TcpConn> tmp_;  // freshly built PCB awaiting keying into conns_
  Port next_ephemeral_ = 20000;
  size_t peak_conns_ = 0;
  // Connections awaiting a reap deadline, ordered so the single timer always
  // watches the earliest. Cancellation just erases the entry; a timer armed for
  // a now-cancelled deadline fires, finds nothing due, and re-arms.
  std::set<std::pair<sim::Cycles, ConnKey>> reap_deadlines_;
  sim::Engine::EventId reap_timer_event_ = 0;
  sim::Cycles reap_timer_deadline_ = 0;  // deadline the armed timer targets
  TcpStats stats_;
  sim::Rng jitter_rng_;  // drawn only when arming a backed-off retransmission
  trace::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
  trace::LatencyHistogram* rtt_hist_ = nullptr;
};

}  // namespace exo::net

#endif  // EXO_NET_TCP_H_
