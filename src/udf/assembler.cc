#include "udf/assembler.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <optional>
#include <vector>

namespace exo::udf {

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ';') {
      break;
    }
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

std::optional<uint8_t> ParseReg(const std::string& t) {
  if (t.size() < 2 || t.size() > 3 || (t[0] != 'r' && t[0] != 'R')) {
    return std::nullopt;
  }
  int v = 0;
  for (size_t i = 1; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
      return std::nullopt;
    }
    v = v * 10 + (t[i] - '0');
  }
  if (v >= kNumRegs) {
    return std::nullopt;
  }
  return static_cast<uint8_t>(v);
}

std::optional<int64_t> ParseImm(const std::string& t) {
  if (t.empty()) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(t.c_str(), &end, 0);
  if (end != t.c_str() + t.size() || errno != 0) {
    return std::nullopt;
  }
  if (v < INT32_MIN || v > INT32_MAX) {
    return std::nullopt;
  }
  return v;
}

std::optional<uint8_t> ParseBuf(const std::string& t) {
  if (t == "meta") {
    return kBufMeta;
  }
  if (t == "aux") {
    return kBufAux;
  }
  if (t == "cred") {
    return kBufCred;
  }
  return std::nullopt;
}

struct PendingBranch {
  size_t insn_index;
  std::string label;
  int line;
};

}  // namespace

AssembleResult Assemble(std::string_view source) {
  AssembleResult res;
  std::map<std::string, size_t> labels;
  std::vector<PendingBranch> fixups;

  auto fail = [&](int line, const std::string& msg) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "line %d: %s", line, msg.c_str());
    res.ok = false;
    res.error = buf;
    return res;
  };

  static const std::map<std::string, Op> kThreeReg = {
      {"add", Op::kAdd}, {"sub", Op::kSub}, {"mul", Op::kMul},   {"divu", Op::kDivu},
      {"remu", Op::kRemu}, {"and", Op::kAnd}, {"or", Op::kOr},   {"xor", Op::kXor},
      {"shl", Op::kShl}, {"shr", Op::kShr}, {"ceq", Op::kCeq},   {"clt", Op::kClt},
      {"cle", Op::kCle}};
  static const std::map<std::string, Op> kLoads = {
      {"ld1", Op::kLd1}, {"ld2", Op::kLd2}, {"ld4", Op::kLd4}, {"ld8", Op::kLd8}};

  int line_no = 0;
  size_t pos = 0;
  while (pos <= source.size()) {
    size_t nl = source.find('\n', pos);
    std::string_view line =
        source.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
    ++line_no;

    auto toks = Tokenize(line);
    if (toks.empty()) {
      continue;
    }

    // Label definition(s) may prefix an instruction on the same line.
    while (!toks.empty() && toks[0].back() == ':') {
      std::string name = toks[0].substr(0, toks[0].size() - 1);
      if (name.empty() || labels.count(name) != 0) {
        return fail(line_no, "bad or duplicate label '" + toks[0] + "'");
      }
      labels[name] = res.program.size();
      toks.erase(toks.begin());
    }
    if (toks.empty()) {
      continue;
    }

    const std::string& mn = toks[0];
    Insn in{};

    auto need = [&](size_t n) { return toks.size() == n + 1; };
    auto reg = [&](size_t i) { return ParseReg(toks[i]); };

    if (auto it = kThreeReg.find(mn); it != kThreeReg.end()) {
      if (!need(3)) {
        return fail(line_no, mn + " needs rd, rs, rt");
      }
      auto rd = reg(1);
      auto rs = reg(2);
      auto rt = reg(3);
      if (!rd || !rs || !rt) {
        return fail(line_no, "bad register");
      }
      in = {it->second, *rd, *rs, *rt, 0};
    } else if (auto lit = kLoads.find(mn); lit != kLoads.end()) {
      if (!need(4)) {
        return fail(line_no, mn + " needs rd, rs, imm, buffer");
      }
      auto rd = reg(1);
      auto rs = reg(2);
      auto imm = ParseImm(toks[3]);
      auto buf = ParseBuf(toks[4]);
      if (!rd || !rs || !imm || !buf) {
        return fail(line_no, "bad load operands");
      }
      in = {lit->second, *rd, *rs, *buf, static_cast<int32_t>(*imm)};
    } else if (mn == "ldi") {
      if (!need(2)) {
        return fail(line_no, "ldi needs rd, imm");
      }
      auto rd = reg(1);
      auto imm = ParseImm(toks[2]);
      if (!rd || !imm) {
        return fail(line_no, "bad ldi operands");
      }
      in = {Op::kLdi, *rd, 0, 0, static_cast<int32_t>(*imm)};
    } else if (mn == "addi") {
      if (!need(3)) {
        return fail(line_no, "addi needs rd, rs, imm");
      }
      auto rd = reg(1);
      auto rs = reg(2);
      auto imm = ParseImm(toks[3]);
      if (!rd || !rs || !imm) {
        return fail(line_no, "bad addi operands");
      }
      in = {Op::kAddi, *rd, *rs, 0, static_cast<int32_t>(*imm)};
    } else if (mn == "mov") {
      if (!need(2)) {
        return fail(line_no, "mov needs rd, rs");
      }
      auto rd = reg(1);
      auto rs = reg(2);
      if (!rd || !rs) {
        return fail(line_no, "bad mov operands");
      }
      in = {Op::kMov, *rd, *rs, 0, 0};
    } else if (mn == "len") {
      if (!need(2)) {
        return fail(line_no, "len needs rd, buffer");
      }
      auto rd = reg(1);
      auto buf = ParseBuf(toks[2]);
      if (!rd || !buf) {
        return fail(line_no, "bad len operands");
      }
      in = {Op::kLen, *rd, 0, 0, *buf};
    } else if (mn == "bz" || mn == "bnz") {
      if (!need(2)) {
        return fail(line_no, mn + " needs rs, label");
      }
      auto rs = reg(1);
      if (!rs) {
        return fail(line_no, "bad register");
      }
      in = {mn == "bz" ? Op::kBz : Op::kBnz, 0, *rs, 0, 0};
      fixups.push_back({res.program.size(), toks[2], line_no});
    } else if (mn == "jmp") {
      if (!need(1)) {
        return fail(line_no, "jmp needs label");
      }
      in = {Op::kJmp, 0, 0, 0, 0};
      fixups.push_back({res.program.size(), toks[1], line_no});
    } else if (mn == "emit") {
      if (!need(3)) {
        return fail(line_no, "emit needs rstart, rcount, rtype");
      }
      auto rs = reg(1);
      auto rt = reg(2);
      auto rd = reg(3);
      if (!rs || !rt || !rd) {
        return fail(line_no, "bad emit operands");
      }
      in = {Op::kEmit, *rd, *rs, *rt, 0};
    } else if (mn == "ret") {
      if (!need(1)) {
        return fail(line_no, "ret needs rs");
      }
      auto rs = reg(1);
      if (!rs) {
        return fail(line_no, "bad register");
      }
      in = {Op::kRet, 0, *rs, 0, 0};
    } else if (mn == "time") {
      if (!need(1)) {
        return fail(line_no, "time needs rd");
      }
      auto rd = reg(1);
      if (!rd) {
        return fail(line_no, "bad register");
      }
      in = {Op::kTime, *rd, 0, 0, 0};
    } else {
      return fail(line_no, "unknown mnemonic '" + mn + "'");
    }

    res.program.push_back(in);
  }

  for (const auto& fx : fixups) {
    auto it = labels.find(fx.label);
    if (it == labels.end()) {
      return fail(fx.line, "undefined label '" + fx.label + "'");
    }
    res.program[fx.insn_index].imm =
        static_cast<int32_t>(static_cast<int64_t>(it->second) -
                             static_cast<int64_t>(fx.insn_index) - 1);
  }

  res.ok = true;
  return res;
}

}  // namespace exo::udf
