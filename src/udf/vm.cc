#include "udf/vm.h"

#include <cstring>

namespace exo::udf {

namespace {

bool LoadLE(std::span<const uint8_t> buf, uint64_t addr, unsigned width, uint64_t* out) {
  if (addr + width > buf.size() || addr + width < addr) {
    return false;
  }
  uint64_t v = 0;
  std::memcpy(&v, buf.data() + addr, width);  // little-endian host assumed (x86/ARM64)
  *out = v;
  return true;
}

}  // namespace

RunOutput Run(const Program& program, const RunInput& input) {
  RunOutput out;
  uint64_t r[kNumRegs] = {};
  size_t pc = 0;

  auto fault = [&](const char* why) {
    out.ok = false;
    out.fault = why;
    return out;
  };

  while (out.insns < input.fuel) {
    if (pc >= program.size()) {
      return fault("fell off end of program");
    }
    const Insn& in = program[pc];
    ++out.insns;
    ++pc;

    switch (in.op) {
      case Op::kLdi:
        r[in.rd] = static_cast<uint64_t>(static_cast<int64_t>(in.imm));
        break;
      case Op::kMov:
        r[in.rd] = r[in.rs];
        break;
      case Op::kAdd:
        r[in.rd] = r[in.rs] + r[in.rt];
        break;
      case Op::kSub:
        r[in.rd] = r[in.rs] - r[in.rt];
        break;
      case Op::kMul:
        r[in.rd] = r[in.rs] * r[in.rt];
        break;
      case Op::kDivu:
        if (r[in.rt] == 0) {
          return fault("division by zero");
        }
        r[in.rd] = r[in.rs] / r[in.rt];
        break;
      case Op::kRemu:
        if (r[in.rt] == 0) {
          return fault("division by zero");
        }
        r[in.rd] = r[in.rs] % r[in.rt];
        break;
      case Op::kAnd:
        r[in.rd] = r[in.rs] & r[in.rt];
        break;
      case Op::kOr:
        r[in.rd] = r[in.rs] | r[in.rt];
        break;
      case Op::kXor:
        r[in.rd] = r[in.rs] ^ r[in.rt];
        break;
      case Op::kShl:
        r[in.rd] = r[in.rs] << (r[in.rt] & 63);
        break;
      case Op::kShr:
        r[in.rd] = r[in.rs] >> (r[in.rt] & 63);
        break;
      case Op::kAddi:
        r[in.rd] = r[in.rs] + static_cast<uint64_t>(static_cast<int64_t>(in.imm));
        break;
      case Op::kLd1:
      case Op::kLd2:
      case Op::kLd4:
      case Op::kLd8: {
        const unsigned width = in.op == Op::kLd1   ? 1
                               : in.op == Op::kLd2 ? 2
                               : in.op == Op::kLd4 ? 4
                                                   : 8;
        const uint64_t addr = r[in.rs] + static_cast<uint64_t>(static_cast<int64_t>(in.imm));
        if (!LoadLE(input.buffers[in.rt], addr, width, &r[in.rd])) {
          return fault("load out of bounds");
        }
        break;
      }
      case Op::kLen:
        r[in.rd] = input.buffers[in.imm].size();
        break;
      case Op::kCeq:
        r[in.rd] = r[in.rs] == r[in.rt] ? 1 : 0;
        break;
      case Op::kClt:
        r[in.rd] = r[in.rs] < r[in.rt] ? 1 : 0;
        break;
      case Op::kCle:
        r[in.rd] = r[in.rs] <= r[in.rt] ? 1 : 0;
        break;
      case Op::kBz:
        if (r[in.rs] == 0) {
          pc = static_cast<size_t>(static_cast<int64_t>(pc) + in.imm);
        }
        break;
      case Op::kBnz:
        if (r[in.rs] != 0) {
          pc = static_cast<size_t>(static_cast<int64_t>(pc) + in.imm);
        }
        break;
      case Op::kJmp:
        pc = static_cast<size_t>(static_cast<int64_t>(pc) + in.imm);
        break;
      case Op::kEmit:
        out.emitted.push_back(Extent{static_cast<uint32_t>(r[in.rs]),
                                     static_cast<uint32_t>(r[in.rt]),
                                     static_cast<uint32_t>(r[in.rd])});
        break;
      case Op::kRet:
        out.ok = true;
        out.ret = r[in.rs];
        return out;
      case Op::kTime:
        if (!input.time) {
          return fault("time source unavailable");
        }
        r[in.rd] = input.time();
        break;
    }
  }
  return fault("fuel exhausted");
}

}  // namespace exo::udf
