#include "udf/verifier.h"

#include <cstdio>

namespace exo::udf {

namespace {

bool IsLoad(Op op) { return op == Op::kLd1 || op == Op::kLd2 || op == Op::kLd4 || op == Op::kLd8; }
bool IsBranch(Op op) { return op == Op::kBz || op == Op::kBnz || op == Op::kJmp; }

std::string Err(size_t pc, const char* what) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "insn %zu: %s", pc, what);
  return buf;
}

}  // namespace

VerifyResult Verify(const Program& program, Policy policy) {
  if (program.empty()) {
    return {false, "empty program"};
  }
  if (program.size() > kMaxProgramLength) {
    return {false, "program too long"};
  }

  bool has_ret = false;
  for (size_t pc = 0; pc < program.size(); ++pc) {
    const Insn& in = program[pc];
    if (static_cast<uint8_t>(in.op) > static_cast<uint8_t>(Op::kTime)) {
      return {false, Err(pc, "invalid opcode")};
    }
    if (in.rd >= kNumRegs || in.rs >= kNumRegs || in.rt >= kNumRegs) {
      return {false, Err(pc, "register index out of range")};
    }
    if (IsLoad(in.op) && in.rt >= kNumBuffers) {
      return {false, Err(pc, "buffer index out of range")};
    }
    if (in.op == Op::kLen && (in.imm < 0 || in.imm >= kNumBuffers)) {
      return {false, Err(pc, "buffer index out of range")};
    }
    if (IsBranch(in.op)) {
      // Target is relative to the instruction after the branch.
      const int64_t target = static_cast<int64_t>(pc) + 1 + in.imm;
      if (target < 0 || target > static_cast<int64_t>(program.size())) {
        return {false, Err(pc, "branch target out of bounds")};
      }
      if (policy == Policy::kNoLoops && in.imm < 0) {
        return {false, Err(pc, "backward branch forbidden by policy")};
      }
    }
    if (in.op == Op::kTime && policy != Policy::kAny) {
      return {false, Err(pc, "nondeterministic instruction forbidden by policy")};
    }
    has_ret |= in.op == Op::kRet;
  }

  if (!has_ret) {
    return {false, "program has no ret"};
  }
  return {true, {}};
}

}  // namespace exo::udf
