// Interpreter for verified downloaded code.
//
// Runtime faults (out-of-bounds loads, division by zero, fuel exhaustion, running off
// the end) are reported to the caller, which treats them as rejection: XN refuses the
// metadata operation, a wakeup predicate evaluates to "keep sleeping", a packet filter
// declines the packet. Faulting code can therefore never corrupt kernel state.
#ifndef EXO_UDF_VM_H_
#define EXO_UDF_VM_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "udf/insn.h"

namespace exo::udf {

struct RunInput {
  std::span<const uint8_t> buffers[kNumBuffers];
  // Clock source for kTime (only wired up for Policy::kAny code).
  std::function<uint64_t()> time;
  // Instruction budget; exceeding it is a fault. Bounds kernel time spent in
  // downloaded code even when the verifier permits loops.
  uint64_t fuel = 1 << 20;
};

struct RunOutput {
  bool ok = false;
  std::string fault;           // non-empty when !ok
  uint64_t ret = 0;            // value passed to kRet
  std::vector<Extent> emitted; // ownership tuples from kEmit, in emission order
  uint64_t insns = 0;          // instructions executed (callers charge CPU with this)
};

RunOutput Run(const Program& program, const RunInput& input);

}  // namespace exo::udf

#endif  // EXO_UDF_VM_H_
