// Static verifier for downloaded code.
//
// The kernel refuses to install code that fails verification. The policy differs by
// use (Sec. 4.1, Sec. 5.1):
//   - kDeterministic (owns-udf, packet filters): kTime is forbidden, so output depends
//     only on the input buffers. XN relies on this: "UDF determinism guarantees that
//     owns-udf will always compute the same output for a given input."
//   - kNoLoops (wakeup predicates): additionally, all control transfers must move
//     forward, so execution is bounded by program length with no runtime fuel needed.
//   - kAny (acl-uf, size-uf): may read the clock.
// All policies check structural well-formedness: valid opcodes, register indices,
// buffer indices, and in-bounds branch targets.
#ifndef EXO_UDF_VERIFIER_H_
#define EXO_UDF_VERIFIER_H_

#include <string>

#include "udf/insn.h"

namespace exo::udf {

enum class Policy {
  kAny,
  kDeterministic,
  kNoLoops,  // implies kDeterministic
};

struct VerifyResult {
  bool ok = false;
  std::string error;  // empty when ok
};

constexpr size_t kMaxProgramLength = 4096;

VerifyResult Verify(const Program& program, Policy policy);

}  // namespace exo::udf

#endif  // EXO_UDF_VERIFIER_H_
