// Tiny two-pass assembler for the UDF language.
//
// LibFS authors (and tests) write templates in a readable text form; the kernel only
// ever sees the assembled Program, which it independently verifies. Syntax, one
// instruction per line, ';' starts a comment, 'name:' defines a label:
//
//   ldi   rd, imm          mov  rd, rs          len  rd, meta|aux|cred
//   add|sub|mul|divu|remu|and|or|xor|shl|shr|ceq|clt|cle  rd, rs, rt
//   addi  rd, rs, imm
//   ld1|ld2|ld4|ld8  rd, rs, imm, meta|aux|cred     ; rd = buf[rs + imm]
//   bz|bnz  rs, label      jmp  label
//   emit  rstart, rcount, rtype
//   ret   rs               time rd
#ifndef EXO_UDF_ASSEMBLER_H_
#define EXO_UDF_ASSEMBLER_H_

#include <string>
#include <string_view>

#include "udf/insn.h"

namespace exo::udf {

struct AssembleResult {
  bool ok = false;
  std::string error;  // "line N: message" when !ok
  Program program;
};

AssembleResult Assemble(std::string_view source);

}  // namespace exo::udf

#endif  // EXO_UDF_ASSEMBLER_H_
