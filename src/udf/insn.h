// The UDF instruction set: a pseudo-RISC register machine for downloaded code.
//
// Section 4.1: "The limited language used to write these functions is a pseudo-RISC
// assembly language, checked by the kernel to ensure determinacy." One VM serves all
// three kinds of downloaded code in the system:
//   - XN metadata functions (owns-udf must be deterministic; acl-uf and size-uf may
//     read the clock),
//   - wakeup predicates (Sec. 5.1: no backward branches, so no loops),
//   - dynamic packet filters (read packet bytes, deterministic).
// Differences between the kinds are expressed as verifier policies (see verifier.h),
// not separate languages.
#ifndef EXO_UDF_INSN_H_
#define EXO_UDF_INSN_H_

#include <cstdint>
#include <vector>

namespace exo::udf {

enum class Op : uint8_t {
  kLdi,   // rd = imm (sign-extended 32-bit)
  kMov,   // rd = rs
  kAdd,   // rd = rs + rt
  kSub,   // rd = rs - rt
  kMul,   // rd = rs * rt
  kDivu,  // rd = rs / rt (rt == 0 faults)
  kRemu,  // rd = rs % rt (rt == 0 faults)
  kAnd,
  kOr,
  kXor,
  kShl,   // rd = rs << (rt & 63)
  kShr,   // rd = rs >> (rt & 63)
  kAddi,  // rd = rs + imm
  kLd1,   // rd = buffer[rt][rs + imm], zero-extended byte (rt field = buffer index)
  kLd2,   // 16-bit little-endian load
  kLd4,   // 32-bit
  kLd8,   // 64-bit
  kLen,   // rd = byte length of buffer[imm]
  kCeq,   // rd = (rs == rt)
  kClt,   // rd = (rs < rt), unsigned
  kCle,   // rd = (rs <= rt), unsigned
  kBz,    // if (rs == 0) pc += imm   (imm relative to next insn; may be negative)
  kBnz,   // if (rs != 0) pc += imm
  kJmp,   // pc += imm
  kEmit,  // append ownership tuple (start=rs, count=rt, type=rd) to the result set
  kRet,   // return rs and halt
  kTime,  // rd = current cycle count (nondeterministic; verifier may forbid)
};

// Buffer indices for load instructions. Which buffers are populated depends on the
// caller: XN passes metadata/modification/credentials; packet filters pass the packet.
constexpr uint8_t kBufMeta = 0;    // metadata bytes / packet bytes / predicate window
constexpr uint8_t kBufAux = 1;     // proposed modification (acl-uf)
constexpr uint8_t kBufCred = 2;    // credential bytes
constexpr uint8_t kNumBuffers = 3;

constexpr uint8_t kNumRegs = 16;

struct Insn {
  Op op;
  uint8_t rd = 0;
  uint8_t rs = 0;
  uint8_t rt = 0;
  int32_t imm = 0;
};

using Program = std::vector<Insn>;

// Ownership tuple emitted by owns-udf: a contiguous range of disk blocks and the
// template type that governs them (Sec. 4.1).
struct Extent {
  uint32_t start = 0;
  uint32_t count = 0;
  uint32_t type = 0;

  bool operator==(const Extent&) const = default;
  bool operator<(const Extent& o) const {
    if (start != o.start) {
      return start < o.start;
    }
    if (count != o.count) {
      return count < o.count;
    }
    return type < o.type;
  }
};

}  // namespace exo::udf

#endif  // EXO_UDF_INSN_H_
