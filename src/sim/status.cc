#include "sim/status.h"

namespace exo {

const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "OK";
    case Status::kPermissionDenied:
      return "PERMISSION_DENIED";
    case Status::kNotFound:
      return "NOT_FOUND";
    case Status::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Status::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::kOutOfResources:
      return "OUT_OF_RESOURCES";
    case Status::kWouldBlock:
      return "WOULD_BLOCK";
    case Status::kBusy:
      return "BUSY";
    case Status::kTainted:
      return "TAINTED";
    case Status::kBadMetadata:
      return "BAD_METADATA";
    case Status::kVerifierReject:
      return "VERIFIER_REJECT";
    case Status::kNotSupported:
      return "NOT_SUPPORTED";
    case Status::kIoError:
      return "IO_ERROR";
    case Status::kCrashed:
      return "CRASHED";
    case Status::kQuotaExceeded:
      return "QUOTA_EXCEEDED";
    case Status::kCorrupted:
      return "CORRUPTED";
  }
  return "UNKNOWN";
}

}  // namespace exo
