#include "sim/fault.h"

#include <cctype>
#include <cstdio>

namespace exo::sim {

namespace {
std::string Format(const char* fmt, uint64_t a, uint64_t b) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

// ---- Strict schedule tokenizer ----
//
// Grammar (shared by all three codecs): tokens separated by one or more spaces,
// each `kind@index` or `kind@index:arg`. Hand-parsed so overflow is an error,
// not a wrap; any malformed byte rejects the whole schedule.

struct SchedToken {
  char kind = 0;
  uint64_t index = 0;
  bool has_arg = false;
  uint64_t arg = 0;
};

bool ParseU64(const std::string& text, size_t* pos, uint64_t* out) {
  if (*pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[*pos]))) {
    return false;
  }
  uint64_t v = 0;
  while (*pos < text.size() && std::isdigit(static_cast<unsigned char>(text[*pos]))) {
    const uint64_t d = static_cast<uint64_t>(text[*pos] - '0');
    if (v > (UINT64_MAX - d) / 10) {
      return false;  // overflow
    }
    v = v * 10 + d;
    ++*pos;
  }
  *out = v;
  return true;
}

void SetError(std::string* error, size_t token, const std::string& why) {
  if (error != nullptr) {
    *error = "token " + std::to_string(token) + ": " + why;
  }
}

// `needs_arg` maps each allowed kind letter to whether :arg is mandatory
// (it is always forbidden otherwise).
bool TokenizeSchedule(const std::string& text, const std::string& allowed,
                      const std::string& needs_arg, std::vector<SchedToken>* out,
                      std::string* error) {
  size_t pos = 0;
  size_t token = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') {
      ++pos;
    }
    if (pos >= text.size()) {
      break;
    }
    ++token;
    SchedToken t;
    t.kind = text[pos];
    const size_t ki = allowed.find(t.kind);
    if (ki == std::string::npos) {
      SetError(error, token, std::string("unknown kind '") + t.kind + "'");
      return false;
    }
    ++pos;
    if (pos >= text.size() || text[pos] != '@') {
      SetError(error, token, "expected '@' after kind");
      return false;
    }
    ++pos;
    if (!ParseU64(text, &pos, &t.index)) {
      SetError(error, token, "bad or overflowing index");
      return false;
    }
    if (t.index == 0) {
      SetError(error, token, "index must be >= 1 (consultation indices are 1-based)");
      return false;
    }
    if (pos < text.size() && text[pos] == ':') {
      ++pos;
      if (!ParseU64(text, &pos, &t.arg)) {
        SetError(error, token, "bad or overflowing arg");
        return false;
      }
      t.has_arg = true;
    }
    if (pos < text.size() && text[pos] != ' ') {
      SetError(error, token, "trailing garbage in token");
      return false;
    }
    const bool want_arg = needs_arg[ki] == '1';
    if (want_arg && !t.has_arg) {
      SetError(error, token, std::string("kind '") + t.kind + "' requires :arg");
      return false;
    }
    if (!want_arg && t.has_arg) {
      SetError(error, token, std::string("kind '") + t.kind + "' forbids :arg");
      return false;
    }
    out->push_back(t);
  }
  return true;
}

// Rejects two events aimed at the same consultation index of the same stream:
// `stream_of` maps a kind letter to an arbitrary stream id; duplicates within
// one stream are ambiguous (the script map would silently last-win). Machine
// kinds key on (index, arg) instead of index alone: their index is a *time*,
// and two machines may legitimately die on the same cycle — only two events
// for the same machine at the same cycle are ambiguous.
bool CheckDuplicates(const std::vector<SchedToken>& tokens, int (*stream_of)(char),
                     std::string* error) {
  std::map<std::tuple<int, uint64_t, uint64_t>, size_t> seen;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const uint64_t sub = IsMachineFaultKind(tokens[i].kind) ? tokens[i].arg : 0;
    const auto key = std::make_tuple(stream_of(tokens[i].kind), tokens[i].index, sub);
    auto [it, inserted] = seen.emplace(key, i);
    if (!inserted) {
      SetError(error, i + 1,
               "duplicate index " + std::to_string(tokens[i].index) +
                   " (clashes with token " + std::to_string(it->second + 1) + ")");
      return false;
    }
  }
  return true;
}

int WireStream(char) { return 0; }
int DiskStream(char k) { return (k == 'w' || k == 'm') ? 1 : 2; }
// 'k' and 'b' share one stream so kill+reboot of one machine on one cycle —
// whose order would be ambiguous — is rejected as a duplicate.
int MachineStream(char) { return 3; }
int CombinedStream(char k) {
  if (IsWireFaultKind(k)) {
    return 0;
  }
  return IsMachineFaultKind(k) ? MachineStream(k) : DiskStream(k);
}

void AppendToken(std::string* out, char kind, uint64_t index, bool has_arg,
                 uint64_t arg) {
  if (!out->empty()) {
    *out += ' ';
  }
  char buf[64];
  if (has_arg) {
    std::snprintf(buf, sizeof(buf), "%c@%llu:%llu", kind,
                  static_cast<unsigned long long>(index),
                  static_cast<unsigned long long>(arg));
  } else {
    std::snprintf(buf, sizeof(buf), "%c@%llu", kind,
                  static_cast<unsigned long long>(index));
  }
  *out += buf;
}

bool KindCarriesArg(char k) {
  return k == 'c' || k == 'r' || k == 'm' || IsMachineFaultKind(k);
}
}  // namespace

void FaultInjector::AttachCounters(Counters* counters) {
  if (counters == nullptr) {
    counters_attached_ = false;
    c_disk_io_errors_ = c_power_cuts_ = c_lost_writes_ = c_misdirects_ = c_rot_ =
        c_latent_ = c_net_drops_ = c_net_corruptions_ = c_net_duplicates_ =
            c_machine_kills_ = c_machine_reboots_ = nullptr;
    return;
  }
  if (counters_attached_) {
    return;
  }
  counters_attached_ = true;
  c_disk_io_errors_ = counters->Handle("fault.disk_io_errors");
  c_power_cuts_ = counters->Handle("fault.power_cuts");
  c_lost_writes_ = counters->Handle("fault.disk_lost_writes");
  c_misdirects_ = counters->Handle("fault.disk_misdirects");
  c_rot_ = counters->Handle("fault.disk_rot");
  c_latent_ = counters->Handle("fault.disk_latent");
  c_net_drops_ = counters->Handle("fault.net_drops");
  c_net_corruptions_ = counters->Handle("fault.net_corruptions");
  c_net_duplicates_ = counters->Handle("fault.net_duplicates");
  c_machine_kills_ = counters->Handle("fault.machine_kills");
  c_machine_reboots_ = counters->Handle("fault.machine_reboots");
}

void FaultInjector::RecordMachine(const MachineEvent& e) {
  machine_events_.push_back(e);
  fault_events_.push_back(FaultEvent{e.kind, e.time, e.machine});
  if (e.kind == 'k') {
    ++stats_.machine_kills;
    Count(c_machine_kills_);
    Log(Format("machine-kill t=%llu m=%llu", e.time, e.machine));
    TraceFault("machine_kill", e.machine);
  } else {
    ++stats_.machine_reboots;
    Count(c_machine_reboots_);
    Log(Format("machine-reboot t=%llu m=%llu", e.time, e.machine));
    TraceFault("machine_reboot", e.machine);
  }
}

bool FaultInjector::NextDiskRequestFails(uint64_t start_block, uint32_t nblocks) {
  ++stats_.disk_requests_seen;
  if (plan_.disk_error_rate <= 0.0) {
    return false;
  }
  if (rng_.NextDouble() >= plan_.disk_error_rate) {
    return false;
  }
  ++stats_.disk_io_errors;
  Count(c_disk_io_errors_);
  Log(Format("disk-error block=%llu n=%llu", start_block, nblocks));
  TraceFault("disk_error", start_block);
  return true;
}

bool FaultInjector::OnBlockWritten(uint64_t block) {
  ++stats_.disk_blocks_written;
  if (plan_.power_cut_after_blocks == 0 ||
      stats_.disk_blocks_written != plan_.power_cut_after_blocks) {
    return false;
  }
  ++stats_.power_cuts;
  Count(c_power_cuts_);
  Log(Format("power-cut after-block=%llu writes=%llu", block, stats_.disk_blocks_written));
  TraceFault("power_cut", block);
  return true;
}

FaultInjector::WriteFate FaultInjector::NextWriteFate(uint64_t block,
                                                      uint64_t num_blocks) {
  const uint64_t seq = ++stats_.media_writes_seen;

  auto lost = [&]() {
    ++stats_.disk_lost_writes;
    Count(c_lost_writes_);
    RecordDisk(DiskEvent{seq, 'w', 0});
    Log(Format("disk-lost-write block=%llu seq=%llu", block, seq));
    TraceFault("disk_lost_write", block);
    return WriteFate::kLost;
  };
  auto misdirect = [&](uint64_t target) {
    misdirect_target_ = target;
    ++stats_.disk_misdirects;
    Count(c_misdirects_);
    RecordDisk(DiskEvent{seq, 'm', target});
    Log(Format("disk-misdirect block=%llu to=%llu", block, target));
    TraceFault("disk_misdirect", block);
    return WriteFate::kMisdirect;
  };

  if (disk_scripted_) {
    auto it = write_script_.find(seq);
    if (it == write_script_.end()) {
      return WriteFate::kDurable;
    }
    const DiskEvent ev = it->second;
    if (ev.kind == 'm' && num_blocks != 0 && ev.arg < num_blocks) {
      return misdirect(ev.arg);
    }
    // 'w', or a misdirect whose target falls off the media: the write is lost.
    return lost();
  }

  const bool any = plan_.disk_lost_rate > 0.0 || plan_.disk_misdirect_rate > 0.0;
  if (!any) {
    return WriteFate::kDurable;
  }
  const double roll = rng_.NextDouble();
  if (roll < plan_.disk_lost_rate) {
    return lost();
  }
  if (roll < plan_.disk_lost_rate + plan_.disk_misdirect_rate && num_blocks != 0) {
    return misdirect(rng_.Below(num_blocks));
  }
  return WriteFate::kDurable;
}

FaultInjector::ReadFate FaultInjector::NextReadFate(uint64_t block,
                                                    uint64_t block_bytes) {
  const uint64_t seq = ++stats_.disk_blocks_read;

  auto latent = [&]() {
    ++stats_.disk_latent;
    Count(c_latent_);
    RecordDisk(DiskEvent{seq, 'l', 0});
    Log(Format("disk-latent block=%llu seq=%llu", block, seq));
    TraceFault("disk_latent", block);
    return ReadFate::kLatent;
  };
  auto rot = [&](uint64_t offset) {
    rot_offset_ = offset;
    ++stats_.disk_rot;
    Count(c_rot_);
    RecordDisk(DiskEvent{seq, 'r', offset});
    Log(Format("disk-rot block=%llu off=%llu", block, offset));
    TraceFault("disk_rot", block);
    return ReadFate::kRot;
  };

  if (disk_scripted_) {
    auto it = read_script_.find(seq);
    if (it == read_script_.end()) {
      return ReadFate::kClean;
    }
    const DiskEvent ev = it->second;
    if (ev.kind == 'r') {
      // Clamp the offset into the block so the recorded (effective) event
      // replays identically.
      return rot(block_bytes != 0 ? ev.arg % block_bytes : 0);
    }
    return latent();
  }

  const bool any = plan_.disk_latent_rate > 0.0 || plan_.disk_rot_rate > 0.0;
  if (!any) {
    return ReadFate::kClean;
  }
  const double roll = rng_.NextDouble();
  if (roll < plan_.disk_latent_rate) {
    return latent();
  }
  if (roll < plan_.disk_latent_rate + plan_.disk_rot_rate && block_bytes != 0) {
    return rot(rng_.Below(block_bytes));
  }
  return ReadFate::kClean;
}

FaultInjector::WireFate FaultInjector::NextWireFate(uint64_t frame_bytes) {
  ++stats_.frames_seen;

  // Scripted mode: explicit fates by consultation index, zero RNG draws. The
  // short-corrupt → drop demotion matches rate mode so a recorded schedule
  // replays to the identical outcome.
  if (!script_.empty()) {
    auto it = script_.find(stats_.frames_seen);
    if (it == script_.end()) {
      return WireFate::kDeliver;
    }
    WireEvent ev = it->second;
    if (ev.kind == 'c' && frame_bytes > plan_.net_corrupt_min_offset &&
        ev.corrupt_offset >= plan_.net_corrupt_min_offset &&
        ev.corrupt_offset < frame_bytes) {
      corrupt_offset_ = ev.corrupt_offset;
      ++stats_.net_corruptions;
      Count(c_net_corruptions_);
      RecordWire(ev);
      Log(Format("net-corrupt bytes=%llu off=%llu", frame_bytes, corrupt_offset_));
      TraceFault("net_corrupt", corrupt_offset_);
      return WireFate::kCorrupt;
    }
    if (ev.kind == 'u') {
      ++stats_.net_duplicates;
      Count(c_net_duplicates_);
      RecordWire(ev);
      Log(Format("net-dup bytes=%llu seq=%llu", frame_bytes, stats_.frames_seen));
      TraceFault("net_duplicate", frame_bytes);
      return WireFate::kDuplicate;
    }
    ++stats_.net_drops;
    Count(c_net_drops_);
    RecordWire(WireEvent{stats_.frames_seen, 'd', 0});
    Log(Format("net-drop bytes=%llu seq=%llu", frame_bytes, stats_.frames_seen));
    TraceFault("net_drop", frame_bytes);
    return WireFate::kDrop;
  }

  const bool any = plan_.net_drop_rate > 0.0 || plan_.net_corrupt_rate > 0.0 ||
                   plan_.net_duplicate_rate > 0.0;
  if (!any) {
    return WireFate::kDeliver;
  }
  // One draw decides the fate; the rates partition [0, 1).
  const double roll = rng_.NextDouble();
  if (roll < plan_.net_drop_rate) {
    ++stats_.net_drops;
    Count(c_net_drops_);
    RecordWire(WireEvent{stats_.frames_seen, 'd', 0});
    Log(Format("net-drop bytes=%llu seq=%llu", frame_bytes, stats_.frames_seen));
    TraceFault("net_drop", frame_bytes);
    return WireFate::kDrop;
  }
  if (roll < plan_.net_drop_rate + plan_.net_corrupt_rate) {
    if (frame_bytes <= plan_.net_corrupt_min_offset) {
      // Nothing detectably corruptible: model the damaged frame as lost instead.
      ++stats_.net_drops;
      Count(c_net_drops_);
      RecordWire(WireEvent{stats_.frames_seen, 'd', 0});
      Log(Format("net-drop(short-corrupt) bytes=%llu seq=%llu", frame_bytes,
                 stats_.frames_seen));
      TraceFault("net_drop", frame_bytes);
      return WireFate::kDrop;
    }
    corrupt_offset_ =
        plan_.net_corrupt_min_offset +
        rng_.Below(frame_bytes - plan_.net_corrupt_min_offset);
    ++stats_.net_corruptions;
    Count(c_net_corruptions_);
    RecordWire(WireEvent{stats_.frames_seen, 'c', corrupt_offset_});
    Log(Format("net-corrupt bytes=%llu off=%llu", frame_bytes, corrupt_offset_));
    TraceFault("net_corrupt", corrupt_offset_);
    return WireFate::kCorrupt;
  }
  if (roll < plan_.net_drop_rate + plan_.net_corrupt_rate + plan_.net_duplicate_rate) {
    ++stats_.net_duplicates;
    Count(c_net_duplicates_);
    RecordWire(WireEvent{stats_.frames_seen, 'u', 0});
    Log(Format("net-dup bytes=%llu seq=%llu", frame_bytes, stats_.frames_seen));
    TraceFault("net_duplicate", frame_bytes);
    return WireFate::kDuplicate;
  }
  return WireFate::kDeliver;
}

std::string FormatWireSchedule(const std::vector<WireEvent>& events) {
  std::string out;
  for (const WireEvent& e : events) {
    AppendToken(&out, e.kind, e.frame_index, e.kind == 'c', e.corrupt_offset);
  }
  return out;
}

std::vector<WireEvent> ParseWireSchedule(const std::string& text, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  std::vector<SchedToken> tokens;
  if (!TokenizeSchedule(text, "dcu", "010", &tokens, error) ||
      !CheckDuplicates(tokens, WireStream, error)) {
    return {};
  }
  std::vector<WireEvent> out;
  out.reserve(tokens.size());
  for (const SchedToken& t : tokens) {
    out.push_back(WireEvent{t.index, t.kind, t.arg});
  }
  return out;
}

std::string FormatDiskSchedule(const std::vector<DiskEvent>& events) {
  std::string out;
  for (const DiskEvent& e : events) {
    AppendToken(&out, e.kind, e.index, KindCarriesArg(e.kind), e.arg);
  }
  return out;
}

std::vector<DiskEvent> ParseDiskSchedule(const std::string& text, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  std::vector<SchedToken> tokens;
  if (!TokenizeSchedule(text, "wmlr", "0101", &tokens, error) ||
      !CheckDuplicates(tokens, DiskStream, error)) {
    return {};
  }
  std::vector<DiskEvent> out;
  out.reserve(tokens.size());
  for (const SchedToken& t : tokens) {
    out.push_back(DiskEvent{t.index, t.kind, t.arg});
  }
  return out;
}

std::string FormatMachineSchedule(const std::vector<MachineEvent>& events) {
  std::string out;
  for (const MachineEvent& e : events) {
    AppendToken(&out, e.kind, e.time, true, e.machine);
  }
  return out;
}

std::vector<MachineEvent> ParseMachineSchedule(const std::string& text,
                                               std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  std::vector<SchedToken> tokens;
  if (!TokenizeSchedule(text, "kb", "11", &tokens, error) ||
      !CheckDuplicates(tokens, MachineStream, error)) {
    return {};
  }
  std::vector<MachineEvent> out;
  out.reserve(tokens.size());
  for (const SchedToken& t : tokens) {
    out.push_back(MachineEvent{t.index, t.kind, t.arg});
  }
  return out;
}

std::string FormatFaultSchedule(const std::vector<FaultEvent>& events) {
  std::string out;
  for (const FaultEvent& e : events) {
    AppendToken(&out, e.kind, e.index, KindCarriesArg(e.kind), e.arg);
  }
  return out;
}

std::vector<FaultEvent> ParseFaultSchedule(const std::string& text, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  std::vector<SchedToken> tokens;
  if (!TokenizeSchedule(text, "dcuwmlrkb", "010010111", &tokens, error) ||
      !CheckDuplicates(tokens, CombinedStream, error)) {
    return {};
  }
  std::vector<FaultEvent> out;
  out.reserve(tokens.size());
  for (const SchedToken& t : tokens) {
    out.push_back(FaultEvent{t.kind, t.index, t.arg});
  }
  return out;
}

void SplitFaultSchedule(const std::vector<FaultEvent>& events,
                        std::vector<WireEvent>* wire, std::vector<DiskEvent>* disk) {
  SplitFaultSchedule(events, wire, disk, nullptr);
}

void SplitFaultSchedule(const std::vector<FaultEvent>& events,
                        std::vector<WireEvent>* wire, std::vector<DiskEvent>* disk,
                        std::vector<MachineEvent>* machine) {
  for (const FaultEvent& e : events) {
    if (IsWireFaultKind(e.kind)) {
      if (wire != nullptr) {
        wire->push_back(WireEvent{e.index, e.kind, e.arg});
      }
    } else if (IsMachineFaultKind(e.kind)) {
      if (machine != nullptr) {
        machine->push_back(MachineEvent{e.index, e.kind, e.arg});
      }
    } else if (disk != nullptr) {
      disk->push_back(DiskEvent{e.index, e.kind, e.arg});
    }
  }
}

}  // namespace exo::sim
