#include "sim/fault.h"

#include <cstdio>
#include <cstdlib>

namespace exo::sim {

namespace {
std::string Format(const char* fmt, uint64_t a, uint64_t b) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}
}  // namespace

bool FaultInjector::NextDiskRequestFails(uint64_t start_block, uint32_t nblocks) {
  ++stats_.disk_requests_seen;
  if (plan_.disk_error_rate <= 0.0) {
    return false;
  }
  if (rng_.NextDouble() >= plan_.disk_error_rate) {
    return false;
  }
  ++stats_.disk_io_errors;
  Log(Format("disk-error block=%llu n=%llu", start_block, nblocks));
  TraceFault("disk_error", start_block);
  return true;
}

bool FaultInjector::OnBlockWritten(uint64_t block) {
  ++stats_.disk_blocks_written;
  if (plan_.power_cut_after_blocks == 0 ||
      stats_.disk_blocks_written != plan_.power_cut_after_blocks) {
    return false;
  }
  ++stats_.power_cuts;
  Log(Format("power-cut after-block=%llu writes=%llu", block, stats_.disk_blocks_written));
  TraceFault("power_cut", block);
  return true;
}

FaultInjector::WireFate FaultInjector::NextWireFate(uint64_t frame_bytes) {
  ++stats_.frames_seen;

  // Scripted mode: explicit fates by consultation index, zero RNG draws. The
  // short-corrupt → drop demotion matches rate mode so a recorded schedule
  // replays to the identical outcome.
  if (!script_.empty()) {
    auto it = script_.find(stats_.frames_seen);
    if (it == script_.end()) {
      return WireFate::kDeliver;
    }
    WireEvent ev = it->second;
    if (ev.kind == 'c' && frame_bytes > plan_.net_corrupt_min_offset &&
        ev.corrupt_offset >= plan_.net_corrupt_min_offset &&
        ev.corrupt_offset < frame_bytes) {
      corrupt_offset_ = ev.corrupt_offset;
      ++stats_.net_corruptions;
      wire_events_.push_back(ev);
      Log(Format("net-corrupt bytes=%llu off=%llu", frame_bytes, corrupt_offset_));
      TraceFault("net_corrupt", corrupt_offset_);
      return WireFate::kCorrupt;
    }
    if (ev.kind == 'u') {
      ++stats_.net_duplicates;
      wire_events_.push_back(ev);
      Log(Format("net-dup bytes=%llu seq=%llu", frame_bytes, stats_.frames_seen));
      TraceFault("net_duplicate", frame_bytes);
      return WireFate::kDuplicate;
    }
    ++stats_.net_drops;
    wire_events_.push_back(WireEvent{stats_.frames_seen, 'd', 0});
    Log(Format("net-drop bytes=%llu seq=%llu", frame_bytes, stats_.frames_seen));
    TraceFault("net_drop", frame_bytes);
    return WireFate::kDrop;
  }

  const bool any = plan_.net_drop_rate > 0.0 || plan_.net_corrupt_rate > 0.0 ||
                   plan_.net_duplicate_rate > 0.0;
  if (!any) {
    return WireFate::kDeliver;
  }
  // One draw decides the fate; the rates partition [0, 1).
  const double roll = rng_.NextDouble();
  if (roll < plan_.net_drop_rate) {
    ++stats_.net_drops;
    wire_events_.push_back(WireEvent{stats_.frames_seen, 'd', 0});
    Log(Format("net-drop bytes=%llu seq=%llu", frame_bytes, stats_.frames_seen));
    TraceFault("net_drop", frame_bytes);
    return WireFate::kDrop;
  }
  if (roll < plan_.net_drop_rate + plan_.net_corrupt_rate) {
    if (frame_bytes <= plan_.net_corrupt_min_offset) {
      // Nothing detectably corruptible: model the damaged frame as lost instead.
      ++stats_.net_drops;
      wire_events_.push_back(WireEvent{stats_.frames_seen, 'd', 0});
      Log(Format("net-drop(short-corrupt) bytes=%llu seq=%llu", frame_bytes,
                 stats_.frames_seen));
      TraceFault("net_drop", frame_bytes);
      return WireFate::kDrop;
    }
    corrupt_offset_ =
        plan_.net_corrupt_min_offset +
        rng_.Below(frame_bytes - plan_.net_corrupt_min_offset);
    ++stats_.net_corruptions;
    wire_events_.push_back(WireEvent{stats_.frames_seen, 'c', corrupt_offset_});
    Log(Format("net-corrupt bytes=%llu off=%llu", frame_bytes, corrupt_offset_));
    TraceFault("net_corrupt", corrupt_offset_);
    return WireFate::kCorrupt;
  }
  if (roll < plan_.net_drop_rate + plan_.net_corrupt_rate + plan_.net_duplicate_rate) {
    ++stats_.net_duplicates;
    wire_events_.push_back(WireEvent{stats_.frames_seen, 'u', 0});
    Log(Format("net-dup bytes=%llu seq=%llu", frame_bytes, stats_.frames_seen));
    TraceFault("net_duplicate", frame_bytes);
    return WireFate::kDuplicate;
  }
  return WireFate::kDeliver;
}

std::string FormatWireSchedule(const std::vector<WireEvent>& events) {
  std::string out;
  for (const WireEvent& e : events) {
    if (!out.empty()) {
      out += ' ';
    }
    char buf[48];
    if (e.kind == 'c') {
      std::snprintf(buf, sizeof(buf), "c@%llu:%llu",
                    static_cast<unsigned long long>(e.frame_index),
                    static_cast<unsigned long long>(e.corrupt_offset));
    } else {
      std::snprintf(buf, sizeof(buf), "%c@%llu", e.kind,
                    static_cast<unsigned long long>(e.frame_index));
    }
    out += buf;
  }
  return out;
}

std::vector<WireEvent> ParseWireSchedule(const std::string& text) {
  std::vector<WireEvent> out;
  size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') {
      ++pos;
    }
    if (pos >= text.size()) {
      break;
    }
    WireEvent e;
    e.kind = text[pos];
    pos += 1;
    if (pos >= text.size() || text[pos] != '@' ||
        (e.kind != 'd' && e.kind != 'c' && e.kind != 'u')) {
      break;  // malformed token: stop rather than guess
    }
    pos += 1;
    char* end = nullptr;
    e.frame_index = std::strtoull(text.c_str() + pos, &end, 10);
    pos = static_cast<size_t>(end - text.c_str());
    if (e.kind == 'c' && pos < text.size() && text[pos] == ':') {
      e.corrupt_offset = std::strtoull(text.c_str() + pos + 1, &end, 10);
      pos = static_cast<size_t>(end - text.c_str());
    }
    out.push_back(e);
  }
  return out;
}

}  // namespace exo::sim
