#include "sim/fault.h"

#include <cstdio>

namespace exo::sim {

namespace {
std::string Format(const char* fmt, uint64_t a, uint64_t b) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}
}  // namespace

bool FaultInjector::NextDiskRequestFails(uint64_t start_block, uint32_t nblocks) {
  ++stats_.disk_requests_seen;
  if (plan_.disk_error_rate <= 0.0) {
    return false;
  }
  if (rng_.NextDouble() >= plan_.disk_error_rate) {
    return false;
  }
  ++stats_.disk_io_errors;
  Log(Format("disk-error block=%llu n=%llu", start_block, nblocks));
  TraceFault("disk_error", start_block);
  return true;
}

bool FaultInjector::OnBlockWritten(uint64_t block) {
  ++stats_.disk_blocks_written;
  if (plan_.power_cut_after_blocks == 0 ||
      stats_.disk_blocks_written != plan_.power_cut_after_blocks) {
    return false;
  }
  ++stats_.power_cuts;
  Log(Format("power-cut after-block=%llu writes=%llu", block, stats_.disk_blocks_written));
  TraceFault("power_cut", block);
  return true;
}

FaultInjector::WireFate FaultInjector::NextWireFate(uint64_t frame_bytes) {
  ++stats_.frames_seen;
  const bool any = plan_.net_drop_rate > 0.0 || plan_.net_corrupt_rate > 0.0 ||
                   plan_.net_duplicate_rate > 0.0;
  if (!any) {
    return WireFate::kDeliver;
  }
  // One draw decides the fate; the rates partition [0, 1).
  const double roll = rng_.NextDouble();
  if (roll < plan_.net_drop_rate) {
    ++stats_.net_drops;
    Log(Format("net-drop bytes=%llu seq=%llu", frame_bytes, stats_.frames_seen));
    TraceFault("net_drop", frame_bytes);
    return WireFate::kDrop;
  }
  if (roll < plan_.net_drop_rate + plan_.net_corrupt_rate) {
    if (frame_bytes <= plan_.net_corrupt_min_offset) {
      // Nothing detectably corruptible: model the damaged frame as lost instead.
      ++stats_.net_drops;
      Log(Format("net-drop(short-corrupt) bytes=%llu seq=%llu", frame_bytes,
                 stats_.frames_seen));
      TraceFault("net_drop", frame_bytes);
      return WireFate::kDrop;
    }
    corrupt_offset_ =
        plan_.net_corrupt_min_offset +
        rng_.Below(frame_bytes - plan_.net_corrupt_min_offset);
    ++stats_.net_corruptions;
    Log(Format("net-corrupt bytes=%llu off=%llu", frame_bytes, corrupt_offset_));
    TraceFault("net_corrupt", corrupt_offset_);
    return WireFate::kCorrupt;
  }
  if (roll < plan_.net_drop_rate + plan_.net_corrupt_rate + plan_.net_duplicate_rate) {
    ++stats_.net_duplicates;
    Log(Format("net-dup bytes=%llu seq=%llu", frame_bytes, stats_.frames_seen));
    TraceFault("net_duplicate", frame_bytes);
    return WireFate::kDuplicate;
  }
  return WireFate::kDeliver;
}

}  // namespace exo::sim
