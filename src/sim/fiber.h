// Cooperative fibers for simulated processes.
//
// Each simulated process body runs on its own ucontext fiber. Exactly one fiber runs at
// a time and control only transfers at explicit Resume/Suspend points driven by the
// simulated scheduler, so whole-system runs are deterministic.
#ifndef EXO_SIM_FIBER_H_
#define EXO_SIM_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace exo::sim {

class Fiber {
 public:
  using Body = std::function<void()>;

  explicit Fiber(Body body, size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Switches from the scheduler context into this fiber. Returns when the fiber
  // suspends or finishes. Must not be called from inside a fiber.
  void Resume();

  // Switches from the currently running fiber back to the scheduler context.
  // Must be called from inside a fiber.
  static void Suspend();

  // True when the fiber body has returned.
  bool done() const { return done_; }

  // The fiber currently executing, or nullptr when in the scheduler context.
  static Fiber* Current();

  static constexpr size_t kDefaultStackBytes = 1024 * 1024;

 private:
  static void Trampoline();

  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  std::unique_ptr<char[]> stack_;
  Body body_;
  bool started_ = false;
  bool done_ = false;
};

}  // namespace exo::sim

#endif  // EXO_SIM_FIBER_H_
