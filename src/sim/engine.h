// Discrete-event simulation engine: a cycle-granularity clock plus an event queue.
//
// All simulated time in the system is expressed in CPU cycles of the modeled machine
// (a 200-MHz Pentium Pro by default, matching the paper's testbed). Hardware devices
// (disk, NIC, timers) schedule completion events here; the CPU side advances the clock
// by charging computation costs (see CostModel).
//
// Events live in a slab of generation-stamped slots. The heap orders plain
// {time, seq, slot} triples — no callable moves during sifts — and same-timestamp
// events fire in schedule order (seq is monotonic), exactly as the original
// id-ordered queue did. Cancel is O(1): it disarms the slot; the heap entry is
// dropped lazily when it reaches the top. Slot memory is recycled through a free
// list, so long-running sims stay bounded no matter how many events churn through.
#ifndef EXO_SIM_ENGINE_H_
#define EXO_SIM_ENGINE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/check.h"
#include "sim/event_fn.h"
#include "trace/trace.h"

namespace exo::sim {

using Cycles = uint64_t;

constexpr Cycles kCyclesPerMicrosecondAt200MHz = 200;

class Engine {
 public:
  using EventFn = InplaceFunction;
  using EventId = uint64_t;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Cycles now() const { return now_; }
  double now_seconds(uint32_t cpu_mhz = 200) const {
    return static_cast<double>(now_) / (static_cast<double>(cpu_mhz) * 1e6);
  }

  // Schedules fn to run at absolute time t (>= now). Returns an id usable with
  // Cancel. Ids are never 0, so callers may use 0 as a "no event" sentinel.
  EventId ScheduleAt(Cycles t, EventFn fn) {
    EXO_CHECK_GE(t, now_);
    uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    s.armed = true;
    heap_.push(HeapEntry{t, next_seq_++, slot});
    ++live_events_;
    return MakeId(slot, s.gen);
  }

  EventId ScheduleAfter(Cycles delta, EventFn fn) { return ScheduleAt(now_ + delta, std::move(fn)); }

  // Cancels a pending event. Cancelling an already-fired or unknown id is a no-op:
  // firing bumps the slot's generation, so a stale id can never hit a reused slot.
  void Cancel(EventId id) {
    const uint32_t slot = static_cast<uint32_t>(id >> 32);
    const uint32_t gen = static_cast<uint32_t>(id);
    if (slot >= slots_.size()) {
      return;
    }
    Slot& s = slots_[slot];
    if (!s.armed || s.gen != gen) {
      return;
    }
    s.armed = false;
    s.fn.Reset();
    --live_events_;
    // The heap entry is now a corpse; DropCancelledHead reclaims the slot when
    // the entry surfaces.
  }

  bool HasPendingEvents() const { return live_events_ > 0; }

  // Time of the earliest pending event; only valid when HasPendingEvents().
  Cycles NextEventTime();

  // Pops and runs the earliest event, advancing the clock to its timestamp.
  // Returns false if no events remain.
  bool RunNextEvent();

  // Runs events until the queue is empty.
  void RunUntilIdle() {
    while (RunNextEvent()) {
    }
  }

  // Runs all events with timestamp <= t, then sets the clock to exactly t.
  void RunUntil(Cycles t);

  // Advances the clock by delta cycles, firing any events that become due along the
  // way. This is how CPU computation is charged: devices can complete "during" a
  // computation and their completion handlers observe a consistent clock.
  void Advance(Cycles delta) { RunUntil(now_ + delta); }

  // Introspection for tests and the perf harness: the slab high-water mark and the
  // number of heap entries (live events plus not-yet-reclaimed cancellations).
  size_t event_slot_count() const { return slots_.size(); }
  size_t queued_entry_count() const { return heap_.size(); }

  // Attaches a tracer (or detaches, with nullptr); event dispatch emits `sched`
  // instants onto `track`. Unattached engines skip it behind one pointer test.
  void set_tracer(trace::Tracer* tracer, uint32_t track = 0) {
    tracer_ = tracer;
    trace_track_ = track;
  }
  trace::Tracer* tracer() const { return tracer_; }

 private:
  struct Slot {
    EventFn fn;
    uint32_t gen = 1;  // starts at 1 so no (slot, gen) packs to id 0
    bool armed = false;
  };

  struct HeapEntry {
    Cycles time;
    uint64_t seq;
    uint32_t slot;
    bool operator>(const HeapEntry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  void FreeSlot(uint32_t slot);
  void DropCancelledHead();

  Cycles now_ = 0;
  uint64_t next_seq_ = 1;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  uint64_t live_events_ = 0;
  trace::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
};

}  // namespace exo::sim

#endif  // EXO_SIM_ENGINE_H_
