// Discrete-event simulation engine: a cycle-granularity clock plus an event queue.
//
// All simulated time in the system is expressed in CPU cycles of the modeled machine
// (a 200-MHz Pentium Pro by default, matching the paper's testbed). Hardware devices
// (disk, NIC, timers) schedule completion events here; the CPU side advances the clock
// by charging computation costs (see CostModel).
#ifndef EXO_SIM_ENGINE_H_
#define EXO_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/check.h"

namespace exo::sim {

using Cycles = uint64_t;

constexpr Cycles kCyclesPerMicrosecondAt200MHz = 200;

class Engine {
 public:
  using EventFn = std::function<void()>;
  using EventId = uint64_t;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Cycles now() const { return now_; }
  double now_seconds(uint32_t cpu_mhz = 200) const {
    return static_cast<double>(now_) / (static_cast<double>(cpu_mhz) * 1e6);
  }

  // Schedules fn to run at absolute time t (>= now). Returns an id usable with Cancel.
  EventId ScheduleAt(Cycles t, EventFn fn) {
    EXO_CHECK_GE(t, now_);
    EventId id = next_id_++;
    heap_.push(Event{t, id, std::move(fn)});
    ++live_events_;
    return id;
  }

  EventId ScheduleAfter(Cycles delta, EventFn fn) { return ScheduleAt(now_ + delta, std::move(fn)); }

  // Cancels a pending event. Cancelling an already-fired or unknown id is a no-op.
  void Cancel(EventId id) { cancelled_.push_back(id); }

  bool HasPendingEvents() const { return live_events_ > 0; }

  // Time of the earliest pending event; only valid when HasPendingEvents().
  Cycles NextEventTime();

  // Pops and runs the earliest event, advancing the clock to its timestamp.
  // Returns false if no events remain.
  bool RunNextEvent();

  // Runs events until the queue is empty.
  void RunUntilIdle() {
    while (RunNextEvent()) {
    }
  }

  // Runs all events with timestamp <= t, then sets the clock to exactly t.
  void RunUntil(Cycles t);

  // Advances the clock by delta cycles, firing any events that become due along the
  // way. This is how CPU computation is charged: devices can complete "during" a
  // computation and their completion handlers observe a consistent clock.
  void Advance(Cycles delta) { RunUntil(now_ + delta); }

 private:
  struct Event {
    Cycles time;
    EventId id;
    EventFn fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : id > o.id;
    }
  };

  bool IsCancelled(EventId id);
  void DropCancelledHead();

  Cycles now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  std::vector<EventId> cancelled_;
  uint64_t live_events_ = 0;
};

}  // namespace exo::sim

#endif  // EXO_SIM_ENGINE_H_
