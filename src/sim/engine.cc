#include "sim/engine.h"

namespace exo::sim {

void Engine::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.armed = false;
  s.fn.Reset();
  if (++s.gen == 0) {
    s.gen = 1;  // keep ids nonzero: callers use 0 as a "no event armed" sentinel
  }
  free_slots_.push_back(slot);
}

void Engine::DropCancelledHead() {
  while (!heap_.empty() && !slots_[heap_.top().slot].armed) {
    FreeSlot(heap_.top().slot);
    heap_.pop();
  }
}

Cycles Engine::NextEventTime() {
  DropCancelledHead();
  EXO_CHECK(!heap_.empty());
  return heap_.top().time;
}

bool Engine::RunNextEvent() {
  DropCancelledHead();
  if (heap_.empty()) {
    return false;
  }
  const HeapEntry top = heap_.top();
  heap_.pop();
  // Move the callback out and recycle the slot before invoking: the callback may
  // schedule new events (reusing this slot) or cancel ids, and a stale id must
  // already miss on the bumped generation.
  EventFn fn = std::move(slots_[top.slot].fn);
  FreeSlot(top.slot);
  --live_events_;
  EXO_CHECK_GE(top.time, now_);
  now_ = top.time;
  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kSched)) {
    tracer_->Instant(trace::Category::kSched, trace_track_, "event", now_, top.seq);
  }
  fn();
  return true;
}

void Engine::RunUntil(Cycles t) {
  EXO_CHECK_GE(t, now_);
  for (;;) {
    DropCancelledHead();
    if (heap_.empty() || heap_.top().time > t) {
      break;
    }
    RunNextEvent();
  }
  now_ = t;
}

}  // namespace exo::sim
