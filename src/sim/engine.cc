#include "sim/engine.h"

#include <algorithm>

namespace exo::sim {

bool Engine::IsCancelled(EventId id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) {
    return false;
  }
  cancelled_.erase(it);
  return true;
}

void Engine::DropCancelledHead() {
  while (!heap_.empty() && IsCancelled(heap_.top().id)) {
    heap_.pop();
    --live_events_;
  }
}

Cycles Engine::NextEventTime() {
  DropCancelledHead();
  EXO_CHECK(!heap_.empty());
  return heap_.top().time;
}

bool Engine::RunNextEvent() {
  DropCancelledHead();
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top returns const ref; move the callback out via const_cast is
  // avoided by copying the small struct pieces we need.
  Event ev{heap_.top().time, heap_.top().id, std::move(const_cast<Event&>(heap_.top()).fn)};
  heap_.pop();
  --live_events_;
  EXO_CHECK_GE(ev.time, now_);
  now_ = ev.time;
  ev.fn();
  return true;
}

void Engine::RunUntil(Cycles t) {
  EXO_CHECK_GE(t, now_);
  for (;;) {
    DropCancelledHead();
    if (heap_.empty() || heap_.top().time > t) {
      break;
    }
    RunNextEvent();
  }
  now_ = t;
}

}  // namespace exo::sim
