// Deterministic syscall-fuzzing support (the hostile-libOS counterpart to
// sim::FaultInjector).
//
// A Fuzzer is a seeded decision stream plus a replay log. Every argument the
// syscall fuzzer invents — ids, offsets, credential indices, op selectors —
// comes from one xoshiro256** stream drawn in program order, so a whole hostile
// schedule is a pure function of its seed: same seed, byte-for-byte the same
// syscall sequence and the same log (the docs/FAULTS.md determinism contract).
// A failing run is reproduced by re-running with the printed seed.
#ifndef EXO_SIM_FUZZ_H_
#define EXO_SIM_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace exo::sim {

class Fuzzer {
 public:
  explicit Fuzzer(uint64_t seed) : seed_(seed), rng_(seed) {}

  uint64_t seed() const { return seed_; }

  // Uniform selector in [0, n).
  uint32_t Pick(uint32_t n) { return static_cast<uint32_t>(rng_.Below(n)); }

  // True with probability p/100.
  bool Percent(uint32_t p) { return rng_.Below(100) < p; }

  // Boundary-biased garbage: hostile arguments cluster at edges (0, 1, all-ones,
  // just past 32 bits), with a tail of small and fully random values.
  uint64_t Chaos64() {
    switch (rng_.Below(8)) {
      case 0:
        return 0;
      case 1:
        return 1;
      case 2:
        return UINT64_MAX;
      case 3:
        return UINT64_MAX - 1;
      case 4:
        return static_cast<uint64_t>(UINT32_MAX);
      case 5:
        return static_cast<uint64_t>(UINT32_MAX) + 1;
      case 6:
        return rng_.Below(256);
      default:
        return rng_.Next();
    }
  }
  uint32_t Chaos32() { return static_cast<uint32_t>(Chaos64()); }

  // Mostly a plausible live id drawn from `pool`, sometimes outright garbage —
  // the mix that reaches deep paths (valid-looking) and edge paths (malformed).
  uint32_t SemiValid(const std::vector<uint32_t>& pool, uint32_t garbage_percent = 25) {
    if (!pool.empty() && !Percent(garbage_percent)) {
      return pool[Pick(static_cast<uint32_t>(pool.size()))];
    }
    return Chaos32();
  }

  // Replay log: one line per decision worth comparing across runs. Two runs are
  // provably schedule-identical iff their logs are equal.
  void Log(const std::string& line) {
    log_ += line;
    log_ += '\n';
  }
  const std::string& log() const { return log_; }

 private:
  uint64_t seed_;
  Rng rng_;
  std::string log_;
};

}  // namespace exo::sim

#endif  // EXO_SIM_FUZZ_H_
