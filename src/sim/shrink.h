// Shrinker: delta-debugging minimization of fault schedules.
//
// The chaos-soak harness finds failures under hundreds of injected wire faults;
// a reproducer that size is useless for debugging. Shrinker implements ddmin
// (Zeller & Hildebrandt, "Simplifying and Isolating Failure-Inducing Input"):
// given a failing schedule and a predicate that re-runs the deterministic
// simulation under a candidate subset (FaultPlan::wire_script), it returns a
// 1-minimal subsequence — removing any single remaining event makes the failure
// vanish. Every probe is a full deterministic re-run, so the result replays
// byte-for-byte from its printed seed line (sim::FormatWireSchedule).
#ifndef EXO_SIM_SHRINK_H_
#define EXO_SIM_SHRINK_H_

#include <functional>
#include <vector>

#include "sim/fault.h"

namespace exo::sim {

class Shrinker {
 public:
  using Schedule = std::vector<WireEvent>;
  // Returns true when the simulation still fails under `candidate`. Must be
  // deterministic (same candidate, same verdict) — every probe is a fresh run.
  using Predicate = std::function<bool(const Schedule&)>;

  explicit Shrinker(Predicate still_fails) : still_fails_(std::move(still_fails)) {}

  // ddmin: requires still_fails(input); returns a 1-minimal failing subsequence
  // (event order — consultation index order — is preserved throughout).
  Schedule Minimize(Schedule input);

  // Number of predicate probes the last Minimize spent.
  uint64_t probes() const { return probes_; }

 private:
  bool Fails(const Schedule& s);

  Predicate still_fails_;
  uint64_t probes_ = 0;
};

}  // namespace exo::sim

#endif  // EXO_SIM_SHRINK_H_
