// Shrinker: delta-debugging minimization of fault schedules.
//
// The chaos-soak harness finds failures under hundreds of injected wire faults;
// a reproducer that size is useless for debugging. BasicShrinker implements
// ddmin (Zeller & Hildebrandt, "Simplifying and Isolating Failure-Inducing
// Input"): given a failing schedule and a predicate that re-runs the
// deterministic simulation under a candidate subset (FaultPlan::wire_script /
// disk_script), it returns a 1-minimal subsequence — removing any single
// remaining event makes the failure vanish. Every probe is a full deterministic
// re-run, so the result replays byte-for-byte from its printed seed line
// (sim::FormatWireSchedule / FormatDiskSchedule / FormatFaultSchedule).
//
// The event type is a template parameter so wire, disk, and combined
// schedules all minimize through the same machinery: BasicShrinker<WireEvent>
// (aliased to Shrinker for the common case), BasicShrinker<DiskEvent>,
// BasicShrinker<FaultEvent>.
#ifndef EXO_SIM_SHRINK_H_
#define EXO_SIM_SHRINK_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "sim/fault.h"

namespace exo::sim {

template <typename Event>
class BasicShrinker {
 public:
  using Schedule = std::vector<Event>;
  // Returns true when the simulation still fails under `candidate`. Must be
  // deterministic (same candidate, same verdict) — every probe is a fresh run.
  using Predicate = std::function<bool(const Schedule&)>;

  explicit BasicShrinker(Predicate still_fails) : still_fails_(std::move(still_fails)) {}

  // ddmin: requires still_fails(input); returns a 1-minimal failing subsequence
  // (event order — consultation index order — is preserved throughout).
  Schedule Minimize(Schedule input) {
    probes_ = 0;
    if (input.empty()) {
      return input;
    }

    size_t granularity = 2;
    while (input.size() >= 2) {
      const size_t n = input.size();
      granularity = std::min(granularity, n);
      const size_t chunk = (n + granularity - 1) / granularity;
      bool reduced = false;

      // Try each complement (input minus one chunk): success keeps the failure
      // with fewer events and restarts at coarse granularity on the smaller input.
      for (size_t lo = 0; lo < n; lo += chunk) {
        const size_t hi = std::min(lo + chunk, n);
        Schedule candidate = WithoutChunk(input, lo, hi);
        if (!candidate.empty() && Fails(candidate)) {
          input = std::move(candidate);
          granularity = std::max<size_t>(2, granularity - 1);
          reduced = true;
          break;
        }
      }
      if (reduced) {
        continue;
      }
      // Try each chunk alone (classic ddmin "reduce to subset").
      if (granularity > 2) {
        bool subset_fails = false;
        for (size_t lo = 0; lo < n; lo += chunk) {
          const size_t hi = std::min(lo + chunk, n);
          Schedule candidate(input.begin() + static_cast<long>(lo),
                             input.begin() + static_cast<long>(hi));
          if (candidate.size() < input.size() && Fails(candidate)) {
            input = std::move(candidate);
            granularity = 2;
            subset_fails = true;
            break;
          }
        }
        if (subset_fails) {
          continue;
        }
      }
      if (granularity >= n) {
        break;  // single-event granularity exhausted: input is 1-minimal
      }
      granularity = std::min(n, granularity * 2);
    }
    return input;
  }

  // Number of predicate probes the last Minimize spent.
  uint64_t probes() const { return probes_; }

 private:
  // The subset of `s` excluding the chunk [lo, hi).
  static Schedule WithoutChunk(const Schedule& s, size_t lo, size_t hi) {
    Schedule out;
    out.reserve(s.size() - (hi - lo));
    for (size_t i = 0; i < s.size(); ++i) {
      if (i < lo || i >= hi) {
        out.push_back(s[i]);
      }
    }
    return out;
  }

  bool Fails(const Schedule& s) {
    ++probes_;
    return still_fails_(s);
  }

  Predicate still_fails_;
  uint64_t probes_ = 0;
};

using Shrinker = BasicShrinker<WireEvent>;

}  // namespace exo::sim

#endif  // EXO_SIM_SHRINK_H_
