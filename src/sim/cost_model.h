// CostModel: the cycle costs of primitive hardware and software operations.
//
// The model is calibrated to the paper's testbed (200-MHz Intel Pentium Pro, 256-KB L2,
// 64-MB RAM) using the microbenchmark numbers the paper publishes:
//   - getpid: 270 cycles on OpenBSD, 100 cycles as a procedure call into ExOS (Sec. 7.1)
//   - pipe latency: 13/30/34 us (1 byte), 148-160 us (8 KB) (Table 2)
//   - fork: 6 ms on ExOS vs <1 ms on OpenBSD (Sec. 6.2)
// Only hardware and microarchitectural costs live here; each kernel composes these into
// its own operation costs (e.g. a BSD syscall = trap + dispatch + argument validation,
// while a Xok syscall = trap + capability check).
#ifndef EXO_SIM_COST_MODEL_H_
#define EXO_SIM_COST_MODEL_H_

#include <cstdint>

#include "sim/engine.h"

namespace exo::sim {

struct CostModel {
  uint32_t cpu_mhz = 200;

  // Privilege crossing: INT + IRET round trip with kernel entry bookkeeping.
  Cycles trap_round_trip = 120;
  // Extra work a monolithic UNIX kernel performs per syscall: dispatch table,
  // copyin of arguments, errno plumbing (getpid on OpenBSD = trap + this + body).
  Cycles unix_syscall_dispatch = 130;
  // Extra work Xok performs per syscall: credential lookup + capability check.
  Cycles xok_syscall_check = 50;
  // One capability-dominance comparison (hierarchical name prefix match).
  Cycles cap_check = 25;
  // A libOS procedure call standing in for a syscall (emulated INT rerouted).
  Cycles libos_procedure_call = 80;
  // Trivial syscall body (e.g. reading the pid field).
  Cycles getpid_body = 20;

  // Context switch between address spaces (page-table base reload + TLB refill wave).
  Cycles context_switch = 1400;
  // Upcall delivery into an unscheduled environment (no address-space change assumed).
  Cycles upcall = 350;
  // Hardware page-fault trap overhead (before any handler work).
  Cycles page_fault_trap = 400;

  // Page-table entry updates. Xok applications must use syscalls; batching amortizes
  // the trap (Sec. 5.2.1). BSD kernels touch PTEs directly.
  Cycles pte_update_kernel = 40;
  Cycles pte_update_batched = 60;   // per PTE inside a batched syscall

  // Memory operation throughput. ~66-MHz FSB: copies move roughly one byte per
  // 1.6 CPU cycles once both miss the L2.
  double copy_per_byte = 1.6;
  double checksum_per_byte = 0.5;
  double zero_per_byte = 0.8;
  double compare_per_byte = 0.7;

  // Downloaded-code interpretation (UDFs, wakeup predicates, packet filters).
  Cycles downloaded_insn = 5;
  Cycles udf_setup = 150;          // per UDF invocation: argument marshalling

  // Scheduler quantum (one slice), ~10 ms at 200 MHz.
  Cycles quantum = 2'000'000;
  // Per-pick bookkeeping of the stride scheduler (pass update + ordered-queue
  // reinsert). Round-robin mode charges nothing extra, which is part of how
  // EXO_SCHED_STRIDE=0 stays bit-identical to the legacy scheduler.
  Cycles stride_pick = 60;

  // Interrupt servicing overhead (disk or NIC completion).
  Cycles interrupt_overhead = 500;

  Cycles FromMicros(double us) const {
    return static_cast<Cycles>(us * static_cast<double>(cpu_mhz));
  }
  double ToMicros(Cycles c) const { return static_cast<double>(c) / cpu_mhz; }
  double ToSeconds(Cycles c) const { return ToMicros(c) / 1e6; }

  Cycles CopyCost(uint64_t bytes) const {
    return static_cast<Cycles>(static_cast<double>(bytes) * copy_per_byte);
  }
  Cycles ChecksumCost(uint64_t bytes) const {
    return static_cast<Cycles>(static_cast<double>(bytes) * checksum_per_byte);
  }
  Cycles ZeroCost(uint64_t bytes) const {
    return static_cast<Cycles>(static_cast<double>(bytes) * zero_per_byte);
  }
  Cycles CompareCost(uint64_t bytes) const {
    return static_cast<Cycles>(static_cast<double>(bytes) * compare_per_byte);
  }

  static CostModel PentiumPro200() { return CostModel{}; }
};

}  // namespace exo::sim

#endif  // EXO_SIM_COST_MODEL_H_
