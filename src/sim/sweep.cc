#include "sim/sweep.h"

#include <cstdio>

namespace exo::sim {

std::string SweepOutcome::Summary() const {
  char head[128];
  std::snprintf(head, sizeof(head), "%llu/%llu cut points passed",
                static_cast<unsigned long long>(trials - failures.size()),
                static_cast<unsigned long long>(trials));
  std::string s = head;
  for (const auto& [k, why] : failures) {
    char line[64];
    std::snprintf(line, sizeof(line), "\n  k=%llu: ", static_cast<unsigned long long>(k));
    s += line;
    s += why;
  }
  return s;
}

SweepOutcome SweepCutPoints(uint64_t num_cuts,
                            const std::function<std::string(uint64_t)>& trial) {
  SweepOutcome out;
  for (uint64_t k = 1; k <= num_cuts; ++k) {
    ++out.trials;
    std::string err = trial(k);
    if (!err.empty()) {
      out.failures.emplace_back(k, std::move(err));
    }
  }
  return out;
}

}  // namespace exo::sim
