#include "sim/fiber.h"

#include "sim/check.h"

namespace exo::sim {

namespace {
thread_local Fiber* g_current = nullptr;
}  // namespace

Fiber::Fiber(Body body, size_t stack_bytes)
    : stack_(new char[stack_bytes]), body_(std::move(body)) {
  EXO_CHECK(body_ != nullptr);
  EXO_CHECK_EQ(getcontext(&ctx_), 0);
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = &return_ctx_;
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 0);
}

Fiber::~Fiber() {
  // A fiber must not be destroyed while it is the running fiber.
  EXO_CHECK(g_current != this);
}

void Fiber::Resume() {
  EXO_CHECK(g_current == nullptr);  // no nested fibers: scheduler -> fiber only
  EXO_CHECK(!done_);
  g_current = this;
  started_ = true;
  EXO_CHECK_EQ(swapcontext(&return_ctx_, &ctx_), 0);
  g_current = nullptr;
}

void Fiber::Suspend() {
  Fiber* self = g_current;
  EXO_CHECK(self != nullptr);
  g_current = nullptr;
  EXO_CHECK_EQ(swapcontext(&self->ctx_, &self->return_ctx_), 0);
  g_current = self;
}

Fiber* Fiber::Current() { return g_current; }

void Fiber::Trampoline() {
  Fiber* self = g_current;
  EXO_CHECK(self != nullptr);
  self->body_();
  self->done_ = true;
  // Returning lets ucontext switch to uc_link (return_ctx_); clear current first
  // because control re-enters Resume() past the swapcontext call.
  // Note: Resume() resets g_current after swapcontext returns, so nothing to do here.
}

}  // namespace exo::sim
