// Move-only callable wrapper used for simulator events.
//
// Unlike std::function, callables up to kInlineBytes are stored in place, so the
// event queue's hot path (schedule, fire, cancel) performs no heap allocation for
// typical device-completion lambdas (disk DMA, NIC delivery, TCP timers). Larger
// callables transparently fall back to the heap; behavior is identical either way.
#ifndef EXO_SIM_EVENT_FN_H_
#define EXO_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace exo::sim {

class InplaceFunction {
 public:
  // Sized to hold a disk-completion capture (request descriptor + frame list +
  // done callback) without spilling. Total footprint: kInlineBytes + one pointer.
  static constexpr std::size_t kInlineBytes = 104;

  InplaceFunction() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVt<D>;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(buf_)) = new D(std::forward<F>(f));
      vt_ = &kHeapVt<D>;
    }
  }

  InplaceFunction(InplaceFunction&& o) noexcept { MoveFrom(o); }
  InplaceFunction& operator=(InplaceFunction&& o) noexcept {
    if (this != &o) {
      Reset();
      MoveFrom(o);
    }
    return *this;
  }
  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;
  ~InplaceFunction() { Reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

  void Reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct into dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr VTable kInlineVt{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr VTable kHeapVt{
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) { *static_cast<D**>(dst) = *static_cast<D**>(src); },
      [](void* p) { delete *static_cast<D**>(p); },
  };

  void MoveFrom(InplaceFunction& o) noexcept {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, o.buf_);
      o.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace exo::sim

#endif  // EXO_SIM_EVENT_FN_H_
