// Lightweight assertion macros for invariants that must hold in all build modes.
//
// CHECK* macros abort with a message on failure and are always compiled in; they guard
// kernel invariants whose violation would make simulation results meaningless.
#ifndef EXO_SIM_CHECK_H_
#define EXO_SIM_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace exo::sim::internal {

[[noreturn]] inline void CheckFail(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace exo::sim::internal

#define EXO_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) {                                             \
      ::exo::sim::internal::CheckFail(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (0)

#define EXO_CHECK_EQ(a, b) EXO_CHECK((a) == (b))
#define EXO_CHECK_NE(a, b) EXO_CHECK((a) != (b))
#define EXO_CHECK_LT(a, b) EXO_CHECK((a) < (b))
#define EXO_CHECK_LE(a, b) EXO_CHECK((a) <= (b))
#define EXO_CHECK_GT(a, b) EXO_CHECK((a) > (b))
#define EXO_CHECK_GE(a, b) EXO_CHECK((a) >= (b))

#ifdef NDEBUG
#define EXO_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define EXO_DCHECK(expr) EXO_CHECK(expr)
#endif

#endif  // EXO_SIM_CHECK_H_
