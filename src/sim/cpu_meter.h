// CpuMeter: models one CPU's occupancy for event-driven (non-fiber) code.
//
// Protocol stacks and servers in the HTTP experiments are I/O-driven: work arrives
// with packets, consumes CPU, and emits packets. Instead of advancing the global
// clock (which would serialize unrelated machines), each operation occupies this
// machine's CPU from max(now, busy_until) for its cost; its effects are scheduled at
// the completion time. Utilization (busy/elapsed) is how the paper reports Cheetah's
// 30% idle CPU at 100-KB documents (Sec. 7.3).
#ifndef EXO_SIM_CPU_METER_H_
#define EXO_SIM_CPU_METER_H_

#include "sim/engine.h"
#include "trace/trace.h"

namespace exo::sim {

class CpuMeter {
 public:
  explicit CpuMeter(Engine* engine) : engine_(engine) {}

  // Occupies the CPU for `cost` cycles; returns the completion time.
  Cycles Occupy(Cycles cost) {
    Cycles start = engine_->now() > busy_until_ ? engine_->now() : busy_until_;
    busy_until_ = start + cost;
    total_busy_ += cost;
    if (tracer_ != nullptr && tracer_->enabled(trace::Category::kSched) && cost > 0) {
      // Occupancy windows are serialized (start >= previous busy_until), so
      // these spans never overlap on the track.
      tracer_->Begin(trace::Category::kSched, trace_track_, "busy", start, cost);
      tracer_->End(trace::Category::kSched, trace_track_, "busy", busy_until_, cost);
    }
    return busy_until_;
  }

  // Attaches a tracer; each Occupy emits a `sched` busy span onto `track`.
  void SetTracer(trace::Tracer* tracer, uint32_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  Cycles busy_until() const { return busy_until_; }
  Cycles total_busy() const { return total_busy_; }
  void ResetAccounting() { total_busy_ = 0; }

  // Fraction of [since, now] the CPU spent busy (clamped to 1).
  double Utilization(Cycles since) const {
    Cycles elapsed = engine_->now() - since;
    if (elapsed == 0) {
      return 0.0;
    }
    double u = static_cast<double>(total_busy_) / static_cast<double>(elapsed);
    return u > 1.0 ? 1.0 : u;
  }

 private:
  Engine* engine_;
  Cycles busy_until_ = 0;
  Cycles total_busy_ = 0;
  trace::Tracer* tracer_ = nullptr;
  uint32_t trace_track_ = 0;
};

}  // namespace exo::sim

#endif  // EXO_SIM_CPU_METER_H_
