// Crash-consistency sweep driver: run a trial once per power-cut point.
//
// The harness pattern (Sec. 4.4's recoverable-at-any-instant claim, turned into a
// checkable property): first run the workload fault-free and count its durable
// block writes K; then for every k in [1, K], re-run with power cut after the k-th
// write, recover, and check invariants. This module is workload-agnostic — the trial
// callback owns machine construction, the workload, recovery, and invariant checks,
// and reports failures as human-readable strings.
#ifndef EXO_SIM_SWEEP_H_
#define EXO_SIM_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace exo::sim {

struct SweepOutcome {
  uint64_t trials = 0;
  // (cut point k, what went wrong) for every failed trial.
  std::vector<std::pair<uint64_t, std::string>> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

// Runs trial(k) for k = 1..num_cuts. The trial returns an empty string on success
// or a description of the violated invariant. Every cut point is always visited
// (no early exit) so one report covers the whole schedule space.
SweepOutcome SweepCutPoints(uint64_t num_cuts,
                            const std::function<std::string(uint64_t)>& trial);

}  // namespace exo::sim

#endif  // EXO_SIM_SWEEP_H_
