// Status codes and a lightweight Result<T> used across the exokernel interfaces.
//
// The simulated kernel ABI reports errors by value (no exceptions cross the syscall
// boundary), mirroring how a real kernel returns errno-style codes.
#ifndef EXO_SIM_STATUS_H_
#define EXO_SIM_STATUS_H_

#include <utility>
#include <variant>

#include "sim/check.h"

namespace exo {

enum class Status : int {
  kOk = 0,
  kPermissionDenied,   // capability does not dominate the required guard
  kNotFound,           // no such object (block, env, file, template, ...)
  kAlreadyExists,
  kInvalidArgument,
  kOutOfResources,     // allocation denied: no frames / blocks / slots left
  kWouldBlock,         // operation cannot complete without sleeping
  kBusy,               // resource locked or pinned by another principal
  kTainted,            // XN refused to write a tainted block reachable from a root
  kBadMetadata,        // UDF verification rejected a proposed metadata update
  kVerifierReject,     // downloaded code failed static verification
  kNotSupported,
  kIoError,
  kCrashed,            // simulated crash injected
  kQuotaExceeded,      // per-env resource quota would be exceeded
  kCorrupted,          // integrity check failed: media holds detectably wrong bytes
};

// Human-readable name for diagnostics and test failure messages.
const char* StatusName(Status s);

// Result<T> is a minimal expected-like type: either a value or a non-kOk Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status s) : v_(s) { EXO_CHECK(s != Status::kOk); }  // NOLINT

  bool ok() const { return std::holds_alternative<T>(v_); }
  Status status() const { return ok() ? Status::kOk : std::get<Status>(v_); }

  T& value() {
    EXO_CHECK(ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    EXO_CHECK(ok());
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace exo

#endif  // EXO_SIM_STATUS_H_
