#include "sim/shrink.h"

#include <algorithm>
#include <cstddef>

namespace exo::sim {

namespace {

// The subset of `s` excluding the chunk [lo, hi).
Shrinker::Schedule WithoutChunk(const Shrinker::Schedule& s, size_t lo, size_t hi) {
  Shrinker::Schedule out;
  out.reserve(s.size() - (hi - lo));
  for (size_t i = 0; i < s.size(); ++i) {
    if (i < lo || i >= hi) {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

bool Shrinker::Fails(const Schedule& s) {
  ++probes_;
  return still_fails_(s);
}

Shrinker::Schedule Shrinker::Minimize(Schedule input) {
  probes_ = 0;
  if (input.empty()) {
    return input;
  }

  size_t granularity = 2;
  while (input.size() >= 2) {
    const size_t n = input.size();
    granularity = std::min(granularity, n);
    const size_t chunk = (n + granularity - 1) / granularity;
    bool reduced = false;

    // Try each complement (input minus one chunk): success keeps the failure
    // with fewer events and restarts at coarse granularity on the smaller input.
    for (size_t lo = 0; lo < n; lo += chunk) {
      const size_t hi = std::min(lo + chunk, n);
      Schedule candidate = WithoutChunk(input, lo, hi);
      if (!candidate.empty() && Fails(candidate)) {
        input = std::move(candidate);
        granularity = std::max<size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (reduced) {
      continue;
    }
    // Try each chunk alone (classic ddmin "reduce to subset").
    if (granularity > 2) {
      bool subset_fails = false;
      for (size_t lo = 0; lo < n; lo += chunk) {
        const size_t hi = std::min(lo + chunk, n);
        Schedule candidate(input.begin() + static_cast<long>(lo),
                           input.begin() + static_cast<long>(hi));
        if (candidate.size() < input.size() && Fails(candidate)) {
          input = std::move(candidate);
          granularity = 2;
          subset_fails = true;
          break;
        }
      }
      if (subset_fails) {
        continue;
      }
    }
    if (granularity >= n) {
      break;  // single-event granularity exhausted: input is 1-minimal
    }
    granularity = std::min(n, granularity * 2);
  }
  return input;
}

}  // namespace exo::sim
