// FaultInjector: a seed-deterministic fault plan consulted by every hardware model.
//
// The paper's central storage claim is that XN keeps on-disk metadata recoverable
// after a crash at any instant without synchronous writes (Sec. 4.4), and its TCP
// carries retransmission machinery (Sec. 7.3). Neither path is trustworthy unless it
// can be *driven*: this module injects disk I/O errors, power cuts that tear
// multi-block writes, silent media faults (latent sectors, bit rot, misdirected and
// lost writes), and packet drop/corruption/duplication — all drawn from one
// explicitly seeded Rng so a failing schedule is reproducible from its seed alone.
//
// Determinism contract:
//   - All decisions are drawn from a private Rng in consultation order. The
//     simulation is single-threaded and event-ordering is deterministic, so the same
//     seed plus the same workload yields byte-for-byte the same fault schedule.
//   - Every decision that injects a fault is appended to an event log; two runs may
//     be compared with FaultInjector::log() to prove schedule equality.
//   - An unarmed device (no injector attached) draws nothing and charges nothing:
//     fault support is a single null-pointer test on the hot path, so benchmark
//     outputs are bit-identical with and without the subsystem compiled in.
#ifndef EXO_SIM_FAULT_H_
#define EXO_SIM_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/counters.h"
#include "sim/engine.h"
#include "sim/rng.h"
#include "trace/trace.h"

namespace exo::sim {

// One wire fault, keyed by consultation index: the `frame_index`-th frame to
// enter any link sharing the injector (1-based — the same count rate-mode log
// lines print as `seq=`). This is the replayable unit: the schedule a run
// *executed* (wire_events()) can be fed back verbatim via FaultPlan::wire_script
// and hits the identical frames, because consultation order is deterministic.
struct WireEvent {
  uint64_t frame_index = 0;
  char kind = 'd';              // 'd' drop, 'c' corrupt, 'u' duplicate
  uint64_t corrupt_offset = 0;  // byte to flip, kind == 'c' only

  bool operator==(const WireEvent&) const = default;
};

// One media fault, keyed by consultation index within its *direction* stream.
// Write kinds index the Nth block-write consultation; read kinds index the Nth
// block-read consultation (both 1-based, counted across every request the
// injector sees). Like WireEvent, the schedule a run executed (disk_events())
// replays verbatim through FaultPlan::disk_script.
struct DiskEvent {
  uint64_t index = 0;
  char kind = 'w';   // 'w' lost write, 'm' misdirected write, 'l' latent sector, 'r' bit rot
  uint64_t arg = 0;  // 'm': absolute target LBA; 'r': byte offset to flip; else unused

  bool operator==(const DiskEvent&) const = default;
};

// One whole-machine fault, keyed by *absolute simulated time* (cycles) rather
// than a consultation index: machine death is an external event, not a fate
// drawn on a device's consultation stream. The schedule is applied up front
// (cluster::Topology::ApplyMachineSchedule), so it is ddmin-shrinkable exactly
// like the wire/disk scripts — every subset replays deterministically.
struct MachineEvent {
  uint64_t time = 0;     // engine cycles on the victim machine's shard clock
  char kind = 'k';       // 'k' kill, 'b' reboot
  uint64_t machine = 0;  // cluster-wide machine id

  bool operator==(const MachineEvent&) const = default;
};

// A wire, disk, or machine fault in one combined stream, recorded
// chronologically. The kind letters of the layers are disjoint (d/c/u vs
// w/m/l/r vs k/b), so a single token grammar — and a single ddmin pass —
// covers all of them.
struct FaultEvent {
  char kind = 'd';
  uint64_t index = 0;  // per-layer, per-direction consultation index (or time)
  uint64_t arg = 0;

  bool operator==(const FaultEvent&) const = default;
};

inline bool IsWireFaultKind(char k) { return k == 'd' || k == 'c' || k == 'u'; }
inline bool IsDiskFaultKind(char k) { return k == 'w' || k == 'm' || k == 'l' || k == 'r'; }
inline bool IsMachineFaultKind(char k) { return k == 'k' || k == 'b'; }

// Compact one-line codecs: "d@3 c@15:7 u@20" (wire), "w@9 m@5:917 l@2 r@7:128"
// (disk), and the union grammar for combined schedules. kinds 'c'/'r'/'m' carry
// a mandatory :arg; the others forbid one. Parsers are strict: any garbage
// token, overflow, zero index, or duplicate index within a stream yields an
// empty schedule, with a diagnostic in *error when supplied — never a silent
// misparse.
std::string FormatWireSchedule(const std::vector<WireEvent>& events);
std::vector<WireEvent> ParseWireSchedule(const std::string& text,
                                         std::string* error = nullptr);
std::string FormatDiskSchedule(const std::vector<DiskEvent>& events);
std::vector<DiskEvent> ParseDiskSchedule(const std::string& text,
                                         std::string* error = nullptr);
std::string FormatFaultSchedule(const std::vector<FaultEvent>& events);
std::vector<FaultEvent> ParseFaultSchedule(const std::string& text,
                                           std::string* error = nullptr);

// Machine schedule codec: "k@5000:1 b@90000:1" kills machine 1 at cycle 5000
// and reboots it at cycle 90000. Both kinds carry a mandatory :machine arg.
// Two events for the *same machine* at the same cycle are rejected (ambiguous
// order); events for different machines may share a cycle.
std::string FormatMachineSchedule(const std::vector<MachineEvent>& events);
std::vector<MachineEvent> ParseMachineSchedule(const std::string& text,
                                               std::string* error = nullptr);

// Splits a combined schedule into its per-layer scripts (the inverse of the
// merged fault_events() recording). Sound because indices are per-stream. The
// two-argument form ignores machine events; pass `machine` to collect them.
void SplitFaultSchedule(const std::vector<FaultEvent>& events,
                        std::vector<WireEvent>* wire, std::vector<DiskEvent>* disk);
void SplitFaultSchedule(const std::vector<FaultEvent>& events,
                        std::vector<WireEvent>* wire, std::vector<DiskEvent>* disk,
                        std::vector<MachineEvent>* machine);

// Declarative description of the faults to inject. Rates are per-consultation
// probabilities in [0, 1]; 0 disables the corresponding fault class.
struct FaultPlan {
  uint64_t seed = 1;

  // ---- Disk: fail-stop ----
  // Probability that a disk request fails wholesale with Status::kIoError (no DMA
  // is performed; the media is untouched). Transient: a retry redraws.
  double disk_error_rate = 0.0;
  // Power-cut point: after the k-th *block* write lands on the platter, power is
  // lost. A multi-block request in flight is torn: blocks before the cut are
  // durable, the rest never happen. 0 disables.
  uint64_t power_cut_after_blocks = 0;

  // ---- Disk: silent media faults ----
  // Per-block-write probability that the write is acked but never durable (media
  // and checksum tag untouched — the classic lost write).
  double disk_lost_rate = 0.0;
  // Per-block-write probability that the block lands at a wrong LBA: the
  // intended block keeps its old contents, the victim is overwritten.
  double disk_misdirect_rate = 0.0;
  // Per-block-read probability that one media byte flips *persistently* before
  // the DMA (silent bit rot surfacing at read time).
  double disk_rot_rate = 0.0;
  // Per-block-read probability that the sector goes latent-bad: this and every
  // later read of it fails with kIoError until the block is rewritten.
  double disk_latent_rate = 0.0;
  // Scripted media mode: when non-empty, media-fault fates come from this
  // explicit schedule instead of the four rates above — no RNG is consulted for
  // the media at all.
  std::vector<DiskEvent> disk_script;

  // ---- Wire ----
  double net_drop_rate = 0.0;       // frame vanishes
  double net_corrupt_rate = 0.0;    // one byte of the frame is flipped
  double net_duplicate_rate = 0.0;  // frame is delivered twice
  // Corruption is confined to bytes at or beyond this offset (protocol payload;
  // headers in this simulation carry no checksum, so flipping them would model a
  // fault the receiver cannot detect). Frames too short to corrupt are dropped
  // instead, which the receiver treats identically (a timeout).
  uint32_t net_corrupt_min_offset = 0;
  // Scripted wire mode: when non-empty, wire fates come from this explicit
  // schedule instead of the rates above — no RNG is consulted for the wire at
  // all. Used to replay (and delta-minimize) a schedule recorded by a previous
  // rate-mode run.
  std::vector<WireEvent> wire_script;

  // ---- Machine ----
  // Whole-machine kill/reboot schedule. The injector itself never consults
  // this (machine death is not a per-device fate): the cluster layer reads it
  // at setup (cluster::Topology::ApplyMachineSchedule) and calls back into
  // RecordMachine when each event fires, so kills land in the same log /
  // trace / counter surface as every other fault.
  std::vector<MachineEvent> machine_script;
};

struct FaultStats {
  uint64_t disk_requests_seen = 0;
  uint64_t disk_io_errors = 0;
  uint64_t disk_blocks_written = 0;  // durable block writes counted toward the cut
  uint64_t power_cuts = 0;
  uint64_t media_writes_seen = 0;    // block-write fate consultations
  uint64_t disk_blocks_read = 0;     // block-read fate consultations
  uint64_t disk_lost_writes = 0;
  uint64_t disk_misdirects = 0;
  uint64_t disk_rot = 0;
  uint64_t disk_latent = 0;
  uint64_t frames_seen = 0;
  uint64_t net_drops = 0;
  uint64_t net_corruptions = 0;
  uint64_t net_duplicates = 0;
  uint64_t machine_kills = 0;
  uint64_t machine_reboots = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {
    for (const WireEvent& e : plan_.wire_script) {
      script_[e.frame_index] = e;
    }
    disk_scripted_ = !plan_.disk_script.empty();
    for (const DiskEvent& e : plan_.disk_script) {
      if (e.kind == 'w' || e.kind == 'm') {
        write_script_[e.index] = e;
      } else {
        read_script_[e.index] = e;
      }
    }
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  // The schedule actually executed, one line per injected fault, in order. Two runs
  // with the same seed and workload must produce identical logs.
  const std::vector<std::string>& log() const { return log_; }

  // The wire faults actually executed, in consultation order, in the replayable
  // form: feed them back through FaultPlan::wire_script (whole or ddmin-pruned —
  // sim::Shrinker) to re-run or minimize the schedule.
  const std::vector<WireEvent>& wire_events() const { return wire_events_; }

  // Same for media faults: replay through FaultPlan::disk_script.
  const std::vector<DiskEvent>& disk_events() const { return disk_events_; }

  // Machine kill/reboot events actually executed, in firing order: replay
  // through FaultPlan::machine_script.
  const std::vector<MachineEvent>& machine_events() const { return machine_events_; }

  // All layers merged chronologically — the unit a combined soak reproducer
  // minimizes. SplitFaultSchedule turns a (pruned) copy back into scripts.
  const std::vector<FaultEvent>& fault_events() const { return fault_events_; }

  // Called by the cluster layer when a scheduled machine event fires, so
  // whole-machine faults join the injector's log / trace / counter surface.
  void RecordMachine(const MachineEvent& e);

  // Mirrors every injected fault into the tracer's `fault` category as an
  // instant event, stamped with the engine clock, so a failing crash-test
  // schedule replays with a visible timeline. First attachment wins (a Disk and
  // a Link sharing one injector both try to wire it); detach with nullptr.
  void AttachTracer(trace::Tracer* tracer, const Engine* engine) {
    if (tracer == nullptr) {
      tracer_ = nullptr;
      engine_ = nullptr;
      return;
    }
    if (tracer_ != nullptr) {
      return;
    }
    tracer_ = tracer;
    engine_ = engine;
    trace_track_ = tracer->NewTrack("faults");
  }
  trace::Tracer* tracer() const { return tracer_; }

  // Mirrors fault counts into the standard counter surface as `fault.*` so
  // activity is observable without reading the injector log (see
  // docs/OBSERVABILITY.md). Same contract as AttachTracer: first attachment
  // wins, nullptr detaches.
  void AttachCounters(Counters* counters);

  // ---- Disk consultation ----

  // Drawn once per disk request as it begins service. True => the request fails
  // with kIoError and performs no transfer.
  bool NextDiskRequestFails(uint64_t start_block, uint32_t nblocks);

  // Called for each block write the instant it becomes durable. Returns true when
  // this write is the k-th and power is lost *after* it (the caller must freeze:
  // later blocks of the same request are torn away).
  bool OnBlockWritten(uint64_t block);

  bool power_cut_pending() const {
    return plan_.power_cut_after_blocks != 0 &&
           stats_.disk_blocks_written < plan_.power_cut_after_blocks;
  }

  // ---- Media consultation ----

  enum class WriteFate { kDurable, kLost, kMisdirect };
  enum class ReadFate { kClean, kRot, kLatent };

  // Drawn once per DMA'd block write, before the transfer. kLost => the caller
  // acks without touching the media; kMisdirect => the data lands at
  // MisdirectTarget() instead of `block`. `num_blocks` bounds the target.
  WriteFate NextWriteFate(uint64_t block, uint64_t num_blocks);
  uint64_t MisdirectTarget() const { return misdirect_target_; }

  // Drawn once per DMA'd block read, before the transfer. kRot => the caller
  // flips the media byte at RotOffset() (persistently) and completes the read;
  // kLatent => the sector is now unreadable until rewritten and the request
  // fails. `block_bytes` bounds the rot offset.
  ReadFate NextReadFate(uint64_t block, uint64_t block_bytes);
  uint64_t RotOffset() const { return rot_offset_; }

  // ---- Wire consultation ----

  enum class WireFate { kDeliver, kDrop, kCorrupt, kDuplicate };

  // Drawn once per frame entering a link. For kCorrupt the caller flips the byte at
  // CorruptionOffset(); for kDuplicate it delivers the frame twice.
  WireFate NextWireFate(uint64_t frame_bytes);

  // Byte index to flip in a frame of `frame_bytes` bytes; only valid immediately
  // after NextWireFate returned kCorrupt for that frame.
  uint64_t CorruptionOffset() const { return corrupt_offset_; }

 private:
  void Log(std::string line) { log_.push_back(std::move(line)); }
  // Emits a `fault` instant if a tracer is attached and the category armed.
  void TraceFault(const char* name, uint64_t arg) {
    if (tracer_ != nullptr && tracer_->enabled(trace::Category::kFault)) {
      tracer_->Instant(trace::Category::kFault, trace_track_, name,
                       engine_ != nullptr ? engine_->now() : 0, arg);
    }
  }
  void Count(Counters::Slot* slot) {
    if (slot != nullptr) {
      ++*slot;
    }
  }
  void RecordWire(const WireEvent& e) {
    wire_events_.push_back(e);
    fault_events_.push_back(FaultEvent{e.kind, e.frame_index, e.corrupt_offset});
  }
  void RecordDisk(const DiskEvent& e) {
    disk_events_.push_back(e);
    fault_events_.push_back(FaultEvent{e.kind, e.index, e.arg});
  }

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  uint64_t corrupt_offset_ = 0;
  uint64_t misdirect_target_ = 0;
  uint64_t rot_offset_ = 0;
  bool disk_scripted_ = false;
  std::vector<std::string> log_;
  std::vector<WireEvent> wire_events_;
  std::vector<DiskEvent> disk_events_;
  std::vector<MachineEvent> machine_events_;
  std::vector<FaultEvent> fault_events_;
  std::map<uint64_t, WireEvent> script_;        // wire_script indexed by frame_index
  std::map<uint64_t, DiskEvent> write_script_;  // disk_script, write-stream kinds
  std::map<uint64_t, DiskEvent> read_script_;   // disk_script, read-stream kinds
  trace::Tracer* tracer_ = nullptr;
  const Engine* engine_ = nullptr;
  uint32_t trace_track_ = 0;
  Counters::Slot* c_disk_io_errors_ = nullptr;
  Counters::Slot* c_power_cuts_ = nullptr;
  Counters::Slot* c_lost_writes_ = nullptr;
  Counters::Slot* c_misdirects_ = nullptr;
  Counters::Slot* c_rot_ = nullptr;
  Counters::Slot* c_latent_ = nullptr;
  Counters::Slot* c_net_drops_ = nullptr;
  Counters::Slot* c_net_corruptions_ = nullptr;
  Counters::Slot* c_net_duplicates_ = nullptr;
  Counters::Slot* c_machine_kills_ = nullptr;
  Counters::Slot* c_machine_reboots_ = nullptr;
  bool counters_attached_ = false;
};

}  // namespace exo::sim

#endif  // EXO_SIM_FAULT_H_
