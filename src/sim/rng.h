// Deterministic pseudo-random number generator (xoshiro256**, seeded via splitmix64).
//
// Every stochastic choice in the simulation draws from an explicitly seeded Rng so that
// whole-system runs are reproducible; this matches the paper's methodology of identical
// pseudo-random schedules across compared systems (Section 8).
#ifndef EXO_SIM_RNG_H_
#define EXO_SIM_RNG_H_

#include <cstdint>

namespace exo::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace exo::sim

#endif  // EXO_SIM_RNG_H_
