// Named event counters (syscall counts, disk seeks, packets sent, ...).
//
// The paper reports event counts alongside times (e.g. 300,000 vs 81,000 syscalls in
// Sec. 6.3); benches read these counters to regenerate those rows. Hot paths cache a
// pointer to the underlying slot via Handle() so counting is branch-free.
#ifndef EXO_SIM_COUNTERS_H_
#define EXO_SIM_COUNTERS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace exo::sim {

class Counters {
 public:
  using Slot = uint64_t;

  // Returns a stable pointer to the named counter, creating it at zero.
  Slot* Handle(const std::string& name) {
    auto it = slots_.find(name);
    if (it == slots_.end()) {
      it = slots_.emplace(name, std::make_unique<Slot>(0)).first;
    }
    return it->second.get();
  }

  void Add(const std::string& name, uint64_t delta = 1) { *Handle(name) += delta; }
  uint64_t Get(const std::string& name) const {
    auto it = slots_.find(name);
    return it == slots_.end() ? 0 : *it->second;
  }

  void Reset() {
    for (auto& [name, slot] : slots_) {
      *slot = 0;
    }
  }

  // Sorted (name, value) pairs for report printing.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const {
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) {
      out.emplace_back(name, *slot);
    }
    return out;
  }

  // Sorted (name, value) pairs for counters whose name starts with `prefix`
  // (e.g. "xok." or "disk."). The map is sorted, so this walks only the
  // matching range.
  std::vector<std::pair<std::string, uint64_t>> Snapshot(const std::string& prefix) const {
    std::vector<std::pair<std::string, uint64_t>> out;
    for (auto it = slots_.lower_bound(prefix);
         it != slots_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
      out.emplace_back(it->first, *it->second);
    }
    return out;
  }

 private:
  std::map<std::string, std::unique_ptr<Slot>> slots_;
};

}  // namespace exo::sim

#endif  // EXO_SIM_COUNTERS_H_
