// Named event counters (syscall counts, disk seeks, packets sent, ...).
//
// The paper reports event counts alongside times (e.g. 300,000 vs 81,000 syscalls in
// Sec. 6.3); benches read these counters to regenerate those rows. Hot paths cache a
// pointer to the underlying slot via Handle() so counting is branch-free.
#ifndef EXO_SIM_COUNTERS_H_
#define EXO_SIM_COUNTERS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace exo::sim {

class Counters {
 public:
  using Slot = uint64_t;

  // Returns a stable pointer to the named counter, creating it at zero.
  Slot* Handle(const std::string& name) {
    const std::string key = prefix_.empty() ? name : prefix_ + name;
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(key, std::make_unique<Slot>(0)).first;
    }
    return it->second.get();
  }

  void Add(const std::string& name, uint64_t delta = 1) { *Handle(name) += delta; }
  uint64_t Get(const std::string& name) const {
    auto it = slots_.find(prefix_.empty() ? name : prefix_ + name);
    return it == slots_.end() ? 0 : *it->second;
  }

  // Prefixes every counter name with `prefix` ("m3." in a cluster), so merged
  // multi-machine snapshots attribute unambiguously. Existing slots are
  // re-keyed in place: cached Handle() pointers stay valid because slot
  // storage is heap-allocated and survives the re-key. Apply at most once,
  // before any same-named counters from two machines are merged; the default
  // (empty) leaves single-machine names byte-identical to the historical ones.
  void SetPrefix(const std::string& prefix) {
    if (prefix == prefix_) {
      return;
    }
    std::map<std::string, std::unique_ptr<Slot>> renamed;
    for (auto& [name, slot] : slots_) {
      const std::string base = name.substr(prefix_.size());
      renamed.emplace(prefix + base, std::move(slot));
    }
    slots_ = std::move(renamed);
    prefix_ = prefix;
  }
  const std::string& prefix() const { return prefix_; }

  void Reset() {
    for (auto& [name, slot] : slots_) {
      *slot = 0;
    }
  }

  // Sorted (name, value) pairs for report printing.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const {
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) {
      out.emplace_back(name, *slot);
    }
    return out;
  }

  // Sorted (name, value) pairs for counters whose name starts with `prefix`
  // (e.g. "xok." or "disk."). The map is sorted, so this walks only the
  // matching range.
  std::vector<std::pair<std::string, uint64_t>> Snapshot(const std::string& prefix) const {
    std::vector<std::pair<std::string, uint64_t>> out;
    for (auto it = slots_.lower_bound(prefix);
         it != slots_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
      out.emplace_back(it->first, *it->second);
    }
    return out;
  }

 private:
  std::map<std::string, std::unique_ptr<Slot>> slots_;
  std::string prefix_;
};

}  // namespace exo::sim

#endif  // EXO_SIM_COUNTERS_H_
