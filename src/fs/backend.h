// FsBackend: the storage substrate interface file systems are written against.
//
// The same C-FFS (and FFS) code runs in two protection regimes, exactly as in the
// paper, where C-FFS existed both as a libFS over XN and ported inside OpenBSD
// (Sec. 6):
//   - XnBackend (xn_backend.h): every metadata mutation is a guarded XN operation
//     verified by UDFs; cache pages are application-owned frames in the buffer-cache
//     registry; ordering rules are enforced by XN's taint tracking.
//   - KernelBackend (kernel_backend.h): the monolithic-kernel regime; the kernel
//     trusts the file system, keeps its own buffer cache (unified or fixed-size,
//     selecting the FreeBSD/OpenBSD flavor), and applies modifications directly.
//
// All calls are synchronous from the caller's point of view; backends block the
// calling (simulated) process through a Blocker until device I/O completes.
#ifndef EXO_FS_BACKEND_H_
#define EXO_FS_BACKEND_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "hw/disk.h"
#include "sim/cost_model.h"
#include "sim/status.h"
#include "udf/insn.h"
#include "xn/types.h"

namespace exo::fs {

// How a file system waits for a condition (disk completion) while letting the rest
// of the simulated system run. ExOS blocks via kernel wakeup predicates; the BSD
// kernel blocks via its own sleep queue; unit tests spin the event engine.
using Blocker = std::function<void(const std::function<bool()>& ready)>;

class FsBackend {
 public:
  virtual ~FsBackend() = default;

  // ---- Guarded metadata operations (mirror the XN protocol) ----

  // Applies `mods` to metadata block `meta`, claiming ownership of `to_alloc`.
  virtual Status Alloc(hw::BlockId meta, const xn::Mods& mods,
                       std::span<const udf::Extent> to_alloc) = 0;
  // Applies `mods`, releasing ownership of `to_free`.
  virtual Status Dealloc(hw::BlockId meta, const xn::Mods& mods,
                         std::span<const udf::Extent> to_free) = 0;
  // Ownership-preserving metadata update.
  virtual Status Modify(hw::BlockId meta, const xn::Mods& mods) = 0;

  // ---- Cache access ----

  // Ensures `block` (owned by metadata block `parent`) is cached; returns a read-only
  // view of its bytes valid until the next backend call. Blocks on disk I/O.
  virtual Result<std::span<const uint8_t>> GetBlock(hw::BlockId block, hw::BlockId parent) = 0;

  // Writable view of a cached DATA block (metadata must go through Alloc/Modify).
  // Marks the block dirty.
  virtual Result<std::span<uint8_t>> GetDataWritable(hw::BlockId block, hw::BlockId parent) = 0;

  // Installs a fresh zeroed cache page for a just-allocated block without reading
  // the stale disk contents.
  virtual Status InstallFresh(hw::BlockId block, hw::BlockId parent) = 0;

  // Drops a clean cached block (cache management belongs to the file system in the
  // exokernel regime; the kernel regime may ignore this hint).
  virtual void Release(hw::BlockId block) = 0;

  // ---- Durability ----

  // Asynchronously writes dirty blocks; returns without waiting. Blocks whose
  // ordering constraints are unmet (XN taint) are skipped and reported in
  // `deferred` if non-null.
  virtual Status FlushAsync(std::span<const hw::BlockId> blocks,
                            std::vector<hw::BlockId>* deferred) = 0;
  // Writes dirty blocks and waits for completion, retrying ordering-deferred blocks
  // after their children land (bottom-up flush driver).
  virtual Status FlushSync(std::span<const hw::BlockId> blocks) = 0;
  // True when the block has reached the platter (not dirty, not in transit).
  virtual bool IsClean(hw::BlockId block) const = 0;

  // ---- Allocation placement (exposed free map) ----

  virtual Result<hw::BlockId> FindFreeRun(hw::BlockId hint, uint32_t count) const = 0;
  virtual uint32_t FreeBlockCount() const = 0;
  virtual hw::BlockId FirstDataBlock() const = 0;
  virtual uint32_t NumBlocks() const = 0;

  // ---- Setup ----

  // Registers/loads a named root of the given format; returns its block.
  virtual Result<hw::BlockId> CreateRoot(const std::string& name, uint32_t tmpl) = 0;
  virtual Result<hw::BlockId> OpenRoot(const std::string& name) = 0;

  // Registers a metadata format. XN verifies and persists templates; the kernel
  // backend only records is_metadata (it trusts the FS and never runs UDFs).
  virtual Result<uint32_t> RegisterTemplate(const xn::Template& t) = 0;

  // CPU accounting for file-system code paths (directory scans, copies into user
  // buffers, checksum work) — charged to the simulated clock.
  virtual void ChargeCpu(sim::Cycles cycles) = 0;
  virtual const sim::CostModel& cost() const = 0;
  // The machine's tracer, so file systems built on this backend can emit
  // `fs`-category records without extra wiring (nullptr: untraced backend).
  virtual trace::Tracer* tracer() { return nullptr; }
  // Current simulated time (reading the cycle counter is free).
  virtual sim::Cycles Now() const = 0;
  // True when the block is present in the cache/registry (exposed state).
  virtual bool IsCached(hw::BlockId block) const = 0;
};

}  // namespace exo::fs

#endif  // EXO_FS_BACKEND_H_
