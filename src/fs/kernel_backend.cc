#include "fs/kernel_backend.h"

#include <cstring>

namespace exo::fs {

namespace {
// Transient I/O errors (injected or real) are retried a few times with exponential
// backoff before surfacing; each wait is charged as CPU-visible delay.
constexpr int kIoRetries = 4;
sim::Cycles BackoffCycles(const sim::CostModel& cost, int attempt) {
  return static_cast<sim::Cycles>(100u << attempt) * cost.cpu_mhz;  // 100us, 200us, ...
}
}  // namespace

KernelBackend::KernelBackend(hw::Machine* machine, hw::Disk* disk, Blocker blocker,
                             const KernelBackendOptions& options)
    : machine_(machine), disk_(disk), blocker_(std::move(blocker)), options_(options) {
  Format();
}

KernelBackend::~KernelBackend() {
  for (auto& [b, e] : cache_) {
    machine_->mem().Unref(e.frame);
  }
}

void KernelBackend::Format() {
  const uint32_t nblocks = disk_->geometry().num_blocks;
  first_data_block_ = 1;  // block 0 reserved as a superblock stand-in
  free_map_.assign(nblocks, 1);
  free_map_[0] = 0;
  free_count_ = nblocks - 1;
  roots_.clear();
}

void KernelBackend::MarkAllocated(hw::BlockId b, bool allocated) {
  EXO_CHECK_LT(b, free_map_.size());
  if (allocated) {
    EXO_CHECK(free_map_[b]);
    free_map_[b] = 0;
    --free_count_;
  } else {
    EXO_CHECK(!free_map_[b]);
    free_map_[b] = 1;
    ++free_count_;
  }
}

Status KernelBackend::MakeRoom() {
  const bool unified = options_.max_cache_blocks == 0;
  auto over_budget = [&] {
    if (unified) {
      // Unified cache: keep a small reserve of frames for the rest of the system.
      return machine_->mem().free_frames() < 64;
    }
    return cache_.size() >= options_.max_cache_blocks;
  };
  while (over_budget() && !cache_.empty()) {
    // Evict the LRU entry; write back first if dirty (the application waits — this
    // is precisely the "kernel decides, application pays" policy exokernels avoid).
    hw::BlockId victim = hw::kInvalidBlock;
    uint64_t best = UINT64_MAX;
    for (const auto& [b, e] : cache_) {
      if (!e.in_transit && !e.write_transit && e.lru < best) {
        best = e.lru;
        victim = b;
      }
    }
    if (victim == hw::kInvalidBlock) {
      return Status::kOutOfResources;
    }
    Entry& e = cache_[victim];
    if (e.dirty) {
      Status ws = Status::kOk;
      for (int attempt = 0; attempt < kIoRetries; ++attempt) {
        e.in_transit = true;
        bool done = false;
        Status result = Status::kOk;
        disk_->Submit({.write = true,
                       .start = victim,
                       .nblocks = 1,
                       .frames = {e.frame},
                       .done = [&done, &result](Status s) {
                         result = s;
                         done = true;
                       }});
        blocker_([&done] { return done; });
        e.in_transit = false;
        ws = result;
        if (ws == Status::kOk) {
          break;
        }
        machine_->Charge(BackoffCycles(machine_->cost(), attempt));
      }
      if (ws != Status::kOk) {
        return Status::kIoError;  // cannot evict without losing the only good copy
      }
      e.dirty = false;
    }
    machine_->mem().Unref(e.frame);
    cache_.erase(victim);
  }
  return Status::kOk;
}

Status KernelBackend::EnsureCached(hw::BlockId block, bool read_from_disk) {
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    if (it->second.in_transit) {
      blocker_([this, block] {
        auto it2 = cache_.find(block);
        return it2 == cache_.end() || !it2->second.in_transit;
      });
      it = cache_.find(block);  // the wait may have evicted or re-keyed the entry
      if (it == cache_.end()) {
        return EnsureCached(block, read_from_disk);
      }
    }
    it->second.lru = ++lru_clock_;
    ++hits_;
    return Status::kOk;
  }
  ++misses_;
  Status room = MakeRoom();
  if (room != Status::kOk) {
    return room;
  }
  auto f = machine_->mem().Alloc();
  if (!f.ok()) {
    return f.status();
  }
  Entry e;
  e.frame = *f;
  e.lru = ++lru_clock_;
  if (read_from_disk) {
    e.in_transit = true;
    cache_[block] = e;
    Status rs = Status::kOk;
    for (int attempt = 0; attempt < kIoRetries; ++attempt) {
      bool done = false;
      Status result = Status::kOk;
      disk_->Submit({.write = false,
                     .start = block,
                     .nblocks = 1,
                     .frames = {*f},
                     .done = [&done, &result](Status s) {
                       result = s;
                       done = true;
                     }});
      blocker_([&done] { return done; });
      rs = result;
      if (rs == Status::kOk) {
        break;
      }
      machine_->Charge(BackoffCycles(machine_->cost(), attempt));
    }
    cache_[block].in_transit = false;
    if (rs != Status::kOk) {
      // The frame holds garbage; unwind the mapping so later calls retry cleanly.
      machine_->mem().Unref(*f);
      cache_.erase(block);
      return rs;
    }
  } else {
    machine_->mem().ZeroFrame(*f);
    machine_->Charge(machine_->cost().ZeroCost(hw::kPageSize));
    e.dirty = true;
    cache_[block] = e;
  }
  return Status::kOk;
}

Status KernelBackend::Alloc(hw::BlockId meta, const xn::Mods& mods,
                            std::span<const udf::Extent> to_alloc) {
  // Validate the free map, then trust the file system (no UDF verification).
  for (const udf::Extent& ext : to_alloc) {
    for (uint32_t i = 0; i < ext.count; ++i) {
      hw::BlockId b = ext.start + i;
      if (b >= free_map_.size() || !free_map_[b]) {
        return Status::kOutOfResources;
      }
    }
  }
  Status s = Modify(meta, mods);
  if (s != Status::kOk) {
    return s;
  }
  for (const udf::Extent& ext : to_alloc) {
    for (uint32_t i = 0; i < ext.count; ++i) {
      MarkAllocated(ext.start + i, true);
    }
  }
  return Status::kOk;
}

Status KernelBackend::Dealloc(hw::BlockId meta, const xn::Mods& mods,
                              std::span<const udf::Extent> to_free) {
  Status s = Modify(meta, mods);
  if (s != Status::kOk) {
    return s;
  }
  for (const udf::Extent& ext : to_free) {
    for (uint32_t i = 0; i < ext.count; ++i) {
      hw::BlockId b = ext.start + i;
      MarkAllocated(b, false);
      auto it = cache_.find(b);
      if (it != cache_.end() && !it->second.in_transit) {
        machine_->mem().Unref(it->second.frame);
        cache_.erase(it);
      }
    }
  }
  return Status::kOk;
}

Status KernelBackend::Modify(hw::BlockId meta, const xn::Mods& mods) {
  Status s = EnsureCached(meta, /*read_from_disk=*/true);
  if (s != Status::kOk) {
    return s;
  }
  blocker_([this, meta] {
    auto it = cache_.find(meta);
    return it == cache_.end() || !it->second.write_transit;
  });
  Entry& e = cache_[meta];
  auto bytes = machine_->mem().Data(e.frame);
  for (const xn::ByteMod& m : mods) {
    if (static_cast<uint64_t>(m.offset) + m.bytes.size() > bytes.size()) {
      return Status::kInvalidArgument;
    }
    std::memcpy(bytes.data() + m.offset, m.bytes.data(), m.bytes.size());
    machine_->Charge(machine_->cost().CopyCost(m.bytes.size()));
  }
  e.dirty = true;
  return Status::kOk;
}

Result<std::span<const uint8_t>> KernelBackend::GetBlock(hw::BlockId block, hw::BlockId) {
  Status s = EnsureCached(block, /*read_from_disk=*/true);
  if (s != Status::kOk) {
    return s;
  }
  return std::span<const uint8_t>(machine_->mem().Data(cache_[block].frame));
}

Result<std::span<uint8_t>> KernelBackend::GetDataWritable(hw::BlockId block, hw::BlockId) {
  Status s = EnsureCached(block, /*read_from_disk=*/true);
  if (s != Status::kOk) {
    return s;
  }
  blocker_([this, block] {
    auto it = cache_.find(block);
    return it == cache_.end() || !it->second.write_transit;
  });
  Entry& e = cache_[block];
  e.dirty = true;
  return std::span<uint8_t>(machine_->mem().Data(e.frame));
}

Status KernelBackend::InstallFresh(hw::BlockId block, hw::BlockId) {
  return EnsureCached(block, /*read_from_disk=*/false);
}

void KernelBackend::Release(hw::BlockId block) {
  // The kernel, not the application, decides eviction: this is a no-op hint.
}

Status KernelBackend::FlushAsync(std::span<const hw::BlockId> blocks,
                                 std::vector<hw::BlockId>* deferred) {
  for (hw::BlockId b : blocks) {
    auto it = cache_.find(b);
    if (it == cache_.end() || !it->second.dirty || it->second.in_transit ||
        it->second.write_transit) {
      continue;
    }
    Entry& e = it->second;
    e.write_transit = true;
    e.dirty = false;
    disk_->Submit({.write = true,
                   .start = b,
                   .nblocks = 1,
                   .frames = {e.frame},
                   .done = [this, b](Status s) {
                     auto it2 = cache_.find(b);
                     if (it2 != cache_.end()) {
                       it2->second.write_transit = false;
                       if (s != Status::kOk) {
                         // Never reached the platter: re-dirty so FlushSync's next
                         // round (or a later flush) retries the write.
                         it2->second.dirty = true;
                       }
                     }
                   }});
  }
  return Status::kOk;
}

Status KernelBackend::FlushSync(std::span<const hw::BlockId> blocks) {
  // Loop until every block is clean: concurrent processes may re-dirty a shared
  // block (e.g. an inode block holding 32 inodes) while our write is in flight, so
  // one submission round is not enough.
  for (int round = 0; round < 100'000; ++round) {
    bool all_clean = true;
    for (hw::BlockId b : blocks) {
      if (!IsClean(b)) {
        all_clean = false;
        break;
      }
    }
    if (all_clean) {
      return Status::kOk;
    }
    Status s = FlushAsync(blocks, nullptr);
    if (s != Status::kOk) {
      return s;
    }
    // Wait until our writes quiesce (or the entries vanish), then re-check dirt.
    blocker_([this, &blocks] {
      for (hw::BlockId b : blocks) {
        auto it = cache_.find(b);
        if (it != cache_.end() && (it->second.in_transit || it->second.write_transit)) {
          return false;
        }
      }
      return true;
    });
  }
  return Status::kIoError;
}

bool KernelBackend::IsClean(hw::BlockId block) const {
  auto it = cache_.find(block);
  return it == cache_.end() ||
         (!it->second.dirty && !it->second.in_transit && !it->second.write_transit);
}

Result<hw::BlockId> KernelBackend::FindFreeRun(hw::BlockId hint, uint32_t count) const {
  if (count == 0) {
    return Status::kInvalidArgument;
  }
  const uint32_t n = static_cast<uint32_t>(free_map_.size());
  hw::BlockId start = std::max(hint, first_data_block_);
  for (int pass = 0; pass < 2; ++pass) {
    uint32_t run = 0;
    for (hw::BlockId b = start; b < n; ++b) {
      run = free_map_[b] ? run + 1 : 0;
      if (run == count) {
        return b - count + 1;
      }
    }
    start = first_data_block_;
  }
  return Status::kOutOfResources;
}

uint32_t KernelBackend::FreeBlockCount() const { return free_count_; }
hw::BlockId KernelBackend::FirstDataBlock() const { return first_data_block_; }
uint32_t KernelBackend::NumBlocks() const { return disk_->geometry().num_blocks; }

Result<hw::BlockId> KernelBackend::CreateRoot(const std::string& name, uint32_t tmpl) {
  if (roots_.count(name) != 0) {
    return Status::kAlreadyExists;
  }
  auto b = FindFreeRun(first_data_block_, 1);
  if (!b.ok()) {
    return b.status();
  }
  MarkAllocated(*b, true);
  roots_[name] = *b;
  Status s = EnsureCached(*b, /*read_from_disk=*/false);
  if (s != Status::kOk) {
    return s;
  }
  return *b;
}

Result<hw::BlockId> KernelBackend::OpenRoot(const std::string& name) {
  auto it = roots_.find(name);
  if (it == roots_.end()) {
    return Status::kNotFound;
  }
  return it->second;
}

Result<uint32_t> KernelBackend::RegisterTemplate(const xn::Template& t) {
  // The kernel trusts the file system: templates are only identifiers here.
  return next_template_++;
}

}  // namespace exo::fs
