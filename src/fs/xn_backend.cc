#include "fs/xn_backend.h"

#include <cstring>

namespace exo::fs {

namespace {
// Transient I/O errors are retried with exponential backoff before surfacing.
constexpr int kIoRetries = 4;
constexpr sim::Cycles BackoffUs(int attempt) { return 100u << attempt; }
}  // namespace

XnBackend::XnBackend(xn::Xn* xn, xn::Caps creds, Blocker blocker,
                     std::function<hw::FrameId()> frame_alloc)
    : xn_(xn),
      creds_(std::move(creds)),
      blocker_(std::move(blocker)),
      frame_alloc_(std::move(frame_alloc)) {}

Result<hw::FrameId> XnBackend::TakeFrame() {
  hw::FrameId f = frame_alloc_();
  if (f != hw::kInvalidFrame) {
    return f;
  }
  // Out of memory: recycle the least-recently-used clean buffer — the default policy
  // XN supports but does not mandate (Sec. 4.3.3).
  auto recycled = xn_->RecycleOldest();
  if (!recycled.ok()) {
    return Status::kOutOfResources;
  }
  return *recycled;
}

void XnBackend::WaitResident(hw::BlockId block) {
  blocker_([this, block] {
    const xn::RegistryEntry* e = xn_->registry().Lookup(block);
    return e == nullptr || e->state == xn::BufState::kResident ||
           e->state == xn::BufState::kUninitialized;
  });
}

Status XnBackend::Alloc(hw::BlockId meta, const xn::Mods& mods,
                        std::span<const udf::Extent> to_alloc) {
  for (;;) {
    Status s = xn_->Alloc(meta, mods, to_alloc, creds_);
    if (s != Status::kBusy) {
      return s;
    }
    WaitResident(meta);  // a background flush holds the block; wait and retry
  }
}

Status XnBackend::Dealloc(hw::BlockId meta, const xn::Mods& mods,
                          std::span<const udf::Extent> to_free) {
  for (;;) {
    Status s = xn_->Dealloc(meta, mods, to_free, creds_);
    if (s != Status::kBusy) {
      return s;
    }
    WaitResident(meta);
  }
}

Status XnBackend::Modify(hw::BlockId meta, const xn::Mods& mods) {
  for (;;) {
    Status s = xn_->Modify(meta, mods, creds_);
    if (s != Status::kBusy) {
      return s;
    }
    WaitResident(meta);
  }
}

Status XnBackend::EnsureCached(hw::BlockId block, hw::BlockId parent) {
  // Loop because a buffer another process is bringing in (or that we are waiting on)
  // can be recycled under memory pressure before we get to run — or because the read
  // failed, in which case XN unwinds the mapping entirely. Both look identical from
  // here ("entry gone"): treat them as a wake-up and re-issue the read.
  for (int tries = 0; tries < 64; ++tries) {
    if (tries > 0 && tries <= kIoRetries) {
      ChargeCpu(BackoffUs(tries - 1) * cost().cpu_mhz);
    }
    // Read-repair: a block quarantined by an earlier integrity failure is retried
    // once through XN's repair path (rewrite from a clean cached copy). If no such
    // copy exists the corruption is surfaced, never read around.
    if (xn_->IsQuarantined(block) && xn_->TryRepair(block) != Status::kOk) {
      return Status::kCorrupted;
    }
    const xn::RegistryEntry* e = xn_->registry().Lookup(block);
    if (e != nullptr && (e->state == xn::BufState::kResident ||
                         e->state == xn::BufState::kWriteTransit)) {
      return Status::kOk;  // write-back in flight: the frame is still readable
    }
    if (e == nullptr) {
      auto f = TakeFrame();
      if (!f.ok()) {
        return f.status();
      }
      hw::BlockId blocks[1] = {block};
      hw::FrameId frames[1] = {*f};
      Status s = xn_->ReadAndInsert(parent, blocks, frames, creds_, {});
      while (s == Status::kBusy) {
        WaitResident(parent);
        WaitResident(block);
        s = xn_->ReadAndInsert(parent, blocks, frames, creds_, {});
      }
      // The registry took its own reference; drop ours: the buffer is registry-owned.
      xn_->ReleaseFrame(*f);
      if (s != Status::kOk && s != Status::kAlreadyExists) {
        return s;
      }
    }
    // Wait for the read to land OR the entry to disappear (recycled): both wake us.
    blocker_([this, block] {
      const xn::RegistryEntry* e2 = xn_->registry().Lookup(block);
      return e2 == nullptr || e2->state == xn::BufState::kResident ||
             e2->state == xn::BufState::kWriteTransit;
    });
  }
  return Status::kIoError;  // persistent recycle race: treat as I/O failure
}

Result<std::span<const uint8_t>> XnBackend::GetBlock(hw::BlockId block, hw::BlockId parent) {
  Status s = EnsureCached(block, parent);
  if (s != Status::kOk) {
    return s;
  }
  return std::span<const uint8_t>(
      xn_->machine().mem().Data(xn_->registry().Lookup(block)->frame));
}

Result<std::span<uint8_t>> XnBackend::GetDataWritable(hw::BlockId block, hw::BlockId parent) {
  Status s = EnsureCached(block, parent);
  if (s != Status::kOk) {
    return s;
  }
  WaitResident(block);  // mutating the frame during a write DMA would corrupt it
  const xn::RegistryEntry* e = xn_->registry().Lookup(block);
  // XN forbids mapping metadata read/write; data blocks are application-owned.
  if (e->tmpl != xn::kDataTemplate) {
    return Status::kPermissionDenied;
  }
  // Mark dirty through the registry (the mapping the app holds is writable).
  const_cast<xn::RegistryEntry*>(e)->dirty = true;
  return std::span<uint8_t>(xn_->machine().mem().Data(e->frame));
}

Status XnBackend::InstallFresh(hw::BlockId block, hw::BlockId parent) {
  auto f = TakeFrame();
  if (!f.ok()) {
    return f.status();
  }
  xn_->machine().mem().ZeroFrame(*f);
  ChargeCpu(cost().ZeroCost(hw::kPageSize));
  Status s = xn_->InsertMapping(block, parent, *f, /*dirty=*/true, creds_);
  while (s == Status::kBusy) {
    WaitResident(parent);
    s = xn_->InsertMapping(block, parent, *f, /*dirty=*/true, creds_);
  }
  xn_->ReleaseFrame(*f);
  return s;
}

void XnBackend::Release(hw::BlockId block) { (void)xn_->RemoveMapping(block); }

Status XnBackend::FlushAsync(std::span<const hw::BlockId> blocks,
                             std::vector<hw::BlockId>* deferred) {
  // XN validates a whole Write() call at once; submit blocks individually so one
  // tainted parent does not hold back its (writable) siblings.
  for (hw::BlockId b : blocks) {
    const xn::RegistryEntry* e = xn_->registry().Lookup(b);
    if (e == nullptr || !e->dirty || e->state != xn::BufState::kResident) {
      continue;  // nothing to do (already clean or already on its way)
    }
    hw::BlockId one[1] = {b};
    Status s = xn_->Write(one, {});
    if (s == Status::kTainted || s == Status::kBusy) {
      if (deferred != nullptr) {
        deferred->push_back(b);
      }
      continue;
    }
    if (s != Status::kOk) {
      return s;
    }
  }
  return Status::kOk;
}

Status XnBackend::FlushSync(std::span<const hw::BlockId> blocks) {
  // Bottom-up retry loop: each round, submit everything whose ordering constraints
  // are satisfied, wait for the disk to quiesce, then retry — both taint-deferred
  // parents (XN's rule 2; ordering is the libFS's half of the contract, Sec. 4.3.2)
  // and blocks that concurrent processes re-dirtied while our writes were in flight.
  for (int round = 0; round < 100'000; ++round) {
    std::vector<hw::BlockId> dirty;
    bool any_in_transit = false;
    for (hw::BlockId b : blocks) {
      const xn::RegistryEntry* e = xn_->registry().Lookup(b);
      if (e == nullptr) {
        continue;
      }
      if (e->state == xn::BufState::kInTransit || e->state == xn::BufState::kWriteTransit) {
        any_in_transit = true;
      } else if (e->dirty) {
        dirty.push_back(b);
      }
    }
    if (dirty.empty() && !any_in_transit) {
      return Status::kOk;
    }
    std::vector<hw::BlockId> deferred;
    if (!dirty.empty()) {
      Status s = FlushAsync(dirty, &deferred);
      if (s != Status::kOk) {
        return s;
      }
      if (deferred.size() == dirty.size() && !any_in_transit) {
        return Status::kTainted;  // nothing can progress: constraints unmeetable
      }
    }
    // Wait for outstanding I/O on our blocks to settle before the next round.
    blocker_([this, &blocks] {
      for (hw::BlockId b : blocks) {
        const xn::RegistryEntry* e = xn_->registry().Lookup(b);
        if (e != nullptr && (e->state == xn::BufState::kInTransit ||
                             e->state == xn::BufState::kWriteTransit)) {
          return false;
        }
      }
      return true;
    });
  }
  return Status::kIoError;
}

bool XnBackend::IsClean(hw::BlockId block) const {
  const xn::RegistryEntry* e = xn_->registry().Lookup(block);
  return e == nullptr || (!e->dirty && e->state == xn::BufState::kResident);
}

Result<hw::BlockId> XnBackend::FindFreeRun(hw::BlockId hint, uint32_t count) const {
  return xn_->FindFreeRun(hint, count);
}

uint32_t XnBackend::FreeBlockCount() const { return xn_->FreeBlockCount(); }
hw::BlockId XnBackend::FirstDataBlock() const { return xn_->FirstDataBlock(); }
uint32_t XnBackend::NumBlocks() const { return xn_->NumBlocks(); }

Result<hw::BlockId> XnBackend::CreateRoot(const std::string& name, uint32_t tmpl) {
  auto r = xn_->RegisterRoot(name, tmpl, temporary_);
  if (!r.ok()) {
    return r.status();
  }
  for (int attempt = 0; attempt < kIoRetries; ++attempt) {
    auto f = TakeFrame();
    if (!f.ok()) {
      return f.status();
    }
    Status done = Status::kWouldBlock;
    Status s = xn_->LoadRoot(name, *f, creds_, [&done](Status st) { done = st; });
    xn_->ReleaseFrame(*f);
    if (s != Status::kOk) {
      return s;
    }
    blocker_([&done] { return done != Status::kWouldBlock; });
    if (done == Status::kOk) {
      return r->block;
    }
    if (done != Status::kIoError) {
      return done;
    }
    ChargeCpu(BackoffUs(attempt) * cost().cpu_mhz);  // transient: retry the load
  }
  return Status::kIoError;
}

Result<hw::BlockId> XnBackend::OpenRoot(const std::string& name) {
  auto r = xn_->LookupRoot(name);
  if (!r.ok()) {
    return r.status();
  }
  if (const xn::RegistryEntry* e = xn_->registry().Lookup(r->block);
      e != nullptr && e->state == xn::BufState::kResident) {
    return r->block;  // already cached (typically by another process)
  }
  for (int attempt = 0; attempt < kIoRetries; ++attempt) {
    auto f = TakeFrame();
    if (!f.ok()) {
      return f.status();
    }
    Status done = Status::kWouldBlock;
    Status s = xn_->LoadRoot(name, *f, creds_, [&done](Status st) { done = st; });
    xn_->ReleaseFrame(*f);
    if (s == Status::kBusy) {
      // Another process's read is in flight; wait on the exposed registry state.
      hw::BlockId block = r->block;
      blocker_([this, block] {
        const xn::RegistryEntry* e = xn_->registry().Lookup(block);
        return e == nullptr || e->state == xn::BufState::kResident;
      });
      if (const xn::RegistryEntry* e = xn_->registry().Lookup(block);
          e != nullptr && e->state == xn::BufState::kResident) {
        return block;
      }
      continue;  // the other process's read failed and unwound; try ourselves
    }
    if (s != Status::kOk) {
      return s;
    }
    blocker_([&done] { return done != Status::kWouldBlock; });
    if (done == Status::kOk) {
      return r->block;
    }
    if (done != Status::kIoError) {
      return done;
    }
    ChargeCpu(BackoffUs(attempt) * cost().cpu_mhz);  // transient: retry the load
  }
  return Status::kIoError;
}

Result<uint32_t> XnBackend::RegisterTemplate(const xn::Template& t) {
  auto existing = xn_->LookupTemplate(t.name);
  if (existing.ok()) {
    return *existing;  // idempotent: libFSes re-register on every mount
  }
  auto id = xn_->InstallTemplate(t);
  if (!id.ok()) {
    return id.status();
  }
  return *id;
}

void XnBackend::ChargeCpu(sim::Cycles cycles) { xn_->machine().Charge(cycles); }

}  // namespace exo::fs
