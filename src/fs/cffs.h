// C-FFS: the co-locating fast file system (Sec. 4.5, after Ganger & Kaashoek [15]).
//
// Design points reproduced from the paper:
//   - Embedded inodes: file metadata lives inside directory blocks, so a lookup that
//     has read the directory has already read the inode — no separate inode I/O.
//   - Co-location: a file's data blocks are allocated adjacent to its directory
//     block, and subdirectories near their parents, so tree walks are short seeks.
//   - Asynchronous, ordered metadata updates: creates and deletes dirty metadata in
//     the cache; XN's taint rules (or this module's flush ordering on a kernel
//     backend) keep the on-disk image recoverable. No synchronous metadata writes —
//     the main performance edge over FFS on small-file workloads.
//   - UNIX semantics guaranteed above XN: name uniqueness within a directory, legal
//     aligned names, implicit mtime updates (Sec. 4.5's four additions).
//
// On-disk format (all blocks 4 KB):
//   Directory block = 32 slots of 128 bytes. Slot 0 is a header (kind 3) holding the
//   fsid; in the root block the header also acts as an entry whose pointers are the
//   root directory's continuation blocks. Slots 1..31 are entries:
//     off 0  u8  kind (0 free, 1 file, 2 dir, 3 header)
//     off 1  u8  name_len        off 2  u16 uid
//     off 4  u32 size            off 8  u32 mtime       off 12 u32 nblocks
//     off 16 name[64]
//     off 80 u32 direct[8]       off 112 u32 indirect[3] (0 = none)
//   Indirect block: u16 count, u16 fsid, then u32 pointers (max 1023).
//   Max file size: (8 + 3*1023) blocks = ~12.6 MB.
//
// The format is described to XN by three templates whose owns-udfs are written in
// the UDF assembly language (see cffs.cc); the identical code runs unverified on a
// KernelBackend, which is exactly the "C-FFS ported into OpenBSD" configuration.
#ifndef EXO_FS_CFFS_H_
#define EXO_FS_CFFS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fs/backend.h"

namespace exo::fs {

struct FileStat {
  uint64_t size = 0;
  bool is_dir = false;
  uint32_t mtime = 0;
  uint16_t uid = 0;
  uint32_t nblocks = 0;
};

struct DirEnt {
  std::string name;
  bool is_dir = false;
  uint32_t size = 0;
};

struct CffsOptions {
  uint16_t fsid = 1;
  std::string root_name = "cffs";
  // Write-behind threshold: a background flush is kicked when this many blocks are
  // dirty. 0 disables write-behind (flush only on Sync).
  uint32_t writeback_threshold = 512;
};

class Cffs {
 public:
  Cffs(FsBackend* backend, const CffsOptions& options = {});

  // Creates a fresh file system (installs templates, creates the root directory).
  Status Mkfs();
  // Attaches to an existing one.
  Status Mount();

  // Location of a directory entry: the embedded inode.
  struct Handle {
    hw::BlockId dir_block = hw::kInvalidBlock;
    uint8_t slot = 0;
    bool operator==(const Handle&) const = default;
  };

  Result<Handle> Lookup(const std::string& path);
  Result<Handle> Create(const std::string& path, uint16_t uid, bool is_dir);
  Status Unlink(const std::string& path, uint16_t uid);
  Result<FileStat> Stat(const Handle& h);
  Result<FileStat> StatPath(const std::string& path);
  Result<std::vector<DirEnt>> ReadDir(const std::string& path);
  Status Rename(const std::string& from, const std::string& to, uint16_t uid);

  Result<uint32_t> Read(const Handle& h, uint64_t off, std::span<uint8_t> out);
  Result<uint32_t> Write(const Handle& h, uint64_t off, std::span<const uint8_t> data,
                         uint16_t uid);

  // Flushes all dirty blocks in dependency order and waits.
  Status Sync();
  // Opportunistic non-blocking flush (write-behind).
  void WriteBehind();

  // ---- Low-level interfaces for specialized applications (XCP, Cheetah) ----

  // The file's data block addresses in order (reads indirect blocks as needed).
  Result<std::vector<hw::BlockId>> FileBlocks(const Handle& h);
  // Creates a file with `size` bytes of preallocated blocks placed at/after `hint`
  // (XCP overlaps allocation with reads, Sec. 7.2).
  Result<Handle> CreateSized(const std::string& path, uint16_t uid, uint64_t size,
                             hw::BlockId hint);
  // The owning metadata block for a given file block index (needed by zero-copy
  // paths that call the backend directly).
  Result<std::pair<hw::BlockId, hw::BlockId>> BlockAt(const Handle& h, uint32_t index);

  FsBackend& backend() { return *backend_; }
  hw::BlockId root_block() const { return root_block_; }
  uint32_t dirty_count() const {
    return static_cast<uint32_t>(dirty_.size() + dirty_data_.size());
  }

  static constexpr uint32_t kSlotSize = 128;
  static constexpr uint32_t kSlotsPerBlock = hw::kBlockSize / kSlotSize;
  static constexpr uint32_t kNameMax = 64;
  static constexpr uint32_t kNumDirect = 8;
  static constexpr uint32_t kNumIndirect = 3;
  static constexpr uint32_t kPtrsPerIndirect = (hw::kBlockSize - 4) / 4;  // 1023

 private:
  friend class CffsTestPeer;

  struct Entry {  // decoded slot
    uint8_t kind = 0;
    uint16_t uid = 0;
    uint32_t size = 0;
    uint32_t mtime = 0;
    uint32_t nblocks = 0;
    std::string name;
    uint32_t direct[kNumDirect] = {};
    uint32_t indirect[kNumIndirect] = {};
  };

  // A directory is either the root (block list from the root header) or an entry.
  struct DirRef {
    bool is_root = false;
    Handle entry;
  };

  Status InstallTemplates();
  Result<Entry> ReadEntry(const Handle& h);
  Result<Entry> ReadSlot(hw::BlockId block, uint8_t slot);
  uint32_t Mtime() const;

  // Fetches a metadata block, re-reading it through its parent chain if it was
  // recycled from the cache. XN requires parents to be resident before children can
  // be read-and-inserted, so the libFS remembers each block's parent (an in-memory
  // index, as real libFSes keep).
  Result<std::span<const uint8_t>> GetMeta(hw::BlockId block);
  void RememberParent(hw::BlockId block, hw::BlockId parent) {
    parent_hint_[block] = parent;
  }

  Result<DirRef> WalkToDir(const std::string& path, std::string* leaf);
  Result<std::vector<hw::BlockId>> DirBlocks(const DirRef& d);
  Result<Handle> FindInDir(const DirRef& d, const std::string& name);
  Result<Handle> AddEntry(const DirRef& d, const Entry& e);
  Status ExtendDirectory(const DirRef& d, const std::vector<hw::BlockId>& existing);

  // Grows the file to cover `new_nblocks` data blocks, allocating near `hint`.
  Status GrowFile(const Handle& h, Entry* e, uint32_t new_nblocks, hw::BlockId hint);
  Status FreeFileBlocks(const Handle& h, const Entry& e);
  Result<std::pair<hw::BlockId, hw::BlockId>> DataBlockAt(const Handle& h, const Entry& e,
                                                          uint32_t index);

  void MarkDirty(hw::BlockId b, bool metadata = true);

  FsBackend* backend_;
  CffsOptions options_;
  trace::Tracer* tracer_ = nullptr;  // from the backend; nullptr when untraced
  uint32_t trace_track_ = 0;
  hw::BlockId root_block_ = hw::kInvalidBlock;
  uint32_t dir_tmpl_ = 0;
  uint32_t ind_file_tmpl_ = 0;
  uint32_t ind_dir_tmpl_ = 0;
  std::set<hw::BlockId> dirty_;       // metadata blocks (flushed on Sync, in order)
  std::set<hw::BlockId> dirty_data_;  // data blocks (eligible for write-behind)
  std::map<hw::BlockId, hw::BlockId> parent_hint_;
};

}  // namespace exo::fs

#endif  // EXO_FS_CFFS_H_
