// KernelBackend: FsBackend inside a monolithic kernel (the FreeBSD/OpenBSD regime).
//
// The kernel trusts its file systems: metadata modifications are applied directly
// with no UDF verification and no taint tracking (integrity comes from the file
// system's own synchronous-write discipline, as in real FFS). The kernel owns the
// buffer cache and its eviction policy; applications have no say. The cache size
// policy selects the baseline flavor:
//   - FreeBSD 2.2.2: unified buffer cache — may grow to most of free memory.
//   - OpenBSD 2.1: small, fixed-size, non-unified buffer cache (the paper calls this
//     out as the reason FreeBSD beats OpenBSD under load, Sec. 8).
#ifndef EXO_FS_KERNEL_BACKEND_H_
#define EXO_FS_KERNEL_BACKEND_H_

#include <list>
#include <map>
#include <string>
#include <vector>

#include "fs/backend.h"
#include "hw/machine.h"

namespace exo::fs {

struct KernelBackendOptions {
  // Maximum cache size in blocks. 0 means unified: bounded only by free frames.
  uint32_t max_cache_blocks = 0;
};

class KernelBackend : public FsBackend {
 public:
  KernelBackend(hw::Machine* machine, hw::Disk* disk, Blocker blocker,
                const KernelBackendOptions& options = {});
  ~KernelBackend() override;

  // Initializes the free map over an empty disk.
  void Format();

  Status Alloc(hw::BlockId meta, const xn::Mods& mods,
               std::span<const udf::Extent> to_alloc) override;
  Status Dealloc(hw::BlockId meta, const xn::Mods& mods,
                 std::span<const udf::Extent> to_free) override;
  Status Modify(hw::BlockId meta, const xn::Mods& mods) override;

  Result<std::span<const uint8_t>> GetBlock(hw::BlockId block, hw::BlockId parent) override;
  Result<std::span<uint8_t>> GetDataWritable(hw::BlockId block, hw::BlockId parent) override;
  Status InstallFresh(hw::BlockId block, hw::BlockId parent) override;
  void Release(hw::BlockId block) override;

  Status FlushAsync(std::span<const hw::BlockId> blocks,
                    std::vector<hw::BlockId>* deferred) override;
  Status FlushSync(std::span<const hw::BlockId> blocks) override;
  bool IsClean(hw::BlockId block) const override;

  Result<hw::BlockId> FindFreeRun(hw::BlockId hint, uint32_t count) const override;
  uint32_t FreeBlockCount() const override;
  hw::BlockId FirstDataBlock() const override;
  uint32_t NumBlocks() const override;

  Result<hw::BlockId> CreateRoot(const std::string& name, uint32_t tmpl) override;
  Result<hw::BlockId> OpenRoot(const std::string& name) override;
  Result<uint32_t> RegisterTemplate(const xn::Template& t) override;

  void ChargeCpu(sim::Cycles cycles) override { machine_->Charge(cycles); }
  const sim::CostModel& cost() const override { return machine_->cost(); }
  sim::Cycles Now() const override { return machine_->engine().now(); }
  trace::Tracer* tracer() override { return &machine_->tracer(); }
  bool IsCached(hw::BlockId block) const override {
    auto it = cache_.find(block);
    return it != cache_.end() && !it->second.in_transit;
  }

  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }
  uint32_t cached_blocks() const { return static_cast<uint32_t>(cache_.size()); }

 private:
  struct Entry {
    hw::FrameId frame = hw::kInvalidFrame;
    bool dirty = false;
    bool in_transit = false;     // read outstanding: frame not yet valid
    bool write_transit = false;  // write-back outstanding: frame valid and readable
    uint64_t lru = 0;
  };

  Status EnsureCached(hw::BlockId block, bool read_from_disk);
  // Evicts entries until there is room for one more block, writing back dirty
  // victims synchronously (the kernel decides; the application just waits).
  Status MakeRoom();
  void MarkAllocated(hw::BlockId b, bool allocated);

  hw::Machine* machine_;
  hw::Disk* disk_;
  Blocker blocker_;
  KernelBackendOptions options_;

  std::map<hw::BlockId, Entry> cache_;
  uint64_t lru_clock_ = 0;
  std::vector<uint8_t> free_map_;
  uint32_t free_count_ = 0;
  hw::BlockId first_data_block_ = 1;
  std::map<std::string, hw::BlockId> roots_;
  uint32_t next_template_ = 1;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace exo::fs

#endif  // EXO_FS_KERNEL_BACKEND_H_
