#include "fs/ffs.h"

#include <algorithm>
#include <cstring>

namespace exo::fs {

namespace {

constexpr uint32_t kOffKind = 0;
constexpr uint32_t kOffUid = 2;
constexpr uint32_t kOffSize = 4;
constexpr uint32_t kOffMtime = 8;
constexpr uint32_t kOffNBlocks = 12;
constexpr uint32_t kOffDirect = 16;
constexpr uint32_t kOffIndirect = 48;
constexpr uint32_t kInodeSize = 128;

uint16_t GetU16(std::span<const uint8_t> b, uint32_t off) {
  return static_cast<uint16_t>(b[off] | (b[off + 1] << 8));
}
uint32_t GetU32(std::span<const uint8_t> b, uint32_t off) {
  return static_cast<uint32_t>(b[off]) | (static_cast<uint32_t>(b[off + 1]) << 8) |
         (static_cast<uint32_t>(b[off + 2]) << 16) | (static_cast<uint32_t>(b[off + 3]) << 24);
}

Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::kInvalidArgument;
  }
  std::vector<std::string> parts;
  std::string cur;
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!cur.empty()) {
        if (cur.size() > Ffs::kNameMax) {
          return Status::kInvalidArgument;
        }
        parts.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(path[i]);
    }
  }
  return parts;
}

}  // namespace

Ffs::Ffs(FsBackend* backend, const FfsOptions& options)
    : backend_(backend), options_(options) {}

uint32_t Ffs::Mtime() const {
  return static_cast<uint32_t>(backend_->cost().ToSeconds(backend_->Now()));
}

void Ffs::MarkDirty(hw::BlockId b) {
  dirty_.insert(b);
  if (options_.writeback_threshold != 0 && dirty_.size() >= options_.writeback_threshold) {
    WriteBehind();
  }
}

Status Ffs::MetadataFlush(std::vector<hw::BlockId> blocks) {
  if (!options_.sync_metadata) {
    for (hw::BlockId b : blocks) {
      MarkDirty(b);
    }
    return Status::kOk;
  }
  // The defining FFS behaviour: metadata hits the platter before the call returns.
  return backend_->FlushSync(blocks);
}

Status Ffs::Mkfs() {
  auto root = backend_->CreateRoot("ffs", 1);
  if (!root.ok()) {
    return root.status();
  }
  super_ = *root;
  // Claim the inode zone right after the superblock area.
  auto zone = backend_->FindFreeRun(super_ + 1, options_.inode_blocks);
  if (!zone.ok()) {
    return zone.status();
  }
  inode_zone_ = *zone;
  std::vector<udf::Extent> ext = {{inode_zone_, options_.inode_blocks, 1}};
  Status s = backend_->Alloc(super_, {}, ext);
  if (s != Status::kOk) {
    return s;
  }
  for (uint32_t i = 0; i < options_.inode_blocks; ++i) {
    s = backend_->InstallFresh(inode_zone_ + i, super_);
    if (s != Status::kOk) {
      return s;
    }
  }
  rotor_ = inode_zone_ + options_.inode_blocks;

  // Root directory: inode 1 (inode 0 stays invalid).
  Inode rooti;
  rooti.kind = 2;
  rooti.mtime = Mtime();
  s = WriteInode(kRootIno, rooti, /*metadata_update=*/true);
  return s;
}

Result<Ffs::Inode> Ffs::ReadInode(uint32_t ino) {
  if (ino == 0 || ino >= options_.inode_blocks * kInodesPerBlock) {
    return Status::kInvalidArgument;
  }
  auto bytes = backend_->GetBlock(InodeBlockOf(ino), super_);
  if (!bytes.ok()) {
    return bytes.status();
  }
  std::span<const uint8_t> s =
      bytes->subspan((ino % kInodesPerBlock) * kInodeSize, kInodeSize);
  Inode in;
  in.kind = s[kOffKind];
  in.uid = GetU16(s, kOffUid);
  in.size = GetU32(s, kOffSize);
  in.mtime = GetU32(s, kOffMtime);
  in.nblocks = GetU32(s, kOffNBlocks);
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    in.direct[i] = GetU32(s, kOffDirect + i * 4);
  }
  for (uint32_t i = 0; i < kNumIndirect; ++i) {
    in.indirect[i] = GetU32(s, kOffIndirect + i * 4);
  }
  backend_->ChargeCpu(30);
  return in;
}

Status Ffs::WriteInode(uint32_t ino, const Inode& in, bool metadata_update) {
  std::vector<uint8_t> img(kInodeSize, 0);
  img[kOffKind] = in.kind;
  img[kOffUid] = static_cast<uint8_t>(in.uid);
  img[kOffUid + 1] = static_cast<uint8_t>(in.uid >> 8);
  auto put32 = [&](uint32_t off, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      img[off + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  };
  put32(kOffSize, in.size);
  put32(kOffMtime, in.mtime);
  put32(kOffNBlocks, in.nblocks);
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    put32(kOffDirect + i * 4, in.direct[i]);
  }
  for (uint32_t i = 0; i < kNumIndirect; ++i) {
    put32(kOffIndirect + i * 4, in.indirect[i]);
  }
  xn::Mods mods = {{(ino % kInodesPerBlock) * kInodeSize, std::move(img)}};
  Status s = backend_->Modify(InodeBlockOf(ino), mods);
  if (s != Status::kOk) {
    return s;
  }
  if (metadata_update) {
    return MetadataFlush({InodeBlockOf(ino)});
  }
  MarkDirty(InodeBlockOf(ino));
  return Status::kOk;
}

Result<uint32_t> Ffs::AllocInode(uint8_t kind, uint16_t uid) {
  const uint32_t max_ino = options_.inode_blocks * kInodesPerBlock;
  for (uint32_t n = 0; n < max_ino - 2; ++n) {
    uint32_t ino = 2 + (ino_rotor_ - 2 + n) % (max_ino - 2);
    auto in = ReadInode(ino);
    if (!in.ok()) {
      return in.status();
    }
    if (in->kind == 0) {
      ino_rotor_ = ino + 1;
      Inode fresh;
      fresh.kind = kind;
      fresh.uid = uid;
      fresh.mtime = Mtime();
      Status s = WriteInode(ino, fresh, /*metadata_update=*/true);
      if (s != Status::kOk) {
        return s;
      }
      return ino;
    }
  }
  return Status::kOutOfResources;
}

Result<hw::BlockId> Ffs::DataBlockAt(const Inode& in, uint32_t index) {
  if (index >= in.nblocks) {
    return Status::kInvalidArgument;
  }
  if (index < kNumDirect) {
    return in.direct[index];
  }
  uint32_t k = (index - kNumDirect) / kPtrsPerIndirect;
  uint32_t i = (index - kNumDirect) % kPtrsPerIndirect;
  if (k >= kNumIndirect || in.indirect[k] == 0) {
    return Status::kBadMetadata;
  }
  auto ind = backend_->GetBlock(in.indirect[k], super_);
  if (!ind.ok()) {
    return ind.status();
  }
  return GetU32(*ind, i * 4);
}

Status Ffs::GrowFile(uint32_t ino, Inode* in, uint32_t new_nblocks) {
  if (new_nblocks > kNumDirect + kNumIndirect * kPtrsPerIndirect) {
    return Status::kOutOfResources;
  }
  while (in->nblocks < new_nblocks) {
    // Global rotor allocation: no locality with the owning directory.
    auto b = backend_->FindFreeRun(rotor_, 1);
    if (!b.ok()) {
      return b.status();
    }
    rotor_ = *b + 1;
    if (rotor_ >= backend_->NumBlocks()) {
      rotor_ = backend_->FirstDataBlock();
    }
    const uint32_t idx = in->nblocks;
    std::vector<udf::Extent> ext = {{*b, 1, 0}};
    if (idx < kNumDirect) {
      Status s = backend_->Alloc(InodeBlockOf(ino), {}, ext);
      if (s != Status::kOk) {
        return s;
      }
      in->direct[idx] = *b;
    } else {
      uint32_t k = (idx - kNumDirect) / kPtrsPerIndirect;
      uint32_t i = (idx - kNumDirect) % kPtrsPerIndirect;
      if (in->indirect[k] == 0) {
        auto ib = backend_->FindFreeRun(rotor_, 1);
        if (!ib.ok()) {
          return ib.status();
        }
        rotor_ = *ib + 1;
        std::vector<udf::Extent> iext = {{*ib, 1, 1}};
        Status s = backend_->Alloc(InodeBlockOf(ino), {}, iext);
        if (s != Status::kOk) {
          return s;
        }
        s = backend_->InstallFresh(*ib, super_);
        if (s != Status::kOk) {
          return s;
        }
        in->indirect[k] = *ib;
      }
      Status s = backend_->Alloc(in->indirect[k], {}, ext);
      if (s != Status::kOk) {
        return s;
      }
      xn::Mods pm = {{i * 4,
                      {static_cast<uint8_t>(*b), static_cast<uint8_t>(*b >> 8),
                       static_cast<uint8_t>(*b >> 16), static_cast<uint8_t>(*b >> 24)}}};
      s = backend_->Modify(in->indirect[k], pm);
      if (s != Status::kOk) {
        return s;
      }
      MarkDirty(in->indirect[k]);
    }
    ++in->nblocks;
  }
  return WriteInode(ino, *in, /*metadata_update=*/false);
}

Status Ffs::FreeBlocks(uint32_t ino, Inode* in) {
  std::vector<udf::Extent> ext;
  for (uint32_t i = 0; i < std::min(in->nblocks, kNumDirect); ++i) {
    ext.push_back({in->direct[i], 1, 0});
  }
  for (uint32_t k = 0; k < kNumIndirect; ++k) {
    if (in->indirect[k] == 0) {
      continue;
    }
    uint32_t held = in->nblocks > kNumDirect + k * kPtrsPerIndirect
                        ? std::min(in->nblocks - kNumDirect - k * kPtrsPerIndirect,
                                   kPtrsPerIndirect)
                        : 0;
    auto ind = backend_->GetBlock(in->indirect[k], super_);
    if (!ind.ok()) {
      return ind.status();
    }
    for (uint32_t i = 0; i < held; ++i) {
      ext.push_back({GetU32(*ind, i * 4), 1, 0});
    }
    ext.push_back({in->indirect[k], 1, 1});
  }
  if (!ext.empty()) {
    Status s = backend_->Dealloc(InodeBlockOf(ino), {}, ext);
    if (s != Status::kOk) {
      return s;
    }
  }
  in->nblocks = 0;
  in->size = 0;
  std::fill(std::begin(in->direct), std::end(in->direct), 0);
  std::fill(std::begin(in->indirect), std::end(in->indirect), 0);
  return Status::kOk;
}

Result<uint32_t> Ffs::LookupIn(uint32_t dir_ino, const std::string& name) {
  auto din = ReadInode(dir_ino);
  if (!din.ok()) {
    return din.status();
  }
  if (din->kind != 2) {
    return Status::kNotFound;
  }
  for (uint32_t bi = 0; bi < din->nblocks; ++bi) {
    auto b = DataBlockAt(*din, bi);
    if (!b.ok()) {
      return b.status();
    }
    auto bytes = backend_->GetBlock(*b, super_);
    if (!bytes.ok()) {
      return bytes.status();
    }
    for (uint32_t e = 0; e < hw::kBlockSize / kDirEntSize; ++e) {
      std::span<const uint8_t> s = bytes->subspan(e * kDirEntSize, kDirEntSize);
      uint32_t ino = GetU32(s, 0);
      if (ino == 0) {
        continue;
      }
      uint8_t nl = s[5];
      backend_->ChargeCpu(backend_->cost().CompareCost(nl + 2));
      if (nl == name.size() && std::memcmp(s.data() + 6, name.data(), nl) == 0) {
        return ino;
      }
    }
  }
  return Status::kNotFound;
}

Result<uint32_t> Ffs::WalkToDir(const std::string& path, std::string* leaf) {
  auto parts = SplitPath(path);
  if (!parts.ok()) {
    return parts.status();
  }
  if (parts->empty()) {
    if (leaf != nullptr) {
      return Status::kInvalidArgument;
    }
    return kRootIno;
  }
  size_t stop = parts->size() - (leaf != nullptr ? 1 : 0);
  uint32_t cur = kRootIno;
  for (size_t i = 0; i < stop; ++i) {
    auto next = LookupIn(cur, (*parts)[i]);
    if (!next.ok()) {
      return next.status();
    }
    cur = *next;
  }
  if (leaf != nullptr) {
    *leaf = parts->back();
  }
  return cur;
}

Result<uint32_t> Ffs::ResolvePath(const std::string& path) {
  std::string leaf;
  auto dir = WalkToDir(path, &leaf);
  if (!dir.ok()) {
    return dir.status();
  }
  return LookupIn(*dir, leaf);
}

Status Ffs::AddDirEnt(uint32_t dir_ino, const std::string& name, uint32_t ino, uint8_t kind) {
  auto din = ReadInode(dir_ino);
  if (!din.ok()) {
    return din.status();
  }
  // Find a free slot in existing blocks.
  for (uint32_t bi = 0; bi < din->nblocks; ++bi) {
    auto b = DataBlockAt(*din, bi);
    if (!b.ok()) {
      return b.status();
    }
    auto bytes = backend_->GetBlock(*b, super_);
    if (!bytes.ok()) {
      return bytes.status();
    }
    for (uint32_t e = 0; e < hw::kBlockSize / kDirEntSize; ++e) {
      if (GetU32(*bytes, e * kDirEntSize) != 0) {
        continue;
      }
      auto wb = backend_->GetDataWritable(*b, super_);
      if (!wb.ok()) {
        return wb.status();
      }
      uint8_t* s = wb->data() + e * kDirEntSize;
      std::memset(s, 0, kDirEntSize);
      for (int i = 0; i < 4; ++i) {
        s[i] = static_cast<uint8_t>(ino >> (8 * i));
      }
      s[4] = kind;
      s[5] = static_cast<uint8_t>(name.size());
      std::memcpy(s + 6, name.data(), name.size());
      backend_->ChargeCpu(60);
      return MetadataFlush({*b});  // directory data is metadata for integrity
    }
  }
  // Extend the directory by one data block and retry.
  Status s = GrowFile(dir_ino, &*din, din->nblocks + 1);
  if (s != Status::kOk) {
    return s;
  }
  auto nb = DataBlockAt(*din, din->nblocks - 1);
  if (!nb.ok()) {
    return nb.status();
  }
  Status fresh = backend_->InstallFresh(*nb, super_);
  if (fresh != Status::kOk && fresh != Status::kAlreadyExists) {
    return fresh;
  }
  din->size = din->nblocks * hw::kBlockSize;
  s = WriteInode(dir_ino, *din, /*metadata_update=*/false);
  if (s != Status::kOk) {
    return s;
  }
  return AddDirEnt(dir_ino, name, ino, kind);
}

Status Ffs::RemoveDirEnt(uint32_t dir_ino, const std::string& name) {
  auto din = ReadInode(dir_ino);
  if (!din.ok()) {
    return din.status();
  }
  for (uint32_t bi = 0; bi < din->nblocks; ++bi) {
    auto b = DataBlockAt(*din, bi);
    if (!b.ok()) {
      return b.status();
    }
    auto bytes = backend_->GetBlock(*b, super_);
    if (!bytes.ok()) {
      return bytes.status();
    }
    for (uint32_t e = 0; e < hw::kBlockSize / kDirEntSize; ++e) {
      std::span<const uint8_t> s = bytes->subspan(e * kDirEntSize, kDirEntSize);
      if (GetU32(s, 0) == 0) {
        continue;
      }
      uint8_t nl = s[5];
      if (nl == name.size() && std::memcmp(s.data() + 6, name.data(), nl) == 0) {
        auto wb = backend_->GetDataWritable(*b, super_);
        if (!wb.ok()) {
          return wb.status();
        }
        std::memset(wb->data() + e * kDirEntSize, 0, kDirEntSize);
        return MetadataFlush({*b});
      }
    }
  }
  return Status::kNotFound;
}

Result<uint64_t> Ffs::Open(const std::string& path, bool create, uint16_t uid) {
  auto ino = ResolvePath(path);
  if (ino.ok()) {
    return static_cast<uint64_t>(*ino);
  }
  if (!create || ino.status() != Status::kNotFound) {
    return ino.status();
  }
  std::string leaf;
  auto dir = WalkToDir(path, &leaf);
  if (!dir.ok()) {
    return dir.status();
  }
  auto nino = AllocInode(/*kind=*/1, uid);
  if (!nino.ok()) {
    return nino.status();
  }
  Status s = AddDirEnt(*dir, leaf, *nino, 1);
  if (s != Status::kOk) {
    return s;
  }
  return static_cast<uint64_t>(*nino);
}

Result<uint32_t> Ffs::Read(uint64_t h, uint64_t off, std::span<uint8_t> out) {
  auto in = ReadInode(static_cast<uint32_t>(h));
  if (!in.ok()) {
    return in.status();
  }
  if (off >= in->size) {
    return 0u;
  }
  const size_t want = static_cast<size_t>(std::min<uint64_t>(in->size - off, out.size()));
  size_t done = 0;
  while (done < want) {
    const uint64_t pos = off + done;
    const uint32_t idx = static_cast<uint32_t>(pos / hw::kBlockSize);
    const uint32_t boff = static_cast<uint32_t>(pos % hw::kBlockSize);
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(want - done, hw::kBlockSize - boff));
    auto b = DataBlockAt(*in, idx);
    if (!b.ok()) {
      return b.status();
    }
    auto bytes = backend_->GetBlock(*b, super_);
    if (!bytes.ok()) {
      return bytes.status();
    }
    std::memcpy(out.data() + done, bytes->data() + boff, chunk);
    backend_->ChargeCpu(backend_->cost().CopyCost(chunk));
    done += chunk;
  }
  return static_cast<uint32_t>(done);
}

Result<uint32_t> Ffs::Write(uint64_t h, uint64_t off, std::span<const uint8_t> data,
                            uint16_t uid) {
  uint32_t ino = static_cast<uint32_t>(h);
  auto in = ReadInode(ino);
  if (!in.ok()) {
    return in.status();
  }
  if (in->kind != 1) {
    return Status::kInvalidArgument;
  }
  if (uid != 0 && in->uid != uid) {
    return Status::kPermissionDenied;
  }
  const uint64_t end = off + data.size();
  const uint32_t need = static_cast<uint32_t>((end + hw::kBlockSize - 1) / hw::kBlockSize);
  if (need > in->nblocks) {
    Status s = GrowFile(ino, &*in, need);
    if (s != Status::kOk) {
      return s;
    }
  }
  size_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = off + done;
    const uint32_t idx = static_cast<uint32_t>(pos / hw::kBlockSize);
    const uint32_t boff = static_cast<uint32_t>(pos % hw::kBlockSize);
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(data.size() - done, hw::kBlockSize - boff));
    auto b = DataBlockAt(*in, idx);
    if (!b.ok()) {
      return b.status();
    }
    if ((boff == 0 && chunk == hw::kBlockSize) || pos >= in->size) {
      Status s = backend_->InstallFresh(*b, super_);
      if (s != Status::kOk && s != Status::kAlreadyExists) {
        return s;
      }
    }
    auto wb = backend_->GetDataWritable(*b, super_);
    if (!wb.ok()) {
      return wb.status();
    }
    std::memcpy(wb->data() + boff, data.data() + done, chunk);
    backend_->ChargeCpu(backend_->cost().CopyCost(chunk));
    MarkDirty(*b);
    done += chunk;
  }
  if (end > in->size) {
    in->size = static_cast<uint32_t>(end);
  }
  in->mtime = Mtime();
  Status s = WriteInode(ino, *in, /*metadata_update=*/false);
  if (s != Status::kOk) {
    return s;
  }
  return static_cast<uint32_t>(data.size());
}

Result<FileStat> Ffs::StatHandle(uint64_t h) {
  auto in = ReadInode(static_cast<uint32_t>(h));
  if (!in.ok()) {
    return in.status();
  }
  FileStat st;
  st.size = in->size;
  st.is_dir = in->kind == 2;
  st.mtime = in->mtime;
  st.uid = in->uid;
  st.nblocks = in->nblocks;
  return st;
}

Result<FileStat> Ffs::StatPath(const std::string& path) {
  if (path == "/") {
    FileStat st;
    st.is_dir = true;
    return st;
  }
  auto ino = ResolvePath(path);
  if (!ino.ok()) {
    return ino.status();
  }
  return StatHandle(*ino);
}

Status Ffs::Mkdir(const std::string& path, uint16_t uid) {
  std::string leaf;
  auto dir = WalkToDir(path, &leaf);
  if (!dir.ok()) {
    return dir.status();
  }
  if (LookupIn(*dir, leaf).ok()) {
    return Status::kAlreadyExists;
  }
  auto nino = AllocInode(/*kind=*/2, uid);
  if (!nino.ok()) {
    return nino.status();
  }
  return AddDirEnt(*dir, leaf, *nino, 2);
}

Status Ffs::Unlink(const std::string& path, uint16_t uid) {
  std::string leaf;
  auto dir = WalkToDir(path, &leaf);
  if (!dir.ok()) {
    return dir.status();
  }
  auto ino = LookupIn(*dir, leaf);
  if (!ino.ok()) {
    return ino.status();
  }
  auto in = ReadInode(*ino);
  if (!in.ok()) {
    return in.status();
  }
  if (uid != 0 && in->uid != uid) {
    return Status::kPermissionDenied;
  }
  if (in->kind == 2) {
    auto entries = ReadDir(path);
    if (!entries.ok()) {
      return entries.status();
    }
    if (!entries->empty()) {
      return Status::kBusy;
    }
  }
  Status s = FreeBlocks(*ino, &*in);
  if (s != Status::kOk) {
    return s;
  }
  in->kind = 0;
  s = WriteInode(*ino, *in, /*metadata_update=*/true);
  if (s != Status::kOk) {
    return s;
  }
  return RemoveDirEnt(*dir, leaf);
}

Status Ffs::Rename(const std::string& from, const std::string& to, uint16_t uid) {
  std::string from_leaf;
  auto from_dir = WalkToDir(from, &from_leaf);
  if (!from_dir.ok()) {
    return from_dir.status();
  }
  auto ino = LookupIn(*from_dir, from_leaf);
  if (!ino.ok()) {
    return ino.status();
  }
  auto in = ReadInode(*ino);
  if (!in.ok()) {
    return in.status();
  }
  if (uid != 0 && in->uid != uid) {
    return Status::kPermissionDenied;
  }
  std::string to_leaf;
  auto to_dir = WalkToDir(to, &to_leaf);
  if (!to_dir.ok()) {
    return to_dir.status();
  }
  if (LookupIn(*to_dir, to_leaf).ok()) {
    return Status::kAlreadyExists;
  }
  // Rule 3 of ordered updates: set the new pointer before clearing the old one.
  Status s = AddDirEnt(*to_dir, to_leaf, *ino, in->kind);
  if (s != Status::kOk) {
    return s;
  }
  return RemoveDirEnt(*from_dir, from_leaf);
}

Result<std::vector<DirEnt>> Ffs::ReadDir(const std::string& path) {
  auto dino = path == "/" ? Result<uint32_t>(kRootIno) : ResolvePath(path);
  if (!dino.ok()) {
    return dino.status();
  }
  auto din = ReadInode(*dino);
  if (!din.ok()) {
    return din.status();
  }
  if (din->kind != 2) {
    return Status::kInvalidArgument;
  }
  std::vector<DirEnt> out;
  for (uint32_t bi = 0; bi < din->nblocks; ++bi) {
    auto b = DataBlockAt(*din, bi);
    if (!b.ok()) {
      return b.status();
    }
    auto bytes = backend_->GetBlock(*b, super_);
    if (!bytes.ok()) {
      return bytes.status();
    }
    for (uint32_t e = 0; e < hw::kBlockSize / kDirEntSize; ++e) {
      std::span<const uint8_t> s = bytes->subspan(e * kDirEntSize, kDirEntSize);
      uint32_t ino = GetU32(s, 0);
      if (ino == 0) {
        continue;
      }
      DirEnt de;
      de.is_dir = s[4] == 2;
      de.name.assign(reinterpret_cast<const char*>(s.data() + 6), s[5]);
      auto fin = ReadInode(ino);
      de.size = fin.ok() ? fin->size : 0;
      out.push_back(std::move(de));
      backend_->ChargeCpu(40);
    }
  }
  return out;
}

Status Ffs::Sync() {
  std::vector<hw::BlockId> blocks(dirty_.begin(), dirty_.end());
  if (blocks.empty()) {
    return Status::kOk;
  }
  Status s = backend_->FlushSync(blocks);
  if (s != Status::kOk) {
    return s;
  }
  dirty_.clear();
  return Status::kOk;
}

void Ffs::WriteBehind() {
  std::vector<hw::BlockId> blocks(dirty_.begin(), dirty_.end());
  std::vector<hw::BlockId> deferred;
  (void)backend_->FlushAsync(blocks, &deferred);
  dirty_.clear();
  dirty_.insert(deferred.begin(), deferred.end());
}

}  // namespace exo::fs
