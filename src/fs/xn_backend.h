// XnBackend: FsBackend over XN — the exokernel (libFS) protection regime.
//
// Cache pages are application-owned physical frames registered in the XN buffer-cache
// registry; metadata mutations go through XN's UDF-verified Alloc/Dealloc/Modify;
// write ordering is enforced by XN's taint tracking (FlushSync retries deferred
// parents after their children land, which is the libFS's half of the ordered-writes
// contract described in Sec. 4.3.2).
#ifndef EXO_FS_XN_BACKEND_H_
#define EXO_FS_XN_BACKEND_H_

#include <functional>
#include <vector>

#include "fs/backend.h"
#include "xn/xn.h"

namespace exo::fs {

class XnBackend : public FsBackend {
 public:
  // `frame_alloc` supplies application frames for cache pages (via kernel syscalls in
  // ExOS, straight from PhysMem in tests); returns kInvalidFrame when memory is
  // exhausted, in which case the backend recycles the LRU clean buffer.
  XnBackend(xn::Xn* xn, xn::Caps creds, Blocker blocker,
            std::function<hw::FrameId()> frame_alloc);

  Status Alloc(hw::BlockId meta, const xn::Mods& mods,
               std::span<const udf::Extent> to_alloc) override;
  Status Dealloc(hw::BlockId meta, const xn::Mods& mods,
                 std::span<const udf::Extent> to_free) override;
  Status Modify(hw::BlockId meta, const xn::Mods& mods) override;

  Result<std::span<const uint8_t>> GetBlock(hw::BlockId block, hw::BlockId parent) override;
  Result<std::span<uint8_t>> GetDataWritable(hw::BlockId block, hw::BlockId parent) override;
  Status InstallFresh(hw::BlockId block, hw::BlockId parent) override;
  void Release(hw::BlockId block) override;

  Status FlushAsync(std::span<const hw::BlockId> blocks,
                    std::vector<hw::BlockId>* deferred) override;
  Status FlushSync(std::span<const hw::BlockId> blocks) override;
  bool IsClean(hw::BlockId block) const override;

  Result<hw::BlockId> FindFreeRun(hw::BlockId hint, uint32_t count) const override;
  uint32_t FreeBlockCount() const override;
  hw::BlockId FirstDataBlock() const override;
  uint32_t NumBlocks() const override;

  Result<hw::BlockId> CreateRoot(const std::string& name, uint32_t tmpl) override;
  Result<hw::BlockId> OpenRoot(const std::string& name) override;
  Result<uint32_t> RegisterTemplate(const xn::Template& t) override;

  void ChargeCpu(sim::Cycles cycles) override;
  const sim::CostModel& cost() const override { return xn_->machine().cost(); }
  sim::Cycles Now() const override { return xn_->machine().engine().now(); }
  trace::Tracer* tracer() override { return &xn_->machine().tracer(); }
  bool IsCached(hw::BlockId block) const override {
    const xn::RegistryEntry* e = xn_->registry().Lookup(block);
    return e != nullptr && e->state == xn::BufState::kResident;
  }

  xn::Xn& xn() { return *xn_; }
  const xn::Caps& creds() const { return creds_; }
  // Marks new roots as temporary XN file systems (memory file systems, Sec. 4.3.2).
  void set_temporary(bool t) { temporary_ = t; }

 private:
  Result<hw::FrameId> TakeFrame();
  Status EnsureCached(hw::BlockId block, hw::BlockId parent);
  // Blocks until an in-transit registry entry settles (background flush completion).
  void WaitResident(hw::BlockId block);

  xn::Xn* xn_;
  xn::Caps creds_;
  Blocker blocker_;
  std::function<hw::FrameId()> frame_alloc_;
  bool temporary_ = false;
};

}  // namespace exo::fs

#endif  // EXO_FS_XN_BACKEND_H_
