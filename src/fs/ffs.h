// FFS: the classic 4.4BSD fast file system, the baseline C-FFS improves on.
//
// Three properties distinguish it from C-FFS (and drive Figure 2's differences):
//   1. Inodes live in a dedicated inode zone at the front of the disk; opening a
//      file costs a directory-data read *plus* an inode-block read, and they are
//      far apart (long seeks).
//   2. Metadata updates (create, delete) are written SYNCHRONOUSLY to preserve
//      integrity across crashes — the well-known FFS small-file penalty.
//   3. Allocation uses a global rotor with no directory co-location.
//
// On-disk format:
//   Inode zone: kInodeBlocks blocks of 32 inodes x 128 bytes; inode = {u8 kind,
//   u16 uid, u32 size, u32 mtime, u32 nblocks, u32 direct[8], u32 indirect[3]}.
//   Directory content is ordinary file data: 64-byte entries {u32 ino, u8 kind,
//   u8 name_len, char name[58]}.
//
// FFS only ever runs inside the monolithic kernels here (the paper never runs it on
// Xok), so it is written for a KernelBackend: no XN templates are registered.
#ifndef EXO_FS_FFS_H_
#define EXO_FS_FFS_H_

#include <string>
#include <vector>

#include "fs/fs_api.h"

namespace exo::fs {

struct FfsOptions {
  uint32_t inode_blocks = 128;  // 4096 inodes
  bool sync_metadata = true;    // classic FFS behaviour
  uint32_t writeback_threshold = 512;
};

class Ffs : public FileSys {
 public:
  Ffs(FsBackend* backend, const FfsOptions& options = {});

  Status Mkfs();

  Result<uint64_t> Open(const std::string& path, bool create, uint16_t uid) override;
  Result<uint32_t> Read(uint64_t ino, uint64_t off, std::span<uint8_t> out) override;
  Result<uint32_t> Write(uint64_t ino, uint64_t off, std::span<const uint8_t> data,
                         uint16_t uid) override;
  Result<FileStat> StatHandle(uint64_t ino) override;
  Result<FileStat> StatPath(const std::string& path) override;
  Status Mkdir(const std::string& path, uint16_t uid) override;
  Status Unlink(const std::string& path, uint16_t uid) override;
  Status Rename(const std::string& from, const std::string& to, uint16_t uid) override;
  Result<std::vector<DirEnt>> ReadDir(const std::string& path) override;
  Status Sync() override;
  void WriteBehind() override;

  FsBackend& backend() override { return *backend_; }

  static constexpr uint32_t kInodesPerBlock = 32;
  static constexpr uint32_t kNumDirect = 8;
  static constexpr uint32_t kNumIndirect = 3;
  static constexpr uint32_t kPtrsPerIndirect = hw::kBlockSize / 4;
  static constexpr uint32_t kDirEntSize = 64;
  static constexpr uint32_t kNameMax = 58;
  static constexpr uint32_t kRootIno = 1;

 private:
  struct Inode {
    uint8_t kind = 0;  // 0 free, 1 file, 2 dir
    uint16_t uid = 0;
    uint32_t size = 0;
    uint32_t mtime = 0;
    uint32_t nblocks = 0;
    uint32_t direct[kNumDirect] = {};
    uint32_t indirect[kNumIndirect] = {};
  };

  hw::BlockId InodeBlockOf(uint32_t ino) const {
    return inode_zone_ + ino / kInodesPerBlock;
  }
  Result<Inode> ReadInode(uint32_t ino);
  Status WriteInode(uint32_t ino, const Inode& in, bool metadata_update);
  Result<uint32_t> AllocInode(uint8_t kind, uint16_t uid);

  Result<hw::BlockId> DataBlockAt(const Inode& in, uint32_t index);
  Status GrowFile(uint32_t ino, Inode* in, uint32_t new_nblocks);
  Status FreeBlocks(uint32_t ino, Inode* in);

  Result<uint32_t> LookupIn(uint32_t dir_ino, const std::string& name);
  Result<uint32_t> WalkToDir(const std::string& path, std::string* leaf);
  Status AddDirEnt(uint32_t dir_ino, const std::string& name, uint32_t ino, uint8_t kind);
  Status RemoveDirEnt(uint32_t dir_ino, const std::string& name);
  Result<uint32_t> ResolvePath(const std::string& path);

  uint32_t Mtime() const;
  void MarkDirty(hw::BlockId b);
  Status MetadataFlush(std::vector<hw::BlockId> blocks);

  FsBackend* backend_;
  FfsOptions options_;
  hw::BlockId super_ = hw::kInvalidBlock;
  hw::BlockId inode_zone_ = hw::kInvalidBlock;
  hw::BlockId rotor_ = 0;  // global allocation cursor
  uint32_t ino_rotor_ = 2;  // inode allocation cursor
  std::set<hw::BlockId> dirty_;
};

}  // namespace exo::fs

#endif  // EXO_FS_FFS_H_
