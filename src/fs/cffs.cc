#include "fs/cffs.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "udf/assembler.h"

namespace exo::fs {

namespace {

// Entry field offsets within a 128-byte slot (see cffs.h).
constexpr uint32_t kOffKind = 0;
constexpr uint32_t kOffNameLen = 1;
constexpr uint32_t kOffUid = 2;  // in the header slot this field holds the fsid
constexpr uint32_t kOffSize = 4;
constexpr uint32_t kOffMtime = 8;
constexpr uint32_t kOffNBlocks = 12;
constexpr uint32_t kOffName = 16;
constexpr uint32_t kOffDirect = 80;
constexpr uint32_t kOffIndirect = 112;

constexpr uint8_t kKindFree = 0;
constexpr uint8_t kKindFile = 1;
constexpr uint8_t kKindDir = 2;
constexpr uint8_t kKindHeader = 3;

uint16_t GetU16(std::span<const uint8_t> b, uint32_t off) {
  return static_cast<uint16_t>(b[off] | (b[off + 1] << 8));
}
uint32_t GetU32(std::span<const uint8_t> b, uint32_t off) {
  return static_cast<uint32_t>(b[off]) | (static_cast<uint32_t>(b[off + 1]) << 8) |
         (static_cast<uint32_t>(b[off + 2]) << 16) | (static_cast<uint32_t>(b[off + 3]) << 24);
}

xn::ByteMod ModU8(uint32_t off, uint8_t v) { return {off, {v}}; }
xn::ByteMod ModU16(uint32_t off, uint16_t v) {
  return {off, {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)}};
}
xn::ByteMod ModU32(uint32_t off, uint32_t v) {
  return {off, {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                static_cast<uint8_t>(v >> 16), static_cast<uint8_t>(v >> 24)}};
}
xn::ByteMod ModBytes(uint32_t off, std::span<const uint8_t> bytes) {
  return {off, std::vector<uint8_t>(bytes.begin(), bytes.end())};
}

// The directory-block owns-udf: walks all 32 slots, emitting each live entry's
// direct pointers (typed data for files, directory-block for directories and the
// root header) and indirect-block pointers (typed per entry kind).
udf::Program DirOwnsUdf(uint32_t dir_tmpl, uint32_t ind_file_tmpl, uint32_t ind_dir_tmpl) {
  char src[2048];
  std::snprintf(src, sizeof(src), R"(
      ldi r1, 0            ; slot base
      ldi r2, 32           ; slots remaining
    slot:
      ld1 r3, r1, 0, meta  ; kind
      bz r3, next
      ldi r4, 1
      ceq r5, r3, r4       ; is_file
      ldi r6, 1
      sub r6, r6, r5       ; is_dirish (dir entry or header)
      ldi r7, %u
      mul r7, r7, r6       ; child type: dir-block or data(0)
      ldi r8, %u
      mul r8, r8, r5
      ldi r9, %u
      mul r9, r9, r6
      add r8, r8, r9       ; indirect-block type by kind
      ld4 r9, r1, 12, meta ; nblocks
      ldi r10, 8
      cle r11, r9, r10
      mul r12, r9, r11
      ldi r13, 1
      sub r13, r13, r11
      mul r13, r10, r13
      add r12, r12, r13    ; direct count = min(nblocks, 8)
      addi r13, r1, 80
      ldi r14, 1
    dloop:
      bz r12, dirs
      ld4 r15, r13, 0, meta
      emit r15, r14, r7
      addi r13, r13, 4
      addi r12, r12, -1
      jmp dloop
    dirs:
      ld4 r15, r1, 112, meta
      bz r15, i2
      emit r15, r14, r8
    i2:
      ld4 r15, r1, 116, meta
      bz r15, i3
      emit r15, r14, r8
    i3:
      ld4 r15, r1, 120, meta
      bz r15, next
      emit r15, r14, r8
    next:
      addi r1, r1, 128
      addi r2, r2, -1
      bnz r2, slot
      ldi r1, 0
      ret r1
  )", dir_tmpl, ind_file_tmpl, ind_dir_tmpl);
  auto r = udf::Assemble(src);
  EXO_CHECK(r.ok);
  return r.program;
}

// Indirect-block owns-udf: u16 count at 0, u16 fsid at 2, u32 pointers from 4.
udf::Program IndirectOwnsUdf(uint32_t child_tmpl) {
  char src[512];
  std::snprintf(src, sizeof(src), R"(
      ldi r1, 0
      ld2 r2, r1, 0, meta
      ldi r3, 4
      ldi r4, 1
      ldi r5, %u
      bz r2, done
    loop:
      ld4 r6, r3, 0, meta
      emit r6, r4, r5
      addi r3, r3, 4
      addi r2, r2, -1
      bnz r2, loop
    done:
      ldi r1, 0
      ret r1
  )", child_tmpl);
  auto r = udf::Assemble(src);
  EXO_CHECK(r.ok);
  return r.program;
}

// Shared acl-uf: a credential matches if it dominates {kCapFs, fsid} and is writable
// when the intent requires writing. A zero fsid means the block is still being
// initialized by its creator (bootstrap). The fsid sits at offset 2 in both
// directory blocks (header slot uid field) and indirect blocks.
udf::Program CffsAclUf() {
  auto r = udf::Assemble(R"(
      ldi r15, 0
      ld1 r2, r15, 0, aux
      ldi r3, 0
      clt r14, r3, r2          ; need_write = intent != kReadChild
      ld2 r13, r15, 2, meta    ; fsid
      bnz r13, havefsid
      ldi r1, 1
      ret r1
    havefsid:
      ld2 r6, r15, 0, cred     ; capability count
      ldi r7, 2                ; byte cursor into credentials
    loop:
      bz r6, deny
      ld1 r8, r7, 0, cred      ; write flag
      ld2 r9, r7, 1, cred      ; name part count
      ldi r3, 1
      sub r10, r3, r8
      and r10, r14, r10        ; need write but capability is read-only
      bnz r10, skip
      bz r9, match             ; the root capability dominates everything
      ld2 r10, r7, 3, cred     ; first name part
      ldi r3, 3
      ceq r11, r10, r3         ; must be kCapFs
      bz r11, skip
      ldi r3, 1
      ceq r11, r9, r3
      bnz r11, match           ; {kCapFs} dominates every file system
      ldi r3, 2
      ceq r11, r9, r3
      bz r11, skip             ; longer names cannot dominate {kCapFs, fsid}
      ld2 r10, r7, 5, cred     ; second name part
      ceq r11, r10, r13
      bnz r11, match
    skip:
      addi r7, r7, 3
      add r7, r7, r9
      add r7, r7, r9
      addi r6, r6, -1
      jmp loop
    match:
      ldi r1, 1
      ret r1
    deny:
      ldi r1, 0
      ret r1
  )");
  EXO_CHECK(r.ok);
  return r.program;
}

udf::Program BlockSizeUf() {
  auto r = udf::Assemble("ldi r1, 4096\nret r1\n");
  EXO_CHECK(r.ok);
  return r.program;
}

// Splits "/a/b/c" into components; rejects empty components and overlong names.
Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::kInvalidArgument;
  }
  std::vector<std::string> parts;
  std::string cur;
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!cur.empty()) {
        if (cur.size() > Cffs::kNameMax) {
          return Status::kInvalidArgument;
        }
        parts.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(path[i]);
    }
  }
  return parts;
}

}  // namespace

Cffs::Cffs(FsBackend* backend, const CffsOptions& options)
    : backend_(backend), options_(options), tracer_(backend->tracer()) {
  if (tracer_ != nullptr) {
    trace_track_ = tracer_->NewTrack(options_.root_name);
  }
}

uint32_t Cffs::Mtime() const {
  return static_cast<uint32_t>(backend_->cost().ToSeconds(backend_->Now()));
}

Status Cffs::InstallTemplates() {
  // Template ids are assigned sequentially by the catalogue, so the self- and
  // cross-references below are predictable; the checks catch any drift.
  xn::Template ind_file;
  ind_file.name = "cffs-ind-file";
  ind_file.is_metadata = true;
  ind_file.owns_udf = IndirectOwnsUdf(xn::kDataTemplate);
  ind_file.acl_uf = CffsAclUf();
  ind_file.size_uf = BlockSizeUf();
  auto a = backend_->RegisterTemplate(ind_file);
  if (!a.ok()) {
    return a.status();
  }
  ind_file_tmpl_ = *a;

  const uint32_t predicted_dir = ind_file_tmpl_ + 2;
  xn::Template ind_dir;
  ind_dir.name = "cffs-ind-dir";
  ind_dir.is_metadata = true;
  ind_dir.owns_udf = IndirectOwnsUdf(predicted_dir);
  ind_dir.acl_uf = CffsAclUf();
  ind_dir.size_uf = BlockSizeUf();
  auto b = backend_->RegisterTemplate(ind_dir);
  if (!b.ok()) {
    return b.status();
  }
  ind_dir_tmpl_ = *b;

  xn::Template dir;
  dir.name = "cffs-dir";
  dir.is_metadata = true;
  dir.owns_udf = DirOwnsUdf(predicted_dir, ind_file_tmpl_, ind_dir_tmpl_);
  dir.acl_uf = CffsAclUf();
  dir.size_uf = BlockSizeUf();
  auto c = backend_->RegisterTemplate(dir);
  if (!c.ok()) {
    return c.status();
  }
  dir_tmpl_ = *c;
  EXO_CHECK_EQ(ind_dir_tmpl_, ind_file_tmpl_ + 1);
  EXO_CHECK_EQ(dir_tmpl_, predicted_dir);
  return Status::kOk;
}

Status Cffs::Mkfs() {
  Status s = InstallTemplates();
  if (s != Status::kOk) {
    return s;
  }
  auto root = backend_->CreateRoot(options_.root_name, dir_tmpl_);
  if (!root.ok()) {
    return root.status();
  }
  root_block_ = *root;
  // Initialize the header slot: kind=header, fsid, no continuation blocks.
  xn::Mods mods = {ModU8(kOffKind, kKindHeader), ModU16(kOffUid, options_.fsid),
                   ModU32(kOffNBlocks, 0)};
  s = backend_->Modify(root_block_, mods);
  if (s != Status::kOk) {
    return s;
  }
  MarkDirty(root_block_);
  return Status::kOk;
}

Status Cffs::Mount() {
  Status s = InstallTemplates();
  if (s != Status::kOk) {
    return s;
  }
  auto root = backend_->OpenRoot(options_.root_name);
  if (!root.ok()) {
    return root.status();
  }
  root_block_ = *root;
  return Status::kOk;
}

void Cffs::MarkDirty(hw::BlockId b, bool metadata) {
  // C-FFS delays metadata writes as long as the ordering rules allow; write-behind
  // only pushes data blocks, so hot directory/indirect blocks are never mid-flush
  // when the next operation needs to modify them.
  if (metadata) {
    dirty_.insert(b);
  } else {
    dirty_data_.insert(b);
  }
  if (options_.writeback_threshold != 0 &&
      dirty_data_.size() >= options_.writeback_threshold) {
    WriteBehind();
  }
}

Result<std::span<const uint8_t>> Cffs::GetMeta(hw::BlockId block) {
  if (backend_->IsCached(block)) {
    return backend_->GetBlock(block, block);  // parent irrelevant on a hit
  }
  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kFs)) {
    // Only misses are recorded; hits are the hot path and say nothing new.
    tracer_->Instant(trace::Category::kFs, trace_track_, "meta_miss", backend_->Now(),
                     block);
  }
  if (block == root_block_) {
    auto r = backend_->OpenRoot(options_.root_name);  // reloads the root mapping
    if (!r.ok()) {
      return r.status();
    }
    return backend_->GetBlock(block, block);
  }
  auto it = parent_hint_.find(block);
  if (it == parent_hint_.end()) {
    return Status::kNotFound;
  }
  auto parent = GetMeta(it->second);  // ensure the parent chain is resident first
  if (!parent.ok()) {
    return parent.status();
  }
  return backend_->GetBlock(block, it->second);
}

Result<Cffs::Entry> Cffs::ReadSlot(hw::BlockId block, uint8_t slot) {
  auto bytes = GetMeta(block);
  if (!bytes.ok()) {
    return bytes.status();
  }
  std::span<const uint8_t> s = bytes->subspan(slot * kSlotSize, kSlotSize);
  Entry e;
  e.kind = s[kOffKind];
  e.uid = GetU16(s, kOffUid);
  e.size = GetU32(s, kOffSize);
  e.mtime = GetU32(s, kOffMtime);
  e.nblocks = GetU32(s, kOffNBlocks);
  uint8_t nl = s[kOffNameLen];
  e.name.assign(reinterpret_cast<const char*>(s.data() + kOffName),
                std::min<size_t>(nl, kNameMax));
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    e.direct[i] = GetU32(s, kOffDirect + i * 4);
  }
  for (uint32_t i = 0; i < kNumIndirect; ++i) {
    e.indirect[i] = GetU32(s, kOffIndirect + i * 4);
  }
  backend_->ChargeCpu(30);  // decode cost
  return e;
}

Result<Cffs::Entry> Cffs::ReadEntry(const Handle& h) { return ReadSlot(h.dir_block, h.slot); }

Result<std::vector<hw::BlockId>> Cffs::DirBlocks(const DirRef& d) {
  std::vector<hw::BlockId> out;
  Entry e;
  hw::BlockId holder;
  if (d.is_root) {
    out.push_back(root_block_);
    auto hdr = ReadSlot(root_block_, 0);
    if (!hdr.ok()) {
      return hdr.status();
    }
    e = *hdr;
    holder = root_block_;
  } else {
    auto ent = ReadEntry(d.entry);
    if (!ent.ok()) {
      return ent.status();
    }
    e = *ent;
    holder = d.entry.dir_block;
  }
  const uint32_t ndirect = std::min(e.nblocks, kNumDirect);
  for (uint32_t i = 0; i < ndirect; ++i) {
    out.push_back(e.direct[i]);
    RememberParent(e.direct[i], holder);
  }
  uint32_t remaining = e.nblocks - ndirect;
  for (uint32_t k = 0; k < kNumIndirect && remaining > 0; ++k) {
    if (e.indirect[k] == 0) {
      return Status::kBadMetadata;
    }
    RememberParent(e.indirect[k], holder);
    auto ind = GetMeta(e.indirect[k]);
    if (!ind.ok()) {
      return ind.status();
    }
    uint16_t count = GetU16(*ind, 0);
    for (uint16_t i = 0; i < count && remaining > 0; ++i, --remaining) {
      hw::BlockId db = GetU32(*ind, 4 + i * 4u);
      out.push_back(db);
      RememberParent(db, e.indirect[k]);
    }
  }
  return out;
}

Result<Cffs::Handle> Cffs::FindInDir(const DirRef& d, const std::string& name) {
  auto blocks = DirBlocks(d);
  if (!blocks.ok()) {
    return blocks.status();
  }
  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kFs)) {
    tracer_->Instant(trace::Category::kFs, trace_track_, "dir_search", backend_->Now(),
                     blocks->size());
  }
  for (hw::BlockId b : *blocks) {
    auto bytes = GetMeta(b);
    if (!bytes.ok()) {
      return bytes.status();
    }
    for (uint8_t slot = 1; slot < kSlotsPerBlock; ++slot) {
      std::span<const uint8_t> s = bytes->subspan(slot * kSlotSize, kSlotSize);
      if (s[kOffKind] == kKindFree || s[kOffKind] == kKindHeader) {
        continue;
      }
      uint8_t nl = s[kOffNameLen];
      backend_->ChargeCpu(backend_->cost().CompareCost(nl + 2));
      if (nl == name.size() &&
          std::memcmp(s.data() + kOffName, name.data(), nl) == 0) {
        return Handle{b, slot};
      }
    }
  }
  return Status::kNotFound;
}

Result<Cffs::DirRef> Cffs::WalkToDir(const std::string& path, std::string* leaf) {
  auto parts = SplitPath(path);
  if (!parts.ok()) {
    return parts.status();
  }
  if (parts->empty()) {
    if (leaf != nullptr) {
      return Status::kInvalidArgument;  // caller needed a leaf name
    }
    return DirRef{.is_root = true, .entry = {}};
  }
  size_t stop = parts->size() - (leaf != nullptr ? 1 : 0);
  DirRef cur{.is_root = true, .entry = {}};
  for (size_t i = 0; i < stop; ++i) {
    auto h = FindInDir(cur, (*parts)[i]);
    if (!h.ok()) {
      return h.status();
    }
    auto e = ReadEntry(*h);
    if (!e.ok()) {
      return e.status();
    }
    if (e->kind != kKindDir) {
      return Status::kNotFound;
    }
    cur = DirRef{.is_root = false, .entry = *h};
  }
  if (leaf != nullptr) {
    *leaf = parts->back();
  }
  return cur;
}

Result<Cffs::Handle> Cffs::Lookup(const std::string& path) {
  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kFs)) {
    tracer_->Instant(trace::Category::kFs, trace_track_, "lookup", backend_->Now(),
                     path.size());
  }
  std::string leaf;
  auto dir = WalkToDir(path, &leaf);
  if (!dir.ok()) {
    return dir.status();
  }
  return FindInDir(*dir, leaf);
}

Status Cffs::ExtendDirectory(const DirRef& d, const std::vector<hw::BlockId>& existing) {
  // Allocate one more directory block, co-located with the last existing one.
  hw::BlockId holder = d.is_root ? root_block_ : d.entry.dir_block;
  uint8_t slot = d.is_root ? 0 : d.entry.slot;
  auto e = ReadSlot(holder, slot);
  if (!e.ok()) {
    return e.status();
  }
  auto nb = backend_->FindFreeRun(existing.back() + 1, 1);
  if (!nb.ok()) {
    return nb.status();
  }

  const uint32_t base = slot * kSlotSize;
  const uint32_t n = e->nblocks;
  xn::Mods mods = {ModU32(base + kOffNBlocks, n + 1)};
  std::vector<udf::Extent> extents;
  if (n < kNumDirect) {
    mods.push_back(ModU32(base + kOffDirect + n * 4, *nb));
    extents.push_back({*nb, 1, dir_tmpl_});
  } else {
    // Into an indirect block (rare for directories; same path as file growth).
    uint32_t k = (n - kNumDirect) / kPtrsPerIndirect;
    uint32_t i = (n - kNumDirect) % kPtrsPerIndirect;
    if (i == 0) {
      // Need a fresh indirect block first.
      auto ib = backend_->FindFreeRun(existing.back() + 1, 1);
      if (!ib.ok()) {
        return ib.status();
      }
      xn::Mods imods = {ModU32(base + kOffIndirect + k * 4, *ib)};
      std::vector<udf::Extent> iext = {{*ib, 1, ind_dir_tmpl_}};
      Status s = backend_->Alloc(holder, imods, iext);
      if (s != Status::kOk) {
        return s;
      }
      s = backend_->InstallFresh(*ib, holder);
      if (s != Status::kOk) {
        return s;
      }
      s = backend_->Modify(*ib, {ModU16(2, options_.fsid)});
      if (s != Status::kOk) {
        return s;
      }
      MarkDirty(*ib);
      MarkDirty(holder);
      e = ReadSlot(holder, slot);  // refresh indirect pointer
    }
    hw::BlockId ind = (i == 0) ? 0 : e->indirect[k];
    if (i == 0) {
      auto e2 = ReadSlot(holder, slot);
      ind = e2->indirect[k];
    }
    xn::Mods pmods = {ModU16(0, static_cast<uint16_t>(i + 1)),
                      ModU32(4 + i * 4, *nb)};
    std::vector<udf::Extent> pext = {{*nb, 1, dir_tmpl_}};
    Status s = backend_->Alloc(ind, pmods, pext);
    if (s != Status::kOk) {
      return s;
    }
    MarkDirty(ind);
    s = backend_->Modify(holder, mods);  // bump nblocks only
    if (s != Status::kOk) {
      return s;
    }
    MarkDirty(holder);
    // Initialize the new directory block's header.
    s = backend_->InstallFresh(*nb, ind);
    if (s != Status::kOk) {
      return s;
    }
    s = backend_->Modify(*nb, {ModU8(kOffKind, kKindHeader), ModU16(kOffUid, options_.fsid)});
    MarkDirty(*nb);
    return s;
  }

  Status s = backend_->Alloc(holder, mods, extents);
  if (s != Status::kOk) {
    return s;
  }
  MarkDirty(holder);
  s = backend_->InstallFresh(*nb, holder);
  if (s != Status::kOk) {
    return s;
  }
  s = backend_->Modify(*nb, {ModU8(kOffKind, kKindHeader), ModU16(kOffUid, options_.fsid)});
  MarkDirty(*nb);
  return s;
}

Result<Cffs::Handle> Cffs::AddEntry(const DirRef& d, const Entry& e) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto blocks = DirBlocks(d);
    if (!blocks.ok()) {
      return blocks.status();
    }
    for (hw::BlockId b : *blocks) {
      auto bytes = GetMeta(b);
      if (!bytes.ok()) {
        return bytes.status();
      }
      for (uint8_t slot = 1; slot < kSlotsPerBlock; ++slot) {
        std::span<const uint8_t> s = bytes->subspan(slot * kSlotSize, kSlotSize);
        if (s[kOffKind] != kKindFree) {
          continue;
        }
        // Serialize the entry into mods. The new entry has no pointers yet, so this
        // is ownership-preserving (allocation happens when data is written).
        const uint32_t base = slot * kSlotSize;
        std::vector<uint8_t> name_bytes(kNameMax, 0);
        std::memcpy(name_bytes.data(), e.name.data(), e.name.size());
        xn::Mods mods = {
            ModU8(base + kOffKind, e.kind),
            ModU8(base + kOffNameLen, static_cast<uint8_t>(e.name.size())),
            ModU16(base + kOffUid, e.uid),
            ModU32(base + kOffSize, e.size),
            ModU32(base + kOffMtime, e.mtime),
            ModU32(base + kOffNBlocks, 0),
            ModBytes(base + kOffName, name_bytes),
        };
        // Zero the pointer area defensively (slot may hold stale bytes).
        std::vector<uint8_t> zeros(kSlotSize - kOffDirect, 0);
        mods.push_back(ModBytes(base + kOffDirect, zeros));
        Status st = backend_->Modify(b, mods);
        if (st != Status::kOk) {
          return st;
        }
        MarkDirty(b);
        return Handle{b, slot};
      }
    }
    // Directory full: extend it and retry once.
    Status st = ExtendDirectory(d, *blocks);
    if (st != Status::kOk) {
      return st;
    }
  }
  return Status::kOutOfResources;
}

Result<Cffs::Handle> Cffs::Create(const std::string& path, uint16_t uid, bool is_dir) {
  std::string leaf;
  auto dir = WalkToDir(path, &leaf);
  if (!dir.ok()) {
    return dir.status();
  }
  // C-FFS invariant: names within a directory are unique (Sec. 4.5). The check scans
  // the cached directory blocks — "less than 100 lines of code".
  if (FindInDir(*dir, leaf).ok()) {
    return Status::kAlreadyExists;
  }
  Entry e;
  e.kind = is_dir ? kKindDir : kKindFile;
  e.uid = uid;
  e.mtime = Mtime();
  e.name = leaf;
  auto h = AddEntry(*dir, e);
  if (!h.ok()) {
    return h;
  }
  if (is_dir) {
    // Allocate the directory's first block, co-located with its parent entry.
    auto nb = backend_->FindFreeRun(h->dir_block + 1, 1);
    if (!nb.ok()) {
      return nb.status();
    }
    const uint32_t base = h->slot * kSlotSize;
    xn::Mods mods = {ModU32(base + kOffNBlocks, 1), ModU32(base + kOffDirect, *nb)};
    std::vector<udf::Extent> extents = {{*nb, 1, dir_tmpl_}};
    Status s = backend_->Alloc(h->dir_block, mods, extents);
    if (s != Status::kOk) {
      return s;
    }
    s = backend_->InstallFresh(*nb, h->dir_block);
    if (s != Status::kOk) {
      return s;
    }
    s = backend_->Modify(*nb, {ModU8(kOffKind, kKindHeader), ModU16(kOffUid, options_.fsid)});
    if (s != Status::kOk) {
      return s;
    }
    MarkDirty(*nb);
    MarkDirty(h->dir_block);
  }
  return h;
}

Result<std::pair<hw::BlockId, hw::BlockId>> Cffs::DataBlockAt(const Handle& h, const Entry& e,
                                                              uint32_t index) {
  if (index >= e.nblocks) {
    return Status::kInvalidArgument;
  }
  if (index < kNumDirect) {
    RememberParent(e.direct[index], h.dir_block);
    return std::make_pair(e.direct[index], h.dir_block);
  }
  uint32_t k = (index - kNumDirect) / kPtrsPerIndirect;
  uint32_t i = (index - kNumDirect) % kPtrsPerIndirect;
  if (k >= kNumIndirect || e.indirect[k] == 0) {
    return Status::kBadMetadata;
  }
  RememberParent(e.indirect[k], h.dir_block);
  if (tracer_ != nullptr && tracer_->enabled(trace::Category::kFs)) {
    tracer_->Instant(trace::Category::kFs, trace_track_, "indirect", backend_->Now(),
                     e.indirect[k]);
  }
  auto ind = GetMeta(e.indirect[k]);
  if (!ind.ok()) {
    return ind.status();
  }
  hw::BlockId db = GetU32(*ind, 4 + i * 4);
  RememberParent(db, e.indirect[k]);
  return std::make_pair(db, e.indirect[k]);
}

Result<std::pair<hw::BlockId, hw::BlockId>> Cffs::BlockAt(const Handle& h, uint32_t index) {
  auto e = ReadEntry(h);
  if (!e.ok()) {
    return e.status();
  }
  return DataBlockAt(h, *e, index);
}

Status Cffs::GrowFile(const Handle& h, Entry* e, uint32_t new_nblocks, hw::BlockId hint) {
  EXO_CHECK_GT(new_nblocks, e->nblocks);
  if (new_nblocks > kNumDirect + kNumIndirect * kPtrsPerIndirect) {
    return Status::kOutOfResources;  // beyond maximum file size
  }
  const uint32_t base = h.slot * kSlotSize;

  while (e->nblocks < new_nblocks) {
    const uint32_t idx = e->nblocks;
    if (idx < kNumDirect) {
      // Batch all direct-range allocations into one guarded operation.
      const uint32_t want = std::min(new_nblocks, kNumDirect) - idx;
      xn::Mods mods;
      std::vector<udf::Extent> extents;
      hw::BlockId cursor = hint;
      for (uint32_t j = 0; j < want; ++j) {
        auto b = backend_->FindFreeRun(cursor, 1);
        if (!b.ok()) {
          return b.status();
        }
        cursor = *b + 1;
        mods.push_back(ModU32(base + kOffDirect + (idx + j) * 4, *b));
        extents.push_back({*b, 1, xn::kDataTemplate});
        e->direct[idx + j] = *b;
      }
      mods.push_back(ModU32(base + kOffNBlocks, idx + want));
      Status s = backend_->Alloc(h.dir_block, mods, extents);
      if (s != Status::kOk) {
        return s;
      }
      MarkDirty(h.dir_block);
      e->nblocks = idx + want;
      hint = cursor;
      continue;
    }

    const uint32_t k = (idx - kNumDirect) / kPtrsPerIndirect;
    const uint32_t i = (idx - kNumDirect) % kPtrsPerIndirect;
    if (e->indirect[k] == 0) {
      EXO_CHECK_EQ(i, 0u);
      auto ib = backend_->FindFreeRun(hint, 1);
      if (!ib.ok()) {
        return ib.status();
      }
      xn::Mods imods = {ModU32(base + kOffIndirect + k * 4, *ib)};
      std::vector<udf::Extent> iext = {{*ib, 1, ind_file_tmpl_}};
      Status s = backend_->Alloc(h.dir_block, imods, iext);
      if (s != Status::kOk) {
        return s;
      }
      s = backend_->InstallFresh(*ib, h.dir_block);
      if (s != Status::kOk) {
        return s;
      }
      s = backend_->Modify(*ib, {ModU16(2, options_.fsid)});
      if (s != Status::kOk) {
        return s;
      }
      e->indirect[k] = *ib;
      MarkDirty(*ib);
      MarkDirty(h.dir_block);
      hint = *ib + 1;
    }

    // Batch allocations within this indirect block.
    const uint32_t want =
        std::min(new_nblocks - idx, kPtrsPerIndirect - i);
    xn::Mods pmods;
    std::vector<udf::Extent> pext;
    hw::BlockId cursor = hint;
    for (uint32_t j = 0; j < want; ++j) {
      auto b = backend_->FindFreeRun(cursor, 1);
      if (!b.ok()) {
        return b.status();
      }
      cursor = *b + 1;
      pmods.push_back(ModU32(4 + (i + j) * 4, *b));
      pext.push_back({*b, 1, xn::kDataTemplate});
    }
    pmods.push_back(ModU16(0, static_cast<uint16_t>(i + want)));
    Status s = backend_->Alloc(e->indirect[k], pmods, pext);
    if (s != Status::kOk) {
      return s;
    }
    MarkDirty(e->indirect[k]);
    // Bump nblocks in the entry (ownership-preserving there).
    s = backend_->Modify(h.dir_block, {ModU32(base + kOffNBlocks, idx + want)});
    if (s != Status::kOk) {
      return s;
    }
    MarkDirty(h.dir_block);
    e->nblocks = idx + want;
    hint = cursor;
  }
  return Status::kOk;
}

Result<uint32_t> Cffs::Write(const Handle& h, uint64_t off, std::span<const uint8_t> data,
                             uint16_t uid) {
  auto e = ReadEntry(h);
  if (!e.ok()) {
    return e.status();
  }
  if (e->kind != kKindFile) {
    return Status::kInvalidArgument;
  }
  // UNIX permission semantics live in C-FFS, mapped onto capabilities by the caller
  // (Sec. 4.5): a simple owner check suffices for our workloads (uid 0 is root).
  if (uid != 0 && e->uid != uid) {
    return Status::kPermissionDenied;
  }
  const uint64_t end = off + data.size();
  const uint32_t need = static_cast<uint32_t>((end + hw::kBlockSize - 1) / hw::kBlockSize);
  if (need > e->nblocks) {
    // Co-location: place file data next to its directory block (C-FFS grouping).
    hw::BlockId hint = e->nblocks > 0 ? e->direct[0] + e->nblocks : h.dir_block + 1;
    Status s = GrowFile(h, &*e, need, hint);
    if (s != Status::kOk) {
      return s;
    }
  }

  size_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = off + done;
    const uint32_t idx = static_cast<uint32_t>(pos / hw::kBlockSize);
    const uint32_t boff = static_cast<uint32_t>(pos % hw::kBlockSize);
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(data.size() - done, hw::kBlockSize - boff));
    auto loc = DataBlockAt(h, *e, idx);
    if (!loc.ok()) {
      return loc.status();
    }
    const bool whole = boff == 0 && chunk == hw::kBlockSize;
    const bool fresh = pos >= e->size;  // beyond old EOF: no need to read old data
    if ((whole || fresh) && !backend_->IsCached(loc->first)) {
      // Avoid the read-modify-write: install a fresh zeroed cache page.
      Status s = backend_->InstallFresh(loc->first, loc->second);
      if (s != Status::kOk && s != Status::kAlreadyExists) {
        return s;
      }
    }
    auto buf = backend_->GetDataWritable(loc->first, loc->second);
    if (!buf.ok()) {
      return buf.status();
    }
    std::memcpy(buf->data() + boff, data.data() + done, chunk);
    backend_->ChargeCpu(backend_->cost().CopyCost(chunk));
    MarkDirty(loc->first, /*metadata=*/false);
    done += chunk;
  }

  // Implicit updates (Sec. 4.5): size and mtime change with the data.
  const uint32_t base = h.slot * kSlotSize;
  xn::Mods mods = {ModU32(base + kOffMtime, Mtime())};
  if (end > e->size) {
    mods.push_back(ModU32(base + kOffSize, static_cast<uint32_t>(end)));
  }
  Status s = backend_->Modify(h.dir_block, mods);
  if (s != Status::kOk) {
    return s;
  }
  MarkDirty(h.dir_block);
  return static_cast<uint32_t>(data.size());
}

Result<uint32_t> Cffs::Read(const Handle& h, uint64_t off, std::span<uint8_t> out) {
  auto e = ReadEntry(h);
  if (!e.ok()) {
    return e.status();
  }
  if (e->kind != kKindFile) {
    return Status::kInvalidArgument;
  }
  if (off >= e->size) {
    return 0u;
  }
  const uint64_t avail = e->size - off;
  const size_t want = static_cast<size_t>(std::min<uint64_t>(avail, out.size()));
  size_t done = 0;
  while (done < want) {
    const uint64_t pos = off + done;
    const uint32_t idx = static_cast<uint32_t>(pos / hw::kBlockSize);
    const uint32_t boff = static_cast<uint32_t>(pos % hw::kBlockSize);
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(want - done, hw::kBlockSize - boff));
    auto loc = DataBlockAt(h, *e, idx);
    if (!loc.ok()) {
      return loc.status();
    }
    auto bytes = backend_->GetBlock(loc->first, loc->second);
    if (!bytes.ok()) {
      return bytes.status();
    }
    std::memcpy(out.data() + done, bytes->data() + boff, chunk);
    backend_->ChargeCpu(backend_->cost().CopyCost(chunk));
    done += chunk;
  }
  return static_cast<uint32_t>(done);
}

Result<FileStat> Cffs::Stat(const Handle& h) {
  auto e = ReadEntry(h);
  if (!e.ok()) {
    return e.status();
  }
  FileStat st;
  st.size = e->size;
  st.is_dir = e->kind == kKindDir;
  st.mtime = e->mtime;
  st.uid = e->uid;
  st.nblocks = e->nblocks;
  return st;
}

Result<FileStat> Cffs::StatPath(const std::string& path) {
  if (path == "/") {
    FileStat st;
    st.is_dir = true;
    return st;
  }
  auto h = Lookup(path);
  if (!h.ok()) {
    return h.status();
  }
  return Stat(*h);
}

Result<std::vector<DirEnt>> Cffs::ReadDir(const std::string& path) {
  Result<DirRef> dir = Status::kNotFound;
  if (path == "/") {
    dir = DirRef{.is_root = true, .entry = {}};
  } else {
    auto h = Lookup(path);
    if (!h.ok()) {
      return h.status();
    }
    auto e = ReadEntry(*h);
    if (!e.ok()) {
      return e.status();
    }
    if (e->kind != kKindDir) {
      return Status::kInvalidArgument;
    }
    dir = DirRef{.is_root = false, .entry = *h};
  }
  auto blocks = DirBlocks(*dir);
  if (!blocks.ok()) {
    return blocks.status();
  }
  std::vector<DirEnt> out;
  for (hw::BlockId b : *blocks) {
    auto bytes = GetMeta(b);
    if (!bytes.ok()) {
      return bytes.status();
    }
    for (uint8_t slot = 1; slot < kSlotsPerBlock; ++slot) {
      std::span<const uint8_t> s = bytes->subspan(slot * kSlotSize, kSlotSize);
      if (s[kOffKind] != kKindFile && s[kOffKind] != kKindDir) {
        continue;
      }
      DirEnt de;
      de.name.assign(reinterpret_cast<const char*>(s.data() + kOffName), s[kOffNameLen]);
      de.is_dir = s[kOffKind] == kKindDir;
      de.size = GetU32(s, kOffSize);
      out.push_back(std::move(de));
      backend_->ChargeCpu(40);
    }
  }
  return out;
}

Status Cffs::FreeFileBlocks(const Handle& h, const Entry& e) {
  const uint32_t base = h.slot * kSlotSize;
  // Free indirect-held data first (children before parents), then the entry's own
  // pointers in one dealloc.
  uint32_t remaining = e.nblocks > kNumDirect ? e.nblocks - kNumDirect : 0;
  for (uint32_t k = 0; k < kNumIndirect && e.indirect[k] != 0; ++k) {
    auto ind = backend_->GetBlock(e.indirect[k], h.dir_block);
    if (!ind.ok()) {
      return ind.status();
    }
    uint16_t count = GetU16(*ind, 0);
    std::vector<udf::Extent> ext;
    for (uint16_t i = 0; i < count; ++i) {
      ext.push_back({GetU32(*ind, 4 + i * 4u), 1, xn::kDataTemplate});
    }
    if (!ext.empty()) {
      xn::Mods mods = {ModU16(0, 0)};
      Status s = backend_->Dealloc(e.indirect[k], mods, ext);
      if (s != Status::kOk) {
        return s;
      }
    }
    remaining -= std::min<uint32_t>(remaining, count);
  }

  xn::Mods mods = {ModU32(base + kOffNBlocks, 0)};
  std::vector<udf::Extent> ext;
  const uint32_t ndirect = std::min(e.nblocks, kNumDirect);
  for (uint32_t i = 0; i < ndirect; ++i) {
    ext.push_back({e.direct[i], 1, xn::kDataTemplate});
    mods.push_back(ModU32(base + kOffDirect + i * 4, 0));
  }
  for (uint32_t k = 0; k < kNumIndirect; ++k) {
    if (e.indirect[k] != 0) {
      ext.push_back({e.indirect[k], 1,
                     e.kind == kKindDir ? ind_dir_tmpl_ : ind_file_tmpl_});
      mods.push_back(ModU32(base + kOffIndirect + k * 4, 0));
    }
  }
  if (e.kind == kKindDir) {
    // Directory blocks are typed cffs-dir, not data.
    ext.clear();
    for (uint32_t i = 0; i < ndirect; ++i) {
      ext.push_back({e.direct[i], 1, dir_tmpl_});
    }
    for (uint32_t k = 0; k < kNumIndirect; ++k) {
      if (e.indirect[k] != 0) {
        ext.push_back({e.indirect[k], 1, ind_dir_tmpl_});
      }
    }
  }
  if (ext.empty()) {
    return backend_->Modify(h.dir_block, mods);
  }
  Status s = backend_->Dealloc(h.dir_block, mods, ext);
  if (s == Status::kOk) {
    MarkDirty(h.dir_block);
  }
  return s;
}

Status Cffs::Unlink(const std::string& path, uint16_t uid) {
  auto h = Lookup(path);
  if (!h.ok()) {
    return h.status();
  }
  auto e = ReadEntry(*h);
  if (!e.ok()) {
    return e.status();
  }
  if (uid != 0 && e->uid != uid) {
    return Status::kPermissionDenied;
  }
  if (e->kind == kKindDir) {
    // Only empty directories can be removed.
    auto entries = ReadDir(path);
    if (!entries.ok()) {
      return entries.status();
    }
    if (!entries->empty()) {
      return Status::kBusy;
    }
    // Indirect-held dir blocks: free their pointers first (they are empty).
    for (uint32_t k = 0; k < kNumIndirect && e->indirect[k] != 0; ++k) {
      auto ind = backend_->GetBlock(e->indirect[k], h->dir_block);
      if (!ind.ok()) {
        return ind.status();
      }
      uint16_t count = GetU16(*ind, 0);
      std::vector<udf::Extent> ext;
      for (uint16_t i = 0; i < count; ++i) {
        ext.push_back({GetU32(*ind, 4 + i * 4u), 1, dir_tmpl_});
      }
      if (!ext.empty()) {
        Status s = backend_->Dealloc(e->indirect[k], {ModU16(0, 0)}, ext);
        if (s != Status::kOk) {
          return s;
        }
        MarkDirty(e->indirect[k]);
      }
    }
    // Build an entry view with only direct dir blocks + indirect blocks to free.
    Entry dir_e = *e;
    dir_e.nblocks = std::min(dir_e.nblocks, kNumDirect);
    Status s = FreeFileBlocks(*h, dir_e);
    if (s != Status::kOk) {
      return s;
    }
  } else {
    Status s = FreeFileBlocks(*h, *e);
    if (s != Status::kOk) {
      return s;
    }
  }
  // Clear the slot; the name cache (the directory block) updates implicitly.
  const uint32_t base = h->slot * kSlotSize;
  Status s = backend_->Modify(h->dir_block, {ModU8(base + kOffKind, kKindFree)});
  if (s == Status::kOk) {
    MarkDirty(h->dir_block);
  }
  return s;
}

Status Cffs::Rename(const std::string& from, const std::string& to, uint16_t uid) {
  auto h = Lookup(from);
  if (!h.ok()) {
    return h.status();
  }
  auto e = ReadEntry(*h);
  if (!e.ok()) {
    return e.status();
  }
  if (uid != 0 && e->uid != uid) {
    return Status::kPermissionDenied;
  }
  std::string to_leaf;
  auto to_dir = WalkToDir(to, &to_leaf);
  if (!to_dir.ok()) {
    return to_dir.status();
  }
  if (FindInDir(*to_dir, to_leaf).ok()) {
    return Status::kAlreadyExists;
  }
  // Same-directory rename: rewrite the name in place (ownership-preserving).
  std::string from_leaf;
  auto from_dir = WalkToDir(from, &from_leaf);
  if (!from_dir.ok()) {
    return from_dir.status();
  }
  bool same_dir =
      (to_dir->is_root && from_dir->is_root) ||
      (!to_dir->is_root && !from_dir->is_root && to_dir->entry == from_dir->entry);
  if (!same_dir) {
    return Status::kNotSupported;  // cross-directory rename would move pointers
  }
  const uint32_t base = h->slot * kSlotSize;
  std::vector<uint8_t> name_bytes(kNameMax, 0);
  std::memcpy(name_bytes.data(), to_leaf.data(), to_leaf.size());
  xn::Mods mods = {ModU8(base + kOffNameLen, static_cast<uint8_t>(to_leaf.size())),
                   ModBytes(base + kOffName, name_bytes)};
  Status s = backend_->Modify(h->dir_block, mods);
  if (s == Status::kOk) {
    MarkDirty(h->dir_block);
  }
  return s;
}

Result<std::vector<hw::BlockId>> Cffs::FileBlocks(const Handle& h) {
  auto e = ReadEntry(h);
  if (!e.ok()) {
    return e.status();
  }
  std::vector<hw::BlockId> out;
  for (uint32_t i = 0; i < e->nblocks; ++i) {
    auto loc = DataBlockAt(h, *e, i);
    if (!loc.ok()) {
      return loc.status();
    }
    out.push_back(loc->first);
  }
  return out;
}

Result<Cffs::Handle> Cffs::CreateSized(const std::string& path, uint16_t uid, uint64_t size,
                                       hw::BlockId hint) {
  auto h = Create(path, uid, /*is_dir=*/false);
  if (!h.ok()) {
    return h;
  }
  const uint32_t need = static_cast<uint32_t>((size + hw::kBlockSize - 1) / hw::kBlockSize);
  if (need > 0) {
    auto e = ReadEntry(*h);
    if (!e.ok()) {
      return e.status();
    }
    Status s = GrowFile(*h, &*e, need, hint == hw::kInvalidBlock ? h->dir_block + 1 : hint);
    if (s != Status::kOk) {
      return s;
    }
  }
  const uint32_t base = h->slot * kSlotSize;
  Status s = backend_->Modify(h->dir_block,
                              {ModU32(base + kOffSize, static_cast<uint32_t>(size))});
  if (s != Status::kOk) {
    return s;
  }
  MarkDirty(h->dir_block);
  return h;
}

Status Cffs::Sync() {
  std::vector<hw::BlockId> blocks(dirty_data_.begin(), dirty_data_.end());
  blocks.insert(blocks.end(), dirty_.begin(), dirty_.end());
  if (blocks.empty()) {
    return Status::kOk;
  }
  Status s = backend_->FlushSync(blocks);
  if (s != Status::kOk) {
    return s;
  }
  for (hw::BlockId b : blocks) {
    if (backend_->IsClean(b)) {
      dirty_.erase(b);
      dirty_data_.erase(b);
    }
  }
  return Status::kOk;
}

void Cffs::WriteBehind() {
  std::vector<hw::BlockId> blocks(dirty_data_.begin(), dirty_data_.end());
  std::vector<hw::BlockId> deferred;
  (void)backend_->FlushAsync(blocks, &deferred);
  // Submitted blocks will become clean on completion; forget them optimistically and
  // re-add anything still dirty at the next Sync.
  dirty_data_.clear();
  dirty_data_.insert(deferred.begin(), deferred.end());
}

}  // namespace exo::fs
