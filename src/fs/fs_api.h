// FileSys: the uniform path-based file-system interface the OS layers mount.
//
// Both C-FFS (exokernel-style, embedded inodes, co-locating, async ordered metadata)
// and FFS (classic layout, synchronous metadata) implement this, so the UNIX
// personality (ExOS or the BSD kernel) is file-system-agnostic — exactly the
// configurations Figure 2 compares.
#ifndef EXO_FS_FS_API_H_
#define EXO_FS_FS_API_H_

#include <string>
#include <vector>

#include "fs/backend.h"
#include "fs/cffs.h"

namespace exo::fs {

class FileSys {
 public:
  virtual ~FileSys() = default;

  // Opens (optionally creating) a file; returns an opaque handle.
  [[nodiscard]] virtual Result<uint64_t> Open(const std::string& path, bool create, uint16_t uid) = 0;
  [[nodiscard]] virtual Result<uint32_t> Read(uint64_t h, uint64_t off, std::span<uint8_t> out) = 0;
  [[nodiscard]] virtual Result<uint32_t> Write(uint64_t h, uint64_t off, std::span<const uint8_t> data,
                                 uint16_t uid) = 0;
  [[nodiscard]] virtual Result<FileStat> StatHandle(uint64_t h) = 0;
  [[nodiscard]] virtual Result<FileStat> StatPath(const std::string& path) = 0;
  [[nodiscard]] virtual Status Mkdir(const std::string& path, uint16_t uid) = 0;
  [[nodiscard]] virtual Status Unlink(const std::string& path, uint16_t uid) = 0;
  [[nodiscard]] virtual Status Rename(const std::string& from, const std::string& to, uint16_t uid) = 0;
  [[nodiscard]] virtual Result<std::vector<DirEnt>> ReadDir(const std::string& path) = 0;
  [[nodiscard]] virtual Status Sync() = 0;
  virtual void WriteBehind() {}

  // Low-level extensions used by specialized applications (XCP, Cheetah). File
  // systems that hide their layout return kNotSupported — which is the point: only
  // the exokernel configuration exposes them.
  [[nodiscard]] virtual Result<std::vector<hw::BlockId>> FileBlocks(uint64_t h) {
    return Status::kNotSupported;
  }
  [[nodiscard]] virtual Result<uint64_t> CreateSized(const std::string& path, uint16_t uid, uint64_t size,
                                       hw::BlockId hint) {
    return Status::kNotSupported;
  }

  virtual FsBackend& backend() = 0;
};

// Adapter: C-FFS as a FileSys. Handles encode (directory block << 8) | slot.
class CffsFileSys : public FileSys {
 public:
  explicit CffsFileSys(Cffs* fs, bool expose_layout = true)
      : fs_(fs), expose_layout_(expose_layout) {}

  [[nodiscard]] Result<uint64_t> Open(const std::string& path, bool create, uint16_t uid) override {
    auto h = fs_->Lookup(path);
    if (!h.ok() && create) {
      h = fs_->Create(path, uid, /*is_dir=*/false);
    }
    if (!h.ok()) {
      return h.status();
    }
    return Pack(*h);
  }
  [[nodiscard]] Result<uint32_t> Read(uint64_t h, uint64_t off, std::span<uint8_t> out) override {
    return fs_->Read(Unpack(h), off, out);
  }
  [[nodiscard]] Result<uint32_t> Write(uint64_t h, uint64_t off, std::span<const uint8_t> data,
                         uint16_t uid) override {
    return fs_->Write(Unpack(h), off, data, uid);
  }
  [[nodiscard]] Result<FileStat> StatHandle(uint64_t h) override { return fs_->Stat(Unpack(h)); }
  [[nodiscard]] Result<FileStat> StatPath(const std::string& path) override { return fs_->StatPath(path); }
  [[nodiscard]] Status Mkdir(const std::string& path, uint16_t uid) override {
    auto h = fs_->Create(path, uid, /*is_dir=*/true);
    return h.ok() ? Status::kOk : h.status();
  }
  [[nodiscard]] Status Unlink(const std::string& path, uint16_t uid) override {
    return fs_->Unlink(path, uid);
  }
  [[nodiscard]] Status Rename(const std::string& from, const std::string& to, uint16_t uid) override {
    return fs_->Rename(from, to, uid);
  }
  [[nodiscard]] Result<std::vector<DirEnt>> ReadDir(const std::string& path) override {
    return fs_->ReadDir(path);
  }
  [[nodiscard]] Status Sync() override { return fs_->Sync(); }
  void WriteBehind() override { fs_->WriteBehind(); }

  [[nodiscard]] Result<std::vector<hw::BlockId>> FileBlocks(uint64_t h) override {
    if (!expose_layout_) {
      return Status::kNotSupported;  // kernel-resident C-FFS hides its layout
    }
    return fs_->FileBlocks(Unpack(h));
  }
  [[nodiscard]] Result<uint64_t> CreateSized(const std::string& path, uint16_t uid, uint64_t size,
                               hw::BlockId hint) override {
    if (!expose_layout_) {
      return Status::kNotSupported;
    }
    auto h = fs_->CreateSized(path, uid, size, hint);
    if (!h.ok()) {
      return h.status();
    }
    return Pack(*h);
  }

  FsBackend& backend() override { return fs_->backend(); }
  Cffs& cffs() { return *fs_; }

 private:
  static uint64_t Pack(const Cffs::Handle& h) {
    return (static_cast<uint64_t>(h.dir_block) << 8) | h.slot;
  }
  static Cffs::Handle Unpack(uint64_t h) {
    return Cffs::Handle{static_cast<hw::BlockId>(h >> 8), static_cast<uint8_t>(h & 0xff)};
  }

  Cffs* fs_;
  bool expose_layout_;
};

}  // namespace exo::fs

#endif  // EXO_FS_FS_API_H_
