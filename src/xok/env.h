// Environment: the kernel-visible state of one running program (Sec. 5.1).
//
// An environment holds exactly what the hardware needs to run a process and respond to
// events: a page table, capability list, scheduling state, and upcall entry points.
// Everything else (UNIX process semantics, file descriptors, signals) lives in the
// libOS. A small application-reserved area in the environment structure is readable by
// everyone and writable by the owner; ExOS keeps its process-table entry there.
#ifndef EXO_XOK_ENV_H_
#define EXO_XOK_ENV_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/fiber.h"
#include "udf/insn.h"
#include "xok/capability.h"
#include "xok/page_table.h"

namespace exo::xok {

using EnvId = uint32_t;
constexpr EnvId kInvalidEnv = 0xffffffff;

// A downloaded wakeup predicate (Sec. 5.1): a loop-free program the kernel evaluates
// when the environment is about to be scheduled; the environment runs only if it
// returns nonzero. The program reads a pinned memory window (pre-translated physical
// addresses in real Xok) and may compare against the system clock.
//
// LibOS code may alternatively install a host-lambda predicate with an explicit cycle
// cost; this stands in for an equivalent downloaded program where writing assembly
// text would add nothing, while keeping the charged cost honest.
struct WakeupPredicate {
  udf::Program program;                       // empty => use `host`
  std::vector<uint8_t> window;                // snapshot source is re-read each eval
  const std::vector<uint8_t>* live_window = nullptr;  // pinned live memory (preferred)
  std::function<bool()> host;
  sim::Cycles host_cost = 60;
  // Re-evaluation deadline hint for time-based predicates; the scheduler advances an
  // idle clock no further than this before re-checking.
  sim::Cycles deadline = UINT64_MAX;
};

enum class EnvState : uint8_t {
  kRunnable,
  kBlocked,   // waiting on a wakeup predicate
  kZombie,    // exited; waiting to be reaped by the spawner
};

struct IpcMessage {
  EnvId from = kInvalidEnv;
  std::array<uint64_t, 4> words{};
};

struct Env {
  EnvId id = kInvalidEnv;
  EnvId parent = kInvalidEnv;
  bool alive = false;

  std::vector<Capability> caps;
  PageTable pt;

  EnvState state = EnvState::kRunnable;
  WakeupPredicate predicate;  // valid when state == kBlocked

  // Scheduling.
  sim::Cycles slice_used = 0;
  uint32_t critical_depth = 0;        // robust critical sections: software interrupts off
  bool end_of_slice_pending = false;  // slice expired inside a critical section
  EnvId yield_to = kInvalidEnv;       // directed yield hint

  // Upcalls. Installed by the libOS; invoked by the kernel in env context.
  // Page-fault handler returns true if it resolved the fault (e.g. COW copy).
  std::function<bool(VPage, bool write)> on_page_fault;
  std::function<void()> on_slice_begin;
  std::function<void()> on_slice_end;
  std::function<void(const IpcMessage&)> on_ipc;

  std::deque<IpcMessage> ipc_queue;

  // Application-reserved space in the kernel environment structure, mapped readable
  // for all processes and writable only for the owner (Sec. 9.3).
  std::array<uint8_t, 256> app_data{};

  int exit_code = 0;

  // Host-side execution context (the simulated program counter + stack).
  std::unique_ptr<sim::Fiber> fiber;

  // Accounting surfaced to Figure 4/5 benches: per-process run time.
  sim::Cycles spawned_at = 0;
  sim::Cycles exited_at = 0;
};

}  // namespace exo::xok

#endif  // EXO_XOK_ENV_H_
