// Environment: the kernel-visible state of one running program (Sec. 5.1).
//
// An environment holds exactly what the hardware needs to run a process and respond to
// events: a page table, capability list, scheduling state, and upcall entry points.
// Everything else (UNIX process semantics, file descriptors, signals) lives in the
// libOS. A small application-reserved area in the environment structure is readable by
// everyone and writable by the owner; ExOS keeps its process-table entry there.
#ifndef EXO_XOK_ENV_H_
#define EXO_XOK_ENV_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sim/engine.h"
#include "sim/fiber.h"
#include "udf/insn.h"
#include "xok/capability.h"
#include "xok/page_table.h"

namespace exo::xok {

using EnvId = uint32_t;
constexpr EnvId kInvalidEnv = 0xffffffff;

// Predicate indexing is available in this tree; benches that must also compile
// against older checkouts (for baseline recording) test this macro.
#define EXO_XOK_PREDICATE_WATCHES 1

// A kernel object a blocked env's wakeup predicate reads. When the predicate
// declares its watches, the scheduler re-evaluates it only after a write to one
// of the watched objects (or once the deadline passes) instead of on every
// scheduling decision.
enum class WatchKind : uint8_t {
  kRegion,      // id = RegionId: SysRegionWrite/Destroy
  kFilterRing,  // id = FilterId: packet arrival, ring consume, filter removal
  kIpc,         // id = EnvId whose ipc_queue is read (usually the watcher's own)
  kEnvState,    // id = EnvId: exit/abort transitions (wait-style predicates)
};

struct WatchSpec {
  WatchKind kind = WatchKind::kRegion;
  uint32_t id = 0;
};

// A downloaded wakeup predicate (Sec. 5.1): a loop-free program the kernel evaluates
// when the environment is about to be scheduled; the environment runs only if it
// returns nonzero. The program reads a pinned memory window (pre-translated physical
// addresses in real Xok) and may compare against the system clock.
//
// LibOS code may alternatively install a host-lambda predicate with an explicit cycle
// cost; this stands in for an equivalent downloaded program where writing assembly
// text would add nothing, while keeping the charged cost honest.
struct WakeupPredicate {
  udf::Program program;                       // empty => use `host`
  std::vector<uint8_t> window;                // snapshot source is re-read each eval
  const std::vector<uint8_t>* live_window = nullptr;  // pinned live memory (preferred)
  std::function<bool()> host;
  sim::Cycles host_cost = 60;
  // Re-evaluation deadline hint for time-based predicates; the scheduler advances an
  // idle clock no further than this before re-checking.
  sim::Cycles deadline = UINT64_MAX;
  // Opt-in dirty-window indexing. Empty (the default): the predicate is
  // re-evaluated on every scheduling decision, exactly as before. Non-empty: the
  // installer asserts the predicate's value can only change when one of the
  // watched kernel objects is written (or when `deadline` passes) — predicates
  // over raw application memory that other envs poke directly must NOT declare
  // watches, since those stores are invisible to the kernel.
  std::vector<WatchSpec> watches;
};

enum class EnvState : uint8_t {
  kRunnable,
  kBlocked,   // waiting on a wakeup predicate
  kZombie,    // exited; waiting to be reaped by the spawner
};

struct IpcMessage {
  EnvId from = kInvalidEnv;
  std::array<uint64_t, 4> words{};
};

// ---- Resource accounting (quotas + revocation, Sec. 3 "visible resource
// revocation" and Sec. 3.5 "the abort protocol") ----

// Per-env ceilings. Defaults are effectively unlimited; a supervisor (the host
// driver or a privileged libOS) lowers them with SysSetQuota. All admission
// checks are pure integer compares on the stored ledger — no cycles are charged
// beyond the syscall's normal cost, so well-behaved workloads are unaffected.
struct ResourceQuota {
  uint32_t frames = UINT32_MAX;      // direct refs + page-table mappings
  uint32_t regions = UINT32_MAX;     // software regions owned
  uint64_t region_bytes = UINT64_MAX;
  uint32_t filters = UINT32_MAX;     // packet filters installed
  uint32_t ring_slots = UINT32_MAX;  // sum of filter ring capacities
  uint32_t ipc_depth = 1024;         // pending messages in ipc_queue
  // Proportional-share CPU weight for the stride scheduler. Tickets are part of
  // the quota ledger, so SysSetQuota adjusts them live under the same
  // capability check as every other ceiling. Zero is legal and means "best
  // effort": the scheduler applies a one-ticket floor so the env still makes
  // progress instead of starving outright.
  uint32_t cpu_tickets = 100;
  // When locked, the env itself may not raise its own quota (a hostile libOS
  // cannot simply undo the limits placed on it).
  bool locked = false;
};

// The ledger the kernel maintains as resources are granted/released. Stored
// (not recomputed) so admission is O(1); CheckInvariants() recounts from
// scratch and cross-checks.
struct ResourceUsage {
  uint32_t frames = 0;
  uint32_t regions = 0;
  uint64_t region_bytes = 0;
  uint32_t filters = 0;
  uint32_t ring_slots = 0;
};

enum class RevokeResource : uint8_t { kFrames, kRegions, kFilters };

// An outstanding revocation: the kernel has asked the env (via its on_revoke
// upcall) to shed resources down to `allowed` before `deadline`. Past the
// deadline a non-compliant env is aborted and the kernel repossesses
// everything it held (Sec. 3.5).
struct RevocationRequest {
  RevokeResource resource = RevokeResource::kFrames;
  uint32_t allowed = 0;       // usage the env must get down to
  sim::Cycles deadline = 0;   // absolute cycle count
  // Set when the kernel's memory-pressure monitor issued this request (rather
  // than a supervisor env): a deadline abort then counts toward
  // "xok.pressure_aborts" so soaks can tell policy kills from hostile ones.
  bool from_pressure = false;
};

struct Env {
  EnvId id = kInvalidEnv;
  EnvId parent = kInvalidEnv;
  bool alive = false;

  std::vector<Capability> caps;
  PageTable pt;

  EnvState state = EnvState::kRunnable;
  WakeupPredicate predicate;  // valid when state == kBlocked
  // Dirty flag for watched predicates: set when a watched object is written (and
  // on block, so every predicate is evaluated at least once); cleared after an
  // evaluation that returned false. Meaningless when predicate.watches is empty.
  bool predicate_dirty = true;

  // Scheduling.
  sim::Cycles slice_used = 0;
  // Stride-scheduler state: the env's pass value advances by
  // stride * (cpu consumed / quantum) each time it is descheduled, and the
  // scheduler always runs the lowest-pass schedulable env. `sched_seq` is a
  // kernel-assigned tie-break refreshed at every deschedule, so equal-pass
  // envs rotate instead of the lowest id winning every tie (with equal
  // tickets this degenerates to round-robin order).
  uint64_t pass = 0;
  uint64_t sched_seq = 0;
  uint32_t critical_depth = 0;        // robust critical sections: software interrupts off
  bool end_of_slice_pending = false;  // slice expired inside a critical section
  EnvId yield_to = kInvalidEnv;       // directed yield hint

  // Upcalls. Installed by the libOS; invoked by the kernel in env context.
  // Page-fault handler returns true if it resolved the fault (e.g. COW copy).
  std::function<bool(VPage, bool write)> on_page_fault;
  std::function<void()> on_slice_begin;
  std::function<void()> on_slice_end;
  std::function<void(const IpcMessage&)> on_ipc;

  std::deque<IpcMessage> ipc_queue;

  // ---- Resource accounting ----

  ResourceQuota quota;
  ResourceUsage usage;
  // Direct frame references held via SysFrameAlloc/SysFrameRef (frame -> count).
  // Page-table references are tracked by `pt` itself. Together these are what
  // AbortEnv repossesses and what CheckInvariants() audits.
  std::map<hw::FrameId, uint32_t> frame_refs;

  // Outstanding revocation, if any (at most one at a time).
  std::optional<RevocationRequest> pending_revoke;
  // Revocation upcall, installed by the libOS. Runs in env context with
  // software interrupts disabled (critical section), like the other upcalls.
  std::function<void(const RevocationRequest&)> on_revoke;

  // Why the kernel aborted this env (nullptr if it exited voluntarily).
  const char* abort_reason = nullptr;

  // Watchdog: consecutive end-of-slice deferrals inside one critical section.
  uint32_t deferred_slices = 0;
  // Set when the parent exited first; FinishExit auto-reaps orphaned zombies.
  bool orphaned = false;

  // Application-reserved space in the kernel environment structure, mapped readable
  // for all processes and writable only for the owner (Sec. 9.3).
  std::array<uint8_t, 256> app_data{};

  int exit_code = 0;

  // Host-side execution context (the simulated program counter + stack).
  std::unique_ptr<sim::Fiber> fiber;

  // Accounting surfaced to Figure 4/5 benches: per-process run time.
  sim::Cycles spawned_at = 0;
  sim::Cycles exited_at = 0;

  // Tracing: the track this env's spans land on (the kernel track when the env
  // was created with tracing off), and when the current blocked period started
  // (the wake path emits the whole `blocked` span retrospectively).
  uint32_t trace_track = 0;
  sim::Cycles blocked_since = 0;
};

}  // namespace exo::xok

#endif  // EXO_XOK_ENV_H_
