#include "xok/kernel.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "udf/verifier.h"
#include "udf/vm.h"

namespace exo::xok {

namespace {

CapName EnvGuardName(EnvId id) {
  return CapName{kCapEnvs, static_cast<uint16_t>(id >> 16), static_cast<uint16_t>(id & 0xffff)};
}

// Idle-clock tick when every environment is blocked and no device events are pending.
constexpr sim::Cycles kIdleTick = 20'000;  // 100 us at 200 MHz
// Simulated-time bound on a fully idle system before we declare deadlock.
constexpr sim::Cycles kDeadlockBound = 24'000'000'000ULL;  // 120 s at 200 MHz

}  // namespace

XokKernel::XokKernel(hw::Machine* machine) : machine_(machine) {
  syscall_counter_ = machine_->counters().Handle("xok.syscalls");
  ctx_switch_counter_ = machine_->counters().Handle("xok.context_switches");
  fault_counter_ = machine_->counters().Handle("xok.page_faults");
  for (uint32_t i = 0; i < machine_->num_nics(); ++i) {
    machine_->nic(i).SetReceiveHandler([this, i](hw::Packet p) { OnPacket(i, std::move(p)); });
  }
}

XokKernel::~XokKernel() = default;

void XokKernel::ChargeSyscall(const char* name) {
  const auto& c = machine_->cost();
  machine_->Charge(c.trap_round_trip + c.xok_syscall_check + interrupt_debt_);
  interrupt_debt_ = 0;
  ++*syscall_counter_;
}

Status XokKernel::CheckCred(const Env& e, CredIndex cred, const CapName& guard,
                            bool need_write) {
  const auto& c = machine_->cost();
  if (cred == kCredAny) {
    for (const Capability& cap : e.caps) {
      machine_->Charge(c.cap_check);
      if (Dominates(cap, guard, need_write)) {
        return Status::kOk;
      }
    }
    return Status::kPermissionDenied;
  }
  if (cred < 0 || static_cast<size_t>(cred) >= e.caps.size()) {
    return Status::kInvalidArgument;
  }
  machine_->Charge(c.cap_check);
  return Dominates(e.caps[static_cast<size_t>(cred)], guard, need_write)
             ? Status::kOk
             : Status::kPermissionDenied;
}

// ---- Environments ----

EnvId XokKernel::CreateEnv(EnvId parent, std::vector<Capability> caps,
                           std::function<void()> body) {
  ChargeSyscall("env_alloc");
  EnvId id = next_env_id_++;
  auto e = std::make_unique<Env>();
  e->id = id;
  e->parent = parent;
  e->alive = true;
  e->caps = std::move(caps);
  // The environment implicitly holds the capability for itself; its creator is
  // granted one too, enabling parent-managed setup (fork) under unidirectional trust.
  e->caps.push_back(Capability{EnvGuardName(id), true});
  if (parent != kInvalidEnv && EnvExists(parent)) {
    env(parent).caps.push_back(Capability{EnvGuardName(id), true});
  }
  e->spawned_at = machine_->engine().now();
  Env* raw = e.get();
  e->fiber = std::make_unique<sim::Fiber>([this, raw, body = std::move(body)] {
    body();
    // Body returned without SysExit; treat as exit(0) from host context after the
    // fiber completes (see Run()).
  });
  envs_[id] = std::move(e);
  run_queue_.push_back(id);
  ++alive_count_;
  return id;
}

Env& XokKernel::env(EnvId id) {
  auto it = envs_.find(id);
  EXO_CHECK(it != envs_.end());
  return *it->second;
}

const Env& XokKernel::env(EnvId id) const {
  auto it = envs_.find(id);
  EXO_CHECK(it != envs_.end());
  return *it->second;
}

bool XokKernel::EnvExists(EnvId id) const { return envs_.count(id) != 0; }

Status XokKernel::ReapEnv(EnvId id) {
  auto it = envs_.find(id);
  if (it == envs_.end()) {
    return Status::kNotFound;
  }
  Env& e = *it->second;
  if (e.state != EnvState::kZombie) {
    return Status::kBusy;
  }
  // Drop the mapping references; frames shared with the buffer-cache registry (or
  // other environments) survive, which is how cache contents outlive processes.
  for (const auto& [vp, pte] : e.pt.entries()) {
    machine_->mem().Unref(pte.frame);
  }
  envs_.erase(it);
  return Status::kOk;
}

void XokKernel::FinishExit(Env* e, int code) {
  EXO_CHECK(e->alive);
  e->alive = false;
  e->state = EnvState::kZombie;
  e->exit_code = code;
  e->exited_at = machine_->engine().now();
  --alive_count_;
}

// ---- Scheduler ----

bool XokKernel::EvalPredicate(Env* e) {
  WakeupPredicate& p = e->predicate;
  if (!p.program.empty()) {
    udf::RunInput in;
    if (p.live_window != nullptr) {
      in.buffers[udf::kBufMeta] = *p.live_window;
    } else {
      in.buffers[udf::kBufMeta] = p.window;
    }
    in.time = [this] { return machine_->engine().now(); };
    in.fuel = 4096;
    udf::RunOutput out = udf::Run(p.program, in);
    machine_->Charge(out.insns * machine_->cost().downloaded_insn);
    return out.ok && out.ret != 0;
  }
  if (p.host) {
    machine_->Charge(p.host_cost);
    return p.host();
  }
  return true;  // empty predicate: plain yield-style sleep, immediately runnable
}

Env* XokKernel::PickNext() {
  // Directed-yield hint takes priority (Sec. 9.1: the CPU interface's directed yields
  // let communicating processes hand the slice to each other).
  auto consider = [this](EnvId id) -> Env* {
    auto it = envs_.find(id);
    if (it == envs_.end() || !it->second->alive) {
      return nullptr;
    }
    Env* e = it->second.get();
    if (e->state == EnvState::kRunnable) {
      return e;
    }
    if (e->state == EnvState::kBlocked && EvalPredicate(e)) {
      e->state = EnvState::kRunnable;
      return e;
    }
    return nullptr;
  };

  if (last_scheduled_ != kInvalidEnv && EnvExists(last_scheduled_)) {
    EnvId hint = env(last_scheduled_).yield_to;
    if (hint != kInvalidEnv) {
      env(last_scheduled_).yield_to = kInvalidEnv;
      if (Env* e = consider(hint)) {
        return e;
      }
    }
  }

  for (size_t n = run_queue_.size(); n > 0; --n) {
    EnvId id = run_queue_.front();
    run_queue_.pop_front();
    auto it = envs_.find(id);
    if (it == envs_.end() || it->second->state == EnvState::kZombie) {
      continue;  // reaped or dead: drop from the queue
    }
    run_queue_.push_back(id);
    if (Env* e = consider(id)) {
      return e;
    }
  }
  return nullptr;
}

void XokKernel::Run() {
  EXO_CHECK(current_ == nullptr);
  sim::Cycles idle_since = machine_->engine().now();
  bool was_idle = false;

  while (alive_count_ > 0) {
    Env* next = PickNext();
    if (next == nullptr) {
      if (machine_->engine().HasPendingEvents()) {
        machine_->engine().RunNextEvent();
        was_idle = false;
        continue;
      }
      // Everything is blocked and no device events are pending: advance the clock so
      // time-based predicates can fire. Bounded to catch true deadlock.
      if (!was_idle) {
        was_idle = true;
        idle_since = machine_->engine().now();
      }
      sim::Cycles step = kIdleTick;
      for (const auto& [id, e] : envs_) {
        if (e->state == EnvState::kBlocked && e->predicate.deadline != UINT64_MAX &&
            e->predicate.deadline > machine_->engine().now()) {
          step = std::min(step, e->predicate.deadline - machine_->engine().now());
        }
      }
      if (machine_->engine().now() - idle_since >= kDeadlockBound) {
        std::fprintf(stderr, "deadlock: %u alive envs, states:", alive_count_);
        for (const auto& [id, e] : envs_) {
          std::fprintf(stderr, " env%u=%d", id, static_cast<int>(e->state));
        }
        std::fprintf(stderr, "\n");
        EXO_CHECK(false);
      }
      machine_->engine().Advance(step);
      continue;
    }
    was_idle = false;

    if (next->id != last_scheduled_) {
      machine_->Charge(machine_->cost().context_switch);
      ++*ctx_switch_counter_;
    }
    last_scheduled_ = next->id;
    next->slice_used = 0;

    if (next->on_slice_begin) {
      machine_->Charge(machine_->cost().upcall);
      next->on_slice_begin();
    }

    current_ = next;
    next->fiber->Resume();
    current_ = nullptr;

    if (next->fiber->done() && next->alive) {
      FinishExit(next, 0);
    }
  }
}

void XokKernel::ChargeCpu(sim::Cycles cycles) {
  cycles += interrupt_debt_;
  interrupt_debt_ = 0;
  if (current_ == nullptr) {
    // Host/boot context: no slicing.
    machine_->Charge(cycles);
    return;
  }
  Env* e = current_;
  const sim::Cycles quantum = machine_->cost().quantum;
  for (;;) {
    if (e->slice_used >= quantum) {
      // Timer fires the moment the quantum is consumed.
      if (e->critical_depth > 0) {
        // Software interrupts disabled: defer slice end, run on (Sec. 3.3).
        e->end_of_slice_pending = true;
        e->slice_used = 0;
      } else {
        DeliverEndOfSlice(e);
        sim::Fiber::Suspend();  // back of the round-robin queue; resumed later
        e->slice_used = 0;
      }
      continue;
    }
    if (cycles == 0) {
      break;
    }
    sim::Cycles step = std::min(cycles, quantum - e->slice_used);
    machine_->Charge(step);
    e->slice_used += step;
    cycles -= step;
  }
}

void XokKernel::DeliverEndOfSlice(Env* e) {
  if (e->on_slice_end) {
    machine_->Charge(machine_->cost().upcall);
    e->on_slice_end();
  }
}

void XokKernel::SysYield(EnvId directed) {
  EXO_CHECK(current_ != nullptr);
  ChargeSyscall("yield");
  current_->yield_to = directed;
  sim::Fiber::Suspend();
}

void XokKernel::SysSleep(WakeupPredicate predicate) {
  EXO_CHECK(current_ != nullptr);
  ChargeSyscall("sleep");
  current_->predicate = std::move(predicate);
  current_->state = EnvState::kBlocked;
  sim::Fiber::Suspend();
}

void XokKernel::SysExit(int code) {
  EXO_CHECK(current_ != nullptr);
  ChargeSyscall("exit");
  FinishExit(current_, code);
  for (;;) {
    sim::Fiber::Suspend();  // zombies are never scheduled again
    EXO_CHECK(false);
  }
}

Result<int> XokKernel::SysWait(EnvId child) {
  EXO_CHECK(current_ != nullptr);
  ChargeSyscall("wait");
  if (!EnvExists(child)) {
    return Status::kNotFound;
  }
  if (env(child).parent != current_->id) {
    return Status::kPermissionDenied;
  }
  if (env(child).state != EnvState::kZombie) {
    WakeupPredicate p;
    p.host = [this, child] {
      return EnvExists(child) && env(child).state == EnvState::kZombie;
    };
    SysSleep(std::move(p));
  }
  int code = env(child).exit_code;
  EXO_CHECK_EQ(ReapEnv(child), Status::kOk);
  return code;
}

void XokKernel::EnterCritical() {
  EXO_CHECK(current_ != nullptr);
  machine_->Charge(5);  // a flag write in exposed memory; no kernel crossing
  ++current_->critical_depth;
}

void XokKernel::ExitCritical() {
  EXO_CHECK(current_ != nullptr);
  Env* e = current_;
  EXO_CHECK_GT(e->critical_depth, 0u);
  machine_->Charge(5);
  if (--e->critical_depth == 0 && e->end_of_slice_pending) {
    e->end_of_slice_pending = false;
    DeliverEndOfSlice(e);
    sim::Fiber::Suspend();
    e->slice_used = 0;
  }
}

// ---- Physical memory ----

Result<hw::FrameId> XokKernel::SysFrameAlloc(CredIndex cred, CapName guard) {
  ChargeSyscall("frame_alloc");
  auto f = machine_->mem().Alloc();
  if (!f.ok()) {
    return f.status();
  }
  frame_guards_[*f] = std::move(guard);
  return *f;
}

Status XokKernel::SysFrameFree(hw::FrameId frame, CredIndex cred) {
  ChargeSyscall("frame_free");
  auto it = frame_guards_.find(frame);
  if (it == frame_guards_.end()) {
    return Status::kNotFound;
  }
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, it->second, /*need_write=*/true);
    if (s != Status::kOk) {
      return s;
    }
  }
  machine_->mem().Unref(frame);
  if (!machine_->mem().allocated(frame)) {
    frame_guards_.erase(it);
  }
  return Status::kOk;
}

Status XokKernel::SysFrameRef(hw::FrameId frame, CredIndex cred) {
  ChargeSyscall("frame_ref");
  auto it = frame_guards_.find(frame);
  if (it == frame_guards_.end()) {
    return Status::kNotFound;
  }
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, it->second, /*need_write=*/false);
    if (s != Status::kOk) {
      return s;
    }
  }
  machine_->mem().Ref(frame);
  return Status::kOk;
}

const CapName& XokKernel::FrameGuard(hw::FrameId frame) const {
  auto it = frame_guards_.find(frame);
  EXO_CHECK(it != frame_guards_.end());
  return it->second;
}

uint32_t XokKernel::FreeFrameCount() const { return machine_->mem().free_frames(); }

Status XokKernel::PtApply(Env& target, const PtOp& op, CredIndex cred) {
  const Env* caller = current_ != nullptr ? current_ : &target;
  // Updating another environment's page table requires its environment capability.
  if (caller->id != target.id) {
    Status s = CheckCred(*caller, cred, EnvGuardName(target.id), /*need_write=*/true);
    if (s != Status::kOk) {
      return s;
    }
  }
  switch (op.kind) {
    case PtOp::Kind::kInsert: {
      auto git = frame_guards_.find(op.pte.frame);
      if (git == frame_guards_.end()) {
        return Status::kNotFound;
      }
      Status s = CheckCred(*caller, cred, git->second, /*need_write=*/op.pte.writable);
      if (s != Status::kOk) {
        return s;
      }
      if (const Pte* old = target.pt.Lookup(op.vpage)) {
        machine_->mem().Unref(old->frame);
      }
      machine_->mem().Ref(op.pte.frame);
      target.pt.Insert(op.vpage, op.pte);
      return Status::kOk;
    }
    case PtOp::Kind::kProtect: {
      Pte* pte = target.pt.LookupMutable(op.vpage);
      if (pte == nullptr) {
        return Status::kNotFound;
      }
      if (op.pte.writable && !pte->writable) {
        // Upgrading to writable requires write access to the frame.
        Status s = CheckCred(*caller, cred, frame_guards_.at(pte->frame),
                             /*need_write=*/true);
        if (s != Status::kOk) {
          return s;
        }
      }
      pte->readable = op.pte.readable;
      pte->writable = op.pte.writable;
      pte->software_bits = op.pte.software_bits;
      return Status::kOk;
    }
    case PtOp::Kind::kRemove: {
      const Pte* pte = target.pt.Lookup(op.vpage);
      if (pte == nullptr) {
        return Status::kNotFound;
      }
      machine_->mem().Unref(pte->frame);
      target.pt.Remove(op.vpage);
      return Status::kOk;
    }
  }
  return Status::kInvalidArgument;
}

Status XokKernel::SysPtUpdate(EnvId target, const PtOp& op, CredIndex cred) {
  ChargeSyscall("pt_update");
  if (!EnvExists(target)) {
    return Status::kNotFound;
  }
  machine_->Charge(machine_->cost().pte_update_kernel);
  return PtApply(env(target), op, cred);
}

Status XokKernel::SysPtBatch(EnvId target, std::span<const PtOp> ops, CredIndex cred) {
  ChargeSyscall("pt_batch");
  if (!EnvExists(target)) {
    return Status::kNotFound;
  }
  Env& t = env(target);
  for (const PtOp& op : ops) {
    machine_->Charge(machine_->cost().pte_update_batched);
    Status s = PtApply(t, op, cred);
    if (s != Status::kOk) {
      return s;  // batch stops at first failure; prior updates remain applied
    }
  }
  return Status::kOk;
}

Status XokKernel::AccessUserMemory(EnvId id, uint64_t vaddr, std::span<uint8_t> buf,
                                   bool write, bool charge_copy) {
  Env& e = env(id);
  size_t done = 0;
  while (done < buf.size()) {
    const VPage vp = static_cast<VPage>((vaddr + done) >> kPageShift);
    const uint32_t off = static_cast<uint32_t>((vaddr + done) & (hw::kPageSize - 1));
    const uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(buf.size() - done, hw::kPageSize - off));

    const Pte* pte = e.pt.Lookup(vp);
    int tries = 0;
    while (pte == nullptr || !pte->readable || (write && !pte->writable)) {
      machine_->Charge(machine_->cost().page_fault_trap);
      ++*fault_counter_;
      if (!e.on_page_fault || !e.on_page_fault(vp, write)) {
        return Status::kPermissionDenied;
      }
      pte = e.pt.Lookup(vp);
      if (++tries > 4) {
        return Status::kPermissionDenied;
      }
    }

    auto frame = machine_->mem().Data(pte->frame);
    if (charge_copy) {
      machine_->Charge(machine_->cost().CopyCost(chunk));
    }
    if (write) {
      std::memcpy(frame.data() + off, buf.data() + done, chunk);
    } else {
      std::memcpy(buf.data() + done, frame.data() + off, chunk);
    }
    done += chunk;
  }
  return Status::kOk;
}

// ---- Software regions ----

Result<RegionId> XokKernel::SysRegionCreate(uint32_t size, CapName guard, CredIndex cred) {
  ChargeSyscall("region_create");
  if (size == 0 || size > (1u << 20)) {
    return Status::kInvalidArgument;
  }
  RegionId id = next_region_id_++;
  regions_[id] = {std::move(guard), std::vector<uint8_t>(size, 0)};
  return id;
}

Status XokKernel::SysRegionWrite(RegionId rid, uint32_t off, std::span<const uint8_t> data,
                                 CredIndex cred) {
  ChargeSyscall("region_write");
  auto it = regions_.find(rid);
  if (it == regions_.end()) {
    return Status::kNotFound;
  }
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, it->second.first, /*need_write=*/true);
    if (s != Status::kOk) {
      return s;
    }
  }
  auto& bytes = it->second.second;
  if (static_cast<uint64_t>(off) + data.size() > bytes.size()) {
    return Status::kInvalidArgument;
  }
  machine_->Charge(machine_->cost().CopyCost(data.size()));
  std::memcpy(bytes.data() + off, data.data(), data.size());
  return Status::kOk;
}

Status XokKernel::SysRegionRead(RegionId rid, uint32_t off, std::span<uint8_t> out,
                                CredIndex cred) {
  ChargeSyscall("region_read");
  auto it = regions_.find(rid);
  if (it == regions_.end()) {
    return Status::kNotFound;
  }
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, it->second.first, /*need_write=*/false);
    if (s != Status::kOk) {
      return s;
    }
  }
  const auto& bytes = it->second.second;
  if (static_cast<uint64_t>(off) + out.size() > bytes.size()) {
    return Status::kInvalidArgument;
  }
  machine_->Charge(machine_->cost().CopyCost(out.size()));
  std::memcpy(out.data(), bytes.data() + off, out.size());
  return Status::kOk;
}

Status XokKernel::SysRegionDestroy(RegionId rid, CredIndex cred) {
  ChargeSyscall("region_destroy");
  auto it = regions_.find(rid);
  if (it == regions_.end()) {
    return Status::kNotFound;
  }
  if (current_ != nullptr) {
    Status s = CheckCred(*current_, cred, it->second.first, /*need_write=*/true);
    if (s != Status::kOk) {
      return s;
    }
  }
  regions_.erase(it);
  return Status::kOk;
}

const std::vector<uint8_t>* XokKernel::RegionBytes(RegionId rid) const {
  auto it = regions_.find(rid);
  return it == regions_.end() ? nullptr : &it->second.second;
}

// ---- IPC ----

Status XokKernel::SysIpcSend(EnvId to, const IpcMessage& msg, CredIndex cred) {
  ChargeSyscall("ipc_send");
  if (!EnvExists(to) || !env(to).alive) {
    return Status::kNotFound;
  }
  Env& dest = env(to);
  IpcMessage m = msg;
  m.from = current_ != nullptr ? current_->id : kInvalidEnv;
  dest.ipc_queue.push_back(m);
  if (dest.on_ipc) {
    machine_->Charge(machine_->cost().upcall);
    dest.on_ipc(m);
  }
  return Status::kOk;
}

Result<IpcMessage> XokKernel::SysIpcRecv() {
  EXO_CHECK(current_ != nullptr);
  ChargeSyscall("ipc_recv");
  if (current_->ipc_queue.empty()) {
    return Status::kWouldBlock;
  }
  IpcMessage m = current_->ipc_queue.front();
  current_->ipc_queue.pop_front();
  return m;
}

// ---- Network ----

Result<FilterId> XokKernel::SysFilterInstall(udf::Program program, CredIndex cred) {
  ChargeSyscall("filter_install");
  auto v = udf::Verify(program, udf::Policy::kDeterministic);
  if (!v.ok) {
    return Status::kVerifierReject;
  }
  PacketFilter f;
  f.id = next_filter_id_++;
  f.owner = current_ != nullptr ? current_->id : kInvalidEnv;
  f.program = std::move(program);
  filters_.push_back(std::move(f));
  return filters_.back().id;
}

Status XokKernel::SysFilterRemove(FilterId id, CredIndex cred) {
  ChargeSyscall("filter_remove");
  for (auto it = filters_.begin(); it != filters_.end(); ++it) {
    if (it->id == id) {
      if (current_ != nullptr && it->owner != current_->id) {
        return Status::kPermissionDenied;
      }
      filters_.erase(it);
      return Status::kOk;
    }
  }
  return Status::kNotFound;
}

Result<hw::Packet> XokKernel::SysRingConsume(FilterId id, CredIndex cred) {
  // Packet rings live in application memory; consuming advances a head pointer the
  // application owns, so no kernel crossing is needed (Sec. 5.1).
  machine_->Charge(30);
  for (auto& f : filters_) {
    if (f.id == id) {
      if (current_ != nullptr && f.owner != current_->id) {
        return Status::kPermissionDenied;
      }
      if (f.ring.empty()) {
        return Status::kWouldBlock;
      }
      hw::Packet p = std::move(f.ring.front());
      f.ring.pop_front();
      return p;
    }
  }
  return Status::kNotFound;
}

const PacketFilter* XokKernel::Filter(FilterId id) const {
  for (const auto& f : filters_) {
    if (f.id == id) {
      return &f;
    }
  }
  return nullptr;
}

Status XokKernel::SysNicTransmit(uint32_t nic, hw::Packet packet) {
  ChargeSyscall("nic_tx");
  if (nic >= machine_->num_nics()) {
    return Status::kInvalidArgument;
  }
  machine_->Charge(150);  // DMA descriptor setup; the CPU does not touch the payload
  machine_->nic(nic).Transmit(std::move(packet));
  return Status::kOk;
}

void XokKernel::OnPacket(uint32_t nic, hw::Packet p) {
  // Interrupt context: account the demultiplexing work but do not advance the clock
  // re-entrantly (we are inside an event callback). The cost is charged as a lump on
  // the next clock advance via a zero-length event.
  sim::Cycles cost = machine_->cost().interrupt_overhead;
  for (auto& f : filters_) {
    udf::RunInput in;
    in.buffers[udf::kBufMeta] = p.bytes;
    in.fuel = 4096;
    udf::RunOutput out = udf::Run(f.program, in);
    cost += out.insns * machine_->cost().downloaded_insn;
    if (out.ok && out.ret != 0) {
      if (f.ring.size() >= f.ring_capacity) {
        ++f.dropped;
        machine_->counters().Add("xok.ring_drops");
      } else {
        f.ring.push_back(std::move(p));
        ++f.delivered;
      }
      machine_->counters().Add("xok.packets_demuxed");
      interrupt_debt_ += cost;
      return;
    }
  }
  machine_->counters().Add("xok.packets_unclaimed");
  interrupt_debt_ += cost;
}

void XokKernel::SysNull(int count) {
  const auto& c = machine_->cost();
  for (int i = 0; i < count; ++i) {
    machine_->Charge(c.trap_round_trip + c.xok_syscall_check);
    ++*syscall_counter_;
  }
}

sim::Cycles XokKernel::Now() const { return machine_->engine().now(); }

}  // namespace exo::xok
